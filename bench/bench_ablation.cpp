// Ablations of the design choices DESIGN.md calls out.
//
// A1 — brush-grid resolution: the coordinated brush is rasterized into an
//      arena-space grid for O(1) point tests. Sweep the resolution and
//      report query cost plus verdict agreement against a fine-grid
//      reference (accuracy/cost trade-off).
// A2 — interconnect model: re-run the E7 cluster frame under
//      instantaneous / 10GbE / GbE network models; the protocol is
//      unchanged, only delivery timing moves, so output stays identical
//      while frame time absorbs the gather traffic.
// A3 — SOM lattice size: overview fidelity and quantization error vs the
//      number of clusters (the granularity knob of §VI.C).
// A4 — query parallelism grain: thread-pool chunking of the per-
//      trajectory evaluation loop.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "cluster/clusterapp.h"
#include "core/clusterquery.h"
#include "core/session.h"

using namespace svq;

namespace {

core::BrushGrid westBrushAt(float arenaRadius, int resolution) {
  core::BrushCanvas canvas(arenaRadius, resolution);
  core::paintArenaHalf(canvas, 0, traj::ArenaSide::kWest, arenaRadius);
  return canvas.grid();
}

// --- A1: brush grid resolution ----------------------------------------------

void BM_A1_BrushGridResolution(benchmark::State& state) {
  const auto& ds = bench::dataset(500);
  const int resolution = static_cast<int>(state.range(0));
  const core::BrushGrid brush = westBrushAt(ds.arena().radiusCm, resolution);
  std::vector<std::uint32_t> indices(ds.size());
  for (std::uint32_t i = 0; i < ds.size(); ++i) indices[i] = i;
  for (auto _ : state) {
    const auto result =
        core::evaluate(core::makeRefs(ds, indices), brush, core::QueryParams{});
    benchmark::DoNotOptimize(result);
  }
  // Verdict agreement vs a 1024-texel reference grid.
  const core::BrushGrid ref = westBrushAt(ds.arena().radiusCm, 1024);
  const auto coarse =
      core::evaluate(core::makeRefs(ds, indices), brush, core::QueryParams{});
  const auto fine =
      core::evaluate(core::makeRefs(ds, indices), ref, core::QueryParams{});
  std::size_t agree = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (coarse.summaries[i].anyHighlight() ==
        fine.summaries[i].anyHighlight()) {
      ++agree;
    }
  }
  state.counters["resolution"] = resolution;
  state.counters["verdict_agreement_pct"] =
      100.0 * static_cast<double>(agree) / static_cast<double>(ds.size());
}
BENCHMARK(BM_A1_BrushGridResolution)
    ->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

// --- A2: interconnect model ---------------------------------------------------

void runClusterUnder(benchmark::State& state, net::NetworkModel network) {
  const auto& ds = bench::dataset(200);
  wall::TileSpec tile;
  tile.pxW = 192;
  tile.pxH = 108;
  const wall::WallSpec w(tile, 6, 2);
  core::Session app(core::SharedContext::create(ds, w));
  app.apply(ui::LayoutSwitchEvent{0});
  app.apply(ui::BrushStrokeEvent{0, {-25.0f, 0.0f}, 25.0f});
  const render::SceneModel scene = app.buildScene();
  cluster::ClusterOptions options;
  options.network = network;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const auto result = cluster::runClusterSession(ds, w, {scene}, options);
    bytes = result.bytesSent;
    benchmark::DoNotOptimize(result);
  }
  state.counters["MB_per_frame"] = static_cast<double>(bytes) / 1e6;
}

void BM_A2_NetworkInstant(benchmark::State& state) {
  runClusterUnder(state, {});
  state.SetLabel("instantaneous");
}
BENCHMARK(BM_A2_NetworkInstant)->Unit(benchmark::kMillisecond);

void BM_A2_Network10GbE(benchmark::State& state) {
  runClusterUnder(state, net::NetworkModel::tenGigabitEthernet());
  state.SetLabel("10GbE model");
}
BENCHMARK(BM_A2_Network10GbE)->Unit(benchmark::kMillisecond);

void BM_A2_NetworkGbE(benchmark::State& state) {
  runClusterUnder(state, net::NetworkModel::gigabitEthernet());
  state.SetLabel("GbE model");
}
BENCHMARK(BM_A2_NetworkGbE)->Unit(benchmark::kMillisecond);

// --- A3: SOM lattice size ------------------------------------------------------

void BM_A3_SomLatticeSize(benchmark::State& state) {
  const auto& ds = bench::dataset(2000, /*maxDurationS=*/60.0f);
  const auto side = static_cast<std::size_t>(state.range(0));
  traj::SomParams somP;
  somP.rows = side;
  somP.cols = side;
  somP.epochs = 3;
  traj::FeatureParams featP;
  featP.resampleCount = 16;

  for (auto _ : state) {
    core::SomExplorer explorer(ds, somP, featP);
    benchmark::DoNotOptimize(explorer);
  }

  const core::SomExplorer explorer(ds, somP, featP);
  core::BrushCanvas canvas(ds.arena().radiusCm, 256);
  core::paintArenaHalf(canvas, 0, traj::ArenaSide::kWest,
                       ds.arena().radiusCm);
  state.counters["clusters"] =
      static_cast<double>(explorer.displayableClusters().size());
  state.counters["fidelity_pct"] = static_cast<double>(
      explorer.clusterQueryFidelity(canvas.grid(), core::QueryParams{}) *
      100.0f);
  state.SetLabel(std::to_string(side) + "x" + std::to_string(side));
}
BENCHMARK(BM_A3_SomLatticeSize)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- A4: parallel grain ---------------------------------------------------------

void BM_A4_QueryGrain(benchmark::State& state) {
  const auto& ds = bench::dataset(2000);
  const core::BrushGrid brush = westBrushAt(ds.arena().radiusCm, 256);
  std::vector<std::uint32_t> indices(ds.size());
  for (std::uint32_t i = 0; i < ds.size(); ++i) indices[i] = i;
  const auto grain = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    // Inline re-implementation of the parallel loop with explicit grain.
    core::QueryResult result;
    result.segmentHighlights.resize(ds.size());
    result.summaries.resize(ds.size());
    parallelFor(
        0, ds.size(),
        [&](std::size_t i) {
          core::evaluate(core::TrajectoryRef{&ds[indices[i]], indices[i]}, brush,
                            core::QueryParams{},
                            result.segmentHighlights[i],
                            result.summaries[i]);
        },
        grain);
    benchmark::DoNotOptimize(result);
  }
  state.counters["grain"] = static_cast<double>(grain);
}
BENCHMARK(BM_A4_QueryGrain)->Arg(1)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void printContext() {
  std::printf("\n=== Ablations: brush-grid resolution, interconnect model, "
              "SOM lattice, parallel grain ===\n");
  std::printf("A2 sanity: cluster output under every network model is "
              "pixel-identical (asserted in tests/net_simnet_test).\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  printContext();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
