// Render-pipeline bench: dirty-cell frame cost, cell-parallel scaling,
// and delta scene broadcast, on the paper's 432-cell wall layout.
//
// The interactive loop this measures is the paper's: the analyst dabs the
// brush, the wall repaints. The legacy path re-rasterizes all 432 cells
// every frame; the CellRenderPipeline repaints only the cells whose
// content hash changed (a dab touches a handful) and restores the rest
// from the per-cell framebuffer cache. The cluster master ships only the
// changed cells (delta broadcast) instead of the whole scene.
//
// Scenarios (all over the same pre-built frame sequence):
//   full_serial_redraw    renderScene of every frame — the baseline
//   pipeline_cold         pipeline first frame (full recomposite)
//   pipeline_dab_serial   pipeline steady-state dab edits, no pool
//   pipeline_dab_threads4 same, 4-thread pool — must be bit-identical
//   pipeline_dab_threads8 same, 8-thread pool — must be bit-identical
//   cache_restore         invalidate() + recomposite from the cell cache
//   delta_broadcast       cluster session bytes, delta on vs off
//
// Acceptance checks (non-zero exit on failure):
//   - determinism: parallel output bit-identical to serial at 1/4/8
//     threads, for the cold frame and every dab frame,
//   - cache correctness: the cache_restore recomposite is bit-identical
//     to a cold render of the same scene,
//   - (full run only) dab-edit median frame time >= 8x faster than the
//     full serial redraw, and delta broadcast bytes <= 10% of full-scene
//     bytes per frame.
//
// Writes BENCH_render.json (see bench_json.h; consumed by
// scripts/perf_smoke.py). --smoke shrinks the wall/layout/frame count for
// CI; --out=PATH overrides the report path.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "cluster/clusterapp.h"
#include "core/session.h"
#include "render/kernels.h"
#include "render/pipeline.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/stopwatch.h"
#include "util/threadpool.h"

using namespace svq;

namespace {

using Options = bench::BenchCliOptions;

/// Trajectories with at least one point within `r` of `p` — a cheap upper
/// bound on the cells a dab at `p` can damage (one trajectory per cell).
std::size_t trajectoriesNear(const traj::TrajectoryDataset& ds, Vec2 p,
                             float r) {
  const float r2 = r * r;
  std::size_t hits = 0;
  for (std::size_t t = 0; t < ds.size(); ++t) {
    const auto v = ds[t].view();
    for (std::size_t i = 0; i < v.count; ++i) {
      const Vec2 d{v.x[i] - p.x, v.y[i] - p.y};
      if (d.x * d.x + d.y * d.y <= r2) {
        ++hits;
        break;
      }
    }
  }
  return hits;
}

/// The dab-edit frame sequence: layout + base query, then one localized
/// brush dab per frame. The acceptance scenario is *defined* as <= 5%
/// dirty cells per frame, and every trajectory shares the release point —
/// a dab near the arena centre touches everything. So candidate spots are
/// sampled over the whole arena and the sparsest ones (fewest nearby
/// trajectories) are dabbed first: the analyst refining a query over a
/// sparse region, not repainting the trail.
std::vector<render::SceneModel> makeFrames(const traj::TrajectoryDataset& ds,
                                           const wall::WallSpec& wall,
                                           std::uint8_t layoutPreset,
                                           std::size_t frameCount) {
  constexpr float kDabRadiusCm = 1.5f;
  core::Session app(core::SharedContext::create(ds, wall));
  app.apply(ui::LayoutSwitchEvent{layoutPreset});
  app.apply(ui::BrushStrokeEvent{0, {-20.0f, 0.0f}, 15.0f});
  std::vector<render::SceneModel> frames;
  frames.push_back(app.buildScene());

  struct Spot {
    Vec2 pos;
    std::size_t hits;
  };
  std::vector<Spot> spots;
  const float arenaR = ds.arena().radiusCm;
  for (int a = 0; a < 36; ++a) {
    const float ang = 2.0f * 3.14159265f * static_cast<float>(a) / 36.0f;
    for (int r = 2; r <= 9; ++r) {
      const float rr = arenaR * static_cast<float>(r) / 10.0f;
      const Vec2 p{std::cos(ang) * rr, std::sin(ang) * rr};
      const std::size_t hits = trajectoriesNear(ds, p, kDabRadiusCm);
      if (hits >= 1) spots.push_back({p, hits});
    }
  }
  std::stable_sort(spots.begin(), spots.end(),
                   [](const Spot& a, const Spot& b) { return a.hits < b.hits; });

  for (std::size_t i = 0; frames.size() < frameCount && !spots.empty(); ++i) {
    // Past the candidate list (tiny datasets), revisit spots with a wider
    // brush so each frame still paints fresh area.
    const Spot& s = spots[i % spots.size()];
    const float radius = kDabRadiusCm * static_cast<float>(1 + i / spots.size());
    app.apply(ui::BrushStrokeEvent{1, s.pos, radius});
    frames.push_back(app.buildScene());
  }
  return frames;
}

int run(const Options& opt) {
  const std::size_t trajCount = opt.smoke ? 120 : 500;
  const std::size_t frameCount = opt.smoke ? 12 : 40;
  // Preset 2 = the paper's 36x12 = 432-cell layout; smoke uses 24x6.
  const std::uint8_t layoutPreset = opt.smoke ? 1 : 2;
  const wall::WallSpec wall =
      opt.smoke ? bench::reducedWall(160, 90) : bench::reducedWall();

  const auto& ds = bench::dataset(trajCount);
  std::printf("=== render pipeline: dab edits on a %s wall ===\n",
              opt.smoke ? "smoke-sized" : "432-cell");
  const auto frames = makeFrames(ds, wall, layoutPreset, frameCount);
  const std::size_t cells = frames[0].cells.size();
  std::printf("%zu cells, %zu frames (1 cold + %zu dab edits), %dx%d px\n",
              cells, frames.size(), frames.size() - 1, wall.totalPxW(),
              wall.totalPxH());

  bench::BenchReport report;
  MetricsRegistry& reg = MetricsRegistry::global();
  const render::Eye eye = render::Eye::kCenter;  // zero parallax: legacy
                                                 // and pipeline pixels
                                                 // are comparable
  bool ok = true;

  // --- baseline: full serial redraw of every frame --------------------------
  std::vector<double> fullMs;
  std::vector<std::uint64_t> frameHashes;  // ground truth per dab frame
  {
    render::Framebuffer fb(wall.totalPxW(), wall.totalPxH());
    renderScene(frames[0], ds, render::Canvas::whole(fb), eye);
    for (std::size_t f = 1; f < frames.size(); ++f) {
      Stopwatch w;
      renderScene(frames[f], ds, render::Canvas::whole(fb), eye);
      fullMs.push_back(w.elapsedMillis());
      frameHashes.push_back(fb.contentHash());
    }
    report.add("full_serial_redraw", fullMs);
  }

  // --- pipeline, serial ------------------------------------------------------
  std::vector<double> serialMs;
  std::uint64_t coldHash = 0;
  double dirtyCells = 0.0;
  {
    reg.reset("render.");
    render::CellRenderPipeline pipe;
    render::Framebuffer fb(wall.totalPxW(), wall.totalPxH());
    Stopwatch cold;
    pipe.render(frames[0], ds, render::Canvas::whole(fb), eye);
    report.add("pipeline_cold", {cold.elapsedMillis()});
    coldHash = fb.contentHash();
    for (std::size_t f = 1; f < frames.size(); ++f) {
      Stopwatch w;
      const auto stats =
          pipe.render(frames[f], ds, render::Canvas::whole(fb), eye);
      serialMs.push_back(w.elapsedMillis());
      dirtyCells += static_cast<double>(stats.cellsRasterized);
      if (fb.contentHash() != frameHashes[f - 1]) {
        std::fprintf(stderr,
                     "FAIL: pipeline frame %zu differs from full redraw\n", f);
        ok = false;
      }
    }
    auto& s = report.add("pipeline_dab_serial", serialMs);
    bench::attachCounters(s, "render.");
    s.counters["dirty_fraction"] =
        dirtyCells / static_cast<double>((frames.size() - 1) * cells);
    s.counters["speedup_vs_full"] =
        bench::median(serialMs) > 0.0
            ? bench::median(fullMs) / bench::median(serialMs)
            : 0.0;

    // Cache restore: damage the target, recomposite from the cell cache,
    // and demand bit-identity with a cold render of the same scene.
    pipe.invalidate();
    fb.clear(render::Color{1, 2, 3, 255});
    Stopwatch w;
    pipe.render(frames.back(), ds, render::Canvas::whole(fb), eye);
    report.add("cache_restore", {w.elapsedMillis()});
    render::Framebuffer coldFb(wall.totalPxW(), wall.totalPxH());
    render::CellRenderPipeline coldPipe;
    coldPipe.render(frames.back(), ds, render::Canvas::whole(coldFb), eye);
    if (fb.contentHash() != coldFb.contentHash()) {
      std::fprintf(stderr, "FAIL: cache restore differs from cold render\n");
      ok = false;
    }
  }

  // --- pipeline, parallel: must be bit-identical to serial -------------------
  for (const unsigned threads : {4u, 8u}) {
    ThreadPool pool(threads);
    render::PipelineOptions popt;
    popt.pool = &pool;
    render::CellRenderPipeline pipe(popt);
    render::Framebuffer fb(wall.totalPxW(), wall.totalPxH());
    pipe.render(frames[0], ds, render::Canvas::whole(fb), eye);
    if (fb.contentHash() != coldHash) {
      std::fprintf(stderr, "FAIL: %u-thread cold render differs\n", threads);
      ok = false;
    }
    std::vector<double> ms;
    for (std::size_t f = 1; f < frames.size(); ++f) {
      Stopwatch w;
      pipe.render(frames[f], ds, render::Canvas::whole(fb), eye);
      ms.push_back(w.elapsedMillis());
      if (fb.contentHash() != frameHashes[f - 1]) {
        std::fprintf(stderr, "FAIL: %u-thread frame %zu differs\n", threads,
                     f);
        ok = false;
      }
    }
    report.add("pipeline_dab_threads" + std::to_string(threads), ms);
  }

  // --- delta scene broadcast --------------------------------------------------
  double deltaRatio = 0.0;
  {
    reg.reset("cluster.");
    const auto preset =
        cluster::ClusterOptions::preset(cluster::ClusterPreset::kMinimal);
    const auto on = cluster::runClusterSession(
        ds, wall, frames, cluster::ClusterOptions(preset));
    const auto off = cluster::runClusterSession(
        ds, wall, frames,
        cluster::ClusterOptions(preset).withDeltaBroadcast(false));
    auto& s = report.add("delta_broadcast");
    bench::attachCounters(s, "cluster.");
    const double fullPerFrame =
        static_cast<double>(off.broadcastBytesFull) /
        static_cast<double>(frames.size());
    const double deltaPerFrame =
        on.broadcastFramesDelta == 0
            ? 0.0
            : static_cast<double>(on.broadcastBytesDelta) /
                  static_cast<double>(on.broadcastFramesDelta);
    deltaRatio = fullPerFrame > 0.0 ? deltaPerFrame / fullPerFrame : 1.0;
    s.counters["bytes_full_per_frame"] = fullPerFrame;
    s.counters["bytes_delta_per_frame"] = deltaPerFrame;
    s.counters["delta_ratio"] = deltaRatio;
    s.counters["delta_frames"] =
        static_cast<double>(on.broadcastFramesDelta);
  }

  // --- span kernel: SIMD vs scalar source-over blend -------------------------
  {
    const util::Isa isa = util::activeIsa();
    const std::size_t n = opt.smoke ? (1u << 14) : (1u << 17);
    Rng rng(0xb1e9dULL);
    std::vector<render::Color> base(n);
    for (auto& px : base) {
      px = {static_cast<std::uint8_t>(rng.below(256)),
            static_cast<std::uint8_t>(rng.below(256)),
            static_cast<std::uint8_t>(rng.below(256)), 255};
    }
    const render::Color src{200, 80, 40, 96};  // translucent: blend path
    const int kReps = opt.smoke ? 15 : 40;
    std::vector<double> scalarMs, simdMs;
    std::vector<render::Color> scalarOut, simdOut;
    for (int r = 0; r < kReps; ++r) {
      scalarOut = base;
      Stopwatch w;
      render::blendSpanScalar(scalarOut.data(), n, src);
      scalarMs.push_back(w.elapsedMillis());
    }
    for (int r = 0; r < kReps; ++r) {
      simdOut = base;
      Stopwatch w;
      render::blendSpanVariant(isa, simdOut.data(), n, src);
      simdMs.push_back(w.elapsedMillis());
    }
    if (std::memcmp(scalarOut.data(), simdOut.data(),
                    n * sizeof(render::Color)) != 0) {
      std::fprintf(stderr, "FAIL: %s blend span differs from scalar\n",
                   util::toString(isa));
      ok = false;
    }
    const double ratio =
        bench::median(simdMs) > 0.0
            ? bench::median(scalarMs) / bench::median(simdMs)
            : 0.0;
    auto& s = report.add("render_span_kernel", simdMs);
    s.counters["scalar_median_ms"] = bench::median(scalarMs);
    s.counters["simd_speedup"] = ratio;
    s.counters["pixels"] = static_cast<double>(n);
    std::printf("blend span kernel:     %s %.2fx vs scalar (%zu px)\n",
                util::toString(isa), ratio, n);
    if (!opt.smoke && isa != util::Isa::kScalar && ratio < 2.0) {
      std::fprintf(stderr,
                   "FAIL: %s blend ratio %.2fx below the 2x target\n",
                   util::toString(isa), ratio);
      ok = false;
    }
  }

  // --- report ----------------------------------------------------------------
  const double speedup = bench::median(serialMs) > 0.0
                             ? bench::median(fullMs) / bench::median(serialMs)
                             : 0.0;
  std::printf("%-24s %10s %10s\n", "scenario", "median ms", "p95 ms");
  for (const auto& s : report.scenarios()) {
    std::printf("%-24s %10.3f %10.3f\n", s.name.c_str(), s.medianMs, s.p95Ms);
  }
  std::printf("dab dirty fraction:    %.1f%% of %zu cells\n",
              100.0 * dirtyCells /
                  static_cast<double>((frames.size() - 1) * cells),
              cells);
  std::printf("dab speedup vs full:   %.1fx\n", speedup);
  std::printf("delta bytes per frame: %.1f%% of full\n", 100.0 * deltaRatio);

  if (!bench::writeReport(report, opt.out)) ok = false;

  if (!opt.smoke) {
    if (speedup < 8.0) {
      std::fprintf(stderr, "FAIL: dab speedup %.1fx below the 8x target\n",
                   speedup);
      ok = false;
    }
    if (deltaRatio > 0.10) {
      std::fprintf(stderr,
                   "FAIL: delta bytes %.1f%% of full, above the 10%% target\n",
                   100.0 * deltaRatio);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parseBenchCli(argc, argv, "BENCH_render.json");
  if (!opt) return 2;
  return run(*opt);
}
