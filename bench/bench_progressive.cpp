// Anytime-query bench: time-to-first-pixel vs time-to-exact for the
// two-phase progressive evaluation (core/progressive.h) over a shard
// store.
//
// The paper's interaction contract is a first response within one frame
// budget; the engineering contract on top is that letting the answer
// *converge* costs little more than computing it exactly from scratch.
// This driver measures both ends of that trade and emits the
// convergence curve between them:
//
//   full_exact     from-scratch exact evaluation of every cluster's
//                  members (ProgressiveClusterQuery::exactReference) +
//                  scene build + raster — the no-anytime baseline.
//   first_pixel    begin() pre-pass (prototypes + summary classification)
//                  + progressive overview build + raster — what the
//                  analyst sees immediately.
//   time_to_exact  begin() + refineStep() loop to convergence + final
//                  scene + raster. The printed curve samples (ms,
//                  coverage) after every step.
//
// Acceptance checks (non-zero exit on failure):
//   - exactness: converged estimates equal exactReference bit-for-bit,
//     for refinement chunk sizes 1 / 3 / unbounded,
//   - render bit-identity: the converged progressive scene rasters to
//     the same pixels as the exact-reference scene at 1/4/8 render
//     threads, with the shared cell cache on and off,
//   - (full run only) first_pixel median <= 16 ms and time_to_exact
//     median <= 1.25x full_exact median.
//
// Writes BENCH_progressive.json (bench_json.h; consumed by
// scripts/perf_smoke.py against bench/baselines/
// BENCH_progressive_smoke.json). --smoke shrinks the store for CI;
// --out=PATH overrides the report path.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/clusterscene.h"
#include "core/progressive.h"
#include "render/pipeline.h"
#include "render/sharedcache.h"
#include "util/stopwatch.h"
#include "util/threadpool.h"

using namespace svq;

namespace {

using Options = bench::BenchCliOptions;

constexpr double kFirstPixelBudgetMs = 16.0;
constexpr double kExactOverFullCeiling = 1.25;

core::BrushGrid makeBrush(float arenaRadiusCm) {
  core::BrushCanvas canvas(arenaRadiusCm, 256);
  core::paintArenaHalf(canvas, 0, traj::ArenaSide::kWest, arenaRadiusCm);
  // A second, localized dab so the paint mask is not a trivial half-plane.
  canvas.addStroke({1, {arenaRadiusCm * 0.4f, arenaRadiusCm * 0.3f},
                    arenaRadiusCm * 0.1f});
  return canvas.grid();
}

/// Renders `overview` through a fresh pipeline and returns the frame hash.
std::uint64_t rasterHash(const core::ClusterOverviewScene& overview,
                         const wall::WallSpec& wall, ThreadPool* pool,
                         render::SharedCellCache* cache) {
  render::PipelineOptions po;
  po.pool = pool;
  po.sharedCache = cache;
  render::CellRenderPipeline pipe(po);
  render::Framebuffer fb(wall.totalPxW(), wall.totalPxH());
  pipe.render(overview.scene, overview.averagesDataset,
              render::Canvas::whole(fb), render::Eye::kLeft);
  return fb.contentHash();
}

int run(const Options& opt) {
  const std::size_t trajCount = opt.smoke ? 300 : 2000;
  const std::uint32_t shardCapacity = opt.smoke ? 32 : 64;
  const std::size_t somDim = opt.smoke ? 4 : 6;
  const int reps = opt.smoke ? 5 : 15;
  const wall::WallSpec wall =
      opt.smoke ? bench::reducedWall(160, 90) : bench::reducedWall();

  const auto& ds = bench::dataset(trajCount);
  const std::string storePath =
      (std::filesystem::temp_directory_path() / "svq_bench_progressive.svqs")
          .string();
  if (!traj::writeShardStore(ds, storePath, shardCapacity)) {
    std::fprintf(stderr, "FAIL: cannot write shard store\n");
    return 1;
  }
  auto store = traj::ShardStore::open(storePath);
  if (!store) {
    std::fprintf(stderr, "FAIL: cannot open shard store\n");
    return 1;
  }
  traj::SomParams sp;
  sp.rows = somDim;
  sp.cols = somDim;
  traj::FeatureParams fp;
  fp.arenaRadiusCm = ds.arena().radiusCm;
  const core::ShardSomExplorer explorer(*store, sp, fp);

  std::printf("=== anytime query: %zu trajectories, %zu shards, %zux%zu SOM"
              " ===\n",
              ds.size(), store->shardCount(), somDim, somDim);

  const core::BrushGrid brush = makeBrush(ds.arena().radiusCm);
  core::QueryParams params;
  core::ClusterSceneOptions sceneOptions;

  bench::BenchReport report;
  bool ok = true;

  // --- full exact baseline ---------------------------------------------------
  std::vector<double> fullMs;
  std::vector<core::ClusterEstimate> exact;
  core::ClusterOverviewScene exactScene;
  for (int r = 0; r < reps; ++r) {
    store->clearCache();
    Stopwatch w;
    exact = core::ProgressiveClusterQuery::exactReference(explorer, brush,
                                                          params);
    const core::QueryResult prototypes =
        explorer.queryClusters(brush, params);
    exactScene = core::buildProgressiveOverview(explorer, prototypes, exact,
                                                wall, sceneOptions);
    (void)rasterHash(exactScene, wall, nullptr, nullptr);
    fullMs.push_back(w.elapsedMillis());
  }
  report.add("full_exact", fullMs);

  // --- first pixel: pre-pass + overview + raster -----------------------------
  std::vector<double> firstPixelMs;
  std::size_t pendingAfterPrepass = 0;
  std::size_t prunedShards = 0;
  for (int r = 0; r < reps; ++r) {
    store->clearCache();
    core::ProgressiveClusterQuery query(explorer);
    Stopwatch w;
    query.begin(brush, params);
    const auto overview =
        core::buildProgressiveOverview(query, wall, sceneOptions);
    (void)rasterHash(overview, wall, nullptr, nullptr);
    firstPixelMs.push_back(w.elapsedMillis());
    pendingAfterPrepass = query.pendingShards();
    prunedShards = query.prunedShards();
  }
  {
    auto& s = report.add("first_pixel", firstPixelMs);
    s.counters["pending_after_prepass"] =
        static_cast<double>(pendingAfterPrepass);
    s.counters["pruned_shards"] = static_cast<double>(prunedShards);
    s.counters["first_pixel_budget_ratio"] =
        bench::median(firstPixelMs) / kFirstPixelBudgetMs;
  }

  // --- time to exact: refine loop to convergence -----------------------------
  std::vector<double> exactLoopMs;
  std::vector<std::pair<double, double>> curve;  // (ms, coverage)
  const std::size_t chunk = opt.smoke ? 2 : 4;
  for (int r = 0; r < reps; ++r) {
    store->clearCache();
    core::ProgressiveClusterQuery query(explorer);
    Stopwatch w;
    query.begin(brush, params);
    if (r == 0) curve.emplace_back(w.elapsedMillis(), query.coverage());
    while (!query.converged()) {
      query.refineStep(chunk);
      if (r == 0) curve.emplace_back(w.elapsedMillis(), query.coverage());
    }
    const auto overview =
        core::buildProgressiveOverview(query, wall, sceneOptions);
    (void)rasterHash(overview, wall, nullptr, nullptr);
    exactLoopMs.push_back(w.elapsedMillis());
    if (query.estimates() != exact) {
      std::fprintf(stderr,
                   "FAIL: converged estimates differ from exactReference "
                   "(rep %d)\n",
                   r);
      ok = false;
    }
  }
  const double exactOverFull =
      bench::median(fullMs) > 0.0
          ? bench::median(exactLoopMs) / bench::median(fullMs)
          : 0.0;
  {
    auto& s = report.add("time_to_exact", exactLoopMs);
    s.counters["exact_over_full"] = exactOverFull;
    s.counters["refine_chunk"] = static_cast<double>(chunk);
    s.counters["curve_points"] = static_cast<double>(curve.size());
  }
  std::printf("convergence curve (ms, coverage):");
  for (const auto& [ms, cov] : curve) std::printf(" (%.2f, %.2f)", ms, cov);
  std::printf("\n");

  // --- exactness across refinement schedules ---------------------------------
  for (const std::size_t schedule : {std::size_t{1}, std::size_t{3},
                                     std::size_t{1} << 20}) {
    core::ProgressiveClusterQuery query(explorer);
    query.begin(brush, params);
    while (!query.converged()) query.refineStep(schedule);
    if (query.estimates() != exact) {
      std::fprintf(stderr,
                   "FAIL: chunk-%zu converged estimates differ from "
                   "exactReference\n",
                   schedule);
      ok = false;
    }
  }

  // --- render bit-identity: threads x shared cache ---------------------------
  {
    core::ProgressiveClusterQuery query(explorer);
    query.begin(brush, params);
    while (!query.converged()) query.refineStep(3);
    const auto overview =
        core::buildProgressiveOverview(query, wall, sceneOptions);
    const std::uint64_t want = rasterHash(exactScene, wall, nullptr, nullptr);
    for (const unsigned threads : {1u, 4u, 8u}) {
      for (const bool cached : {false, true}) {
        std::unique_ptr<ThreadPool> pool;
        if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
        render::SharedCellCache cache;
        const std::uint64_t got = rasterHash(
            overview, wall, pool.get(), cached ? &cache : nullptr);
        if (got != want) {
          std::fprintf(stderr,
                       "FAIL: converged frame differs from exact at %u "
                       "threads, cache %s\n",
                       threads, cached ? "on" : "off");
          ok = false;
        }
      }
    }
  }

  // --- report ----------------------------------------------------------------
  std::printf("%-16s %10s %10s\n", "scenario", "median ms", "p95 ms");
  for (const auto& s : report.scenarios()) {
    std::printf("%-16s %10.3f %10.3f\n", s.name.c_str(), s.medianMs, s.p95Ms);
  }
  std::printf("first pixel:  %.2f ms (budget %.0f ms)\n",
              bench::median(firstPixelMs), kFirstPixelBudgetMs);
  std::printf("time to exact: %.2f ms = %.2fx full exact\n",
              bench::median(exactLoopMs), exactOverFull);

  if (!opt.smoke) {
    if (bench::median(firstPixelMs) > kFirstPixelBudgetMs) {
      std::fprintf(stderr, "FAIL: first pixel %.2f ms over the %.0f ms budget\n",
                   bench::median(firstPixelMs), kFirstPixelBudgetMs);
      ok = false;
    }
    if (exactOverFull > kExactOverFullCeiling) {
      std::fprintf(stderr,
                   "FAIL: time-to-exact %.2fx full, over the %.2fx ceiling\n",
                   exactOverFull, kExactOverFullCeiling);
      ok = false;
    }
  }

  if (!bench::writeReport(report, opt.out)) ok = false;

  std::error_code ec;
  std::filesystem::remove(storePath, ec);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parseBenchCli(argc, argv, "BENCH_progressive.json");
  if (!opt) return 2;
  return run(*opt);
}
