// E7 (Fig. 1 / Sec. IV.C): sort-first cluster rendering of the wall.
//
// Regenerates: per-frame cost of driving the tiled wall with one render
// node per tile, as the tile count grows (1 -> 18); the swap-barrier and
// gather overheads; and the gather-on/off ablation. Expected shape on
// real hardware: near-linear scaling with tiles until the gather/composite
// stage dominates. (On this single-core host rank threads time-slice, so
// per-frame wall time stays roughly flat while per-rank render time drops
// proportionally — the load-division signal is the drawn/culled split.)
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "cluster/clusterapp.h"
#include "cluster/scene_serde.h"
#include "core/session.h"

using namespace svq;

namespace {

wall::WallSpec wallOfShape(int cols, int rows) {
  wall::TileSpec tile;
  tile.pxW = 256;
  tile.pxH = 144;
  tile.activeWmm = 1150.0f;
  tile.activeHmm = 647.0f;
  return wall::WallSpec(tile, cols, rows);
}

render::SceneModel sceneFor(const traj::TrajectoryDataset& ds,
                            const wall::WallSpec& w) {
  core::Session app(core::SharedContext::create(ds, w));
  app.apply(ui::LayoutSwitchEvent{1});
  app.apply(ui::BrushStrokeEvent{0, {-25.0f, 0.0f}, 25.0f});
  return app.buildScene();
}

void runShape(benchmark::State& state, int cols, int rows, bool stereo,
              bool gather) {
  const auto& ds = bench::dataset(300);
  const wall::WallSpec w = wallOfShape(cols, rows);
  const render::SceneModel scene = sceneFor(ds, w);
  const cluster::ClusterOptions options =
      cluster::ClusterOptions::preset(cluster::ClusterPreset::kEVL6x3)
          .withStereo(stereo)
          .withGather(gather);

  double renderS = 0.0, barrierS = 0.0, gatherS = 0.0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const auto result = cluster::runClusterSession(ds, w, {scene}, options);
    renderS = barrierS = gatherS = 0.0;
    for (const auto& rs : result.rankStats) {
      renderS += rs.renderSeconds;
      barrierS += rs.barrierSeconds;
      gatherS += rs.gatherSeconds;
    }
    bytes = result.bytesSent;
    benchmark::DoNotOptimize(result);
  }
  state.counters["ranks"] = cols * rows;
  state.counters["render_s_total"] = renderS;
  state.counters["barrier_s_total"] = barrierS;
  state.counters["gather_s_total"] = gatherS;
  state.counters["MB_per_frame"] = static_cast<double>(bytes) / 1e6;
}

void BM_ClusterFrame(benchmark::State& state) {
  const int shape = static_cast<int>(state.range(0));
  static constexpr std::pair<int, int> kShapes[] = {
      {1, 1}, {2, 1}, {3, 1}, {3, 2}, {6, 2}, {6, 3}};
  const auto [cols, rows] = kShapes[shape];
  runShape(state, cols, rows, /*stereo=*/true, /*gather=*/true);
  state.SetLabel(std::to_string(cols) + "x" + std::to_string(rows) +
                 " tiles");
}
BENCHMARK(BM_ClusterFrame)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

void BM_ClusterFrameNoGather(benchmark::State& state) {
  runShape(state, 6, 2, /*stereo=*/true, /*gather=*/false);
  state.SetLabel("6x2 tiles, no gather (ablation)");
}
BENCHMARK(BM_ClusterFrameNoGather)->Unit(benchmark::kMillisecond);

void BM_ClusterFrameMono(benchmark::State& state) {
  runShape(state, 6, 2, /*stereo=*/false, /*gather=*/true);
  state.SetLabel("6x2 tiles, mono (stereo ablation)");
}
BENCHMARK(BM_ClusterFrameMono)->Unit(benchmark::kMillisecond);

void BM_SceneBroadcastSize(benchmark::State& state) {
  const auto& ds = bench::dataset(300);
  const wall::WallSpec w = wallOfShape(6, 2);
  const render::SceneModel scene = sceneFor(ds, w);
  std::size_t bytes = 0;
  for (auto _ : state) {
    net::MessageBuffer buf;
    cluster::serializeScene(buf, scene);
    bytes = buf.size();
    benchmark::DoNotOptimize(buf);
  }
  state.counters["scene_KB"] = static_cast<double>(bytes) / 1e3;
}
BENCHMARK(BM_SceneBroadcastSize)->Unit(benchmark::kMicrosecond);

void printContext() {
  std::printf("\n=== E7: sort-first cluster rendering of the wall ===\n");
  const auto& ds = bench::dataset(300);
  std::printf("protocol per frame: broadcast scene -> render own tile "
              "(both eyes) -> swap barrier -> gather tiles\n");
  std::printf("%-8s %-8s %-12s %-12s %-14s\n", "tiles", "ranks",
              "drawn", "culled", "identical-to-ref");
  for (const auto& [cols, rows] :
       {std::pair{1, 1}, std::pair{3, 1}, std::pair{3, 2}, std::pair{6, 2},
        std::pair{6, 3}}) {
    const wall::WallSpec w = wallOfShape(cols, rows);
    const render::SceneModel scene = sceneFor(ds, w);
    const auto result = cluster::runClusterSession(
        ds, w, {scene},
        cluster::ClusterOptions::preset(cluster::ClusterPreset::kEVL6x3));
    std::size_t drawn = 0, culled = 0;
    for (const auto& rs : result.rankStats) {
      drawn += rs.cellsDrawn;
      culled += rs.cellsCulled;
    }
    const auto ref =
        cluster::renderReferenceWall(ds, w, scene, render::Eye::kLeft);
    const bool same =
        result.leftWall && result.leftWall->contentHash() == ref.contentHash();
    std::printf("%dx%-6d %-8d %-12zu %-12zu %s\n", cols, rows, cols * rows,
                drawn, culled, same ? "yes" : "NO");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  printContext();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
