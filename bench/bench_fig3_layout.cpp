// E1 (Fig. 3): the bezel-aware small-multiple layout and the cost of
// rendering a full wall frame of juxtaposed trajectories.
//
// Regenerates: the Fig. 3 configuration table (the three keypad presets
// 15x4 / 24x6 / 36x12 with their cell counts and bezel-safety), layout
// computation cost, and per-frame wall render cost — at the paper's
// 8196x1536 resolution for the headline numbers and at reduced
// resolution for the per-preset sweep.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/groups.h"
#include "core/layout.h"
#include "core/session.h"
#include "render/scene.h"

using namespace svq;

namespace {

// --- layout computation ----------------------------------------------------

void BM_LayoutCompute(benchmark::State& state) {
  const auto presets = core::paperLayoutPresets();
  const core::LayoutConfig config =
      presets[static_cast<std::size_t>(state.range(0))];
  const wall::WallSpec wallSpec = bench::paperWall();
  for (auto _ : state) {
    auto layout = core::SmallMultipleLayout::compute(wallSpec, config);
    benchmark::DoNotOptimize(layout);
  }
  const auto layout = core::SmallMultipleLayout::compute(wallSpec, config);
  state.counters["cells"] = static_cast<double>(layout.cellCount());
  state.counters["min_cell_px"] = layout.minCellSize();
  state.counters["bezel_safe"] =
      layout.allCellsAvoidBezels(wallSpec) ? 1 : 0;
  state.SetLabel(std::to_string(config.cellsX) + "x" +
                 std::to_string(config.cellsY));
}
BENCHMARK(BM_LayoutCompute)->Arg(0)->Arg(1)->Arg(2);

// --- full-frame scene render, per preset, reduced resolution ----------------

void BM_WallFrameRender(benchmark::State& state) {
  const auto& ds = bench::dataset(500);
  const wall::WallSpec wallSpec = bench::reducedWall();
  core::Session app(core::SharedContext::create(ds, wallSpec));
  app.apply(ui::LayoutSwitchEvent{static_cast<std::uint8_t>(state.range(0))});
  core::defineFigure3Groups(app.groups(), app.layout().config().cellsX,
                            app.layout().config().cellsY);
  app.refreshAssignment();
  const render::SceneModel scene = app.buildScene();
  render::Framebuffer fb(wallSpec.totalPxW(), wallSpec.totalPxH());
  render::RenderStats stats;
  for (auto _ : state) {
    stats = renderScene(scene, ds, render::Canvas::whole(fb),
                        render::Eye::kLeft);
    benchmark::DoNotOptimize(fb);
  }
  state.counters["cells_drawn"] = static_cast<double>(stats.cellsDrawn);
  state.counters["segments"] = static_cast<double>(stats.segmentsDrawn);
  state.counters["Mpx"] =
      static_cast<double>(wallSpec.totalPixels()) / 1e6;
  const auto presets = core::paperLayoutPresets();
  const auto& cfg = presets[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(std::to_string(cfg.cellsX) + "x" +
                 std::to_string(cfg.cellsY));
}
BENCHMARK(BM_WallFrameRender)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// --- the paper-resolution headline: 432 cells at 8196x1536 ------------------

void BM_WallFrameRenderPaperRes(benchmark::State& state) {
  const auto& ds = bench::dataset(500);
  const wall::WallSpec wallSpec = bench::paperWall();
  core::Session app(core::SharedContext::create(ds, wallSpec));
  app.apply(ui::LayoutSwitchEvent{2});  // 36x12
  core::defineFigure3Groups(app.groups(), 36, 12);
  app.refreshAssignment();
  const render::SceneModel scene = app.buildScene();
  render::Framebuffer fb(wallSpec.totalPxW(), wallSpec.totalPxH());
  for (auto _ : state) {
    auto stats = renderScene(scene, ds, render::Canvas::whole(fb),
                             render::Eye::kLeft);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["Mpx"] =
      static_cast<double>(wallSpec.totalPixels()) / 1e6;
  state.counters["cells"] = 432;
  state.SetLabel("36x12@8196x1536");
}
BENCHMARK(BM_WallFrameRenderPaperRes)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(1.0);

// --- grouping/assignment cost ------------------------------------------------

void BM_GroupAssignment(benchmark::State& state) {
  const auto& ds = bench::dataset(static_cast<std::size_t>(state.range(0)));
  core::GroupManager mgr;
  core::defineFigure3Groups(mgr, 36, 12);
  for (auto _ : state) {
    auto assignment = mgr.assign(ds, 36, 12);
    benchmark::DoNotOptimize(assignment);
  }
  state.counters["trajectories"] = static_cast<double>(ds.size());
}
BENCHMARK(BM_GroupAssignment)->Arg(100)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMicrosecond);

void printContext() {
  std::printf("\n=== E1 / Fig. 3: small-multiple layout on the tiled wall "
              "===\n");
  const wall::WallSpec wallSpec = bench::paperWall();
  std::printf("wall: %dx%d tiles, %dx%d px (%.1f Mpx), bezel mullion "
              "%.0f mm\n",
              wallSpec.cols(), wallSpec.rows(), wallSpec.totalPxW(),
              wallSpec.totalPxH(),
              static_cast<double>(wallSpec.totalPixels()) / 1e6,
              static_cast<double>(2.0f * wallSpec.tile().bezelMm));
  std::printf("%-8s %-8s %-14s %-12s\n", "preset", "cells", "min cell px",
              "bezel-safe");
  for (const core::LayoutConfig& cfg : core::paperLayoutPresets()) {
    const auto layout = core::SmallMultipleLayout::compute(wallSpec, cfg);
    std::printf("%2dx%-5d %-8zu %-14d %-12s\n", cfg.cellsX, cfg.cellsY,
                layout.cellCount(), layout.minCellSize(),
                layout.allCellsAvoidBezels(wallSpec) ? "yes" : "NO");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  printContext();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
