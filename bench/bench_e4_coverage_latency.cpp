// E4 (Sec. V.B / VI.B text): coverage and interaction latency.
//
// Regenerates: the "432 trajectories simultaneously = 85% of the data"
// coverage table across layout presets; the end-to-end latency of one
// interaction step (brush event -> coordinated query -> scene build ->
// wall frame render); and the cadence of a hypothesis battery ("several
// hypotheses ... within a span of few minutes" — computationally,
// milliseconds each).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/hypothesis.h"
#include "core/session.h"
#include "render/scene.h"

using namespace svq;

namespace {

void BM_EndToEndInteraction(benchmark::State& state) {
  const auto& ds = bench::dataset(500);
  const wall::WallSpec wallSpec = bench::reducedWall();
  core::Session app(core::SharedContext::create(ds, wallSpec));
  app.apply(ui::LayoutSwitchEvent{2});
  render::Framebuffer fb(wallSpec.totalPxW(), wallSpec.totalPxH());
  float x = -30.0f;
  for (auto _ : state) {
    // One interaction step: a brush dab lands, the query re-evaluates
    // across all displayed trajectories, and the frame re-renders.
    app.apply(ui::BrushStrokeEvent{0, {x, 0.0f}, 8.0f});
    const render::SceneModel scene = app.buildScene();
    auto stats = renderScene(scene, ds, render::Canvas::whole(fb),
                             render::Eye::kLeft);
    benchmark::DoNotOptimize(stats);
    x = x >= 30.0f ? -30.0f : x + 2.0f;
    if (app.brush().strokes().size() > 64) {
      state.PauseTiming();
      app.apply(ui::BrushClearEvent{255});
      state.ResumeTiming();
    }
  }
  state.counters["displayed"] =
      static_cast<double>(app.lastQueryResult().trajectoriesEvaluated);
}
BENCHMARK(BM_EndToEndInteraction)->Unit(benchmark::kMillisecond);

void BM_QueryAndSceneOnly(benchmark::State& state) {
  const auto& ds = bench::dataset(500);
  core::Session app(core::SharedContext::create(ds, bench::reducedWall()));
  app.apply(ui::LayoutSwitchEvent{2});
  app.apply(ui::BrushStrokeEvent{0, {-25.0f, 0.0f}, 25.0f});
  for (auto _ : state) {
    auto scene = app.buildScene();
    benchmark::DoNotOptimize(scene);
  }
  state.counters["displayed"] =
      static_cast<double>(app.lastQueryResult().trajectoriesEvaluated);
}
BENCHMARK(BM_QueryAndSceneOnly)->Unit(benchmark::kMillisecond);

void BM_HypothesisBattery(benchmark::State& state) {
  const auto& ds = bench::dataset(500);
  std::vector<core::Hypothesis> battery;
  battery.push_back(core::makeHomingHypothesis(traj::CaptureSide::kEast,
                                               traj::ArenaSide::kWest,
                                               ds.arena().radiusCm));
  battery.push_back(core::makeHomingHypothesis(traj::CaptureSide::kWest,
                                               traj::ArenaSide::kEast,
                                               ds.arena().radiusCm));
  battery.push_back(core::makeHomingHypothesis(traj::CaptureSide::kNorth,
                                               traj::ArenaSide::kSouth,
                                               ds.arena().radiusCm));
  battery.push_back(core::makeHomingHypothesis(traj::CaptureSide::kSouth,
                                               traj::ArenaSide::kNorth,
                                               ds.arena().radiusCm));
  battery.push_back(core::makeSeedSearchHypothesis(ds.arena().radiusCm));
  std::size_t supported = 0;
  for (auto _ : state) {
    const auto results = core::evaluateBattery(battery, ds);
    supported = 0;
    for (const auto& r : results) {
      if (r.supported) ++supported;
    }
    benchmark::DoNotOptimize(results);
  }
  state.counters["hypotheses"] = static_cast<double>(battery.size());
  state.counters["supported"] = static_cast<double>(supported);
}
BENCHMARK(BM_HypothesisBattery)->Unit(benchmark::kMillisecond);

void BM_LayoutSwitchLatency(benchmark::State& state) {
  const auto& ds = bench::dataset(500);
  core::Session app(core::SharedContext::create(ds, bench::reducedWall()));
  std::uint8_t preset = 0;
  for (auto _ : state) {
    app.apply(ui::LayoutSwitchEvent{preset});
    benchmark::DoNotOptimize(app.layout());
    preset = static_cast<std::uint8_t>((preset + 1) % 3);
  }
}
BENCHMARK(BM_LayoutSwitchLatency)->Unit(benchmark::kMicrosecond);

void printContext() {
  std::printf("\n=== E4: coverage and interaction latency ===\n");
  const auto& ds = bench::dataset(500);
  const wall::WallSpec wallSpec = bench::paperWall();
  std::printf("dataset: %zu trajectories (paper: ~500)\n\n", ds.size());
  std::printf("%-8s %-8s %-18s\n", "preset", "cells", "dataset coverage");
  core::Session app(core::SharedContext::create(ds, wallSpec));
  for (std::uint8_t p = 0; p < 3; ++p) {
    app.apply(ui::LayoutSwitchEvent{p});
    app.buildScene();
    const auto& cfg = app.layout().config();
    std::printf("%2dx%-5d %-8zu %.0f%%\n", cfg.cellsX, cfg.cellsY,
                app.layout().cellCount(),
                static_cast<double>(app.datasetCoverage()) * 100.0);
  }
  std::printf("paper headline: 36x12 -> 432 cells -> ~85%% of the data "
              "queried at once\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  printContext();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
