// E8 (Fig. 2 / Sec. V): the pilot-study session instrument.
//
// Regenerates: the session-coding summary (tag counts, tool usage,
// sensemaking-stage mapping, hypothesis cadence) for the scripted analyst
// session, plus the costs of script replay, auto-coding, and event
// serialization that record/replay relies on.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/session.h"
#include "study/coding.h"

using namespace svq;

namespace {

ui::InputScript analystSession() {
  ui::InputScript script;
  script.record(0.0, ui::LayoutSwitchEvent{2}, "orient");
  for (std::uint8_t g = 0; g < 5; ++g) {
    ui::GroupDefineEvent e;
    e.groupId = g;
    e.cellRect = {g * 7, 0, 7, 12};
    e.filter.side = static_cast<traj::CaptureSide>(g);
    e.colorIndex = g;
    script.record(10.0 + g * 4.0, e);
  }
  script.record(60.0, ui::PageEvent{+1}, "C: comparing bins");
  script.record(75.0, ui::PageEvent{-1}, "O: on-trail windier");
  script.record(120.0, ui::BrushStrokeEvent{0, {-25.0f, 0.0f}, 28.0f},
                "H: east ants exit west");
  script.record(125.0, ui::TimeWindowEvent{0.0f, 60.0f});
  script.record(150.0, ui::PageEvent{+1}, "V: supported");
  script.record(200.0, ui::BrushClearEvent{255});
  script.record(210.0, ui::BrushStrokeEvent{1, {0.0f, 0.0f}, 10.0f},
                "H: droppers search centre");
  script.record(215.0, ui::TimeWindowEvent{0.0f, 25.0f});
  script.record(240.0, ui::PageEvent{+1}, "V: supported");
  script.record(280.0, ui::TimeScaleEvent{0.4f});
  script.record(300.0, ui::DepthOffsetEvent{-10.0f});
  script.record(330.0, ui::TimeScaleEvent{0.2f}, "O: helical search loops");
  return script;
}

void BM_ScriptReplayThroughApp(benchmark::State& state) {
  const auto& ds = bench::dataset(500);
  const ui::InputScript script = analystSession();
  for (auto _ : state) {
    core::Session app(core::SharedContext::create(ds, bench::reducedWall()));
    const std::size_t applied = app.applyScript(script);
    benchmark::DoNotOptimize(applied);
  }
  state.counters["events"] = static_cast<double>(script.size());
}
BENCHMARK(BM_ScriptReplayThroughApp)->Unit(benchmark::kMillisecond);

void BM_AutoCode(benchmark::State& state) {
  const ui::InputScript script = analystSession();
  for (auto _ : state) {
    const auto log = study::autoCode(script);
    benchmark::DoNotOptimize(log);
  }
}
BENCHMARK(BM_AutoCode)->Unit(benchmark::kMicrosecond);

void BM_SessionStats(benchmark::State& state) {
  const study::SessionLog log = study::autoCode(analystSession());
  for (auto _ : state) {
    auto counts = log.tagCounts();
    auto tools = log.toolUsage();
    auto stages = log.stageCounts();
    auto delays = log.hypothesisToTestDelays();
    benchmark::DoNotOptimize(counts);
    benchmark::DoNotOptimize(tools);
    benchmark::DoNotOptimize(stages);
    benchmark::DoNotOptimize(delays);
  }
}
BENCHMARK(BM_SessionStats)->Unit(benchmark::kMicrosecond);

void BM_ScriptSerialization(benchmark::State& state) {
  const ui::InputScript script = analystSession();
  for (auto _ : state) {
    auto restored = ui::InputScript::deserialize(script.serialize());
    benchmark::DoNotOptimize(restored);
  }
}
BENCHMARK(BM_ScriptSerialization)->Unit(benchmark::kMicrosecond);

void printContext() {
  std::printf("\n=== E8 / Sec. V: coded pilot session ===\n");
  const study::SessionLog log = study::autoCode(analystSession());
  std::printf("%s\n", log.summaryReport().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  printContext();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
