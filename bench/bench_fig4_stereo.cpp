// E2 (Fig. 4): the stereoscopic space-time-cube encoding.
//
// Regenerates: the per-trajectory tessellation and rasterization cost
// (mono vs stereo — the paper's wall renders two views per frame, so the
// expected shape is ~2x), stereo composition cost, and the parallax
// figures behind the ergonomic-slider comfort envelope.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "render/rasterizer.h"
#include "render/scene.h"
#include "render/stereo.h"

using namespace svq;

namespace {

const traj::Trajectory& sampleTrajectory() {
  return bench::dataset(50)[7];
}

void BM_Tessellate(benchmark::State& state) {
  const traj::Trajectory& t = sampleTrajectory();
  const render::CellTransform transform{{0, 0, 400, 400}, 50.0f};
  const render::OrthoStereoCamera camera;
  for (auto _ : state) {
    auto line = tessellate(t, transform, camera, render::Eye::kLeft, {},
                           {0.0f, 1e9f});
    benchmark::DoNotOptimize(line);
  }
  state.counters["samples"] = static_cast<double>(t.size());
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(t.size()));
}
BENCHMARK(BM_Tessellate)->Unit(benchmark::kMicrosecond);

void renderCellNTimes(benchmark::State& state, bool stereo) {
  const auto& ds = bench::dataset(50);
  render::SceneModel scene;
  scene.arenaRadiusCm = ds.arena().radiusCm;
  render::CellView cell;
  cell.trajectoryIndex = 7;
  cell.rect = {0, 0, 400, 400};
  scene.cells.push_back(cell);
  render::Framebuffer fb(400, 400);
  for (auto _ : state) {
    auto stats = renderScene(scene, ds, render::Canvas::whole(fb),
                             render::Eye::kLeft);
    if (stereo) {
      stats = renderScene(scene, ds, render::Canvas::whole(fb),
                          render::Eye::kRight);
    }
    benchmark::DoNotOptimize(stats);
  }
}

void BM_CellRenderMono(benchmark::State& state) {
  renderCellNTimes(state, false);
}
BENCHMARK(BM_CellRenderMono)->Unit(benchmark::kMicrosecond);

void BM_CellRenderStereo(benchmark::State& state) {
  renderCellNTimes(state, true);
}
BENCHMARK(BM_CellRenderStereo)->Unit(benchmark::kMicrosecond);

void BM_AnaglyphCompose(benchmark::State& state) {
  render::Framebuffer left(800, 800, render::colors::kRed);
  render::Framebuffer right(800, 800, render::colors::kBlue);
  for (auto _ : state) {
    auto ana = composeAnaglyph(left, right);
    benchmark::DoNotOptimize(ana);
  }
  state.counters["Mpx"] = 0.64;
}
BENCHMARK(BM_AnaglyphCompose)->Unit(benchmark::kMillisecond);

void BM_RowInterleave(benchmark::State& state) {
  render::Framebuffer left(800, 800, render::colors::kRed);
  render::Framebuffer right(800, 800, render::colors::kBlue);
  for (auto _ : state) {
    auto ri = composeRowInterleaved(left, right);
    benchmark::DoNotOptimize(ri);
  }
}
BENCHMARK(BM_RowInterleave)->Unit(benchmark::kMillisecond);

void BM_ComfortClamp(benchmark::State& state) {
  for (auto _ : state) {
    render::OrthoStereoCamera camera;
    camera.settings().timeScaleCmPerS = 2.0f;
    camera.clampToComfort(180.0f);
    benchmark::DoNotOptimize(camera);
  }
}
BENCHMARK(BM_ComfortClamp);

void printContext() {
  std::printf("\n=== E2 / Fig. 4: stereoscopic space-time cube ===\n");
  std::printf("parallax envelope (viewer at 3 m, %.1f px disparity per cm "
              "of depth, comfort bound %.0f px):\n",
              static_cast<double>(render::StereoSettings{}.parallaxPxPerCm),
              static_cast<double>(
                  render::StereoSettings{}.maxComfortParallaxPx));
  std::printf("%-18s %-18s %-12s\n", "time scale cm/s", "parallax @180s px",
              "comfortable");
  for (float scale : {0.05f, 0.15f, 0.25f, 0.5f, 1.0f}) {
    render::StereoSettings s;
    s.timeScaleCmPerS = scale;
    const render::OrthoStereoCamera cam(s);
    std::printf("%-18.2f %-18.1f %-12s\n", static_cast<double>(scale),
                static_cast<double>(cam.maxAbsParallaxPx(180.0f)),
                cam.comfortable(180.0f) ? "yes" : "no");
  }
  std::printf("expected shape: stereo cell render ~2x mono (two views per "
              "frame)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  printContext();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
