// Session-service bench: hundreds of concurrent explorers on one node.
//
// The multi-tenant acceptance driver for core::SessionService. One
// SharedContext (dataset + wall + cross-session render cache) serves N
// sessions; worker threads replay a mixed interaction workload — layout
// churn, group define/page/clear, popular-region brushing, per-tenant
// exploration strokes, time-window scrubbing (the bench_e8 analyst
// session, parameterized per tenant) — and periodically render each
// tenant's wall through a CellRenderPipeline backed by the shared cache.
// Tenants fall into a small number of behavioural variants, the way real
// crowds do, so identical cells recur across sessions and the shared
// cache turns N renders into ~variants rasterizations + N-variants blit
// sets (render.shared.cross_hits).
//
// Scenarios: sessions_1 / sessions_64 / sessions_256 / sessions_1024
// (smoke: 1/8/16), each reporting events/s, apply-latency p50/p99 (µs),
// shared-cache cross-hit-rate, and bytes. A separate isolation scenario
// replays 8 distinct sessions twice — serially (each alone, no shared
// cache) and interleaved through one SessionService with the shared
// cache on — and demands bit-identical per-tenant framebuffers.
//
// Acceptance checks (non-zero exit on failure):
//   - admission: session N+1 on a full node is refused with the typed
//     kAtCapacity status; every admitted session's events all apply,
//   - isolation: interleaved == serial, per tenant, bit-identical,
//   - (full run only) the 256-session scenario sustains all 256 tenants
//     with apply p99 <= 200 ms, and its cache cross-hit-rate >= 0.5.
//
// Writes BENCH_sessions.json (bench_json.h; consumed by
// scripts/perf_smoke.py against bench/baselines/BENCH_sessions_smoke.json).
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "core/sessionservice.h"
#include "render/pipeline.h"
#include "util/metrics.h"
#include "util/stopwatch.h"

using namespace svq;

namespace {

using Options = bench::BenchCliOptions;

constexpr std::size_t kVariants = 16;

/// One tenant's event stream. Tenants of the same variant produce
/// identical streams (and therefore identical scenes — the shared-cache
/// dedupe driver); different variants brush different spots and scrub to
/// different windows.
// GCC 12 false-positives -Wmaybe-uninitialized on std::variant moves of
// the GroupDefineEvent alternative during vector growth (GCC bug 105593);
// every field below is value-initialized.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
std::vector<ui::Event> tenantScript(std::size_t variant) {
  const float ang = 2.0f * 3.14159265f * static_cast<float>(variant) /
                    static_cast<float>(kVariants);
  const Vec2 spot{std::cos(ang) * 20.0f, std::sin(ang) * 20.0f};
  std::vector<ui::Event> ev;
  ev.reserve(32);
  // Orientation: everyone lands on the same layout and brushes the same
  // popular region first (identical across ALL tenants).
  ev.push_back(ui::LayoutSwitchEvent{1});
  ev.push_back(ui::BrushStrokeEvent{0, {-25.0f, 0.0f}, 10.0f});
  ev.push_back(ui::TimeWindowEvent{0.0f, 120.0f});
  // Grouping churn: define a bin, page through it, tear it down.
  ui::GroupDefineEvent g;
  g.groupId = 0;
  g.cellRect = {static_cast<int>(variant % 8) * 3, 0, 3, 3};
  g.colorIndex = static_cast<std::uint8_t>(variant % 5);
  ev.push_back(g);
  ev.push_back(ui::PageEvent{+1});
  ev.push_back(ui::PageEvent{-1});
  ev.push_back(ui::GroupClearEvent{0});
  // Per-variant exploration: a stroke storm around the tenant's spot.
  for (int i = 0; i < 8; ++i) {
    const float r = 4.0f + static_cast<float>(i % 3);
    ev.push_back(ui::BrushStrokeEvent{
        1, {spot.x + static_cast<float>(i), spot.y}, r});
    if (i % 2 == 1) {
      ev.push_back(
          ui::TimeWindowEvent{0.0f, 30.0f + 4.0f * static_cast<float>(i)});
    }
  }
  // Stereo scrub + settle on the variant's window (scene-state salt: only
  // same-variant tenants share cell keys from here on).
  ev.push_back(ui::TimeScaleEvent{0.4f});
  ev.push_back(ui::DepthOffsetEvent{-8.0f});
  ev.push_back(ui::BrushClearEvent{1});
  ev.push_back(ui::BrushStrokeEvent{1, spot, 8.0f});
  ev.push_back(
      ui::TimeWindowEvent{0.0f, 60.0f + static_cast<float>(variant)});
  return ev;
}
#pragma GCC diagnostic pop

struct ScaleOutcome {
  bool ok = true;
  double crossHitRate = 0.0;
  double elapsedMs = 0.0;
  std::uint64_t events = 0;
};

/// Runs N tenants over one SharedContext with `threads` workers; every
/// tenant replays its variant script via SessionService::apply /
/// submit+drain and renders its wall every `renderEvery` events.
ScaleOutcome runScale(std::size_t n, const traj::TrajectoryDataset& ds,
                      const wall::WallSpec& wall, unsigned threads,
                      bench::BenchReport& report) {
  ScaleOutcome out;
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.reset("sessions.");
  reg.reset("render.shared.");

  const auto ctx = core::SharedContext::create(ds, wall);
  core::SessionService::Options sopt;
  sopt.maxSessions = n;
  core::SessionService svc(ctx, sopt);

  std::vector<core::SessionId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto admission = svc.admit();
    if (!admission) {
      std::fprintf(stderr, "FAIL: admission %zu/%zu refused: %s\n", i, n,
                   admission.status.message().c_str());
      out.ok = false;
      return out;
    }
    ids.push_back(admission.id);
  }
  // Typed refusal at capacity — the load-balancer contract.
  if (!svc.admit().status.isAtCapacity()) {
    std::fprintf(stderr, "FAIL: over-capacity admit not kAtCapacity\n");
    out.ok = false;
  }

  const std::size_t renderEvery = 8;
  std::atomic<bool> failed{false};
  std::atomic<std::uint64_t> events{0};
  Stopwatch clock;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      render::Framebuffer fb(wall.totalPxW(), wall.totalPxH());
      for (std::size_t s = t; s < ids.size(); s += threads) {
        const auto script = tenantScript(s % kVariants);
        // One pipeline per tenant stream, all feeding the shared cache.
        // Local slot caching off: the shared cache is the pixel store.
        render::PipelineOptions popt;
        popt.cacheBudgetBytes = 0;
        popt.sharedCache = &ctx->renderCache();
        render::CellRenderPipeline pipe(popt);
        std::uint64_t applied = 0;
        for (std::size_t e = 0; e < script.size(); ++e) {
          // Odd tenants exercise the queued path, even ones the
          // synchronous path; both must preserve per-tenant order.
          const core::Status st = (s % 2 == 1)
                                      ? svc.submit(ids[s], script[e])
                                      : svc.apply(ids[s], script[e]);
          if (!st.isOk()) {
            std::fprintf(stderr, "FAIL: event %zu of tenant %zu: %s\n", e, s,
                         st.message().c_str());
            failed.store(true);
          }
          ++applied;
          if ((e + 1) % renderEvery == 0 || e + 1 == script.size()) {
            if (s % 2 == 1 && !svc.drain(ids[s]).isOk()) failed.store(true);
            render::SceneModel scene;
            if (!svc.buildScene(ids[s], scene).isOk()) {
              failed.store(true);
              continue;
            }
            pipe.render(scene, ds, render::Canvas::whole(fb),
                        render::Eye::kCenter);
          }
        }
        events.fetch_add(applied);
      }
    });
  }
  for (auto& w : workers) w.join();
  out.elapsedMs = clock.elapsedMillis();
  out.events = events.load();
  out.ok = out.ok && !failed.load();
  if (svc.activeSessions() != n) {
    std::fprintf(stderr, "FAIL: %zu of %zu sessions survived\n",
                 svc.activeSessions(), n);
    out.ok = false;
  }
  out.crossHitRate = ctx->renderCache().stats().crossHitRate();

  auto& s = report.add("sessions_" + std::to_string(n), {out.elapsedMs});
  bench::attachCounters(s, "sessions.");
  bench::attachCounters(s, "render.shared.");
  s.counters["sessions"] = static_cast<double>(n);
  s.counters["threads"] = static_cast<double>(threads);
  s.counters["events"] = static_cast<double>(out.events);
  s.counters["events_per_s"] =
      out.elapsedMs > 0.0 ? 1000.0 * static_cast<double>(out.events) /
                                out.elapsedMs
                          : 0.0;
  s.counters["cross_hit_rate"] = out.crossHitRate;
  return out;
}

/// 8 distinct tenants, replayed twice: serially (each alone over its own
/// context, no shared cache) and interleaved round-robin through one
/// SessionService with the shared cache on. Per-tenant framebuffers must
/// be bit-identical — concurrency and cross-session caching must never
/// change a single pixel of anyone's wall.
bool isolationCheck(const traj::TrajectoryDataset& ds,
                    const wall::WallSpec& wall, bench::BenchReport& report) {
  constexpr std::size_t kTenants = 8;
  std::vector<std::vector<ui::Event>> scripts;
  for (std::size_t s = 0; s < kTenants; ++s) {
    scripts.push_back(tenantScript(s));  // 8 distinct variants
  }

  // Serial ground truth.
  std::vector<std::uint64_t> truth(kTenants);
  for (std::size_t s = 0; s < kTenants; ++s) {
    core::Session solo(core::SharedContext::create(ds, wall));
    for (const ui::Event& e : scripts[s]) solo.apply(e);
    const render::SceneModel scene = solo.buildScene();
    render::Framebuffer fb(wall.totalPxW(), wall.totalPxH());
    render::CellRenderPipeline pipe;
    pipe.render(scene, ds, render::Canvas::whole(fb), render::Eye::kCenter);
    truth[s] = fb.contentHash();
  }

  // Interleaved replay over one shared context + cache.
  const auto ctx = core::SharedContext::create(ds, wall);
  core::SessionService svc(ctx);
  std::vector<core::SessionId> ids;
  for (std::size_t s = 0; s < kTenants; ++s) {
    const auto admission = svc.admit();
    if (!admission) return false;
    ids.push_back(admission.id);
  }
  std::size_t longest = 0;
  for (const auto& sc : scripts) longest = std::max(longest, sc.size());
  for (std::size_t e = 0; e < longest; ++e) {
    for (std::size_t s = 0; s < kTenants; ++s) {
      if (e < scripts[s].size()) (void)svc.apply(ids[s], scripts[s][e]);
    }
  }

  Stopwatch clock;
  bool ok = true;
  for (std::size_t s = 0; s < kTenants; ++s) {
    render::SceneModel scene;
    if (!svc.buildScene(ids[s], scene).isOk()) {
      ok = false;
      continue;
    }
    render::Framebuffer fb(wall.totalPxW(), wall.totalPxH());
    render::PipelineOptions popt;
    popt.sharedCache = &ctx->renderCache();
    render::CellRenderPipeline pipe(popt);
    pipe.render(scene, ds, render::Canvas::whole(fb), render::Eye::kCenter);
    if (fb.contentHash() != truth[s]) {
      std::fprintf(stderr,
                   "FAIL: tenant %zu interleaved wall differs from serial\n",
                   s);
      ok = false;
    }
  }
  auto& sc = report.add("isolation_8way", {clock.elapsedMillis()});
  sc.counters["tenants"] = static_cast<double>(kTenants);
  sc.counters["bit_identical"] = ok ? 1.0 : 0.0;
  return ok;
}

int run(const Options& opt) {
  const std::size_t trajCount = opt.smoke ? 120 : 500;
  const wall::WallSpec wall =
      opt.smoke ? bench::reducedWall(160, 90) : bench::reducedWall();
  const std::vector<std::size_t> fleets =
      opt.smoke ? std::vector<std::size_t>{1, 8, 16}
                : std::vector<std::size_t>{1, 64, 256, 1024};
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned threads = std::max(2u, std::min(8u, hw == 0 ? 4u : hw));

  const auto& ds = bench::dataset(trajCount);
  std::printf("=== session service: multi-tenant replay (%s) ===\n",
              opt.smoke ? "smoke" : "full");
  std::printf("%zu trajectories, %dx%d px wall, %u worker threads\n",
              ds.size(), wall.totalPxW(), wall.totalPxH(), threads);

  bench::BenchReport report;
  bool ok = true;
  double p99At256 = 0.0;
  double crossAt256 = 0.0;

  for (const std::size_t n : fleets) {
    const ScaleOutcome outcome = runScale(n, ds, wall, threads, report);
    ok = ok && outcome.ok;
    const auto& sc = report.scenarios().back();
    const auto p50 = sc.counters.find("sessions.apply_latency_us.p50");
    const auto p99 = sc.counters.find("sessions.apply_latency_us.p99");
    std::printf(
        "%-14s %8.1f ms  %9.0f ev/s  apply p50/p99 %6.0f/%6.0f us  "
        "cross-hit %5.1f%%\n",
        sc.name.c_str(), outcome.elapsedMs, sc.counters.at("events_per_s"),
        p50 != sc.counters.end() ? p50->second : 0.0,
        p99 != sc.counters.end() ? p99->second : 0.0, 100.0 *
        outcome.crossHitRate);
    // Per-health-state latency split (DESIGN.md §14): how much of the
    // stream ran Degraded/Shedding, and what each state's apply p99 was.
    // A healthy-only run prints zeros for the overload columns.
    const auto stateCol = [&sc](const char* state,
                                const char* field) -> double {
      const auto it = sc.counters.find(
          std::string("sessions.apply_latency_us.") + state + "." + field);
      return it != sc.counters.end() ? it->second : 0.0;
    };
    std::printf(
        "               by health state (n @ p99 us): healthy %.0f @ %.0f"
        "  degraded %.0f @ %.0f  shedding %.0f @ %.0f\n",
        stateCol("healthy", "count"), stateCol("healthy", "p99"),
        stateCol("degraded", "count"), stateCol("degraded", "p99"),
        stateCol("shedding", "count"), stateCol("shedding", "p99"));
    if (n == 256) {
      p99At256 = p99 != sc.counters.end() ? p99->second : 0.0;
      crossAt256 = outcome.crossHitRate;
    }
  }

  if (!isolationCheck(ds, wall, report)) {
    ok = false;
  } else {
    std::printf("isolation_8way: interleaved == serial, bit-identical\n");
  }

  if (!opt.smoke) {
    // p99 from the log2-bucketed histogram (bucket upper bounds).
    if (p99At256 > 200000.0) {
      std::fprintf(stderr, "FAIL: 256-session apply p99 %.0f us > 200 ms\n",
                   p99At256);
      ok = false;
    }
    if (crossAt256 < 0.5) {
      std::fprintf(stderr,
                   "FAIL: 256-session cross-hit-rate %.2f below 0.5\n",
                   crossAt256);
      ok = false;
    }
  }

  if (!bench::writeReport(report, opt.out)) ok = false;
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parseBenchCli(argc, argv, "BENCH_sessions.json");
  if (!opt) return 2;
  return run(*opt);
}
