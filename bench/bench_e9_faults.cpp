// E9: fault-tolerant cluster rendering under injected rank failures.
//
// Regenerates the operational claim behind the paper's wall deployment:
// a long-running analysis session on an 18-node display cluster must
// survive a render node dying mid-session. The deterministic context
// report kills one of 18 ranks mid-session and shows (a) the session
// completes, (b) the wall degrades for >0 frames but recovers within 3,
// (c) no frame ever shows a black tile (composites stay bit-identical to
// the reference for this static scene), while (d) the pre-Status API —
// blocking collectives with no failure detection — wedges on the same
// scenario and is only recovered by the watchdog abort.
//
// The benchmark sweep measures recovery cost across failure time x rank
// count x interconnect model.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench_common.h"
#include "cluster/clusterapp.h"
#include "core/session.h"
#include "traj/shardstore.h"
#include "util/io.h"
#include "util/metrics.h"

using namespace svq;

namespace {

// Small tiles and mono rendering: this binary measures the fault path,
// not rasterization, and the host may be a single core.
wall::WallSpec wallOfShape(int cols, int rows) {
  wall::TileSpec tile;
  tile.pxW = 96;
  tile.pxH = 54;
  tile.activeWmm = 1150.0f;
  tile.activeHmm = 647.0f;
  return wall::WallSpec(tile, cols, rows);
}

render::SceneModel sceneFor(const traj::TrajectoryDataset& ds,
                            const wall::WallSpec& w) {
  core::Session app(core::SharedContext::create(ds, w));
  app.apply(ui::LayoutSwitchEvent{1});
  app.apply(ui::BrushStrokeEvent{0, {-25.0f, 0.0f}, 25.0f});
  return app.buildScene();
}

cluster::FaultToleranceOptions fastDetection() {
  cluster::FaultToleranceOptions ft;
  ft.enabled = true;
  ft.heartbeatTimeoutSeconds = 0.05;
  ft.retries = 1;
  ft.backoffMultiplier = 2.0;
  return ft;
}

void runFaultSession(benchmark::State& state, int cols, int rows,
                     std::uint64_t failAtFrame, net::NetworkModel network) {
  const auto& ds = bench::dataset(120);
  const wall::WallSpec w = wallOfShape(cols, rows);
  const render::SceneModel scene = sceneFor(ds, w);
  const std::vector<render::SceneModel> frames(6, scene);
  const int victim = w.tileCount() / 2;  // never rank 0 (the master)

  cluster::ClusterResult last;
  for (auto _ : state) {
    last = cluster::runClusterSession(
        ds, w, frames,
        cluster::ClusterOptions::preset(cluster::ClusterPreset::kMinimal)
            .withNetwork(network)
            .withFaultTolerance(fastDetection())
            .withFailure(victim, failAtFrame));
    benchmark::DoNotOptimize(last);
  }
  state.counters["ranks"] = w.tileCount();
  state.counters["frames_completed"] = static_cast<double>(last.framesCompleted);
  state.counters["degraded_frames"] = static_cast<double>(last.degradedFrames);
  state.counters["frames_to_recovery"] =
      static_cast<double>(last.framesToRecovery);
  std::uint64_t timeouts = 0, retries = 0;
  for (const auto& rs : last.rankStats) {
    timeouts += rs.timeouts;
    retries += rs.retries;
  }
  state.counters["timeouts"] = static_cast<double>(timeouts);
  state.counters["retries"] = static_cast<double>(retries);
}

void BM_RecoveryByRankCount(benchmark::State& state) {
  static constexpr std::pair<int, int> kShapes[] = {{2, 1}, {3, 2}, {6, 3}};
  const auto [cols, rows] = kShapes[state.range(0)];
  runFaultSession(state, cols, rows, /*failAtFrame=*/2, {});
  state.SetLabel(std::to_string(cols) + "x" + std::to_string(rows) +
                 " tiles, kill mid-session");
}
BENCHMARK(BM_RecoveryByRankCount)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

void BM_RecoveryByFailureTime(benchmark::State& state) {
  const auto failAt = static_cast<std::uint64_t>(state.range(0));
  runFaultSession(state, 3, 2, failAt, {});
  state.SetLabel("3x2 tiles, kill at frame " + std::to_string(failAt));
}
BENCHMARK(BM_RecoveryByFailureTime)
    ->Arg(1)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond);

void BM_RecoveryByNetworkModel(benchmark::State& state) {
  static constexpr const char* kNames[] = {"instant", "1GbE", "10GbE"};
  const net::NetworkModel models[] = {
      {}, net::NetworkModel::gigabitEthernet(),
      net::NetworkModel::tenGigabitEthernet()};
  const auto i = static_cast<std::size_t>(state.range(0));
  runFaultSession(state, 3, 2, /*failAtFrame=*/2, models[i]);
  state.SetLabel(std::string("3x2 tiles, ") + kNames[i] + " interconnect");
}
BENCHMARK(BM_RecoveryByNetworkModel)
    ->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

void BM_FaultToleranceOverheadHealthy(benchmark::State& state) {
  // Price of armed failure detection when nothing fails.
  const bool armed = state.range(0) != 0;
  const auto& ds = bench::dataset(120);
  const wall::WallSpec w = wallOfShape(3, 2);
  const render::SceneModel scene = sceneFor(ds, w);
  const std::vector<render::SceneModel> frames(6, scene);
  auto options =
      cluster::ClusterOptions::preset(cluster::ClusterPreset::kMinimal);
  if (armed) options.withFaultTolerance(fastDetection());
  for (auto _ : state) {
    const auto result = cluster::runClusterSession(ds, w, frames, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(armed ? "detection armed" : "detection off");
}
BENCHMARK(BM_FaultToleranceOverheadHealthy)
    ->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void printStorageFaultContext();

void printContext() {
  std::printf("\n=== E9: rank failure on the 18-node wall ===\n");
  const auto& ds = bench::dataset(120);
  const wall::WallSpec w = wallOfShape(6, 3);  // 18 ranks, one per tile
  const render::SceneModel scene = sceneFor(ds, w);
  const std::vector<render::SceneModel> frames(6, scene);
  const int victim = 7;
  const std::uint64_t failAt = 2;
  std::printf("18 ranks, 6 frames, rank %d killed at frame %llu\n\n", victim,
              static_cast<unsigned long long>(failAt));

  const auto degraded = cluster::runClusterSession(
      ds, w, frames,
      cluster::ClusterOptions::preset(cluster::ClusterPreset::kMinimal)
          .withKeepAllComposites(true)
          .withFaultTolerance(fastDetection())
          .withFailure(victim, failAt));
  const auto ref =
      cluster::renderReferenceWall(ds, w, scene, render::Eye::kLeft);
  bool everBlackTile = false;
  for (const auto& fb : degraded.frameComposites) {
    if (fb.contentHash() != ref.contentHash()) everBlackTile = true;
  }
  int inheritedTiles = 0;
  for (const auto& rs : degraded.rankStats) {
    if (rs.diedAtFrame < 0) inheritedTiles += rs.tilesOwnedAtEnd - 1;
  }
  std::printf("fault-tolerant session (typed Status API):\n");
  std::printf("  completed:           %llu/%zu frames\n",
              static_cast<unsigned long long>(degraded.framesCompleted),
              frames.size());
  std::printf("  degraded frames:     %llu (>0 expected)\n",
              static_cast<unsigned long long>(degraded.degradedFrames));
  std::printf("  frames to recovery:  %llu (<=3 expected)\n",
              static_cast<unsigned long long>(degraded.framesToRecovery));
  std::printf("  reassigned tiles:    %d (round-robin to survivors)\n",
              inheritedTiles);
  std::printf("  all frames == reference (no black tile): %s\n",
              everBlackTile ? "NO" : "yes");

  const auto wedged = cluster::runClusterSession(
      ds, w, frames,
      cluster::ClusterOptions::preset(cluster::ClusterPreset::kMinimal)
          .withFailure(victim, failAt)
          .withWatchdog(2.0));
  std::printf("same failure, blocking collectives (pre-Status semantics):\n");
  std::printf("  wedged at frame %llu; watchdog abort: %s\n\n",
              static_cast<unsigned long long>(wedged.framesCompleted),
              wedged.aborted ? "yes" : "NO");

  const bool pass = !degraded.aborted &&
                    degraded.framesCompleted == frames.size() &&
                    degraded.degradedFrames > 0 &&
                    degraded.framesToRecovery >= 1 &&
                    degraded.framesToRecovery <= 3 && !everBlackTile &&
                    wedged.aborted;
  std::printf("acceptance: %s\n\n", pass ? "PASS" : "FAIL");

  printStorageFaultContext();
}

// Companion to the rank-failure scenario: the same session survives its
// *storage* ranks rotting too. A small shard store is read through a
// deterministic fault injector (persistent bit flips + transient EIO);
// the metrics registry shows the quarantine/retry tallies the operator
// would see, then reset() clears the namespace for the next scenario.
void printStorageFaultContext() {
  std::printf("=== E9b: storage faults on the same session ===\n");
  const std::string prefix = "e9.storage";
  auto& registry = MetricsRegistry::global();
  registry.reset(prefix);

  const auto& ds = bench::dataset(120);
  const std::string path =
      (std::filesystem::temp_directory_path() / "svq_e9_storage.svqs").string();
  {
    traj::ShardStoreWriter writer(path, ds.arena(), /*shardCapacity=*/8);
    for (std::size_t i = 0; i < ds.size(); ++i) writer.add(ds[i]);
    if (!writer.finish()) {
      std::printf("  FAIL: could not write store\n\n");
      return;
    }
  }

  io::FaultInjector::Plan plan;
  plan.bitFlipProbability = 0.15;   // persistent: CRC catches, quarantine
  plan.eioProbability = 0.25;       // transient: retry clears it
  plan.transientFailCount = 1;
  plan.seed = 0xE9B;
  io::FaultInjector injector(plan);

  traj::ShardStoreOptions storeOpt;
  storeOpt.metricsPrefix = prefix;
  storeOpt.retry.backoffBaseMs = 0.0;
  storeOpt.faultInjector = &injector;
  auto store = traj::ShardStore::open(path, storeOpt);
  if (!store) {
    std::printf("  FAIL: could not open store\n\n");
    return;
  }
  for (std::size_t s = 0; s < store->shardCount(); ++s) (void)store->shard(s);

  std::printf("%zu shards read under injected faults (bit-flip p=%.2f, "
              "transient EIO p=%.2f):\n",
              store->shardCount(), plan.bitFlipProbability,
              plan.eioProbability);
  std::printf("%s", registry.dump(prefix).c_str());
  std::printf("coverage after quarantine: %.3f "
              "(every surviving shard still readable)\n",
              store->coverage());
  const bool pass = store->coverage() > 0.0 &&
                    store->quarantinedShardCount() < store->shardCount();
  std::printf("acceptance: %s\n\n", pass ? "PASS" : "FAIL");

  registry.reset(prefix);
  store.reset();
  std::filesystem::remove(path);
}

}  // namespace

int main(int argc, char** argv) {
  printContext();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
