// E10: out-of-core scalability — 100k to 1M trajectories through the
// sharded store (see EXPERIMENTS.md §E10).
//
// For each size N the driver:
//   1. stream-generates N short trajectories straight into a shard store
//      (peak writer memory = one shard, never the dataset),
//   2. opens the store under a fixed cache budget and trains the batch
//      SOM out-of-core (ShardSomExplorer — shards stream through the
//      thread pool, features are recomputed per pass, never all resident),
//   3. drills into the largest cluster and runs a full-fidelity brush
//      query over its materialized members,
//   4. measures overview brush-query throughput,
// and reports train time, queries/sec, cache hit rate, and peak resident
// trajectory bytes against the budget.
//
// Two acceptance checks gate the run (non-zero exit on failure):
//   - bounded residency: peak resident bytes <= budget + one shard (the
//     cache admits a shard before evicting, so the transient overshoot is
//     at most the largest shard),
//   - determinism (smallest size only): parallel training is bit-identical
//     to serial — same weights, same assignment.
//
// Usage:
//   bench_e10_scale [--sizes=100000,300000,1000000] [--budget-mb=64]
//                   [--shard-capacity=4096] [--threads=4] [--epochs=6]
//                   [--fault-pct=P]
//
// The default is a single 100k sweep (fits a laptop's coffee break); the
// acceptance run for the 1M figure is --sizes=100000,1000000.
//
// With --fault-pct=P a degraded pass follows each healthy one: the same
// store is reopened behind a deterministic fault injector flipping one
// bit in P% of shard payloads (persistent media rot — CRC catches it,
// the shard is quarantined). Three extra acceptance checks gate it:
//   - completion: clustering and drill-down still finish over survivors,
//   - coverage: the metrics registry's quarantine tally lands near 1-P%,
//   - determinism: for the same fault seed, quarantine set, assignment
//     and SOM weights are bit-identical at 1, 4 and 8 threads.
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/clusterquery.h"
#include "traj/shardstore.h"
#include "traj/synth.h"
#include "util/io.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/threadpool.h"

using namespace svq;

namespace {

struct Options {
  std::vector<std::uint64_t> sizes{100000};
  std::size_t budgetMb = 64;
  std::uint32_t shardCapacity = 4096;
  unsigned threads = 4;
  std::size_t epochs = 6;
  /// Percent of shard payloads hit by a persistent bit flip (0 = off).
  double faultPct = 0.0;
};

bool parseArgs(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sizes=", 0) == 0) {
      opt.sizes.clear();
      std::string list = arg.substr(8);
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        opt.sizes.push_back(std::strtoull(tok.c_str(), nullptr, 10));
        pos = comma == std::string::npos ? list.size() : comma + 1;
      }
    } else if (arg.rfind("--budget-mb=", 0) == 0) {
      opt.budgetMb = std::strtoull(arg.c_str() + 12, nullptr, 10);
    } else if (arg.rfind("--shard-capacity=", 0) == 0) {
      opt.shardCapacity = static_cast<std::uint32_t>(
          std::strtoul(arg.c_str() + 17, nullptr, 10));
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads =
          static_cast<unsigned>(std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--epochs=", 0) == 0) {
      opt.epochs = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--fault-pct=", 0) == 0) {
      opt.faultPct = std::strtod(arg.c_str() + 12, nullptr);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return opt.sizes.size() > 0 && opt.budgetMb > 0 && opt.shardCapacity > 0 &&
         opt.faultPct >= 0.0 && opt.faultPct < 100.0;
}

/// Streams N short trajectories into a shard store at `path`. Short
/// trajectories (24 s cap at 5 Hz) keep the 1M file around half a GB.
bool generateStore(const std::string& path, std::uint64_t n,
                   std::uint32_t shardCapacity, double* seconds) {
  traj::AntBehaviorParams params;
  params.timeStepS = 0.2f;
  params.maxDurationS = 24.0f;
  traj::AntSimulator sim(params, 0xE10ULL + n);
  const traj::ArenaSpec arena{};

  Stopwatch sw;
  traj::ShardStoreWriter writer(path, arena, shardCapacity);
  if (!writer.ok()) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    traj::TrajectoryMeta meta;
    meta.id = static_cast<std::uint32_t>(i);
    meta.side = static_cast<traj::CaptureSide>(i % 5);
    meta.direction = static_cast<traj::JourneyDirection>(i % 2);
    meta.seed = static_cast<traj::SeedState>(i % 3);
    writer.add(sim.simulate(meta, arena));
  }
  const bool ok = writer.finish();
  *seconds = sw.elapsedSeconds();
  return ok;
}

core::BrushGrid westBrush(float arenaRadius) {
  core::BrushCanvas canvas(arenaRadius, 256);
  core::paintArenaHalf(canvas, 0, traj::ArenaSide::kWest, arenaRadius);
  return canvas.grid();
}

std::uint64_t largestShardEstimateBytes(const traj::ShardStore& store) {
  std::uint64_t largest = 0;
  for (std::size_t s = 0; s < store.shardCount(); ++s) {
    const traj::ShardInfo& info = store.shardInfo(s);
    const std::uint64_t est = info.pointCount * sizeof(traj::TrajPoint) +
                              info.trajectoryCount * sizeof(traj::Trajectory);
    largest = est > largest ? est : largest;
  }
  return largest;
}

/// Degraded pass for --fault-pct: reopens `path` behind a deterministic
/// bit-flip injector at 1/4/8 threads and checks (a) clustering and
/// drill-down complete over the survivors, (b) the metrics registry's
/// quarantine tally puts coverage near 1-P%, (c) residency stays within
/// the budget+shard bound, (d) all three thread counts produce the same
/// quarantine set, assignment and SOM weights bit-for-bit.
bool runFaultScenario(const std::string& path, std::uint64_t n,
                      double faultPct, std::size_t budget,
                      const traj::SomParams& somP,
                      const traj::FeatureParams& featP) {
  const double p = faultPct / 100.0;
  bool pass = true;

  traj::ShardClustering reference;
  double refCoverage = -1.0;

  const unsigned threadCounts[] = {1, 4, 8};
  for (std::size_t ti = 0; ti < 3; ++ti) {
    const unsigned t = threadCounts[ti];
    io::FaultInjector::Plan plan;
    plan.bitFlipProbability = p;  // persistent rot: CRC catches, quarantine
    plan.seed = 0xE10FA;          // same seed at every thread count
    io::FaultInjector injector(plan);

    const std::string prefix =
        "e10.fault." + std::to_string(n) + ".t" + std::to_string(t);
    auto& registry = MetricsRegistry::global();
    registry.reset(prefix);

    traj::ShardStoreOptions storeOpt;
    storeOpt.cacheBudgetBytes = budget;
    storeOpt.metricsPrefix = prefix;
    storeOpt.faultInjector = &injector;
    auto store = traj::ShardStore::open(path, storeOpt);
    if (!store) {
      std::printf("  FAIL: degraded open failed (n=%" PRIu64 ")\n", n);
      return false;
    }

    ThreadPool pool(t);
    core::ShardSomExplorer explorer(*store, somP, featP, &pool);
    const traj::ShardClustering& clustering = explorer.clustering();

    // (a) Completion: drill into the largest surviving cluster.
    std::uint32_t largestNode = 0;
    std::size_t largestSize = 0;
    for (std::uint32_t node : explorer.displayableClusters()) {
      const std::size_t sz = clustering.members[node].size();
      if (sz > largestSize) {
        largestSize = sz;
        largestNode = node;
      }
    }
    const core::BrushGrid brush = westBrush(store->arena().radiusCm);
    const core::QueryResult drill =
        explorer.queryClusterMembers(largestNode, brush, core::QueryParams{});
    if (largestSize == 0 || drill.trajectoriesEvaluated != largestSize) {
      std::printf("  FAIL: degraded drill-down evaluated %zu of %zu members "
                  "(threads=%u)\n",
                  drill.trajectoriesEvaluated, largestSize, t);
      pass = false;
    }

    // (b) Coverage from the metrics registry, cross-checked against the
    // store's own accounting and the injected rate.
    const auto counters = registry.snapshot(prefix);
    const std::uint64_t q = counters.at(prefix + ".quarantined_trajectories");
    const double coverage =
        1.0 - static_cast<double>(q) / static_cast<double>(n);
    const double tolerance = std::max(
        0.02, 4.0 * std::sqrt(p * (1.0 - p) /
                              static_cast<double>(store->shardCount())));
    if (std::abs(coverage - store->coverage()) > 1e-9 ||
        std::abs(coverage - clustering.coverage()) > 1e-9) {
      std::printf("  FAIL: metrics coverage %.4f disagrees with store %.4f / "
                  "clustering %.4f\n",
                  coverage, store->coverage(), clustering.coverage());
      pass = false;
    }
    if (std::abs(coverage - (1.0 - p)) > tolerance) {
      std::printf("  FAIL: coverage %.4f not within %.4f of expected %.4f\n",
                  coverage, tolerance, 1.0 - p);
      pass = false;
    }

    // (c) Residency bound holds while degraded too.
    const traj::ShardCacheStats stats = store->cacheStats();
    const std::uint64_t bound = budget + largestShardEstimateBytes(*store);
    if (stats.peakBytesResident > bound) {
      std::printf("  FAIL: degraded peak resident %" PRIu64
                  " B exceeds bound %" PRIu64 " B\n",
                  stats.peakBytesResident, bound);
      pass = false;
    }

    // (d) Bit-determinism across thread counts for the same fault seed.
    if (ti == 0) {
      reference = clustering;
      refCoverage = coverage;
      std::printf("  degraded pass (bit-flip p=%.3f, seed 0x%llX): "
                  "%zu/%zu shards quarantined, coverage %.4f\n",
                  p, static_cast<unsigned long long>(plan.seed),
                  clustering.quarantinedShards.size(), store->shardCount(),
                  coverage);
      std::printf("%s", registry.dump(prefix).c_str());
    } else {
      const bool identical =
          clustering.quarantinedShards == reference.quarantinedShards &&
          clustering.assignment == reference.assignment &&
          clustering.somWeights == reference.somWeights &&
          clustering.coveredTrajectories == reference.coveredTrajectories &&
          coverage == refCoverage;
      if (!identical) {
        std::printf("  FAIL: degraded clustering at %u threads DIVERGES from "
                    "1 thread\n",
                    t);
        pass = false;
      }
    }
    registry.reset(prefix);
  }
  if (pass) {
    std::printf("  PASS: degraded run complete, coverage %.4f ~= %.4f, "
                "bit-identical at 1/4/8 threads\n",
                refCoverage, 1.0 - p);
  }
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parseArgs(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: %s [--sizes=N,N,...] [--budget-mb=M] "
                 "[--shard-capacity=C] [--threads=T] [--epochs=E] "
                 "[--fault-pct=P]\n",
                 argv[0]);
    return 2;
  }

  traj::SomParams somP;
  somP.rows = 8;
  somP.cols = 8;
  somP.epochs = opt.epochs;
  somP.seed = 0x5C2012ULL;
  traj::FeatureParams featP;
  featP.resampleCount = 24;

  ThreadPool pool(opt.threads);
  const std::size_t budget = opt.budgetMb << 20;
  bool allPass = true;

  std::printf("E10 out-of-core scale sweep: budget=%zu MB, shard capacity=%u, "
              "threads=%u, SOM %zux%zu x%zu epochs\n\n",
              opt.budgetMb, opt.shardCapacity, opt.threads, somP.rows,
              somP.cols, somP.epochs);
  std::printf("%10s %9s %9s %9s %8s %9s %11s %11s %9s %9s\n", "trajs",
              "gen_s", "file_MB", "train_s", "hit%", "peak_MB", "overview_qps",
              "drill_qps", "clusters", "largest");

  for (std::size_t si = 0; si < opt.sizes.size(); ++si) {
    const std::uint64_t n = opt.sizes[si];
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("svq_e10_" + std::to_string(n) + ".svqs")).string();

    double genSeconds = 0.0;
    if (!generateStore(path, n, opt.shardCapacity, &genSeconds)) {
      std::fprintf(stderr, "FAIL: could not write store for n=%" PRIu64 "\n",
                   n);
      return 1;
    }
    const auto fileBytes = std::filesystem::file_size(path);

    traj::ShardStoreOptions storeOpt;
    storeOpt.cacheBudgetBytes = budget;
    storeOpt.metricsPrefix = "e10." + std::to_string(n);
    auto store = traj::ShardStore::open(path, storeOpt);
    if (!store) {
      std::fprintf(stderr, "FAIL: could not open store for n=%" PRIu64 "\n",
                   n);
      return 1;
    }

    // 2. Out-of-core SOM training (the expensive offline step).
    Stopwatch trainSw;
    core::ShardSomExplorer explorer(*store, somP, featP, &pool);
    const double trainSeconds = trainSw.elapsedSeconds();

    // 3. Cluster drill-down: materialize the largest cluster and brush it
    // at full fidelity.
    std::uint32_t largestNode = 0;
    std::size_t largestSize = 0;
    for (std::uint32_t node : explorer.displayableClusters()) {
      const std::size_t sz = explorer.clustering().members[node].size();
      if (sz > largestSize) {
        largestSize = sz;
        largestNode = node;
      }
    }
    const core::BrushGrid brush = westBrush(store->arena().radiusCm);
    const core::QueryParams queryParams;

    Stopwatch drillSw;
    const core::QueryResult drill =
        explorer.queryClusterMembers(largestNode, brush, queryParams);
    const double drillSeconds = drillSw.elapsedSeconds();

    // 4. Overview brush-query throughput (the interactive path: one
    // evaluation per displayable cluster, independent of N).
    const int overviewReps = 50;
    Stopwatch overviewSw;
    std::size_t highlighted = 0;
    for (int r = 0; r < overviewReps; ++r) {
      highlighted +=
          explorer.queryClusters(brush, queryParams).trajectoriesHighlighted;
    }
    const double overviewQps = overviewReps / overviewSw.elapsedSeconds();

    const traj::ShardCacheStats stats = store->cacheStats();
    std::printf("%10" PRIu64 " %9.2f %9.1f %9.2f %7.1f%% %9.1f %11.1f %11.2f "
                "%9zu %9zu\n",
                n, genSeconds, fileBytes / double(1u << 20), trainSeconds,
                100.0 * stats.hitRate(),
                stats.peakBytesResident / double(1u << 20), overviewQps,
                1.0 / drillSeconds, explorer.displayableClusters().size(),
                largestSize);

    // Acceptance: residency bounded by budget + one shard (admit-then-
    // evict transient), verified by the metrics counters.
    const std::uint64_t bound = budget + largestShardEstimateBytes(*store);
    if (stats.peakBytesResident > bound) {
      std::printf("  FAIL: peak resident %" PRIu64 " B exceeds budget+shard "
                  "bound %" PRIu64 " B\n",
                  stats.peakBytesResident, bound);
      allPass = false;
    } else {
      std::printf("  PASS: peak resident %.1f MB within budget+shard bound "
                  "%.1f MB (evictions=%" PRIu64 ")\n",
                  stats.peakBytesResident / double(1u << 20),
                  bound / double(1u << 20), stats.evictions);
    }
    if (drill.trajectoriesEvaluated != largestSize) {
      std::printf("  FAIL: drill-down evaluated %zu of %zu members\n",
                  drill.trajectoriesEvaluated, largestSize);
      allPass = false;
    }
    (void)highlighted;

    // Determinism gate at the smallest size: parallel training must be
    // bit-identical to serial (same seed, any thread count or shard
    // order — see Som::trainBatch).
    if (si == 0) {
      const traj::ShardClustering serial =
          traj::clusterShardStore(*store, somP, featP, nullptr);
      const bool identical =
          serial.assignment == explorer.clustering().assignment &&
          serial.somWeights == explorer.clustering().somWeights;
      std::printf("  %s: parallel SOM %s serial (n=%" PRIu64 ")\n",
                  identical ? "PASS" : "FAIL",
                  identical ? "bit-identical to" : "DIVERGES from", n);
      allPass = allPass && identical;
    }

    // Degraded pass: same store, injected media faults.
    if (opt.faultPct > 0.0) {
      allPass =
          runFaultScenario(path, n, opt.faultPct, budget, somP, featP) &&
          allPass;
    }

    store.reset();
    std::filesystem::remove(path);
  }

  std::printf("\n%s\n", allPass ? "E10: ALL CHECKS PASSED"
                                : "E10: CHECK FAILURES (see above)");
  return allPass ? 0 : 1;
}
