// E10: out-of-core scalability — 100k to 1M trajectories through the
// sharded store (see EXPERIMENTS.md §E10).
//
// For each size N the driver:
//   1. stream-generates N short trajectories straight into a shard store
//      (peak writer memory = one shard, never the dataset),
//   2. opens the store under a fixed cache budget and trains the batch
//      SOM out-of-core (ShardSomExplorer — shards stream through the
//      thread pool, features are recomputed per pass, never all resident),
//   3. drills into the largest cluster and runs a full-fidelity brush
//      query over its materialized members,
//   4. measures overview brush-query throughput,
// and reports train time, queries/sec, cache hit rate, and peak resident
// trajectory bytes against the budget.
//
// Two acceptance checks gate the run (non-zero exit on failure):
//   - bounded residency: peak resident bytes <= budget + one shard (the
//     cache admits a shard before evicting, so the transient overshoot is
//     at most the largest shard),
//   - determinism (smallest size only): parallel training is bit-identical
//     to serial — same weights, same assignment.
//
// Usage:
//   bench_e10_scale [--sizes=100000,300000,1000000] [--budget-mb=64]
//                   [--shard-capacity=4096] [--threads=4] [--epochs=6]
//
// The default is a single 100k sweep (fits a laptop's coffee break); the
// acceptance run for the 1M figure is --sizes=100000,1000000.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/clusterquery.h"
#include "traj/shardstore.h"
#include "traj/synth.h"
#include "util/stopwatch.h"
#include "util/threadpool.h"

using namespace svq;

namespace {

struct Options {
  std::vector<std::uint64_t> sizes{100000};
  std::size_t budgetMb = 64;
  std::uint32_t shardCapacity = 4096;
  unsigned threads = 4;
  std::size_t epochs = 6;
};

bool parseArgs(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sizes=", 0) == 0) {
      opt.sizes.clear();
      std::string list = arg.substr(8);
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        opt.sizes.push_back(std::strtoull(tok.c_str(), nullptr, 10));
        pos = comma == std::string::npos ? list.size() : comma + 1;
      }
    } else if (arg.rfind("--budget-mb=", 0) == 0) {
      opt.budgetMb = std::strtoull(arg.c_str() + 12, nullptr, 10);
    } else if (arg.rfind("--shard-capacity=", 0) == 0) {
      opt.shardCapacity = static_cast<std::uint32_t>(
          std::strtoul(arg.c_str() + 17, nullptr, 10));
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads =
          static_cast<unsigned>(std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--epochs=", 0) == 0) {
      opt.epochs = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return opt.sizes.size() > 0 && opt.budgetMb > 0 && opt.shardCapacity > 0;
}

/// Streams N short trajectories into a shard store at `path`. Short
/// trajectories (24 s cap at 5 Hz) keep the 1M file around half a GB.
bool generateStore(const std::string& path, std::uint64_t n,
                   std::uint32_t shardCapacity, double* seconds) {
  traj::AntBehaviorParams params;
  params.timeStepS = 0.2f;
  params.maxDurationS = 24.0f;
  traj::AntSimulator sim(params, 0xE10ULL + n);
  const traj::ArenaSpec arena{};

  Stopwatch sw;
  traj::ShardStoreWriter writer(path, arena, shardCapacity);
  if (!writer.ok()) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    traj::TrajectoryMeta meta;
    meta.id = static_cast<std::uint32_t>(i);
    meta.side = static_cast<traj::CaptureSide>(i % 5);
    meta.direction = static_cast<traj::JourneyDirection>(i % 2);
    meta.seed = static_cast<traj::SeedState>(i % 3);
    writer.add(sim.simulate(meta, arena));
  }
  const bool ok = writer.finish();
  *seconds = sw.elapsedSeconds();
  return ok;
}

core::BrushGrid westBrush(float arenaRadius) {
  core::BrushCanvas canvas(arenaRadius, 256);
  core::paintArenaHalf(canvas, 0, traj::ArenaSide::kWest, arenaRadius);
  return canvas.grid();
}

std::uint64_t largestShardEstimateBytes(const traj::ShardStore& store) {
  std::uint64_t largest = 0;
  for (std::size_t s = 0; s < store.shardCount(); ++s) {
    const traj::ShardInfo& info = store.shardInfo(s);
    const std::uint64_t est = info.pointCount * sizeof(traj::TrajPoint) +
                              info.trajectoryCount * sizeof(traj::Trajectory);
    largest = est > largest ? est : largest;
  }
  return largest;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parseArgs(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: %s [--sizes=N,N,...] [--budget-mb=M] "
                 "[--shard-capacity=C] [--threads=T] [--epochs=E]\n",
                 argv[0]);
    return 2;
  }

  traj::SomParams somP;
  somP.rows = 8;
  somP.cols = 8;
  somP.epochs = opt.epochs;
  somP.seed = 0x5C2012ULL;
  traj::FeatureParams featP;
  featP.resampleCount = 24;

  ThreadPool pool(opt.threads);
  const std::size_t budget = opt.budgetMb << 20;
  bool allPass = true;

  std::printf("E10 out-of-core scale sweep: budget=%zu MB, shard capacity=%u, "
              "threads=%u, SOM %zux%zu x%zu epochs\n\n",
              opt.budgetMb, opt.shardCapacity, opt.threads, somP.rows,
              somP.cols, somP.epochs);
  std::printf("%10s %9s %9s %9s %8s %9s %11s %11s %9s %9s\n", "trajs",
              "gen_s", "file_MB", "train_s", "hit%", "peak_MB", "overview_qps",
              "drill_qps", "clusters", "largest");

  for (std::size_t si = 0; si < opt.sizes.size(); ++si) {
    const std::uint64_t n = opt.sizes[si];
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("svq_e10_" + std::to_string(n) + ".svqs")).string();

    double genSeconds = 0.0;
    if (!generateStore(path, n, opt.shardCapacity, &genSeconds)) {
      std::fprintf(stderr, "FAIL: could not write store for n=%" PRIu64 "\n",
                   n);
      return 1;
    }
    const auto fileBytes = std::filesystem::file_size(path);

    traj::ShardStoreOptions storeOpt;
    storeOpt.cacheBudgetBytes = budget;
    storeOpt.metricsPrefix = "e10." + std::to_string(n);
    auto store = traj::ShardStore::open(path, storeOpt);
    if (!store) {
      std::fprintf(stderr, "FAIL: could not open store for n=%" PRIu64 "\n",
                   n);
      return 1;
    }

    // 2. Out-of-core SOM training (the expensive offline step).
    Stopwatch trainSw;
    core::ShardSomExplorer explorer(*store, somP, featP, &pool);
    const double trainSeconds = trainSw.elapsedSeconds();

    // 3. Cluster drill-down: materialize the largest cluster and brush it
    // at full fidelity.
    std::uint32_t largestNode = 0;
    std::size_t largestSize = 0;
    for (std::uint32_t node : explorer.displayableClusters()) {
      const std::size_t sz = explorer.clustering().members[node].size();
      if (sz > largestSize) {
        largestSize = sz;
        largestNode = node;
      }
    }
    const core::BrushGrid brush = westBrush(store->arena().radiusCm);
    const core::QueryParams queryParams;

    Stopwatch drillSw;
    const core::QueryResult drill =
        explorer.queryClusterMembers(largestNode, brush, queryParams);
    const double drillSeconds = drillSw.elapsedSeconds();

    // 4. Overview brush-query throughput (the interactive path: one
    // evaluation per displayable cluster, independent of N).
    const int overviewReps = 50;
    Stopwatch overviewSw;
    std::size_t highlighted = 0;
    for (int r = 0; r < overviewReps; ++r) {
      highlighted +=
          explorer.queryClusters(brush, queryParams).trajectoriesHighlighted;
    }
    const double overviewQps = overviewReps / overviewSw.elapsedSeconds();

    const traj::ShardCacheStats stats = store->cacheStats();
    std::printf("%10" PRIu64 " %9.2f %9.1f %9.2f %7.1f%% %9.1f %11.1f %11.2f "
                "%9zu %9zu\n",
                n, genSeconds, fileBytes / double(1u << 20), trainSeconds,
                100.0 * stats.hitRate(),
                stats.peakBytesResident / double(1u << 20), overviewQps,
                1.0 / drillSeconds, explorer.displayableClusters().size(),
                largestSize);

    // Acceptance: residency bounded by budget + one shard (admit-then-
    // evict transient), verified by the metrics counters.
    const std::uint64_t bound = budget + largestShardEstimateBytes(*store);
    if (stats.peakBytesResident > bound) {
      std::printf("  FAIL: peak resident %" PRIu64 " B exceeds budget+shard "
                  "bound %" PRIu64 " B\n",
                  stats.peakBytesResident, bound);
      allPass = false;
    } else {
      std::printf("  PASS: peak resident %.1f MB within budget+shard bound "
                  "%.1f MB (evictions=%" PRIu64 ")\n",
                  stats.peakBytesResident / double(1u << 20),
                  bound / double(1u << 20), stats.evictions);
    }
    if (drill.trajectoriesEvaluated != largestSize) {
      std::printf("  FAIL: drill-down evaluated %zu of %zu members\n",
                  drill.trajectoriesEvaluated, largestSize);
      allPass = false;
    }
    (void)highlighted;

    // Determinism gate at the smallest size: parallel training must be
    // bit-identical to serial (same seed, any thread count or shard
    // order — see Som::trainBatch).
    if (si == 0) {
      const traj::ShardClustering serial =
          traj::clusterShardStore(*store, somP, featP, nullptr);
      const bool identical =
          serial.assignment == explorer.clustering().assignment &&
          serial.somWeights == explorer.clustering().somWeights;
      std::printf("  %s: parallel SOM %s serial (n=%" PRIu64 ")\n",
                  identical ? "PASS" : "FAIL",
                  identical ? "bit-identical to" : "DIVERGES from", n);
      allPass = allPass && identical;
    }

    store.reset();
    std::filesystem::remove(path);
  }

  std::printf("\n%s\n", allPass ? "E10: ALL CHECKS PASSED"
                                : "E10: CHECK FAILURES (see above)");
  return allPass ? 0 : 1;
}
