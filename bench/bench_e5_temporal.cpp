// E5 (Sec. V.B): compound spatio-temporal queries via the temporal filter.
//
// Regenerates: the seed-search reading — brush the arena centre, narrow
// the range slider to the start of the experiment, and look for
// display-perpendicular (stationary) highlighted segments. Reports the
// planted-vs-null contrast and the cost of window sweeps.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/hypothesis.h"
#include "core/query.h"
#include "core/queryengine.h"
#include "traj/stats.h"

using namespace svq;

namespace {

core::BrushGrid centerBrush(float arenaRadius) {
  core::BrushCanvas canvas(arenaRadius, 256);
  core::paintArenaCenter(canvas, 1, arenaRadius * 0.2f);
  return canvas.grid();
}

void BM_WindowedQuery(benchmark::State& state) {
  const auto& ds = bench::dataset(500);
  const core::BrushGrid brush = centerBrush(ds.arena().radiusCm);
  std::vector<std::uint32_t> indices(ds.size());
  for (std::uint32_t i = 0; i < ds.size(); ++i) indices[i] = i;
  core::QueryParams params;
  params.timeWindow = {0.0f, static_cast<float>(state.range(0))};
  for (auto _ : state) {
    const auto result = core::evaluate(core::makeRefs(ds, indices), brush, params);
    benchmark::DoNotOptimize(result);
  }
  state.counters["window_s"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WindowedQuery)->Arg(10)->Arg(30)->Arg(60)->Arg(180)
    ->Unit(benchmark::kMillisecond);

void BM_WindowSweep(benchmark::State& state) {
  // The analyst drags the range slider: ten successive window positions.
  const auto& ds = bench::dataset(500);
  const core::BrushGrid brush = centerBrush(ds.arena().radiusCm);
  std::vector<std::uint32_t> indices(ds.size());
  for (std::uint32_t i = 0; i < ds.size(); ++i) indices[i] = i;
  for (auto _ : state) {
    for (int w = 0; w < 10; ++w) {
      core::QueryParams params;
      params.timeWindow = {static_cast<float>(w) * 18.0f,
                           static_cast<float>(w + 1) * 18.0f};
      const auto result = core::evaluate(core::makeRefs(ds, indices), brush, params);
      benchmark::DoNotOptimize(result);
    }
  }
  state.SetLabel("10 slider positions per iteration");
}
BENCHMARK(BM_WindowSweep)->Unit(benchmark::kMillisecond);

void BM_WindowSweepIncremental(benchmark::State& state) {
  // The same slider drag through the incremental engine: each window
  // position is a pure re-mask over the cached spatial classification —
  // zero brush-grid probes per position.
  const auto& ds = bench::dataset(500);
  const core::BrushGrid brush = centerBrush(ds.arena().radiusCm);
  std::vector<std::uint32_t> indices(ds.size());
  for (std::uint32_t i = 0; i < ds.size(); ++i) indices[i] = i;
  core::QueryEngine engine;
  engine.setTrajectories(ds, indices);
  engine.setBrush(&brush);
  engine.evaluate();  // pay the spatial classification once
  for (auto _ : state) {
    for (int w = 0; w < 10; ++w) {
      core::QueryParams params = engine.params();
      params.timeWindow = {static_cast<float>(w) * 18.0f,
                           static_cast<float>(w + 1) * 18.0f};
      engine.setParams(params);
      const auto result = engine.evaluate();
      benchmark::DoNotOptimize(result);
    }
  }
  state.SetLabel("10 slider positions per iteration");
  state.counters["spatial_reclass_last_pass"] =
      static_cast<double>(engine.metrics().lastPassSpatialClassifications);
}
BENCHMARK(BM_WindowSweepIncremental)->Unit(benchmark::kMillisecond);

void BM_StationaryRunDetection(benchmark::State& state) {
  const auto& ds = bench::dataset(500);
  for (auto _ : state) {
    float total = 0.0f;
    for (const auto& t : ds.all()) {
      total += traj::longestStationaryRunS(t, 1.0f);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_StationaryRunDetection)->Unit(benchmark::kMillisecond);

void BM_SeedSearchHypothesis(benchmark::State& state) {
  const auto& ds = bench::dataset(500);
  const core::Hypothesis h =
      core::makeSeedSearchHypothesis(ds.arena().radiusCm);
  for (auto _ : state) {
    const auto r = core::evaluateHypothesis(h, ds);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SeedSearchHypothesis)->Unit(benchmark::kMillisecond);

void printContext() {
  std::printf("\n=== E5: compound spatio-temporal query (seed search) "
              "===\n");
  std::printf("query: centre disc brushed green + window = first 25 s; "
              "reading: sustained highlight = stationary searching ant\n\n");

  auto support = [](const traj::TrajectoryDataset& ds) {
    const core::Hypothesis h =
        core::makeSeedSearchHypothesis(ds.arena().radiusCm);
    return core::evaluateHypothesis(h, ds);
  };
  const auto planted = support(bench::dataset(500));
  traj::AntSimulator nullSim(traj::AntBehaviorParams{}.nullModel(),
                             0x5C2012ULL);
  traj::DatasetSpec spec;
  spec.count = 500;
  const auto nullDs = nullSim.generate(spec);
  const auto null = support(nullDs);

  std::printf("%-28s %-20s %-20s\n", "", "seed-droppers", "other ants");
  std::printf("%-28s %.0f%%%-16s %.0f%%\n", "planted data",
              static_cast<double>(planted.supportFraction) * 100.0, "",
              static_cast<double>(planted.complementSupportFraction) * 100.0);
  std::printf("%-28s %.0f%%%-16s %.0f%%\n", "null control",
              static_cast<double>(null.supportFraction) * 100.0, "",
              static_cast<double>(null.complementSupportFraction) * 100.0);

  // The stereoscopic reading: stationary searching shows as long
  // near-vertical runs in the space-time cube.
  const auto& ds = bench::dataset(500);
  double dropRun = 0.0, otherRun = 0.0;
  std::size_t nDrop = 0, nOther = 0;
  for (const auto& t : ds.all()) {
    const double run = traj::longestStationaryRunS(t, 1.0f);
    if (t.meta().seed == traj::SeedState::kDroppedAtCapture) {
      dropRun += run;
      ++nDrop;
    } else {
      otherRun += run;
      ++nOther;
    }
  }
  std::printf("\nmean longest stationary run (display-perpendicular "
              "segment): droppers %.1f s vs others %.1f s\n\n",
              dropRun / static_cast<double>(nDrop),
              otherRun / static_cast<double>(nOther));
}

}  // namespace

int main(int argc, char** argv) {
  printContext();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
