// E3 (Fig. 5): coordinated brushing as a scalable visual query.
//
// Regenerates: the Fig. 5 hypothesis reading (per-capture-group support
// for "exits on the brushed side", with the planted-effect dataset and a
// null-model negative control), brush painting cost, and query evaluation
// cost as the trajectory count grows — the "entire dataset visually
// queried in a matter of few seconds" claim reduces computationally to
// millisecond-scale evaluation plus pre-attentive perception.
//
// Writes BENCH_query.json (see bench_json.h; consumed by
// scripts/perf_smoke.py): the incremental-vs-full dab edit ratios plus the
// SIMD-vs-scalar point-in-brush kernel ratio, which must come with
// bit-identical outputs (non-zero exit otherwise). --smoke shrinks the
// scene/rep counts for CI and skips the Google-benchmark suites;
// --out=PATH overrides the report path.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "core/hypothesis.h"
#include "core/query.h"
#include "core/querykernel.h"
#include "core/queryengine.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/stopwatch.h"

using namespace svq;

namespace {

core::BrushGrid westBrush(float arenaRadius) {
  core::BrushCanvas canvas(arenaRadius, 256);
  core::paintArenaHalf(canvas, 0, traj::ArenaSide::kWest, arenaRadius);
  return canvas.grid();
}

void BM_BrushPaintHalfArena(benchmark::State& state) {
  for (auto _ : state) {
    core::BrushCanvas canvas(50.0f, 256);
    core::paintArenaHalf(canvas, 0, traj::ArenaSide::kWest, 50.0f);
    benchmark::DoNotOptimize(canvas);
  }
}
BENCHMARK(BM_BrushPaintHalfArena)->Unit(benchmark::kMillisecond);

void BM_BrushDab(benchmark::State& state) {
  core::BrushGrid grid(50.0f, 256);
  for (auto _ : state) {
    grid.paint({0, {0.0f, 0.0f}, 5.0f});
    benchmark::DoNotOptimize(grid);
  }
}
BENCHMARK(BM_BrushDab)->Unit(benchmark::kMicrosecond);

void BM_QueryEval(benchmark::State& state) {
  const auto& ds = bench::dataset(static_cast<std::size_t>(state.range(0)));
  const core::BrushGrid brush = westBrush(ds.arena().radiusCm);
  std::vector<std::uint32_t> indices(ds.size());
  for (std::uint32_t i = 0; i < ds.size(); ++i) indices[i] = i;
  core::QueryParams params;
  std::size_t highlighted = 0;
  for (auto _ : state) {
    const auto result = core::evaluate(core::makeRefs(ds, indices), brush, params);
    highlighted = result.trajectoriesHighlighted;
    benchmark::DoNotOptimize(result);
  }
  state.counters["trajectories"] = static_cast<double>(ds.size());
  state.counters["points"] = static_cast<double>(ds.totalPoints());
  state.counters["highlighted"] = static_cast<double>(highlighted);
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(ds.totalPoints()));
}
BENCHMARK(BM_QueryEval)->Arg(100)->Arg(500)->Arg(2000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_QueryEvalSequential(benchmark::State& state) {
  const auto& ds = bench::dataset(static_cast<std::size_t>(state.range(0)));
  const core::BrushGrid brush = westBrush(ds.arena().radiusCm);
  std::vector<std::uint32_t> indices(ds.size());
  for (std::uint32_t i = 0; i < ds.size(); ++i) indices[i] = i;
  core::QueryParams params;
  params.parallel = false;
  for (auto _ : state) {
    const auto result = core::evaluate(core::makeRefs(ds, indices), brush, params);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(ds.totalPoints()));
}
BENCHMARK(BM_QueryEvalSequential)->Arg(500)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

// --- incremental engine ------------------------------------------------------

std::vector<std::uint32_t> allIndices(const traj::TrajectoryDataset& ds) {
  std::vector<std::uint32_t> indices(ds.size());
  for (std::uint32_t i = 0; i < ds.size(); ++i) indices[i] = i;
  return indices;
}

/// Steady-state cost of a localized dab edit: the engine re-classifies
/// only the trajectories whose footprint intersects the dab.
void BM_QueryEngineIncrementalDab(benchmark::State& state) {
  const auto& ds = bench::dataset(static_cast<std::size_t>(state.range(0)));
  const auto indices = allIndices(ds);
  core::BrushCanvas canvas(ds.arena().radiusCm, 256);
  core::paintArenaHalf(canvas, 0, traj::ArenaSide::kWest,
                       ds.arena().radiusCm);
  core::QueryEngine engine;
  engine.setTrajectories(ds, indices);
  engine.setBrush(&canvas.grid());
  engine.evaluate();  // warm the spatial cache

  // Dab on a spot the data actually visits, so the edit is non-trivial.
  const Vec2 dabPos = ds[0].view().pos(ds[0].size() / 2);
  for (auto _ : state) {
    const AABB2 dirty =
        canvas.addStroke(core::BrushStroke{1, dabPos, 3.0f});
    engine.invalidateRegion(dirty);
    const auto result = engine.evaluate();
    benchmark::DoNotOptimize(result);
  }
  const auto& m = engine.metrics();
  state.counters["invalidated"] = static_cast<double>(m.lastPassInvalidated);
  state.counters["reused"] = static_cast<double>(m.lastPassReused);
  state.counters["cache_hit_rate"] = m.cacheHitRate();
}
BENCHMARK(BM_QueryEngineIncrementalDab)->Arg(432)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

/// Baseline the dab edit competes with: full stateless re-evaluation.
void BM_QueryEngineFullReeval(benchmark::State& state) {
  const auto& ds = bench::dataset(static_cast<std::size_t>(state.range(0)));
  const auto indices = allIndices(ds);
  core::BrushCanvas canvas(ds.arena().radiusCm, 256);
  core::paintArenaHalf(canvas, 0, traj::ArenaSide::kWest,
                       ds.arena().radiusCm);
  for (auto _ : state) {
    const auto result = core::evaluate(core::makeRefs(ds, indices),
                                       canvas.grid(), core::QueryParams{});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_QueryEngineFullReeval)->Arg(432)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_HypothesisEvaluate(benchmark::State& state) {
  const auto& ds = bench::dataset(500);
  const core::Hypothesis h = core::makeHomingHypothesis(
      traj::CaptureSide::kEast, traj::ArenaSide::kWest,
      ds.arena().radiusCm);
  for (auto _ : state) {
    const auto r = core::evaluateHypothesis(h, ds);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HypothesisEvaluate)->Unit(benchmark::kMillisecond);

void printContext() {
  std::printf("\n=== E3 / Fig. 5: the homing visual query ===\n");
  std::printf("query: west half brushed red; reading: which trajectories "
              "END in the brushed half\n\n");

  auto report = [](const char* label, const traj::TrajectoryDataset& ds) {
    const core::BrushGrid brush = westBrush(ds.arena().radiusCm);
    std::printf("-- %s --\n", label);
    std::printf("%-10s %-8s %-16s\n", "captured", "n", "ends in west");
    for (traj::CaptureSide side :
         {traj::CaptureSide::kOnTrail, traj::CaptureSide::kWest,
          traj::CaptureSide::kEast, traj::CaptureSide::kNorth,
          traj::CaptureSide::kSouth}) {
      const auto indices = ds.select([side](const traj::Trajectory& t) {
        return t.meta().side == side;
      });
      const auto result =
          core::evaluate(core::makeRefs(ds, indices), brush, core::QueryParams{});
      std::size_t endWest = 0;
      for (const auto& s : result.summaries) {
        if (s.lastSegmentBrush == 0) ++endWest;
      }
      std::printf("%-10s %-8zu %zu (%.0f%%)\n", traj::toString(side),
                  indices.size(), endWest,
                  indices.empty() ? 0.0
                                  : 100.0 * static_cast<double>(endWest) /
                                        static_cast<double>(indices.size()));
    }
  };

  report("planted-effect dataset (paper's field data analogue)",
         bench::dataset(500));

  traj::AntSimulator nullSim(traj::AntBehaviorParams{}.nullModel(),
                             0x5C2012ULL);
  traj::DatasetSpec spec;
  spec.count = 500;
  const auto nullDs = nullSim.generate(spec);
  report("null-model control (no behavioural effects)", nullDs);
  std::printf("expected shape: east bin ~100%% on planted data, all bins "
              "near-uniform on the null control\n\n");
}

/// Headline comparison for the incremental engine: localized dab edit on
/// the 432-cell scene, incremental vs full re-evaluation.
void printIncrementalReport(bench::BenchReport& json, bool smoke) {
  // Full runs use the paper's 36x12 = 432-cell wall; smoke shrinks it.
  const std::size_t kSceneSize = smoke ? 120 : 432;
  const auto& ds = bench::dataset(kSceneSize);
  const auto indices = [&] {
    std::vector<std::uint32_t> v(ds.size());
    for (std::uint32_t i = 0; i < ds.size(); ++i) v[i] = i;
    return v;
  }();
  core::BrushCanvas canvas(ds.arena().radiusCm, 256);
  core::paintArenaHalf(canvas, 0, traj::ArenaSide::kWest,
                       ds.arena().radiusCm);

  core::QueryEngine engine;
  engine.setTrajectories(ds, indices);
  engine.setBrush(&canvas.grid());
  engine.evaluate();  // warm cache
  const Vec2 dabPos = ds[0].view().pos(ds[0].size() / 2);

  const int kReps = smoke ? 10 : 25;
  std::vector<double> fullSamples, incrSamples;
  for (int r = 0; r < kReps; ++r) {
    Stopwatch w;
    const auto result = core::evaluate(core::makeRefs(ds, indices),
                                       canvas.grid(), engine.params());
    fullSamples.push_back(w.elapsedMillis());
    benchmark::DoNotOptimize(result);
  }
  engine.resetMetrics();
  for (int r = 0; r < kReps; ++r) {
    const AABB2 dirty =
        canvas.addStroke(core::BrushStroke{1, dabPos, 3.0f});
    engine.invalidateRegion(dirty);
    Stopwatch w;
    const auto result = engine.evaluate();
    incrSamples.push_back(w.elapsedMillis());
    benchmark::DoNotOptimize(result);
  }
  double fullMs = 0.0, incrMs = 0.0;
  for (const double s : fullSamples) fullMs += s;
  for (const double s : incrSamples) incrMs += s;
  fullMs /= kReps;
  incrMs /= kReps;
  const auto& m = engine.metrics();

  // Machine-readable mirror of this report for CI's perf-smoke job.
  json.add("query_full_reeval", fullSamples);
  auto& incr = json.add("query_incremental_dab", incrSamples);
  incr.counters["invalidated"] =
      static_cast<double>(m.lastPassInvalidated);
  incr.counters["reused"] = static_cast<double>(m.lastPassReused);
  incr.counters["cache_hit_rate"] = m.cacheHitRate();
  incr.counters["speedup_vs_full"] =
      bench::median(incrSamples) > 0.0
          ? bench::median(fullSamples) / bench::median(incrSamples)
          : 0.0;

  std::printf("=== incremental engine: localized dab on the %zu-cell scene "
              "===\n", kSceneSize);
  std::printf("full re-evaluation:   %8.3f ms\n", fullMs);
  std::printf("incremental edit:     %8.3f ms  (last pass: %llu "
              "re-classified, %llu reused, hit rate %.1f%%)\n",
              incrMs,
              static_cast<unsigned long long>(m.lastPassInvalidated),
              static_cast<unsigned long long>(m.lastPassReused),
              100.0 * m.cacheHitRate());
  std::printf("speedup:              %8.1fx %s\n\n",
              incrMs > 0.0 ? fullMs / incrMs : 0.0,
              fullMs >= 5.0 * incrMs ? "(>= 5x target met)"
                                     : "(below 5x target!)");
}

/// SIMD-vs-scalar ratio of the point-in-brush kernel on a dense SoA sweep,
/// with a bit-identity check between the two paths. Returns false (and the
/// bench exits non-zero) if the dispatched kernel's output ever differs
/// from scalar — the determinism contract underneath every query result.
bool printKernelRatioReport(bench::BenchReport& json, bool smoke) {
  const float arenaRadius = 50.0f;
  const core::BrushGrid brush = westBrush(arenaRadius);
  const core::BrushGridView view = brush.view();
  const util::Isa isa = util::activeIsa();

  const std::size_t n = smoke ? (1u << 15) : (1u << 18);
  Rng rng(0x51D0ULL);
  std::vector<float> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(-1.5f * arenaRadius, 1.5f * arenaRadius);
    y[i] = rng.uniform(-1.5f * arenaRadius, 1.5f * arenaRadius);
  }
  std::vector<std::int8_t> outScalar(n), outSimd(n);

  const int kReps = smoke ? 15 : 40;
  std::vector<double> scalarMs, simdMs;
  for (int r = 0; r < kReps; ++r) {
    Stopwatch w;
    core::pointBrushScalar(view, x.data(), y.data(), outScalar.data(), n);
    scalarMs.push_back(w.elapsedMillis());
    benchmark::DoNotOptimize(outScalar);
  }
  for (int r = 0; r < kReps; ++r) {
    Stopwatch w;
    core::pointBrushVariant(isa, view, x.data(), y.data(), outSimd.data(), n);
    simdMs.push_back(w.elapsedMillis());
    benchmark::DoNotOptimize(outSimd);
  }
  const bool identical =
      std::memcmp(outScalar.data(), outSimd.data(), n) == 0;
  const double ratio = bench::median(simdMs) > 0.0
                           ? bench::median(scalarMs) / bench::median(simdMs)
                           : 0.0;

  auto& s = json.add("query_point_kernel", simdMs);
  s.counters["scalar_median_ms"] = bench::median(scalarMs);
  s.counters["simd_speedup"] = ratio;
  s.counters["bit_identical"] = identical ? 1.0 : 0.0;
  s.counters["points"] = static_cast<double>(n);

  std::printf("=== point-in-brush kernel: %s vs scalar, %zu points ===\n",
              util::toString(isa), n);
  std::printf("scalar:   %8.3f ms\nsimd:     %8.3f ms\nratio:    %8.2fx  "
              "outputs %s\n\n",
              bench::median(scalarMs), bench::median(simdMs), ratio,
              identical ? "bit-identical" : "DIFFER");

  bool ok = identical;
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: %s kernel output differs from scalar\n",
                 util::toString(isa));
  }
  if (!smoke && isa != util::Isa::kScalar && ratio < 2.0) {
    std::fprintf(stderr,
                 "FAIL: %s kernel ratio %.2fx below the 2x target\n",
                 util::toString(isa), ratio);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  // Our flags are stripped into opt; benchmark::Initialize only sees the
  // collected passthrough.
  auto opt = bench::parseBenchCli(argc, argv, "BENCH_query.json",
                                  /*allowPassthrough=*/true);
  if (!opt) return 2;

  if (!opt->smoke) printContext();

  bench::BenchReport json;
  printIncrementalReport(json, opt->smoke);
  bool ok = printKernelRatioReport(json, opt->smoke);
  if (!bench::writeReport(json, opt->out)) ok = false;

  if (!opt->smoke) {
    int pargc = static_cast<int>(opt->passthrough.size());
    benchmark::Initialize(&pargc, opt->passthrough.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return ok ? 0 : 1;
}
