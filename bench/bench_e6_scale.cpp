// E6 (Sec. VI.C): scalability to 10k-1M trajectories.
//
// Regenerates: the SOM-cluster overview path (feature extraction, SOM
// training, cluster-average query) versus brute-force full-fidelity
// queries across dataset sizes, the overview's fidelity to member
// majorities, and the compact-encoding (Douglas-Peucker) density gains.
// The expected shape: full query cost is linear in total points; the
// overview is O(clusters) and roughly flat, restoring interactivity at
// scales where the full query no longer is; drill-down recovers full
// fidelity for one cluster at a time.
//
// Sizes here top out at 100k short trajectories (single host, CPU); the
// 1M figure the paper speculates about follows the same linear trends.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/clusterquery.h"
#include "traj/resample.h"

using namespace svq;

namespace {

// Short trajectories at scale keep the working set sane.
const traj::TrajectoryDataset& bigDataset(std::size_t n) {
  return bench::dataset(n, /*maxDurationS=*/30.0f);
}

core::BrushGrid westBrush(float arenaRadius) {
  core::BrushCanvas canvas(arenaRadius, 256);
  core::paintArenaHalf(canvas, 0, traj::ArenaSide::kWest, arenaRadius);
  return canvas.grid();
}

traj::FeatureParams featureParams() {
  traj::FeatureParams p;
  p.resampleCount = 24;
  return p;
}

void BM_FeatureExtraction(benchmark::State& state) {
  const auto& ds = bigDataset(static_cast<std::size_t>(state.range(0)));
  const traj::FeatureParams p = featureParams();
  for (auto _ : state) {
    std::vector<std::vector<float>> features(ds.size());
    for (std::size_t i = 0; i < ds.size(); ++i) {
      features[i] = traj::extractFeatures(ds[i], p);
    }
    benchmark::DoNotOptimize(features);
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(ds.size()));
}
BENCHMARK(BM_FeatureExtraction)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_SomTrain(benchmark::State& state) {
  const auto& ds = bigDataset(static_cast<std::size_t>(state.range(0)));
  const traj::FeatureParams p = featureParams();
  std::vector<std::vector<float>> features(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    features[i] = traj::extractFeatures(ds[i], p);
  }
  traj::SomParams somP;
  somP.rows = 6;
  somP.cols = 6;
  somP.epochs = 3;
  for (auto _ : state) {
    traj::Som som(somP, traj::featureDimension(p));
    som.train(features);
    benchmark::DoNotOptimize(som);
  }
  state.counters["trajectories"] = static_cast<double>(ds.size());
}
BENCHMARK(BM_SomTrain)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_FullFidelityQuery(benchmark::State& state) {
  const auto& ds = bigDataset(static_cast<std::size_t>(state.range(0)));
  const core::BrushGrid brush = westBrush(ds.arena().radiusCm);
  std::vector<std::uint32_t> indices(ds.size());
  for (std::uint32_t i = 0; i < ds.size(); ++i) indices[i] = i;
  for (auto _ : state) {
    const auto result =
        core::evaluate(core::makeRefs(ds, indices), brush, core::QueryParams{});
    benchmark::DoNotOptimize(result);
  }
  state.counters["points"] = static_cast<double>(ds.totalPoints());
}
BENCHMARK(BM_FullFidelityQuery)
    ->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_ClusterOverviewQuery(benchmark::State& state) {
  const auto& ds = bigDataset(static_cast<std::size_t>(state.range(0)));
  traj::SomParams somP;
  somP.rows = 6;
  somP.cols = 6;
  somP.epochs = 3;
  static std::map<long, std::unique_ptr<core::SomExplorer>> cache;
  auto& explorer = cache[state.range(0)];
  if (!explorer) {
    explorer =
        std::make_unique<core::SomExplorer>(ds, somP, featureParams());
  }
  const core::BrushGrid brush = westBrush(ds.arena().radiusCm);
  for (auto _ : state) {
    const auto result = explorer->queryClusters(brush, core::QueryParams{});
    benchmark::DoNotOptimize(result);
  }
  state.counters["clusters"] =
      static_cast<double>(explorer->displayableClusters().size());
  state.counters["fidelity_pct"] = static_cast<double>(
      explorer->clusterQueryFidelity(brush, core::QueryParams{}) * 100.0f);
}
BENCHMARK(BM_ClusterOverviewQuery)
    ->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_DrillDownQuery(benchmark::State& state) {
  const auto& ds = bigDataset(10000);
  traj::SomParams somP;
  somP.rows = 6;
  somP.cols = 6;
  somP.epochs = 3;
  static std::unique_ptr<core::SomExplorer> explorer;
  if (!explorer) {
    explorer =
        std::make_unique<core::SomExplorer>(ds, somP, featureParams());
  }
  const core::BrushGrid brush = westBrush(ds.arena().radiusCm);
  const std::uint32_t node = explorer->displayableClusters().front();
  for (auto _ : state) {
    const auto result =
        explorer->queryClusterMembers(node, brush, core::QueryParams{});
    benchmark::DoNotOptimize(result);
  }
  state.counters["members"] =
      static_cast<double>(explorer->drillDown(node).size());
}
BENCHMARK(BM_DrillDownQuery)->Unit(benchmark::kMillisecond);

void BM_DouglasPeuckerSimplify(benchmark::State& state) {
  const auto& ds = bench::dataset(500);
  const float eps = static_cast<float>(state.range(0)) * 0.1f;
  for (auto _ : state) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < 100; ++i) {
      kept += traj::douglasPeuckerCount(ds[i], eps);
    }
    benchmark::DoNotOptimize(kept);
  }
  std::size_t original = 0, kept = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    original += ds[i].size();
    kept += traj::douglasPeuckerCount(ds[i], eps);
  }
  state.counters["density_gain"] =
      static_cast<double>(original) / static_cast<double>(kept);
  state.SetLabel("eps=" + std::to_string(eps) + "cm");
}
BENCHMARK(BM_DouglasPeuckerSimplify)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void printContext() {
  std::printf("\n=== E6 / Sec. VI.C: scaling beyond 500 trajectories ===\n");
  std::printf("path A: SOM cluster averages as the unit of exploration "
              "(overview O(clusters), drill-down per cluster)\n");
  std::printf("path B: compact encodings via Douglas-Peucker (density "
              "gain at fixed wall area)\n");
  std::printf("expected shape: full-query cost linear in points; overview "
              "roughly flat; fidelity high\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  printContext();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
