// bench_common.h — shared fixtures for the experiment benchmarks.
//
// Every bench binary regenerates one paper artifact (see DESIGN.md's
// experiment index). Datasets are built once per binary and cached;
// all randomness is seeded so runs are reproducible.
#pragma once

#include <cstdio>
#include <map>

#include "traj/synth.h"
#include "wall/wall.h"

namespace svq::bench {

/// Cached synthetic dataset (one per (count, maxDuration) per binary).
inline const traj::TrajectoryDataset& dataset(std::size_t count,
                                              float maxDurationS = 180.0f) {
  static std::map<std::pair<std::size_t, int>, traj::TrajectoryDataset>
      cache;
  const auto key = std::make_pair(count, static_cast<int>(maxDurationS));
  auto it = cache.find(key);
  if (it == cache.end()) {
    traj::AntBehaviorParams params;
    params.maxDurationS = maxDurationS;
    traj::AntSimulator sim(params, 0x5C2012ULL + count);
    traj::DatasetSpec spec;
    spec.count = count;
    it = cache.emplace(key, sim.generate(spec)).first;
  }
  return it->second;
}

/// The paper's 6x2 wall region at full resolution (8196x1536).
inline wall::WallSpec paperWall() { return wall::cyberCommonsUsedRegion(); }

/// Same tile structure at reduced resolution, for per-iteration benches
/// where full-resolution rasterization would dominate the run time.
inline wall::WallSpec reducedWall(int tilePxW = 320, int tilePxH = 180) {
  wall::TileSpec tile;
  tile.pxW = tilePxW;
  tile.pxH = tilePxH;
  tile.activeWmm = 1150.0f;
  tile.activeHmm = 647.0f;
  return wall::WallSpec(tile, 6, 2);
}

}  // namespace svq::bench
