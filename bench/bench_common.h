// bench_common.h — shared fixtures for the experiment benchmarks.
//
// Every bench binary regenerates one paper artifact (see DESIGN.md's
// experiment index). Datasets are built once per binary and cached;
// all randomness is seeded so runs are reproducible.
#pragma once

#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench_json.h"
#include "traj/synth.h"
#include "util/metrics.h"
#include "wall/wall.h"

namespace svq::bench {

/// The plain drivers' shared CLI surface: --smoke and --out=PATH.
/// Drivers with a downstream parser (bench_fig5_query hands leftover
/// args to benchmark::Initialize) collect them in `passthrough`.
struct BenchCliOptions {
  bool smoke = false;
  std::string out;
  std::vector<char*> passthrough;  ///< argv[0] + unrecognized args
};

/// Parses the shared flags; `defaultOut` seeds `out`. Without
/// `allowPassthrough`, an unknown argument prints usage and returns
/// nullopt (drivers exit 2).
inline std::optional<BenchCliOptions> parseBenchCli(
    int argc, char** argv, const std::string& defaultOut,
    bool allowPassthrough = false) {
  BenchCliOptions opt;
  opt.out = defaultOut;
  opt.passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      opt.out = argv[i] + 6;
    } else if (allowPassthrough) {
      opt.passthrough.push_back(argv[i]);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return std::nullopt;
    }
  }
  return opt;
}

/// Writes the JSON report and prints its path; returns false on write
/// failure (drivers fold it into their exit status).
inline bool writeReport(const BenchReport& report, const std::string& path) {
  const bool ok = report.write(path);
  std::printf("report: %s\n", path.c_str());
  return ok;
}

/// Copies every global metric under `prefix` into a scenario's counters
/// (the perf_smoke.py-visible channel).
inline void attachCounters(BenchScenario& s, const std::string& prefix) {
  for (const auto& [name, value] :
       MetricsRegistry::global().snapshot(prefix)) {
    s.counters[name] = static_cast<double>(value);
  }
}

/// Cached synthetic dataset (one per (count, maxDuration) per binary).
inline const traj::TrajectoryDataset& dataset(std::size_t count,
                                              float maxDurationS = 180.0f) {
  static std::map<std::pair<std::size_t, int>, traj::TrajectoryDataset>
      cache;
  const auto key = std::make_pair(count, static_cast<int>(maxDurationS));
  auto it = cache.find(key);
  if (it == cache.end()) {
    traj::AntBehaviorParams params;
    params.maxDurationS = maxDurationS;
    traj::AntSimulator sim(params, 0x5C2012ULL + count);
    traj::DatasetSpec spec;
    spec.count = count;
    it = cache.emplace(key, sim.generate(spec)).first;
  }
  return it->second;
}

/// The paper's 6x2 wall region at full resolution (8196x1536).
inline wall::WallSpec paperWall() { return wall::cyberCommonsUsedRegion(); }

/// Same tile structure at reduced resolution, for per-iteration benches
/// where full-resolution rasterization would dominate the run time.
inline wall::WallSpec reducedWall(int tilePxW = 320, int tilePxH = 180) {
  wall::TileSpec tile;
  tile.pxW = tilePxW;
  tile.pxH = tilePxH;
  tile.activeWmm = 1150.0f;
  tile.activeHmm = 647.0f;
  return wall::WallSpec(tile, 6, 2);
}

}  // namespace svq::bench
