// bench_json.h — machine-readable bench reports.
//
// Benches print human-readable tables to stdout; CI wants numbers it can
// diff against a checked-in baseline without parsing those tables. Each bench
// appends scenarios (name + median/p95 ms + counters) to a BenchReport
// and writes one flat JSON file (BENCH_render.json, BENCH_query.json...)
// that scripts/perf_smoke.py consumes.
#pragma once

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace svq::bench {

/// Median of a sample set (copies; bench sample counts are tiny).
inline double median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  if (samples.size() % 2 == 1) return samples[mid];
  return 0.5 * (samples[mid - 1] + samples[mid]);
}

/// p95 by nearest-rank (matches what a human reads off a sorted column).
inline double p95(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t rank =
      (samples.size() * 95 + 99) / 100;  // ceil(n * 0.95)
  return samples[rank == 0 ? 0 : rank - 1];
}

struct BenchScenario {
  std::string name;
  double medianMs = 0.0;
  double p95Ms = 0.0;
  /// Free-form numeric facts: metrics counters, byte totals, ratios.
  std::map<std::string, double> counters;
};

class BenchReport {
 public:
  /// Scenario from raw per-iteration timings.
  BenchScenario& add(const std::string& name,
                     const std::vector<double>& samplesMs) {
    BenchScenario s;
    s.name = name;
    s.medianMs = median(samplesMs);
    s.p95Ms = p95(samplesMs);
    scenarios_.push_back(std::move(s));
    return scenarios_.back();
  }

  /// Counter-only scenario (byte totals, ratios — no timing).
  BenchScenario& add(const std::string& name) {
    BenchScenario s;
    s.name = name;
    scenarios_.push_back(std::move(s));
    return scenarios_.back();
  }

  /// Writes the report as JSON. Returns false (and says so on stderr)
  /// when the file cannot be written.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"scenarios\": [\n");
    for (std::size_t i = 0; i < scenarios_.size(); ++i) {
      const BenchScenario& s = scenarios_[i];
      std::fprintf(f,
                   "    {\n      \"name\": \"%s\",\n"
                   "      \"median_ms\": %.6f,\n"
                   "      \"p95_ms\": %.6f,\n"
                   "      \"counters\": {",
                   s.name.c_str(), s.medianMs, s.p95Ms);
      std::size_t k = 0;
      for (const auto& [key, value] : s.counters) {
        std::fprintf(f, "%s\n        \"%s\": %.6f", k++ ? "," : "",
                     key.c_str(), value);
      }
      std::fprintf(f, "%s}\n    }%s\n", s.counters.empty() ? "" : "\n      ",
                   i + 1 < scenarios_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

  const std::vector<BenchScenario>& scenarios() const { return scenarios_; }

 private:
  std::vector<BenchScenario> scenarios_;
};

}  // namespace svq::bench
