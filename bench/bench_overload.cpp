// Overload bench: a victim explorer on a node under submit-storm attack.
//
// The robustness acceptance driver for the session service's overload
// model (DESIGN.md §14). Three phases over one SharedContext:
//
//   overload_baseline  one victim tenant alone; caller-observed apply
//                      latency p50/p99 — the "calm node" reference.
//   overload_storm     the same victim while 4x-oversubscribed storm
//                      workers flood submit() on storm tenants that are
//                      never drained. The depth trigger must walk the
//                      node to Shedding; every refusal the victim or the
//                      storm sees must be a *typed* load-shed verdict
//                      (kBackpressure / kOverloaded / kDeadlineExceeded
//                      — never kRejected, never a hang), and no single
//                      victim attempt may wedge (> 1 s to a verdict).
//   overload_recovery  the storm stops and its tenants close; the victim
//                      keeps applying until the node reads Healthy again.
//
// Acceptance checks (non-zero exit on failure):
//   - typed shedding: shed_typed_fraction == 1.0 (storm phase),
//   - bounded refusal volume: shed_rate >= the deterministic floor
//     1 - queueCapacity/stormSubmits (queues are never drained, so at
//     most eventQueueDepth per storm tenant can ever be accepted),
//   - no wedge: wedged == 0 (no victim attempt over 1 s),
//   - recovery: recovered == 1 and health() == kHealthy at the end.
//
// Writes BENCH_overload.json (bench_json.h; consumed by
// scripts/perf_smoke.py against bench/baselines/BENCH_overload_smoke.json).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "core/sessionservice.h"
#include "util/metrics.h"
#include "util/stopwatch.h"

using namespace svq;

namespace {

using Options = bench::BenchCliOptions;

/// Caller-observed latency of one service call, plus its verdict.
struct Attempt {
  double micros = 0.0;
  core::StatusCode code = core::StatusCode::kOk;
};

/// The victim's rotating interactive gestures — scalar scrubs and brush
/// dabs, all applicable to a fresh session (no group dependencies).
ui::Event victimEvent(std::size_t i) {
  switch (i % 4) {
    case 0:
      return ui::TimeWindowEvent{0.0f, 30.0f + static_cast<float>(i % 90)};
    case 1:
      return ui::BrushStrokeEvent{
          0, {-20.0f + static_cast<float>(i % 40), 0.0f}, 6.0f};
    case 2:
      return ui::DepthOffsetEvent{-static_cast<float>(i % 12)};
    default:
      return ui::TimeScaleEvent{0.25f + 0.05f * static_cast<float>(i % 10)};
  }
}

double percentileUs(std::vector<Attempt> attempts, double q) {
  if (attempts.empty()) return 0.0;
  std::sort(attempts.begin(), attempts.end(),
            [](const Attempt& a, const Attempt& b) {
              return a.micros < b.micros;
            });
  const std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(attempts.size() - 1) + 0.5);
  return attempts[std::min(rank, attempts.size() - 1)].micros;
}

struct StormConfig {
  std::size_t stormTenants = 8;
  std::size_t submitsPerTenant = 2000;
  std::size_t victimAttempts = 400;
  std::size_t queueDepth = 64;
  std::size_t shedQueueDepth = 256;
  std::uint64_t applyDeadlineUs = 5000;
};

int run(const Options& opt) {
  const std::size_t trajCount = opt.smoke ? 120 : 500;
  const wall::WallSpec wall =
      opt.smoke ? bench::reducedWall(160, 90) : bench::reducedWall();
  StormConfig cfg;
  if (opt.smoke) {
    cfg.submitsPerTenant = 600;
    cfg.victimAttempts = 200;
  }
  // 4x oversubscription: four storm workers per hardware thread (capped),
  // all hammering submit() — contention is the point.
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned stormWorkers =
      std::min(32u, 4u * std::max(2u, hw == 0 ? 4u : hw));

  const auto& ds = bench::dataset(trajCount);
  std::printf("=== session service: overload / load-shedding (%s) ===\n",
              opt.smoke ? "smoke" : "full");
  std::printf(
      "%zu trajectories, %u storm workers over %zu storm tenants, "
      "%zu submits each\n",
      ds.size(), stormWorkers, cfg.stormTenants, cfg.submitsPerTenant);

  bench::BenchReport report;
  bool ok = true;
  MetricsRegistry& reg = MetricsRegistry::global();

  // --- phase 1: baseline — the victim alone on a calm node ------------------
  reg.reset("sessions.");
  double baselineP99Us = 0.0;
  {
    const auto ctx = core::SharedContext::create(ds, wall);
    core::SessionService::Options sopt;
    sopt.applyDeadlineUs = cfg.applyDeadlineUs;
    core::SessionService svc(ctx, sopt);
    const auto victim = svc.admit();
    if (!victim) {
      std::fprintf(stderr, "FAIL: baseline admission refused\n");
      return 1;
    }
    std::vector<Attempt> attempts;
    attempts.reserve(cfg.victimAttempts);
    Stopwatch phase;
    for (std::size_t i = 0; i < cfg.victimAttempts; ++i) {
      Stopwatch sw;
      const core::Status st = svc.apply(victim.id, victimEvent(i));
      attempts.push_back({sw.elapsedMicros(), st.code});
      if (!st.isOk()) {
        std::fprintf(stderr, "FAIL: baseline apply %zu: %s\n", i,
                     st.message().c_str());
        ok = false;
      }
    }
    baselineP99Us = percentileUs(attempts, 0.99);
    auto& s = report.add("overload_baseline", {phase.elapsedMillis()});
    bench::attachCounters(s, "sessions.");
    s.counters["victim_attempts"] =
        static_cast<double>(cfg.victimAttempts);
    s.counters["victim_p50_us"] = percentileUs(attempts, 0.50);
    s.counters["victim_p99_us"] = baselineP99Us;
    std::printf("overload_baseline  apply p50/p99 %8.1f/%8.1f us\n",
                s.counters["victim_p50_us"], baselineP99Us);
  }

  // --- phase 2: storm — oversubscribed submit flood, queues never drained ---
  reg.reset("sessions.");
  double stormP99Us = 0.0;
  double recoveryMs = 0.0;
  bool recovered = false;
  {
    const auto ctx = core::SharedContext::create(ds, wall);
    core::SessionService::Options sopt;
    sopt.eventQueueDepth = cfg.queueDepth;
    sopt.shedQueueDepth = cfg.shedQueueDepth;
    sopt.applyDeadlineUs = cfg.applyDeadlineUs;
    sopt.retryAfterMs = 10;
    core::SessionService svc(ctx, sopt);

    const auto victim = svc.admit();
    std::vector<core::SessionId> storm;
    for (std::size_t t = 0; t < cfg.stormTenants; ++t) {
      const auto a = svc.admit();
      if (!a) {
        std::fprintf(stderr, "FAIL: storm admission refused\n");
        return 1;
      }
      storm.push_back(a.id);
    }

    // Storm workers round-robin the storm tenants; every refusal must be
    // a typed load-shed verdict. Nothing ever drains these queues.
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> refused{0};
    std::atomic<std::uint64_t> untypedRefusals{0};
    const std::size_t totalSubmits =
        cfg.stormTenants * cfg.submitsPerTenant;
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(stormWorkers);
    for (unsigned w = 0; w < stormWorkers; ++w) {
      workers.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < totalSubmits;
             i = next.fetch_add(1)) {
          const core::SessionId id = storm[i % storm.size()];
          const core::Status st = svc.submit(id, victimEvent(i));
          submitted.fetch_add(1, std::memory_order_relaxed);
          if (!st.isOk()) {
            refused.fetch_add(1, std::memory_order_relaxed);
            if (!st.isLoadShed()) {
              untypedRefusals.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }

    // The victim keeps gesturing through the storm. Accepted or refused,
    // every attempt must reach a verdict fast — an attempt over 1 s is a
    // wedge, exactly what deadlines + shedding exist to prevent.
    std::vector<Attempt> attempts;
    attempts.reserve(cfg.victimAttempts);
    bool wedged = false;
    Stopwatch phase;
    for (std::size_t i = 0; i < cfg.victimAttempts; ++i) {
      Stopwatch sw;
      const core::Status st = svc.apply(victim.id, victimEvent(i));
      const double us = sw.elapsedMicros();
      attempts.push_back({us, st.code});
      if (us > 1e6) wedged = true;
      if (!st.isOk() && !st.isLoadShed()) {
        std::fprintf(stderr, "FAIL: untyped victim refusal: %s\n",
                     st.message().c_str());
        ok = false;
      }
    }
    for (auto& w : workers) w.join();
    const double stormMs = phase.elapsedMillis();

    std::uint64_t victimShed = 0;
    for (const Attempt& a : attempts) {
      if (a.code != core::StatusCode::kOk) ++victimShed;
    }
    stormP99Us = percentileUs(attempts, 0.99);
    const double shedRate =
        submitted.load() > 0
            ? static_cast<double>(refused.load()) /
                  static_cast<double>(submitted.load())
            : 0.0;
    const std::uint64_t totalRefusals = refused.load() + victimShed;
    const double typedFraction =
        totalRefusals > 0
            ? 1.0 - static_cast<double>(untypedRefusals.load()) /
                        static_cast<double>(totalRefusals)
            : 1.0;
    // Queues are never drained, so acceptance is capped by total queue
    // capacity — the shed rate has a deterministic floor.
    const double shedFloor =
        1.0 - static_cast<double>(cfg.stormTenants * cfg.queueDepth) /
                  static_cast<double>(totalSubmits);

    auto& s = report.add("overload_storm", {stormMs});
    bench::attachCounters(s, "sessions.");
    s.counters["storm_submits"] = static_cast<double>(submitted.load());
    s.counters["shed_rate"] = shedRate;
    s.counters["shed_typed_fraction"] = typedFraction;
    s.counters["victim_p50_us"] = percentileUs(attempts, 0.50);
    s.counters["victim_p99_us"] = stormP99Us;
    s.counters["victim_p99_ms"] = stormP99Us / 1000.0;
    s.counters["victim_shed"] = static_cast<double>(victimShed);
    s.counters["p99_ratio"] =
        baselineP99Us > 0.0 ? stormP99Us / baselineP99Us : 0.0;
    s.counters["wedged"] = wedged ? 1.0 : 0.0;
    std::printf(
        "overload_storm     apply p50/p99 %8.1f/%8.1f us  shed %5.1f%% "
        "(typed %5.1f%%)  health %s\n",
        s.counters["victim_p50_us"], stormP99Us, 100.0 * shedRate,
        100.0 * typedFraction, core::healthName(svc.health()));

    if (typedFraction < 1.0) {
      std::fprintf(stderr,
                   "FAIL: %llu refusals were not typed load-shed verdicts\n",
                   static_cast<unsigned long long>(untypedRefusals.load()));
      ok = false;
    }
    if (shedRate < shedFloor) {
      std::fprintf(stderr, "FAIL: shed rate %.3f below floor %.3f\n",
                   shedRate, shedFloor);
      ok = false;
    }
    if (wedged) {
      std::fprintf(stderr, "FAIL: a victim attempt took over 1 s\n");
      ok = false;
    }
    // The latency promise under storm: victim p99 within 2x of the calm
    // baseline. Both numbers sit near the timer noise floor on a fast
    // node (shed verdicts are sub-microsecond), so the ratio only gates
    // once the storm p99 is measurably large.
    if (stormP99Us > 100.0 && stormP99Us > 2.0 * baselineP99Us) {
      std::fprintf(stderr,
                   "FAIL: storm victim p99 %.1f us over 2x baseline %.1f us\n",
                   stormP99Us, baselineP99Us);
      ok = false;
    }

    // --- phase 3: recovery — storm ends, node must walk back to Healthy ----
    Stopwatch recov;
    for (const core::SessionId id : storm) {
      if (!svc.close(id).isOk()) ok = false;
    }
    // Closing collapses the queue depth; subsequent attempts tick the
    // evaluation window, one recovery level per calm window.
    const std::size_t maxAttempts = 8 * svc.options().healthWindow;
    core::Status last = core::Status::ok();
    std::size_t recoveryAttempts = 0;
    for (; recoveryAttempts < maxAttempts; ++recoveryAttempts) {
      last = svc.apply(victim.id, victimEvent(recoveryAttempts));
      if (svc.health() == core::SessionService::Health::kHealthy &&
          last.isOk()) {
        break;
      }
    }
    recoveryMs = recov.elapsedMillis();
    recovered = svc.health() == core::SessionService::Health::kHealthy &&
                last.isOk();

    auto& r = report.add("overload_recovery", {recoveryMs});
    r.counters["recovered"] = recovered ? 1.0 : 0.0;
    r.counters["recovery_ms"] = recoveryMs;
    r.counters["recovery_attempts"] =
        static_cast<double>(recoveryAttempts);
    std::printf("overload_recovery  %s after %zu attempts (%.1f ms)\n",
                recovered ? "Healthy" : "NOT healthy", recoveryAttempts,
                recoveryMs);
    if (!recovered) {
      std::fprintf(stderr, "FAIL: node did not recover to Healthy\n");
      ok = false;
    }
  }

  if (!bench::writeReport(report, opt.out)) ok = false;
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parseBenchCli(argc, argv, "BENCH_overload.json");
  if (!opt) return 2;
  return run(*opt);
}
