// E9 (extension, §IV.C.2): similarity highlighting throughput.
//
// Regenerates the cost profile of "brush a trajectory portion -> find
// similar movement patterns everywhere": DTW kernel cost vs window
// length and band, end-to-end scan cost vs dataset size, and the
// selectivity of the match threshold.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/similarity.h"
#include "traj/dtw.h"

using namespace svq;

namespace {

std::vector<Vec2> wiggle(std::size_t n) {
  std::vector<Vec2> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({static_cast<float>(i),
                   std::sin(static_cast<float>(i) * 0.7f) * 3.0f});
  }
  return out;
}

void BM_DtwKernel(benchmark::State& state) {
  const auto a = wiggle(static_cast<std::size_t>(state.range(0)));
  const auto b = wiggle(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(traj::dtwDistance(a, b));
  }
  state.counters["points"] = static_cast<double>(a.size());
}
BENCHMARK(BM_DtwKernel)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_DtwKernelBanded(benchmark::State& state) {
  const auto a = wiggle(64);
  const auto b = wiggle(64);
  const int band = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(traj::dtwDistance(a, b, band));
  }
  state.counters["band"] = band;
}
BENCHMARK(BM_DtwKernelBanded)->Arg(4)->Arg(8)->Arg(16)->Arg(-1)
    ->Unit(benchmark::kMicrosecond);

core::SimilarityQuery makeQuery(const traj::TrajectoryDataset& ds,
                                core::BrushCanvas& canvas,
                                const core::SimilarityParams& params) {
  const traj::Trajectory& src = ds[0];
  for (float t = 0.0f; t < 15.0f; t += 2.0f) {
    canvas.addStroke({0, src.positionAt(t), 4.0f});
  }
  return core::extractBrushedQuery(src, 0, canvas.grid(), 0, params);
}

void BM_SimilarityScan(benchmark::State& state) {
  const auto& ds = bench::dataset(static_cast<std::size_t>(state.range(0)));
  core::BrushCanvas canvas(ds.arena().radiusCm, 256);
  core::SimilarityParams params;
  const core::SimilarityQuery query = makeQuery(ds, canvas, params);
  if (!query.valid()) {
    state.SkipWithError("query invalid");
    return;
  }
  std::vector<std::uint32_t> indices(ds.size());
  for (std::uint32_t i = 0; i < ds.size(); ++i) indices[i] = i;
  std::size_t matched = 0;
  for (auto _ : state) {
    const auto result =
        core::findSimilar(ds, indices, query, params, 2);
    matched = result.trajectoriesMatched;
    benchmark::DoNotOptimize(result);
  }
  state.counters["trajectories"] = static_cast<double>(ds.size());
  state.counters["matched"] = static_cast<double>(matched);
}
BENCHMARK(BM_SimilarityScan)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_ExtractQuery(benchmark::State& state) {
  const auto& ds = bench::dataset(100);
  core::BrushCanvas canvas(ds.arena().radiusCm, 256);
  core::SimilarityParams params;
  const traj::Trajectory& src = ds[0];
  for (float t = 0.0f; t < 15.0f; t += 2.0f) {
    canvas.addStroke({0, src.positionAt(t), 4.0f});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::extractBrushedQuery(src, 0, canvas.grid(), 0, params));
  }
}
BENCHMARK(BM_ExtractQuery)->Unit(benchmark::kMicrosecond);

void printContext() {
  std::printf("\n=== E9 (extension): similarity highlighting ===\n");
  std::printf("pipeline: brushed sub-path -> resample+translate -> "
              "sliding-window banded DTW over every displayed "
              "trajectory\n");
  std::printf("expected shape: DTW kernel O(n^2) (banded ~O(n*band)); "
              "scan linear in trajectories\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  printContext();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
