// compositor.h — assembling per-tile framebuffers into wall images.
//
// In the real system each cluster node drives its own panel; offline we
// gather the tile framebuffers and stitch them, either into the contiguous
// active-pixel image (what the application logically rendered) or into a
// physical mock-up that draws the bezel mullions at scale, which is what a
// photograph of the wall (paper Fig. 3) shows.
#pragma once

#include <vector>

#include "render/framebuffer.h"
#include "wall/wall.h"

namespace svq::wall {

/// Stitches per-tile framebuffers (row-major tile order, each sized
/// tile.pxW x tile.pxH) into the contiguous global-pixel image.
/// Tiles vector must have spec.tileCount() entries.
render::Framebuffer composeActivePixels(
    const WallSpec& spec, const std::vector<render::Framebuffer>& tiles);

/// Renders a physical mock-up at `pxPerMm` scale: active areas are the
/// (downsampled) tile images, bezels are drawn as dark bars. Useful for
/// producing Fig. 3-style overview images at manageable sizes.
render::Framebuffer composePhysicalMockup(
    const WallSpec& spec, const std::vector<render::Framebuffer>& tiles,
    float pxPerMm = 0.25f);

/// Splits a full wall image into per-tile framebuffers (inverse of
/// composeActivePixels); used by tests and by the gather-verify path.
std::vector<render::Framebuffer> splitIntoTiles(
    const WallSpec& spec, const render::Framebuffer& wallImage);

}  // namespace svq::wall
