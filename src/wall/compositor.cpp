#include "wall/compositor.h"

#include <cassert>
#include <cmath>

#include "render/color.h"

namespace svq::wall {

using render::Color;
using render::Framebuffer;

Framebuffer composeActivePixels(const WallSpec& spec,
                                const std::vector<Framebuffer>& tiles) {
  assert(static_cast<int>(tiles.size()) == spec.tileCount());
  Framebuffer out(spec.totalPxW(), spec.totalPxH());
  for (int i = 0; i < spec.tileCount(); ++i) {
    const RectI r = spec.tileRectPx(spec.tileFromIndex(i));
    out.blit(tiles[static_cast<std::size_t>(i)], r.x, r.y);
  }
  return out;
}

Framebuffer composePhysicalMockup(const WallSpec& spec,
                                  const std::vector<Framebuffer>& tiles,
                                  float pxPerMm) {
  assert(static_cast<int>(tiles.size()) == spec.tileCount());
  const int outW =
      static_cast<int>(std::ceil(spec.physicalWmm() * pxPerMm));
  const int outH =
      static_cast<int>(std::ceil(spec.physicalHmm() * pxPerMm));
  Framebuffer out(outW, outH, render::colors::kBezel);

  const TileSpec& t = spec.tile();
  for (int idx = 0; idx < spec.tileCount(); ++idx) {
    const TileCoord tc = spec.tileFromIndex(idx);
    const Framebuffer& src = tiles[static_cast<std::size_t>(idx)];
    // Physical origin of this tile's active area.
    const float ax =
        (static_cast<float>(tc.col) * t.footprintWmm() + t.bezelMm) * pxPerMm;
    const float ay =
        (static_cast<float>(tc.row) * t.footprintHmm() + t.bezelMm) * pxPerMm;
    const int aw = std::max(1, static_cast<int>(t.activeWmm * pxPerMm));
    const int ah = std::max(1, static_cast<int>(t.activeHmm * pxPerMm));
    // Nearest-neighbour downsample of the tile into its physical footprint.
    for (int y = 0; y < ah; ++y) {
      const int sy = std::min(src.height() - 1,
                              y * src.height() / std::max(1, ah));
      for (int x = 0; x < aw; ++x) {
        const int sx = std::min(src.width() - 1,
                                x * src.width() / std::max(1, aw));
        out.set(static_cast<int>(ax) + x, static_cast<int>(ay) + y,
                src.at(sx, sy));
      }
    }
  }
  return out;
}

std::vector<Framebuffer> splitIntoTiles(const WallSpec& spec,
                                        const Framebuffer& wallImage) {
  assert(wallImage.width() == spec.totalPxW());
  assert(wallImage.height() == spec.totalPxH());
  std::vector<Framebuffer> tiles;
  tiles.reserve(static_cast<std::size_t>(spec.tileCount()));
  for (int i = 0; i < spec.tileCount(); ++i) {
    const RectI r = spec.tileRectPx(spec.tileFromIndex(i));
    Framebuffer tile(r.w, r.h);
    for (int y = 0; y < r.h; ++y) {
      for (int x = 0; x < r.w; ++x) {
        tile.at(x, y) = wallImage.at(r.x + x, r.y + y);
      }
    }
    tiles.push_back(std::move(tile));
  }
  return tiles;
}

}  // namespace svq::wall
