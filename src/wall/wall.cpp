#include "wall/wall.h"

#include <cmath>

namespace svq::wall {

std::optional<TileCoord> WallSpec::tileOfPixel(int px, int py) const {
  if (px < 0 || py < 0 || px >= totalPxW() || py >= totalPxH()) {
    return std::nullopt;
  }
  return TileCoord{px / tile_.pxW, py / tile_.pxH};
}

Vec2 WallSpec::pixelToMm(int px, int py) const {
  const int col = px / tile_.pxW;
  const int row = py / tile_.pxH;
  const int lx = px - col * tile_.pxW;
  const int ly = py - row * tile_.pxH;
  const float x = static_cast<float>(col) * tile_.footprintWmm() +
                  tile_.bezelMm +
                  (static_cast<float>(lx) + 0.5f) * tile_.pitchMmX();
  const float y = static_cast<float>(row) * tile_.footprintHmm() +
                  tile_.bezelMm +
                  (static_cast<float>(ly) + 0.5f) * tile_.pitchMmY();
  return {x, y};
}

std::optional<Vec2> WallSpec::mmToPixel(Vec2 mm) const {
  if (mm.x < 0.0f || mm.y < 0.0f || mm.x >= physicalWmm() ||
      mm.y >= physicalHmm()) {
    return std::nullopt;
  }
  const int col = static_cast<int>(mm.x / tile_.footprintWmm());
  const int row = static_cast<int>(mm.y / tile_.footprintHmm());
  const float lxMm = mm.x - static_cast<float>(col) * tile_.footprintWmm() -
                     tile_.bezelMm;
  const float lyMm = mm.y - static_cast<float>(row) * tile_.footprintHmm() -
                     tile_.bezelMm;
  if (lxMm < 0.0f || lyMm < 0.0f || lxMm >= tile_.activeWmm ||
      lyMm >= tile_.activeHmm) {
    return std::nullopt;  // on a bezel
  }
  const float px = static_cast<float>(col * tile_.pxW) + lxMm / tile_.pitchMmX();
  const float py = static_cast<float>(row * tile_.pxH) + lyMm / tile_.pitchMmY();
  return Vec2{px, py};
}

bool WallSpec::rectAvoidsBezels(const RectI& r) const {
  if (r.empty()) return false;
  if (r.x < 0 || r.y < 0 || r.x + r.w > totalPxW() || r.y + r.h > totalPxH()) {
    return false;
  }
  const int c0 = r.x / tile_.pxW;
  const int c1 = (r.x + r.w - 1) / tile_.pxW;
  const int r0 = r.y / tile_.pxH;
  const int r1 = (r.y + r.h - 1) / tile_.pxH;
  return c0 == c1 && r0 == r1;
}

std::vector<int> WallSpec::verticalSeamsPx() const {
  std::vector<int> seams;
  for (int c = 1; c < cols_; ++c) seams.push_back(c * tile_.pxW);
  return seams;
}

std::vector<int> WallSpec::horizontalSeamsPx() const {
  std::vector<int> seams;
  for (int r = 1; r < rows_; ++r) seams.push_back(r * tile_.pxH);
  return seams;
}

WallSpec cyberCommonsWall() { return WallSpec(TileSpec{}, 6, 3); }

WallSpec cyberCommonsUsedRegion() { return WallSpec(TileSpec{}, 6, 2); }

}  // namespace svq::wall
