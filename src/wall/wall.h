// wall.h — tiled display wall geometry model.
//
// Models the physical structure of a large, high-resolution tiled display:
// a grid of LCD panels, each with an active pixel area and a physical
// bezel frame. Two coordinate systems matter:
//
//   * global pixel space — the contiguous framebuffer the application
//     renders into (adjacent tiles' active areas are adjacent pixels;
//     this is what OpenGL on the paper's cluster saw);
//   * physical wall space — millimetres on the wall surface, where bezels
//     occupy real width between the active areas.
//
// The layout engine (core/layout) uses this model for its central
// invariant: no small-multiple cell may straddle a bezel, because
// stereoscopic content crossing a bezel causes viewer discomfort (§IV.C.2)
// and bezels act as natural group dividers.
//
// The preset reproduces the paper's wall: 6x3 thin-bezel stereo LCDs,
// ~7x3 m, ~19 Mpx total; the application used a 6x2 sub-region of
// 8196x1536 px (the paper rounds to 8192x1536, "approximately 12.5
// million pixels").
#pragma once

#include <optional>
#include <vector>

#include "util/geometry.h"

namespace svq::wall {

/// One LCD panel.
struct TileSpec {
  int pxW = 1366;            ///< active-area pixels, horizontal
  int pxH = 768;             ///< active-area pixels, vertical
  float activeWmm = 1150.0f; ///< active-area physical width
  float activeHmm = 647.0f;  ///< active-area physical height
  float bezelMm = 4.0f;      ///< bezel width on each edge (adjacent panels
                             ///< form a 2*bezelMm mullion, < 1 cm)

  float pitchMmX() const { return activeWmm / static_cast<float>(pxW); }
  float pitchMmY() const { return activeHmm / static_cast<float>(pxH); }
  /// Full physical footprint including the bezel frame.
  float footprintWmm() const { return activeWmm + 2.0f * bezelMm; }
  float footprintHmm() const { return activeHmm + 2.0f * bezelMm; }
};

/// Position of a tile within the wall grid.
struct TileCoord {
  int col = 0;
  int row = 0;
  constexpr bool operator==(const TileCoord&) const = default;
};

/// A grid of identical tiles.
class WallSpec {
 public:
  WallSpec() = default;
  WallSpec(TileSpec tile, int cols, int rows)
      : tile_(tile), cols_(cols), rows_(rows) {}

  const TileSpec& tile() const { return tile_; }
  int cols() const { return cols_; }
  int rows() const { return rows_; }
  int tileCount() const { return cols_ * rows_; }

  /// Total active-pixel resolution (the renderable framebuffer size).
  int totalPxW() const { return cols_ * tile_.pxW; }
  int totalPxH() const { return rows_ * tile_.pxH; }
  long long totalPixels() const {
    return static_cast<long long>(totalPxW()) * totalPxH();
  }

  /// Physical size including bezels.
  float physicalWmm() const {
    return static_cast<float>(cols_) * tile_.footprintWmm();
  }
  float physicalHmm() const {
    return static_cast<float>(rows_) * tile_.footprintHmm();
  }

  /// Active-pixel rect of a tile in global pixel space.
  RectI tileRectPx(TileCoord tc) const {
    return {tc.col * tile_.pxW, tc.row * tile_.pxH, tile_.pxW, tile_.pxH};
  }

  /// Tile containing a global pixel; nullopt outside the wall.
  std::optional<TileCoord> tileOfPixel(int px, int py) const;

  /// Linear tile index (row-major) for rank assignment.
  int tileIndex(TileCoord tc) const { return tc.row * cols_ + tc.col; }
  TileCoord tileFromIndex(int index) const {
    return {index % cols_, index / cols_};
  }

  /// Physical wall-mm position of a global pixel's centre (bezel-aware).
  Vec2 pixelToMm(int px, int py) const;

  /// Global pixel containing a physical point; nullopt when the point
  /// falls on a bezel or outside the wall.
  std::optional<Vec2> mmToPixel(Vec2 mm) const;

  /// True iff the rect lies entirely within a single tile's active area —
  /// i.e. it does not straddle any bezel. Empty rects return false.
  bool rectAvoidsBezels(const RectI& r) const;

  /// List of vertical bezel x-positions in global pixel space (the pixel
  /// column index where a new tile starts: multiples of tile pxW except 0).
  std::vector<int> verticalSeamsPx() const;
  std::vector<int> horizontalSeamsPx() const;

  /// Sub-wall consisting of `rows` rows starting at `firstRow` (the paper
  /// drives a 6x2 sub-region of the 6x3 wall).
  WallSpec subWallRows(int firstRow, int rowCount) const {
    (void)firstRow;  // geometry is identical for any contiguous row band
    return WallSpec(tile_, cols_, rowCount);
  }

 private:
  TileSpec tile_;
  int cols_ = 1;
  int rows_ = 1;
};

/// The paper's wall: 6x3 grid of 1366x768 thin-bezel stereo panels
/// (~18.9 Mpx, ~6.9x2.0 m active + bezels).
WallSpec cyberCommonsWall();

/// The 6x2 sub-region the application actually rendered to
/// (8196x1536 px ~= the paper's "8192x1536, approximately 12.5 Mpx").
WallSpec cyberCommonsUsedRegion();

}  // namespace svq::wall
