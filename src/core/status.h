// status.h — typed result of session-service operations.
//
// The session layer's counterpart to net/status.h and io/status (util/
// io.h): admission, event submission and scene building report a typed
// Status instead of a bare bool, so a client (or the load balancer in
// front of a fleet of these nodes) can distinguish "the node is full,
// go elsewhere" (kAtCapacity) from "this tenant is pushing events faster
// than it drains them" (kBackpressure — slow down, nothing is lost that
// the client wasn't told about) from "the event itself was invalid"
// (kRejected) from "that session does not exist" (kUnknownSession).
//
// The overload family (kDeadlineExceeded / kCancelled / kOverloaded)
// reports the health controller's verdicts: a per-apply deadline budget
// ran out mid-work (partial results were discarded, state is consistent,
// retry is safe), the caller's own CancelToken fired, or the node is in
// Shedding and refused the work outright — kOverloaded carries a
// retry-after hint so a load balancer can pace its retries instead of
// hammering a node that just told it to back off.
//
// Shares the common surface of util/status.h — ok()/message()/detail() —
// with the other two status families.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace svq::core {

enum class StatusCode : std::uint8_t {
  kOk = 0,               ///< operation completed
  kRejected = 1,         ///< the event could not be applied (invalid target)
  kBackpressure = 2,     ///< per-session event queue full; retry after drain
  kUnknownSession = 3,   ///< no such session (never admitted, or closed)
  kAtCapacity = 4,       ///< admission refused: node at max sessions
  kShutdown = 5,         ///< service shutting down; no further progress
  kDeadlineExceeded = 6, ///< apply/build abandoned mid-work: budget ran out
  kCancelled = 7,        ///< abandoned mid-work: caller's CancelToken fired
  kOverloaded = 8,       ///< node shedding load; retry after retryAfterMs
};

struct [[nodiscard]] Status {
  StatusCode code = StatusCode::kOk;
  /// The session the status refers to (-1 when not applicable: admission
  /// rejections, shutdown).
  std::int64_t session = -1;
  /// Pacing hint on kOverloaded: how long the caller should wait before
  /// retrying this node (0 on every other code).
  std::uint32_t retryAfterMs = 0;

  static Status ok(std::int64_t session = -1) {
    return {StatusCode::kOk, session};
  }
  static Status rejected(std::int64_t session) {
    return {StatusCode::kRejected, session};
  }
  static Status backpressure(std::int64_t session) {
    return {StatusCode::kBackpressure, session};
  }
  static Status unknownSession(std::int64_t session) {
    return {StatusCode::kUnknownSession, session};
  }
  static Status atCapacity() { return {StatusCode::kAtCapacity, -1}; }
  static Status shutdown() { return {StatusCode::kShutdown, -1}; }
  static Status deadlineExceeded(std::int64_t session) {
    return {StatusCode::kDeadlineExceeded, session};
  }
  static Status cancelled(std::int64_t session) {
    return {StatusCode::kCancelled, session};
  }
  static Status overloaded(std::int64_t session, std::uint32_t retryAfterMs) {
    return {StatusCode::kOverloaded, session, retryAfterMs};
  }

  bool isOk() const { return code == StatusCode::kOk; }
  bool isRejected() const { return code == StatusCode::kRejected; }
  bool isBackpressure() const { return code == StatusCode::kBackpressure; }
  bool isUnknownSession() const {
    return code == StatusCode::kUnknownSession;
  }
  bool isAtCapacity() const { return code == StatusCode::kAtCapacity; }
  bool isShutdown() const { return code == StatusCode::kShutdown; }
  bool isDeadlineExceeded() const {
    return code == StatusCode::kDeadlineExceeded;
  }
  bool isCancelled() const { return code == StatusCode::kCancelled; }
  bool isOverloaded() const { return code == StatusCode::kOverloaded; }
  /// True when the caller should retry the same node later (transient
  /// load conditions), as opposed to a permanent/structural refusal.
  /// kCancelled is NOT retryable: the caller asked for the abort itself.
  bool isRetryable() const {
    return isBackpressure() || isAtCapacity() || isDeadlineExceeded() ||
           isOverloaded();
  }
  /// True for the load-refusal codes the service turns work away with
  /// before touching session state (vs kCancelled/kRejected, which the
  /// caller provoked): these are the refusals replay must re-see.
  bool isLoadShed() const {
    return isBackpressure() || isDeadlineExceeded() || isOverloaded();
  }

  explicit operator bool() const { return isOk(); }
  bool operator==(const Status&) const = default;

  const char* name() const {
    switch (code) {
      case StatusCode::kOk: return "Ok";
      case StatusCode::kRejected: return "Rejected";
      case StatusCode::kBackpressure: return "Backpressure";
      case StatusCode::kUnknownSession: return "UnknownSession";
      case StatusCode::kAtCapacity: return "AtCapacity";
      case StatusCode::kShutdown: return "Shutdown";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kCancelled: return "Cancelled";
      case StatusCode::kOverloaded: return "Overloaded";
    }
    return "?";
  }

  // --- common surface (util::StatusLike) ----------------------------------
  std::int64_t detail() const { return session; }
  const char* detailLabel() const { return "session"; }
  /// "Ok", "Backpressure(session=7)", ... (util/status.h formatting).
  std::string message() const { return util::statusMessage(*this); }
};

static_assert(util::StatusLike<Status>);

/// Explicit severity ranking for worse(). Enum order stopped being
/// severity order when the overload family landed (kShutdown must stay
/// the most severe verdict a composite operation can fold to, and the
/// per-tenant pushback codes must stay milder than the structural ones) —
/// the same wire-order ≠ severity-order split net::Status makes.
///
/// Mild → severe: Ok < Rejected < Backpressure < DeadlineExceeded <
/// Cancelled < Overloaded < UnknownSession < AtCapacity < Shutdown.
/// Rationale: the first four leave the tenant live and the work
/// retryable/re-runnable; Overloaded refuses whole-node; the last three
/// mean the target (or the node) is structurally unavailable.
inline int statusSeverity(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kRejected: return 1;
    case StatusCode::kBackpressure: return 2;
    case StatusCode::kDeadlineExceeded: return 3;
    case StatusCode::kCancelled: return 4;
    case StatusCode::kOverloaded: return 5;
    case StatusCode::kUnknownSession: return 6;
    case StatusCode::kAtCapacity: return 7;
    case StatusCode::kShutdown: return 8;
  }
  return 0;
}

/// The more severe of two statuses under statusSeverity() — mirrors
/// net::worse() / io::worse() via the shared util::worseOf fold.
inline Status worse(Status a, Status b) {
  return util::worseOf(
      a, b, [](const Status& s) { return statusSeverity(s.code); });
}

}  // namespace svq::core
