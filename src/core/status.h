// status.h — typed result of session-service operations.
//
// The session layer's counterpart to net/status.h and io/status (util/
// io.h): admission, event submission and scene building report a typed
// Status instead of a bare bool, so a client (or the load balancer in
// front of a fleet of these nodes) can distinguish "the node is full,
// go elsewhere" (kAtCapacity) from "this tenant is pushing events faster
// than it drains them" (kBackpressure — slow down, nothing is lost that
// the client wasn't told about) from "the event itself was invalid"
// (kRejected) from "that session does not exist" (kUnknownSession).
// Shares the common surface of util/status.h — ok()/message()/detail() —
// with the other two status families.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace svq::core {

enum class StatusCode : std::uint8_t {
  kOk = 0,              ///< operation completed
  kRejected = 1,        ///< the event could not be applied (invalid target)
  kBackpressure = 2,    ///< per-session event queue full; retry after drain
  kUnknownSession = 3,  ///< no such session (never admitted, or closed)
  kAtCapacity = 4,      ///< admission refused: node at max sessions
  kShutdown = 5,        ///< service shutting down; no further progress
};

struct [[nodiscard]] Status {
  StatusCode code = StatusCode::kOk;
  /// The session the status refers to (-1 when not applicable: admission
  /// rejections, shutdown).
  std::int64_t session = -1;

  static Status ok(std::int64_t session = -1) {
    return {StatusCode::kOk, session};
  }
  static Status rejected(std::int64_t session) {
    return {StatusCode::kRejected, session};
  }
  static Status backpressure(std::int64_t session) {
    return {StatusCode::kBackpressure, session};
  }
  static Status unknownSession(std::int64_t session) {
    return {StatusCode::kUnknownSession, session};
  }
  static Status atCapacity() { return {StatusCode::kAtCapacity, -1}; }
  static Status shutdown() { return {StatusCode::kShutdown, -1}; }

  bool isOk() const { return code == StatusCode::kOk; }
  bool isRejected() const { return code == StatusCode::kRejected; }
  bool isBackpressure() const { return code == StatusCode::kBackpressure; }
  bool isUnknownSession() const {
    return code == StatusCode::kUnknownSession;
  }
  bool isAtCapacity() const { return code == StatusCode::kAtCapacity; }
  bool isShutdown() const { return code == StatusCode::kShutdown; }
  /// True when the caller should retry the same node later (transient
  /// load conditions), as opposed to a permanent/structural refusal.
  bool isRetryable() const { return isBackpressure() || isAtCapacity(); }

  explicit operator bool() const { return isOk(); }
  bool operator==(const Status&) const = default;

  const char* name() const {
    switch (code) {
      case StatusCode::kOk: return "Ok";
      case StatusCode::kRejected: return "Rejected";
      case StatusCode::kBackpressure: return "Backpressure";
      case StatusCode::kUnknownSession: return "UnknownSession";
      case StatusCode::kAtCapacity: return "AtCapacity";
      case StatusCode::kShutdown: return "Shutdown";
    }
    return "?";
  }

  // --- common surface (util::StatusLike) ----------------------------------
  std::int64_t detail() const { return session; }
  const char* detailLabel() const { return "session"; }
  /// "Ok", "Backpressure(session=7)", ... (util/status.h formatting).
  std::string message() const { return util::statusMessage(*this); }
};

static_assert(util::StatusLike<Status>);

/// The more severe of two statuses (Shutdown > AtCapacity > UnknownSession
/// > Backpressure > Rejected > Ok) — enum order is severity order here,
/// mirroring io::worse().
inline Status worse(Status a, Status b) {
  return util::worseOf(
      a, b, [](const Status& s) { return static_cast<int>(s.code); });
}

}  // namespace svq::core
