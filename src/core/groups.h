// groups.h — trajectory grouping: binning the wall into filtered regions.
//
// §IV.C.2 "Trajectory Grouping": the user defines rectangular groups of
// grid cells, each with a metadata filter and a background tint; matching
// trajectories fill the group's cells. Fig. 3 shows five such bins (on
// trail / west / east / north / south). The GroupManager owns the group
// definitions and computes the cell -> trajectory assignment, with
// per-group paging when a group has more matches than cells.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/layout.h"
#include "render/color.h"
#include "traj/dataset.h"
#include "traj/filter.h"

namespace svq::core {

/// One group definition.
struct TrajectoryGroup {
  std::uint8_t id = 0;
  std::string name;
  /// Rect in *grid cell* coordinates ([x, x+w) columns, [y, y+h) rows).
  RectI cellRect;
  traj::MetaFilter filter;
  std::uint8_t colorIndex = 0;
  /// Paging offset (in trajectories) when matches exceed capacity.
  std::uint32_t pageOffset = 0;

  int capacity() const { return cellRect.w * cellRect.h; }
};

/// Cell assignment produced by GroupManager::assign.
struct CellAssignment {
  /// Trajectory index shown in this cell, if any.
  std::optional<std::uint32_t> trajectoryIndex;
  /// Group the cell belongs to (nullopt = ungrouped pool).
  std::optional<std::uint8_t> groupId;
  render::Color background = render::colors::kDarkBg;
};

/// Result of assigning a dataset onto a layout grid.
struct GroupAssignment {
  int cellsX = 0;
  int cellsY = 0;
  /// Row-major cell assignments (size = cellsX * cellsY).
  std::vector<CellAssignment> cells;
  /// Per-group number of matching trajectories (keyed by group id).
  std::vector<std::pair<std::uint8_t, std::size_t>> groupMatchCounts;
  /// Number of distinct trajectories displayed.
  std::size_t displayedCount = 0;

  const CellAssignment& at(int cx, int cy) const {
    return cells[static_cast<std::size_t>(cy) * static_cast<std::size_t>(cellsX) +
                 static_cast<std::size_t>(cx)];
  }
};

/// Owns group definitions; validates against a grid size.
class GroupManager {
 public:
  /// Adds or replaces the group with the same id. Returns false (and
  /// leaves state unchanged) if the rect is out of grid bounds or overlaps
  /// another group.
  bool define(const TrajectoryGroup& group, int cellsX, int cellsY);

  /// Removes a group; false if unknown.
  bool remove(std::uint8_t id);

  /// Drops every group whose rect no longer fits a cellsX x cellsY grid
  /// (their cells return to the default pool). Run on layout switches:
  /// groups are validated against the grid at define() time, so a switch
  /// to a smaller preset must not leave rects pointing past it. Returns
  /// the number of groups dropped.
  std::size_t pruneToGrid(int cellsX, int cellsY);

  void clear() { groups_.clear(); }

  const std::vector<TrajectoryGroup>& groups() const { return groups_; }
  TrajectoryGroup* find(std::uint8_t id);

  /// Advances a group's page by +/- its capacity (clamped); false if
  /// unknown id.
  bool page(std::uint8_t id, int direction,
            const traj::TrajectoryDataset& dataset);

  /// Explicit deep copy: the clone owns fresh group definitions (names,
  /// filters, paging state) sharing no storage with this manager. The
  /// detach path of copy-on-write sessions (core/session.h).
  GroupManager clone() const;

  /// Computes the cell assignment for the given grid:
  ///  * each group's cells are filled (row-major) with trajectories
  ///    matching its filter, starting at its pageOffset;
  ///  * cells outside any group are filled with the remaining (unclaimed)
  ///    trajectories in dataset order.
  GroupAssignment assign(const traj::TrajectoryDataset& dataset, int cellsX,
                         int cellsY) const;

 private:
  std::vector<TrajectoryGroup> groups_;
};

/// Builds the five-bin Fig. 3 grouping (on-trail / west / east / north /
/// south) splitting the grid into vertical bands, in paper color order.
void defineFigure3Groups(GroupManager& manager, int cellsX, int cellsY);

}  // namespace svq::core
