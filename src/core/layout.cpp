#include "core/layout.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace svq::core {

std::vector<LayoutConfig> paperLayoutPresets() {
  return {
      LayoutConfig{15, 4},
      LayoutConfig{24, 6},
      LayoutConfig{36, 12},
  };
}

std::vector<int> apportion(int total, int bins) {
  assert(bins > 0);
  std::vector<int> out(static_cast<std::size_t>(bins), total / bins);
  int remainder = total - (total / bins) * bins;
  // Spread the remainder as evenly as possible (alternating from both
  // ends keeps the distribution symmetric, which looks better on a wall).
  int lo = 0;
  int hi = bins - 1;
  bool front = true;
  while (remainder > 0) {
    if (front) {
      ++out[static_cast<std::size_t>(lo++)];
    } else {
      ++out[static_cast<std::size_t>(hi--)];
    }
    front = !front;
    --remainder;
  }
  return out;
}

SmallMultipleLayout SmallMultipleLayout::compute(
    const wall::WallSpec& wallSpec, const LayoutConfig& config) {
  SmallMultipleLayout layout;
  layout.config_ = config;
  layout.rects_.assign(
      static_cast<std::size_t>(config.cellsX) *
          static_cast<std::size_t>(config.cellsY),
      RectI{});

  const std::vector<int> colsPerTile = apportion(config.cellsX, wallSpec.cols());
  const std::vector<int> rowsPerTile = apportion(config.cellsY, wallSpec.rows());

  // Global grid index offsets of each tile's first cell column/row.
  std::vector<int> colOffset(static_cast<std::size_t>(wallSpec.cols()) + 1, 0);
  for (int c = 0; c < wallSpec.cols(); ++c) {
    colOffset[static_cast<std::size_t>(c) + 1] =
        colOffset[static_cast<std::size_t>(c)] + colsPerTile[static_cast<std::size_t>(c)];
  }
  std::vector<int> rowOffset(static_cast<std::size_t>(wallSpec.rows()) + 1, 0);
  for (int r = 0; r < wallSpec.rows(); ++r) {
    rowOffset[static_cast<std::size_t>(r) + 1] =
        rowOffset[static_cast<std::size_t>(r)] + rowsPerTile[static_cast<std::size_t>(r)];
  }

  for (int tr = 0; tr < wallSpec.rows(); ++tr) {
    for (int tc = 0; tc < wallSpec.cols(); ++tc) {
      const RectI tile = wallSpec.tileRectPx({tc, tr});
      const int nx = colsPerTile[static_cast<std::size_t>(tc)];
      const int ny = rowsPerTile[static_cast<std::size_t>(tr)];
      if (nx <= 0 || ny <= 0) continue;

      const int innerW = tile.w - 2 * config.tileMarginPx;
      const int innerH = tile.h - 2 * config.tileMarginPx;
      const int cellW = (innerW - (nx - 1) * config.cellGapPx) / nx;
      const int cellH = (innerH - (ny - 1) * config.cellGapPx) / ny;

      for (int ly = 0; ly < ny; ++ly) {
        for (int lx = 0; lx < nx; ++lx) {
          const int gx = colOffset[static_cast<std::size_t>(tc)] + lx;
          const int gy = rowOffset[static_cast<std::size_t>(tr)] + ly;
          const RectI r{
              tile.x + config.tileMarginPx + lx * (cellW + config.cellGapPx),
              tile.y + config.tileMarginPx + ly * (cellH + config.cellGapPx),
              cellW, cellH};
          layout.rects_[static_cast<std::size_t>(gy) *
                            static_cast<std::size_t>(config.cellsX) +
                        static_cast<std::size_t>(gx)] = r;
        }
      }
    }
  }
  return layout;
}

std::optional<Vec2> SmallMultipleLayout::cellOfPixel(int px, int py) const {
  for (int cy = 0; cy < config_.cellsY; ++cy) {
    for (int cx = 0; cx < config_.cellsX; ++cx) {
      if (cellRect(cx, cy).contains(px, py)) {
        return Vec2{static_cast<float>(cx), static_cast<float>(cy)};
      }
    }
  }
  return std::nullopt;
}

bool SmallMultipleLayout::allCellsAvoidBezels(
    const wall::WallSpec& wallSpec) const {
  return std::all_of(rects_.begin(), rects_.end(), [&](const RectI& r) {
    return wallSpec.rectAvoidsBezels(r);
  });
}

bool SmallMultipleLayout::noOverlaps() const {
  for (std::size_t i = 0; i < rects_.size(); ++i) {
    for (std::size_t j = i + 1; j < rects_.size(); ++j) {
      if (rects_[i].intersects(rects_[j])) return false;
    }
  }
  return true;
}

int SmallMultipleLayout::minCellSize() const {
  int m = std::numeric_limits<int>::max();
  for (const RectI& r : rects_) m = std::min({m, r.w, r.h});
  return rects_.empty() ? 0 : m;
}

}  // namespace svq::core
