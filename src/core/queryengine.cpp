#include "core/queryengine.h"

#include <algorithm>
#include <utility>

#include "util/stopwatch.h"
#include "util/threadpool.h"

namespace svq::core {

QueryEngine::QueryEngine(QueryParams params) : params_(std::move(params)) {
  current_ = std::make_shared<const QueryResult>();
}

void QueryEngine::setTrajectories(std::vector<TrajectoryRef> refs,
                                  const AABB2& frame) {
  refs_ = std::move(refs);
  frame_ = frame;
  cache_.assign(refs_.size(), CacheEntry{});
  for (std::size_t i = 0; i < refs_.size(); ++i) {
    cache_[i].footprint = traj::computeFootprint(*refs_[i], frame_);
  }
  pendingDirtyRects_.clear();
  temporalDirty_ = true;
}

void QueryEngine::setTrajectories(const traj::TrajectoryDataset& dataset,
                                  std::span<const std::uint32_t> indices) {
  setTrajectories(makeRefs(dataset, indices), dataset.arena().bounds());
}

void QueryEngine::setTrajectories(
    std::span<const traj::Trajectory> trajectories, const AABB2& frame) {
  setTrajectories(makeRefs(trajectories), frame);
}

void QueryEngine::setBrush(const BrushGrid* brush) {
  brush_ = brush;
  markAllSpatialDirty();
}

void QueryEngine::markAllSpatialDirty() {
  for (CacheEntry& e : cache_) {
    e.spatialValid = false;
    e.rowDirty = true;
  }
  pendingDirtyRects_.clear();
  temporalDirty_ = true;  // rows must rebuild even if the window is stable
}

void QueryEngine::invalidateRegion(const AABB2& arenaRect) {
  if (!arenaRect.valid()) return;
  pendingDirtyRects_.push_back(arenaRect);
}

void QueryEngine::setParams(const QueryParams& params) {
  const bool temporalChanged =
      params.timeWindow.x != params_.timeWindow.x ||
      params.timeWindow.y != params_.timeWindow.y ||
      params.relativeWindow != params_.relativeWindow ||
      params.brushCount != params_.brushCount;
  params_ = params;
  if (temporalChanged) temporalDirty_ = true;
}

std::shared_ptr<const QueryResult> QueryEngine::current() const {
  std::lock_guard lock(currentMutex_);
  return current_;
}

void QueryEngine::publish(std::shared_ptr<const QueryResult> next) {
  std::lock_guard lock(currentMutex_);
  current_ = std::move(next);
}

std::shared_ptr<const QueryResult> QueryEngine::evaluate() {
  return evaluate(util::Cancellation::none());
}

std::shared_ptr<const QueryResult> QueryEngine::evaluate(
    const util::Cancellation& cancel) {
  // Fold pending dirty rects into per-trajectory invalidation.
  if (brush_ != nullptr && !pendingDirtyRects_.empty()) {
    for (const AABB2& rect : pendingDirtyRects_) {
      const std::uint64_t mask = traj::rectOccupancyMask(rect, frame_);
      for (CacheEntry& e : cache_) {
        if (!e.spatialValid) continue;  // already scheduled for reclassify
        if (traj::footprintMayIntersect(e.footprint, rect, mask)) {
          e.spatialValid = false;
          e.rowDirty = true;
        }
      }
    }
  }
  pendingDirtyRects_.clear();

  // Collect the spatially dirty subset.
  std::vector<std::size_t> dirty;
  if (brush_ != nullptr) {
    for (std::size_t i = 0; i < cache_.size(); ++i) {
      if (!cache_[i].spatialValid) dirty.push_back(i);
    }
  }

  if (dirty.empty() && !temporalDirty_) {
    ++metrics_.cachedPasses;
    lastInvalidated_.clear();
    return current();
  }

  Stopwatch watch;

  // Pass 1 — spatial re-classification of the dirty subset only. Each
  // task polls the cancellation: a stopped task leaves its entry dirty
  // (spatialValid=false), a completed one keeps its fresh cache either
  // way — abandoning mid-pass never tears an entry.
  if (!dirty.empty()) {
    auto body = [&](std::size_t k) {
      if (cancel.shouldStop()) return;
      const std::size_t i = dirty[k];
      CacheEntry& e = cache_[i];
      if (classifySpatial(*refs_[i], *brush_, e.spatialHits,
                          e.lastSegmentBrush, cancel)) {
        e.spatialValid = true;
      }
    };
    if (params_.parallel && dirty.size() > 1) {
      parallelFor(0, dirty.size(), body, 4);
    } else {
      for (std::size_t k = 0; k < dirty.size(); ++k) body(k);
    }
  }
  if (cancel.shouldStop()) {
    ++metrics_.abandonedPasses;
    return nullptr;
  }

  // Pass 2 — rebuild rows. A temporal change touches every row; a spatial
  // edit touches only rows whose classification changed, the rest are
  // copied from the previous generation (double-buffering: the previous
  // result object is never written to).
  const std::size_t count = refs_.size();
  auto prev = current();
  auto next = std::make_shared<QueryResult>();
  next->segmentHighlights.resize(count);
  next->summaries.resize(count);
  next->trajectoriesEvaluated = count;

  const bool copyRows =
      !temporalDirty_ && prev->segmentHighlights.size() == count;
  auto rowBody = [&](std::size_t i) {
    if (cancel.shouldStop()) return;  // `next` is discarded below
    CacheEntry& e = cache_[i];
    if (copyRows && !e.rowDirty) {
      next->segmentHighlights[i] = prev->segmentHighlights[i];
      next->summaries[i] = prev->summaries[i];
      return;
    }
    if (brush_ == nullptr) {
      // No brush bound: nothing can highlight; emit empty rows.
      const std::size_t nPts = refs_[i]->size();
      next->segmentHighlights[i].assign(nPts >= 2 ? nPts - 1 : 0, kNoBrush);
      HighlightSummary& s = next->summaries[i];
      s = HighlightSummary{};
      s.trajectoryIndex = refs_[i].index;
      s.segmentsPerBrush.assign(params_.brushCount, 0);
      s.durationPerBrush.assign(params_.brushCount, 0.0f);
      s.firstHitTime.assign(params_.brushCount, -1.0f);
      return;
    }
    applyTemporalMask(*refs_[i], refs_[i].index, e.spatialHits,
                      e.lastSegmentBrush, params_, next->segmentHighlights[i],
                      next->summaries[i]);
  };
  if (params_.parallel && count > 1) {
    parallelFor(0, count, rowBody, 8);
  } else {
    for (std::size_t i = 0; i < count; ++i) rowBody(i);
  }
  if (cancel.shouldStop()) {
    // Abandon before publishing: `next` dies here, rowDirty/temporalDirty
    // stay set, generation and current() are untouched — consumers can
    // never observe the partial rebuild.
    ++metrics_.abandonedPasses;
    return nullptr;
  }
  for (CacheEntry& e : cache_) e.rowDirty = false;

  for (std::size_t i = 0; i < count; ++i) {
    const auto& segs = next->segmentHighlights[i];
    next->totalSegmentsEvaluated += segs.size();
    const auto highlighted = static_cast<std::size_t>(
        std::count_if(segs.begin(), segs.end(),
                      [](std::int8_t h) { return h != kNoBrush; }));
    next->totalSegmentsHighlighted += highlighted;
    if (highlighted > 0) ++next->trajectoriesHighlighted;
  }

  next->generation = ++generation_;
  temporalDirty_ = false;

  // Metrics.
  ++metrics_.passes;
  metrics_.lastPassInvalidated = dirty.size();
  metrics_.lastPassReused = count - dirty.size();
  metrics_.lastPassSpatialClassifications = dirty.size();
  metrics_.trajectoriesInvalidated += dirty.size();
  metrics_.trajectoriesReused += count - dirty.size();
  if (dirty.empty()) {
    ++metrics_.temporalOnlyPasses;
  } else {
    ++metrics_.spatialPasses;
  }
  metrics_.lastPassMillis = watch.elapsedMillis();
  lastInvalidated_ = std::move(dirty);

  std::shared_ptr<const QueryResult> published = std::move(next);
  publish(published);
  return published;
}

}  // namespace svq::core
