#include "core/hypothesis.h"

#include <algorithm>

#include "traj/stats.h"
#include "util/stopwatch.h"

namespace svq::core {

bool HitCriterion::satisfiedBy(const HighlightSummary& s) const {
  if (requireEndInBrush &&
      s.lastSegmentBrush != static_cast<std::int8_t>(brushIndex)) {
    return false;
  }
  if (!s.hitByBrush(brushIndex)) return false;
  if (s.highlightedDuration(brushIndex) < minHighlightDurationS) return false;
  if (maxFirstHitTimeS) {
    const float first = brushIndex < s.firstHitTime.size()
                            ? s.firstHitTime[brushIndex]
                            : -1.0f;
    if (first < 0.0f || first > *maxFirstHitTimeS) return false;
  }
  return true;
}

HypothesisResult evaluateHypothesis(const Hypothesis& h,
                                    const traj::TrajectoryDataset& dataset,
                                    int brushGridResolution) {
  Stopwatch timer;
  HypothesisResult result;
  result.name = h.name;

  BrushCanvas canvas(dataset.arena().radiusCm, brushGridResolution);
  if (h.paintRegion) h.paintRegion(canvas);
  for (const BrushStroke& s : h.strokes) canvas.addStroke(s);

  const auto population = dataset.select(
      [&h](const traj::Trajectory& t) { return h.population.matches(t); });
  const auto complement = dataset.select(
      [&h](const traj::Trajectory& t) { return !h.population.matches(t); });

  QueryParams params;
  params.timeWindow = h.timeWindow;

  const QueryResult popResult =
      evaluate(makeRefs(dataset, population), canvas.grid(), params);
  std::size_t hits = 0;
  for (const HighlightSummary& s : popResult.summaries) {
    if (h.criterion.satisfiedBy(s)) ++hits;
  }

  const QueryResult compResult =
      evaluate(makeRefs(dataset, complement), canvas.grid(), params);
  std::size_t compHits = 0;
  for (const HighlightSummary& s : compResult.summaries) {
    if (h.criterion.satisfiedBy(s)) ++compHits;
  }

  result.populationSize = population.size();
  result.hits = hits;
  result.supportFraction =
      population.empty()
          ? 0.0f
          : static_cast<float>(hits) / static_cast<float>(population.size());
  result.supported = result.supportFraction >= h.supportThreshold;
  result.complementSupportFraction =
      complement.empty() ? 0.0f
                         : static_cast<float>(compHits) /
                               static_cast<float>(complement.size());
  result.evaluationSeconds = timer.elapsedSeconds();
  return result;
}

std::vector<HypothesisResult> evaluateBattery(
    const std::vector<Hypothesis>& battery,
    const traj::TrajectoryDataset& dataset, int brushGridResolution) {
  std::vector<HypothesisResult> results;
  results.reserve(battery.size());
  for (const Hypothesis& h : battery) {
    results.push_back(evaluateHypothesis(h, dataset, brushGridResolution));
  }
  return results;
}

Hypothesis makeHomingHypothesis(traj::CaptureSide capturedSide,
                                traj::ArenaSide exitSideBrushed,
                                float arenaRadiusCm) {
  Hypothesis h;
  h.name = std::string("homing_") + traj::toString(capturedSide) + "_exits_" +
           traj::toString(exitSideBrushed);
  h.statement = std::string("Ants captured ") + traj::toString(capturedSide) +
                " of the foraging trail exit the arena from the " +
                traj::toString(exitSideBrushed) + " side";
  h.population = traj::MetaFilter::bySide(capturedSide);
  h.paintRegion = [exitSideBrushed, arenaRadiusCm](BrushCanvas& canvas) {
    paintArenaHalf(canvas, 0, exitSideBrushed, arenaRadiusCm);
  };
  // The analyst looks at where trajectories *end up* (she narrows the
  // temporal filter to the last few seconds): the trajectory must
  // terminate inside the brushed half, not merely cross it.
  h.criterion.brushIndex = 0;
  h.criterion.requireEndInBrush = true;
  h.supportThreshold = 0.5f;
  return h;
}

Hypothesis makeSeedSearchHypothesis(float arenaRadiusCm, float windowS,
                                    float minDwellS) {
  Hypothesis h;
  h.name = "seed_droppers_search_center_early";
  h.statement =
      "Ants that dropped their seed spend the beginning of the experiment "
      "searching the centre of the arena";
  h.population = traj::MetaFilter::bySeed(traj::SeedState::kDroppedAtCapture);
  const float centerRadius = arenaRadiusCm * 0.2f;
  h.paintRegion = [centerRadius](BrushCanvas& canvas) {
    paintArenaCenter(canvas, 1, centerRadius);
  };
  h.timeWindow = {0.0f, windowS};
  h.criterion.brushIndex = 1;
  h.criterion.minHighlightDurationS = minDwellS;
  h.supportThreshold = 0.5f;
  return h;
}

WindinessComparison compareWindiness(const traj::TrajectoryDataset& dataset) {
  WindinessComparison out;
  std::vector<double> onTrail;
  std::vector<double> offTrail;
  for (const traj::Trajectory& t : dataset.all()) {
    const double s = traj::sinuosity(t);
    if (t.meta().side == traj::CaptureSide::kOnTrail) {
      onTrail.push_back(s);
    } else {
      offTrail.push_back(s);
    }
  }
  out.onTrailMeanSinuosity = traj::summarize(std::move(onTrail)).mean;
  out.offTrailMeanSinuosity = traj::summarize(std::move(offTrail)).mean;
  out.onTrailWindier = out.onTrailMeanSinuosity > out.offTrailMeanSinuosity;
  return out;
}

}  // namespace svq::core
