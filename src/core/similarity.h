// similarity.h — similarity highlighting (§IV.C.2's originally-envisioned
// use of the coordinated brush).
//
// "The user can brush a portion of one interesting trajectory, which
// would cause trajectories with a similar movement pattern to be
// highlighted." The pipeline:
//
//   1. the brushed portion of the *source* trajectory (its samples lying
//      on painted texels) is extracted as the query sub-path;
//   2. the query is resampled to a fixed point count and translated to
//      the origin (shape, not position, is what "similar movement
//      pattern" means — and optionally position-sensitive matching is
//      available);
//   3. every other displayed trajectory is scanned with a sliding window
//      of comparable duration; windows within a DTW threshold produce
//      segment highlights, rendered exactly like brush-crossing ones.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/brush.h"
#include "core/query.h"
#include "traj/dataset.h"
#include "traj/dtw.h"

namespace svq::core {

struct SimilarityParams {
  /// Points the query and each candidate window are resampled to.
  std::size_t resampleCount = 24;
  /// Normalized-DTW threshold (cm per step) below which a window matches.
  float matchThresholdCm = 3.0f;
  /// Sakoe–Chiba band as a fraction of resampleCount (<0 disables).
  float bandFraction = 0.25f;
  /// Window stride as a fraction of the query duration.
  float strideFraction = 0.25f;
  /// Translate shapes to a common origin before comparing (shape match);
  /// false compares in absolute arena coordinates.
  bool translationInvariant = true;
  /// Evaluate targets in parallel.
  bool parallel = true;
};

/// The query sub-path extracted from the source trajectory.
struct SimilarityQuery {
  std::vector<Vec2> shape;   ///< resampled (and possibly origin-shifted)
  float durationS = 0.0f;    ///< duration of the brushed portion
  std::size_t sourceIndex = 0;
  bool valid() const { return shape.size() >= 2 && durationS > 0.0f; }
};

/// One matched window on a target trajectory.
struct SimilarityMatch {
  std::uint32_t trajectoryIndex = 0;
  std::size_t beginSample = 0;  ///< first sample of the matched window
  std::size_t endSample = 0;    ///< one-past-last sample
  float distance = 0.0f;        ///< normalized DTW (cm/step)
};

/// Result mirrors QueryResult's highlight layout so scenes can render it
/// with the same machinery.
struct SimilarityResult {
  SimilarityQuery query;
  std::vector<SimilarityMatch> matches;
  /// segmentHighlights[i][s] uses `highlightBrush` for matched windows.
  std::vector<std::vector<std::int8_t>> segmentHighlights;
  std::size_t trajectoriesMatched = 0;
};

/// Extracts the brushed portion of `source`: the longest contiguous run
/// of samples covered by `brushIndex` paint. Returns an invalid query if
/// fewer than two samples are covered.
SimilarityQuery extractBrushedQuery(const traj::Trajectory& source,
                                    std::uint32_t sourceIndex,
                                    const BrushGrid& brush,
                                    std::int8_t brushIndex,
                                    const SimilarityParams& params);

/// Scans the listed trajectories for windows similar to the query.
/// The source trajectory may be included; its own matched windows
/// (trivially, the query itself) highlight too, which is what the wall
/// shows. `highlightBrush` selects the highlight color index.
SimilarityResult findSimilar(const traj::TrajectoryDataset& dataset,
                             std::span<const std::uint32_t> indices,
                             const SimilarityQuery& query,
                             const SimilarityParams& params,
                             std::int8_t highlightBrush = 2);

}  // namespace svq::core
