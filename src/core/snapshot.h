// snapshot.h — session state persistence.
//
// §VII: "integrating our application into larger scientific workflows".
// A snapshot captures the complete interactive state of a Session
// — layout preset, groups, paging, brush strokes, temporal filter and
// stereo sliders — so a session can be saved, resumed, shared, or
// branched (each hypothesis exploration can be checkpointed). Restoring
// a snapshot into an app over the same dataset reproduces the frame
// pixel-for-pixel.
#pragma once

#include <optional>
#include <string>

#include "core/session.h"
#include "net/message.h"

namespace svq::core {

/// Serializes the app's interactive state (not the dataset).
net::MessageBuffer saveSnapshot(const Session& app);

/// Restores a snapshot into an app. The app must be bound to a dataset
/// compatible with the one the snapshot was taken over (same trajectory
/// count/ids); returns false on malformed input.
bool restoreSnapshot(Session& app, net::MessageBuffer snapshot);

/// File convenience wrappers.
bool saveSnapshotFile(const Session& app, const std::string& path);
bool restoreSnapshotFile(Session& app, const std::string& path);

}  // namespace svq::core
