// sessionservice.h — N concurrent explorers over one SharedContext.
//
// The multi-tenant layer of the ROADMAP north-star: one node owns one
// immutable SharedContext (dataset / shard store / SOM / shared render
// cache) and multiplexes up to maxSessions independent Sessions over it.
// Each tenant gets:
//
//   * admission control — admit() hands out a SessionId or a typed
//     refusal (core::Status kAtCapacity) a load balancer can act on;
//   * a bounded event queue — submit() enqueues without touching session
//     state (cheap, callable from an ingest thread); a full queue returns
//     kBackpressure, telling that tenant to slow down without penalizing
//     anyone else. drain() applies the backlog; apply() is the
//     synchronous submit-and-apply path interactive callers use;
//   * isolation — per-tenant state is copy-on-write Session state, and
//     every operation on a tenant runs under that tenant's own mutex.
//     Different tenants never contend except on the (read-mostly) session
//     map and the internally-synchronized shared render cache;
//   * overload protection — a per-node health controller (Healthy →
//     Degraded → Shedding) driven by the windowed apply-latency p99 and
//     the aggregate queued-event depth. Degraded shrinks the per-apply
//     deadline budget and coalesces stale queued events (latest-wins,
//     lossless for the final state); Shedding refuses new work with a
//     typed kOverloaded (carrying a retry-after hint) while closes and
//     drains — the operations that *reduce* load — always get through.
//     Escalation is immediate; recovery steps down one level per calm
//     evaluation window, so a node never flaps straight from Shedding
//     to Healthy (monotone, bounded recovery).
//
// Metrics (util/metrics, prefix "sessions."): active (gauge),
// admitted / admission_rejected / closed / events_applied /
// events_rejected / events_queued / backpressure (counters), and
// apply_latency_us (histogram -> p50/p99 in snapshots). The overload
// controller adds: health_state (gauge: 0 healthy / 1 degraded /
// 2 shedding), shed / deadline_exceeded / events_coalesced /
// degraded_entered / shedding_entered (counters), and per-state latency
// histograms apply_latency_us.healthy / .degraded / .shedding. Together
// with render.shared.* these are the per-node health numbers: sessions
// active, events/s, cache cross-hit-rate, apply latency tail, shed rate.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "core/context.h"
#include "core/session.h"
#include "core/status.h"
#include "ui/events.h"
#include "util/cancel.h"
#include "util/clock.h"

namespace svq::core {

/// Opaque tenant handle (dense, never reused within one service).
using SessionId = std::uint64_t;

/// Thread-safe multiplexer of Sessions over one SharedContext.
class SessionService {
 public:
  struct Options {
    /// Admission ceiling (SVQ_MAX_SESSIONS).
    std::size_t maxSessions = 256;
    /// Bound of each tenant's pending-event queue (SVQ_SESSION_QUEUE_DEPTH).
    std::size_t eventQueueDepth = 128;
    /// Per-apply deadline budget in microseconds; 0 = unlimited.
    /// (SVQ_APPLY_DEADLINE_MS, in milliseconds.) apply() spends the
    /// budget across the tenant's backlog and the synchronous event; an
    /// exhausted budget refuses the synchronous event with
    /// kDeadlineExceeded, backlog intact. buildScene() hands the same
    /// budget to the query engine as a cooperative cancellation.
    std::uint64_t applyDeadlineUs = 0;
    /// Windowed apply-latency p99 (microseconds) that trips the health
    /// controller: p99 >= this => Shedding, p99 >= this/2 => Degraded.
    /// 0 disables the latency trigger (SVQ_SHED_P99_US).
    std::uint64_t shedP99Us = 0;
    /// Aggregate queued-event depth (all tenants) that trips the health
    /// controller: depth >= this => Shedding, depth >= this/2 =>
    /// Degraded. 0 disables the depth trigger.
    std::size_t shedQueueDepth = 0;
    /// Apply attempts (applied or refused) per health evaluation window.
    std::size_t healthWindow = 64;
    /// Degraded divides the per-apply deadline budget by this.
    std::uint32_t degradedDeadlineDiv = 4;
    /// Retry-after hint (milliseconds) carried on kOverloaded refusals.
    std::uint32_t retryAfterMs = 25;
    /// Time source for deadlines, latency accounting and the health
    /// controller; nullptr = the process steady clock. Replay injects a
    /// util::ManualClock so overload behaviour is a pure function of the
    /// recorded steps, not of runner speed.
    const util::Clock* clock = nullptr;

    /// Reads SVQ_MAX_SESSIONS, SVQ_SESSION_QUEUE_DEPTH,
    /// SVQ_APPLY_DEADLINE_MS and SVQ_SHED_P99_US. Values must be strictly
    /// positive integers; zero, negative or unparsable input is rejected
    /// with a logged warning and the compiled default kept — a typo in an
    /// ops script must never silently turn a safety knob off.
    static Options fromEnv();
  };

  /// Per-node overload state. Ordered by severity: the controller only
  /// ever escalates immediately and recovers one level per calm window.
  enum class Health : std::uint8_t {
    kHealthy = 0,   ///< full deadlines, nothing refused
    kDegraded = 1,  ///< deadlines divided, queued backlogs coalesced
    kShedding = 2,  ///< new work refused with kOverloaded; close/drain ok
  };

  /// What admit() hands back: an id iff status.isOk().
  struct Admission {
    Status status;
    SessionId id = 0;
    explicit operator bool() const { return status.isOk(); }
  };

  /// Observation hooks for session record/replay (replay::Recorder).
  /// onEvent fires for every event that *enters or is refused from* a
  /// tenant's stream, with the Status the service decided: isOk() means
  /// accepted — from submit() at enqueue time and apply() at apply time,
  /// under the tenant's mutex, i.e. in the exact order events enter that
  /// tenant's stream — while kBackpressure / kOverloaded /
  /// kDeadlineExceeded mean the event was turned away (it did NOT enter
  /// the stream; a replay must re-see the refusal, not re-apply the
  /// event). onAdmit/onClose fire after the tenant map changes. Install
  /// before traffic starts and leave in place until the flows being
  /// observed are quiesced; the empty default disables observation.
  struct Hooks {
    std::function<void(SessionId)> onAdmit;
    std::function<void(SessionId, const ui::Event&, const Status&)> onEvent;
    std::function<void(SessionId)> onClose;
    /// Fires for every refine() call with the *requested* shard budget
    /// and the Status the service decided (isOk() = the step ran,
    /// kOverloaded = refused while Shedding). The recorded budget is the
    /// requested one — a replay re-issues the same call and the health
    /// scaling re-derives deterministically.
    std::function<void(SessionId, std::uint32_t, const Status&)> onRefine;
  };

  explicit SessionService(std::shared_ptr<const SharedContext> context);
  SessionService(std::shared_ptr<const SharedContext> context,
                 Options options);

  /// Installs (or, with a default-constructed Hooks, removes) the
  /// observation hooks. Not synchronized against in-flight operations —
  /// set while the service is quiet.
  void setHooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Creates a fresh tenant session (O(1): COW state over the shared
  /// context). kAtCapacity when maxSessions are live, kShutdown after
  /// shutdown(). Admission is allowed even when Shedding: admitting is
  /// O(1) and the new tenant's work is what gets shed.
  Admission admit();

  /// Ends a tenant; queued events are dropped. kUnknownSession if the id
  /// was never admitted or already closed. Always allowed — closing
  /// *reduces* load, so no health state refuses it.
  Status close(SessionId id);

  /// Enqueues an event for later drain(). kBackpressure (and the event is
  /// NOT queued) when the tenant's queue is at eventQueueDepth;
  /// kOverloaded (with a retry-after hint) when the node is Shedding.
  Status submit(SessionId id, const ui::Event& event);

  /// Applies every queued event in submission order. kRejected when any
  /// event could not be applied (the rest still apply); `appliedOut`
  /// (optional) receives the number applied either way. Always allowed —
  /// draining is how an overloaded node recovers — but a non-Healthy node
  /// coalesces the backlog first (latest-wins, lossless for final state).
  Status drain(SessionId id, std::size_t* appliedOut = nullptr);

  /// Drains the backlog, then applies `event` synchronously — the
  /// interactive path. Latency lands in sessions.apply_latency_us (and
  /// the per-health-state variant). Overload behaviour:
  ///   * Shedding: refused outright with kOverloaded + retry-after; the
  ///     backlog is untouched (use drain() to make progress).
  ///   * Degraded: the backlog is coalesced, the deadline budget is
  ///     divided by degradedDeadlineDiv.
  ///   * Deadline exhausted mid-backlog: the synchronous event is refused
  ///     with kDeadlineExceeded; backlog remainder stays queued — never
  ///     torn, never silently dropped.
  Status apply(SessionId id, const ui::Event& event);

  /// Advances the tenant's anytime query (progressive sessions only; a
  /// no-op returning kOk for the rest): up to `maxShards` uncertain
  /// shards are exactly evaluated, largest population first. Health
  /// applies exactly like apply(): Shedding refuses with kOverloaded +
  /// retry-after (refinement is deferrable work — shedding it is the
  /// point), Degraded divides the shard budget by degradedDeadlineDiv
  /// (min 1), and the apply deadline rides along as a cooperative
  /// cancellation polled between shards (at least one shard always
  /// resolves, so refinement makes progress even degraded). `refinedOut`
  /// (optional) receives the number of shards resolved.
  Status refine(SessionId id, std::size_t maxShards,
                std::size_t* refinedOut = nullptr);

  /// Builds the tenant's current scene into `out`. The apply deadline
  /// budget (scaled by health) rides along as a cooperative cancellation:
  /// an over-budget build returns kDeadlineExceeded with the session
  /// untouched (the engine keeps its dirty-set; the next build resumes).
  Status buildScene(SessionId id, render::SceneModel& out);

  /// Runs `fn(Session&)` under the tenant's lock — snapshots, custom
  /// reads, render loops owning their own pipeline.
  template <typename Fn>
  Status withSession(SessionId id, Fn&& fn) {
    if (shutdown_.load(std::memory_order_acquire)) return Status::shutdown();
    const std::shared_ptr<Tenant> t = tenant(id);
    if (!t) return Status::unknownSession(static_cast<std::int64_t>(id));
    std::lock_guard<std::mutex> lock(t->mutex);
    fn(t->session);
    return Status::ok(static_cast<std::int64_t>(id));
  }

  std::size_t activeSessions() const;
  /// Pending (queued, undrained) events of one tenant; 0 for unknown ids.
  std::size_t queuedEvents(SessionId id) const;
  /// Aggregate queued events across every tenant — the depth the health
  /// controller watches. O(1) (maintained counter, not a map walk).
  std::size_t queuedEventsTotal() const {
    return queuedTotal_.load(std::memory_order_relaxed);
  }
  /// Current overload state.
  Health health() const {
    return static_cast<Health>(health_.load(std::memory_order_acquire));
  }
  const Options& options() const { return options_; }
  const SharedContext& context() const { return *context_; }

  /// Stops the service: closes every tenant; subsequent operations return
  /// kShutdown.
  void shutdown();

 private:
  struct Tenant {
    explicit Tenant(Session s) : session(std::move(s)) {}
    std::mutex mutex;  ///< guards session + queue
    Session session;
    std::deque<ui::Event> queue;
  };

  /// One evaluation window's apply-latency distribution: power-of-two
  /// buckets like util::Histogram, but drainable — the health controller
  /// atomically swaps each window out, so no sample is double-counted
  /// across windows and the p99 reflects *recent* latency, not the
  /// process lifetime.
  struct WindowHistogram {
    std::array<std::atomic<std::uint64_t>, 65> buckets{};
    void record(std::uint64_t v) {
      buckets[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    }
    /// Drains the window and returns its p99 upper bound (0 when empty).
    std::uint64_t drainP99();
  };

  /// The tenant's record, or nullptr. Tenants are held by shared_ptr so a
  /// concurrent close() never pulls a locked tenant out from under an
  /// in-flight operation.
  std::shared_ptr<Tenant> tenant(SessionId id) const;
  /// Applies one event under t.mutex (held by caller); records metrics
  /// into the blended and the per-health-state latency histograms.
  bool applyOneLocked(Tenant& t, const ui::Event& event, Health state);
  /// Drops queue entries that cannot affect the tenant's final state:
  /// scalar setters (time window / depth / scale) superseded by a later
  /// setter of the same kind, and brush strokes covered by a later clear
  /// of the same brush (or clear-all). Lossless once the queue fully
  /// drains; intermediate frames may differ (stale work is the point).
  /// Returns the number dropped. Caller holds t.mutex.
  std::size_t coalesceLocked(Tenant& t);
  /// The deadline budget for one apply/buildScene at `state` (unlimited
  /// when applyDeadlineUs is 0; divided by degradedDeadlineDiv when
  /// Degraded or worse).
  util::Deadline applyDeadline(Health state) const;
  /// Fires hooks_.onEvent for a refusal (event turned away with
  /// `status`), under the tenant's mutex for stream-order consistency.
  void notifyRefused(SessionId id, const ui::Event& event,
                     const Status& status);
  bool healthControlEnabled() const {
    return options_.shedP99Us != 0 || options_.shedQueueDepth != 0;
  }
  /// Severest state the current signals justify.
  Health targetHealth(std::uint64_t windowP99Us, std::size_t depth) const;
  /// Ticks the evaluation window (every apply attempt, applied or
  /// refused); on a window boundary re-evaluates health: escalate to the
  /// target immediately, recover one level per calm window.
  void noteWindowTick();
  /// Escalation-only fast path on queue growth (called from submit).
  void maybeEscalateOnDepth();
  /// healthMutex_ held. Stores the state, maintains the gauge and the
  /// transition counters.
  void setHealthLocked(Health next);

  std::shared_ptr<const SharedContext> context_;
  Options options_;
  const util::Clock* clock_;  ///< options_.clock or util::steadyClock()
  Hooks hooks_;
  mutable std::shared_mutex mapMutex_;  ///< guards tenants_ + nextId_
  std::unordered_map<SessionId, std::shared_ptr<Tenant>> tenants_;
  SessionId nextId_ = 1;
  std::atomic<bool> shutdown_{false};

  // --- health controller ---------------------------------------------------
  std::atomic<std::uint8_t> health_{0};
  std::atomic<std::size_t> queuedTotal_{0};
  std::atomic<std::uint64_t> windowTicks_{0};
  WindowHistogram windowHist_;
  /// Serializes health transitions (and windowHist_ drains). Leaf lock:
  /// taken with tenant mutexes held, never the other way around.
  std::mutex healthMutex_;
};

/// Printable name ("healthy" / "degraded" / "shedding").
const char* healthName(SessionService::Health h);

}  // namespace svq::core
