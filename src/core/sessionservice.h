// sessionservice.h — N concurrent explorers over one SharedContext.
//
// The multi-tenant layer of the ROADMAP north-star: one node owns one
// immutable SharedContext (dataset / shard store / SOM / shared render
// cache) and multiplexes up to maxSessions independent Sessions over it.
// Each tenant gets:
//
//   * admission control — admit() hands out a SessionId or a typed
//     refusal (core::Status kAtCapacity) a load balancer can act on;
//   * a bounded event queue — submit() enqueues without touching session
//     state (cheap, callable from an ingest thread); a full queue returns
//     kBackpressure, telling that tenant to slow down without penalizing
//     anyone else. drain() applies the backlog; apply() is the
//     synchronous submit-and-apply path interactive callers use;
//   * isolation — per-tenant state is copy-on-write Session state, and
//     every operation on a tenant runs under that tenant's own mutex.
//     Different tenants never contend except on the (read-mostly) session
//     map and the internally-synchronized shared render cache.
//
// Metrics (util/metrics, prefix "sessions."): active (gauge),
// admitted / admission_rejected / closed / events_applied /
// events_rejected / events_queued / backpressure (counters), and
// apply_latency_us (histogram -> p50/p99 in snapshots). Together with
// render.shared.* these are the per-node health numbers: sessions
// active, events/s, cache cross-hit-rate, apply latency tail.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "core/context.h"
#include "core/session.h"
#include "core/status.h"
#include "ui/events.h"

namespace svq::core {

/// Opaque tenant handle (dense, never reused within one service).
using SessionId = std::uint64_t;

/// Thread-safe multiplexer of Sessions over one SharedContext.
class SessionService {
 public:
  struct Options {
    /// Admission ceiling (SVQ_MAX_SESSIONS).
    std::size_t maxSessions = 256;
    /// Bound of each tenant's pending-event queue (SVQ_SESSION_QUEUE_DEPTH).
    std::size_t eventQueueDepth = 128;

    static Options fromEnv();
  };

  /// What admit() hands back: an id iff status.isOk().
  struct Admission {
    Status status;
    SessionId id = 0;
    explicit operator bool() const { return status.isOk(); }
  };

  /// Observation hooks for session record/replay (replay::Recorder).
  /// onEvent fires for every *accepted* event — from submit() at enqueue
  /// time and apply() at apply time, under the tenant's mutex, i.e. in
  /// the exact order events enter that tenant's stream. onAdmit/onClose
  /// fire after the tenant map changes. Install before traffic starts and
  /// leave in place until the flows being observed are quiesced; the
  /// empty default disables observation.
  struct Hooks {
    std::function<void(SessionId)> onAdmit;
    std::function<void(SessionId, const ui::Event&)> onEvent;
    std::function<void(SessionId)> onClose;
  };

  explicit SessionService(std::shared_ptr<const SharedContext> context);
  SessionService(std::shared_ptr<const SharedContext> context,
                 Options options);

  /// Installs (or, with a default-constructed Hooks, removes) the
  /// observation hooks. Not synchronized against in-flight operations —
  /// set while the service is quiet.
  void setHooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Creates a fresh tenant session (O(1): COW state over the shared
  /// context). kAtCapacity when maxSessions are live, kShutdown after
  /// shutdown().
  Admission admit();

  /// Ends a tenant; queued events are dropped. kUnknownSession if the id
  /// was never admitted or already closed.
  Status close(SessionId id);

  /// Enqueues an event for later drain(). kBackpressure (and the event is
  /// NOT queued) when the tenant's queue is at eventQueueDepth.
  Status submit(SessionId id, const ui::Event& event);

  /// Applies every queued event in submission order. kRejected when any
  /// event could not be applied (the rest still apply); `appliedOut`
  /// (optional) receives the number applied either way.
  Status drain(SessionId id, std::size_t* appliedOut = nullptr);

  /// Drains the backlog, then applies `event` synchronously — the
  /// interactive path. Latency lands in sessions.apply_latency_us.
  Status apply(SessionId id, const ui::Event& event);

  /// Builds the tenant's current scene into `out`.
  Status buildScene(SessionId id, render::SceneModel& out);

  /// Runs `fn(Session&)` under the tenant's lock — snapshots, custom
  /// reads, render loops owning their own pipeline.
  template <typename Fn>
  Status withSession(SessionId id, Fn&& fn) {
    if (shutdown_.load(std::memory_order_acquire)) return Status::shutdown();
    const std::shared_ptr<Tenant> t = tenant(id);
    if (!t) return Status::unknownSession(static_cast<std::int64_t>(id));
    std::lock_guard<std::mutex> lock(t->mutex);
    fn(t->session);
    return Status::ok(static_cast<std::int64_t>(id));
  }

  std::size_t activeSessions() const;
  /// Pending (queued, undrained) events of one tenant; 0 for unknown ids.
  std::size_t queuedEvents(SessionId id) const;
  const Options& options() const { return options_; }
  const SharedContext& context() const { return *context_; }

  /// Stops the service: closes every tenant; subsequent operations return
  /// kShutdown.
  void shutdown();

 private:
  struct Tenant {
    explicit Tenant(Session s) : session(std::move(s)) {}
    std::mutex mutex;  ///< guards session + queue
    Session session;
    std::deque<ui::Event> queue;
  };

  /// The tenant's record, or nullptr. Tenants are held by shared_ptr so a
  /// concurrent close() never pulls a locked tenant out from under an
  /// in-flight operation.
  std::shared_ptr<Tenant> tenant(SessionId id) const;
  /// Applies one event under t.mutex (held by caller); records metrics.
  bool applyOneLocked(Tenant& t, const ui::Event& event);

  std::shared_ptr<const SharedContext> context_;
  Options options_;
  Hooks hooks_;
  mutable std::shared_mutex mapMutex_;  ///< guards tenants_ + nextId_
  std::unordered_map<SessionId, std::shared_ptr<Tenant>> tenants_;
  SessionId nextId_ = 1;
  std::atomic<bool> shutdown_{false};
};

}  // namespace svq::core
