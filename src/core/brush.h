// brush.h — the coordinated paintbrush canvas.
//
// The user paints on the background of a *single* trajectory cell, but the
// paint lands in shared arena coordinates — that is the whole trick of
// Coordinated Brushing (§IV.C.2): one gesture defines a spatial region
// that every displayed trajectory is tested against simultaneously.
//
// Two representations:
//   * the stroke list — the editable gesture history (discs per brush);
//   * the BrushGrid — a rasterized arena-space mask (like the pixels the
//     real app painted), giving O(1) point lookups during query
//     evaluation. Later strokes overwrite earlier ones, like paint.
#pragma once

#include <cstdint>
#include <vector>

#include "traj/stats.h"
#include "util/geometry.h"

namespace svq::core {

/// No brush covers this point/cell.
inline constexpr std::int8_t kNoBrush = -1;

/// One painted dab.
struct BrushStroke {
  std::int8_t brushIndex = 0;
  Vec2 centerCm;
  float radiusCm = 5.0f;
};

/// Rasterized arena-space paint mask.
class BrushGrid {
 public:
  /// Grid covering [-radiusCm, +radiusCm]^2 at `resolution`^2 texels.
  BrushGrid(float arenaRadiusCm = 50.0f, int resolution = 256);

  float arenaRadiusCm() const { return arenaRadiusCm_; }
  int resolution() const { return resolution_; }

  void clearAll();
  void clearBrush(std::int8_t brushIndex);

  /// Paints one disc (later paint overwrites earlier).
  void paint(const BrushStroke& stroke);

  /// Brush index covering an arena point, or kNoBrush. Points outside the
  /// grid return kNoBrush.
  std::int8_t brushAt(Vec2 arenaCm) const;

  /// True iff any texel carries the given brush.
  bool hasPaint(std::int8_t brushIndex) const;

  /// Painted area (cm^2) of one brush.
  float paintedAreaCm2(std::int8_t brushIndex) const;

  /// Raw texel access for serialization / tests.
  const std::vector<std::int8_t>& texels() const { return texels_; }

 private:
  int toTexel(float cm) const;

  float arenaRadiusCm_;
  int resolution_;
  float texelSizeCm_;
  std::vector<std::int8_t> texels_;
};

/// Editable canvas = stroke history + rasterized grid, kept in sync.
class BrushCanvas {
 public:
  explicit BrushCanvas(float arenaRadiusCm = 50.0f, int resolution = 256)
      : grid_(arenaRadiusCm, resolution) {}

  const BrushGrid& grid() const { return grid_; }
  const std::vector<BrushStroke>& strokes() const { return strokes_; }

  void addStroke(const BrushStroke& stroke);
  /// Removes strokes of one brush (255/kNoBrush-style wildcard = all) and
  /// re-rasterizes the survivors.
  void clear(std::int8_t brushIndex = kNoBrush);

  bool empty() const { return strokes_.empty(); }

 private:
  void rebuild();

  BrushGrid grid_;
  std::vector<BrushStroke> strokes_;
};

// --- convenience region painters for scripted queries ---------------------

/// Paints the half of the arena on the given compass side (e.g. "west half"
/// for the Fig. 5 query). Implemented as rows of dabs.
void paintArenaHalf(BrushCanvas& canvas, std::int8_t brushIndex,
                    traj::ArenaSide side, float arenaRadiusCm,
                    float dabRadiusCm = 4.0f);

/// Paints a centred disc of `radiusCm` (the §V.B "centre search" query).
void paintArenaCenter(BrushCanvas& canvas, std::int8_t brushIndex,
                      float radiusCm, float dabRadiusCm = 4.0f);

}  // namespace svq::core
