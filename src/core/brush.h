// brush.h — the coordinated paintbrush canvas.
//
// The user paints on the background of a *single* trajectory cell, but the
// paint lands in shared arena coordinates — that is the whole trick of
// Coordinated Brushing (§IV.C.2): one gesture defines a spatial region
// that every displayed trajectory is tested against simultaneously.
//
// Two representations:
//   * the stroke list — the editable gesture history (discs per brush);
//   * the BrushGrid — a rasterized arena-space mask (like the pixels the
//     real app painted), giving O(1) point lookups during query
//     evaluation. Later strokes overwrite earlier ones, like paint.
//
// Every mutation reports the arena-space rect it touched. The incremental
// query engine (core/queryengine) feeds those dirty rects into its
// invalidation pass so a localized dab re-classifies only trajectories
// that visit the edited region.
#pragma once

#include <cstdint>
#include <vector>

#include "traj/stats.h"
#include "util/geometry.h"

namespace svq::core {

/// No brush covers this point/cell. Also the *only* wildcard accepted by
/// BrushCanvas::clear ("clear everything").
inline constexpr std::int8_t kNoBrush = -1;

/// One painted dab.
struct BrushStroke {
  std::int8_t brushIndex = 0;
  Vec2 centerCm;
  float radiusCm = 5.0f;
};

/// Kernel-facing POD view of a BrushGrid: everything the point-in-brush
/// SIMD kernels (core/querykernel.h) need to classify arena points, with
/// no indirection through the owning grid. Valid as long as the grid is
/// alive and unmodified.
struct BrushGridView {
  const std::int8_t* texels = nullptr;
  int resolution = 0;
  float arenaRadiusCm = 0.0f;
  float texelSizeCm = 0.0f;
};

/// Rasterized arena-space paint mask.
class BrushGrid {
 public:
  /// Grid covering [-radiusCm, +radiusCm]^2 at `resolution`^2 texels.
  BrushGrid(float arenaRadiusCm = 50.0f, int resolution = 256);

  float arenaRadiusCm() const { return arenaRadiusCm_; }
  int resolution() const { return resolution_; }

  /// Arena-space extent of the whole grid.
  AABB2 bounds() const {
    return AABB2::of({-arenaRadiusCm_, -arenaRadiusCm_},
                     {arenaRadiusCm_, arenaRadiusCm_});
  }

  /// Clears every texel. Returns the dirty rect: the whole grid if any
  /// paint was removed, an invalid AABB if the grid was already clean.
  AABB2 clearAll();

  /// Clears one brush's texels. Returns the tight arena-space rect of the
  /// removed texels (invalid AABB if the brush had no paint).
  AABB2 clearBrush(std::int8_t brushIndex);

  /// Paints one disc (later paint overwrites earlier). Returns the
  /// arena-space rect of the touched texels, clipped to the grid (invalid
  /// AABB when the stroke lands entirely outside).
  AABB2 paint(const BrushStroke& stroke);

  /// Brush index covering an arena point, or kNoBrush. Points outside the
  /// grid return kNoBrush.
  std::int8_t brushAt(Vec2 arenaCm) const;

  /// True iff any texel carries the given brush.
  bool hasPaint(std::int8_t brushIndex) const;

  /// Painted area (cm^2) of one brush.
  float paintedAreaCm2(std::int8_t brushIndex) const;

  /// Raw texel access for serialization / tests.
  const std::vector<std::int8_t>& texels() const { return texels_; }

  /// Kernel-facing view (see BrushGridView).
  BrushGridView view() const {
    return {texels_.data(), resolution_, arenaRadiusCm_, texelSizeCm_};
  }

 private:
  int toTexel(float cm) const;
  /// Arena-cm rect covering texels [tx0, tx1] x [ty0, ty1].
  AABB2 texelRect(int tx0, int ty0, int tx1, int ty1) const;

  float arenaRadiusCm_;
  int resolution_;
  float texelSizeCm_;
  std::vector<std::int8_t> texels_;
};

/// Editable canvas = stroke history + rasterized grid, kept in sync.
class BrushCanvas {
 public:
  explicit BrushCanvas(float arenaRadiusCm = 50.0f, int resolution = 256)
      : grid_(arenaRadiusCm, resolution) {}

  const BrushGrid& grid() const { return grid_; }
  const std::vector<BrushStroke>& strokes() const { return strokes_; }

  /// Adds one stroke and rasterizes it. Returns the arena-space dirty rect
  /// (invalid AABB when the stroke lands entirely outside the grid).
  AABB2 addStroke(const BrushStroke& stroke);

  /// Removes strokes and re-rasterizes the survivors.
  ///
  /// Wildcard contract: kNoBrush (and only kNoBrush) means "all brushes".
  /// Any other negative index is out of range — no stroke can carry it —
  /// and the call is an explicit no-op. A valid index with no strokes is
  /// likewise a no-op. Returns the arena-space dirty rect covering every
  /// removed stroke (invalid AABB for a no-op).
  AABB2 clear(std::int8_t brushIndex = kNoBrush);

  bool empty() const { return strokes_.empty(); }

  /// Explicit deep copy: the clone owns fresh texel and stroke buffers
  /// sharing no storage with this canvas. This is the detach path of
  /// copy-on-write sessions (core/session.h) — spelled out as a named
  /// operation so call sites state the (O(resolution^2)) cost.
  BrushCanvas clone() const;

 private:
  void rebuild();

  BrushGrid grid_;
  std::vector<BrushStroke> strokes_;
};

// --- convenience region painters for scripted queries ---------------------

/// Paints the half of the arena on the given compass side (e.g. "west half"
/// for the Fig. 5 query). Implemented as rows of dabs.
void paintArenaHalf(BrushCanvas& canvas, std::int8_t brushIndex,
                    traj::ArenaSide side, float arenaRadiusCm,
                    float dabRadiusCm = 4.0f);

/// Paints a centred disc of `radiusCm` (the §V.B "centre search" query).
void paintArenaCenter(BrushCanvas& canvas, std::int8_t brushIndex,
                      float radiusCm, float dabRadiusCm = 4.0f);

}  // namespace svq::core
