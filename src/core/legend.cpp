#include "core/legend.h"

#include <algorithm>

namespace svq::core {

RectI drawWallLegend(render::Canvas canvas, const GroupManager& groups,
                     const BrushCanvas* brush, const LegendStyle& style) {
  int y = style.y;
  int maxWidth = 0;
  const int rowH =
      std::max(style.swatchPx, render::textTinyHeight(style.textScale));

  auto drawEntry = [&](render::Color swatch, const std::string& name) {
    fillRect(canvas, {style.x, y, style.swatchPx, style.swatchPx}, swatch);
    strokeRect(canvas, {style.x, y, style.swatchPx, style.swatchPx},
               swatch.scaled(2.0f));
    const int textX = style.x + style.swatchPx + 4;
    drawTextTiny(canvas, textX, y, name, style.textColor, style.textScale);
    maxWidth = std::max(
        maxWidth, style.swatchPx + 4 +
                      render::textTinyWidth(name, style.textScale));
    y += rowH + style.rowGapPx;
  };

  for (const TrajectoryGroup& g : groups.groups()) {
    drawEntry(render::groupBackground(g.colorIndex),
              g.name.empty() ? "GROUP " + std::to_string(g.id) : g.name);
  }

  if (brush != nullptr) {
    for (std::size_t b = 0; b < 6; ++b) {
      if (brush->grid().hasPaint(static_cast<std::int8_t>(b))) {
        drawEntry(render::brushColor(b), "BRUSH " + std::to_string(b));
      }
    }
  }

  return {style.x, style.y, maxWidth, y - style.y};
}

}  // namespace svq::core
