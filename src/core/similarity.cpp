#include "core/similarity.h"

#include <algorithm>
#include <cmath>

#include "traj/resample.h"
#include "util/threadpool.h"

namespace svq::core {

namespace {

/// Resamples an arbitrary sample run [begin, end) of a trajectory to
/// `count` positions uniformly in time.
std::vector<Vec2> resampleRun(const traj::Trajectory& t, std::size_t begin,
                              std::size_t end, std::size_t count) {
  std::vector<Vec2> out;
  if (end <= begin + 1 || count < 2) return out;
  const traj::PointsView pts = t.view();
  const float t0 = pts[begin].t;
  const float t1 = pts[end - 1].t;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const float u = static_cast<float>(i) / static_cast<float>(count - 1);
    out.push_back(t.positionAt(t0 + u * (t1 - t0)));
  }
  return out;
}

}  // namespace

SimilarityQuery extractBrushedQuery(const traj::Trajectory& source,
                                    std::uint32_t sourceIndex,
                                    const BrushGrid& brush,
                                    std::int8_t brushIndex,
                                    const SimilarityParams& params) {
  SimilarityQuery query;
  query.sourceIndex = sourceIndex;
  const traj::PointsView pts = source.view();

  // Longest contiguous covered run.
  std::size_t bestBegin = 0, bestEnd = 0;
  std::size_t runBegin = 0;
  bool inRun = false;
  for (std::size_t i = 0; i <= pts.size(); ++i) {
    const bool covered =
        i < pts.size() && brush.brushAt(pts[i].pos) == brushIndex;
    if (covered && !inRun) {
      runBegin = i;
      inRun = true;
    } else if (!covered && inRun) {
      if (i - runBegin > bestEnd - bestBegin) {
        bestBegin = runBegin;
        bestEnd = i;
      }
      inRun = false;
    }
  }
  if (bestEnd <= bestBegin + 1) return query;  // invalid

  query.durationS = pts[bestEnd - 1].t - pts[bestBegin].t;
  query.shape = resampleRun(source, bestBegin, bestEnd,
                            params.resampleCount);
  if (params.translationInvariant) {
    query.shape = traj::translateToOrigin(query.shape);
  }
  return query;
}

SimilarityResult findSimilar(const traj::TrajectoryDataset& dataset,
                             std::span<const std::uint32_t> indices,
                             const SimilarityQuery& query,
                             const SimilarityParams& params,
                             std::int8_t highlightBrush) {
  SimilarityResult result;
  result.query = query;
  result.segmentHighlights.resize(indices.size());
  if (!query.valid()) return result;

  const int band =
      params.bandFraction >= 0.0f
          ? std::max(1, static_cast<int>(std::ceil(
                            params.bandFraction *
                            static_cast<float>(params.resampleCount))))
          : -1;

  std::vector<std::vector<SimilarityMatch>> perTarget(indices.size());

  auto scanTarget = [&](std::size_t ti) {
    const traj::Trajectory& t = dataset[indices[ti]];
    const traj::PointsView pts = t.view();
    result.segmentHighlights[ti].assign(
        pts.size() >= 2 ? pts.size() - 1 : 0, kNoBrush);
    if (pts.size() < 2) return;

    const float windowDur = query.durationS;
    const float stride =
        std::max(0.05f * windowDur, params.strideFraction * windowDur);
    for (float start = pts.front().t;
         start + windowDur <= pts.back().t + 1e-4f; start += stride) {
      const std::size_t begin = t.lowerBoundIndex(start);
      const std::size_t end =
          std::min(pts.size(), t.lowerBoundIndex(start + windowDur) + 1);
      auto window = resampleRun(t, begin, end, params.resampleCount);
      if (window.size() < 2) continue;
      if (params.translationInvariant) {
        window = traj::translateToOrigin(window);
      }
      const float d =
          traj::dtwDistanceNormalized(query.shape, window, band);
      if (d <= params.matchThresholdCm) {
        SimilarityMatch match;
        match.trajectoryIndex = indices[ti];
        match.beginSample = begin;
        match.endSample = end;
        match.distance = d;
        perTarget[ti].push_back(match);
        for (std::size_t s = begin; s + 1 < end; ++s) {
          result.segmentHighlights[ti][s] = highlightBrush;
        }
      }
    }
  };

  if (params.parallel) {
    parallelFor(0, indices.size(), scanTarget, 1);
  } else {
    for (std::size_t i = 0; i < indices.size(); ++i) scanTarget(i);
  }

  for (std::size_t ti = 0; ti < indices.size(); ++ti) {
    if (!perTarget[ti].empty()) ++result.trajectoriesMatched;
    for (const auto& m : perTarget[ti]) result.matches.push_back(m);
  }
  return result;
}

}  // namespace svq::core
