// queryengine.h — stateful, incremental visual-query evaluation.
//
// The stateless core/query.h surface recomputes every trajectory's full
// segment classification on every call. That is fine for batch analysis,
// but the interactive loop of the paper (§IV.C.2, §VI.C) hammers the same
// trajectory set with a stream of *small deltas*: one more brush dab, one
// notch of the temporal range slider. QueryEngine keeps the query state
// per trajectory and re-evaluates only what a delta actually touched:
//
//   * dirty-region invalidation — brush edits report the arena-space rect
//     they touched (BrushGrid/BrushCanvas return it); the engine
//     re-classifies only trajectories whose precomputed spatial footprint
//     (AABB + coarse occupancy bitmask, traj/spatialindex.h) intersects
//     that rect;
//   * spatial/temporal factoring — per-segment brush hits are cached
//     separately from the temporal mask, so a time-window change (the
//     most frequent interaction) is a cheap re-mask pass with ZERO calls
//     into the brush grid;
//   * parallel incremental passes — the dirty subset is re-classified via
//     the shared ThreadPool;
//   * double-buffered result generations — evaluate() publishes a new
//     immutable QueryResult behind a shared_ptr; render/wall consumers
//     holding the previous generation never observe a half-updated one.
//
// Built-in metrics expose exactly what the invalidation machinery did
// (trajectories invalidated vs. reused, cache hit rate, per-pass latency)
// so benches and tests can verify the incremental contract.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/brush.h"
#include "core/query.h"
#include "traj/spatialindex.h"
#include "util/geometry.h"

namespace svq::core {

/// Counters describing the engine's incremental behaviour. Cumulative
/// counters run since construction / resetMetrics(); lastPass* describe
/// the most recent evaluate() that produced a new generation.
struct QueryEngineMetrics {
  /// evaluate() calls that produced a new result generation.
  std::uint64_t passes = 0;
  /// evaluate() calls answered entirely from cache (no new generation).
  std::uint64_t cachedPasses = 0;
  /// Trajectories whose spatial classification was recomputed.
  std::uint64_t trajectoriesInvalidated = 0;
  /// Trajectories whose cached spatial classification was reused.
  std::uint64_t trajectoriesReused = 0;
  /// Passes that touched the brush grid at all.
  std::uint64_t spatialPasses = 0;
  /// Passes that only re-masked the temporal window.
  std::uint64_t temporalOnlyPasses = 0;
  /// evaluate() calls abandoned by cancellation/deadline before they
  /// published: no generation was produced, dirty state was preserved.
  std::uint64_t abandonedPasses = 0;

  std::uint64_t lastPassInvalidated = 0;
  std::uint64_t lastPassReused = 0;
  /// Spatial re-classifications in the last pass; 0 proves a
  /// temporal-window-only change did no spatial work.
  std::uint64_t lastPassSpatialClassifications = 0;
  double lastPassMillis = 0.0;

  /// Fraction of per-trajectory evaluations served from the spatial cache.
  double cacheHitRate() const {
    const std::uint64_t total = trajectoriesInvalidated + trajectoriesReused;
    return total == 0 ? 0.0
                      : static_cast<double>(trajectoriesReused) /
                            static_cast<double>(total);
  }
};

/// Incremental evaluator for one trajectory set x one brush grid.
///
/// Ownership: trajectories and the brush grid are borrowed and must
/// outlive the engine (or be re-bound before the next evaluate()).
/// Thread-safety: mutation (set*/invalidate*/evaluate) is single-threaded;
/// current()/generation() may be called concurrently from consumers.
class QueryEngine {
 public:
  explicit QueryEngine(QueryParams params = {});

  // --- binding ------------------------------------------------------------
  /// Binds the trajectory set; `frame` is the arena-space reference frame
  /// for the spatial footprints (normally the brush grid's bounds).
  /// Drops all cached state.
  void setTrajectories(std::vector<TrajectoryRef> refs, const AABB2& frame);
  /// Convenience: dataset subset, framed by the dataset's arena bounds.
  void setTrajectories(const traj::TrajectoryDataset& dataset,
                       std::span<const std::uint32_t> indices);
  /// Convenience: plain trajectory array (cluster averages, tests).
  void setTrajectories(std::span<const traj::Trajectory> trajectories,
                       const AABB2& frame);

  /// Binds the brush grid (borrowed; nullptr = query nothing). Marks every
  /// trajectory spatially dirty — use invalidateRegion() for edits to an
  /// already-bound grid.
  void setBrush(const BrushGrid* brush);
  const BrushGrid* brush() const { return brush_; }

  // --- delta notifications ------------------------------------------------
  /// Reports an arena-space region whose paint changed (the rect returned
  /// by BrushGrid::paint / BrushCanvas::addStroke / BrushCanvas::clear).
  /// Invalid rects are ignored (a no-op edit dirties nothing).
  void invalidateRegion(const AABB2& arenaRect);

  /// Updates the query parameters. A change that only moves the temporal
  /// window (absolute or relative) triggers a pure re-mask pass; spatial
  /// caches stay valid. Never causes spatial work.
  void setParams(const QueryParams& params);
  const QueryParams& params() const { return params_; }

  // --- evaluation -----------------------------------------------------------
  /// Re-evaluates incrementally and publishes a new immutable generation
  /// (or returns the current one unchanged when nothing is dirty). The
  /// returned result is never mutated afterwards.
  std::shared_ptr<const QueryResult> evaluate();

  /// Cancellable variant, polled at chunk granularity (per dirty
  /// trajectory in the spatial pass, per row in the rebuild pass, per
  /// segment chunk inside classifySpatial). Returns nullptr when the
  /// pass was abandoned — and then guarantees the engine is never torn:
  ///
  ///   * the partially built result is discarded, current()/generation()
  ///     are exactly what they were before the call;
  ///   * every trajectory whose re-classification did not complete stays
  ///     marked dirty (spatialValid=false / rowDirty=true), so the next
  ///     evaluate() resumes the same work;
  ///   * trajectories that did complete keep their fresh spatial cache —
  ///     abandoned work is discarded, finished work is not wasted.
  std::shared_ptr<const QueryResult> evaluate(
      const util::Cancellation& cancel);

  /// Latest published generation; an empty result before the first pass.
  std::shared_ptr<const QueryResult> current() const;

  /// Monotonic generation counter (0 before the first pass).
  std::uint64_t generation() const { return generation_; }

  /// Positions (into the bound trajectory list) whose spatial
  /// classification was recomputed by the last evaluate(). Empty after a
  /// fully cached pass. A temporal-window pass rebuilds every row without
  /// spatial work — it reports an empty set here and shows up in
  /// metrics().temporalOnlyPasses; renderers use scene content hashes
  /// (render::sceneCellHashes) as the per-cell damage ground truth.
  const std::vector<std::size_t>& lastInvalidated() const {
    return lastInvalidated_;
  }

  std::size_t trajectoryCount() const { return refs_.size(); }

  const QueryEngineMetrics& metrics() const { return metrics_; }
  void resetMetrics() { metrics_ = QueryEngineMetrics{}; }

 private:
  struct CacheEntry {
    std::vector<std::int8_t> spatialHits;  ///< per-segment brush, no window
    traj::SpatialFootprint footprint;
    std::int8_t lastSegmentBrush = kNoBrush;
    bool spatialValid = false;  ///< spatialHits matches the bound brush
    bool rowDirty = true;       ///< published row needs rebuilding
  };

  void publish(std::shared_ptr<const QueryResult> next);
  void markAllSpatialDirty();

  QueryParams params_;
  const BrushGrid* brush_ = nullptr;
  std::vector<TrajectoryRef> refs_;
  AABB2 frame_;
  std::vector<CacheEntry> cache_;
  std::vector<AABB2> pendingDirtyRects_;
  std::vector<std::size_t> lastInvalidated_;
  bool temporalDirty_ = true;

  mutable std::mutex currentMutex_;
  std::shared_ptr<const QueryResult> current_;
  std::uint64_t generation_ = 0;
  QueryEngineMetrics metrics_;
};

}  // namespace svq::core
