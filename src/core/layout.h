// layout.h — bezel-aware small-multiple layout.
//
// Distributes a grid of trajectory cells over the wall so that *no cell
// straddles a tile bezel* — the §IV.C.2 constraint: stereoscopic content
// crossing a bezel causes discomfort, and bezels double as natural group
// dividers. The algorithm assigns whole cells to tiles: the requested
// global column count is apportioned across tile columns (largest-
// remainder), likewise for rows, and each tile lays out its share as a
// uniform local grid inside its own active area. Bezel avoidance holds by
// construction for any requested grid, not just the presets.
//
// Presets mirror the paper's keypad configurations ('1', '2', '3'):
// 15x4, 24x6 and 36x12 — the last giving the 432 simultaneously visible
// trajectories reported in §VI.B.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/geometry.h"
#include "wall/wall.h"

namespace svq::core {

/// A requested small-multiple grid.
struct LayoutConfig {
  int cellsX = 24;
  int cellsY = 6;
  /// Pixel gap between adjacent cells within a tile.
  int cellGapPx = 4;
  /// Pixel margin between cells and the tile edge.
  int tileMarginPx = 6;

  constexpr bool operator==(const LayoutConfig&) const = default;
  int cellCount() const { return cellsX * cellsY; }
};

/// The paper's keypad presets, in keypad order.
std::vector<LayoutConfig> paperLayoutPresets();

/// A computed layout: one rect per cell, row-major in (cellY, cellX).
class SmallMultipleLayout {
 public:
  SmallMultipleLayout() = default;

  /// Computes the layout for a wall. Requested cell counts are honoured
  /// exactly; cells in tiles holding more of them are proportionally
  /// smaller.
  static SmallMultipleLayout compute(const wall::WallSpec& wallSpec,
                                     const LayoutConfig& config);

  const LayoutConfig& config() const { return config_; }
  std::size_t cellCount() const { return rects_.size(); }

  /// Global-pixel rect of grid cell (cx, cy).
  const RectI& cellRect(int cx, int cy) const {
    return rects_[static_cast<std::size_t>(cy) *
                      static_cast<std::size_t>(config_.cellsX) +
                  static_cast<std::size_t>(cx)];
  }
  const std::vector<RectI>& rects() const { return rects_; }

  /// Grid cell containing a global pixel, if any.
  std::optional<Vec2> cellOfPixel(int px, int py) const;

  /// Verification helper: true iff every cell avoids bezels on the wall.
  bool allCellsAvoidBezels(const wall::WallSpec& wallSpec) const;

  /// Verification helper: true iff no two cells overlap.
  bool noOverlaps() const;

  /// Smallest cell dimension (px) — readability floor for the encoding.
  int minCellSize() const;

 private:
  LayoutConfig config_;
  std::vector<RectI> rects_;
};

/// Largest-remainder apportionment of `total` items over `bins` bins
/// (exposed for tests; every bin gets total/bins or that +/- 1 ... exact:
/// floor or ceil of the proportional share, sums to total).
std::vector<int> apportion(int total, int bins);

}  // namespace svq::core
