#include "core/snapshot.h"

#include <fstream>
#include <sstream>

#include "ui/events.h"
#include "util/io.h"
#include "util/logging.h"

namespace svq::core {

namespace {
constexpr std::uint32_t kSnapshotMagic = 0x53565150u;  // "SVQP"
constexpr std::uint32_t kVersion = 1;
// Payload-bounded count checks: a corrupt count field must be rejected
// from the bytes actually present, not discovered via per-record throws
// after O(count) side effects. Minimum encoded sizes per record:
// group = id u8 + name length u32 + rect 4*f32 + MetaFilter (5 optional
// flag bytes) + colorIndex u8 + pageOffset u32; stroke = brushIndex u8 +
// centerCm 2*f32 + radiusCm f32.
constexpr std::size_t kGroupRecordMinBytes = 1 + 4 + 16 + 5 + 1 + 4;
constexpr std::size_t kStrokeRecordBytes = 1 + 8 + 4;
}  // namespace

net::MessageBuffer saveSnapshot(const Session& app) {
  net::MessageBuffer buf;
  buf.putU32(kSnapshotMagic);
  buf.putU32(kVersion);
  buf.putU8(static_cast<std::uint8_t>(app.activePreset()));

  const auto& groups = app.groups().groups();
  buf.putU32(static_cast<std::uint32_t>(groups.size()));
  for (const TrajectoryGroup& g : groups) {
    buf.putU8(g.id);
    buf.putString(g.name);
    buf.putRect(g.cellRect);
    ui::serializeMetaFilter(buf, g.filter);
    buf.putU8(g.colorIndex);
    buf.putU32(g.pageOffset);
  }

  const auto& strokes = app.brush().strokes();
  buf.putU32(static_cast<std::uint32_t>(strokes.size()));
  for (const BrushStroke& s : strokes) {
    buf.putU8(static_cast<std::uint8_t>(s.brushIndex));
    buf.putVec2(s.centerCm);
    buf.putF32(s.radiusCm);
  }

  buf.putF32(app.timeWindow().lo());
  buf.putF32(app.timeWindow().hi());
  buf.putF32(app.stereoControls().depthOffsetCm().value());
  buf.putF32(app.stereoControls().timeScaleCmPerS().value());
  return buf;
}

bool restoreSnapshot(Session& app, net::MessageBuffer snapshot) {
  try {
    snapshot.rewind();
    if (snapshot.getU32() != kSnapshotMagic) return false;
    if (snapshot.getU32() != kVersion) return false;

    const std::uint8_t preset = snapshot.getU8();
    if (preset >= app.layoutPresets().size()) return false;
    if (!app.apply(ui::LayoutSwitchEvent{preset})) return false;

    app.groups().clear();
    const std::uint32_t groupCount = snapshot.getU32();
    if (groupCount > snapshot.remaining() / kGroupRecordMinBytes) return false;
    const LayoutConfig& cfg = app.layoutPresets()[preset];
    for (std::uint32_t i = 0; i < groupCount; ++i) {
      TrajectoryGroup g;
      g.id = snapshot.getU8();
      g.name = snapshot.getString();
      g.cellRect = snapshot.getRect();
      g.filter = ui::deserializeMetaFilter(snapshot);
      g.colorIndex = snapshot.getU8();
      g.pageOffset = snapshot.getU32();
      if (!app.groups().define(g, cfg.cellsX, cfg.cellsY)) return false;
      // define() copies; restore the page offset on the stored group.
      app.groups().find(g.id)->pageOffset = g.pageOffset;
    }

    app.apply(ui::BrushClearEvent{255});
    const std::uint32_t strokeCount = snapshot.getU32();
    if (strokeCount > snapshot.remaining() / kStrokeRecordBytes) return false;
    for (std::uint32_t i = 0; i < strokeCount; ++i) {
      ui::BrushStrokeEvent e;
      e.brushIndex = snapshot.getU8();
      e.centerCm = snapshot.getVec2();
      e.radiusCm = snapshot.getF32();
      if (!app.apply(e)) return false;
    }

    ui::TimeWindowEvent window;
    window.t0 = snapshot.getF32();
    window.t1 = snapshot.getF32();
    app.apply(window);
    app.apply(ui::DepthOffsetEvent{snapshot.getF32()});
    app.apply(ui::TimeScaleEvent{snapshot.getF32()});
    app.refreshAssignment();
    return true;
  } catch (const net::MessageError&) {
    return false;
  }
}

bool saveSnapshotFile(const Session& app, const std::string& path) {
  const auto buf = saveSnapshot(app);
  // Write-temp + fsync + atomic-rename: a crash mid-save must never leave
  // a truncated snapshot at `path` (snapshots are how whole wall sessions
  // are restored — same commit protocol as the shard store).
  const io::Status status = io::atomicWriteFile(
      path, std::string_view(reinterpret_cast<const char*>(buf.bytes().data()),
                             buf.size()));
  if (!status.isOk()) {
    SVQ_ERROR << "snapshot save to " << path << " failed: " << status.message();
    return false;
  }
  return true;
}

bool restoreSnapshotFile(Session& app, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string data = ss.str();
  std::vector<std::uint8_t> bytes(data.begin(), data.end());
  return restoreSnapshot(app, net::MessageBuffer(std::move(bytes)));
}

}  // namespace svq::core
