// compare.h — group comparison reports (§VI.A).
//
// "A significant portion of the analysis workflow comprised comparisons
// in which groups of trajectories were visually compared and
// contrasted." This module computes the quantitative table behind those
// visual comparisons: per-group descriptive statistics (windiness,
// speed, duration, exit directionality, centre dwell) with a formatted
// report, so every low-level inference the analyst voices has a number.
#pragma once

#include <string>
#include <vector>

#include "traj/circular.h"
#include "traj/dataset.h"
#include "traj/filter.h"
#include "traj/stats.h"

namespace svq::core {

/// Statistics of one trajectory group.
struct GroupProfile {
  std::string name;
  std::size_t count = 0;
  traj::Summary sinuosity;           ///< path/net displacement ratio
  traj::Summary meanSpeedCmS;
  traj::Summary durationS;
  traj::Summary centerDwellS;        ///< time within 0.2R of the centre
  /// Exit-heading concentration: resultant length (0 uniform, 1 focused)
  /// and Rayleigh p-value.
  float exitResultantLength = 0.0f;
  double exitRayleighP = 1.0;
  /// Mean exit direction (radians), meaningful when concentrated.
  float exitMeanDirection = 0.0f;
};

/// Profiles one filtered subset of the dataset.
GroupProfile profileGroup(const traj::TrajectoryDataset& dataset,
                          const traj::MetaFilter& filter,
                          const std::string& name);

/// Profiles each capture-side bin (the Fig. 3 comparison set).
std::vector<GroupProfile> profileCaptureSides(
    const traj::TrajectoryDataset& dataset);

/// Formats profiles as an aligned text table.
std::string comparisonTable(const std::vector<GroupProfile>& profiles);

}  // namespace svq::core
