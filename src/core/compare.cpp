#include "core/compare.h"

#include <cstdio>
#include <sstream>

namespace svq::core {

GroupProfile profileGroup(const traj::TrajectoryDataset& dataset,
                          const traj::MetaFilter& filter,
                          const std::string& name) {
  GroupProfile profile;
  profile.name = name;

  std::vector<double> sinuosities, speeds, durations, dwells;
  std::vector<traj::Trajectory> members;
  const float centerR = dataset.arena().radiusCm * 0.2f;
  for (const traj::Trajectory& t : dataset.all()) {
    if (!filter.matches(t)) continue;
    members.push_back(t);
    sinuosities.push_back(traj::sinuosity(t));
    speeds.push_back(traj::meanSpeed(t));
    durations.push_back(t.duration());
    dwells.push_back(
        traj::dwellTimeInCenter(t, centerR, 0.0f, t.duration()));
  }
  profile.count = members.size();
  profile.sinuosity = traj::summarize(std::move(sinuosities));
  profile.meanSpeedCmS = traj::summarize(std::move(speeds));
  profile.durationS = traj::summarize(std::move(durations));
  profile.centerDwellS = traj::summarize(std::move(dwells));

  const auto headings = traj::exitHeadings(members);
  const auto circular = traj::circularSummary(headings);
  profile.exitResultantLength = circular.resultantLength;
  profile.exitMeanDirection = circular.meanDirection;
  profile.exitRayleighP = traj::rayleighTest(headings).pValue;
  return profile;
}

std::vector<GroupProfile> profileCaptureSides(
    const traj::TrajectoryDataset& dataset) {
  std::vector<GroupProfile> profiles;
  for (traj::CaptureSide side :
       {traj::CaptureSide::kOnTrail, traj::CaptureSide::kWest,
        traj::CaptureSide::kEast, traj::CaptureSide::kNorth,
        traj::CaptureSide::kSouth}) {
    profiles.push_back(profileGroup(
        dataset, traj::MetaFilter::bySide(side), traj::toString(side)));
  }
  return profiles;
}

std::string comparisonTable(const std::vector<GroupProfile>& profiles) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof line, "%-10s %5s %10s %10s %9s %9s %8s %10s\n",
                "group", "n", "sinuosity", "speed", "dur(s)", "dwell(s)",
                "exit r", "Rayleigh p");
  out << line;
  for (const GroupProfile& p : profiles) {
    std::snprintf(line, sizeof line,
                  "%-10s %5zu %10.2f %10.2f %9.1f %9.1f %8.2f %10.2g\n",
                  p.name.c_str(), p.count, p.sinuosity.mean,
                  p.meanSpeedCmS.mean, p.durationS.mean, p.centerDwellS.mean,
                  static_cast<double>(p.exitResultantLength),
                  p.exitRayleighP);
    out << line;
  }
  return out.str();
}

}  // namespace svq::core
