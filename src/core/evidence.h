// evidence.h — annotations, the evidence file, and insight provenance.
//
// Two explicitly future-work items from the paper, implemented:
//
//  * §VI.A: "there was no explicit way of recording or tagging those
//    inferences. A future iteration of the design could add this
//    feature." — Annotation + EvidenceFile let the analyst pin low-level
//    inferences to trajectories, groups or arena regions and tag them,
//    turning the implicit on-screen evidence file into an artifact.
//
//  * §VII: "look at ways of integrating our application into larger
//    scientific workflows to support evidence and insight provenance."
//    — ProvenanceLog records the derivation chain (dataset -> query ->
//    hypothesis -> verdict -> annotation) as typed, linkable entries and
//    exports a human-readable report.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/hypothesis.h"
#include "core/query.h"
#include "util/geometry.h"

namespace svq::core {

// --- annotation targets ----------------------------------------------------

/// The annotation points at one trajectory (dataset index). Distinct from
/// core::TrajectoryRef (query.h), which is a non-owning evaluation view.
struct TrajectoryTarget {
  std::uint32_t index = 0;
  bool operator==(const TrajectoryTarget&) const = default;
};

/// ... at a whole trajectory group.
struct GroupRef {
  std::uint8_t groupId = 0;
  bool operator==(const GroupRef&) const = default;
};

/// ... at an arena region (e.g. "the centre", "the west exit zone").
struct RegionRef {
  Vec2 centerCm;
  float radiusCm = 5.0f;
  bool operator==(const RegionRef&) const = default;
};

/// ... at the session as a whole.
struct SessionRef {
  bool operator==(const SessionRef&) const = default;
};

using AnnotationTarget =
    std::variant<TrajectoryTarget, GroupRef, RegionRef, SessionRef>;

std::string describeTarget(const AnnotationTarget& target);

/// One recorded inference.
struct Annotation {
  std::uint32_t id = 0;
  double sessionTimeS = 0.0;
  AnnotationTarget target;
  std::string text;
  std::vector<std::string> tags;

  bool hasTag(const std::string& tag) const;
};

/// The explicit evidence file: an editable, queryable annotation store.
class EvidenceFile {
 public:
  /// Adds an annotation; returns its assigned id.
  std::uint32_t add(double sessionTimeS, AnnotationTarget target,
                    std::string text, std::vector<std::string> tags = {});

  bool remove(std::uint32_t id);
  const Annotation* find(std::uint32_t id) const;

  const std::vector<Annotation>& all() const { return annotations_; }
  std::size_t size() const { return annotations_.size(); }

  /// Annotations carrying a tag, in insertion order.
  std::vector<const Annotation*> withTag(const std::string& tag) const;

  /// Annotations attached to a given trajectory.
  std::vector<const Annotation*> onTrajectory(std::uint32_t index) const;

  /// Markdown-ish export of the whole file.
  std::string exportReport() const;

 private:
  std::vector<Annotation> annotations_;
  std::uint32_t nextId_ = 1;
};

// --- insight provenance ------------------------------------------------------

/// Entry kinds in the provenance chain.
enum class ProvenanceKind : std::uint8_t {
  kDatasetLoaded = 0,
  kQueryRun,
  kHypothesisEvaluated,
  kAnnotationAdded,
  kConclusion,
};

const char* toString(ProvenanceKind kind);

/// One provenance record; `parents` are ids of entries this one derives
/// from (a conclusion derives from hypothesis evaluations, which derive
/// from queries, which derive from the dataset).
struct ProvenanceEntry {
  std::uint32_t id = 0;
  ProvenanceKind kind = ProvenanceKind::kQueryRun;
  double sessionTimeS = 0.0;
  std::string summary;
  std::vector<std::uint32_t> parents;
};

/// Append-only derivation log with typed recording helpers.
class ProvenanceLog {
 public:
  std::uint32_t recordDataset(double timeS, std::size_t trajectoryCount,
                              const std::string& source);
  std::uint32_t recordQuery(double timeS, const std::string& description,
                            const QueryResult& result,
                            std::optional<std::uint32_t> datasetId);
  std::uint32_t recordHypothesis(double timeS, const HypothesisResult& result,
                                 std::vector<std::uint32_t> queryIds);
  std::uint32_t recordAnnotation(double timeS, const Annotation& annotation,
                                 std::vector<std::uint32_t> parents = {});
  std::uint32_t recordConclusion(double timeS, const std::string& statement,
                                 std::vector<std::uint32_t> parents);

  const std::vector<ProvenanceEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  const ProvenanceEntry* find(std::uint32_t id) const;

  /// All transitive ancestors of an entry (the full derivation of an
  /// insight), oldest first. Unknown id -> empty.
  std::vector<const ProvenanceEntry*> lineage(std::uint32_t id) const;

  /// True iff every parent reference points to an earlier entry
  /// (the log is a DAG by construction; this validates it).
  bool wellFormed() const;

  /// Human-readable report of the full chain.
  std::string exportReport() const;

 private:
  std::uint32_t append(ProvenanceKind kind, double timeS, std::string summary,
                       std::vector<std::uint32_t> parents);

  std::vector<ProvenanceEntry> entries_;
  std::uint32_t nextId_ = 1;
};

}  // namespace svq::core
