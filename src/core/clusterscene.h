// clusterscene.h — small multiples of SOM cluster averages (§VI.C).
//
// "The small-multiple layout would be adapted to visualize and juxtapose
// cluster averages instead of showing individual trajectories" — this
// module builds renderable SceneModels for the two exploration scales:
// the overview (one cell per non-empty SOM cluster, laid out in lattice
// order with member-count labels) and the drill-down (a zoomed cluster's
// member trajectories in the usual layout). Both run the same brush
// query machinery, so the interaction idiom is unchanged across scales.
#pragma once

#include <span>

#include "core/clusterquery.h"
#include "core/layout.h"
#include "core/progressive.h"
#include "render/scene.h"
#include "wall/wall.h"

namespace svq::core {

/// Scene-building options for the cluster views.
struct ClusterSceneOptions {
  /// Tint cluster cells by relative member count (denser = brighter).
  bool tintBySize = true;
  /// Label cells with "N=<members>".
  bool labelCounts = true;
  /// When the backing clustering covers < 100% of the store (shards were
  /// quarantined — see ShardStore), mark every cluster cell as holding
  /// partial data: a "*" label suffix and a warning-tinted background.
  /// Cells are marked wall-wide because quarantine loses *membership*
  /// information — any cluster may be missing members. Scenes over a
  /// fully healthy store render identically with this on or off.
  bool markPartialData = true;
  render::StereoSettings stereo;
  Vec2 timeWindow{0.0f, 1e9f};
};

/// Overview scene: one cell per displayable (non-empty) cluster, in SOM
/// lattice order, in a near-square grid apportioned over the wall.
/// `brush` may be empty (no highlights). The returned dataset holds the
/// cluster-average trajectories and must be passed to renderScene
/// alongside the scene.
struct ClusterOverviewScene {
  traj::TrajectoryDataset averagesDataset;  ///< cluster averages as dataset
  render::SceneModel scene;
  /// scene.cells[i] shows averagesDataset[i], which is cluster
  /// displayableClusters()[i].
  std::vector<std::uint32_t> cellToNode;
  /// Fraction of the source trajectories behind this overview; < 1.0 when
  /// shards were quarantined (cells carry partial-data markers then).
  double coverage = 1.0;
};

ClusterOverviewScene buildClusterOverview(const SomExplorer& explorer,
                                          const wall::WallSpec& wallSpec,
                                          const BrushGrid* brush,
                                          const ClusterSceneOptions& options);

/// Overview scene over an out-of-core store: identical layout and brush
/// semantics, but only the cluster averages are resident — the store's
/// trajectories stay on disk.
ClusterOverviewScene buildClusterOverview(const ShardSomExplorer& explorer,
                                          const wall::WallSpec& wallSpec,
                                          const BrushGrid* brush,
                                          const ClusterSceneOptions& options);

/// Overview scene for an anytime evaluation in progress: cells show the
/// (exact) prototype highlights immediately, labels carry the per-cluster
/// member hit count — "hit=<n>" once that cluster is fully refined,
/// "hit~<n>" (prototype-extrapolated) before — and CellView::coverage
/// exposes the refined fraction for the render layer's coverage strip.
/// Once every estimate has converged the output is bit-identical (cell
/// content hashes and pixels) to the scene built from
/// ProgressiveClusterQuery::exactReference — the render half of the
/// anytime exactness contract.
ClusterOverviewScene buildProgressiveOverview(
    const ShardSomExplorer& explorer, const QueryResult& prototypes,
    std::span<const ClusterEstimate> estimates,
    const wall::WallSpec& wallSpec, const ClusterSceneOptions& options);

/// Convenience wrapper over an engine's current state.
ClusterOverviewScene buildProgressiveOverview(
    const ProgressiveClusterQuery& query, const wall::WallSpec& wallSpec,
    const ClusterSceneOptions& options);

/// Drill-down scene for one cluster: its member trajectories in the
/// standard grid, queried with the same brush at full fidelity.
render::SceneModel buildClusterDrillDown(const SomExplorer& explorer,
                                         std::uint32_t nodeIndex,
                                         const wall::WallSpec& wallSpec,
                                         const BrushGrid* brush,
                                         const ClusterSceneOptions& options);

/// Drill-down over an out-of-core store: the chosen cluster's members are
/// materialized from the shard cache on demand and returned alongside the
/// scene (cells index membersDataset; cellToGlobalIndex maps back to
/// store indices). The same brush machinery runs unchanged.
struct ClusterDrillDownScene {
  traj::TrajectoryDataset membersDataset;  ///< materialized cluster members
  render::SceneModel scene;
  /// scene.cells[i] shows membersDataset[i] == store trajectory
  /// cellToGlobalIndex[i].
  std::vector<std::uint32_t> cellToGlobalIndex;
  /// Coverage of the clustering this drill-down came from (< 1.0 means
  /// this cluster's member list may itself be incomplete).
  double coverage = 1.0;
};

ClusterDrillDownScene buildClusterDrillDown(const ShardSomExplorer& explorer,
                                            std::uint32_t nodeIndex,
                                            const wall::WallSpec& wallSpec,
                                            const BrushGrid* brush,
                                            const ClusterSceneOptions& options);

/// Grid shape used for N cells on a wall (near-square, wall aspect aware).
LayoutConfig clusterGridFor(std::size_t cellCount,
                            const wall::WallSpec& wallSpec);

}  // namespace svq::core
