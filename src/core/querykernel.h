// querykernel.h — vectorized point-in-brush classification.
//
// The spatial half of every visual query reduces to one primitive: given N
// arena points, which brush (if any) covers each? With trajectory points
// stored SoA (traj::PointsView) the x and y channels are dense float
// arrays, so the texel lookup `floor((cm + R) / texelSize)` vectorizes
// across 4 (SSE2) or 8 (AVX2) points per iteration; only the final byte
// fetch from the paint grid stays scalar (an i32 gather over int8 texels
// would over-read past the grid).
//
// Every variant is BIT-IDENTICAL to BrushGrid::brushAt applied per point:
// the divide is IEEE-exact in both forms, floor is exact (SSE2 emulates it
// as truncate-then-adjust), and out-of-grid lanes — including values whose
// truncation saturates — classify as kNoBrush exactly like the scalar
// bounds check. tests/simd_kernel_test.cpp fuzzes this equivalence; the
// determinism gates depend on it.
//
// Variant selection happens once per process via util::activeIsa()
// (SVQ_FORCE_SCALAR pins the scalar path). The per-ISA entry points are
// exported for the fuzz test and the bench ratio metrics.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/brush.h"
#include "util/simd.h"

namespace svq::core {

/// out[i] = brush index covering arena point (x[i], y[i]), or kNoBrush.
/// Dispatches to the best variant for the running CPU.
void pointBrushKernel(const BrushGridView& grid, const float* x,
                      const float* y, std::int8_t* out, std::size_t n);

/// Explicit-ISA entry points (fuzz tests, ratio benches). Calling an ISA
/// the CPU lacks is undefined; guard with util::detectIsa().
void pointBrushScalar(const BrushGridView& grid, const float* x,
                      const float* y, std::int8_t* out, std::size_t n);
void pointBrushSse2(const BrushGridView& grid, const float* x, const float* y,
                    std::int8_t* out, std::size_t n);
void pointBrushAvx2(const BrushGridView& grid, const float* x, const float* y,
                    std::int8_t* out, std::size_t n);

/// Runs the variant for `isa` (scalar for anything the build lacks).
void pointBrushVariant(util::Isa isa, const BrushGridView& grid,
                       const float* x, const float* y, std::int8_t* out,
                       std::size_t n);

/// mid[s] = (c[s] + c[s+1]) * 0.5f for s in [0, nSegments) — the segment
/// midpoints of one SoA channel, matching the scalar probe's
/// `(a + b) * 0.5f` operation order exactly.
void segmentMidpoints(const float* c, float* mid, std::size_t nSegments);

}  // namespace svq::core
