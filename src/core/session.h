// session.h — the per-tenant exploration session.
//
// Session is one explorer's mutable view over an immutable SharedContext
// (context.h): brush canvas, groups, temporal window, stereo knobs,
// active layout preset and SOM drill-down focus; it consumes ui::Events
// and produces the SceneModel a renderer (local or cluster) draws. This
// is the state the paper's screenshots depict in action — re-cut so that
// hundreds of Sessions can share one context:
//
//   * copy-on-write state — the brush canvas, the group set and the cell
//     assignment live behind shared_ptrs. fork() is O(1): the child
//     shares every buffer until one side writes, at which point the
//     writer detaches onto its own deep copy (BrushCanvas::clone /
//     GroupManager::clone). Mutation never aliases across sessions.
//   * cheap construction — a fresh session with no groups borrows the
//     context's precomputed layout and default assignment instead of
//     computing its own, so admission is O(1) in dataset size.
//   * movable — the incremental QueryEngine (which owns a mutex) sits
//     behind a unique_ptr, and the engine's borrowed brush-grid pointer
//     targets heap state behind shared_ptr, so moving a Session never
//     invalidates the binding.
//
// The old single-explorer façade (VisualQueryApp) is gone; construct a
// SharedContext and wrap it in a Session instead.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/brush.h"
#include "core/clusterscene.h"
#include "core/context.h"
#include "core/groups.h"
#include "core/layout.h"
#include "core/progressive.h"
#include "core/query.h"
#include "core/queryengine.h"
#include "render/scene.h"
#include "traj/dataset.h"
#include "ui/controls.h"
#include "ui/events.h"
#include "ui/script.h"
#include "wall/wall.h"

namespace svq::core {

/// Per-tenant state + event processing + scene building over a shared,
/// immutable context. Move-only; use fork() for an explicit COW copy.
class Session {
 public:
  explicit Session(std::shared_ptr<const SharedContext> context);

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// O(1) copy sharing brush/group/assignment buffers copy-on-write: the
  /// child sees this session's current state, and subsequent writes on
  /// either side detach onto private deep copies.
  Session fork() const;

  // --- shared world --------------------------------------------------------
  const SharedContext& context() const { return *context_; }
  const std::shared_ptr<const SharedContext>& contextPtr() const {
    return context_;
  }
  const traj::TrajectoryDataset& dataset() const {
    return context_->dataset();
  }
  const wall::WallSpec& wallSpec() const { return context_->wallSpec(); }
  const std::vector<LayoutConfig>& layoutPresets() const {
    return context_->layoutPresets();
  }

  // --- per-tenant state ----------------------------------------------------
  const SmallMultipleLayout& layout() const {
    return context_->layout(activePreset_);
  }
  std::size_t activePreset() const { return activePreset_; }
  /// Mutable access detaches (COW) — call refreshAssignment() after
  /// direct edits. Prefer apply() for event-driven edits.
  GroupManager& groups() { return mutableGroups(); }
  const GroupManager& groups() const { return *groups_; }
  const BrushCanvas& brush() const { return *brush_; }
  const ui::RangeSlider& timeWindow() const { return timeWindow_; }
  const ui::StereoControls& stereoControls() const { return stereoControls_; }
  render::StereoSettings stereoSettings() const;

  /// Per-session SOM drill-down focus: the SOM cell this tenant expanded,
  /// if any (nullopt = overview). Plain session state — two tenants can
  /// drill into different prototypes of the one shared SOM.
  struct SomFocus {
    int x = 0;
    int y = 0;
    bool operator==(const SomFocus&) const = default;
  };
  const std::optional<SomFocus>& somFocus() const { return somFocus_; }
  void setSomFocus(int x, int y) { somFocus_ = SomFocus{x, y}; }
  void clearSomFocus() { somFocus_.reset(); }

  /// Fraction of the dataset visible in the current layout (the §VI.B
  /// "85% of the data" headline for 36x12 over ~500 trajectories).
  float datasetCoverage() const;

  // --- event processing ----------------------------------------------------
  /// Applies one interaction event. Returns false for events that could
  /// not be applied (e.g. invalid group rect).
  bool apply(const ui::Event& event);

  /// Applies every event of a script in order; returns applied count.
  std::size_t applyScript(const ui::InputScript& script);

  /// Recomputes the cell assignment after direct edits via groups().
  /// (Event-driven edits refresh automatically.)
  void refreshAssignment() { recomputeAssignment(); }

  // --- outputs -------------------------------------------------------------
  /// Current cell -> trajectory assignment.
  const GroupAssignment& assignment() const { return *assignment_; }

  /// Evaluates the coordinated-brush query for the displayed trajectories
  /// (empty brush = no highlights) and builds the frame's scene model.
  /// Evaluation is incremental: brush events report dirty regions to the
  /// query engine, which re-classifies only the trajectories they touch.
  render::SceneModel buildScene();

  /// Cancellable variant: the query evaluation inside polls `cancel` at
  /// chunk granularity. Returns false when the build was abandoned — then
  /// `out` is untouched and the session is never torn: lastQueryResult(),
  /// frameIndex() and the damage-diff state are exactly what they were,
  /// and the engine keeps its dirty-set so the next build resumes the
  /// abandoned work.
  bool buildScene(render::SceneModel& out, const util::Cancellation& cancel);

  /// The query result backing the last buildScene() call. In progressive
  /// mode this is the prototype (cluster-average) result.
  const QueryResult& lastQueryResult() const { return *lastQuery_; }

  // --- progressive (anytime) mode ------------------------------------------
  // Active iff the shared context carries a ShardSomExplorer. buildScene()
  // then produces the anytime cluster overview (core/progressive.h):
  // prototype highlights immediately, per-cluster hit labels and coverage
  // strips that tighten as refinement drains. Brush and time-window events
  // restart the pre-pass on the next build; converged scenes are
  // bit-identical to a from-scratch exact evaluation.

  /// True when this session builds progressive overview scenes.
  bool progressiveMode() const { return progressive_ != nullptr; }

  /// Exactly evaluates up to `maxShards` uncertain shards of the anytime
  /// query (running the pre-pass first if the state is stale). Polled by
  /// `cancel` between shards; returns shards resolved (0 when not in
  /// progressive mode or already converged).
  std::size_t refineProgressive(std::size_t maxShards,
                                const util::Cancellation& cancel =
                                    util::Cancellation::none());

  /// True when there is no refinement work outstanding (trivially true
  /// outside progressive mode).
  bool progressiveConverged() const {
    return progressive_ == nullptr ||
           (!progressive_->dirty && progressive_->query.converged());
  }

  /// The anytime engine, or nullptr outside progressive mode.
  const ProgressiveClusterQuery* progressiveQuery() const {
    return progressive_ ? &progressive_->query : nullptr;
  }

  /// The dataset the last built scene's cells index: the cluster averages
  /// in progressive mode, the context dataset otherwise. Renderers must
  /// pass this (not the context dataset) to renderScene.
  const traj::TrajectoryDataset& sceneDataset() const {
    return progressive_ ? progressive_->sceneDataset : dataset();
  }

  /// Injects the time source for the anytime pre-pass deadline (replay
  /// binds its ManualClock; nullptr = steady clock). No-op outside
  /// progressive mode.
  void bindClock(const util::Clock* clock) {
    if (progressive_) progressive_->query.bindClock(clock);
  }

  /// The incremental engine's counters (invalidation, cache hits, pass
  /// latency) — exposed for benchmarks and diagnostics.
  const QueryEngineMetrics& queryMetrics() const {
    return queryEngine_->metrics();
  }

  /// Frame counter (increments per buildScene).
  std::uint64_t frameIndex() const { return frameIndex_; }

  // --- render damage -------------------------------------------------------
  /// Cell indices (into the last built scene's cells) whose rendered
  /// content changed since the previous buildScene(), computed by content-
  /// hash diff (render::cellContentHash). Meaningful only when
  /// lastSceneFullyDamaged() is false.
  const std::vector<std::size_t>& lastDamagedCells() const {
    return lastDamagedCells_;
  }

  /// True when the whole scene must be considered damaged: the first
  /// frame, a layout switch (cell count/rect change) or a scene-wide
  /// change that dirtied every cell.
  bool lastSceneFullyDamaged() const { return lastSceneFullyDamaged_; }

 private:
  /// Detach-on-write accessors: deep-copy when the buffer is shared with
  /// a fork, no-op when exclusively owned.
  BrushCanvas& mutableBrush();
  GroupManager& mutableGroups();
  void recomputeAssignment();

  struct ProgressiveState {
    explicit ProgressiveState(const ShardSomExplorer& explorer)
        : query(explorer, AnytimeOptions::fromEnv()) {}
    ProgressiveClusterQuery query;
    /// Averages dataset backing the last progressive scene (what
    /// sceneDataset() exposes).
    traj::TrajectoryDataset sceneDataset;
    /// Brush/window changed since the last begin(); the next build or
    /// refine re-runs the pre-pass.
    bool dirty = true;
  };
  /// Re-runs the pre-pass when the anytime state is stale.
  void ensureProgressiveFresh();
  bool buildProgressiveScene(render::SceneModel& out);
  /// Damage-diffs `scene` against the previous frame and publishes it.
  void commitScene(render::SceneModel&& scene, render::SceneModel& out);

  std::shared_ptr<const SharedContext> context_;
  std::size_t activePreset_ = SharedContext::kDefaultPreset;
  std::shared_ptr<BrushCanvas> brush_;
  std::shared_ptr<GroupManager> groups_;
  std::shared_ptr<const GroupAssignment> assignment_;
  ui::RangeSlider timeWindow_;
  ui::StereoControls stereoControls_;
  std::optional<SomFocus> somFocus_;
  std::unique_ptr<QueryEngine> queryEngine_;
  /// Bumped whenever brush_ points at a new canvas (ctor, COW detach);
  /// buildScene() re-binds the engine when it lags, so the engine never
  /// evaluates against a grid this session no longer owns.
  std::uint64_t brushBindVersion_ = 1;
  std::uint64_t engineBoundVersion_ = 0;
  std::vector<std::uint32_t> boundDisplayed_;  ///< set the engine is bound to
  std::shared_ptr<const QueryResult> lastQuery_;
  std::uint64_t frameIndex_ = 0;
  std::vector<std::uint64_t> lastCellHashes_;
  std::vector<std::size_t> lastDamagedCells_;
  bool lastSceneFullyDamaged_ = true;
  std::unique_ptr<ProgressiveState> progressive_;
};

// The VisualQueryApp forwarder (pre-split façade) has been removed after
// its one-release deprecation window. Build a SharedContext and wrap it:
//   auto ctx = SharedContext::create(dataset, wallSpec);
//   Session session(ctx);

}  // namespace svq::core
