// session.h — the application façade.
//
// VisualQueryApp ties the technique together: it owns the dataset, the
// wall geometry, the layout presets, groups, the brush canvas, the
// temporal filter and the stereo controls; consumes ui::Events; and
// produces the SceneModel a renderer (local or cluster) draws. This is
// the class the paper's screenshots depict in action.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include <memory>

#include "core/brush.h"
#include "core/groups.h"
#include "core/layout.h"
#include "core/query.h"
#include "core/queryengine.h"
#include "render/scene.h"
#include "traj/dataset.h"
#include "ui/controls.h"
#include "ui/events.h"
#include "ui/script.h"
#include "wall/wall.h"

namespace svq::core {

/// Application state + event processing + scene building.
class VisualQueryApp {
 public:
  /// The dataset is borrowed and must outlive the app.
  VisualQueryApp(const traj::TrajectoryDataset& dataset,
                 wall::WallSpec wallSpec);

  // --- state access ------------------------------------------------------
  const traj::TrajectoryDataset& dataset() const { return *dataset_; }
  const wall::WallSpec& wallSpec() const { return wallSpec_; }
  const SmallMultipleLayout& layout() const { return layout_; }
  const std::vector<LayoutConfig>& layoutPresets() const { return presets_; }
  std::size_t activePreset() const { return activePreset_; }
  GroupManager& groups() { return groups_; }
  const GroupManager& groups() const { return groups_; }
  const BrushCanvas& brush() const { return brushCanvas_; }
  const ui::RangeSlider& timeWindow() const { return timeWindow_; }
  const ui::StereoControls& stereoControls() const { return stereoControls_; }
  render::StereoSettings stereoSettings() const;

  /// Fraction of the dataset visible in the current layout (the §VI.B
  /// "85% of the data" headline for 36x12 over ~500 trajectories).
  float datasetCoverage() const;

  // --- event processing --------------------------------------------------
  /// Applies one interaction event. Returns false for events that could
  /// not be applied (e.g. invalid group rect).
  bool apply(const ui::Event& event);

  /// Applies every event of a script in order; returns applied count.
  std::size_t applyScript(const ui::InputScript& script);

  /// Recomputes the cell assignment after direct edits via groups().
  /// (Event-driven edits refresh automatically.)
  void refreshAssignment() { recomputeAssignment(); }

  // --- outputs -----------------------------------------------------------
  /// Current cell -> trajectory assignment.
  const GroupAssignment& assignment() const { return assignment_; }

  /// Evaluates the coordinated-brush query for the displayed trajectories
  /// (empty brush = no highlights) and builds the frame's scene model.
  /// Evaluation is incremental: brush events report dirty regions to the
  /// query engine, which re-classifies only the trajectories they touch.
  render::SceneModel buildScene();

  /// The query result backing the last buildScene() call.
  const QueryResult& lastQueryResult() const { return *lastQuery_; }

  /// The incremental engine's counters (invalidation, cache hits, pass
  /// latency) — exposed for benchmarks and diagnostics.
  const QueryEngineMetrics& queryMetrics() const {
    return queryEngine_.metrics();
  }

  /// Frame counter (increments per buildScene).
  std::uint64_t frameIndex() const { return frameIndex_; }

  // --- render damage ------------------------------------------------------
  /// Cell indices (into the last built scene's cells) whose rendered
  /// content changed since the previous buildScene(), computed by content-
  /// hash diff (render::cellContentHash). Meaningful only when
  /// lastSceneFullyDamaged() is false.
  const std::vector<std::size_t>& lastDamagedCells() const {
    return lastDamagedCells_;
  }

  /// True when the whole scene must be considered damaged: the first
  /// frame, a layout switch (cell count/rect change) or a scene-wide
  /// change that dirtied every cell.
  bool lastSceneFullyDamaged() const { return lastSceneFullyDamaged_; }

 private:
  void recomputeLayout();
  void recomputeAssignment();

  const traj::TrajectoryDataset* dataset_;
  wall::WallSpec wallSpec_;
  std::vector<LayoutConfig> presets_;
  std::size_t activePreset_ = 1;  // 24x6 default
  SmallMultipleLayout layout_;
  GroupManager groups_;
  GroupAssignment assignment_;
  BrushCanvas brushCanvas_;
  ui::RangeSlider timeWindow_;
  ui::StereoControls stereoControls_;
  QueryEngine queryEngine_;
  std::vector<std::uint32_t> boundDisplayed_;  ///< set the engine is bound to
  std::shared_ptr<const QueryResult> lastQuery_;
  std::uint64_t frameIndex_ = 0;
  std::vector<std::uint64_t> lastCellHashes_;
  std::vector<std::size_t> lastDamagedCells_;
  bool lastSceneFullyDamaged_ = true;
};

}  // namespace svq::core
