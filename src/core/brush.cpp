#include "core/brush.h"

#include <algorithm>
#include <cmath>

namespace svq::core {

BrushGrid::BrushGrid(float arenaRadiusCm, int resolution)
    : arenaRadiusCm_(arenaRadiusCm),
      resolution_(std::max(8, resolution)),
      texelSizeCm_(2.0f * arenaRadiusCm / static_cast<float>(resolution_)) {
  texels_.assign(static_cast<std::size_t>(resolution_) *
                     static_cast<std::size_t>(resolution_),
                 kNoBrush);
}

void BrushGrid::clearAll() {
  std::fill(texels_.begin(), texels_.end(), kNoBrush);
}

void BrushGrid::clearBrush(std::int8_t brushIndex) {
  for (auto& t : texels_) {
    if (t == brushIndex) t = kNoBrush;
  }
}

int BrushGrid::toTexel(float cm) const {
  return static_cast<int>(
      std::floor((cm + arenaRadiusCm_) / texelSizeCm_));
}

void BrushGrid::paint(const BrushStroke& stroke) {
  const int x0 = std::max(0, toTexel(stroke.centerCm.x - stroke.radiusCm));
  const int x1 = std::min(resolution_ - 1,
                          toTexel(stroke.centerCm.x + stroke.radiusCm));
  const int y0 = std::max(0, toTexel(stroke.centerCm.y - stroke.radiusCm));
  const int y1 = std::min(resolution_ - 1,
                          toTexel(stroke.centerCm.y + stroke.radiusCm));
  const float r2 = stroke.radiusCm * stroke.radiusCm;
  for (int ty = y0; ty <= y1; ++ty) {
    for (int tx = x0; tx <= x1; ++tx) {
      // Texel centre in arena cm.
      const float cx =
          (static_cast<float>(tx) + 0.5f) * texelSizeCm_ - arenaRadiusCm_;
      const float cy =
          (static_cast<float>(ty) + 0.5f) * texelSizeCm_ - arenaRadiusCm_;
      const float dx = cx - stroke.centerCm.x;
      const float dy = cy - stroke.centerCm.y;
      if (dx * dx + dy * dy <= r2) {
        texels_[static_cast<std::size_t>(ty) *
                    static_cast<std::size_t>(resolution_) +
                static_cast<std::size_t>(tx)] = stroke.brushIndex;
      }
    }
  }
}

std::int8_t BrushGrid::brushAt(Vec2 arenaCm) const {
  const int tx = toTexel(arenaCm.x);
  const int ty = toTexel(arenaCm.y);
  if (tx < 0 || ty < 0 || tx >= resolution_ || ty >= resolution_) {
    return kNoBrush;
  }
  return texels_[static_cast<std::size_t>(ty) *
                     static_cast<std::size_t>(resolution_) +
                 static_cast<std::size_t>(tx)];
}

bool BrushGrid::hasPaint(std::int8_t brushIndex) const {
  return std::find(texels_.begin(), texels_.end(), brushIndex) !=
         texels_.end();
}

float BrushGrid::paintedAreaCm2(std::int8_t brushIndex) const {
  const auto count = std::count(texels_.begin(), texels_.end(), brushIndex);
  return static_cast<float>(count) * texelSizeCm_ * texelSizeCm_;
}

void BrushCanvas::addStroke(const BrushStroke& stroke) {
  strokes_.push_back(stroke);
  grid_.paint(stroke);
}

void BrushCanvas::clear(std::int8_t brushIndex) {
  if (brushIndex == kNoBrush) {
    strokes_.clear();
  } else {
    std::erase_if(strokes_, [brushIndex](const BrushStroke& s) {
      return s.brushIndex == brushIndex;
    });
  }
  rebuild();
}

void BrushCanvas::rebuild() {
  grid_.clearAll();
  for (const BrushStroke& s : strokes_) grid_.paint(s);
}

void paintArenaHalf(BrushCanvas& canvas, std::int8_t brushIndex,
                    traj::ArenaSide side, float arenaRadiusCm,
                    float dabRadiusCm) {
  // Lay dabs on a grid covering the half-plane x<0 (west), x>0 (east),
  // y>0 (north) or y<0 (south), clipped to the arena disc.
  const float step = dabRadiusCm;  // overlapping dabs -> solid coverage
  for (float y = -arenaRadiusCm; y <= arenaRadiusCm; y += step) {
    for (float x = -arenaRadiusCm; x <= arenaRadiusCm; x += step) {
      const Vec2 p{x, y};
      if (p.norm() > arenaRadiusCm) continue;
      const bool inHalf = (side == traj::ArenaSide::kWest && x < 0.0f) ||
                          (side == traj::ArenaSide::kEast && x > 0.0f) ||
                          (side == traj::ArenaSide::kNorth && y > 0.0f) ||
                          (side == traj::ArenaSide::kSouth && y < 0.0f);
      if (inHalf) {
        canvas.addStroke(BrushStroke{brushIndex, p, dabRadiusCm});
      }
    }
  }
}

void paintArenaCenter(BrushCanvas& canvas, std::int8_t brushIndex,
                      float radiusCm, float dabRadiusCm) {
  const float step = dabRadiusCm;
  for (float y = -radiusCm; y <= radiusCm; y += step) {
    for (float x = -radiusCm; x <= radiusCm; x += step) {
      const Vec2 p{x, y};
      if (p.norm() <= radiusCm) {
        canvas.addStroke(BrushStroke{brushIndex, p, dabRadiusCm});
      }
    }
  }
}

}  // namespace svq::core
