#include "core/brush.h"

#include <algorithm>
#include <cmath>

namespace svq::core {

BrushGrid::BrushGrid(float arenaRadiusCm, int resolution)
    : arenaRadiusCm_(arenaRadiusCm),
      resolution_(std::max(8, resolution)),
      texelSizeCm_(2.0f * arenaRadiusCm / static_cast<float>(resolution_)) {
  texels_.assign(static_cast<std::size_t>(resolution_) *
                     static_cast<std::size_t>(resolution_),
                 kNoBrush);
}

AABB2 BrushGrid::clearAll() {
  const bool hadPaint =
      std::any_of(texels_.begin(), texels_.end(),
                  [](std::int8_t t) { return t != kNoBrush; });
  std::fill(texels_.begin(), texels_.end(), kNoBrush);
  return hadPaint ? bounds() : AABB2{};
}

AABB2 BrushGrid::clearBrush(std::int8_t brushIndex) {
  int tx0 = resolution_, ty0 = resolution_, tx1 = -1, ty1 = -1;
  for (int ty = 0; ty < resolution_; ++ty) {
    for (int tx = 0; tx < resolution_; ++tx) {
      auto& t = texels_[static_cast<std::size_t>(ty) *
                            static_cast<std::size_t>(resolution_) +
                        static_cast<std::size_t>(tx)];
      if (t == brushIndex) {
        t = kNoBrush;
        tx0 = std::min(tx0, tx);
        ty0 = std::min(ty0, ty);
        tx1 = std::max(tx1, tx);
        ty1 = std::max(ty1, ty);
      }
    }
  }
  return tx1 >= tx0 ? texelRect(tx0, ty0, tx1, ty1) : AABB2{};
}

int BrushGrid::toTexel(float cm) const {
  return static_cast<int>(
      std::floor((cm + arenaRadiusCm_) / texelSizeCm_));
}

AABB2 BrushGrid::texelRect(int tx0, int ty0, int tx1, int ty1) const {
  return AABB2::of(
      {static_cast<float>(tx0) * texelSizeCm_ - arenaRadiusCm_,
       static_cast<float>(ty0) * texelSizeCm_ - arenaRadiusCm_},
      {static_cast<float>(tx1 + 1) * texelSizeCm_ - arenaRadiusCm_,
       static_cast<float>(ty1 + 1) * texelSizeCm_ - arenaRadiusCm_});
}

AABB2 BrushGrid::paint(const BrushStroke& stroke) {
  const int x0 = std::max(0, toTexel(stroke.centerCm.x - stroke.radiusCm));
  const int x1 = std::min(resolution_ - 1,
                          toTexel(stroke.centerCm.x + stroke.radiusCm));
  const int y0 = std::max(0, toTexel(stroke.centerCm.y - stroke.radiusCm));
  const int y1 = std::min(resolution_ - 1,
                          toTexel(stroke.centerCm.y + stroke.radiusCm));
  if (x0 > x1 || y0 > y1) return AABB2{};
  const float r2 = stroke.radiusCm * stroke.radiusCm;
  for (int ty = y0; ty <= y1; ++ty) {
    for (int tx = x0; tx <= x1; ++tx) {
      // Texel centre in arena cm.
      const float cx =
          (static_cast<float>(tx) + 0.5f) * texelSizeCm_ - arenaRadiusCm_;
      const float cy =
          (static_cast<float>(ty) + 0.5f) * texelSizeCm_ - arenaRadiusCm_;
      const float dx = cx - stroke.centerCm.x;
      const float dy = cy - stroke.centerCm.y;
      if (dx * dx + dy * dy <= r2) {
        texels_[static_cast<std::size_t>(ty) *
                    static_cast<std::size_t>(resolution_) +
                static_cast<std::size_t>(tx)] = stroke.brushIndex;
      }
    }
  }
  return texelRect(x0, y0, x1, y1);
}

std::int8_t BrushGrid::brushAt(Vec2 arenaCm) const {
  const int tx = toTexel(arenaCm.x);
  const int ty = toTexel(arenaCm.y);
  if (tx < 0 || ty < 0 || tx >= resolution_ || ty >= resolution_) {
    return kNoBrush;
  }
  return texels_[static_cast<std::size_t>(ty) *
                     static_cast<std::size_t>(resolution_) +
                 static_cast<std::size_t>(tx)];
}

bool BrushGrid::hasPaint(std::int8_t brushIndex) const {
  return std::find(texels_.begin(), texels_.end(), brushIndex) !=
         texels_.end();
}

float BrushGrid::paintedAreaCm2(std::int8_t brushIndex) const {
  const auto count = std::count(texels_.begin(), texels_.end(), brushIndex);
  return static_cast<float>(count) * texelSizeCm_ * texelSizeCm_;
}

AABB2 BrushCanvas::addStroke(const BrushStroke& stroke) {
  strokes_.push_back(stroke);
  return grid_.paint(stroke);
}

AABB2 BrushCanvas::clear(std::int8_t brushIndex) {
  // kNoBrush is the single wildcard. Any other negative index cannot name
  // a stroke (paint never stores them), so reject it explicitly instead of
  // silently behaving like a second wildcard.
  if (brushIndex < 0 && brushIndex != kNoBrush) return AABB2{};

  AABB2 dirty;
  std::erase_if(strokes_, [&](const BrushStroke& s) {
    if (brushIndex != kNoBrush && s.brushIndex != brushIndex) return false;
    dirty.expand(AABB2::of(s.centerCm - Vec2{s.radiusCm, s.radiusCm},
                           s.centerCm + Vec2{s.radiusCm, s.radiusCm}));
    return true;
  });
  if (!dirty.valid()) return AABB2{};  // no-op: nothing matched

  rebuild();
  // Clip to the grid: paint outside it never rasterized anywhere.
  const AABB2 gb = grid_.bounds();
  dirty.min.x = std::max(dirty.min.x, gb.min.x);
  dirty.min.y = std::max(dirty.min.y, gb.min.y);
  dirty.max.x = std::min(dirty.max.x, gb.max.x);
  dirty.max.y = std::min(dirty.max.y, gb.max.y);
  return dirty.valid() ? dirty : AABB2{};
}

void BrushCanvas::rebuild() {
  grid_.clearAll();
  for (const BrushStroke& s : strokes_) grid_.paint(s);
}

BrushCanvas BrushCanvas::clone() const {
  BrushCanvas copy(grid_.arenaRadiusCm(), grid_.resolution());
  copy.grid_ = grid_;        // vector<int8_t> texels: fresh allocation
  copy.strokes_ = strokes_;  // stroke history: fresh allocation
  return copy;
}

void paintArenaHalf(BrushCanvas& canvas, std::int8_t brushIndex,
                    traj::ArenaSide side, float arenaRadiusCm,
                    float dabRadiusCm) {
  // Lay dabs on a grid covering the half-plane x<0 (west), x>0 (east),
  // y>0 (north) or y<0 (south), clipped to the arena disc.
  const float step = dabRadiusCm;  // overlapping dabs -> solid coverage
  for (float y = -arenaRadiusCm; y <= arenaRadiusCm; y += step) {
    for (float x = -arenaRadiusCm; x <= arenaRadiusCm; x += step) {
      const Vec2 p{x, y};
      if (p.norm() > arenaRadiusCm) continue;
      const bool inHalf = (side == traj::ArenaSide::kWest && x < 0.0f) ||
                          (side == traj::ArenaSide::kEast && x > 0.0f) ||
                          (side == traj::ArenaSide::kNorth && y > 0.0f) ||
                          (side == traj::ArenaSide::kSouth && y < 0.0f);
      if (inHalf) {
        canvas.addStroke(BrushStroke{brushIndex, p, dabRadiusCm});
      }
    }
  }
}

void paintArenaCenter(BrushCanvas& canvas, std::int8_t brushIndex,
                      float radiusCm, float dabRadiusCm) {
  const float step = dabRadiusCm;
  for (float y = -radiusCm; y <= radiusCm; y += step) {
    for (float x = -radiusCm; x <= radiusCm; x += step) {
      const Vec2 p{x, y};
      if (p.norm() <= radiusCm) {
        canvas.addStroke(BrushStroke{brushIndex, p, dabRadiusCm});
      }
    }
  }
}

}  // namespace svq::core
