#include "core/context.h"

#include <cstdlib>

namespace svq::core {

SharedContext::Options SharedContext::Options::fromEnv() {
  Options o;
  if (const char* v = std::getenv("SVQ_SHARED_CACHE_MB");
      v != nullptr && *v != '\0') {
    o.renderCacheBytes = static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
                         << 20;
  }
  return o;
}

SharedContext::SharedContext(const traj::TrajectoryDataset& dataset,
                             wall::WallSpec wallSpec, Options options)
    : dataset_(&dataset),
      wallSpec_(std::move(wallSpec)),
      presets_(paperLayoutPresets()),
      shardStore_(std::move(options.shardStore)),
      som_(std::move(options.som)),
      shardExplorer_(std::move(options.shardExplorer)),
      renderCache_(options.renderCacheBytes) {
  layouts_.reserve(presets_.size());
  defaultAssignments_.reserve(presets_.size());
  const GroupManager noGroups;
  for (const LayoutConfig& cfg : presets_) {
    layouts_.push_back(SmallMultipleLayout::compute(wallSpec_, cfg));
    defaultAssignments_.push_back(std::make_shared<const GroupAssignment>(
        noGroups.assign(dataset, cfg.cellsX, cfg.cellsY)));
  }
}

std::shared_ptr<const SharedContext> SharedContext::create(
    const traj::TrajectoryDataset& dataset, wall::WallSpec wallSpec) {
  return create(dataset, std::move(wallSpec), Options{});
}

std::shared_ptr<const SharedContext> SharedContext::create(
    const traj::TrajectoryDataset& dataset, wall::WallSpec wallSpec,
    Options options) {
  // make_shared needs a public ctor; new + shared_ptr keeps it private.
  return std::shared_ptr<const SharedContext>(
      new SharedContext(dataset, std::move(wallSpec), std::move(options)));
}

}  // namespace svq::core
