#include "core/query.h"

#include <algorithm>

namespace svq::core {

namespace {

/// Probes one segment against the brush: both endpoints plus the midpoint
/// — at the ~3 mm tracking resolution of the dataset a segment is short
/// relative to any paintable region, so three probes match the
/// painted-pixel semantics of the original application.
std::int8_t probeSegment(const BrushGrid& brush, Vec2 a, Vec2 b) {
  std::int8_t hit = brush.brushAt(a);
  if (hit == kNoBrush) hit = brush.brushAt(b);
  if (hit == kNoBrush) hit = brush.brushAt((a + b) * 0.5f);
  return hit;
}

/// Window-independent final-position signal: which brush covers the
/// trajectory's end. The very last sample can sit a step beyond the arena
/// boundary (the exit crossing), where nothing is painted, so probe the
/// last few samples walking backwards.
std::int8_t probeLastSegmentBrush(std::span<const traj::TrajPoint> pts,
                                  const BrushGrid& brush) {
  for (std::size_t back = 0; back < 3 && back < pts.size(); ++back) {
    const std::int8_t b = brush.brushAt(pts[pts.size() - 1 - back].pos);
    if (b != kNoBrush) return b;
  }
  return kNoBrush;
}

void initSummary(HighlightSummary& summary, std::uint32_t index,
                 std::size_t brushCount) {
  summary = HighlightSummary{};
  summary.trajectoryIndex = index;
  summary.segmentsPerBrush.assign(brushCount, 0);
  summary.durationPerBrush.assign(brushCount, 0.0f);
  summary.firstHitTime.assign(brushCount, -1.0f);
}

void recordHighlight(HighlightSummary& summary, std::int8_t hit,
                     const traj::TrajPoint& a, const traj::TrajPoint& b,
                     std::size_t brushCount) {
  const auto brushIdx = static_cast<std::size_t>(hit);
  if (brushIdx < brushCount) {
    ++summary.segmentsPerBrush[brushIdx];
    summary.durationPerBrush[brushIdx] += b.t - a.t;
    if (summary.firstHitTime[brushIdx] < 0.0f) {
      summary.firstHitTime[brushIdx] = a.t;
    }
  }
}

}  // namespace

void evaluate(const TrajectoryRef& t, const BrushGrid& brush,
              const QueryParams& params,
              std::vector<std::int8_t>& segmentsOut,
              HighlightSummary& summaryOut) {
  const auto pts = t->points();
  const std::size_t segmentCount = pts.size() >= 2 ? pts.size() - 1 : 0;
  segmentsOut.assign(segmentCount, kNoBrush);

  initSummary(summaryOut, t.index, params.brushCount);
  summaryOut.lastSegmentBrush = probeLastSegmentBrush(pts, brush);

  const Vec2 window = params.effectiveWindow(t->duration());
  for (std::size_t s = 0; s < segmentCount; ++s) {
    const traj::TrajPoint& a = pts[s];
    const traj::TrajPoint& b = pts[s + 1];
    // Temporal filter: a segment counts when it overlaps the window.
    if (b.t < window.x || a.t > window.y) continue;
    const std::int8_t hit = probeSegment(brush, a.pos, b.pos);
    if (hit == kNoBrush) continue;

    segmentsOut[s] = hit;
    recordHighlight(summaryOut, hit, a, b, params.brushCount);
  }
}

void classifySpatial(const traj::Trajectory& t, const BrushGrid& brush,
                     std::vector<std::int8_t>& spatialOut,
                     std::int8_t& lastSegmentBrushOut) {
  const auto pts = t.points();
  const std::size_t segmentCount = pts.size() >= 2 ? pts.size() - 1 : 0;
  spatialOut.assign(segmentCount, kNoBrush);
  lastSegmentBrushOut = probeLastSegmentBrush(pts, brush);
  for (std::size_t s = 0; s < segmentCount; ++s) {
    spatialOut[s] = probeSegment(brush, pts[s].pos, pts[s + 1].pos);
  }
}

void applyTemporalMask(const traj::Trajectory& t, std::uint32_t index,
                       std::span<const std::int8_t> spatialHits,
                       std::int8_t lastSegmentBrush,
                       const QueryParams& params,
                       std::vector<std::int8_t>& segmentsOut,
                       HighlightSummary& summaryOut) {
  const auto pts = t.points();
  const std::size_t segmentCount = pts.size() >= 2 ? pts.size() - 1 : 0;
  segmentsOut.assign(segmentCount, kNoBrush);

  initSummary(summaryOut, index, params.brushCount);
  summaryOut.lastSegmentBrush = lastSegmentBrush;

  const Vec2 window = params.effectiveWindow(t.duration());
  const std::size_t n = std::min(segmentCount, spatialHits.size());
  for (std::size_t s = 0; s < n; ++s) {
    const std::int8_t hit = spatialHits[s];
    if (hit == kNoBrush) continue;
    const traj::TrajPoint& a = pts[s];
    const traj::TrajPoint& b = pts[s + 1];
    if (b.t < window.x || a.t > window.y) continue;

    segmentsOut[s] = hit;
    recordHighlight(summaryOut, hit, a, b, params.brushCount);
  }
}

std::vector<TrajectoryRef> makeRefs(const traj::TrajectoryDataset& dataset,
                                    std::span<const std::uint32_t> indices) {
  std::vector<TrajectoryRef> refs;
  refs.reserve(indices.size());
  for (std::uint32_t index : indices) {
    refs.push_back({&dataset[index], index});
  }
  return refs;
}

std::vector<TrajectoryRef> makeRefs(
    std::span<const traj::Trajectory> trajectories) {
  std::vector<TrajectoryRef> refs;
  refs.reserve(trajectories.size());
  for (std::size_t i = 0; i < trajectories.size(); ++i) {
    refs.push_back({&trajectories[i], static_cast<std::uint32_t>(i)});
  }
  return refs;
}

QueryResult evaluate(std::span<const TrajectoryRef> trajectories,
                     const BrushGrid& brush, const QueryParams& params) {
  const std::size_t count = trajectories.size();
  QueryResult result;
  result.segmentHighlights.resize(count);
  result.summaries.resize(count);
  result.trajectoriesEvaluated = count;

  auto body = [&](std::size_t i) {
    evaluate(trajectories[i], brush, params, result.segmentHighlights[i],
             result.summaries[i]);
  };

  if (params.parallel) {
    parallelFor(0, count, body, 8);
  } else {
    for (std::size_t i = 0; i < count; ++i) body(i);
  }

  for (std::size_t i = 0; i < count; ++i) {
    const auto& segs = result.segmentHighlights[i];
    result.totalSegmentsEvaluated += segs.size();
    const auto highlighted = static_cast<std::size_t>(
        std::count_if(segs.begin(), segs.end(),
                      [](std::int8_t h) { return h != kNoBrush; }));
    result.totalSegmentsHighlighted += highlighted;
    if (highlighted > 0) ++result.trajectoriesHighlighted;
  }
  return result;
}

}  // namespace svq::core
