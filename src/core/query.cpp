#include "core/query.h"

#include <algorithm>

namespace svq::core {

void evaluateOne(const traj::Trajectory& t, std::uint32_t index,
                 const BrushGrid& brush, const QueryParams& params,
                 std::vector<std::int8_t>& segmentsOut,
                 HighlightSummary& summaryOut) {
  const auto pts = t.points();
  const std::size_t segmentCount = pts.size() >= 2 ? pts.size() - 1 : 0;
  segmentsOut.assign(segmentCount, kNoBrush);

  summaryOut = HighlightSummary{};
  summaryOut.trajectoryIndex = index;
  summaryOut.segmentsPerBrush.assign(params.brushCount, 0);
  summaryOut.durationPerBrush.assign(params.brushCount, 0.0f);
  summaryOut.firstHitTime.assign(params.brushCount, -1.0f);

  // Final-position signal, independent of the temporal window: which brush
  // covers the trajectory's end. The very last sample can sit a step
  // beyond the arena boundary (the exit crossing), where nothing is
  // painted, so probe the last few samples walking backwards.
  for (std::size_t back = 0; back < 3 && back < pts.size(); ++back) {
    const std::int8_t b = brush.brushAt(pts[pts.size() - 1 - back].pos);
    if (b != kNoBrush) {
      summaryOut.lastSegmentBrush = b;
      break;
    }
  }

  const Vec2 window = params.effectiveWindow(t.duration());
  for (std::size_t s = 0; s < segmentCount; ++s) {
    const traj::TrajPoint& a = pts[s];
    const traj::TrajPoint& b = pts[s + 1];
    // Temporal filter: a segment counts when it overlaps the window.
    if (b.t < window.x || a.t > window.y) continue;
    // Spatial test at both endpoints plus the midpoint — at the ~3 mm
    // tracking resolution of the dataset a segment is short relative to
    // any paintable region, so three probes match the painted-pixel
    // semantics of the original application.
    std::int8_t hit = brush.brushAt(a.pos);
    if (hit == kNoBrush) hit = brush.brushAt(b.pos);
    if (hit == kNoBrush) hit = brush.brushAt((a.pos + b.pos) * 0.5f);
    if (hit == kNoBrush) continue;

    segmentsOut[s] = hit;
    const auto brushIdx = static_cast<std::size_t>(hit);
    if (brushIdx < params.brushCount) {
      ++summaryOut.segmentsPerBrush[brushIdx];
      summaryOut.durationPerBrush[brushIdx] += b.t - a.t;
      if (summaryOut.firstHitTime[brushIdx] < 0.0f) {
        summaryOut.firstHitTime[brushIdx] = a.t;
      }
    }
  }
}

namespace {

template <typename GetTraj>
QueryResult evaluateImpl(GetTraj getTraj, std::size_t count,
                         const BrushGrid& brush, const QueryParams& params) {
  QueryResult result;
  result.segmentHighlights.resize(count);
  result.summaries.resize(count);
  result.trajectoriesEvaluated = count;

  auto body = [&](std::size_t i) {
    const auto& [t, index] = getTraj(i);
    evaluateOne(*t, index, brush, params, result.segmentHighlights[i],
                result.summaries[i]);
  };

  if (params.parallel) {
    parallelFor(0, count, body, 8);
  } else {
    for (std::size_t i = 0; i < count; ++i) body(i);
  }

  for (std::size_t i = 0; i < count; ++i) {
    const auto& segs = result.segmentHighlights[i];
    result.totalSegmentsEvaluated += segs.size();
    const auto highlighted = static_cast<std::size_t>(
        std::count_if(segs.begin(), segs.end(),
                      [](std::int8_t h) { return h != kNoBrush; }));
    result.totalSegmentsHighlighted += highlighted;
    if (highlighted > 0) ++result.trajectoriesHighlighted;
  }
  return result;
}

}  // namespace

QueryResult evaluateQuery(const traj::TrajectoryDataset& dataset,
                          std::span<const std::uint32_t> indices,
                          const BrushGrid& brush, const QueryParams& params) {
  return evaluateImpl(
      [&](std::size_t i) {
        return std::pair<const traj::Trajectory*, std::uint32_t>(
            &dataset[indices[i]], indices[i]);
      },
      indices.size(), brush, params);
}

QueryResult evaluateQueryOver(std::span<const traj::Trajectory> trajectories,
                              const BrushGrid& brush,
                              const QueryParams& params) {
  return evaluateImpl(
      [&](std::size_t i) {
        return std::pair<const traj::Trajectory*, std::uint32_t>(
            &trajectories[i], static_cast<std::uint32_t>(i));
      },
      trajectories.size(), brush, params);
}

}  // namespace svq::core
