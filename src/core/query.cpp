#include "core/query.h"

#include <algorithm>

#include "core/querykernel.h"
#include "util/arena.h"

namespace svq::core {

namespace {

/// Window-independent final-position signal: which brush covers the
/// trajectory's end. The very last sample can sit a step beyond the arena
/// boundary (the exit crossing), where nothing is painted, so probe the
/// last few samples walking backwards. Three scalar probes — not worth a
/// kernel launch.
std::int8_t probeLastSegmentBrush(traj::PointsView pts,
                                  const BrushGrid& brush) {
  for (std::size_t back = 0; back < 3 && back < pts.size(); ++back) {
    const std::int8_t b = brush.brushAt(pts.pos(pts.size() - 1 - back));
    if (b != kNoBrush) return b;
  }
  return kNoBrush;
}

/// Merge-loop chunk between cancellation polls; big enough that the poll
/// (one atomic load, plus a clock read under a deadline) never shows up
/// in a profile, small enough that abandoning a million-segment
/// trajectory is prompt.
constexpr std::size_t kCancelChunkSegments = std::size_t{1} << 16;

/// Kernel-side segment classification: spatial[s] for all segments of
/// `pts`, writing into caller-provided storage. Replicates the historical
/// per-segment probe — endpoint a, else endpoint b, else midpoint — by
/// classifying every point once, then every segment midpoint, with the
/// vectorized point-in-brush kernel. The midpoint probe is pure, so
/// evaluating it unconditionally (instead of only on double-miss segments)
/// changes nothing but lets the whole pass run as three dense kernel
/// sweeps over the SoA channels.
///
/// Polls `cancel` between sweeps and per merge chunk; returns false when
/// it stopped early (spatial[] is then partial garbage — discard it).
/// The kernels are pure and the output identical wherever the poll sits,
/// so cancellation never changes completed results, only whether a
/// result completes.
bool classifySegments(traj::PointsView pts, const BrushGridView& grid,
                      std::int8_t* spatial, std::size_t segmentCount,
                      const util::Cancellation& cancel) {
  if (cancel.shouldStop()) return false;
  util::Arena& arena = util::frameArena();
  util::ArenaScope scope(arena);

  std::int8_t* pointBrush = arena.allocate<std::int8_t>(pts.size());
  pointBrushKernel(grid, pts.x, pts.y, pointBrush, pts.size());
  if (cancel.shouldStop()) return false;

  float* midX = arena.allocate<float>(segmentCount);
  float* midY = arena.allocate<float>(segmentCount);
  segmentMidpoints(pts.x, midX, segmentCount);
  segmentMidpoints(pts.y, midY, segmentCount);
  std::int8_t* midBrush = arena.allocate<std::int8_t>(segmentCount);
  pointBrushKernel(grid, midX, midY, midBrush, segmentCount);
  if (cancel.shouldStop()) return false;

  for (std::size_t base = 0; base < segmentCount;
       base += kCancelChunkSegments) {
    if (base != 0 && cancel.shouldStop()) return false;
    const std::size_t end =
        std::min(segmentCount, base + kCancelChunkSegments);
    for (std::size_t s = base; s < end; ++s) {
      std::int8_t hit = pointBrush[s];
      if (hit == kNoBrush) hit = pointBrush[s + 1];
      if (hit == kNoBrush) hit = midBrush[s];
      spatial[s] = hit;
    }
  }
  return true;
}

void initSummary(HighlightSummary& summary, std::uint32_t index,
                 std::size_t brushCount) {
  summary = HighlightSummary{};
  summary.trajectoryIndex = index;
  summary.segmentsPerBrush.assign(brushCount, 0);
  summary.durationPerBrush.assign(brushCount, 0.0f);
  summary.firstHitTime.assign(brushCount, -1.0f);
}

void recordHighlight(HighlightSummary& summary, std::int8_t hit, float tA,
                     float tB, std::size_t brushCount) {
  const auto brushIdx = static_cast<std::size_t>(hit);
  if (brushIdx < brushCount) {
    ++summary.segmentsPerBrush[brushIdx];
    summary.durationPerBrush[brushIdx] += tB - tA;
    if (summary.firstHitTime[brushIdx] < 0.0f) {
      summary.firstHitTime[brushIdx] = tA;
    }
  }
}

}  // namespace

void evaluate(const TrajectoryRef& t, const BrushGrid& brush,
              const QueryParams& params,
              std::vector<std::int8_t>& segmentsOut,
              HighlightSummary& summaryOut) {
  const traj::PointsView pts = t->view();
  const std::size_t segmentCount = pts.size() >= 2 ? pts.size() - 1 : 0;

  util::Arena& arena = util::frameArena();
  util::ArenaScope scope(arena);
  std::int8_t* spatial = arena.allocate<std::int8_t>(segmentCount);
  if (segmentCount > 0) {
    classifySegments(pts, brush.view(), spatial, segmentCount,
                     util::Cancellation::none());
  }

  applyTemporalMask(*t, t.index, {spatial, segmentCount},
                    probeLastSegmentBrush(pts, brush), params, segmentsOut,
                    summaryOut);
}

void classifySpatial(const traj::Trajectory& t, const BrushGrid& brush,
                     std::vector<std::int8_t>& spatialOut,
                     std::int8_t& lastSegmentBrushOut) {
  classifySpatial(t, brush, spatialOut, lastSegmentBrushOut,
                  util::Cancellation::none());
}

bool classifySpatial(const traj::Trajectory& t, const BrushGrid& brush,
                     std::vector<std::int8_t>& spatialOut,
                     std::int8_t& lastSegmentBrushOut,
                     const util::Cancellation& cancel) {
  const traj::PointsView pts = t.view();
  const std::size_t segmentCount = pts.size() >= 2 ? pts.size() - 1 : 0;
  spatialOut.assign(segmentCount, kNoBrush);
  lastSegmentBrushOut = probeLastSegmentBrush(pts, brush);
  if (segmentCount > 0) {
    return classifySegments(pts, brush.view(), spatialOut.data(),
                            segmentCount, cancel);
  }
  return !cancel.shouldStop();
}

void applyTemporalMask(const traj::Trajectory& t, std::uint32_t index,
                       std::span<const std::int8_t> spatialHits,
                       std::int8_t lastSegmentBrush,
                       const QueryParams& params,
                       std::vector<std::int8_t>& segmentsOut,
                       HighlightSummary& summaryOut) {
  const traj::PointsView pts = t.view();
  const std::size_t segmentCount = pts.size() >= 2 ? pts.size() - 1 : 0;
  segmentsOut.assign(segmentCount, kNoBrush);

  initSummary(summaryOut, index, params.brushCount);
  summaryOut.lastSegmentBrush = lastSegmentBrush;

  const Vec2 window = params.effectiveWindow(t.duration());
  const std::size_t n = std::min(segmentCount, spatialHits.size());
  for (std::size_t s = 0; s < n; ++s) {
    const std::int8_t hit = spatialHits[s];
    if (hit == kNoBrush) continue;
    const float tA = pts.time(s);
    const float tB = pts.time(s + 1);
    if (tB < window.x || tA > window.y) continue;

    segmentsOut[s] = hit;
    recordHighlight(summaryOut, hit, tA, tB, params.brushCount);
  }
}

std::vector<TrajectoryRef> makeRefs(const traj::TrajectoryDataset& dataset,
                                    std::span<const std::uint32_t> indices) {
  std::vector<TrajectoryRef> refs;
  refs.reserve(indices.size());
  for (std::uint32_t index : indices) {
    refs.push_back({&dataset[index], index});
  }
  return refs;
}

std::vector<TrajectoryRef> makeRefs(
    std::span<const traj::Trajectory> trajectories) {
  std::vector<TrajectoryRef> refs;
  refs.reserve(trajectories.size());
  for (std::size_t i = 0; i < trajectories.size(); ++i) {
    refs.push_back({&trajectories[i], static_cast<std::uint32_t>(i)});
  }
  return refs;
}

QueryResult evaluate(std::span<const TrajectoryRef> trajectories,
                     const BrushGrid& brush, const QueryParams& params) {
  const std::size_t count = trajectories.size();
  QueryResult result;
  result.segmentHighlights.resize(count);
  result.summaries.resize(count);
  result.trajectoriesEvaluated = count;

  auto body = [&](std::size_t i) {
    evaluate(trajectories[i], brush, params, result.segmentHighlights[i],
             result.summaries[i]);
  };

  if (params.parallel) {
    parallelFor(0, count, body, 8);
  } else {
    for (std::size_t i = 0; i < count; ++i) body(i);
  }

  for (std::size_t i = 0; i < count; ++i) {
    const auto& segs = result.segmentHighlights[i];
    result.totalSegmentsEvaluated += segs.size();
    const auto highlighted = static_cast<std::size_t>(
        std::count_if(segs.begin(), segs.end(),
                      [](std::int8_t h) { return h != kNoBrush; }));
    result.totalSegmentsHighlighted += highlighted;
    if (highlighted > 0) ++result.trajectoriesHighlighted;
  }
  return result;
}

}  // namespace svq::core
