// query.h — the scalable visual query engine.
//
// A visual query = brush mask (where) x temporal window (when), evaluated
// against every displayed trajectory simultaneously. The engine computes,
// per trajectory, which segments are highlighted by which brush — exactly
// the paint-crossing semantics of §IV.C.2: "segments in all currently
// displayed trajectories [are] highlighted when the insect moves over a
// brushed area".
//
// Evaluation is embarrassingly parallel over trajectories and linear in
// the number of samples — this is the property that lets a query "cover"
// 432 cells in interactive time and scale to cluster-level exploration.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/brush.h"
#include "traj/dataset.h"
#include "util/geometry.h"
#include "util/threadpool.h"

namespace svq::core {

/// Per-trajectory digest of a query result — what the analyst "sees" when
/// glancing at a cell: does it light up, in which color, when, for how long.
struct HighlightSummary {
  std::uint32_t trajectoryIndex = 0;
  /// Number of highlighted segments per brush index (size = brush count).
  std::vector<std::uint32_t> segmentsPerBrush;
  /// Total highlighted duration (s) per brush.
  std::vector<float> durationPerBrush;
  /// Time of the first highlighted sample per brush (-1 = never).
  std::vector<float> firstHitTime;
  /// Brush highlighting the trajectory's final segment (kNoBrush if none)
  /// — the "where does the ant end up" signal the Fig. 5 exit-side query
  /// reads off when the analyst narrows the temporal filter to the last
  /// seconds of the experiment.
  std::int8_t lastSegmentBrush = kNoBrush;

  bool anyHighlight() const {
    for (auto n : segmentsPerBrush) {
      if (n > 0) return true;
    }
    return false;
  }
  bool hitByBrush(std::size_t brush) const {
    return brush < segmentsPerBrush.size() && segmentsPerBrush[brush] > 0;
  }
  float highlightedDuration(std::size_t brush) const {
    return brush < durationPerBrush.size() ? durationPerBrush[brush] : 0.0f;
  }
};

/// Full result of evaluating one visual query over a trajectory set.
struct QueryResult {
  /// segmentHighlights[i][s] = brush index highlighting segment s of
  /// trajectory i, or kNoBrush. Sized to trajectory point count - 1.
  std::vector<std::vector<std::int8_t>> segmentHighlights;
  std::vector<HighlightSummary> summaries;
  /// Totals for quick verdicts.
  std::size_t trajectoriesEvaluated = 0;
  std::size_t trajectoriesHighlighted = 0;
  std::size_t totalSegmentsEvaluated = 0;
  std::size_t totalSegmentsHighlighted = 0;
};

/// Engine configuration.
struct QueryParams {
  /// Temporal window [t0, t1]; segments outside are never highlighted.
  Vec2 timeWindow{0.0f, 1e9f};
  /// Optional *relative* window as fractions of each trajectory's own
  /// duration — the way the analyst actually uses the range slider for
  /// exit-side questions ("show the last few seconds of the experiment"),
  /// where trajectories have different lengths. {0.9, 1.0} = final 10%.
  /// Applied in addition to the absolute window when set.
  std::optional<Vec2> relativeWindow;
  /// Number of distinct brushes tracked in summaries.
  std::size_t brushCount = 6;
  /// Evaluate in parallel via the global thread pool.
  bool parallel = true;

  /// The effective absolute window for a trajectory of given duration.
  Vec2 effectiveWindow(float durationS) const {
    Vec2 w = timeWindow;
    if (relativeWindow) {
      w.x = std::max(w.x, relativeWindow->x * durationS);
      w.y = std::min(w.y, relativeWindow->y * durationS);
    }
    return w;
  }
};

/// Evaluates the brush mask against the listed trajectories.
/// `indices` selects dataset trajectories (e.g. the displayed subset);
/// results are ordered like `indices`.
QueryResult evaluateQuery(const traj::TrajectoryDataset& dataset,
                          std::span<const std::uint32_t> indices,
                          const BrushGrid& brush, const QueryParams& params);

/// Evaluates against a plain trajectory array (cluster averages, tests).
QueryResult evaluateQueryOver(std::span<const traj::Trajectory> trajectories,
                              const BrushGrid& brush,
                              const QueryParams& params);

/// Evaluates one trajectory (exposed for unit tests); the summary's
/// trajectoryIndex is set to `index`.
void evaluateOne(const traj::Trajectory& t, std::uint32_t index,
                 const BrushGrid& brush, const QueryParams& params,
                 std::vector<std::int8_t>& segmentsOut,
                 HighlightSummary& summaryOut);

}  // namespace svq::core
