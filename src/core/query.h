// query.h — the scalable visual query engine (stateless surface).
//
// A visual query = brush mask (where) x temporal window (when), evaluated
// against every displayed trajectory simultaneously. The engine computes,
// per trajectory, which segments are highlighted by which brush — exactly
// the paint-crossing semantics of §IV.C.2: "segments in all currently
// displayed trajectories [are] highlighted when the insect moves over a
// brushed area".
//
// Every evaluation flows through ONE code path: a span of TrajectoryRef
// views. Datasets, displayed subsets, cluster averages and single
// trajectories are all just different ways of building that span.
//
// Evaluation is embarrassingly parallel over trajectories and linear in
// the number of samples — this is the property that lets a query "cover"
// 432 cells in interactive time and scale to cluster-level exploration.
// For *incremental* evaluation with caching and dirty-region invalidation
// see core/queryengine.h, which builds on the spatial/temporal factoring
// primitives (classifySpatial / applyTemporalMask) declared here.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/brush.h"
#include "traj/dataset.h"
#include "util/cancel.h"
#include "util/geometry.h"
#include "util/threadpool.h"

namespace svq::core {

/// Per-trajectory digest of a query result — what the analyst "sees" when
/// glancing at a cell: does it light up, in which color, when, for how long.
struct HighlightSummary {
  std::uint32_t trajectoryIndex = 0;
  /// Number of highlighted segments per brush index (size = brush count).
  std::vector<std::uint32_t> segmentsPerBrush;
  /// Total highlighted duration (s) per brush.
  std::vector<float> durationPerBrush;
  /// Time of the first highlighted sample per brush (-1 = never).
  std::vector<float> firstHitTime;
  /// Brush highlighting the trajectory's final segment (kNoBrush if none)
  /// — the "where does the ant end up" signal the Fig. 5 exit-side query
  /// reads off when the analyst narrows the temporal filter to the last
  /// seconds of the experiment.
  std::int8_t lastSegmentBrush = kNoBrush;

  bool anyHighlight() const {
    for (auto n : segmentsPerBrush) {
      if (n > 0) return true;
    }
    return false;
  }
  bool hitByBrush(std::size_t brush) const {
    return brush < segmentsPerBrush.size() && segmentsPerBrush[brush] > 0;
  }
  float highlightedDuration(std::size_t brush) const {
    return brush < durationPerBrush.size() ? durationPerBrush[brush] : 0.0f;
  }
};

/// Full result of evaluating one visual query over a trajectory set.
struct QueryResult {
  /// segmentHighlights[i][s] = brush index highlighting segment s of
  /// trajectory i, or kNoBrush. Sized to trajectory point count - 1.
  std::vector<std::vector<std::int8_t>> segmentHighlights;
  std::vector<HighlightSummary> summaries;
  /// Totals for quick verdicts.
  std::size_t trajectoriesEvaluated = 0;
  std::size_t trajectoriesHighlighted = 0;
  std::size_t totalSegmentsEvaluated = 0;
  std::size_t totalSegmentsHighlighted = 0;
  /// Monotonic stamp set by the incremental engine (0 = one-shot result).
  std::uint64_t generation = 0;
};

/// Engine configuration.
struct QueryParams {
  /// Temporal window [t0, t1]; segments outside are never highlighted.
  Vec2 timeWindow{0.0f, 1e9f};
  /// Optional *relative* window as fractions of each trajectory's own
  /// duration — the way the analyst actually uses the range slider for
  /// exit-side questions ("show the last few seconds of the experiment"),
  /// where trajectories have different lengths. {0.9, 1.0} = final 10%.
  /// Applied in addition to the absolute window when set.
  std::optional<Vec2> relativeWindow;
  /// Number of distinct brushes tracked in summaries.
  std::size_t brushCount = 6;
  /// Evaluate in parallel via the global thread pool.
  bool parallel = true;

  /// The effective absolute window for a trajectory of given duration.
  /// Disjoint absolute/relative windows yield an empty (inverted) window
  /// that matches no segment.
  Vec2 effectiveWindow(float durationS) const {
    Vec2 w = timeWindow;
    if (relativeWindow) {
      w.x = std::max(w.x, relativeWindow->x * durationS);
      w.y = std::min(w.y, relativeWindow->y * durationS);
    }
    return w;
  }
};

/// Lightweight non-owning view of one trajectory to evaluate, tagged with
/// the index reported in its HighlightSummary. This is the unit every
/// query entry point operates on: datasets, cluster averages and single
/// trajectories all become spans of TrajectoryRef.
struct TrajectoryRef {
  const traj::Trajectory* trajectory = nullptr;
  std::uint32_t index = 0;

  const traj::Trajectory& operator*() const { return *trajectory; }
  const traj::Trajectory* operator->() const { return trajectory; }
};

/// Refs for dataset[indices[i]], in `indices` order (e.g. the displayed
/// subset). The dataset must outlive the refs.
std::vector<TrajectoryRef> makeRefs(const traj::TrajectoryDataset& dataset,
                                    std::span<const std::uint32_t> indices);

/// Refs for a plain trajectory array (cluster averages, tests); summary
/// indices are array positions. The array must outlive the refs.
std::vector<TrajectoryRef> makeRefs(
    std::span<const traj::Trajectory> trajectories);

/// Evaluates the brush mask against the referenced trajectories; results
/// are ordered like `trajectories`. The single stateless entry point.
QueryResult evaluate(std::span<const TrajectoryRef> trajectories,
                     const BrushGrid& brush, const QueryParams& params);

/// Evaluates one trajectory through the same code path.
void evaluate(const TrajectoryRef& t, const BrushGrid& brush,
              const QueryParams& params,
              std::vector<std::int8_t>& segmentsOut,
              HighlightSummary& summaryOut);

// --- spatial/temporal factoring -------------------------------------------
// A query's spatial half (which brush covers each segment) is independent
// of the temporal window, and the temporal half (which segments fall in
// the window) is independent of the brush. The incremental engine caches
// the expensive spatial half and re-runs only the cheap temporal mask when
// the analyst drags the range slider.

/// Classifies every segment against the brush, ignoring the temporal
/// window: spatialOut[s] = brush index (or kNoBrush) from the same
/// endpoint+midpoint probes the fused path uses. Also extracts the
/// window-independent last-segment brush.
void classifySpatial(const traj::Trajectory& t, const BrushGrid& brush,
                     std::vector<std::int8_t>& spatialOut,
                     std::int8_t& lastSegmentBrushOut);

/// Cancellable variant: polls `cancel` between the kernel sweeps and per
/// 64Ki-segment merge chunk. Returns false when it stopped early — the
/// outputs are then unspecified and must be discarded (the incremental
/// engine leaves the trajectory marked dirty so the next pass redoes it).
bool classifySpatial(const traj::Trajectory& t, const BrushGrid& brush,
                     std::vector<std::int8_t>& spatialOut,
                     std::int8_t& lastSegmentBrushOut,
                     const util::Cancellation& cancel);

/// Masks a precomputed spatial classification with the temporal window and
/// rebuilds the summary. Equivalent to evaluate() given the same brush.
void applyTemporalMask(const traj::Trajectory& t, std::uint32_t index,
                       std::span<const std::int8_t> spatialHits,
                       std::int8_t lastSegmentBrush,
                       const QueryParams& params,
                       std::vector<std::int8_t>& segmentsOut,
                       HighlightSummary& summaryOut);

}  // namespace svq::core
