#include "core/progressive.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace svq::core {

AnytimeOptions AnytimeOptions::fromEnv() {
  AnytimeOptions options;
  if (const char* raw = std::getenv("SVQ_ANYTIME_BUDGET_MS")) {
    char* end = nullptr;
    const long long ms = std::strtoll(raw, &end, 10);
    if (end != raw && *end == '\0' && ms > 0) {
      options.prepassBudgetUs = static_cast<std::int64_t>(ms) * 1000;
    }
  }
  return options;
}

std::array<std::uint64_t, traj::ShardSummary::kWords> paintTouchMask(
    const BrushGrid& brush, float summaryArenaRadiusCm) {
  std::array<std::uint64_t, traj::ShardSummary::kWords> mask{};
  const BrushGridView view = brush.view();
  if (view.texels == nullptr || view.resolution <= 0) return mask;

  // The mask and the occupancy grid must partition the *same* arena
  // square or the superset guarantee breaks. A mismatch disables pruning
  // entirely (all-ones mask) instead of risking a wrong definitely-out.
  const float tolerance =
      1e-4f * std::max(1.0f, std::abs(summaryArenaRadiusCm));
  if (std::abs(view.arenaRadiusCm - summaryArenaRadiusCm) > tolerance) {
    mask.fill(~0ull);
    return mask;
  }

  constexpr int kDim = traj::ShardSummary::kGridDim;
  const int res = view.resolution;
  for (int ty = 0; ty < res; ++ty) {
    // Cells a texel row/column overlaps: texel t spans the arena fraction
    // [t/res, (t+1)/res), cell c spans [c/kDim, (c+1)/kDim) — integer
    // floor arithmetic, exact for any resolution.
    const int cy0 = ty * kDim / res;
    const int cy1 = ((ty + 1) * kDim - 1) / res;
    const std::int8_t* row = view.texels + static_cast<std::size_t>(ty) * res;
    for (int tx = 0; tx < res; ++tx) {
      if (row[tx] == kNoBrush) continue;
      const int cx0 = tx * kDim / res;
      const int cx1 = ((tx + 1) * kDim - 1) / res;
      for (int cy = cy0; cy <= cy1; ++cy) {
        for (int cx = cx0; cx <= cx1; ++cx) {
          const int bit = cy * kDim + cx;
          mask[static_cast<std::size_t>(bit) / 64] |= 1ull << (bit % 64);
        }
      }
    }
  }
  return mask;
}

ProgressiveClusterQuery::ProgressiveClusterQuery(
    const ShardSomExplorer& explorer, AnytimeOptions options)
    : explorer_(&explorer), options_(options) {
  const traj::ShardClustering& clustering = explorer.clustering();
  const std::vector<std::uint32_t>& displayable =
      explorer.displayableClusters();

  slotOfNode_.assign(clustering.nodeCount(), UINT32_MAX);
  for (std::size_t slot = 0; slot < displayable.size(); ++slot) {
    slotOfNode_[displayable[slot]] = static_cast<std::uint32_t>(slot);
  }

  const traj::ShardStore& store = explorer.store();
  shardBuckets_.resize(store.shardCount());
  for (std::size_t s = 0; s < store.shardCount(); ++s) {
    const traj::ShardInfo& info = store.shardInfo(s);
    auto& buckets = shardBuckets_[s];
    for (std::uint32_t i = 0; i < info.trajectoryCount; ++i) {
      const std::uint64_t g = info.firstGlobalIndex + i;
      if (g >= clustering.assignment.size()) break;
      const std::uint32_t node = clustering.assignment[g];
      if (node == traj::ShardClustering::kUnassigned ||
          node >= slotOfNode_.size()) {
        continue;
      }
      const std::uint32_t slot = slotOfNode_[node];
      if (slot == UINT32_MAX) continue;
      auto it = std::find_if(buckets.begin(), buckets.end(),
                             [slot](const auto& b) { return b.first == slot; });
      if (it == buckets.end()) {
        buckets.emplace_back(slot, 1u);
      } else {
        ++it->second;
      }
    }
  }
}

void ProgressiveClusterQuery::begin(const BrushGrid& brush,
                                    const QueryParams& params) {
  brush_ = brush;
  params_ = params;
  active_ = true;
  pending_.clear();
  cursor_ = 0;
  prunedShards_ = 0;
  refinedShards_ = 0;
  lostMembers_ = 0;

  // First pixel: the prototypes (one per displayable cluster) are small
  // and evaluated exactly, inside the budget by construction.
  prototypes_ = explorer_->queryClusters(brush_, params_);

  const traj::ShardClustering& clustering = explorer_->clustering();
  const std::vector<std::uint32_t>& displayable =
      explorer_->displayableClusters();
  estimates_.assign(displayable.size(), {});
  for (std::size_t slot = 0; slot < displayable.size(); ++slot) {
    ClusterEstimate& est = estimates_[slot];
    est.node = displayable[slot];
    est.members = clustering.members[est.node].size();
    est.prototypeHit = slot < prototypes_.summaries.size() &&
                       prototypes_.summaries[slot].anyHighlight();
  }

  // Aggregate pre-pass: classify every shard against the paint-touch
  // mask and the absolute time window, under the latency budget. v3
  // stores answer summary() from the footer (no IO); v2 stores pay one
  // lazy rebuild per shard, which is exactly the work the deadline
  // bounds — expiry leaves the rest uncertain, never wrong.
  const traj::ShardStore& store = explorer_->store();
  const auto mask = paintTouchMask(brush_, store.arena().radiusCm);
  const util::Deadline deadline =
      util::Deadline::after(options_.prepassBudgetUs, options_.clock);

  for (std::size_t s = 0; s < store.shardCount(); ++s) {
    std::uint32_t assigned = 0;
    for (const auto& [slot, count] : shardBuckets_[s]) assigned += count;
    if (assigned == 0) continue;  // nothing displayed lives here

    if (!deadline.expired()) {
      if (const auto summary = store.summary(s)) {
        const bool temporalOut =
            !params_.relativeWindow && (params_.timeWindow.y < summary->tMin ||
                                        params_.timeWindow.x > summary->tMax);
        if (temporalOut || !summary->intersects(mask)) {
          ++prunedShards_;
          resolveShardEmpty(s);
          continue;
        }
      }
    }
    pending_.push_back(
        {static_cast<std::uint32_t>(s), assigned});
  }

  // Largest population first: each refinement step retires the most
  // uncertainty it can. Shard index breaks ties so the order is total.
  std::sort(pending_.begin(), pending_.end(),
            [](const ShardWork& a, const ShardWork& b) {
              if (a.assignedMembers != b.assignedMembers) {
                return a.assignedMembers > b.assignedMembers;
              }
              return a.shard < b.shard;
            });
}

std::size_t ProgressiveClusterQuery::refineStep(
    std::size_t maxShards, const util::Cancellation& cancel) {
  if (!active_) return 0;
  std::size_t done = 0;
  while (done < maxShards && cursor_ < pending_.size()) {
    if (done > 0 && cancel.shouldStop()) break;
    resolveShardExact(pending_[cursor_].shard);
    ++cursor_;
    ++refinedShards_;
    ++done;
  }
  return done;
}

void ProgressiveClusterQuery::resolveShardExact(std::size_t shard) {
  const traj::ShardStore& store = explorer_->store();
  const auto& buckets = shardBuckets_[shard];
  const std::shared_ptr<const traj::TrajectoryDataset> ds = store.shard(shard);
  if (!ds) {
    // Quarantined at refinement time: its members can never be evaluated.
    // Count them refined with zero hits so the query still converges;
    // lostMembers() surfaces the gap. Quarantine is deterministic for a
    // given file + fault seed, so this stays bit-identical too.
    for (const auto& [slot, count] : buckets) {
      estimates_[slot].refinedMembers += count;
      lostMembers_ += count;
    }
    return;
  }

  const traj::ShardClustering& clustering = explorer_->clustering();
  const std::uint64_t first = store.shardInfo(shard).firstGlobalIndex;
  std::vector<std::uint32_t> locals;
  std::vector<std::uint32_t> localSlot;
  locals.reserve(ds->size());
  localSlot.reserve(ds->size());
  for (std::uint32_t i = 0; i < ds->size(); ++i) {
    const std::uint64_t g = first + i;
    if (g >= clustering.assignment.size()) break;
    const std::uint32_t node = clustering.assignment[g];
    if (node == traj::ShardClustering::kUnassigned ||
        node >= slotOfNode_.size()) {
      continue;
    }
    const std::uint32_t slot = slotOfNode_[node];
    if (slot == UINT32_MAX) continue;
    locals.push_back(i);
    localSlot.push_back(slot);
  }

  // Per-trajectory verdicts are independent, so folding them as integer
  // sums is order- and thread-count-invariant.
  const std::vector<TrajectoryRef> refs = makeRefs(*ds, locals);
  const QueryResult result = evaluate(refs, brush_, params_);
  for (std::size_t k = 0; k < refs.size(); ++k) {
    ClusterEstimate& est = estimates_[localSlot[k]];
    ++est.refinedMembers;
    if (k < result.summaries.size() && result.summaries[k].anyHighlight()) {
      ++est.exactHits;
    }
  }
}

void ProgressiveClusterQuery::resolveShardEmpty(std::size_t shard) {
  for (const auto& [slot, count] : shardBuckets_[shard]) {
    estimates_[slot].refinedMembers += count;
  }
}

double ProgressiveClusterQuery::coverage() const {
  std::uint64_t members = 0;
  std::uint64_t refined = 0;
  for (const ClusterEstimate& est : estimates_) {
    members += est.members;
    refined += est.refinedMembers;
  }
  return members == 0 ? 1.0
                      : static_cast<double>(refined) /
                            static_cast<double>(members);
}

std::vector<ClusterEstimate> ProgressiveClusterQuery::exactReference(
    const ShardSomExplorer& explorer, const BrushGrid& brush,
    const QueryParams& params) {
  const traj::ShardClustering& clustering = explorer.clustering();
  const std::vector<std::uint32_t>& displayable =
      explorer.displayableClusters();
  const QueryResult prototypes = explorer.queryClusters(brush, params);

  std::vector<ClusterEstimate> reference(displayable.size());
  for (std::size_t slot = 0; slot < displayable.size(); ++slot) {
    ClusterEstimate& est = reference[slot];
    est.node = displayable[slot];
    est.members = clustering.members[est.node].size();
    est.refinedMembers = est.members;
    est.prototypeHit = slot < prototypes.summaries.size() &&
                       prototypes.summaries[slot].anyHighlight();
    const QueryResult exact =
        explorer.queryClusterMembers(est.node, brush, params);
    for (const HighlightSummary& summary : exact.summaries) {
      if (summary.anyHighlight()) ++est.exactHits;
    }
  }
  return reference;
}

}  // namespace svq::core
