// context.h — the immutable state shared by every session of one node.
//
// The old single-explorer façade bundled two very different
// kinds of state: the heavyweight, read-only world every explorer sees
// the same way (dataset, wall geometry, layout presets) and the cheap,
// per-explorer interaction state (brush, groups, window, stereo knobs).
// A session service multiplexing hundreds of tenants over one store
// needs that split explicit:
//
//   * SharedContext — everything immutable after construction, built
//     once and shared by shared_ptr<const ...>: the dataset (borrowed),
//     the wall spec, the layout presets with their *precomputed*
//     SmallMultipleLayouts, the default (group-less) cell assignment per
//     preset, optionally the out-of-core shard store and trained SOM,
//     and the one mutable-but-internally-synchronized member: the
//     cross-session cell render cache (render/sharedcache.h).
//   * Session (session.h) — per-tenant copy-on-write state + apply().
//
// Precomputing layouts and default assignments here is what makes
// Session construction and layout churn O(state), not O(dataset): a
// fresh tenant with no groups borrows the context's assignment instead
// of recomputing its own.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/groups.h"
#include "core/layout.h"
#include "render/sharedcache.h"
#include "traj/dataset.h"
#include "wall/wall.h"

namespace svq::traj {
class ShardStore;
class Som;
}  // namespace svq::traj

namespace svq::core {

class ShardSomExplorer;

/// Immutable shared world for N concurrent sessions. Thread-safe by
/// construction: every accessor is const and the only mutable member
/// (the render cache) synchronizes internally.
class SharedContext {
 public:
  /// Index into paperLayoutPresets() every new session starts on (24x6).
  static constexpr std::size_t kDefaultPreset = 1;

  struct Options {
    /// Budget of the cross-session cell render cache.
    std::size_t renderCacheBytes = 512ull << 20;
    /// Optional out-of-core backing store the dataset was drilled from.
    std::shared_ptr<traj::ShardStore> shardStore;
    /// Optional trained SOM for per-session drill-down.
    std::shared_ptr<const traj::Som> som;
    /// Optional clustered shard-store explorer. When set, sessions run in
    /// *progressive* mode: buildScene() shows the anytime cluster
    /// overview (core/progressive.h) instead of the per-trajectory grid,
    /// and SessionService::refine() drains the uncertainty.
    std::shared_ptr<const ShardSomExplorer> shardExplorer;

    /// Reads SVQ_SHARED_CACHE_MB from the environment.
    static Options fromEnv();
  };

  /// Builds the shared world: layout presets, one SmallMultipleLayout and
  /// one default (group-less) assignment per preset. The dataset is
  /// borrowed and must outlive the context.
  static std::shared_ptr<const SharedContext> create(
      const traj::TrajectoryDataset& dataset, wall::WallSpec wallSpec);
  static std::shared_ptr<const SharedContext> create(
      const traj::TrajectoryDataset& dataset, wall::WallSpec wallSpec,
      Options options);

  const traj::TrajectoryDataset& dataset() const { return *dataset_; }
  const wall::WallSpec& wallSpec() const { return wallSpec_; }
  const std::vector<LayoutConfig>& layoutPresets() const { return presets_; }

  /// Precomputed layout of preset `preset` (index into layoutPresets()).
  const SmallMultipleLayout& layout(std::size_t preset) const {
    return layouts_[preset];
  }

  /// The cell assignment a session with no groups defined uses — shared,
  /// so group-less sessions (the common case at admission) never compute
  /// or store their own.
  std::shared_ptr<const GroupAssignment> defaultAssignment(
      std::size_t preset) const {
    return defaultAssignments_[preset];
  }

  /// Cross-session cell render cache. Internally synchronized; pipelines
  /// of any session may use it concurrently.
  render::SharedCellCache& renderCache() const { return renderCache_; }

  /// Optional attachments (may be null).
  const std::shared_ptr<traj::ShardStore>& shardStore() const {
    return shardStore_;
  }
  const std::shared_ptr<const traj::Som>& som() const { return som_; }
  const std::shared_ptr<const ShardSomExplorer>& shardExplorer() const {
    return shardExplorer_;
  }

 private:
  SharedContext(const traj::TrajectoryDataset& dataset, wall::WallSpec wallSpec,
                Options options);

  const traj::TrajectoryDataset* dataset_;
  wall::WallSpec wallSpec_;
  std::vector<LayoutConfig> presets_;
  std::vector<SmallMultipleLayout> layouts_;  ///< index-aligned with presets_
  std::vector<std::shared_ptr<const GroupAssignment>> defaultAssignments_;
  std::shared_ptr<traj::ShardStore> shardStore_;
  std::shared_ptr<const traj::Som> som_;
  std::shared_ptr<const ShardSomExplorer> shardExplorer_;
  mutable render::SharedCellCache renderCache_;
};

}  // namespace svq::core
