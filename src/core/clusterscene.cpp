#include "core/clusterscene.h"

#include <algorithm>
#include <cmath>

namespace svq::core {

LayoutConfig clusterGridFor(std::size_t cellCount,
                            const wall::WallSpec& wallSpec) {
  LayoutConfig config;
  if (cellCount == 0) {
    config.cellsX = 1;
    config.cellsY = 1;
    return config;
  }
  const float aspect = static_cast<float>(wallSpec.totalPxW()) /
                       static_cast<float>(std::max(1, wallSpec.totalPxH()));
  // cells ~= x * y with x/y ~= aspect.
  int y = std::max(1, static_cast<int>(std::floor(std::sqrt(
                       static_cast<float>(cellCount) / aspect))));
  int x = static_cast<int>(
      (cellCount + static_cast<std::size_t>(y) - 1) /
      static_cast<std::size_t>(y));
  // Ensure capacity.
  while (static_cast<std::size_t>(x) * static_cast<std::size_t>(y) <
         cellCount) {
    ++x;
  }
  config.cellsX = x;
  config.cellsY = y;
  return config;
}

namespace {

render::SceneModel sceneSkeleton(const ClusterSceneOptions& options,
                                 float arenaRadiusCm) {
  render::SceneModel scene;
  scene.arenaRadiusCm = arenaRadiusCm;
  scene.stereo = options.stereo;
  scene.timeWindow = options.timeWindow;
  return scene;
}

// Shared overview-population path: out.averagesDataset, out.cellToNode
// and out.coverage are filled by the caller; memberCounts[i] is the
// member count of cell i. When coverage < 1 (quarantined shards) and
// markPartialData is on, every cell gets a partial-data marker.
void populateOverview(ClusterOverviewScene& out,
                      const std::vector<std::size_t>& memberCounts,
                      float arenaRadiusCm, const wall::WallSpec& wallSpec,
                      const BrushGrid* brush,
                      const ClusterSceneOptions& options) {
  const bool partial = options.markPartialData && out.coverage < 1.0;
  const std::size_t cells = out.cellToNode.size();
  const LayoutConfig config = clusterGridFor(cells, wallSpec);
  const SmallMultipleLayout layout =
      SmallMultipleLayout::compute(wallSpec, config);

  QueryResult query;
  if (brush != nullptr) {
    QueryParams params;
    params.timeWindow = options.timeWindow;
    query = evaluate(makeRefs(out.averagesDataset.all()), *brush, params);
  }

  out.scene = sceneSkeleton(options, arenaRadiusCm);

  std::size_t maxMembers = 1;
  for (std::size_t members : memberCounts) {
    maxMembers = std::max(maxMembers, members);
  }
  for (std::size_t i = 0; i < cells; ++i) {
    render::CellView cell;
    cell.trajectoryIndex = static_cast<std::uint32_t>(i);
    const int cx = static_cast<int>(i) % config.cellsX;
    const int cy = static_cast<int>(i) / config.cellsX;
    cell.rect = layout.cellRect(cx, cy);
    const std::size_t members = memberCounts[i];
    if (options.tintBySize) {
      const float u = static_cast<float>(members) /
                      static_cast<float>(maxMembers);
      cell.background =
          render::Color::lerp(render::colors::kDarkBg,
                              render::Color{60, 60, 90, 255}, u);
    }
    if (options.labelCounts) {
      cell.label = "N=" + std::to_string(members);
    }
    if (partial) {
      // Degraded store: the member count is a lower bound, say so.
      cell.label += cell.label.empty() ? "partial" : " *";
      cell.background = render::Color::lerp(
          cell.background, render::Color{96, 64, 24, 255}, 0.35f);
    }
    if (brush != nullptr && i < query.segmentHighlights.size()) {
      cell.segmentHighlights = query.segmentHighlights[i];
    }
    out.scene.cells.push_back(std::move(cell));
  }
}

}  // namespace

ClusterOverviewScene buildClusterOverview(const SomExplorer& explorer,
                                          const wall::WallSpec& wallSpec,
                                          const BrushGrid* brush,
                                          const ClusterSceneOptions& options) {
  ClusterOverviewScene out;
  const auto& nodes = explorer.displayableClusters();
  out.cellToNode = nodes;

  out.averagesDataset =
      traj::TrajectoryDataset(explorer.dataset().arena());
  for (const traj::Trajectory& avg : explorer.clusterAverages()) {
    out.averagesDataset.add(avg);
  }

  std::vector<std::size_t> memberCounts;
  memberCounts.reserve(nodes.size());
  for (std::uint32_t node : nodes) {
    memberCounts.push_back(explorer.clustering().members[node].size());
  }
  populateOverview(out, memberCounts, explorer.dataset().arena().radiusCm,
                   wallSpec, brush, options);
  return out;
}

ClusterOverviewScene buildClusterOverview(const ShardSomExplorer& explorer,
                                          const wall::WallSpec& wallSpec,
                                          const BrushGrid* brush,
                                          const ClusterSceneOptions& options) {
  ClusterOverviewScene out;
  const auto& nodes = explorer.displayableClusters();
  out.cellToNode = nodes;
  out.coverage = explorer.coverage();

  out.averagesDataset = traj::TrajectoryDataset(explorer.store().arena());
  for (const traj::Trajectory& avg : explorer.clusterAverages()) {
    out.averagesDataset.add(avg);
  }

  std::vector<std::size_t> memberCounts;
  memberCounts.reserve(nodes.size());
  for (std::uint32_t node : nodes) {
    memberCounts.push_back(explorer.clustering().members[node].size());
  }
  populateOverview(out, memberCounts, explorer.store().arena().radiusCm,
                   wallSpec, brush, options);
  return out;
}

ClusterOverviewScene buildProgressiveOverview(
    const ShardSomExplorer& explorer, const QueryResult& prototypes,
    std::span<const ClusterEstimate> estimates,
    const wall::WallSpec& wallSpec, const ClusterSceneOptions& options) {
  ClusterOverviewScene out;
  out.cellToNode = explorer.displayableClusters();
  out.coverage = explorer.coverage();

  out.averagesDataset = traj::TrajectoryDataset(explorer.store().arena());
  for (const traj::Trajectory& avg : explorer.clusterAverages()) {
    out.averagesDataset.add(avg);
  }

  const bool partial = options.markPartialData && out.coverage < 1.0;
  const std::size_t cells = out.cellToNode.size();
  const LayoutConfig config = clusterGridFor(cells, wallSpec);
  const SmallMultipleLayout layout =
      SmallMultipleLayout::compute(wallSpec, config);

  out.scene = sceneSkeleton(options, explorer.store().arena().radiusCm);

  std::uint64_t maxMembers = 1;
  for (const ClusterEstimate& est : estimates) {
    maxMembers = std::max(maxMembers, est.members);
  }
  for (std::size_t i = 0; i < cells; ++i) {
    render::CellView cell;
    cell.trajectoryIndex = static_cast<std::uint32_t>(i);
    const int cx = static_cast<int>(i) % config.cellsX;
    const int cy = static_cast<int>(i) / config.cellsX;
    cell.rect = layout.cellRect(cx, cy);
    const ClusterEstimate est =
        i < estimates.size() ? estimates[i] : ClusterEstimate{};
    if (options.tintBySize) {
      const float u = static_cast<float>(est.members) /
                      static_cast<float>(maxMembers);
      cell.background =
          render::Color::lerp(render::colors::kDarkBg,
                              render::Color{60, 60, 90, 255}, u);
    }
    if (options.labelCounts) {
      // "hit=" is an exact member hit count; "hit~" is the anytime
      // estimate (exact over refined members, prototype-extrapolated over
      // the rest). A converged cluster always prints "hit=" — the label
      // (and so the cell hash) of a converged cell is indistinguishable
      // from the from-scratch exact one.
      cell.label = "N=" + std::to_string(est.members) +
                   (est.converged() ? " hit=" : " hit~") +
                   std::to_string(est.estimatedHits());
    }
    if (partial) {
      cell.label += cell.label.empty() ? "partial" : " *";
      cell.background = render::Color::lerp(
          cell.background, render::Color{96, 64, 24, 255}, 0.35f);
    }
    if (i < prototypes.segmentHighlights.size()) {
      cell.segmentHighlights = prototypes.segmentHighlights[i];
    }
    cell.coverage = static_cast<float>(est.coverage());
    out.scene.cells.push_back(std::move(cell));
  }
  return out;
}

ClusterOverviewScene buildProgressiveOverview(
    const ProgressiveClusterQuery& query, const wall::WallSpec& wallSpec,
    const ClusterSceneOptions& options) {
  return buildProgressiveOverview(query.explorer(), query.prototypeResult(),
                                  query.estimates(), wallSpec, options);
}

render::SceneModel buildClusterDrillDown(const SomExplorer& explorer,
                                         std::uint32_t nodeIndex,
                                         const wall::WallSpec& wallSpec,
                                         const BrushGrid* brush,
                                         const ClusterSceneOptions& options) {
  const auto members = explorer.drillDown(nodeIndex);
  const LayoutConfig config = clusterGridFor(members.size(), wallSpec);
  const SmallMultipleLayout layout =
      SmallMultipleLayout::compute(wallSpec, config);

  QueryResult query;
  if (brush != nullptr) {
    QueryParams params;
    params.timeWindow = options.timeWindow;
    query = evaluate(makeRefs(explorer.dataset(), members), *brush, params);
  }

  render::SceneModel scene =
      sceneSkeleton(options, explorer.dataset().arena().radiusCm);
  for (std::size_t i = 0; i < members.size(); ++i) {
    render::CellView cell;
    cell.trajectoryIndex = members[i];
    const int cx = static_cast<int>(i) % config.cellsX;
    const int cy = static_cast<int>(i) / config.cellsX;
    cell.rect = layout.cellRect(cx, cy);
    if (brush != nullptr && i < query.segmentHighlights.size()) {
      cell.segmentHighlights = query.segmentHighlights[i];
    }
    scene.cells.push_back(std::move(cell));
  }
  return scene;
}

ClusterDrillDownScene buildClusterDrillDown(const ShardSomExplorer& explorer,
                                            std::uint32_t nodeIndex,
                                            const wall::WallSpec& wallSpec,
                                            const BrushGrid* brush,
                                            const ClusterSceneOptions& options) {
  ClusterDrillDownScene out;
  out.cellToGlobalIndex = explorer.drillDown(nodeIndex);
  out.membersDataset = explorer.materializeCluster(nodeIndex);
  out.coverage = explorer.coverage();

  const LayoutConfig config =
      clusterGridFor(out.membersDataset.size(), wallSpec);
  const SmallMultipleLayout layout =
      SmallMultipleLayout::compute(wallSpec, config);

  QueryResult query;
  if (brush != nullptr) {
    QueryParams params;
    params.timeWindow = options.timeWindow;
    query = evaluate(makeRefs(out.membersDataset.all()), *brush, params);
  }

  out.scene = sceneSkeleton(options, explorer.store().arena().radiusCm);
  for (std::size_t i = 0; i < out.membersDataset.size(); ++i) {
    render::CellView cell;
    cell.trajectoryIndex = static_cast<std::uint32_t>(i);
    const int cx = static_cast<int>(i) % config.cellsX;
    const int cy = static_cast<int>(i) / config.cellsX;
    cell.rect = layout.cellRect(cx, cy);
    if (brush != nullptr && i < query.segmentHighlights.size()) {
      cell.segmentHighlights = query.segmentHighlights[i];
    }
    out.scene.cells.push_back(std::move(cell));
  }
  return out;
}

}  // namespace svq::core
