#include "core/querykernel.h"

#include <cmath>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SVQ_X86 1
#endif

namespace svq::core {

void pointBrushScalar(const BrushGridView& grid, const float* x,
                      const float* y, std::int8_t* out, std::size_t n) {
  const float radius = grid.arenaRadiusCm;
  const float texel = grid.texelSizeCm;
  const int res = grid.resolution;
  for (std::size_t i = 0; i < n; ++i) {
    const int tx = static_cast<int>(std::floor((x[i] + radius) / texel));
    const int ty = static_cast<int>(std::floor((y[i] + radius) / texel));
    out[i] = (tx < 0 || ty < 0 || tx >= res || ty >= res)
                 ? kNoBrush
                 : grid.texels[static_cast<std::size_t>(ty) *
                                   static_cast<std::size_t>(res) +
                               static_cast<std::size_t>(tx)];
  }
}

#ifdef SVQ_X86

namespace {

/// Byte fetch for one lane after the vector index computation. Bounds are
/// checked per lane exactly like BrushGrid::brushAt — including lanes whose
/// float→int conversion saturated out of range.
inline std::int8_t fetchTexel(const BrushGridView& grid, int tx, int ty) {
  if (tx < 0 || ty < 0 || tx >= grid.resolution || ty >= grid.resolution) {
    return kNoBrush;
  }
  return grid.texels[static_cast<std::size_t>(ty) *
                         static_cast<std::size_t>(grid.resolution) +
                     static_cast<std::size_t>(tx)];
}

/// floor() for SSE2, which has no roundps: truncate, then subtract 1 where
/// truncation rounded up (negative non-integral inputs). Saturated lanes
/// land out of the grid's [0, res) range either way, matching scalar.
inline __m128i floorToInt32Sse2(__m128 v) {
  const __m128i trunc = _mm_cvttps_epi32(v);
  const __m128 truncF = _mm_cvtepi32_ps(trunc);
  // cmpgt mask is all-ones (== -1) where trunc > v, so adding it floors.
  return _mm_add_epi32(trunc, _mm_castps_si128(_mm_cmpgt_ps(truncF, v)));
}

}  // namespace

void pointBrushSse2(const BrushGridView& grid, const float* x, const float* y,
                    std::int8_t* out, std::size_t n) {
  const __m128 radius = _mm_set1_ps(grid.arenaRadiusCm);
  const __m128 texel = _mm_set1_ps(grid.texelSizeCm);
  alignas(16) int tx[4];
  alignas(16) int ty[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 qx =
        _mm_div_ps(_mm_add_ps(_mm_loadu_ps(x + i), radius), texel);
    const __m128 qy =
        _mm_div_ps(_mm_add_ps(_mm_loadu_ps(y + i), radius), texel);
    _mm_store_si128(reinterpret_cast<__m128i*>(tx), floorToInt32Sse2(qx));
    _mm_store_si128(reinterpret_cast<__m128i*>(ty), floorToInt32Sse2(qy));
    for (int l = 0; l < 4; ++l) out[i + l] = fetchTexel(grid, tx[l], ty[l]);
  }
  if (i < n) pointBrushScalar(grid, x + i, y + i, out + i, n - i);
}

__attribute__((target("avx2")))
void pointBrushAvx2(const BrushGridView& grid, const float* x, const float* y,
                    std::int8_t* out, std::size_t n) {
  if (grid.resolution <= 0) {
    pointBrushScalar(grid, x, y, out, n);
    return;
  }
  const __m256 radius = _mm256_set1_ps(grid.arenaRadiusCm);
  const __m256 texel = _mm256_set1_ps(grid.texelSizeCm);
  const __m256i res = _mm256_set1_epi32(grid.resolution);
  const __m256i minusOne = _mm256_set1_epi32(-1);
  alignas(32) int idx[8];
  alignas(32) int valid[8];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 qx =
        _mm256_div_ps(_mm256_add_ps(_mm256_loadu_ps(x + i), radius), texel);
    const __m256 qy =
        _mm256_div_ps(_mm256_add_ps(_mm256_loadu_ps(y + i), radius), texel);
    // floor_ps yields an integral float, so truncation converts exactly;
    // out-of-range lanes saturate to INT_MIN and fail the bounds mask
    // below exactly like the scalar range check.
    const __m256i tx = _mm256_cvttps_epi32(_mm256_floor_ps(qx));
    const __m256i ty = _mm256_cvttps_epi32(_mm256_floor_ps(qy));
    // ok[l] = all-ones iff 0 <= tx,ty < res (the scalar bounds check).
    __m256i ok = _mm256_and_si256(_mm256_cmpgt_epi32(tx, minusOne),
                                  _mm256_cmpgt_epi32(ty, minusOne));
    ok = _mm256_and_si256(ok, _mm256_cmpgt_epi32(res, tx));
    ok = _mm256_and_si256(ok, _mm256_cmpgt_epi32(res, ty));
    // Linear index, zeroed on invalid lanes so the byte fetch below is
    // always in-bounds (the grid has res*res >= 1 texels).
    const __m256i lin = _mm256_add_epi32(_mm256_mullo_epi32(ty, res), tx);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx),
                       _mm256_and_si256(lin, ok));
    _mm256_store_si256(reinterpret_cast<__m256i*>(valid), ok);
    for (int l = 0; l < 8; ++l) {
      // Branchless select: valid lanes keep the texel, invalid lanes
      // collapse to all-ones == kNoBrush.
      const int t = grid.texels[static_cast<std::uint32_t>(idx[l])];
      out[i + l] = static_cast<std::int8_t>((t & valid[l]) | ~valid[l]);
    }
  }
  if (i < n) pointBrushScalar(grid, x + i, y + i, out + i, n - i);
}

#else  // !SVQ_X86

void pointBrushSse2(const BrushGridView& grid, const float* x, const float* y,
                    std::int8_t* out, std::size_t n) {
  pointBrushScalar(grid, x, y, out, n);
}

void pointBrushAvx2(const BrushGridView& grid, const float* x, const float* y,
                    std::int8_t* out, std::size_t n) {
  pointBrushScalar(grid, x, y, out, n);
}

#endif  // SVQ_X86

void pointBrushVariant(util::Isa isa, const BrushGridView& grid,
                       const float* x, const float* y, std::int8_t* out,
                       std::size_t n) {
  switch (isa) {
    case util::Isa::kAvx2: pointBrushAvx2(grid, x, y, out, n); return;
    case util::Isa::kSse2: pointBrushSse2(grid, x, y, out, n); return;
    case util::Isa::kScalar: break;
  }
  pointBrushScalar(grid, x, y, out, n);
}

void pointBrushKernel(const BrushGridView& grid, const float* x,
                      const float* y, std::int8_t* out, std::size_t n) {
  pointBrushVariant(util::activeIsa(), grid, x, y, out, n);
}

void segmentMidpoints(const float* c, float* mid, std::size_t nSegments) {
  for (std::size_t s = 0; s < nSegments; ++s) {
    mid[s] = (c[s] + c[s + 1]) * 0.5f;
  }
}

}  // namespace svq::core
