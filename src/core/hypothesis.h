// hypothesis.h — hypotheses as visual queries, with verdicts.
//
// §VI.B's key observation: "in many cases, a query corresponds to a
// hypothesis". A Hypothesis here is the computational form of that
// correspondence: a population (metadata filter), a visual query (brushed
// region + temporal window), and a success criterion over the per-
// trajectory highlight summaries ("a majority of the population's cells
// light up red"). Evaluating one reproduces what the analyst did by
// glancing at the wall; evaluating a battery reproduces the §V.B workflow
// of testing several hypotheses in rapid succession.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/brush.h"
#include "core/query.h"
#include "traj/dataset.h"
#include "traj/filter.h"

namespace svq::core {

/// What counts as a "hit" for one trajectory.
struct HitCriterion {
  /// Brush whose highlight constitutes a hit.
  std::uint8_t brushIndex = 0;
  /// Minimum highlighted duration (s) to count (0 = any touch).
  float minHighlightDurationS = 0.0f;
  /// When set, the *first* highlighted time must be <= this (e.g. "enters
  /// the brushed region early").
  std::optional<float> maxFirstHitTimeS;
  /// When true, the trajectory must *end* inside the brushed region — the
  /// exit-side semantics of Fig. 5 ("trajectories that terminate at the
  /// west side"), which the analyst reads off by narrowing the temporal
  /// filter to the last seconds.
  bool requireEndInBrush = false;

  bool satisfiedBy(const HighlightSummary& s) const;
};

/// A testable hypothesis = population + visual query + criterion.
struct Hypothesis {
  std::string name;
  std::string statement;
  /// Which trajectories the claim is about.
  traj::MetaFilter population;
  /// The visual query: painted regions.
  std::vector<BrushStroke> strokes;
  /// Convenience region painters applied before strokes (optional).
  std::function<void(BrushCanvas&)> paintRegion;
  /// Temporal window of the query.
  Vec2 timeWindow{0.0f, 1e9f};
  HitCriterion criterion;
  /// Support fraction needed for a "supported" verdict (majority default).
  float supportThreshold = 0.5f;
};

/// Outcome of evaluating one hypothesis.
struct HypothesisResult {
  std::string name;
  std::size_t populationSize = 0;
  std::size_t hits = 0;
  float supportFraction = 0.0f;
  bool supported = false;
  /// Support fraction among the *complement* population — the paper's
  /// analyst compares the target group against the others (Fig. 5 shows
  /// all five bins under the same brush).
  float complementSupportFraction = 0.0f;
  /// Query wall-clock cost (seconds) — the "few seconds" claim of §V.B.
  double evaluationSeconds = 0.0;
};

/// Evaluates a hypothesis against a dataset. The brush canvas is built
/// from the hypothesis' strokes/painter; arena size comes from `dataset`.
HypothesisResult evaluateHypothesis(const Hypothesis& h,
                                    const traj::TrajectoryDataset& dataset,
                                    int brushGridResolution = 256);

/// Runs a battery in order (the "rapid succession" workflow); results are
/// in input order.
std::vector<HypothesisResult> evaluateBattery(
    const std::vector<Hypothesis>& battery,
    const traj::TrajectoryDataset& dataset, int brushGridResolution = 256);

// --- the pilot study's concrete hypotheses --------------------------------

/// H1 (Fig. 5): "Ants captured east of the foraging trail exit the arena
/// from the west side." Brush: west half; criterion: red highlight late in
/// the trajectory. Parameterized on sides so all four homing variants of
/// the battery can be generated.
Hypothesis makeHomingHypothesis(traj::CaptureSide capturedSide,
                                traj::ArenaSide exitSideBrushed,
                                float arenaRadiusCm);

/// H3 (§V.B): "Ants that dropped their seed spend the start of the
/// experiment searching the centre." Brush: centre disc; window: the first
/// `windowS` seconds; criterion: highlighted duration >= minDwellS.
Hypothesis makeSeedSearchHypothesis(float arenaRadiusCm, float windowS = 25.0f,
                                    float minDwellS = 12.0f);

/// H2 (§VI.A): "on-trail ants are windier" — not a brush query; checked
/// directly on trajectory statistics. Returns (onTrailMeanSinuosity,
/// offTrailMeanSinuosity, holds).
struct WindinessComparison {
  double onTrailMeanSinuosity = 0.0;
  double offTrailMeanSinuosity = 0.0;
  bool onTrailWindier = false;
};
WindinessComparison compareWindiness(const traj::TrajectoryDataset& dataset);

}  // namespace svq::core
