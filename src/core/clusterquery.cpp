#include "core/clusterquery.h"

#include <algorithm>

namespace svq::core {

SomExplorer::SomExplorer(const traj::TrajectoryDataset& dataset,
                         const traj::SomParams& somParams,
                         const traj::FeatureParams& featureParams)
    : dataset_(&dataset),
      clustering_(traj::clusterDataset(dataset, somParams, featureParams)) {
  for (std::uint32_t node = 0; node < clustering_.nodeCount(); ++node) {
    if (!clustering_.members[node].empty()) displayable_.push_back(node);
  }
}

std::vector<traj::Trajectory> SomExplorer::clusterAverages() const {
  std::vector<traj::Trajectory> out;
  out.reserve(displayable_.size());
  for (std::uint32_t node : displayable_) {
    out.push_back(clustering_.averages[node]);
  }
  return out;
}

QueryResult SomExplorer::queryClusters(const BrushGrid& brush,
                                       const QueryParams& params) const {
  const auto averages = clusterAverages();
  return evaluate(makeRefs(averages), brush, params);
}

std::vector<std::uint32_t> SomExplorer::drillDown(
    std::uint32_t nodeIndex) const {
  if (nodeIndex >= clustering_.nodeCount()) return {};
  return clustering_.members[nodeIndex];
}

QueryResult SomExplorer::queryClusterMembers(std::uint32_t nodeIndex,
                                             const BrushGrid& brush,
                                             const QueryParams& params) const {
  const auto members = drillDown(nodeIndex);
  return evaluate(makeRefs(*dataset_, members), brush, params);
}

float SomExplorer::clusterQueryFidelity(const BrushGrid& brush,
                                        const QueryParams& params) const {
  if (displayable_.empty()) return 1.0f;
  const QueryResult overview = queryClusters(brush, params);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < displayable_.size(); ++i) {
    const bool avgHit = overview.summaries[i].anyHighlight();
    const QueryResult detail =
        queryClusterMembers(displayable_[i], brush, params);
    const std::size_t hits = detail.trajectoriesHighlighted;
    const bool majorityHit = hits * 2 > detail.trajectoriesEvaluated;
    if (avgHit == majorityHit) ++agree;
  }
  return static_cast<float>(agree) / static_cast<float>(displayable_.size());
}

}  // namespace svq::core
