#include "core/clusterquery.h"

#include <algorithm>

namespace svq::core {

SomExplorer::SomExplorer(const traj::TrajectoryDataset& dataset,
                         const traj::SomParams& somParams,
                         const traj::FeatureParams& featureParams)
    : dataset_(&dataset),
      clustering_(traj::clusterDataset(dataset, somParams, featureParams)) {
  for (std::uint32_t node = 0; node < clustering_.nodeCount(); ++node) {
    if (!clustering_.members[node].empty()) displayable_.push_back(node);
  }
}

std::vector<traj::Trajectory> SomExplorer::clusterAverages() const {
  std::vector<traj::Trajectory> out;
  out.reserve(displayable_.size());
  for (std::uint32_t node : displayable_) {
    out.push_back(clustering_.averages[node]);
  }
  return out;
}

QueryResult SomExplorer::queryClusters(const BrushGrid& brush,
                                       const QueryParams& params) const {
  const auto averages = clusterAverages();
  return evaluate(makeRefs(averages), brush, params);
}

std::vector<std::uint32_t> SomExplorer::drillDown(
    std::uint32_t nodeIndex) const {
  if (nodeIndex >= clustering_.nodeCount()) return {};
  return clustering_.members[nodeIndex];
}

QueryResult SomExplorer::queryClusterMembers(std::uint32_t nodeIndex,
                                             const BrushGrid& brush,
                                             const QueryParams& params) const {
  const auto members = drillDown(nodeIndex);
  return evaluate(makeRefs(*dataset_, members), brush, params);
}

ShardSomExplorer::ShardSomExplorer(const traj::ShardStore& store,
                                   const traj::SomParams& somParams,
                                   const traj::FeatureParams& featureParams,
                                   ThreadPool* pool)
    : store_(&store),
      clustering_(
          traj::clusterShardStore(store, somParams, featureParams, pool)) {
  for (std::uint32_t node = 0; node < clustering_.nodeCount(); ++node) {
    if (!clustering_.members[node].empty()) displayable_.push_back(node);
  }
}

std::vector<traj::Trajectory> ShardSomExplorer::clusterAverages() const {
  std::vector<traj::Trajectory> out;
  out.reserve(displayable_.size());
  for (std::uint32_t node : displayable_) {
    out.push_back(clustering_.averages[node]);
  }
  return out;
}

QueryResult ShardSomExplorer::queryClusters(const BrushGrid& brush,
                                            const QueryParams& params) const {
  const auto averages = clusterAverages();
  return evaluate(makeRefs(averages), brush, params);
}

std::vector<std::uint32_t> ShardSomExplorer::drillDown(
    std::uint32_t nodeIndex) const {
  if (nodeIndex >= clustering_.nodeCount()) return {};
  return clustering_.members[nodeIndex];
}

traj::TrajectoryDataset ShardSomExplorer::materializeCluster(
    std::uint32_t nodeIndex) const {
  traj::TrajectoryDataset out(store_->arena());
  const auto members = drillDown(nodeIndex);
  out.reserve(members.size());
  // Members are ascending, so shard loads are sequential: each member
  // shard is fetched once and served from the cache for its run.
  for (std::uint32_t g : members) {
    out.add(store_->trajectory(g));
  }
  return out;
}

QueryResult ShardSomExplorer::queryClusterMembers(
    std::uint32_t nodeIndex, const BrushGrid& brush,
    const QueryParams& params) const {
  const traj::TrajectoryDataset members = materializeCluster(nodeIndex);
  return evaluate(makeRefs(members.all()), brush, params);
}

float SomExplorer::clusterQueryFidelity(const BrushGrid& brush,
                                        const QueryParams& params) const {
  if (displayable_.empty()) return 1.0f;
  const QueryResult overview = queryClusters(brush, params);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < displayable_.size(); ++i) {
    const bool avgHit = overview.summaries[i].anyHighlight();
    const QueryResult detail =
        queryClusterMembers(displayable_[i], brush, params);
    const std::size_t hits = detail.trajectoriesHighlighted;
    const bool majorityHit = hits * 2 > detail.trajectoriesEvaluated;
    if (avgHit == majorityHit) ++agree;
  }
  return static_cast<float>(agree) / static_cast<float>(displayable_.size());
}

}  // namespace svq::core
