#include "core/groups.h"

#include <algorithm>

namespace svq::core {

bool GroupManager::define(const TrajectoryGroup& group, int cellsX,
                          int cellsY) {
  if (group.cellRect.empty() || group.cellRect.x < 0 || group.cellRect.y < 0 ||
      group.cellRect.x + group.cellRect.w > cellsX ||
      group.cellRect.y + group.cellRect.h > cellsY) {
    return false;
  }
  for (const TrajectoryGroup& g : groups_) {
    if (g.id != group.id && g.cellRect.intersects(group.cellRect)) {
      return false;
    }
  }
  if (TrajectoryGroup* existing = find(group.id)) {
    *existing = group;
  } else {
    groups_.push_back(group);
  }
  return true;
}

std::size_t GroupManager::pruneToGrid(int cellsX, int cellsY) {
  return std::erase_if(groups_, [&](const TrajectoryGroup& g) {
    return g.cellRect.empty() || g.cellRect.x < 0 || g.cellRect.y < 0 ||
           g.cellRect.x + g.cellRect.w > cellsX ||
           g.cellRect.y + g.cellRect.h > cellsY;
  });
}

bool GroupManager::remove(std::uint8_t id) {
  const auto n = std::erase_if(
      groups_, [id](const TrajectoryGroup& g) { return g.id == id; });
  return n > 0;
}

TrajectoryGroup* GroupManager::find(std::uint8_t id) {
  for (TrajectoryGroup& g : groups_) {
    if (g.id == id) return &g;
  }
  return nullptr;
}

GroupManager GroupManager::clone() const {
  GroupManager copy;
  // Element-wise vector copy: every group's name, filter and paging state
  // lands in storage owned by the clone.
  copy.groups_ = groups_;
  return copy;
}

bool GroupManager::page(std::uint8_t id, int direction,
                        const traj::TrajectoryDataset& dataset) {
  TrajectoryGroup* g = find(id);
  if (!g) return false;
  const auto matches = dataset.select(
      [g](const traj::Trajectory& t) { return g->filter.matches(t); });
  const auto cap = static_cast<std::uint32_t>(g->capacity());
  if (matches.size() <= cap) {
    g->pageOffset = 0;
    return true;
  }
  const auto maxOffset = static_cast<std::uint32_t>(matches.size()) - cap;
  std::int64_t next = static_cast<std::int64_t>(g->pageOffset) +
                      static_cast<std::int64_t>(direction) * cap;
  next = std::clamp<std::int64_t>(next, 0, maxOffset);
  g->pageOffset = static_cast<std::uint32_t>(next);
  return true;
}

GroupAssignment GroupManager::assign(const traj::TrajectoryDataset& dataset,
                                     int cellsX, int cellsY) const {
  GroupAssignment out;
  out.cellsX = cellsX;
  out.cellsY = cellsY;
  out.cells.assign(
      static_cast<std::size_t>(cellsX) * static_cast<std::size_t>(cellsY),
      CellAssignment{});

  std::vector<char> claimed(dataset.size(), 0);

  auto cellAt = [&](int cx, int cy) -> CellAssignment& {
    return out.cells[static_cast<std::size_t>(cy) *
                         static_cast<std::size_t>(cellsX) +
                     static_cast<std::size_t>(cx)];
  };

  for (const TrajectoryGroup& g : groups_) {
    const auto matches = dataset.select(
        [&g](const traj::Trajectory& t) { return g.filter.matches(t); });
    out.groupMatchCounts.emplace_back(g.id, matches.size());
    for (std::uint32_t idx : matches) claimed[idx] = 1;

    std::size_t next = std::min<std::size_t>(g.pageOffset, matches.size());
    for (int cy = g.cellRect.y; cy < g.cellRect.y + g.cellRect.h; ++cy) {
      for (int cx = g.cellRect.x; cx < g.cellRect.x + g.cellRect.w; ++cx) {
        CellAssignment& cell = cellAt(cx, cy);
        cell.groupId = g.id;
        cell.background = render::groupBackground(g.colorIndex);
        if (next < matches.size()) {
          cell.trajectoryIndex = matches[next++];
          ++out.displayedCount;
        }
      }
    }
  }

  // Fill ungrouped cells with unclaimed trajectories in dataset order.
  std::uint32_t cursor = 0;
  auto nextUnclaimed = [&]() -> std::optional<std::uint32_t> {
    while (cursor < dataset.size() && claimed[cursor]) ++cursor;
    if (cursor >= dataset.size()) return std::nullopt;
    return cursor++;
  };
  for (int cy = 0; cy < cellsY; ++cy) {
    for (int cx = 0; cx < cellsX; ++cx) {
      CellAssignment& cell = cellAt(cx, cy);
      if (cell.groupId) continue;
      if (auto idx = nextUnclaimed()) {
        cell.trajectoryIndex = *idx;
        ++out.displayedCount;
      }
    }
  }
  return out;
}

void defineFigure3Groups(GroupManager& manager, int cellsX, int cellsY) {
  using traj::CaptureSide;
  struct Bin {
    std::uint8_t id;
    const char* name;
    CaptureSide side;
    std::uint8_t colorIndex;
  };
  // Paper Fig. 3 color scheme: blue = on trail, red = west, yellow = east,
  // gray = north, green = south.
  const Bin bins[] = {
      {0, "ON TRAIL", CaptureSide::kOnTrail, 0},
      {1, "WEST", CaptureSide::kWest, 1},
      {2, "EAST", CaptureSide::kEast, 2},
      {3, "NORTH", CaptureSide::kNorth, 3},
      {4, "SOUTH", CaptureSide::kSouth, 4},
  };
  const auto bands = apportion(cellsX, 5);
  int x = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    TrajectoryGroup g;
    g.id = bins[i].id;
    g.name = bins[i].name;
    g.cellRect = RectI{x, 0, bands[i], cellsY};
    g.filter = traj::MetaFilter::bySide(bins[i].side);
    g.colorIndex = bins[i].colorIndex;
    manager.define(g, cellsX, cellsY);
    x += bands[i];
  }
}

}  // namespace svq::core
