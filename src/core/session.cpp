#include "core/session.h"

#include <algorithm>

#include "ui/script.h"

namespace svq::core {

VisualQueryApp::VisualQueryApp(const traj::TrajectoryDataset& dataset,
                               wall::WallSpec wallSpec)
    : dataset_(&dataset),
      wallSpec_(wallSpec),
      presets_(paperLayoutPresets()),
      brushCanvas_(dataset.arena().radiusCm),
      timeWindow_(0.0f, std::max(1.0f, dataset.maxDuration())),
      lastQuery_(std::make_shared<const QueryResult>()) {
  queryEngine_.setBrush(&brushCanvas_.grid());
  recomputeLayout();
}

render::StereoSettings VisualQueryApp::stereoSettings() const {
  render::StereoSettings s;
  stereoControls_.applyTo(s);
  return s;
}

float VisualQueryApp::datasetCoverage() const {
  if (dataset_->empty()) return 0.0f;
  return static_cast<float>(assignment_.displayedCount) /
         static_cast<float>(dataset_->size());
}

void VisualQueryApp::recomputeLayout() {
  layout_ = SmallMultipleLayout::compute(wallSpec_, presets_[activePreset_]);
  recomputeAssignment();
}

void VisualQueryApp::recomputeAssignment() {
  const LayoutConfig& cfg = presets_[activePreset_];
  assignment_ = groups_.assign(*dataset_, cfg.cellsX, cfg.cellsY);
}

bool VisualQueryApp::apply(const ui::Event& event) {
  struct Visitor {
    VisualQueryApp& app;

    bool operator()(const ui::BrushStrokeEvent& e) {
      const AABB2 dirty = app.brushCanvas_.addStroke(BrushStroke{
          static_cast<std::int8_t>(e.brushIndex), e.centerCm, e.radiusCm});
      app.queryEngine_.invalidateRegion(dirty);
      return true;
    }
    bool operator()(const ui::BrushClearEvent& e) {
      const AABB2 dirty = app.brushCanvas_.clear(
          e.brushIndex == 255 ? kNoBrush
                              : static_cast<std::int8_t>(e.brushIndex));
      app.queryEngine_.invalidateRegion(dirty);
      return true;
    }
    bool operator()(const ui::TimeWindowEvent& e) {
      app.timeWindow_.setRange(e.t0, e.t1);
      return true;
    }
    bool operator()(const ui::DepthOffsetEvent& e) {
      app.stereoControls_.depthOffsetCm().set(e.offsetCm);
      return true;
    }
    bool operator()(const ui::TimeScaleEvent& e) {
      app.stereoControls_.timeScaleCmPerS().set(e.cmPerSecond);
      return true;
    }
    bool operator()(const ui::LayoutSwitchEvent& e) {
      if (e.presetIndex >= app.presets_.size()) return false;
      app.activePreset_ = e.presetIndex;
      const LayoutConfig& cfg = app.presets_[app.activePreset_];
      // Groups were validated against the previous grid; any that no
      // longer fit must go before the assignment is recomputed.
      app.groups_.pruneToGrid(cfg.cellsX, cfg.cellsY);
      app.recomputeLayout();
      return true;
    }
    bool operator()(const ui::GroupDefineEvent& e) {
      const LayoutConfig& cfg = app.presets_[app.activePreset_];
      TrajectoryGroup g;
      g.id = e.groupId;
      g.name = e.name;
      g.cellRect = e.cellRect;
      g.filter = e.filter;
      g.colorIndex = e.colorIndex;
      if (!app.groups_.define(g, cfg.cellsX, cfg.cellsY)) return false;
      app.recomputeAssignment();
      return true;
    }
    bool operator()(const ui::GroupClearEvent& e) {
      if (!app.groups_.remove(e.groupId)) return false;
      app.recomputeAssignment();
      return true;
    }
    bool operator()(const ui::PageEvent& e) {
      bool any = false;
      for (const TrajectoryGroup& g : app.groups_.groups()) {
        any |= app.groups_.page(g.id, e.direction, *app.dataset_);
      }
      if (any) app.recomputeAssignment();
      return any;
    }
  };
  return std::visit(Visitor{*this}, event);
}

std::size_t VisualQueryApp::applyScript(const ui::InputScript& script) {
  std::size_t applied = 0;
  script.replay([this, &applied](const ui::TimedEvent& e) {
    if (apply(e.event)) ++applied;
  });
  return applied;
}

render::SceneModel VisualQueryApp::buildScene() {
  ++frameIndex_;
  const LayoutConfig& cfg = presets_[activePreset_];

  // Displayed trajectory indices, in cell order, for the query engine.
  std::vector<std::uint32_t> displayed;
  std::vector<std::size_t> cellOfDisplayed;  // cell index per entry
  displayed.reserve(assignment_.cells.size());
  for (std::size_t ci = 0; ci < assignment_.cells.size(); ++ci) {
    if (assignment_.cells[ci].trajectoryIndex) {
      displayed.push_back(*assignment_.cells[ci].trajectoryIndex);
      cellOfDisplayed.push_back(ci);
    }
  }

  // Keep the engine bound to the displayed set and the canvas grid (the
  // grid pointer only changes if the app object itself was relocated).
  if (displayed != boundDisplayed_) {
    queryEngine_.setTrajectories(*dataset_, displayed);
    boundDisplayed_ = displayed;
  }
  if (queryEngine_.brush() != &brushCanvas_.grid()) {
    queryEngine_.setBrush(&brushCanvas_.grid());
  }
  QueryParams params = queryEngine_.params();
  params.timeWindow = {timeWindow_.lo(), timeWindow_.hi()};
  queryEngine_.setParams(params);

  if (brushCanvas_.empty()) {
    // Nothing painted: skip evaluation entirely (and report an untouched
    // result, preserving the "no query ran" contract).
    lastQuery_ = std::make_shared<const QueryResult>();
  } else {
    lastQuery_ = queryEngine_.evaluate();
  }

  render::SceneModel scene;
  scene.arenaRadiusCm = dataset_->arena().radiusCm;
  scene.timeWindow = {timeWindow_.lo(), timeWindow_.hi()};
  scene.stereo = stereoSettings();
  scene.queryGeneration = lastQuery_->generation;
  scene.cells.reserve(displayed.size());

  for (std::size_t di = 0; di < displayed.size(); ++di) {
    const std::size_t ci = cellOfDisplayed[di];
    const int cx = static_cast<int>(ci) % cfg.cellsX;
    const int cy = static_cast<int>(ci) / cfg.cellsX;
    render::CellView cell;
    cell.trajectoryIndex = displayed[di];
    cell.rect = layout_.cellRect(cx, cy);
    cell.background = assignment_.cells[ci].background;
    if (!brushCanvas_.empty() && di < lastQuery_->segmentHighlights.size()) {
      cell.segmentHighlights = lastQuery_->segmentHighlights[di];
    }
    scene.cells.push_back(std::move(cell));
  }

  // Damage tracking: diff this frame's per-cell content hashes against the
  // previous frame's so render consumers know which cells to repaint.
  std::vector<std::uint64_t> hashes = render::sceneCellHashes(scene);
  lastDamagedCells_.clear();
  if (hashes.size() != lastCellHashes_.size()) {
    lastSceneFullyDamaged_ = true;
  } else {
    lastSceneFullyDamaged_ = false;
    for (std::size_t i = 0; i < hashes.size(); ++i) {
      if (hashes[i] != lastCellHashes_[i]) lastDamagedCells_.push_back(i);
    }
  }
  lastCellHashes_ = std::move(hashes);
  return scene;
}

}  // namespace svq::core
