#include "core/session.h"

#include <algorithm>

#include "ui/script.h"

namespace svq::core {

Session::Session(std::shared_ptr<const SharedContext> context)
    : context_(std::move(context)),
      brush_(std::make_shared<BrushCanvas>(
          context_->dataset().arena().radiusCm)),
      groups_(std::make_shared<GroupManager>()),
      assignment_(context_->defaultAssignment(activePreset_)),
      timeWindow_(0.0f, std::max(1.0f, context_->dataset().maxDuration())),
      queryEngine_(std::make_unique<QueryEngine>()),
      lastQuery_(std::make_shared<const QueryResult>()) {
  if (context_->shardExplorer() != nullptr) {
    progressive_ =
        std::make_unique<ProgressiveState>(*context_->shardExplorer());
  }
}

Session Session::fork() const {
  Session child(context_);
  child.activePreset_ = activePreset_;
  // Share the COW buffers; whoever writes first detaches.
  child.brush_ = brush_;
  child.groups_ = groups_;
  child.assignment_ = assignment_;
  child.timeWindow_ = timeWindow_;
  child.stereoControls_ = stereoControls_;
  child.somFocus_ = somFocus_;
  // child.engineBoundVersion_ is 0: its fresh engine binds (and marks all
  // spatially dirty) on its first buildScene().
  return child;
}

BrushCanvas& Session::mutableBrush() {
  if (brush_.use_count() > 1) {
    brush_ = std::make_shared<BrushCanvas>(brush_->clone());
    ++brushBindVersion_;
  }
  return *brush_;
}

GroupManager& Session::mutableGroups() {
  if (groups_.use_count() > 1) {
    groups_ = std::make_shared<GroupManager>(groups_->clone());
  }
  return *groups_;
}

render::StereoSettings Session::stereoSettings() const {
  render::StereoSettings s;
  stereoControls_.applyTo(s);
  return s;
}

float Session::datasetCoverage() const {
  if (dataset().empty()) return 0.0f;
  return static_cast<float>(assignment_->displayedCount) /
         static_cast<float>(dataset().size());
}

void Session::recomputeAssignment() {
  if (groups_->groups().empty()) {
    // No groups: every group-less session of this context shares one
    // precomputed assignment — admission and layout churn stay O(1).
    assignment_ = context_->defaultAssignment(activePreset_);
    return;
  }
  const LayoutConfig& cfg = context_->layoutPresets()[activePreset_];
  assignment_ = std::make_shared<const GroupAssignment>(
      groups_->assign(dataset(), cfg.cellsX, cfg.cellsY));
}

bool Session::apply(const ui::Event& event) {
  struct Visitor {
    Session& app;

    bool operator()(const ui::BrushStrokeEvent& e) {
      const AABB2 dirty = app.mutableBrush().addStroke(BrushStroke{
          static_cast<std::int8_t>(e.brushIndex), e.centerCm, e.radiusCm});
      app.queryEngine_->invalidateRegion(dirty);
      return true;
    }
    bool operator()(const ui::BrushClearEvent& e) {
      // An empty canvas has nothing to clear — succeed without detaching
      // the COW buffer.
      if (app.brush_->empty()) return true;
      const AABB2 dirty = app.mutableBrush().clear(
          e.brushIndex == 255 ? kNoBrush
                              : static_cast<std::int8_t>(e.brushIndex));
      app.queryEngine_->invalidateRegion(dirty);
      return true;
    }
    bool operator()(const ui::TimeWindowEvent& e) {
      app.timeWindow_.setRange(e.t0, e.t1);
      return true;
    }
    bool operator()(const ui::DepthOffsetEvent& e) {
      app.stereoControls_.depthOffsetCm().set(e.offsetCm);
      return true;
    }
    bool operator()(const ui::TimeScaleEvent& e) {
      app.stereoControls_.timeScaleCmPerS().set(e.cmPerSecond);
      return true;
    }
    bool operator()(const ui::LayoutSwitchEvent& e) {
      if (e.presetIndex >= app.layoutPresets().size()) return false;
      app.activePreset_ = e.presetIndex;
      // Groups were validated against the previous grid; any that no
      // longer fit must go before the assignment is recomputed. (Skip the
      // COW detach when there are no groups to prune.)
      if (!app.groups_->groups().empty()) {
        const LayoutConfig& cfg = app.layoutPresets()[app.activePreset_];
        app.mutableGroups().pruneToGrid(cfg.cellsX, cfg.cellsY);
      }
      app.recomputeAssignment();
      return true;
    }
    bool operator()(const ui::GroupDefineEvent& e) {
      const LayoutConfig& cfg = app.layoutPresets()[app.activePreset_];
      TrajectoryGroup g;
      g.id = e.groupId;
      g.name = e.name;
      g.cellRect = e.cellRect;
      g.filter = e.filter;
      g.colorIndex = e.colorIndex;
      if (!app.mutableGroups().define(g, cfg.cellsX, cfg.cellsY)) {
        return false;
      }
      app.recomputeAssignment();
      return true;
    }
    bool operator()(const ui::GroupClearEvent& e) {
      if (app.groups_->groups().empty()) return false;
      if (!app.mutableGroups().remove(e.groupId)) return false;
      app.recomputeAssignment();
      return true;
    }
    bool operator()(const ui::PageEvent& e) {
      if (app.groups_->groups().empty()) return false;
      GroupManager& gm = app.mutableGroups();
      bool any = false;
      for (const TrajectoryGroup& g : gm.groups()) {
        any |= gm.page(g.id, e.direction, app.dataset());
      }
      if (any) app.recomputeAssignment();
      return any;
    }
  };
  const bool ok = std::visit(Visitor{*this}, event);
  // Brush and window edits invalidate the anytime query; the pre-pass
  // re-runs on the next build or refine. (A no-op clear marks dirty too —
  // one spare pre-pass is cheaper than tracking canvas identity here.)
  if (ok && progressive_ != nullptr &&
      (std::holds_alternative<ui::BrushStrokeEvent>(event) ||
       std::holds_alternative<ui::BrushClearEvent>(event) ||
       std::holds_alternative<ui::TimeWindowEvent>(event))) {
    progressive_->dirty = true;
  }
  return ok;
}

std::size_t Session::applyScript(const ui::InputScript& script) {
  std::size_t applied = 0;
  script.replay([this, &applied](const ui::TimedEvent& e) {
    if (apply(e.event)) ++applied;
  });
  return applied;
}

render::SceneModel Session::buildScene() {
  render::SceneModel out;
  // The no-op cancellation never stops, so the build always completes.
  buildScene(out, util::Cancellation::none());
  return out;
}

bool Session::buildScene(render::SceneModel& out,
                         const util::Cancellation& cancel) {
  if (progressive_ != nullptr) {
    // The anytime path is budget-bounded internally (the pre-pass
    // deadline) and refinement runs in separate refineProgressive()
    // steps, so the build itself always completes.
    (void)cancel;
    return buildProgressiveScene(out);
  }
  const LayoutConfig& cfg = layoutPresets()[activePreset_];
  const SmallMultipleLayout& layout = context_->layout(activePreset_);
  const GroupAssignment& assignment = *assignment_;

  // Displayed trajectory indices, in cell order, for the query engine.
  std::vector<std::uint32_t> displayed;
  std::vector<std::size_t> cellOfDisplayed;  // cell index per entry
  displayed.reserve(assignment.cells.size());
  for (std::size_t ci = 0; ci < assignment.cells.size(); ++ci) {
    if (assignment.cells[ci].trajectoryIndex) {
      displayed.push_back(*assignment.cells[ci].trajectoryIndex);
      cellOfDisplayed.push_back(ci);
    }
  }

  // Keep the engine bound to the displayed set and this session's own
  // brush grid (the grid changes identity on construction and COW
  // detach; brushBindVersion_ tracks exactly those).
  if (displayed != boundDisplayed_) {
    queryEngine_->setTrajectories(dataset(), displayed);
    boundDisplayed_ = displayed;
  }
  if (engineBoundVersion_ != brushBindVersion_) {
    queryEngine_->setBrush(&brush_->grid());
    engineBoundVersion_ = brushBindVersion_;
  }
  QueryParams params = queryEngine_->params();
  params.timeWindow = {timeWindow_.lo(), timeWindow_.hi()};
  queryEngine_->setParams(params);

  if (brush_->empty()) {
    // Nothing painted: skip evaluation entirely (and report an untouched
    // result, preserving the "no query ran" contract).
    lastQuery_ = std::make_shared<const QueryResult>();
  } else {
    auto query = queryEngine_->evaluate(cancel);
    if (!query) {
      // Abandoned mid-evaluation. The engine preserved its dirty-set and
      // published nothing; leave lastQuery_/frameIndex_/damage state
      // untouched so the session is observably "as before the call".
      // (The binding refreshes above are idempotent and stay valid.)
      return false;
    }
    lastQuery_ = std::move(query);
  }
  ++frameIndex_;

  render::SceneModel scene;
  scene.arenaRadiusCm = dataset().arena().radiusCm;
  scene.timeWindow = {timeWindow_.lo(), timeWindow_.hi()};
  scene.stereo = stereoSettings();
  scene.queryGeneration = lastQuery_->generation;
  scene.cells.reserve(displayed.size());

  for (std::size_t di = 0; di < displayed.size(); ++di) {
    const std::size_t ci = cellOfDisplayed[di];
    const int cx = static_cast<int>(ci) % cfg.cellsX;
    const int cy = static_cast<int>(ci) / cfg.cellsX;
    render::CellView cell;
    cell.trajectoryIndex = displayed[di];
    cell.rect = layout.cellRect(cx, cy);
    cell.background = assignment.cells[ci].background;
    if (!brush_->empty() && di < lastQuery_->segmentHighlights.size()) {
      cell.segmentHighlights = lastQuery_->segmentHighlights[di];
    }
    scene.cells.push_back(std::move(cell));
  }

  commitScene(std::move(scene), out);
  return true;
}

void Session::commitScene(render::SceneModel&& scene,
                          render::SceneModel& out) {
  // Damage tracking: diff this frame's per-cell content hashes against the
  // previous frame's so render consumers know which cells to repaint.
  std::vector<std::uint64_t> hashes = render::sceneCellHashes(scene);
  lastDamagedCells_.clear();
  if (hashes.size() != lastCellHashes_.size()) {
    lastSceneFullyDamaged_ = true;
  } else {
    lastSceneFullyDamaged_ = false;
    for (std::size_t i = 0; i < hashes.size(); ++i) {
      if (hashes[i] != lastCellHashes_[i]) lastDamagedCells_.push_back(i);
    }
  }
  lastCellHashes_ = std::move(hashes);
  out = std::move(scene);
}

void Session::ensureProgressiveFresh() {
  if (!progressive_->dirty) return;
  QueryParams params;
  params.timeWindow = {timeWindow_.lo(), timeWindow_.hi()};
  progressive_->query.begin(brush_->grid(), params);
  progressive_->dirty = false;
}

bool Session::buildProgressiveScene(render::SceneModel& out) {
  ensureProgressiveFresh();

  ClusterSceneOptions options;
  options.stereo = stereoSettings();
  options.timeWindow = {timeWindow_.lo(), timeWindow_.hi()};
  ClusterOverviewScene overview =
      buildProgressiveOverview(progressive_->query, wallSpec(), options);

  progressive_->sceneDataset = std::move(overview.averagesDataset);
  lastQuery_ = std::make_shared<const QueryResult>(
      progressive_->query.prototypeResult());
  ++frameIndex_;

  render::SceneModel scene = std::move(overview.scene);
  scene.queryGeneration = lastQuery_->generation;
  commitScene(std::move(scene), out);
  return true;
}

std::size_t Session::refineProgressive(std::size_t maxShards,
                                       const util::Cancellation& cancel) {
  if (progressive_ == nullptr) return 0;
  ensureProgressiveFresh();
  return progressive_->query.refineStep(maxShards, cancel);
}

}  // namespace svq::core
