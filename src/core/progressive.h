// progressive.h — two-phase anytime query evaluation over a shard store.
//
// At the 100k–1M scale a from-scratch exact brush query walks every shard
// of the store — far beyond a 16 ms frame budget. This engine splits the
// evaluation in two:
//
//   1. Aggregate pre-pass (begin()): the brush is tested against the SOM
//      cluster prototypes (the overview's displayed content — this is the
//      "first pixel") and against the per-shard spatial summaries
//      (traj/shardsummary.h). Each shard is classified *definitely-out*
//      (its occupancy grid misses every painted cell, or its time range
//      misses the absolute window — both exact, by the summary's
//      conservatism invariant) or *uncertain*. The pre-pass runs under a
//      latency budget (AnytimeOptions::prepassBudgetUs, default 16 ms /
//      SVQ_ANYTIME_BUDGET_MS): when it expires, every unclassified shard
//      simply stays uncertain — over-approximation is always safe.
//   2. Progressive refinement (refineStep()): uncertain shards drain in
//      priority order (largest trajectory population first) through the
//      exact evaluate() path; per-cluster hit counts tighten from
//      prototype-based estimates toward exact values, and estimates()
//      exposes per-cluster coverage for the render layer's partial-data
//      overlays.
//
// Exactness contract: a shard is only ever skipped when the summary
// *proves* it contributes nothing, and refinement applies the same
// per-trajectory evaluate() verdicts an exhaustive pass would, as
// order-independent integer sums. Therefore once converged() the
// estimates are bit-identical to exactReference() — a from-scratch
// evaluation that never looks at a summary — at any thread count and any
// refinement schedule. Tests (core_progressive_test) and the
// bench_progressive driver assert this.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/brush.h"
#include "core/clusterquery.h"
#include "core/query.h"
#include "util/cancel.h"
#include "util/clock.h"

namespace svq::core {

/// Knobs for the anytime evaluation.
struct AnytimeOptions {
  /// Latency budget of the aggregate pre-pass in microseconds. Shards not
  /// classified when it expires stay uncertain (safe). <= 0 never
  /// classifies anything — everything is refined exactly.
  std::int64_t prepassBudgetUs = 16000;
  /// Injectable time source for the pre-pass deadline; nullptr means
  /// steadyClock(). Replay injects a ManualClock so classification is a
  /// pure function of recorded time, not of runner speed.
  const util::Clock* clock = nullptr;

  /// Reads SVQ_ANYTIME_BUDGET_MS (milliseconds, positive integer) over
  /// the defaults.
  static AnytimeOptions fromEnv();
};

/// Per-cluster anytime state: exact hit counts over the refined members,
/// a prototype-based estimate for the rest.
struct ClusterEstimate {
  std::uint32_t node = 0;              ///< SOM lattice node index
  std::uint64_t members = 0;           ///< cluster population
  std::uint64_t refinedMembers = 0;    ///< members with an exact verdict
  std::uint64_t exactHits = 0;         ///< exact hits among refined members
  /// Whether the cluster-average prototype itself is highlighted by the
  /// brush (exact — prototypes are evaluated in the pre-pass).
  bool prototypeHit = false;

  bool converged() const { return refinedMembers == members; }
  /// Fraction of members with an exact verdict; 1.0 once converged.
  double coverage() const {
    return members == 0 ? 1.0
                        : static_cast<double>(refinedMembers) /
                              static_cast<double>(members);
  }
  /// Exact hits plus the prototype's verdict extrapolated over the
  /// unrefined remainder. Equals exactHits once converged.
  std::uint64_t estimatedHits() const {
    return exactHits + (prototypeHit ? members - refinedMembers : 0);
  }

  bool operator==(const ClusterEstimate&) const = default;
};

/// The two-phase anytime evaluation engine. One instance per session;
/// begin() restarts it for a new brush/window, refineStep() drains it.
/// Not thread-safe — callers serialize access (Session already does).
class ProgressiveClusterQuery {
 public:
  /// Precomputes per-shard cluster membership buckets from the explorer's
  /// clustering (O(store trajectories), once). The explorer must outlive
  /// this object.
  explicit ProgressiveClusterQuery(const ShardSomExplorer& explorer,
                                   AnytimeOptions options = {});

  /// Re-points the pre-pass deadline's time source (affects subsequent
  /// begin() calls). Replay binds its ManualClock here so classification
  /// depends on recorded time only.
  void bindClock(const util::Clock* clock) { options_.clock = clock; }

  /// Phase 1: evaluates the prototypes and classifies every shard within
  /// the latency budget. Restarts any refinement in progress.
  void begin(const BrushGrid& brush, const QueryParams& params);

  /// Phase 2: exactly evaluates up to `maxShards` pending shards, highest
  /// population first; polls `cancel` between shards (a stopped step
  /// leaves the remainder pending — never torn, the next step resumes).
  /// Returns the number of shards resolved. No-op before begin().
  std::size_t refineStep(std::size_t maxShards,
                         const util::Cancellation& cancel =
                             util::Cancellation::none());

  /// True after begin() until the pending queue drains.
  bool active() const { return active_; }
  bool converged() const { return active_ && cursor_ >= pending_.size(); }
  std::size_t pendingShards() const { return pending_.size() - cursor_; }
  /// Shards the pre-pass proved definitely-out (resolved without IO).
  std::size_t prunedShards() const { return prunedShards_; }
  std::size_t refinedShardCount() const { return refinedShards_; }
  /// Members lost to shards that quarantined *during refinement* (counted
  /// refined with zero hits so the query still converges; deterministic
  /// for a given file + fault seed).
  std::uint64_t lostMembers() const { return lostMembers_; }

  /// The pre-pass prototype result: one entry per displayable cluster,
  /// aligned with the explorer's displayableClusters(). This is what the
  /// overview scene draws first.
  const QueryResult& prototypeResult() const { return prototypes_; }

  /// Per-cluster anytime state, aligned with displayableClusters().
  const std::vector<ClusterEstimate>& estimates() const { return estimates_; }

  /// Refined-member fraction across all clusters (1.0 once converged).
  double coverage() const;

  const ShardSomExplorer& explorer() const { return *explorer_; }
  const QueryParams& params() const { return params_; }

  /// Reference implementation: from-scratch exact evaluation of every
  /// cluster's members, never consulting a summary. The converged
  /// engine's estimates() must equal this bit-for-bit (tests and
  /// bench_progressive enforce it).
  static std::vector<ClusterEstimate> exactReference(
      const ShardSomExplorer& explorer, const BrushGrid& brush,
      const QueryParams& params);

 private:
  /// Applies one shard's exact verdicts (or its loss) to the estimates.
  void resolveShardExact(std::size_t shard);
  void resolveShardEmpty(std::size_t shard);

  struct ShardWork {
    std::uint32_t shard = 0;
    std::uint32_t assignedMembers = 0;  ///< members in non-empty clusters
  };

  const ShardSomExplorer* explorer_;
  AnytimeOptions options_;
  /// slotOfNode_[node] = index into estimates_/displayableClusters(), or
  /// UINT32_MAX for empty nodes.
  std::vector<std::uint32_t> slotOfNode_;
  /// Per shard: (slot, memberCount) buckets, precomputed once.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      shardBuckets_;

  // Per-begin() state.
  bool active_ = false;
  BrushGrid brush_;
  QueryParams params_;
  QueryResult prototypes_;
  std::vector<ClusterEstimate> estimates_;
  std::vector<ShardWork> pending_;  ///< uncertain shards, priority order
  std::size_t cursor_ = 0;          ///< next pending_ entry to refine
  std::size_t prunedShards_ = 0;
  std::size_t refinedShards_ = 0;
  std::uint64_t lostMembers_ = 0;
};

/// The paint-touch mask: bit (cy * kGridDim + cx) set iff any painted
/// brush texel overlaps summary cell (cx, cy). Conservative under any
/// resolution (texel rects are mapped to the cells they overlap); when
/// the brush and summary arena radii disagree the mask degenerates to
/// all-ones (nothing is ever pruned). Exposed for the property tests.
std::array<std::uint64_t, traj::ShardSummary::kWords> paintTouchMask(
    const BrushGrid& brush, float summaryArenaRadiusCm);

}  // namespace svq::core
