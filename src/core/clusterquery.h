// clusterquery.h — multi-scale exploration over SOM clusters (§VI.C).
//
// For datasets far beyond ~500 instances the unit of exploration becomes a
// *cluster* of trajectories: the small-multiple layout shows SOM cluster
// averages; coordinated brushing queries the averages; and the analyst
// can "zoom in" on one cluster to explore its member trajectories at
// full fidelity with the same machinery.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/brush.h"
#include "core/query.h"
#include "traj/dataset.h"
#include "traj/shardstore.h"
#include "traj/som.h"

namespace svq::core {

/// Multi-scale explorer: owns the clustering of a (large) dataset and
/// mediates between cluster-level and individual-level queries.
class SomExplorer {
 public:
  /// Clusters the dataset (this is the expensive offline step).
  SomExplorer(const traj::TrajectoryDataset& dataset,
              const traj::SomParams& somParams,
              const traj::FeatureParams& featureParams);

  const traj::ClusteredDataset& clustering() const { return clustering_; }
  const traj::TrajectoryDataset& dataset() const { return *dataset_; }

  /// Non-empty cluster node indices in lattice order — these are what the
  /// small-multiple layout displays at the overview scale.
  const std::vector<std::uint32_t>& displayableClusters() const {
    return displayable_;
  }

  /// Cluster-average trajectories of the displayable clusters, in the
  /// same order (suitable for evaluate(makeRefs(...)) / scene building).
  std::vector<traj::Trajectory> clusterAverages() const;

  /// Evaluates a brush query at the overview scale: one result entry per
  /// displayable cluster.
  QueryResult queryClusters(const BrushGrid& brush,
                            const QueryParams& params) const;

  /// Zoom-in: member trajectory indices of one cluster (dataset indices);
  /// empty for out-of-range nodes.
  std::vector<std::uint32_t> drillDown(std::uint32_t nodeIndex) const;

  /// Evaluates the same brush query against one cluster's members at full
  /// fidelity.
  QueryResult queryClusterMembers(std::uint32_t nodeIndex,
                                  const BrushGrid& brush,
                                  const QueryParams& params) const;

  /// Consistency measure used by the E6 bench: for a given brush, the
  /// fraction of clusters whose average's hit/no-hit verdict matches the
  /// majority verdict of its members. High agreement means the overview
  /// scale is a faithful proxy.
  float clusterQueryFidelity(const BrushGrid& brush,
                             const QueryParams& params) const;

 private:
  const traj::TrajectoryDataset* dataset_;
  traj::ClusteredDataset clustering_;
  std::vector<std::uint32_t> displayable_;
};

/// Multi-scale explorer over an out-of-core ShardStore — the 100k–1M
/// regime. Clustering streams shards through the thread pool (see
/// traj::clusterShardStore); only the cluster averages and index
/// structures stay resident. Drill-down materializes one cluster's
/// members from the store on demand (bounded by the store's cache
/// budget) and runs them through the same evaluate() path, so
/// coordinated brushing is unchanged across scales.
class ShardSomExplorer {
 public:
  /// Clusters the store (the expensive offline step). `pool` nullptr
  /// trains serially; results are bit-identical either way.
  ShardSomExplorer(const traj::ShardStore& store,
                   const traj::SomParams& somParams,
                   const traj::FeatureParams& featureParams,
                   ThreadPool* pool = nullptr);

  const traj::ShardStore& store() const { return *store_; }
  const traj::ShardClustering& clustering() const { return clustering_; }

  /// Non-empty cluster node indices in lattice order.
  const std::vector<std::uint32_t>& displayableClusters() const {
    return displayable_;
  }

  /// Cluster-average trajectories of the displayable clusters, in order.
  std::vector<traj::Trajectory> clusterAverages() const;

  /// Brush query at the overview scale: one entry per displayable cluster.
  QueryResult queryClusters(const BrushGrid& brush,
                            const QueryParams& params) const;

  /// Global trajectory indices of one cluster; empty for out-of-range
  /// nodes.
  std::vector<std::uint32_t> drillDown(std::uint32_t nodeIndex) const;

  /// Materializes one cluster's member trajectories from the store, in
  /// ascending global-index order. Touches each member shard once.
  traj::TrajectoryDataset materializeCluster(std::uint32_t nodeIndex) const;

  /// Full-fidelity brush query over one cluster's members (materialized
  /// on demand); result order matches drillDown(nodeIndex).
  QueryResult queryClusterMembers(std::uint32_t nodeIndex,
                                  const BrushGrid& brush,
                                  const QueryParams& params) const;

  /// Fraction of the store's trajectories the clustering covers — < 1.0
  /// when shards were quarantined during clustering (see ShardStore).
  /// Scenes built from this explorer surface < 1.0 as "partial data".
  double coverage() const { return clustering_.coverage(); }

  /// Shard indices lost to quarantine during clustering, ascending.
  const std::vector<std::uint32_t>& quarantinedShards() const {
    return clustering_.quarantinedShards;
  }

 private:
  const traj::ShardStore* store_;
  traj::ShardClustering clustering_;
  std::vector<std::uint32_t> displayable_;
};

}  // namespace svq::core
