#include "core/sessionservice.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <variant>
#include <vector>

#include "util/logging.h"
#include "util/metrics.h"

namespace svq::core {

namespace {

struct ServiceMetrics {
  Gauge& active;
  Gauge& healthState;
  Counter& admitted;
  Counter& admissionRejected;
  Counter& closed;
  Counter& eventsApplied;
  Counter& eventsRejected;
  Counter& eventsQueued;
  Counter& eventsCoalesced;
  Counter& backpressure;
  Counter& shed;
  Counter& deadlineExceeded;
  Counter& degradedEntered;
  Counter& sheddingEntered;
  Histogram& applyLatencyUs;
  /// Index-aligned with SessionService::Health.
  std::array<Histogram*, 3> applyLatencyByState;

  static ServiceMetrics& get() {
    MetricsRegistry& reg = MetricsRegistry::global();
    static ServiceMetrics m{
        reg.gauge("sessions.active"),
        reg.gauge("sessions.health_state"),
        reg.counter("sessions.admitted"),
        reg.counter("sessions.admission_rejected"),
        reg.counter("sessions.closed"),
        reg.counter("sessions.events_applied"),
        reg.counter("sessions.events_rejected"),
        reg.counter("sessions.events_queued"),
        reg.counter("sessions.events_coalesced"),
        reg.counter("sessions.backpressure"),
        reg.counter("sessions.shed"),
        reg.counter("sessions.deadline_exceeded"),
        reg.counter("sessions.degraded_entered"),
        reg.counter("sessions.shedding_entered"),
        reg.histogram("sessions.apply_latency_us"),
        {&reg.histogram("sessions.apply_latency_us.healthy"),
         &reg.histogram("sessions.apply_latency_us.degraded"),
         &reg.histogram("sessions.apply_latency_us.shedding")}};
    return m;
  }
};

/// Parses a strictly positive integer from the environment. Absent/empty
/// returns fallback silently; zero, negative or unparsable input logs a
/// warning and returns fallback — a typo in an ops script must never
/// silently turn a knob off (or to a nonsense bound).
std::uint64_t envPositive(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || parsed <= 0) {
    SVQ_WARN << "sessionservice: ignoring " << name << "='" << v
             << "' (expected a positive integer); keeping default "
             << fallback;
    return fallback;
  }
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

const char* healthName(SessionService::Health h) {
  switch (h) {
    case SessionService::Health::kHealthy:
      return "healthy";
    case SessionService::Health::kDegraded:
      return "degraded";
    case SessionService::Health::kShedding:
      return "shedding";
  }
  return "unknown";
}

std::uint64_t SessionService::WindowHistogram::drainP99() {
  std::array<std::uint64_t, 65> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets[i].exchange(0, std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  // Rank of the p99 sample (1-based), clamped into [1, total].
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(0.99 * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      // Bucket i holds bit-width-i values: upper bound 2^i - 1 (0 for the
      // zeros bucket) — same convention as util::Histogram::quantile.
      return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    }
  }
  return ~std::uint64_t{0};  // unreachable
}

SessionService::Options SessionService::Options::fromEnv() {
  Options o;
  o.maxSessions = static_cast<std::size_t>(
      envPositive("SVQ_MAX_SESSIONS", o.maxSessions));
  o.eventQueueDepth = static_cast<std::size_t>(
      envPositive("SVQ_SESSION_QUEUE_DEPTH", o.eventQueueDepth));
  // Deadline knob is given in milliseconds (human-scale); stored in us.
  // The compiled default 0 means "unlimited", but an explicit 0 in the
  // environment is rejected like any other non-positive input.
  o.applyDeadlineUs = envPositive("SVQ_APPLY_DEADLINE_MS", 0) * 1000;
  o.shedP99Us = envPositive("SVQ_SHED_P99_US", 0);
  return o;
}

SessionService::SessionService(std::shared_ptr<const SharedContext> context)
    : SessionService(std::move(context), Options{}) {}

SessionService::SessionService(std::shared_ptr<const SharedContext> context,
                               Options options)
    : context_(std::move(context)),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : util::steadyClock()) {}

SessionService::Admission SessionService::admit() {
  if (shutdown_.load(std::memory_order_acquire)) {
    return {Status::shutdown(), 0};
  }
  ServiceMetrics& metrics = ServiceMetrics::get();
  std::unique_lock<std::shared_mutex> lock(mapMutex_);
  if (tenants_.size() >= options_.maxSessions) {
    metrics.admissionRejected.add(1);
    return {Status::atCapacity(), 0};
  }
  const SessionId id = nextId_++;
  Session session(context_);
  // Progressive sessions derive their pre-pass deadline from the service
  // clock, so replay's ManualClock governs anytime classification too.
  session.bindClock(clock_);
  tenants_.emplace(id, std::make_shared<Tenant>(std::move(session)));
  metrics.admitted.add(1);
  metrics.active.add(1);
  if (hooks_.onAdmit) hooks_.onAdmit(id);
  return {Status::ok(static_cast<std::int64_t>(id)), id};
}

Status SessionService::close(SessionId id) {
  if (shutdown_.load(std::memory_order_acquire)) return Status::shutdown();
  std::shared_ptr<Tenant> victim;
  {
    std::unique_lock<std::shared_mutex> lock(mapMutex_);
    auto it = tenants_.find(id);
    if (it == tenants_.end()) {
      return Status::unknownSession(static_cast<std::int64_t>(id));
    }
    victim = std::move(it->second);
    tenants_.erase(it);
  }
  // The victim's queued events vanish with it; keep the aggregate depth
  // honest (under its mutex: a racing submit may still hold a reference).
  {
    std::lock_guard<std::mutex> lock(victim->mutex);
    queuedTotal_.fetch_sub(victim->queue.size(), std::memory_order_relaxed);
    victim->queue.clear();
  }
  ServiceMetrics& metrics = ServiceMetrics::get();
  metrics.closed.add(1);
  metrics.active.sub(1);
  if (hooks_.onClose) hooks_.onClose(id);
  // The Session dies when the last in-flight operation holding the
  // shared_ptr releases it.
  return Status::ok(static_cast<std::int64_t>(id));
}

std::shared_ptr<SessionService::Tenant> SessionService::tenant(
    SessionId id) const {
  std::shared_lock<std::shared_mutex> lock(mapMutex_);
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;
}

void SessionService::notifyRefused(SessionId id, const ui::Event& event,
                                   const Status& status) {
  if (hooks_.onEvent) hooks_.onEvent(id, event, status);
}

Status SessionService::submit(SessionId id, const ui::Event& event) {
  if (shutdown_.load(std::memory_order_acquire)) return Status::shutdown();
  const std::shared_ptr<Tenant> t = tenant(id);
  if (!t) return Status::unknownSession(static_cast<std::int64_t>(id));
  ServiceMetrics& metrics = ServiceMetrics::get();
  std::lock_guard<std::mutex> lock(t->mutex);
  if (health() == Health::kShedding) {
    metrics.shed.add(1);
    const Status refusal = Status::overloaded(static_cast<std::int64_t>(id),
                                              options_.retryAfterMs);
    notifyRefused(id, event, refusal);
    return refusal;
  }
  if (t->queue.size() >= options_.eventQueueDepth) {
    metrics.backpressure.add(1);
    const Status refusal =
        Status::backpressure(static_cast<std::int64_t>(id));
    notifyRefused(id, event, refusal);
    return refusal;
  }
  t->queue.push_back(event);
  queuedTotal_.fetch_add(1, std::memory_order_relaxed);
  metrics.eventsQueued.add(1);
  // Observed at enqueue time: this is where the event's position in the
  // tenant's stream is decided (drain applies in queue order).
  if (hooks_.onEvent) {
    hooks_.onEvent(id, event, Status::ok(static_cast<std::int64_t>(id)));
  }
  maybeEscalateOnDepth();
  return Status::ok(static_cast<std::int64_t>(id));
}

bool SessionService::applyOneLocked(Tenant& t, const ui::Event& event,
                                    Health state) {
  ServiceMetrics& metrics = ServiceMetrics::get();
  const std::int64_t start = clock_->nowUs();
  const bool applied = t.session.apply(event);
  const auto micros =
      static_cast<std::uint64_t>(std::max<std::int64_t>(
          0, clock_->nowUs() - start));
  metrics.applyLatencyUs.record(micros);
  metrics.applyLatencyByState[static_cast<std::size_t>(state)]->record(
      micros);
  windowHist_.record(micros);
  if (applied) {
    metrics.eventsApplied.add(1);
  } else {
    metrics.eventsRejected.add(1);
  }
  return applied;
}

std::size_t SessionService::coalesceLocked(Tenant& t) {
  std::deque<ui::Event>& q = t.queue;
  if (q.size() < 2) return 0;
  std::vector<char> keep(q.size(), 1);
  bool sawWindow = false, sawDepth = false, sawScale = false;
  bool clearedAll = false;
  std::array<bool, 256> clearedBrush{};
  // Backward walk: flags describe what a *later* queue position will do,
  // so by the time an entry is visited we know whether its effect is
  // fully superseded. LayoutSwitch is deliberately NOT coalesced — each
  // switch prunes groups against its own grid, so dropping an
  // intermediate one changes the final group set.
  for (std::size_t r = q.size(); r-- > 0;) {
    const ui::Event& e = q[r];
    if (std::holds_alternative<ui::TimeWindowEvent>(e)) {
      if (sawWindow) keep[r] = 0;
      sawWindow = true;
    } else if (std::holds_alternative<ui::DepthOffsetEvent>(e)) {
      if (sawDepth) keep[r] = 0;
      sawDepth = true;
    } else if (std::holds_alternative<ui::TimeScaleEvent>(e)) {
      if (sawScale) keep[r] = 0;
      sawScale = true;
    } else if (const auto* c = std::get_if<ui::BrushClearEvent>(&e)) {
      if (c->brushIndex == 255) {
        clearedAll = true;
      } else {
        clearedBrush[c->brushIndex] = true;
      }
    } else if (const auto* s = std::get_if<ui::BrushStrokeEvent>(&e)) {
      if (clearedAll || clearedBrush[s->brushIndex]) keep[r] = 0;
    }
  }
  std::size_t dropped = 0;
  std::deque<ui::Event> kept;
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (keep[i] != 0) {
      kept.push_back(std::move(q[i]));
    } else {
      ++dropped;
    }
  }
  if (dropped == 0) return 0;
  q.swap(kept);
  queuedTotal_.fetch_sub(dropped, std::memory_order_relaxed);
  ServiceMetrics::get().eventsCoalesced.add(dropped);
  return dropped;
}

util::Deadline SessionService::applyDeadline(Health state) const {
  if (options_.applyDeadlineUs == 0) return util::Deadline::unlimited();
  std::uint64_t budget = options_.applyDeadlineUs;
  if (state >= Health::kDegraded) {
    const std::uint32_t div =
        std::max<std::uint32_t>(1, options_.degradedDeadlineDiv);
    budget = std::max<std::uint64_t>(1, budget / div);
  }
  return util::Deadline::after(static_cast<std::int64_t>(budget), clock_);
}

SessionService::Health SessionService::targetHealth(
    std::uint64_t windowP99Us, std::size_t depth) const {
  Health target = Health::kHealthy;
  if (options_.shedQueueDepth != 0) {
    if (depth >= options_.shedQueueDepth) {
      target = Health::kShedding;
    } else if (depth * 2 >= options_.shedQueueDepth) {
      target = Health::kDegraded;
    }
  }
  if (options_.shedP99Us != 0) {
    if (windowP99Us >= options_.shedP99Us) {
      target = Health::kShedding;
    } else if (windowP99Us * 2 >= options_.shedP99Us &&
               target < Health::kDegraded) {
      target = Health::kDegraded;
    }
  }
  return target;
}

void SessionService::setHealthLocked(Health next) {
  const Health cur = health();
  if (next == cur) return;
  ServiceMetrics& metrics = ServiceMetrics::get();
  const auto curLevel = static_cast<std::uint64_t>(cur);
  const auto nextLevel = static_cast<std::uint64_t>(next);
  if (nextLevel > curLevel) {
    metrics.healthState.add(nextLevel - curLevel);
    if (next == Health::kDegraded) metrics.degradedEntered.add(1);
    if (next == Health::kShedding) metrics.sheddingEntered.add(1);
  } else {
    metrics.healthState.sub(curLevel - nextLevel);
    if (next == Health::kDegraded) metrics.degradedEntered.add(1);
  }
  health_.store(static_cast<std::uint8_t>(next), std::memory_order_release);
}

void SessionService::noteWindowTick() {
  if (!healthControlEnabled()) return;
  const std::uint64_t n =
      windowTicks_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (n % options_.healthWindow != 0) return;
  std::lock_guard<std::mutex> lock(healthMutex_);
  const std::uint64_t p99 = windowHist_.drainP99();
  const std::size_t depth = queuedTotal_.load(std::memory_order_relaxed);
  const Health cur = health();
  const Health target = targetHealth(p99, depth);
  if (target > cur) {
    // Escalate straight to the justified level: overload protection must
    // not lag the overload.
    setHealthLocked(target);
  } else if (target < cur) {
    // Recover one level per calm window: monotone, bounded, no flapping
    // straight from Shedding to Healthy on one quiet sample.
    setHealthLocked(static_cast<Health>(static_cast<std::uint8_t>(cur) - 1));
  }
}

void SessionService::maybeEscalateOnDepth() {
  if (options_.shedQueueDepth == 0) return;
  const std::size_t depth = queuedTotal_.load(std::memory_order_relaxed);
  const Health target = targetHealth(0, depth);
  if (target <= health()) return;
  std::lock_guard<std::mutex> lock(healthMutex_);
  if (target > health()) setHealthLocked(target);
}

Status SessionService::drain(SessionId id, std::size_t* appliedOut) {
  if (appliedOut != nullptr) *appliedOut = 0;
  if (shutdown_.load(std::memory_order_acquire)) return Status::shutdown();
  const std::shared_ptr<Tenant> t = tenant(id);
  if (!t) return Status::unknownSession(static_cast<std::int64_t>(id));
  const Health state = health();
  std::lock_guard<std::mutex> lock(t->mutex);
  // Draining is the recovery path: never refused, never deadline-bounded
  // (it must make progress), but a non-Healthy node sheds stale work
  // first so the backlog it pays for is the minimal lossless one.
  if (state != Health::kHealthy) coalesceLocked(*t);
  bool allApplied = true;
  std::size_t applied = 0;
  while (!t->queue.empty()) {
    const ui::Event event = std::move(t->queue.front());
    t->queue.pop_front();
    queuedTotal_.fetch_sub(1, std::memory_order_relaxed);
    if (applyOneLocked(*t, event, state)) {
      ++applied;
    } else {
      allApplied = false;
    }
    noteWindowTick();
  }
  if (appliedOut != nullptr) *appliedOut = applied;
  return allApplied ? Status::ok(static_cast<std::int64_t>(id))
                    : Status::rejected(static_cast<std::int64_t>(id));
}

Status SessionService::apply(SessionId id, const ui::Event& event) {
  if (shutdown_.load(std::memory_order_acquire)) return Status::shutdown();
  const std::shared_ptr<Tenant> t = tenant(id);
  if (!t) return Status::unknownSession(static_cast<std::int64_t>(id));
  ServiceMetrics& metrics = ServiceMetrics::get();
  const Health state = health();
  std::lock_guard<std::mutex> lock(t->mutex);
  if (state == Health::kShedding) {
    // Shedding refuses new interactive work outright — the cheap typed
    // refusal is the whole point. The backlog stays queued; drain() (and
    // close()) remain available to take load *off* the node.
    metrics.shed.add(1);
    const Status refusal = Status::overloaded(static_cast<std::int64_t>(id),
                                              options_.retryAfterMs);
    notifyRefused(id, event, refusal);
    noteWindowTick();
    return refusal;
  }
  const util::Deadline deadline = applyDeadline(state);
  if (state == Health::kDegraded) coalesceLocked(*t);
  // Queued events first: a tenant's stream stays ordered even when it
  // mixes submit() and apply(). The deadline is checked *between* events
  // — an exhausted budget refuses the synchronous event and leaves the
  // backlog remainder queued: never torn, never silently dropped.
  while (!t->queue.empty()) {
    if (deadline.expired()) {
      metrics.deadlineExceeded.add(1);
      const Status refusal =
          Status::deadlineExceeded(static_cast<std::int64_t>(id));
      notifyRefused(id, event, refusal);
      noteWindowTick();
      return refusal;
    }
    const ui::Event queued = std::move(t->queue.front());
    t->queue.pop_front();
    queuedTotal_.fetch_sub(1, std::memory_order_relaxed);
    applyOneLocked(*t, queued, state);
  }
  if (deadline.expired()) {
    metrics.deadlineExceeded.add(1);
    const Status refusal =
        Status::deadlineExceeded(static_cast<std::int64_t>(id));
    notifyRefused(id, event, refusal);
    noteWindowTick();
    return refusal;
  }
  // Queued events were observed at submit(); only the synchronous event
  // is new to the stream here. Rejected-on-apply events are observed too:
  // a replay must reproduce the rejection deterministically.
  if (hooks_.onEvent) {
    hooks_.onEvent(id, event, Status::ok(static_cast<std::int64_t>(id)));
  }
  const bool applied = applyOneLocked(*t, event, state);
  noteWindowTick();
  return applied ? Status::ok(static_cast<std::int64_t>(id))
                 : Status::rejected(static_cast<std::int64_t>(id));
}

Status SessionService::refine(SessionId id, std::size_t maxShards,
                              std::size_t* refinedOut) {
  if (refinedOut != nullptr) *refinedOut = 0;
  if (shutdown_.load(std::memory_order_acquire)) return Status::shutdown();
  const std::shared_ptr<Tenant> t = tenant(id);
  if (!t) return Status::unknownSession(static_cast<std::int64_t>(id));
  const Health state = health();
  std::lock_guard<std::mutex> lock(t->mutex);
  if (state == Health::kShedding) {
    ServiceMetrics::get().shed.add(1);
    const Status refusal = Status::overloaded(static_cast<std::int64_t>(id),
                                              options_.retryAfterMs);
    if (hooks_.onRefine) {
      hooks_.onRefine(id, static_cast<std::uint32_t>(maxShards), refusal);
    }
    noteWindowTick();
    return refusal;
  }
  std::size_t budget = maxShards;
  if (state == Health::kDegraded) {
    budget = std::max<std::size_t>(
        1, budget / std::max<std::uint32_t>(1, options_.degradedDeadlineDiv));
  }
  const util::Deadline deadline = applyDeadline(state);
  const std::size_t refined =
      t->session.refineProgressive(budget, util::Cancellation(deadline));
  if (refinedOut != nullptr) *refinedOut = refined;
  if (hooks_.onRefine) {
    hooks_.onRefine(id, static_cast<std::uint32_t>(maxShards),
                    Status::ok(static_cast<std::int64_t>(id)));
  }
  noteWindowTick();
  return Status::ok(static_cast<std::int64_t>(id));
}

Status SessionService::buildScene(SessionId id, render::SceneModel& out) {
  if (shutdown_.load(std::memory_order_acquire)) return Status::shutdown();
  const std::shared_ptr<Tenant> t = tenant(id);
  if (!t) return Status::unknownSession(static_cast<std::int64_t>(id));
  const util::Deadline deadline = applyDeadline(health());
  std::lock_guard<std::mutex> lock(t->mutex);
  if (!t->session.buildScene(out, util::Cancellation(deadline))) {
    ServiceMetrics::get().deadlineExceeded.add(1);
    return Status::deadlineExceeded(static_cast<std::int64_t>(id));
  }
  return Status::ok(static_cast<std::int64_t>(id));
}

std::size_t SessionService::activeSessions() const {
  std::shared_lock<std::shared_mutex> lock(mapMutex_);
  return tenants_.size();
}

std::size_t SessionService::queuedEvents(SessionId id) const {
  const std::shared_ptr<Tenant> t = tenant(id);
  if (!t) return 0;
  std::lock_guard<std::mutex> lock(t->mutex);
  return t->queue.size();
}

void SessionService::shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  std::vector<std::shared_ptr<Tenant>> victims;
  {
    std::unique_lock<std::shared_mutex> lock(mapMutex_);
    victims.reserve(tenants_.size());
    for (auto& [id, t] : tenants_) victims.push_back(std::move(t));
    tenants_.clear();
  }
  for (const std::shared_ptr<Tenant>& t : victims) {
    std::lock_guard<std::mutex> lock(t->mutex);
    queuedTotal_.fetch_sub(t->queue.size(), std::memory_order_relaxed);
    t->queue.clear();
  }
  ServiceMetrics::get().active.sub(victims.size());
  // Destruction outside mapMutex_; in-flight operations finish under each
  // tenant's own mutex before the last reference drops.
}

}  // namespace svq::core
