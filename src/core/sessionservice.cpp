#include "core/sessionservice.h"

#include <chrono>
#include <cstdlib>
#include <vector>

#include "util/metrics.h"

namespace svq::core {

namespace {

struct ServiceMetrics {
  Gauge& active;
  Counter& admitted;
  Counter& admissionRejected;
  Counter& closed;
  Counter& eventsApplied;
  Counter& eventsRejected;
  Counter& eventsQueued;
  Counter& backpressure;
  Histogram& applyLatencyUs;

  static ServiceMetrics& get() {
    MetricsRegistry& reg = MetricsRegistry::global();
    static ServiceMetrics m{reg.gauge("sessions.active"),
                            reg.counter("sessions.admitted"),
                            reg.counter("sessions.admission_rejected"),
                            reg.counter("sessions.closed"),
                            reg.counter("sessions.events_applied"),
                            reg.counter("sessions.events_rejected"),
                            reg.counter("sessions.events_queued"),
                            reg.counter("sessions.backpressure"),
                            reg.histogram("sessions.apply_latency_us")};
    return m;
  }
};

std::size_t envSize(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

}  // namespace

SessionService::Options SessionService::Options::fromEnv() {
  Options o;
  o.maxSessions = envSize("SVQ_MAX_SESSIONS", o.maxSessions);
  o.eventQueueDepth = envSize("SVQ_SESSION_QUEUE_DEPTH", o.eventQueueDepth);
  return o;
}

SessionService::SessionService(std::shared_ptr<const SharedContext> context)
    : SessionService(std::move(context), Options{}) {}

SessionService::SessionService(std::shared_ptr<const SharedContext> context,
                               Options options)
    : context_(std::move(context)), options_(options) {}

SessionService::Admission SessionService::admit() {
  if (shutdown_.load(std::memory_order_acquire)) {
    return {Status::shutdown(), 0};
  }
  ServiceMetrics& metrics = ServiceMetrics::get();
  std::unique_lock<std::shared_mutex> lock(mapMutex_);
  if (tenants_.size() >= options_.maxSessions) {
    metrics.admissionRejected.add(1);
    return {Status::atCapacity(), 0};
  }
  const SessionId id = nextId_++;
  tenants_.emplace(id, std::make_shared<Tenant>(Session(context_)));
  metrics.admitted.add(1);
  metrics.active.add(1);
  if (hooks_.onAdmit) hooks_.onAdmit(id);
  return {Status::ok(static_cast<std::int64_t>(id)), id};
}

Status SessionService::close(SessionId id) {
  if (shutdown_.load(std::memory_order_acquire)) return Status::shutdown();
  std::shared_ptr<Tenant> victim;
  {
    std::unique_lock<std::shared_mutex> lock(mapMutex_);
    auto it = tenants_.find(id);
    if (it == tenants_.end()) {
      return Status::unknownSession(static_cast<std::int64_t>(id));
    }
    victim = std::move(it->second);
    tenants_.erase(it);
  }
  ServiceMetrics& metrics = ServiceMetrics::get();
  metrics.closed.add(1);
  metrics.active.sub(1);
  if (hooks_.onClose) hooks_.onClose(id);
  // The Session (and any queued events) dies when the last in-flight
  // operation holding the shared_ptr releases it.
  return Status::ok(static_cast<std::int64_t>(id));
}

std::shared_ptr<SessionService::Tenant> SessionService::tenant(
    SessionId id) const {
  std::shared_lock<std::shared_mutex> lock(mapMutex_);
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;
}

Status SessionService::submit(SessionId id, const ui::Event& event) {
  if (shutdown_.load(std::memory_order_acquire)) return Status::shutdown();
  const std::shared_ptr<Tenant> t = tenant(id);
  if (!t) return Status::unknownSession(static_cast<std::int64_t>(id));
  ServiceMetrics& metrics = ServiceMetrics::get();
  std::lock_guard<std::mutex> lock(t->mutex);
  if (t->queue.size() >= options_.eventQueueDepth) {
    metrics.backpressure.add(1);
    return Status::backpressure(static_cast<std::int64_t>(id));
  }
  t->queue.push_back(event);
  metrics.eventsQueued.add(1);
  // Observed at enqueue time: this is where the event's position in the
  // tenant's stream is decided (drain applies in queue order).
  if (hooks_.onEvent) hooks_.onEvent(id, event);
  return Status::ok(static_cast<std::int64_t>(id));
}

bool SessionService::applyOneLocked(Tenant& t, const ui::Event& event) {
  ServiceMetrics& metrics = ServiceMetrics::get();
  const auto start = std::chrono::steady_clock::now();
  const bool applied = t.session.apply(event);
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  metrics.applyLatencyUs.record(static_cast<std::uint64_t>(micros));
  if (applied) {
    metrics.eventsApplied.add(1);
  } else {
    metrics.eventsRejected.add(1);
  }
  return applied;
}

Status SessionService::drain(SessionId id, std::size_t* appliedOut) {
  if (appliedOut != nullptr) *appliedOut = 0;
  if (shutdown_.load(std::memory_order_acquire)) return Status::shutdown();
  const std::shared_ptr<Tenant> t = tenant(id);
  if (!t) return Status::unknownSession(static_cast<std::int64_t>(id));
  std::lock_guard<std::mutex> lock(t->mutex);
  bool allApplied = true;
  std::size_t applied = 0;
  while (!t->queue.empty()) {
    const ui::Event event = std::move(t->queue.front());
    t->queue.pop_front();
    if (applyOneLocked(*t, event)) {
      ++applied;
    } else {
      allApplied = false;
    }
  }
  if (appliedOut != nullptr) *appliedOut = applied;
  return allApplied ? Status::ok(static_cast<std::int64_t>(id))
                    : Status::rejected(static_cast<std::int64_t>(id));
}

Status SessionService::apply(SessionId id, const ui::Event& event) {
  if (shutdown_.load(std::memory_order_acquire)) return Status::shutdown();
  const std::shared_ptr<Tenant> t = tenant(id);
  if (!t) return Status::unknownSession(static_cast<std::int64_t>(id));
  std::lock_guard<std::mutex> lock(t->mutex);
  // Queued events first: a tenant's stream stays ordered even when it
  // mixes submit() and apply().
  while (!t->queue.empty()) {
    const ui::Event queued = std::move(t->queue.front());
    t->queue.pop_front();
    applyOneLocked(*t, queued);
  }
  // Queued events were observed at submit(); only the synchronous event
  // is new to the stream here. Rejected-on-apply events are observed too:
  // a replay must reproduce the rejection deterministically.
  if (hooks_.onEvent) hooks_.onEvent(id, event);
  return applyOneLocked(*t, event)
             ? Status::ok(static_cast<std::int64_t>(id))
             : Status::rejected(static_cast<std::int64_t>(id));
}

Status SessionService::buildScene(SessionId id, render::SceneModel& out) {
  if (shutdown_.load(std::memory_order_acquire)) return Status::shutdown();
  const std::shared_ptr<Tenant> t = tenant(id);
  if (!t) return Status::unknownSession(static_cast<std::int64_t>(id));
  std::lock_guard<std::mutex> lock(t->mutex);
  out = t->session.buildScene();
  return Status::ok(static_cast<std::int64_t>(id));
}

std::size_t SessionService::activeSessions() const {
  std::shared_lock<std::shared_mutex> lock(mapMutex_);
  return tenants_.size();
}

std::size_t SessionService::queuedEvents(SessionId id) const {
  const std::shared_ptr<Tenant> t = tenant(id);
  if (!t) return 0;
  std::lock_guard<std::mutex> lock(t->mutex);
  return t->queue.size();
}

void SessionService::shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  std::vector<std::shared_ptr<Tenant>> victims;
  {
    std::unique_lock<std::shared_mutex> lock(mapMutex_);
    victims.reserve(tenants_.size());
    for (auto& [id, t] : tenants_) victims.push_back(std::move(t));
    tenants_.clear();
  }
  ServiceMetrics::get().active.sub(victims.size());
  // Destruction outside mapMutex_; in-flight operations finish under each
  // tenant's own mutex before the last reference drops.
}

}  // namespace svq::core
