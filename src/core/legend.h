// legend.h — wall HUD legend.
//
// Fig. 3's photograph shows the group bins identified by background
// color; a wall frame rendered offline needs the mapping made explicit.
// The legend draws one swatch+name entry per trajectory group and one per
// active paintbrush into a corner band of the wall frame.
#pragma once

#include "core/brush.h"
#include "core/groups.h"
#include "render/rasterizer.h"

namespace svq::core {

struct LegendStyle {
  int x = 8;
  int y = 8;
  int swatchPx = 10;
  int rowGapPx = 4;
  int textScale = 1;
  render::Color textColor = render::colors::kWhite;
};

/// Draws group entries and, when `brush` is non-null, one entry per brush
/// index that currently has paint. Returns the pixel rect covered.
RectI drawWallLegend(render::Canvas canvas, const GroupManager& groups,
                     const BrushCanvas* brush, const LegendStyle& style = {});

}  // namespace svq::core
