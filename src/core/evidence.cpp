#include "core/evidence.h"

#include <algorithm>
#include <sstream>

namespace svq::core {

std::string describeTarget(const AnnotationTarget& target) {
  struct Visitor {
    std::string operator()(const TrajectoryTarget& r) {
      return "trajectory #" + std::to_string(r.index);
    }
    std::string operator()(const GroupRef& r) {
      return "group " + std::to_string(r.groupId);
    }
    std::string operator()(const RegionRef& r) {
      std::ostringstream out;
      out << "region (" << r.centerCm.x << "," << r.centerCm.y << ") r="
          << r.radiusCm << "cm";
      return out.str();
    }
    std::string operator()(const SessionRef&) { return "session"; }
  };
  return std::visit(Visitor{}, target);
}

bool Annotation::hasTag(const std::string& tag) const {
  return std::find(tags.begin(), tags.end(), tag) != tags.end();
}

std::uint32_t EvidenceFile::add(double sessionTimeS, AnnotationTarget target,
                                std::string text,
                                std::vector<std::string> tags) {
  Annotation a;
  a.id = nextId_++;
  a.sessionTimeS = sessionTimeS;
  a.target = std::move(target);
  a.text = std::move(text);
  a.tags = std::move(tags);
  annotations_.push_back(std::move(a));
  return annotations_.back().id;
}

bool EvidenceFile::remove(std::uint32_t id) {
  const auto n = std::erase_if(
      annotations_, [id](const Annotation& a) { return a.id == id; });
  return n > 0;
}

const Annotation* EvidenceFile::find(std::uint32_t id) const {
  for (const Annotation& a : annotations_) {
    if (a.id == id) return &a;
  }
  return nullptr;
}

std::vector<const Annotation*> EvidenceFile::withTag(
    const std::string& tag) const {
  std::vector<const Annotation*> out;
  for (const Annotation& a : annotations_) {
    if (a.hasTag(tag)) out.push_back(&a);
  }
  return out;
}

std::vector<const Annotation*> EvidenceFile::onTrajectory(
    std::uint32_t index) const {
  std::vector<const Annotation*> out;
  for (const Annotation& a : annotations_) {
    if (const auto* ref = std::get_if<TrajectoryTarget>(&a.target)) {
      if (ref->index == index) out.push_back(&a);
    }
  }
  return out;
}

std::string EvidenceFile::exportReport() const {
  std::ostringstream out;
  out << "# Evidence file (" << annotations_.size() << " annotations)\n";
  for (const Annotation& a : annotations_) {
    out << "- [" << a.id << "] t=" << a.sessionTimeS << "s "
        << describeTarget(a.target) << ": " << a.text;
    if (!a.tags.empty()) {
      out << " (";
      for (std::size_t i = 0; i < a.tags.size(); ++i) {
        if (i) out << ", ";
        out << '#' << a.tags[i];
      }
      out << ')';
    }
    out << '\n';
  }
  return out.str();
}

const char* toString(ProvenanceKind kind) {
  switch (kind) {
    case ProvenanceKind::kDatasetLoaded: return "dataset";
    case ProvenanceKind::kQueryRun: return "query";
    case ProvenanceKind::kHypothesisEvaluated: return "hypothesis";
    case ProvenanceKind::kAnnotationAdded: return "annotation";
    case ProvenanceKind::kConclusion: return "conclusion";
  }
  return "?";
}

std::uint32_t ProvenanceLog::append(ProvenanceKind kind, double timeS,
                                    std::string summary,
                                    std::vector<std::uint32_t> parents) {
  ProvenanceEntry e;
  e.id = nextId_++;
  e.kind = kind;
  e.sessionTimeS = timeS;
  e.summary = std::move(summary);
  // Drop unknown parent references rather than corrupting the DAG.
  for (std::uint32_t p : parents) {
    if (find(p) != nullptr) e.parents.push_back(p);
  }
  entries_.push_back(std::move(e));
  return entries_.back().id;
}

std::uint32_t ProvenanceLog::recordDataset(double timeS,
                                           std::size_t trajectoryCount,
                                           const std::string& source) {
  return append(ProvenanceKind::kDatasetLoaded, timeS,
                source + " (" + std::to_string(trajectoryCount) +
                    " trajectories)",
                {});
}

std::uint32_t ProvenanceLog::recordQuery(
    double timeS, const std::string& description, const QueryResult& result,
    std::optional<std::uint32_t> datasetId) {
  std::ostringstream summary;
  summary << description << " -> " << result.trajectoriesHighlighted << '/'
          << result.trajectoriesEvaluated << " highlighted";
  std::vector<std::uint32_t> parents;
  if (datasetId) parents.push_back(*datasetId);
  return append(ProvenanceKind::kQueryRun, timeS, summary.str(),
                std::move(parents));
}

std::uint32_t ProvenanceLog::recordHypothesis(
    double timeS, const HypothesisResult& result,
    std::vector<std::uint32_t> queryIds) {
  std::ostringstream summary;
  summary << result.name << ": "
          << static_cast<int>(result.supportFraction * 100.0f)
          << "% support -> "
          << (result.supported ? "SUPPORTED" : "not supported");
  return append(ProvenanceKind::kHypothesisEvaluated, timeS, summary.str(),
                std::move(queryIds));
}

std::uint32_t ProvenanceLog::recordAnnotation(
    double timeS, const Annotation& annotation,
    std::vector<std::uint32_t> parents) {
  return append(ProvenanceKind::kAnnotationAdded, timeS,
                describeTarget(annotation.target) + ": " + annotation.text,
                std::move(parents));
}

std::uint32_t ProvenanceLog::recordConclusion(
    double timeS, const std::string& statement,
    std::vector<std::uint32_t> parents) {
  return append(ProvenanceKind::kConclusion, timeS, statement,
                std::move(parents));
}

const ProvenanceEntry* ProvenanceLog::find(std::uint32_t id) const {
  for (const ProvenanceEntry& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

std::vector<const ProvenanceEntry*> ProvenanceLog::lineage(
    std::uint32_t id) const {
  std::vector<const ProvenanceEntry*> out;
  const ProvenanceEntry* root = find(id);
  if (root == nullptr) return out;
  // BFS over parents; entries are id-ordered so sort by id at the end.
  std::vector<std::uint32_t> frontier{id};
  std::vector<char> seen(nextId_, 0);
  while (!frontier.empty()) {
    const std::uint32_t cur = frontier.back();
    frontier.pop_back();
    if (seen[cur]) continue;
    seen[cur] = 1;
    const ProvenanceEntry* e = find(cur);
    if (e == nullptr) continue;
    out.push_back(e);
    for (std::uint32_t p : e->parents) frontier.push_back(p);
  }
  std::sort(out.begin(), out.end(),
            [](const ProvenanceEntry* a, const ProvenanceEntry* b) {
              return a->id < b->id;
            });
  return out;
}

bool ProvenanceLog::wellFormed() const {
  for (const ProvenanceEntry& e : entries_) {
    for (std::uint32_t p : e.parents) {
      if (p >= e.id) return false;
      if (find(p) == nullptr) return false;
    }
  }
  return true;
}

std::string ProvenanceLog::exportReport() const {
  std::ostringstream out;
  out << "# Insight provenance (" << entries_.size() << " entries)\n";
  for (const ProvenanceEntry& e : entries_) {
    out << "[" << e.id << "] t=" << e.sessionTimeS << "s "
        << toString(e.kind) << ": " << e.summary;
    if (!e.parents.empty()) {
      out << "  <- derived from";
      for (std::uint32_t p : e.parents) out << " [" << p << "]";
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace svq::core
