// coding.h — the pilot study's video-coding scheme (§V).
//
// The paper tagged the session recording with instances where the
// researcher (a) made an observation about the data, (b) created a
// hypothesis, and (c) used an interactive tool together with the question
// being answered. This module is that instrument in computable form: a
// typed session log, an auto-coder that derives tags from a replayed
// interaction script (notes prefixed "O:"/"H:"/"T:"/"C:" mark think-aloud
// content), and summary statistics that map behaviour onto the
// Pirolli–Card sensemaking stages of Fig. 2.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ui/script.h"

namespace svq::study {

/// Coding-scheme tags (the paper's three, plus the comparison/conclusion
/// distinctions §VI draws when analyzing the tape).
enum class CodingTag : std::uint8_t {
  kObservation = 0,    ///< low-level inference about the data
  kHypothesis,         ///< a testable claim was formulated
  kHypothesisTest,     ///< a visual query was run against a hypothesis
  kToolUse,            ///< any interactive feature was exercised
  kComparison,         ///< groups of trajectories were compared
  kConclusion,         ///< a verdict was reached
};

const char* toString(CodingTag tag);

/// Pirolli–Card stages (Fig. 2) that coded behaviour maps onto.
enum class SensemakingStage : std::uint8_t {
  kFilterData = 0,     ///< select relevant subsets (filters, groups)
  kVisualize,          ///< raw data -> visual representation
  kExtractFeatures,    ///< low-level inferences from the visuals
  kSearchPatterns,     ///< comparisons across instances
  kSchematize,         ///< marshal evidence (brush highlights)
  kBuildCase,          ///< weigh hypotheses against evidence
  kTellStory,          ///< conclusions / presentation
};

const char* toString(SensemakingStage stage);

/// Stage each tag predominantly serves (the §VI.A/§VI.B mapping:
/// comparisons -> extract features / search patterns; coordinated
/// brushing -> schematize; verdicts -> build case).
SensemakingStage stageOf(CodingTag tag);

/// One coded moment of the session.
struct CodedEvent {
  double timeS = 0.0;
  CodingTag tag = CodingTag::kToolUse;
  /// Tool involved (ui event type name) or empty for verbal-only codes.
  std::string tool;
  /// Transcript text / think-aloud note.
  std::string text;
};

/// A coded session with summary analysis.
class SessionLog {
 public:
  void add(CodedEvent e) { events_.push_back(std::move(e)); }
  const std::vector<CodedEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  double durationS() const {
    return events_.empty() ? 0.0 : events_.back().timeS;
  }

  /// Count of events per tag.
  std::map<CodingTag, std::size_t> tagCounts() const;

  /// Count of tool-use events per tool name.
  std::map<std::string, std::size_t> toolUsage() const;

  /// Count of events per sensemaking stage.
  std::map<SensemakingStage, std::size_t> stageCounts() const;

  /// Hypothesis cadence: for each kHypothesis event, the delay (s) until
  /// the next kHypothesisTest event (the "formulate then verify in rapid
  /// succession" measure of §VI.B). Untested hypotheses are omitted.
  std::vector<double> hypothesisToTestDelays() const;

  /// Hypotheses formulated per minute of session time.
  double hypothesisRatePerMinute() const;

  /// Multi-line human-readable summary (the §V qualitative report shape).
  std::string summaryReport() const;

 private:
  std::vector<CodedEvent> events_;
};

/// Auto-codes a replayed interaction script:
///  * every event yields a kToolUse code with the event type as tool;
///  * brush strokes/time-window changes following a hypothesis note are
///    additionally coded kHypothesisTest;
///  * notes are scanned for prefixes: "O:" observation, "H:" hypothesis,
///    "C:" comparison, "V:" conclusion (verdict).
SessionLog autoCode(const ui::InputScript& script);

}  // namespace svq::study
