#include "study/coding.h"

#include <sstream>

namespace svq::study {

const char* toString(CodingTag tag) {
  switch (tag) {
    case CodingTag::kObservation: return "observation";
    case CodingTag::kHypothesis: return "hypothesis";
    case CodingTag::kHypothesisTest: return "hypothesis_test";
    case CodingTag::kToolUse: return "tool_use";
    case CodingTag::kComparison: return "comparison";
    case CodingTag::kConclusion: return "conclusion";
  }
  return "?";
}

const char* toString(SensemakingStage stage) {
  switch (stage) {
    case SensemakingStage::kFilterData: return "filter_data";
    case SensemakingStage::kVisualize: return "visualize";
    case SensemakingStage::kExtractFeatures: return "extract_features";
    case SensemakingStage::kSearchPatterns: return "search_patterns";
    case SensemakingStage::kSchematize: return "schematize";
    case SensemakingStage::kBuildCase: return "build_case";
    case SensemakingStage::kTellStory: return "tell_story";
  }
  return "?";
}

SensemakingStage stageOf(CodingTag tag) {
  switch (tag) {
    case CodingTag::kObservation: return SensemakingStage::kExtractFeatures;
    case CodingTag::kHypothesis: return SensemakingStage::kBuildCase;
    case CodingTag::kHypothesisTest: return SensemakingStage::kSchematize;
    case CodingTag::kToolUse: return SensemakingStage::kVisualize;
    case CodingTag::kComparison: return SensemakingStage::kSearchPatterns;
    case CodingTag::kConclusion: return SensemakingStage::kTellStory;
  }
  return SensemakingStage::kVisualize;
}

std::map<CodingTag, std::size_t> SessionLog::tagCounts() const {
  std::map<CodingTag, std::size_t> counts;
  for (const CodedEvent& e : events_) ++counts[e.tag];
  return counts;
}

std::map<std::string, std::size_t> SessionLog::toolUsage() const {
  std::map<std::string, std::size_t> usage;
  for (const CodedEvent& e : events_) {
    if (e.tag == CodingTag::kToolUse && !e.tool.empty()) ++usage[e.tool];
  }
  return usage;
}

std::map<SensemakingStage, std::size_t> SessionLog::stageCounts() const {
  std::map<SensemakingStage, std::size_t> counts;
  for (const CodedEvent& e : events_) ++counts[stageOf(e.tag)];
  return counts;
}

std::vector<double> SessionLog::hypothesisToTestDelays() const {
  std::vector<double> delays;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].tag != CodingTag::kHypothesis) continue;
    for (std::size_t j = i + 1; j < events_.size(); ++j) {
      if (events_[j].tag == CodingTag::kHypothesis) break;  // superseded
      if (events_[j].tag == CodingTag::kHypothesisTest) {
        delays.push_back(events_[j].timeS - events_[i].timeS);
        break;
      }
    }
  }
  return delays;
}

double SessionLog::hypothesisRatePerMinute() const {
  const double dur = durationS();
  if (dur <= 0.0) return 0.0;
  const auto counts = tagCounts();
  const auto it = counts.find(CodingTag::kHypothesis);
  const double n = it == counts.end() ? 0.0 : static_cast<double>(it->second);
  return n / (dur / 60.0);
}

std::string SessionLog::summaryReport() const {
  std::ostringstream out;
  out << "Session: " << events_.size() << " coded events over "
      << durationS() << " s\n";
  out << "-- tag counts --\n";
  for (const auto& [tag, n] : tagCounts()) {
    out << "  " << toString(tag) << ": " << n << '\n';
  }
  out << "-- tool usage --\n";
  for (const auto& [tool, n] : toolUsage()) {
    out << "  " << tool << ": " << n << '\n';
  }
  out << "-- sensemaking stages --\n";
  for (const auto& [stage, n] : stageCounts()) {
    out << "  " << toString(stage) << ": " << n << '\n';
  }
  const auto delays = hypothesisToTestDelays();
  if (!delays.empty()) {
    double sum = 0.0;
    for (double d : delays) sum += d;
    out << "-- hypothesis cadence --\n";
    out << "  tested hypotheses: " << delays.size() << '\n';
    out << "  mean formulate->test delay: "
        << sum / static_cast<double>(delays.size()) << " s\n";
  }
  out << "  hypotheses per minute: " << hypothesisRatePerMinute() << '\n';
  return out.str();
}

SessionLog autoCode(const ui::InputScript& script) {
  SessionLog log;
  bool hypothesisOpen = false;
  script.replay([&](const ui::TimedEvent& te) {
    const std::string tool = ui::eventTypeName(te.event);

    // Think-aloud notes first: they precede the interaction they motivate.
    if (te.note.rfind("O:", 0) == 0) {
      log.add({te.timeS, CodingTag::kObservation, "", te.note.substr(2)});
    } else if (te.note.rfind("H:", 0) == 0) {
      log.add({te.timeS, CodingTag::kHypothesis, "", te.note.substr(2)});
      hypothesisOpen = true;
    } else if (te.note.rfind("C:", 0) == 0) {
      log.add({te.timeS, CodingTag::kComparison, "", te.note.substr(2)});
    } else if (te.note.rfind("V:", 0) == 0) {
      log.add({te.timeS, CodingTag::kConclusion, "", te.note.substr(2)});
      hypothesisOpen = false;
    }

    log.add({te.timeS, CodingTag::kToolUse, tool, te.note});

    // A brush stroke or temporal-filter change while a hypothesis is open
    // is the visual query that tests it.
    const bool isQueryTool =
        std::holds_alternative<ui::BrushStrokeEvent>(te.event) ||
        std::holds_alternative<ui::TimeWindowEvent>(te.event);
    if (hypothesisOpen && isQueryTool) {
      log.add({te.timeS, CodingTag::kHypothesisTest, tool, te.note});
    }
  });
  return log;
}

}  // namespace svq::study
