// timeline.h — temporal structure of a coded session.
//
// §VI reads the pilot session as an "opportunistic mix" of bottom-up and
// top-down sensemaking. The timeline makes that mix measurable: coded
// events are bucketed over session time, each bucket is scored for
// foraging-loop vs sensemaking-loop activity (per the Fig. 2 stage
// split), and phase transitions are detectable. An ASCII strip chart
// gives the at-a-glance view the paper's video coder produced by hand.
#pragma once

#include <string>
#include <vector>

#include "study/coding.h"

namespace svq::study {

/// Which half of the Pirolli–Card model a stage belongs to.
enum class Loop : std::uint8_t { kForaging = 0, kSensemaking };

/// Fig. 2 split: filter/visualize/extract/search = foraging;
/// schematize/build-case/tell-story = sensemaking.
Loop loopOf(SensemakingStage stage);

/// One time bucket of the session.
struct TimelineBucket {
  double startS = 0.0;
  double endS = 0.0;
  std::size_t foragingEvents = 0;
  std::size_t sensemakingEvents = 0;
  std::size_t totalEvents() const {
    return foragingEvents + sensemakingEvents;
  }
  /// Sensemaking share in [0,1]; 0.5 for empty buckets.
  double sensemakingShare() const {
    return totalEvents() == 0
               ? 0.5
               : static_cast<double>(sensemakingEvents) /
                     static_cast<double>(totalEvents());
  }
};

/// Buckets a coded session into fixed-width windows.
std::vector<TimelineBucket> bucketize(const SessionLog& log,
                                      double bucketSeconds);

/// Index of the first bucket where sensemaking-loop activity overtakes
/// foraging (share > 0.5) — the "from exploring to theorizing" pivot;
/// -1 if it never happens.
int firstSensemakingPivot(const std::vector<TimelineBucket>& buckets);

/// ASCII strip chart: one row per bucket with f/s bars.
std::string renderTimeline(const std::vector<TimelineBucket>& buckets);

}  // namespace svq::study
