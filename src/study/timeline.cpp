#include "study/timeline.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace svq::study {

Loop loopOf(SensemakingStage stage) {
  switch (stage) {
    case SensemakingStage::kFilterData:
    case SensemakingStage::kVisualize:
    case SensemakingStage::kExtractFeatures:
    case SensemakingStage::kSearchPatterns:
      return Loop::kForaging;
    case SensemakingStage::kSchematize:
    case SensemakingStage::kBuildCase:
    case SensemakingStage::kTellStory:
      return Loop::kSensemaking;
  }
  return Loop::kForaging;
}

std::vector<TimelineBucket> bucketize(const SessionLog& log,
                                      double bucketSeconds) {
  std::vector<TimelineBucket> buckets;
  if (bucketSeconds <= 0.0) return buckets;
  const double duration = log.durationS();
  const auto count = static_cast<std::size_t>(
      std::max(1.0, std::ceil((duration + 1e-9) / bucketSeconds)));
  buckets.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    buckets[i].startS = static_cast<double>(i) * bucketSeconds;
    buckets[i].endS = buckets[i].startS + bucketSeconds;
  }
  for (const CodedEvent& e : log.events()) {
    auto idx = static_cast<std::size_t>(e.timeS / bucketSeconds);
    idx = std::min(idx, count - 1);
    if (loopOf(stageOf(e.tag)) == Loop::kForaging) {
      ++buckets[idx].foragingEvents;
    } else {
      ++buckets[idx].sensemakingEvents;
    }
  }
  return buckets;
}

int firstSensemakingPivot(const std::vector<TimelineBucket>& buckets) {
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].totalEvents() > 0 &&
        buckets[i].sensemakingShare() > 0.5) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string renderTimeline(const std::vector<TimelineBucket>& buckets) {
  std::ostringstream out;
  out << "t(s)      foraging | sensemaking\n";
  for (const TimelineBucket& b : buckets) {
    out << static_cast<int>(b.startS) << "-" << static_cast<int>(b.endS)
        << "\t";
    // Left-aligned foraging bar, then separator, then sensemaking bar.
    for (std::size_t i = 0; i < b.foragingEvents; ++i) out << 'f';
    out << '|';
    for (std::size_t i = 0; i < b.sensemakingEvents; ++i) out << 's';
    out << '\n';
  }
  return out.str();
}

}  // namespace svq::study
