#include "net/swapsync.h"

namespace svq::net {

bool SwapGroup::ready(std::uint64_t frameId) {
  (void)frameId;  // the barrier epoch sequencing already orders frames
  Stopwatch timer;
  const bool ok = comm_->barrier();
  waitStats_.add(timer.elapsedSeconds());
  if (ok) ++framesSwapped_;
  return ok;
}

}  // namespace svq::net
