#include "net/swapsync.h"

namespace svq::net {

Status SwapGroup::ready(std::uint64_t frameId) {
  (void)frameId;  // the barrier epoch sequencing already orders frames
  Stopwatch timer;
  const Status status = comm_->barrier();
  waitStats_.add(timer.elapsedSeconds());
  if (status.completed()) {
    ++framesSwapped_;
    if (status.isPeerFailed()) ++degradedSwaps_;
  } else {
    ++failedSwaps_;
  }
  return status;
}

}  // namespace svq::net
