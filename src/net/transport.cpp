#include "net/transport.h"

#include <atomic>
#include <cassert>
#include <memory>

namespace svq::net {

InProcessTransport::InProcessTransport(int rankCount, NetworkModel network)
    : network_(network) {
  assert(rankCount > 0);
  mailboxes_.reserve(static_cast<std::size_t>(rankCount));
  for (int i = 0; i < rankCount; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

bool InProcessTransport::send(int srcRank, int dstRank, int tag,
                              MessageBuffer payload) {
  if (shutdown_.load(std::memory_order_acquire)) return false;
  assert(dstRank >= 0 && dstRank < rankCount());
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dstRank)];
  messagesSent_.fetch_add(1, std::memory_order_relaxed);
  bytesSent_.fetch_add(payload.size(), std::memory_order_relaxed);
  Clock::time_point deliverAt = Clock::now();
  if (!network_.instantaneous()) {
    deliverAt += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(
            network_.transferSeconds(payload.size())));
  }
  {
    std::lock_guard lock(box.mutex);
    box.queue.push_back(
        Queued{Envelope{srcRank, tag, std::move(payload)}, deliverAt});
  }
  box.arrived.notify_all();
  return true;
}

std::optional<Envelope> InProcessTransport::recv(int rank, int source,
                                                 int tag) {
  assert(rank >= 0 && rank < rankCount());
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock lock(box.mutex);
  for (;;) {
    const Clock::time_point now = Clock::now();
    // Earliest matching-but-not-yet-deliverable message, if any.
    std::optional<Clock::time_point> earliestPending;
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (!matches(it->envelope, source, tag)) continue;
      if (it->deliverAt <= now) {
        Envelope e = std::move(it->envelope);
        box.queue.erase(it);
        return e;
      }
      if (!earliestPending || it->deliverAt < *earliestPending) {
        earliestPending = it->deliverAt;
      }
    }
    if (shutdown_.load(std::memory_order_acquire)) return std::nullopt;
    if (earliestPending) {
      box.arrived.wait_until(lock, *earliestPending);
    } else {
      box.arrived.wait(lock);
    }
  }
}

bool InProcessTransport::probe(int rank, int source, int tag) {
  assert(rank >= 0 && rank < rankCount());
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  const Clock::time_point now = Clock::now();
  std::lock_guard lock(box.mutex);
  for (const Queued& q : box.queue) {
    if (matches(q.envelope, source, tag) && q.deliverAt <= now) return true;
  }
  return false;
}

void InProcessTransport::shutdown() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box->mutex);
    box->arrived.notify_all();
  }
}

std::uint64_t InProcessTransport::messagesSent() const {
  return messagesSent_.load(std::memory_order_relaxed);
}

std::uint64_t InProcessTransport::bytesSent() const {
  return bytesSent_.load(std::memory_order_relaxed);
}

}  // namespace svq::net
