#include "net/transport.h"

#include <atomic>
#include <cassert>
#include <memory>

namespace svq::net {

InProcessTransport::InProcessTransport(int rankCount, NetworkModel network)
    : network_(network) {
  assert(rankCount > 0);
  mailboxes_.reserve(static_cast<std::size_t>(rankCount));
  for (int i = 0; i < rankCount; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void InProcessTransport::setFaultInjector(FaultInjector* injector) {
  injector_ = injector;
  if (injector_) {
    injector_->setKillObserver([this](int rank) {
      if (rank < 0 || rank >= rankCount()) return;
      Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
      std::lock_guard lock(box.mutex);
      box.arrived.notify_all();
    });
  }
}

Status InProcessTransport::sendFor(int srcRank, int dstRank, int tag,
                                   MessageBuffer payload) {
  if (shutdown_.load(std::memory_order_acquire)) return Status::shutdown();
  assert(dstRank >= 0 && dstRank < rankCount());
  double extraDelay = 0.0;
  if (injector_) {
    if (injector_->isDead(srcRank)) return Status::peerFailed(srcRank);
    if (!injector_->onSend(srcRank, dstRank, extraDelay)) {
      return Status::ok();  // dropped in flight; sender cannot tell
    }
  }
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dstRank)];
  messagesSent_.fetch_add(1, std::memory_order_relaxed);
  bytesSent_.fetch_add(payload.size(), std::memory_order_relaxed);
  Clock::time_point deliverAt = Clock::now();
  const double transferS =
      (network_.instantaneous() ? 0.0
                                : network_.transferSeconds(payload.size())) +
      extraDelay;
  if (transferS > 0.0) {
    deliverAt += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(transferS));
  }
  {
    std::lock_guard lock(box.mutex);
    box.queue.push_back(
        Queued{Envelope{srcRank, tag, std::move(payload)}, deliverAt});
  }
  box.arrived.notify_all();
  return Status::ok();
}

Status InProcessTransport::recvFor(int rank, double timeoutSeconds,
                                   Envelope& out, int source, int tag) {
  assert(rank >= 0 && rank < rankCount());
  const bool hasDeadline = timeoutSeconds >= 0.0;
  const Clock::time_point deadline =
      hasDeadline ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(
                                           timeoutSeconds))
                  : Clock::time_point::max();
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock lock(box.mutex);
  for (;;) {
    if (injector_ && injector_->isDead(rank)) {
      return Status::peerFailed(rank);  // a crashed rank cannot receive
    }
    const Clock::time_point now = Clock::now();
    // Earliest matching-but-not-yet-deliverable message, if any.
    std::optional<Clock::time_point> earliestPending;
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (!matches(it->envelope, source, tag)) continue;
      if (it->deliverAt <= now) {
        out = std::move(it->envelope);
        box.queue.erase(it);
        return Status::ok();
      }
      if (!earliestPending || it->deliverAt < *earliestPending) {
        earliestPending = it->deliverAt;
      }
    }
    if (shutdown_.load(std::memory_order_acquire)) return Status::shutdown();
    if (hasDeadline && now >= deadline) {
      return Status::timeout(source == kAnySource ? -1 : source);
    }
    Clock::time_point wakeAt = deadline;
    if (earliestPending && *earliestPending < wakeAt) {
      wakeAt = *earliestPending;
    }
    if (wakeAt == Clock::time_point::max()) {
      box.arrived.wait(lock);
    } else {
      box.arrived.wait_until(lock, wakeAt);
    }
  }
}

bool InProcessTransport::probe(int rank, int source, int tag) {
  assert(rank >= 0 && rank < rankCount());
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  const Clock::time_point now = Clock::now();
  std::lock_guard lock(box.mutex);
  for (const Queued& q : box.queue) {
    if (matches(q.envelope, source, tag) && q.deliverAt <= now) return true;
  }
  return false;
}

std::size_t InProcessTransport::purge(int rank, int source, int tag) {
  assert(rank >= 0 && rank < rankCount());
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::lock_guard lock(box.mutex);
  std::size_t removed = 0;
  for (auto it = box.queue.begin(); it != box.queue.end();) {
    if (matches(it->envelope, source, tag)) {
      it = box.queue.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void InProcessTransport::shutdown() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box->mutex);
    box->arrived.notify_all();
  }
}

std::uint64_t InProcessTransport::messagesSent() const {
  return messagesSent_.load(std::memory_order_relaxed);
}

std::uint64_t InProcessTransport::bytesSent() const {
  return bytesSent_.load(std::memory_order_relaxed);
}

}  // namespace svq::net
