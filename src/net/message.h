// message.h — binary message serialization.
//
// The cluster protocol ships scene models, events and framebuffer tiles
// between ranks. MessageBuffer is a simple explicit-layout writer/reader:
// little-endian fixed-width scalars, length-prefixed strings and vectors.
// Explicit serialization (rather than memcpy of structs) keeps the wire
// format independent of padding and lets tests fuzz round-trips.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/geometry.h"

namespace svq::net {

/// Thrown by read operations that run past the end of the buffer.
class MessageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only writer / cursor-based reader over a byte vector.
class MessageBuffer {
 public:
  MessageBuffer() = default;
  explicit MessageBuffer(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - cursor_; }
  void rewind() { cursor_ = 0; }

  // --- writing -----------------------------------------------------------

  void putU8(std::uint8_t v) { bytes_.push_back(v); }
  void putU32(std::uint32_t v) { putScalar(v); }
  void putU64(std::uint64_t v) { putScalar(v); }
  void putI32(std::int32_t v) { putScalar(v); }
  void putF32(float v) { putScalar(v); }
  void putBool(bool v) { putU8(v ? 1 : 0); }

  void putString(const std::string& s) {
    putU32(static_cast<std::uint32_t>(s.size()));
    append(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  void putVec2(Vec2 v) {
    putF32(v.x);
    putF32(v.y);
  }

  void putRect(const RectI& r) {
    putI32(r.x);
    putI32(r.y);
    putI32(r.w);
    putI32(r.h);
  }

  void putBytes(std::span<const std::uint8_t> data) {
    putU32(static_cast<std::uint32_t>(data.size()));
    append(data.data(), data.size());
  }

  template <typename T, typename Fn>
  void putVector(const std::vector<T>& v, Fn putElem) {
    putU32(static_cast<std::uint32_t>(v.size()));
    for (const T& e : v) putElem(*this, e);
  }

  // --- reading -----------------------------------------------------------

  std::uint8_t getU8() { return getScalar<std::uint8_t>(); }
  std::uint32_t getU32() { return getScalar<std::uint32_t>(); }
  std::uint64_t getU64() { return getScalar<std::uint64_t>(); }
  std::int32_t getI32() { return getScalar<std::int32_t>(); }
  float getF32() { return getScalar<float>(); }
  bool getBool() { return getU8() != 0; }

  std::string getString() {
    const std::uint32_t n = getU32();
    require(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + cursor_), n);
    cursor_ += n;
    return s;
  }

  Vec2 getVec2() {
    Vec2 v;
    v.x = getF32();
    v.y = getF32();
    return v;
  }

  RectI getRect() {
    RectI r;
    r.x = getI32();
    r.y = getI32();
    r.w = getI32();
    r.h = getI32();
    return r;
  }

  std::vector<std::uint8_t> getBytes() {
    const std::uint32_t n = getU32();
    require(n);
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<long>(cursor_),
                                  bytes_.begin() + static_cast<long>(cursor_ + n));
    cursor_ += n;
    return out;
  }

  template <typename T, typename Fn>
  std::vector<T> getVector(Fn getElem) {
    const std::uint32_t n = getU32();
    std::vector<T> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(getElem(*this));
    return v;
  }

 private:
  template <typename T>
  void putScalar(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint8_t raw[sizeof(T)];
    std::memcpy(raw, &v, sizeof(T));
    append(raw, sizeof(T));
  }

  template <typename T>
  T getScalar() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return v;
  }

  void append(const std::uint8_t* data, std::size_t n) {
    bytes_.insert(bytes_.end(), data, data + n);
  }

  void require(std::size_t n) const {
    if (cursor_ + n > bytes_.size()) {
      throw MessageError("message buffer underrun");
    }
  }

  std::vector<std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace svq::net
