// transport.h — in-process rank-to-rank message transport.
//
// Substitute for the paper's cluster interconnect. The transport gives N
// ranks (threads) mailboxes with blocking tagged receive — the same
// send/recv semantics an MPI program over TCP would see, so the cluster
// rendering protocol built on top is the real, paper-relevant code path.
// Messages are copied on send (no shared mutable state), preserving the
// distributed-memory model.
//
// Fault surface: recvFor/sendFor take deadlines and return net::Status, and
// an optional FaultInjector (kill rank / drop message / delay message,
// seeded and deterministic) lets tests and benches rehearse interconnect
// failure without wall-clock races.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "net/fault.h"
#include "net/message.h"
#include "net/status.h"

namespace svq::net {

/// Wildcard values for recv matching.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Timeout value meaning "wait indefinitely".
inline constexpr double kNoTimeout = -1.0;

/// A delivered message.
struct Envelope {
  int source = 0;
  int tag = 0;
  MessageBuffer payload;
};

/// Interconnect model for ablation studies: each message becomes
/// receivable only latency + size/bandwidth after it is sent, emulating
/// the cluster network the paper's wall ran over. Zero values (default)
/// mean instantaneous delivery.
struct NetworkModel {
  double latencySeconds = 0.0;          ///< per-message one-way latency
  double bytesPerSecond = 0.0;          ///< link bandwidth; 0 = infinite

  double transferSeconds(std::size_t bytes) const {
    double t = latencySeconds;
    if (bytesPerSecond > 0.0) {
      t += static_cast<double>(bytes) / bytesPerSecond;
    }
    return t;
  }
  bool instantaneous() const {
    return latencySeconds <= 0.0 && bytesPerSecond <= 0.0;
  }

  /// Gigabit-Ethernet-ish model (50 us latency, ~118 MB/s payload rate).
  static NetworkModel gigabitEthernet() { return {50e-6, 118e6}; }
  /// 10 GbE-ish model.
  static NetworkModel tenGigabitEthernet() { return {20e-6, 1.18e9}; }
};

/// N-rank in-process transport with per-rank FIFO mailboxes.
///
/// Thread-safe. Each rank should be driven by its own thread; recv blocks
/// until a matching message arrives, the deadline expires, or shutdown()
/// is called.
class InProcessTransport {
 public:
  explicit InProcessTransport(int rankCount, NetworkModel network = {});

  int rankCount() const { return static_cast<int>(mailboxes_.size()); }

  /// Copies the payload into dst's mailbox. Returns false after shutdown
  /// (legacy convenience; see sendFor for the typed form).
  bool send(int srcRank, int dstRank, int tag, MessageBuffer payload) {
    return sendFor(srcRank, dstRank, tag, std::move(payload)).isOk();
  }

  /// Typed send. In-process sends never block, so there is no deadline;
  /// the name parallels recvFor. Returns:
  ///   Shutdown    — transport was shut down;
  ///   PeerFailed(srcRank) — the *sender* is marked dead by the injector
  ///                 (a crashed process cannot send);
  ///   Ok          — queued for delivery, or swallowed because the injector
  ///                 dropped it / the receiver is dead (the sender cannot
  ///                 observe either, exactly like a real interconnect).
  Status sendFor(int srcRank, int dstRank, int tag, MessageBuffer payload);

  /// Blocking receive for `rank`, matching source/tag (wildcards allowed).
  /// FIFO per (source, tag) pair; messages from other sources/tags stay
  /// queued. Returns nullopt if the transport is shut down while waiting.
  std::optional<Envelope> recv(int rank, int source = kAnySource,
                               int tag = kAnyTag) {
    Envelope out;
    return recvFor(rank, kNoTimeout, out, source, tag).isOk()
               ? std::optional<Envelope>(std::move(out))
               : std::nullopt;
  }

  /// Deadline-aware receive. timeoutSeconds < 0 waits indefinitely;
  /// 0 polls. Returns:
  ///   Ok          — `out` holds the matched envelope;
  ///   Timeout     — deadline expired (rank = `source` when specific);
  ///   PeerFailed(rank) — the *receiving* rank is marked dead;
  ///   Shutdown    — transport shut down while waiting.
  Status recvFor(int rank, double timeoutSeconds, Envelope& out,
                 int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking probe: true iff a matching message is deliverable now.
  bool probe(int rank, int source = kAnySource, int tag = kAnyTag);

  /// Removes every queued message for `rank` matching source/tag,
  /// deliverable or not, and returns how many were removed. Used to drain
  /// stale collective epochs after a timeout so a late straggler cannot
  /// poison a later collective or a wildcard user receive.
  std::size_t purge(int rank, int source = kAnySource, int tag = kAnyTag);

  /// Wakes all blocked receivers; subsequent recv/send calls fail fast.
  void shutdown();

  /// Attaches a fault injector (non-owning; caller keeps it alive for the
  /// transport's lifetime). Call before rank threads start. killRank on
  /// the injector wakes the victim's blocked receive.
  void setFaultInjector(FaultInjector* injector);
  FaultInjector* faultInjector() const { return injector_; }

  /// Total messages and bytes ever sent (traffic accounting for benches).
  std::uint64_t messagesSent() const;
  std::uint64_t bytesSent() const;

  const NetworkModel& network() const { return network_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Queued {
    Envelope envelope;
    Clock::time_point deliverAt;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable arrived;
    std::deque<Queued> queue;
  };

  bool matches(const Envelope& e, int source, int tag) const {
    return (source == kAnySource || e.source == source) &&
           (tag == kAnyTag || e.tag == tag);
  }

  NetworkModel network_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  FaultInjector* injector_ = nullptr;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> messagesSent_{0};
  std::atomic<std::uint64_t> bytesSent_{0};
};

}  // namespace svq::net
