#include "net/fault.h"

#include <cassert>

namespace svq::net {

void FaultInjector::killRank(int rank) {
  assert(rank >= 0 && rank < 64);
  deadMask_.fetch_or(1ULL << rank, std::memory_order_acq_rel);
  std::function<void(int)> observer;
  {
    std::lock_guard lock(mutex_);
    observer = killObserver_;
  }
  if (observer) observer(rank);
}

bool FaultInjector::onSend(int src, int dst, double& extraDelaySeconds) {
  extraDelaySeconds = 0.0;
  // Messages from or to a crashed rank vanish: a dead process neither
  // sends nor receives, and the sender learns of it only via timeout.
  if (isDead(src) || isDead(dst)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (plan_.dropProbability <= 0.0 && plan_.delayProbability <= 0.0) {
    return true;
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 20) |
                            static_cast<std::uint64_t>(dst);
  std::lock_guard lock(mutex_);
  auto [it, inserted] = edgeRng_.try_emplace(key, Rng(plan_.seed ^ (key * 0x9E3779B97F4A7C15ULL)));
  Rng& rng = it->second;
  if (plan_.dropProbability > 0.0 && rng.chance(plan_.dropProbability)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (plan_.delayProbability > 0.0 && rng.chance(plan_.delayProbability)) {
    delayed_.fetch_add(1, std::memory_order_relaxed);
    extraDelaySeconds = plan_.delaySeconds;
  }
  return true;
}

}  // namespace svq::net
