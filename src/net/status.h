// status.h — typed result of network operations.
//
// Every collective on Communicator/SwapGroup and every deadline-aware
// transport operation returns a Status instead of a bare bool, so callers
// can distinguish "a peer died" (continue in degraded mode) from "my own
// deadline expired" (retry or give up) from "the transport was torn down"
// (exit). PeerFailed/Timeout carry the offending rank, which is what the
// cluster layer needs to reassign a dead rank's tile.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace svq::net {

enum class StatusCode : std::uint8_t {
  kOk = 0,          ///< operation completed over all live participants
  kTimeout = 1,     ///< deadline expired before the operation completed
  kPeerFailed = 2,  ///< completed, but a peer was declared failed (degraded)
  kShutdown = 3,    ///< transport shut down; no further progress possible
};

struct [[nodiscard]] Status {
  StatusCode code = StatusCode::kOk;
  /// The offending rank for kTimeout/kPeerFailed (-1 when not applicable:
  /// kOk, kShutdown, or a timeout with no single identifiable peer).
  int rank = -1;

  static Status ok() { return {StatusCode::kOk, -1}; }
  static Status timeout(int rank = -1) { return {StatusCode::kTimeout, rank}; }
  static Status peerFailed(int rank) { return {StatusCode::kPeerFailed, rank}; }
  static Status shutdown() { return {StatusCode::kShutdown, -1}; }

  bool isOk() const { return code == StatusCode::kOk; }
  bool isTimeout() const { return code == StatusCode::kTimeout; }
  bool isPeerFailed() const { return code == StatusCode::kPeerFailed; }
  bool isShutdown() const { return code == StatusCode::kShutdown; }
  /// True when the operation produced a usable result — either fully (kOk)
  /// or minus declared-dead peers (kPeerFailed). The degraded-mode loop in
  /// svq::cluster keys off this.
  bool completed() const { return isOk() || isPeerFailed(); }

  explicit operator bool() const { return isOk(); }
  bool operator==(const Status&) const = default;

  const char* name() const {
    switch (code) {
      case StatusCode::kOk: return "Ok";
      case StatusCode::kTimeout: return "Timeout";
      case StatusCode::kPeerFailed: return "PeerFailed";
      case StatusCode::kShutdown: return "Shutdown";
    }
    return "?";
  }

  // --- common surface (util::StatusLike) ----------------------------------
  std::int64_t detail() const { return rank; }
  const char* detailLabel() const { return "rank"; }
  /// "Ok", "Timeout(rank=3)", ... — shared formatting, no per-call switch.
  std::string message() const { return util::statusMessage(*this); }
};

static_assert(util::StatusLike<Status>);

/// The more severe of two statuses (Shutdown > Timeout > PeerFailed > Ok),
/// used to fold the phases of a composite collective (e.g. allreduce =
/// gather + broadcast) into one caller-visible result.
inline Status worse(Status a, Status b) {
  return util::worseOf(a, b, [](const Status& s) {
    switch (s.code) {
      case StatusCode::kOk: return 0;
      case StatusCode::kPeerFailed: return 1;
      case StatusCode::kTimeout: return 2;
      case StatusCode::kShutdown: return 3;
    }
    return 0;
  });
}

}  // namespace svq::net
