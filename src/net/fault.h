// fault.h — deterministic fault injection for the in-process transport.
//
// The fault-tolerance protocol (timeouts, failure detection, tile
// reassignment) needs failures it can rehearse: a rank that dies
// mid-session, a message that the interconnect drops, a message that
// arrives late. FaultInjector is the single hook the transport consults on
// every send; it is seeded and deterministic per (src, dst) edge — each
// edge draws from its own RNG stream, and per-edge send order is the
// sender's program order, so a given seed always produces the same
// drop/delay pattern regardless of thread interleaving across edges.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "util/rng.h"

namespace svq::net {

class FaultInjector {
 public:
  struct Plan {
    double dropProbability = 0.0;   ///< P(message silently dropped)
    double delayProbability = 0.0;  ///< P(message delayed by delaySeconds)
    double delaySeconds = 0.0;      ///< extra latency for delayed messages
    std::uint64_t seed = 0x5eedULL;
  };

  FaultInjector() = default;
  explicit FaultInjector(Plan plan) : plan_(plan) {}

  /// Marks `rank` as crashed. Thread-safe and immediate: the rank's
  /// subsequent sends are swallowed, messages addressed to it are dropped,
  /// and its blocked receives wake with PeerFailed (when attached to a
  /// transport). At most 64 ranks.
  void killRank(int rank);

  bool isDead(int rank) const {
    return (deadMask_.load(std::memory_order_acquire) >> rank) & 1u;
  }
  std::uint64_t deadMask() const {
    return deadMask_.load(std::memory_order_acquire);
  }

  /// Transport hook, called once per send. Returns false if the message
  /// must be dropped; otherwise sets `extraDelaySeconds` (possibly 0).
  bool onSend(int src, int dst, double& extraDelaySeconds);

  // --- accounting ----------------------------------------------------------
  std::uint64_t messagesDropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t messagesDelayed() const {
    return delayed_.load(std::memory_order_relaxed);
  }
  int ranksKilled() const {
    return std::popcount(deadMask_.load(std::memory_order_acquire));
  }

  /// Set by InProcessTransport::setFaultInjector so killRank can wake the
  /// victim's blocked receive.
  void setKillObserver(std::function<void(int)> observer) {
    std::lock_guard lock(mutex_);
    killObserver_ = std::move(observer);
  }

 private:
  Plan plan_;
  mutable std::mutex mutex_;
  /// Per-edge RNG streams keyed by (src << 20) | dst, lazily seeded from
  /// plan_.seed so each edge's decision sequence is reproducible.
  std::unordered_map<std::uint64_t, Rng> edgeRng_;
  std::function<void(int)> killObserver_;
  std::atomic<std::uint64_t> deadMask_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> delayed_{0};
};

}  // namespace svq::net
