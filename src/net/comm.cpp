#include "net/comm.h"

#include <algorithm>
#include <bit>
#include <chrono>

namespace svq::net {

namespace {

using Clock = std::chrono::steady_clock;

double secondsUntil(Clock::time_point deadline) {
  return std::chrono::duration<double>(deadline - Clock::now()).count();
}

/// Cap on remembered stale epochs; a straggler sends at most one message
/// per epoch it was late for, so a small window is plenty.
constexpr std::size_t kMaxStaleTags = 64;

}  // namespace

void Communicator::drainStaleEpochs() {
  for (int tag : staleTags_) {
    stats_.staleDrained += transport_->purge(rank_, kAnySource, tag);
  }
  if (staleTags_.size() > kMaxStaleTags) {
    staleTags_.erase(staleTags_.begin(),
                     staleTags_.end() - static_cast<long>(kMaxStaleTags));
  }
}

/// Collects one message per set bit of `remaining` (bit = source rank) on
/// `tag`, clearing bits as they arrive, under the configured retry/backoff
/// ladder. On return, any still-set bit is a peer that stayed silent
/// through every window. Returns Shutdown/PeerFailed(self) to abort.
Status Communicator::recvWithRetry(
    std::uint64_t& remaining, int tag,
    const std::function<void(Envelope&&)>& accept) {
  if (!config_.detectsFailure()) {
    while (remaining != 0) {
      Envelope env;
      const Status s =
          transport_->recvFor(rank_, kNoTimeout, env, kAnySource, tag);
      if (!s.isOk()) return s;
      remaining &= ~(1ULL << env.source);
      accept(std::move(env));
    }
    return Status::ok();
  }
  double window = config_.timeoutSeconds;
  for (int attempt = 0; attempt <= config_.retries && remaining != 0;
       ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      window *= config_.backoffMultiplier;
    }
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(window));
    while (remaining != 0) {
      const double left = secondsUntil(deadline);
      if (left <= 0.0) {
        ++stats_.timeouts;
        break;
      }
      Envelope env;
      const Status s = transport_->recvFor(rank_, left, env, kAnySource, tag);
      if (s.isTimeout()) {
        ++stats_.timeouts;
        break;
      }
      if (!s.isOk()) return s;
      remaining &= ~(1ULL << env.source);
      accept(std::move(env));
    }
  }
  return Status::ok();
}

Status Communicator::barrier() {
  const int tag = nextEpochTag();
  drainStaleEpochs();
  if (rank_ == 0) {
    std::uint64_t remaining = 0;
    for (int r = 1; r < size(); ++r) {
      if (isAlive(r)) remaining |= 1ULL << r;
    }
    const Status cs = recvWithRetry(remaining, tag, [](Envelope&&) {});
    if (!cs.isOk()) return cs;
    const std::uint64_t newlyDead = remaining;
    int failedRank = -1;
    if (newlyDead != 0) {
      deadMask_ |= newlyDead;
      stats_.peerFailures +=
          static_cast<std::uint64_t>(std::popcount(newlyDead));
      staleTags_.push_back(tag);
      failedRank = std::countr_zero(newlyDead);
    }
    // Release the survivors; the payload is the heartbeat piggyback that
    // propagates the converged dead-set.
    for (int r = 1; r < size(); ++r) {
      if (!isAlive(r)) continue;
      MessageBuffer release;
      release.putU8(static_cast<std::uint8_t>(
          newlyDead ? StatusCode::kPeerFailed : StatusCode::kOk));
      release.putI32(failedRank);
      release.putU64(deadMask_);
      const Status ss = transport_->sendFor(0, r, tag, std::move(release));
      if (ss.isShutdown()) return ss;
    }
    return newlyDead ? Status::peerFailed(failedRank) : Status::ok();
  }
  // Non-root: report in, then wait for the release. The wait budget covers
  // the root's full retry ladder (it may be waiting on a different rank).
  {
    const Status ss = transport_->sendFor(rank_, 0, tag, MessageBuffer{});
    if (!ss.isOk()) return ss;
  }
  const double budget = config_.detectsFailure()
                            ? config_.totalBudgetSeconds() * 2.0 + 0.25
                            : kNoTimeout;
  Envelope env;
  const Status rs = transport_->recvFor(rank_, budget, env, 0, tag);
  if (rs.isTimeout()) {
    ++stats_.timeouts;
    return Status::timeout(0);  // the coordinator is unreachable
  }
  if (!rs.isOk()) return rs;
  const auto code = static_cast<StatusCode>(env.payload.getU8());
  const int failedRank = env.payload.getI32();
  deadMask_ |= env.payload.getU64();
  return code == StatusCode::kPeerFailed ? Status::peerFailed(failedRank)
                                         : Status::ok();
}

Status Communicator::broadcast(int root, MessageBuffer& data) {
  const int tag = nextEpochTag();
  drainStaleEpochs();
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root || !isAlive(r)) continue;
      const Status ss = transport_->sendFor(root, r, tag, data);
      if (!ss.isOk()) return ss;
    }
    data.rewind();
    return Status::ok();
  }
  Envelope env;
  const double budget = config_.detectsFailure()
                            ? config_.totalBudgetSeconds() * 2.0 + 0.25
                            : kNoTimeout;
  const Status rs = transport_->recvFor(rank_, budget, env, root, tag);
  if (rs.isTimeout()) {
    ++stats_.timeouts;
    return Status::timeout(root);
  }
  if (!rs.isOk()) return rs;
  data = std::move(env.payload);
  data.rewind();
  return Status::ok();
}

Status Communicator::gather(int root, MessageBuffer data,
                            std::vector<MessageBuffer>& out) {
  const int tag = nextEpochTag();
  drainStaleEpochs();
  out.clear();
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)] = std::move(data);
    std::uint64_t remaining = 0;
    for (int r = 0; r < size(); ++r) {
      if (r != root && isAlive(r)) remaining |= 1ULL << r;
    }
    const Status cs = recvWithRetry(remaining, tag, [&out](Envelope&& env) {
      out[static_cast<std::size_t>(env.source)] = std::move(env.payload);
    });
    if (!cs.isOk()) return cs;
    for (auto& b : out) b.rewind();
    if (remaining != 0) {
      deadMask_ |= remaining;
      stats_.peerFailures +=
          static_cast<std::uint64_t>(std::popcount(remaining));
      staleTags_.push_back(tag);
      return Status::peerFailed(std::countr_zero(remaining));
    }
    return Status::ok();
  }
  return transport_->sendFor(rank_, root, tag, std::move(data));
}

Status Communicator::allreduceSum(std::vector<double>& values) {
  MessageBuffer buf;
  buf.putU32(static_cast<std::uint32_t>(values.size()));
  for (double v : values) buf.putU64(std::bit_cast<std::uint64_t>(v));

  std::vector<MessageBuffer> gathered;
  Status status = gather(0, std::move(buf), gathered);
  if (!status.completed()) return status;

  MessageBuffer result;
  if (rank_ == 0) {
    std::vector<double> sum(values.size(), 0.0);
    for (auto& contrib : gathered) {
      if (contrib.size() == 0) continue;  // a dead rank's empty slot
      const std::uint32_t n = contrib.getU32();
      if (n != sum.size()) {
        throw MessageError("allreduce length mismatch");
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        sum[i] += std::bit_cast<double>(contrib.getU64());
      }
    }
    result.putU32(static_cast<std::uint32_t>(sum.size()));
    for (double v : sum) result.putU64(std::bit_cast<std::uint64_t>(v));
  }
  const Status bs = broadcast(0, result);
  if (!bs.completed()) return bs;
  status = worse(status, bs);
  const std::uint32_t n = result.getU32();
  values.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    values[i] = std::bit_cast<double>(result.getU64());
  }
  return status;
}

}  // namespace svq::net
