#include "net/comm.h"

#include <bit>

namespace svq::net {

bool Communicator::barrier() {
  const int tag = nextEpochTag();
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      if (!transport_->recv(0, kAnySource, tag)) return false;
    }
    for (int r = 1; r < size(); ++r) {
      if (!transport_->send(0, r, tag, MessageBuffer{})) return false;
    }
    return true;
  }
  if (!transport_->send(rank_, 0, tag, MessageBuffer{})) return false;
  return transport_->recv(rank_, 0, tag).has_value();
}

bool Communicator::broadcast(int root, MessageBuffer& data) {
  const int tag = nextEpochTag();
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      if (!transport_->send(root, r, tag, data)) return false;
    }
    data.rewind();
    return true;
  }
  auto env = transport_->recv(rank_, root, tag);
  if (!env) return false;
  data = std::move(env->payload);
  data.rewind();
  return true;
}

bool Communicator::gather(int root, MessageBuffer data,
                          std::vector<MessageBuffer>& out) {
  const int tag = nextEpochTag();
  out.clear();
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)] = std::move(data);
    for (int i = 0; i < size() - 1; ++i) {
      auto env = transport_->recv(root, kAnySource, tag);
      if (!env) return false;
      out[static_cast<std::size_t>(env->source)] = std::move(env->payload);
    }
    for (auto& b : out) b.rewind();
    return true;
  }
  return transport_->send(rank_, root, tag, std::move(data));
}

bool Communicator::allreduceSum(std::vector<double>& values) {
  MessageBuffer buf;
  buf.putU32(static_cast<std::uint32_t>(values.size()));
  for (double v : values) buf.putU64(std::bit_cast<std::uint64_t>(v));

  std::vector<MessageBuffer> gathered;
  if (!gather(0, std::move(buf), gathered)) return false;

  MessageBuffer result;
  if (rank_ == 0) {
    std::vector<double> sum(values.size(), 0.0);
    for (auto& contrib : gathered) {
      const std::uint32_t n = contrib.getU32();
      if (n != sum.size()) return false;
      for (std::uint32_t i = 0; i < n; ++i) {
        sum[i] += std::bit_cast<double>(contrib.getU64());
      }
    }
    result.putU32(static_cast<std::uint32_t>(sum.size()));
    for (double v : sum) result.putU64(std::bit_cast<std::uint64_t>(v));
  }
  if (!broadcast(0, result)) return false;
  const std::uint32_t n = result.getU32();
  values.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    values[i] = std::bit_cast<double>(result.getU64());
  }
  return true;
}

}  // namespace svq::net
