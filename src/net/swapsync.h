// swapsync.h — frame swap synchronization.
//
// Tiled display walls must swap every panel's backbuffer in the same
// vertical retrace or the wall visibly tears along tile seams. The
// SwapGroup reproduces the swap-barrier protocol: each node signals
// readiness for frame N and blocks until all members are ready; the
// per-node wait time is recorded so the benches can report barrier
// overhead and load imbalance (the slowest tile gates the frame).
//
// The swap barrier doubles as the cluster heartbeat: with a finite
// CollectiveConfig timeout, a member that misses the barrier through the
// whole retry/backoff ladder is declared failed, the survivors still swap
// (degraded), and ready() reports PeerFailed with the dead rank.
//
// NOTE (like all collectives): every member must call ready() for the
// same sequence of frame ids.
#pragma once

#include "net/comm.h"
#include "net/status.h"
#include "util/stopwatch.h"

namespace svq::net {

class SwapGroup {
 public:
  explicit SwapGroup(Communicator& comm) : comm_(&comm) {}

  /// Signals that this rank finished rendering frame `frameId` and blocks
  /// until every live rank has. Ok = clean swap; PeerFailed(rank) = a
  /// member was declared dead but the surviving wall still swapped;
  /// Timeout/Shutdown = this rank could not swap at all.
  Status ready(std::uint64_t frameId);

  /// Cumulative time this rank has spent blocked in ready().
  const TimingStats& waitStats() const { return waitStats_; }

  std::uint64_t framesSwapped() const { return framesSwapped_; }
  /// Swaps that completed degraded (a peer was declared dead).
  std::uint64_t degradedSwaps() const { return degradedSwaps_; }
  /// ready() calls that failed outright (timeout waiting for the
  /// coordinator, or transport shutdown).
  std::uint64_t failedSwaps() const { return failedSwaps_; }

 private:
  Communicator* comm_;
  TimingStats waitStats_;
  std::uint64_t framesSwapped_ = 0;
  std::uint64_t degradedSwaps_ = 0;
  std::uint64_t failedSwaps_ = 0;
};

}  // namespace svq::net
