// swapsync.h — frame swap synchronization.
//
// Tiled display walls must swap every panel's backbuffer in the same
// vertical retrace or the wall visibly tears along tile seams. The
// SwapGroup reproduces the swap-barrier protocol: each node signals
// readiness for frame N and blocks until all members are ready; the
// per-node wait time is recorded so the benches can report barrier
// overhead and load imbalance (the slowest tile gates the frame).
//
// NOTE (like all collectives): every member must call ready() for the
// same sequence of frame ids.
#pragma once

#include "net/comm.h"
#include "util/stopwatch.h"

namespace svq::net {

class SwapGroup {
 public:
  explicit SwapGroup(Communicator& comm) : comm_(&comm) {}

  /// Signals that this rank finished rendering frame `frameId` and blocks
  /// until every rank has. Returns false on transport shutdown.
  bool ready(std::uint64_t frameId);

  /// Cumulative time this rank has spent blocked in ready().
  const TimingStats& waitStats() const { return waitStats_; }

  std::uint64_t framesSwapped() const { return framesSwapped_; }

 private:
  Communicator* comm_;
  TimingStats waitStats_;
  std::uint64_t framesSwapped_ = 0;
};

}  // namespace svq::net
