// comm.h — communicator: collectives over the point-to-point transport.
//
// A Communicator binds one rank to a transport and layers the collective
// operations the cluster-render protocol needs: barrier, broadcast,
// gather, and allreduce. Collectives use a reserved tag namespace and a
// per-communicator epoch counter so user traffic and successive
// collectives never collide.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/transport.h"

namespace svq::net {

/// Reserved tag space for collective operations; user tags must be >= 0
/// and < kCollectiveTagBase.
inline constexpr int kCollectiveTagBase = 1 << 24;

/// Per-rank handle with MPI-like semantics. Not thread-safe per instance;
/// each rank thread owns exactly one Communicator.
class Communicator {
 public:
  Communicator(InProcessTransport& transport, int rank)
      : transport_(&transport), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return transport_->rankCount(); }
  InProcessTransport& transport() const { return *transport_; }

  /// Point-to-point, user tag space.
  bool send(int dst, int tag, MessageBuffer payload) {
    return transport_->send(rank_, dst, tag, std::move(payload));
  }
  std::optional<Envelope> recv(int source = kAnySource, int tag = kAnyTag) {
    return transport_->recv(rank_, source, tag);
  }

  /// Blocks until every rank has entered the same barrier call.
  /// Central-counter algorithm: ranks report to 0, 0 releases everyone.
  /// Returns false on transport shutdown.
  bool barrier();

  /// Root's buffer is copied to all ranks; others' input is ignored.
  /// Every rank receives the broadcast payload in `data`.
  bool broadcast(int root, MessageBuffer& data);

  /// Every rank contributes `data`; on root, `out` receives size() buffers
  /// indexed by rank. Non-root ranks get an empty `out`.
  bool gather(int root, MessageBuffer data, std::vector<MessageBuffer>& out);

  /// Element-wise double-sum reduction of equal-length vectors; result is
  /// delivered to every rank (reduce-to-root + broadcast).
  bool allreduceSum(std::vector<double>& values);

 private:
  int nextEpochTag() { return kCollectiveTagBase + (epoch_++ & 0xFFFFFF); }

  InProcessTransport* transport_;
  int rank_;
  std::uint32_t epoch_ = 0;
};

}  // namespace svq::net
