// comm.h — communicator: collectives over the point-to-point transport.
//
// A Communicator binds one rank to a transport and layers the collective
// operations the cluster-render protocol needs: barrier, broadcast,
// gather, and allreduce. Collectives use a reserved tag namespace and a
// per-communicator epoch counter so user traffic and successive
// collectives never collide.
//
// Fault model: every collective returns a typed net::Status. With a
// finite CollectiveConfig::timeoutSeconds, rank 0 (the coordinator of the
// central-counter algorithms) detects missing peers by deadline — with
// bounded retry/backoff before declaring failure — marks them dead, and
// propagates the dead-set to the survivors in the barrier release payload
// (the heartbeat piggyback). Subsequent collectives run over the
// surviving membership, so one dead rank degrades the group instead of
// wedging it. Epoch tags that timed out are recorded and drained at the
// start of later collectives, so a late straggler's stale message can
// never poison a newer collective or a wildcard user receive.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/status.h"
#include "net/transport.h"

namespace svq::net {

/// Reserved tag space for collective operations; user tags must be >= 0
/// and < kCollectiveTagBase.
inline constexpr int kCollectiveTagBase = 1 << 24;

/// Deadline policy for collectives. The default (no timeout) reproduces
/// the classic blocking semantics: a collective waits forever, and the
/// only failure mode is transport shutdown.
struct CollectiveConfig {
  /// Per-wait deadline; < 0 waits indefinitely (failure detection off).
  double timeoutSeconds = kNoTimeout;
  /// Extra deadline windows granted before a silent peer is declared
  /// failed; each window is backoffMultiplier times the previous one.
  int retries = 2;
  double backoffMultiplier = 2.0;

  bool detectsFailure() const { return timeoutSeconds >= 0.0; }
  /// Total wait budget across the initial window plus all retries.
  double totalBudgetSeconds() const {
    if (!detectsFailure()) return kNoTimeout;
    double total = 0.0, window = timeoutSeconds;
    for (int i = 0; i <= retries; ++i) {
      total += window;
      window *= backoffMultiplier;
    }
    return total;
  }
};

/// Observability counters for the fault-handling paths.
struct CollectiveStats {
  std::uint64_t timeouts = 0;       ///< deadline windows that expired
  std::uint64_t retries = 0;        ///< extra windows granted after a timeout
  std::uint64_t peerFailures = 0;   ///< ranks this communicator declared dead
  std::uint64_t staleDrained = 0;   ///< stale-epoch messages purged
};

/// Per-rank handle with MPI-like semantics. Not thread-safe per instance;
/// each rank thread owns exactly one Communicator.
class Communicator {
 public:
  Communicator(InProcessTransport& transport, int rank,
               CollectiveConfig config = {})
      : transport_(&transport), rank_(rank), config_(config) {}

  int rank() const { return rank_; }
  int size() const { return transport_->rankCount(); }
  InProcessTransport& transport() const { return *transport_; }
  const CollectiveConfig& config() const { return config_; }
  void setConfig(const CollectiveConfig& config) { config_ = config; }

  /// Point-to-point, user tag space.
  bool send(int dst, int tag, MessageBuffer payload) {
    return transport_->send(rank_, dst, tag, std::move(payload));
  }
  std::optional<Envelope> recv(int source = kAnySource, int tag = kAnyTag) {
    return transport_->recv(rank_, source, tag);
  }

  // --- membership ----------------------------------------------------------
  // Ranks declared failed are excluded from every subsequent collective.
  // The dead-set converges across survivors at the next barrier (rank 0's
  // release payload carries it).

  bool isAlive(int rank) const { return !((deadMask_ >> rank) & 1u); }
  int aliveCount() const { return size() - std::popcount(deadMask_); }
  std::uint64_t deadMask() const { return deadMask_; }
  /// Marks a rank dead locally (rank 0 also propagates at the next
  /// barrier). Used by the cluster layer for scripted failovers.
  void markDead(int rank) { deadMask_ |= 1ULL << rank; }

  // --- collectives ---------------------------------------------------------

  /// Blocks until every live rank has entered the same barrier call.
  /// Central-counter algorithm: ranks report to 0, 0 releases everyone.
  /// The release payload doubles as the heartbeat: it carries the updated
  /// dead-set. Returns PeerFailed(rank) when a peer was newly declared
  /// dead (the barrier still completed over the survivors).
  Status barrier();

  /// Root's buffer is copied to all live ranks; others' input is ignored.
  /// Every rank receives the broadcast payload in `data`.
  Status broadcast(int root, MessageBuffer& data);

  /// Every live rank contributes `data`; on root, `out` receives size()
  /// buffers indexed by rank (dead ranks' entries empty). Non-root ranks
  /// get an empty `out`. PeerFailed(rank) = a contributor was declared
  /// dead this call; the surviving contributions are still in `out`.
  Status gather(int root, MessageBuffer data, std::vector<MessageBuffer>& out);

  /// Element-wise double-sum reduction of equal-length vectors over the
  /// live ranks; result is delivered to every rank (reduce + broadcast).
  Status allreduceSum(std::vector<double>& values);

  const CollectiveStats& stats() const { return stats_; }

 private:
  int nextEpochTag() { return kCollectiveTagBase + (epoch_++ & 0xFFFFFF); }
  void drainStaleEpochs();
  /// Collects one message per set bit of `remaining` (bit index = source
  /// rank) under the configured retry/backoff ladder; counts stats.
  Status recvWithRetry(std::uint64_t& remaining, int tag,
                       const std::function<void(Envelope&&)>& accept);

  InProcessTransport* transport_;
  int rank_;
  CollectiveConfig config_;
  CollectiveStats stats_;
  std::uint64_t deadMask_ = 0;
  std::vector<int> staleTags_;
  std::uint32_t epoch_ = 0;
};

}  // namespace svq::net
