#include "traj/dataset.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/logging.h"

namespace svq::traj {

namespace {

bool parseFloat(const std::string& s, float& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parseU32(const std::string& s, std::uint32_t& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

std::size_t TrajectoryDataset::totalPoints() const {
  std::size_t n = 0;
  for (const auto& t : trajectories_) n += t.size();
  return n;
}

float TrajectoryDataset::maxDuration() const {
  float d = 0.0f;
  for (const auto& t : trajectories_) d = std::max(d, t.duration());
  return d;
}

std::vector<std::uint32_t> TrajectoryDataset::select(
    const std::function<bool(const Trajectory&)>& pred) const {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < trajectories_.size(); ++i) {
    if (pred(trajectories_[i])) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

std::optional<std::size_t> TrajectoryDataset::findById(std::uint32_t id) const {
  for (std::size_t i = 0; i < trajectories_.size(); ++i) {
    if (trajectories_[i].meta().id == id) return i;
  }
  return std::nullopt;
}

bool TrajectoryDataset::validate(float slackCm) const {
  const float limit2 =
      (arena_.radiusCm + slackCm) * (arena_.radiusCm + slackCm);
  for (const auto& t : trajectories_) {
    if (!t.wellFormed()) return false;
    const auto v = t.view();
    for (std::size_t i = 0; i < v.count; ++i) {
      if (v.pos(i).norm2() > limit2) return false;
    }
  }
  return true;
}

std::string TrajectoryDataset::toCsv() const {
  std::ostringstream out;
  out << "# arena_radius_cm=" << arena_.radiusCm << '\n';
  out << "traj_id,side,direction,seed,t,x,y\n";
  for (const auto& t : trajectories_) {
    const auto& m = t.meta();
    const auto v = t.view();
    for (std::size_t i = 0; i < v.count; ++i) {
      out << m.id << ',' << toString(m.side) << ',' << toString(m.direction)
          << ',' << toString(m.seed) << ',' << v.time(i) << ',' << v.x[i]
          << ',' << v.y[i] << '\n';
    }
  }
  return out.str();
}

std::optional<TrajectoryDataset> TrajectoryDataset::fromCsv(
    const std::string& text) {
  TrajectoryDataset ds;

  // Optional arena comment line.
  std::string body = text;
  if (body.rfind("# arena_radius_cm=", 0) == 0) {
    const std::size_t eol = body.find('\n');
    const std::string val = body.substr(18, eol - 18);
    float r = 0.0f;
    if (!parseFloat(val, r) || r <= 0.0f) return std::nullopt;
    ds.setArena(ArenaSpec{r});
    body = eol == std::string::npos ? std::string{} : body.substr(eol + 1);
  }

  const auto rows = csvParse(body);
  if (rows.empty()) return ds;

  std::size_t start = 0;
  if (!rows[0].empty() && rows[0][0] == "traj_id") start = 1;  // header

  Trajectory current;
  bool haveCurrent = false;
  for (std::size_t r = start; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 7) return std::nullopt;
    TrajectoryMeta meta;
    TrajPoint pt;
    if (!parseU32(row[0], meta.id) || !parseCaptureSide(row[1], meta.side) ||
        !parseJourneyDirection(row[2], meta.direction) ||
        !parseSeedState(row[3], meta.seed) || !parseFloat(row[4], pt.t) ||
        !parseFloat(row[5], pt.pos.x) || !parseFloat(row[6], pt.pos.y)) {
      return std::nullopt;
    }
    if (!haveCurrent || current.meta().id != meta.id) {
      if (haveCurrent) ds.add(std::move(current));
      current = Trajectory(meta, {});
      haveCurrent = true;
    }
    current.appendPoint(pt);
  }
  if (haveCurrent) ds.add(std::move(current));
  return ds;
}

bool TrajectoryDataset::saveCsv(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    SVQ_ERROR << "cannot open " << path << " for writing";
    return false;
  }
  out << toCsv();
  return static_cast<bool>(out);
}

std::optional<TrajectoryDataset> TrajectoryDataset::loadCsv(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SVQ_ERROR << "cannot open " << path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return fromCsv(buf.str());
}

}  // namespace svq::traj
