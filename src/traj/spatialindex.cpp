#include "traj/spatialindex.h"

#include <algorithm>

namespace svq::traj {

namespace {

/// Coarse cell coordinate of `v` along one frame axis, clamped to [0, 7].
int cellOf(float v, float lo, float extent) {
  if (extent <= 0.0f) return 0;
  const float u = (v - lo) / extent;
  const int c = static_cast<int>(u * static_cast<float>(kFootprintGridSide));
  return std::clamp(c, 0, kFootprintGridSide - 1);
}

std::uint64_t cellRangeMask(int x0, int x1, int y0, int y1) {
  std::uint64_t mask = 0;
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      mask |= std::uint64_t{1} << (y * kFootprintGridSide + x);
    }
  }
  return mask;
}

}  // namespace

SpatialFootprint computeFootprint(const Trajectory& t, const AABB2& frame) {
  SpatialFootprint fp;
  const PointsView pts = t.view();
  if (pts.empty() || !frame.valid()) return fp;

  const Vec2 extent = frame.size();
  for (std::size_t i = 0; i < pts.size(); ++i) fp.bounds.expand(pts.pos(i));

  if (pts.size() == 1) {
    fp.occupancy = cellRangeMask(cellOf(pts.x[0], frame.min.x, extent.x),
                                 cellOf(pts.x[0], frame.min.x, extent.x),
                                 cellOf(pts.y[0], frame.min.y, extent.y),
                                 cellOf(pts.y[0], frame.min.y, extent.y));
    return fp;
  }

  for (std::size_t s = 0; s + 1 < pts.size(); ++s) {
    const Vec2 a = pts.pos(s);
    const Vec2 b = pts.pos(s + 1);
    // Mark the whole cell-rect spanned by the segment's endpoints so a
    // diagonal hop cannot leave an unmarked gap a midpoint probe could
    // land in. Segments are short relative to the 1/8-frame cells, so
    // this rect is almost always 1, 2 or 4 cells.
    const int ax = cellOf(a.x, frame.min.x, extent.x);
    const int bx = cellOf(b.x, frame.min.x, extent.x);
    const int ay = cellOf(a.y, frame.min.y, extent.y);
    const int by = cellOf(b.y, frame.min.y, extent.y);
    fp.occupancy |= cellRangeMask(std::min(ax, bx), std::max(ax, bx),
                                  std::min(ay, by), std::max(ay, by));
  }
  return fp;
}

std::uint64_t rectOccupancyMask(const AABB2& rect, const AABB2& frame) {
  if (!rect.valid() || !frame.valid()) return 0;
  // Reject rects entirely outside the frame; clamp partial overlaps.
  if (rect.max.x < frame.min.x || rect.min.x > frame.max.x ||
      rect.max.y < frame.min.y || rect.min.y > frame.max.y) {
    return 0;
  }
  const Vec2 extent = frame.size();
  return cellRangeMask(cellOf(rect.min.x, frame.min.x, extent.x),
                       cellOf(rect.max.x, frame.min.x, extent.x),
                       cellOf(rect.min.y, frame.min.y, extent.y),
                       cellOf(rect.max.y, frame.min.y, extent.y));
}

}  // namespace svq::traj
