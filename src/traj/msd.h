// msd.h — mean-squared displacement analysis.
//
// The analyst's "windy vs direct" reading (§VI.A) has a standard
// movement-ecology quantification: the mean-squared displacement curve
// MSD(tau) = <|x(t+tau) - x(t)|^2> and its scaling exponent alpha
// (MSD ~ tau^alpha): alpha ~ 1 for diffusive wandering (windy, on-trail
// ants), alpha ~ 2 for ballistic, directed motion (homing, off-trail
// ants). Used by tests and the case-study example to corroborate the
// visual verdicts.
#pragma once

#include <span>
#include <vector>

#include "traj/trajectory.h"

namespace svq::traj {

/// One point of an MSD curve.
struct MsdPoint {
  float lagS = 0.0f;
  float msdCm2 = 0.0f;
  std::size_t samplePairs = 0;
};

/// MSD curve of a single trajectory at the given lags (time-average over
/// all valid start times; lags without any pair are omitted).
std::vector<MsdPoint> msdCurve(const Trajectory& t,
                               std::span<const float> lagsS);

/// Ensemble MSD: pairs pooled across all trajectories.
std::vector<MsdPoint> msdCurveEnsemble(std::span<const Trajectory> trajs,
                                       std::span<const float> lagsS);

/// Log-log slope of an MSD curve (least squares over points with
/// msd > 0): the anomalous-diffusion exponent alpha. Returns 0 when the
/// curve has fewer than two usable points.
float diffusionExponent(std::span<const MsdPoint> curve);

/// Convenience: geometric lag ladder {base, base*2, base*4, ...} with
/// `count` rungs.
std::vector<float> geometricLags(float baseS, std::size_t count);

}  // namespace svq::traj
