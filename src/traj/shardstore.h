// shardstore.h — sharded, out-of-core trajectory store (§VI.C at scale).
//
// The in-memory TrajectoryDataset tops out around 10k trajectories; the
// paper's scalability path (and the ROADMAP north star) needs 100k–1M.
// This store keeps the dataset on disk, split into fixed-capacity shards,
// and materializes only the shards a computation actually touches through
// a memory-bounded LRU cache.
//
// File layout ("SVQS" container, version 1, little-endian), built on the
// existing SVQT trajectory format:
//
//   header:   magic u32 "SVQS", version u32, arenaRadius f32,
//             shardCapacity u32
//   payloads: shardCount complete SVQT blobs (io_binary format),
//             back-to-back
//   footer:   per shard { offset u64, byteSize u64, firstGlobalIndex u64,
//             pointCount u64, trajectoryCount u32, bounds 4*f32,
//             maxDuration f32 }
//   tail:     shardCount u32, trajectoryCount u64, pointCount u64,
//             footerBytes u64, magic u32 "SVQF"
//
// The tail is fixed-size and read first (from the end of the file), so
// opening a store touches O(shardCount) bytes, never the payloads. The
// per-shard feature summaries (bounds, counts, max duration) let callers
// prune shards without loading them.
//
// Cache behaviour: shard(i) returns a shared_ptr so evicted shards stay
// alive for callers still holding them; eviction is LRU down to
// cacheBudgetBytes (a single shard larger than the budget stays resident
// while referenced — the budget bounds what the *cache* retains).
// Hit/miss/eviction/bytes-resident counters are surfaced through the
// util/metrics registry under "<metricsPrefix>.*".
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "traj/dataset.h"
#include "traj/som.h"
#include "util/geometry.h"
#include "util/metrics.h"

namespace svq::traj {

/// Footer entry: everything known about a shard without loading it.
struct ShardInfo {
  std::uint64_t offset = 0;           ///< payload byte offset in the file
  std::uint64_t byteSize = 0;         ///< payload byte size
  std::uint64_t firstGlobalIndex = 0; ///< global index of its first trajectory
  std::uint64_t pointCount = 0;
  std::uint32_t trajectoryCount = 0;
  AABB2 bounds;                       ///< union of member sample bounds
  float maxDuration = 0.0f;           ///< longest member duration (s)
};

/// Streaming writer: add() trajectories in global-index order; a shard is
/// flushed to disk whenever `shardCapacity` trajectories are buffered, so
/// peak memory is one shard regardless of dataset size.
class ShardStoreWriter {
 public:
  ShardStoreWriter(const std::string& path, ArenaSpec arena,
                   std::uint32_t shardCapacity);
  ~ShardStoreWriter();

  ShardStoreWriter(const ShardStoreWriter&) = delete;
  ShardStoreWriter& operator=(const ShardStoreWriter&) = delete;

  bool ok() const { return ok_; }
  std::uint64_t trajectoriesWritten() const { return totalTrajectories_; }

  void add(Trajectory t);
  /// Flushes the partial shard and the footer; returns false on IO errors.
  /// The file is not a valid store until finish() succeeds.
  bool finish();

 private:
  void flushShard();

  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t totalTrajectories_ = 0;
  bool ok_ = false;
  bool finished_ = false;
};

/// Cache counter snapshot (values read from the metrics registry).
struct ShardCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytesResident = 0;
  std::uint64_t peakBytesResident = 0;

  double hitRate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

struct ShardStoreOptions {
  /// LRU budget over decoded shard bytes (estimate: points * sizeof
  /// TrajPoint + trajectories * sizeof Trajectory).
  std::size_t cacheBudgetBytes = 64u << 20;
  /// Metrics names are "<prefix>.hits" etc. Give concurrent stores
  /// distinct prefixes when their counters must not mix.
  std::string metricsPrefix = "shardstore";
};

/// Read side: lazily loads shards through the LRU cache. Thread-safe —
/// SOM training streams shards from pool workers.
class ShardStore {
 public:
  /// Opens a store file; nullopt on missing/corrupt header or footer.
  static std::optional<ShardStore> open(const std::string& path,
                                        ShardStoreOptions options = {});
  ~ShardStore();
  ShardStore(ShardStore&&) noexcept;
  ShardStore& operator=(ShardStore&&) noexcept;

  const ArenaSpec& arena() const;
  std::size_t shardCount() const;
  std::uint64_t trajectoryCount() const;
  std::uint64_t totalPoints() const;
  std::uint32_t shardCapacity() const;
  const ShardInfo& shardInfo(std::size_t shard) const;

  /// Loads (or returns the cached) shard. Never nullptr for in-range
  /// shards with intact payloads; nullptr when the payload fails to
  /// decode (file corrupted after open).
  std::shared_ptr<const TrajectoryDataset> shard(std::size_t shard) const;

  /// Maps a global trajectory index to (shard, index-within-shard).
  std::pair<std::size_t, std::uint32_t> locate(std::uint64_t globalIndex) const;

  /// Copies one trajectory out of its (cached) shard.
  Trajectory trajectory(std::uint64_t globalIndex) const;

  ShardCacheStats cacheStats() const;
  /// Drops every cached shard (counters keep their values).
  void clearCache() const;

 private:
  ShardStore();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// FeatureBlockSource over a store: block b = shard b's feature vectors,
/// recomputed on every load (the shard cache absorbs the IO; features are
/// never all resident at once).
class ShardFeatureSource final : public FeatureBlockSource {
 public:
  ShardFeatureSource(const ShardStore& store, FeatureParams params)
      : store_(&store), params_(params) {}

  std::size_t blockCount() const override { return store_->shardCount(); }
  std::vector<std::vector<float>> loadBlock(std::size_t b) const override;

 private:
  const ShardStore* store_;
  FeatureParams params_;
};

/// Clustering of a shard store: same shape as ClusteredDataset but indices
/// are *global* store indices and averages are accumulated out-of-core.
struct ShardClustering {
  SomParams somParams;
  FeatureParams featureParams;
  /// Trained lattice weights, row-major (nodeCount x featureDim).
  std::vector<std::vector<float>> somWeights;
  /// assignment[g] = BMU node of global trajectory g.
  std::vector<std::uint32_t> assignment;
  /// members[node] = global indices assigned to that node, ascending.
  std::vector<std::vector<std::uint32_t>> members;
  /// Cluster-average trajectory per node (empty for empty nodes).
  std::vector<Trajectory> averages;

  std::size_t nodeCount() const { return members.size(); }
  std::size_t nonEmptyClusters() const;
  std::size_t maxClusterSize() const;
};

/// Trains a batch SOM over the store (see Som::trainBatch — bit-identical
/// across thread counts and shard streaming order for a fixed seed) and
/// assigns every trajectory to its BMU, streaming shards twice per epoch
/// plus once for assignment/averages. `pool` nullptr = serial.
ShardClustering clusterShardStore(const ShardStore& store,
                                  const SomParams& somParams,
                                  const FeatureParams& featureParams,
                                  ThreadPool* pool = nullptr);

/// Convenience: shard an in-memory dataset out to `path`.
bool writeShardStore(const TrajectoryDataset& dataset, const std::string& path,
                     std::uint32_t shardCapacity);

}  // namespace svq::traj
