// shardstore.h — sharded, out-of-core trajectory store (§VI.C at scale).
//
// The in-memory TrajectoryDataset tops out around 10k trajectories; the
// paper's scalability path (and the ROADMAP north star) needs 100k–1M.
// This store keeps the dataset on disk, split into fixed-capacity shards,
// and materializes only the shards a computation actually touches through
// a memory-bounded LRU cache.
//
// File layout ("SVQS" container, version 3, little-endian), built on the
// existing SVQT trajectory format:
//
//   header:   magic u32 "SVQS", version u32, arenaRadius f32,
//             shardCapacity u32, headerCrc u32 (CRC32C of the preceding
//             16 bytes)
//   payloads: per shard, a block header { magic u32 "SVQB", byteSize u64,
//             payloadCrc u32, headerCrc u32 } followed by a complete SVQT
//             blob (io_binary format), back-to-back
//   footer:   per shard { offset u64 (of the payload, past its block
//             header), byteSize u64, firstGlobalIndex u64, pointCount u64,
//             trajectoryCount u32, payloadCrc u32, bounds 4*f32,
//             maxDuration f32 } and — v3 only — the spatial summary
//             { occupancy 4*u64, envelope 4*f32, tMin f32, tMax f32 }
//             (see traj/shardsummary.h)
//   tail:     shardCount u32, trajectoryCount u64, pointCount u64,
//             footerBytes u64, footerCrc u32, tailCrc u32 (CRC32C of the
//             preceding 32 bytes), magic u32 "SVQF"
//
// The tail is fixed-size and read first (from the end of the file), so
// opening a store touches O(shardCount) bytes, never the payloads. The
// per-shard feature summaries (bounds, counts, max duration) let callers
// prune shards without loading them; the v3 spatial summary additionally
// lets the anytime query path (core/progressive.h) classify whole shards
// as definitely-out without IO. Version 2 stores (no summary) still open
// — summary() rebuilds their summaries lazily from the payloads, and
// repairShardStore() upgrades them to v3 on rewrite.
//
// Integrity and crash-safety (the storage counterpart to the net-layer
// fault model, see DESIGN.md "Storage fault model"):
//   * Every payload carries a CRC32C, recorded twice (block header and
//     footer) and verified on every load into the LRU cache; the footer
//     and tail carry their own CRCs. A single bit flip anywhere in a
//     checksummed region is always detected — a store can be wrong, but
//     never silently wrong.
//   * The writer streams into "<path>.tmp" and publishes with
//     fsync + atomic rename only after the footer and tail are complete
//     (footer-last commit protocol): a killed writer leaves no file at
//     the target path, and repairShardStore() recovers the temp file to
//     its last fully committed shard using the self-delimiting block
//     headers.
//   * A shard whose payload fails its CRC (or decode, or read after
//     bounded retries) is *quarantined*, not fatal: shard() returns
//     nullptr, shardStatus() reports the typed io::Status cause, and
//     queries degrade over the surviving shards, surfacing coverage().
//     Quarantine is sticky and deterministic for a given file + fault
//     seed, which keeps out-of-core clustering bit-deterministic across
//     thread counts even under injected faults.
//
// Cache behaviour: shard(i) returns a shared_ptr so evicted shards stay
// alive for callers still holding them; eviction is LRU down to
// cacheBudgetBytes (a single shard larger than the budget stays resident
// while referenced — the budget bounds what the *cache* retains).
// Hit/miss/eviction/bytes-resident counters are surfaced through the
// util/metrics registry under "<metricsPrefix>.*".
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "traj/dataset.h"
#include "traj/shardsummary.h"
#include "traj/som.h"
#include "util/geometry.h"
#include "util/io.h"
#include "util/metrics.h"

namespace svq::traj {

/// SVQS container versions this reader accepts. The writer emits
/// kShardFormatCurrent unless told otherwise; kShardFormatV2 exists for
/// back-compat tests and for generating summary-less stores.
inline constexpr std::uint32_t kShardFormatV2 = 2;
inline constexpr std::uint32_t kShardFormatCurrent = 3;

/// Footer entry: everything known about a shard without loading it.
struct ShardInfo {
  std::uint64_t offset = 0;           ///< payload byte offset in the file
  std::uint64_t byteSize = 0;         ///< payload byte size
  std::uint64_t firstGlobalIndex = 0; ///< global index of its first trajectory
  std::uint64_t pointCount = 0;
  std::uint32_t trajectoryCount = 0;
  std::uint32_t payloadCrc = 0;       ///< CRC32C of the payload bytes
  AABB2 bounds;                       ///< union of member sample bounds
  float maxDuration = 0.0f;           ///< longest member duration (s)
};

/// Streaming writer: add() trajectories in global-index order; a shard is
/// flushed to disk whenever `shardCapacity` trajectories are buffered, so
/// peak memory is one shard regardless of dataset size.
///
/// Crash-safety: all writes go to tempPath() ("<path>.tmp"); finish()
/// flushes the footer and tail, fsyncs, and atomically renames into
/// place. Until finish() returns true there is no file at `path` — a
/// crashed or torn writer can never clobber a previous good store, and
/// its temp file is recoverable with repairShardStore().
class ShardStoreWriter {
 public:
  ShardStoreWriter(const std::string& path, ArenaSpec arena,
                   std::uint32_t shardCapacity,
                   io::FaultInjector* faultInjector = nullptr,
                   std::uint32_t formatVersion = kShardFormatCurrent);
  ~ShardStoreWriter();

  ShardStoreWriter(const ShardStoreWriter&) = delete;
  ShardStoreWriter& operator=(const ShardStoreWriter&) = delete;

  bool ok() const { return ok_; }
  std::uint64_t trajectoriesWritten() const { return totalTrajectories_; }
  /// Where bytes land before finish() publishes them ("<path>.tmp").
  const std::string& tempPath() const;

  void add(Trajectory t);
  /// Flushes the partial shard, footer and tail, fsyncs and atomically
  /// publishes the store; returns false on IO errors (or an injected torn
  /// write, which leaves the truncated temp file in place for repair).
  bool finish();

 private:
  void flushShard();

  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t totalTrajectories_ = 0;
  bool ok_ = false;
  bool finished_ = false;
};

/// Cache counter snapshot (values read from the metrics registry).
struct ShardCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytesResident = 0;
  std::uint64_t peakBytesResident = 0;

  double hitRate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

struct ShardStoreOptions {
  /// LRU budget over decoded shard bytes (estimate: points * sizeof
  /// TrajPoint + trajectories * sizeof Trajectory).
  std::size_t cacheBudgetBytes = 64u << 20;
  /// Metrics names are "<prefix>.hits" etc. Give concurrent stores
  /// distinct prefixes when their counters must not mix.
  std::string metricsPrefix = "shardstore";
  /// Bounded retry-with-backoff for transient read faults (EIO, short
  /// read). Corrupt payloads are never retried — corruption is a property
  /// of the media, and retrying would only delay quarantine.
  io::RetryPolicy retry;
  /// Optional deterministic fault injection under every payload read and
  /// the writer's publish step. Not owned; must outlive the store.
  io::FaultInjector* faultInjector = nullptr;
};

/// Result of a ShardStore::verify() full scan.
struct ShardVerifyReport {
  std::size_t shardsChecked = 0;
  /// (shard index, cause) for every shard that failed verification.
  std::vector<std::pair<std::size_t, io::Status>> badShards;
  /// The worst per-shard status folded into one verdict.
  io::Status worst = io::Status::ok();

  bool ok() const { return badShards.empty(); }
};

/// Result of repairShardStore().
struct RepairReport {
  std::size_t shardsRecovered = 0;
  std::uint64_t trajectoriesRecovered = 0;
  /// Bytes past the last committed shard that were discarded.
  std::uint64_t bytesDiscarded = 0;
  io::Status status = io::Status::ok();
};

/// Read side: lazily loads shards through the LRU cache. Thread-safe —
/// SOM training streams shards from pool workers.
class ShardStore {
 public:
  /// Opens a store file; nullopt on missing/corrupt header, footer or
  /// tail. When `openStatus` is non-null it receives the typed cause
  /// (kIoError: unreadable, kTruncated: too short, kCorrupt: CRC or
  /// structural validation failed).
  static std::optional<ShardStore> open(const std::string& path,
                                        ShardStoreOptions options = {},
                                        io::Status* openStatus = nullptr);
  ~ShardStore();
  ShardStore(ShardStore&&) noexcept;
  ShardStore& operator=(ShardStore&&) noexcept;

  const ArenaSpec& arena() const;
  std::size_t shardCount() const;
  std::uint64_t trajectoryCount() const;
  std::uint64_t totalPoints() const;
  std::uint32_t shardCapacity() const;
  /// The container version this file was written as (kShardFormatV2 or
  /// kShardFormatCurrent).
  std::uint32_t formatVersion() const;
  const ShardInfo& shardInfo(std::size_t shard) const;

  /// Spatial summary of one shard (see traj/shardsummary.h). v3 stores
  /// answer from the footer (no IO); v2 stores — and v3 entries whose
  /// persisted summary fails validateShardSummary — rebuild lazily from
  /// the payload through the shard cache, memoized. nullopt when the
  /// summary is unavailable (quarantined shard with nothing persisted):
  /// callers must treat such shards as *uncertain*, never pruned.
  std::optional<ShardSummary> summary(std::size_t shard) const;

  /// Loads (or returns the cached) shard. Every load is CRC-verified
  /// before it enters the cache; nullptr when the shard is (or becomes)
  /// quarantined — payload CRC/decode failure, or a read fault that
  /// survived the retry policy. Quarantine is sticky: later calls return
  /// nullptr immediately and queries degrade over the survivors.
  std::shared_ptr<const TrajectoryDataset> shard(std::size_t shard) const;

  /// Typed status of one shard: ok, or the quarantine cause.
  io::Status shardStatus(std::size_t shard) const;
  bool isQuarantined(std::size_t shard) const {
    return !shardStatus(shard).isOk();
  }
  std::size_t quarantinedShardCount() const;
  std::uint64_t quarantinedTrajectoryCount() const;
  /// Fraction of trajectories still reachable: 1.0 = fully healthy.
  double coverage() const;

  /// Full-scan integrity check: reads every payload (through the fault
  /// injector, bypassing the cache) and verifies its CRC. Shards that
  /// fail are quarantined, so a verify() pass doubles as pre-flight
  /// self-healing before a long session.
  ShardVerifyReport verify() const;

  /// Maps a global trajectory index to (shard, index-within-shard).
  std::pair<std::size_t, std::uint32_t> locate(std::uint64_t globalIndex) const;

  /// Copies one trajectory out of its (cached) shard.
  Trajectory trajectory(std::uint64_t globalIndex) const;

  ShardCacheStats cacheStats() const;
  /// Drops every cached shard (counters keep their values).
  void clearCache() const;

 private:
  ShardStore();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// FeatureBlockSource over a store: block b = shard b's feature vectors,
/// recomputed on every load (the shard cache absorbs the IO; features are
/// never all resident at once).
class ShardFeatureSource final : public FeatureBlockSource {
 public:
  ShardFeatureSource(const ShardStore& store, FeatureParams params)
      : store_(&store), params_(params) {}

  std::size_t blockCount() const override { return store_->shardCount(); }
  std::vector<std::vector<float>> loadBlock(std::size_t b) const override;

 private:
  const ShardStore* store_;
  FeatureParams params_;
};

/// Clustering of a shard store: same shape as ClusteredDataset but indices
/// are *global* store indices and averages are accumulated out-of-core.
struct ShardClustering {
  /// assignment[] value for trajectories in quarantined shards: never
  /// clustered, never a member of any node.
  static constexpr std::uint32_t kUnassigned = 0xFFFFFFFFu;

  SomParams somParams;
  FeatureParams featureParams;
  /// Trained lattice weights, row-major (nodeCount x featureDim).
  std::vector<std::vector<float>> somWeights;
  /// assignment[g] = BMU node of global trajectory g (kUnassigned for
  /// trajectories lost to quarantined shards).
  std::vector<std::uint32_t> assignment;
  /// members[node] = global indices assigned to that node, ascending.
  std::vector<std::vector<std::uint32_t>> members;
  /// Cluster-average trajectory per node (empty for empty nodes).
  std::vector<Trajectory> averages;
  /// Shards that were quarantined during clustering, ascending.
  std::vector<std::uint32_t> quarantinedShards;
  /// Trajectories that streamed through clustering vs the store total.
  std::uint64_t coveredTrajectories = 0;
  std::uint64_t totalTrajectories = 0;

  std::size_t nodeCount() const { return members.size(); }
  std::size_t nonEmptyClusters() const;
  std::size_t maxClusterSize() const;
  /// Fraction of the store's trajectories the clustering covers; 1.0
  /// when nothing was quarantined. Scenes surface < 1.0 as "partial
  /// data" markers.
  double coverage() const {
    return totalTrajectories == 0
               ? 1.0
               : static_cast<double>(coveredTrajectories) /
                     static_cast<double>(totalTrajectories);
  }
};

/// Trains a batch SOM over the store (see Som::trainBatch — bit-identical
/// across thread counts and shard streaming order for a fixed seed) and
/// assigns every trajectory to its BMU, streaming shards twice per epoch
/// plus once for assignment/averages. `pool` nullptr = serial.
///
/// Degrades gracefully over quarantined shards: their trajectories stay
/// kUnassigned, the result's coverage()/quarantinedShards report the
/// loss, and — because quarantine is deterministic for a given file +
/// fault seed — the clustering stays bit-identical across thread counts
/// for the same set of surviving shards.
ShardClustering clusterShardStore(const ShardStore& store,
                                  const SomParams& somParams,
                                  const FeatureParams& featureParams,
                                  ThreadPool* pool = nullptr);

/// Recovers a (possibly torn or corrupt) store file in place: scans the
/// self-delimiting shard block headers from the front, keeps the longest
/// prefix of shards whose headers and payload CRCs verify, recomputes the
/// footer/tail from the surviving payloads, and atomically rewrites the
/// file (always as kShardFormatCurrent — repair decodes every surviving
/// payload anyway, so v2 inputs pick up their spatial summaries for
/// free). Works on both published stores and a killed writer's temp
/// file. Returns false (with report->status carrying the cause) when not
/// even the file header survives — there is nothing to repair to.
bool repairShardStore(const std::string& path, RepairReport* report = nullptr);

/// Convenience: shard an in-memory dataset out to `path`.
bool writeShardStore(const TrajectoryDataset& dataset, const std::string& path,
                     std::uint32_t shardCapacity,
                     std::uint32_t formatVersion = kShardFormatCurrent);

}  // namespace svq::traj
