// occupancy.h — arena occupancy (density) fields.
//
// The §VI.C scaling discussion proposes representations that show
// "general trajectory shape while discarding high-frequency features".
// An occupancy field is the aggregate version of that idea: the time a
// set of trajectories spends per arena texel. It yields the at-a-glance
// density overview for a group or SOM cluster and gives the analytics a
// quantitative footing (where do searchers concentrate? how focused is a
// cluster?).
#pragma once

#include <span>
#include <vector>

#include "traj/dataset.h"
#include "util/geometry.h"

namespace svq::traj {

/// Accumulated residence time (seconds) over a square arena grid.
class OccupancyGrid {
 public:
  OccupancyGrid(float arenaRadiusCm = 50.0f, int resolution = 128);

  float arenaRadiusCm() const { return arenaRadiusCm_; }
  int resolution() const { return resolution_; }

  /// Adds one trajectory's residence time (each sample interval credited
  /// to the texel under its midpoint). Optional time window clips.
  void accumulate(const Trajectory& t, float t0 = 0.0f, float t1 = 1e9f);

  /// Adds every listed trajectory of a dataset.
  void accumulate(const TrajectoryDataset& dataset,
                  std::span<const std::uint32_t> indices, float t0 = 0.0f,
                  float t1 = 1e9f);

  void clear();

  /// Residence time at an arena position (0 outside the grid).
  float at(Vec2 arenaCm) const;
  /// Raw texel access (row-major, y * resolution + x).
  const std::vector<float>& cells() const { return cells_; }

  float totalSeconds() const;
  float maxSeconds() const;

  /// Fraction of total residence time within `radiusCm` of the centre —
  /// the "how much searching happens in the middle" scalar.
  float centerFraction(float radiusCm) const;

  /// Shannon entropy (bits) of the normalized field: low = concentrated,
  /// high = spread out. 0 for an empty grid.
  float entropyBits() const;

 private:
  int toTexel(float cm) const;

  float arenaRadiusCm_;
  int resolution_;
  float texelSizeCm_;
  std::vector<float> cells_;
};

}  // namespace svq::traj
