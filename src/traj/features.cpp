#include "traj/features.h"

#include <cassert>
#include <cmath>

#include "traj/resample.h"
#include "traj/stats.h"

namespace svq::traj {

std::size_t featureDimension(const FeatureParams& p) {
  return 2 * p.resampleCount + (p.includeShape ? 3 : 0);
}

std::vector<float> extractFeatures(const Trajectory& t,
                                   const FeatureParams& p) {
  std::vector<float> f;
  f.reserve(featureDimension(p));
  const Trajectory r = resampleUniform(t, p.resampleCount);
  const Vec2 origin = r.empty() ? Vec2{} : r.front().pos;
  const float scale = 1.0f / std::max(1e-3f, p.arenaRadiusCm);
  const PointsView v = r.view();
  for (std::size_t i = 0; i < v.count; ++i) {
    f.push_back((v.x[i] - origin.x) * scale);
    f.push_back((v.y[i] - origin.y) * scale);
  }
  if (p.includeShape) {
    // Normalized shape scalars: straightness is already in [0,1]; speed and
    // duration are scaled by rough dataset-wide magnitudes.
    f.push_back(p.shapeWeight * straightness(t));
    f.push_back(p.shapeWeight * (meanSpeed(t) / 10.0f));
    f.push_back(p.shapeWeight * (t.duration() / 180.0f));
  }
  return f;
}

float featureDistance2(const std::vector<float>& a,
                       const std::vector<float>& b) {
  assert(a.size() == b.size());
  float d2 = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    d2 += d * d;
  }
  return d2;
}

}  // namespace svq::traj
