// stats.h — trajectory statistics.
//
// These are the low-level inferences the analyst reads off the wall
// visually ("this group is windier", "these exit west", "that ant sat in
// the centre"); here they are computable so the reproduction can verify
// that planted behavioural effects actually hold in generated data and
// that visual-query verdicts agree with ground truth.
#pragma once

#include <optional>
#include <vector>

#include "traj/trajectory.h"
#include "util/geometry.h"

namespace svq::traj {

/// Compass side of the arena boundary, used to classify exit points.
enum class ArenaSide : std::uint8_t { kEast = 0, kWest, kNorth, kSouth };

const char* toString(ArenaSide s);

/// Sinuosity = path length / net displacement. 1 for a straight line,
/// larger for windier paths; returns +inf-ish cap for near-zero
/// displacement (capped at `cap`).
float sinuosity(const Trajectory& t, float cap = 100.0f);

/// Heading of net displacement (radians, atan2 convention); nullopt when
/// displacement is ~0.
std::optional<float> netHeading(const Trajectory& t, float minDispCm = 1e-3f);

/// Classifies the final sample's direction from the arena centre into one
/// of the four compass sides (45-degree sectors: east = |angle| < pi/4 ...).
/// nullopt if the final point is within `minRadiusCm` of the centre.
std::optional<ArenaSide> exitSide(const Trajectory& t,
                                  float minRadiusCm = 1.0f);

/// True iff the trajectory's last point is outside the given arena (the ant
/// actually left, rather than the clock running out).
bool exitedArena(const Trajectory& t, float arenaRadiusCm);

/// Total time (s) the trajectory spends within `radiusCm` of the arena
/// centre inside the time window [t0, t1] (segment-wise linear).
float dwellTimeInCenter(const Trajectory& t, float radiusCm, float t0,
                        float t1);

/// Mean speed over the whole trajectory (cm/s); 0 for < 2 points.
float meanSpeed(const Trajectory& t);

/// Per-step turning angles (radians in (-pi, pi]); empty for < 3 points.
std::vector<float> turningAngles(const Trajectory& t);

/// Mean of |turning angle| — a robust windiness scalar.
float meanAbsTurning(const Trajectory& t);

/// Longest contiguous run of samples (by duration, s) during which the ant
/// moves slower than `speedThresholdCmS` — the "stationary ant" signature
/// that shows up as a display-perpendicular segment in the space-time cube.
float longestStationaryRunS(const Trajectory& t, float speedThresholdCmS);

/// Straightness index = net displacement / path length, in [0, 1].
float straightness(const Trajectory& t);

/// First time (s) the trajectory leaves the disc of `radiusCm` around the
/// centre for good (never re-enters); nullopt if it never leaves.
std::optional<float> centerDepartureTime(const Trajectory& t, float radiusCm);

/// Dominant angular frequency (rad/s) of the heading signal, estimated by
/// counting signed heading-rotation; captures the H4 looping periodicity.
/// Returns 0 for trajectories with < 3 points.
float meanAngularVelocity(const Trajectory& t);

/// Aggregate descriptive statistics over a set of scalars.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

Summary summarize(std::vector<double> values);

}  // namespace svq::traj
