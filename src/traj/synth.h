// synth.h — behavioural ant-navigation simulator.
//
// Substitute for the paper's field-collected dataset (~500 Messor
// cephalotes trajectories from Mpala, Kenya). The simulator is a
// correlated random walk with navigation strategies layered on top, and it
// plants — with controllable strength — exactly the behavioural effects
// the pilot study's hypotheses probed:
//
//   H1 (Fig 5): ants captured EAST of the north-south foraging trail tend
//       to exit the arena on the WEST side (homing back toward the trail),
//       and symmetrically for the other sides;
//   H2 (§VI.A): ants captured ON the trail produce windier paths, ants
//       captured off-trail walk more directly;
//   H3 (§V.B): ants that dropped a seed at capture spend the early part of
//       the experiment nearly stationary in the arena centre, searching;
//   H4 (§V.C): search behaviour has a periodic (looping) component,
//       visible as helical structure in the space-time cube.
//
// Every effect can be disabled (null model) so hypothesis tests have
// negative controls. All randomness flows from one seed.
#pragma once

#include <cstdint>

#include "traj/dataset.h"
#include "traj/trajectory.h"
#include "util/rng.h"

namespace svq::traj {

/// Tunable behaviour model. Defaults reproduce the qualitative effects the
/// paper reports; set the *Strength knobs to 0 for null (no-effect) data.
struct AntBehaviorParams {
  // --- kinematics --------------------------------------------------------
  float timeStepS = 0.1f;         ///< tracker sampling interval
  float meanSpeedCmS = 3.0f;      ///< mean walking speed
  float speedJitter = 0.35f;      ///< lognormal-ish multiplicative jitter
  float minDurationS = 10.0f;     ///< paper: trajectories are 10 s – 3 min
  float maxDurationS = 180.0f;

  // --- correlated random walk -------------------------------------------
  /// Turning-angle concentration for off-trail (direct) walkers; closer to
  /// 1 means straighter paths.
  float directRho = 0.92f;
  /// Turning-angle concentration for on-trail (windy) walkers.
  float windyRho = 0.55f;
  /// H2 effect strength in [0,1]: 0 makes all ants share directRho.
  float windinessStrength = 1.0f;

  // --- homing (H1) --------------------------------------------------------
  /// Probability weight of steering toward the home direction each step.
  float homingBias = 0.30f;
  /// H1 effect strength in [0,1]: scales homingBias; 0 = no homing.
  float homingStrength = 1.0f;

  // --- seed-search dwell (H3) ---------------------------------------------
  /// Mean duration of the initial centre search for seed-droppers (s).
  float seedSearchMeanS = 25.0f;
  /// Speed multiplier during search (near-stationary).
  float searchSpeedFactor = 0.15f;
  /// H3 effect strength in [0,1]: 0 disables the search phase.
  float seedSearchStrength = 1.0f;

  // --- periodic looping (H4) ----------------------------------------------
  /// Angular rate (rad/s) of the systematic-search loop component.
  float loopRateRadS = 0.9f;
  /// H4 effect strength in [0,1]: amplitude of the loop bias.
  float loopStrength = 0.5f;

  /// Returns a copy with every behavioural effect zeroed (null model).
  AntBehaviorParams nullModel() const {
    AntBehaviorParams p = *this;
    p.windinessStrength = 0.0f;
    p.homingStrength = 0.0f;
    p.seedSearchStrength = 0.0f;
    p.loopStrength = 0.0f;
    return p;
  }
};

/// Mix of experimental conditions in a generated dataset.
struct DatasetSpec {
  std::size_t count = 500;        ///< paper: ~500 trajectories
  ArenaSpec arena{};              ///< 50 cm radius circular arena
  /// Fraction of ants captured on the trail; the remainder is split evenly
  /// over east/west/north/south.
  float onTrailFraction = 0.2f;
  /// Fraction of ants returning (vs outbound) at capture.
  float returningFraction = 0.5f;
  /// Fractions of carrying / dropped seed states (rest = not carrying).
  float carryingFraction = 0.25f;
  float droppedFraction = 0.2f;
};

/// Generates ant trajectories. Deterministic for a fixed seed.
class AntSimulator {
 public:
  explicit AntSimulator(AntBehaviorParams params = {},
                        std::uint64_t seed = 0x5eedULL)
      : params_(params), rng_(seed) {}

  const AntBehaviorParams& params() const { return params_; }

  /// The homeward (goal) heading for a capture side, in radians.
  /// East-captured ants home west (pi), west-captured home east (0),
  /// north-captured home south (-pi/2), south-captured home north (pi/2).
  /// On-trail ants have no fixed goal (returns 0; unused when homing
  /// weight is 0 for them).
  static float homeHeading(CaptureSide side);

  /// Simulates one ant released at the arena centre. The trajectory ends
  /// when the ant crosses the arena boundary or maxDurationS elapses, and
  /// is always at least two samples long.
  Trajectory simulate(TrajectoryMeta meta, const ArenaSpec& arena);

  /// Generates a full dataset with the given condition mix.
  TrajectoryDataset generate(const DatasetSpec& spec);

 private:
  AntBehaviorParams params_;
  Rng rng_;
};

}  // namespace svq::traj
