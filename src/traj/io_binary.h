// io_binary.h — compact binary dataset format.
//
// CSV is the interchange format; at §VI.C scales (10k–1M trajectories) a
// compact binary format matters. Layout ("SVQT" magic, version 1,
// little-endian):
//   header:  magic u32, version u32, arenaRadius f32, trajectoryCount u32
//   per trajectory: id u32, side u8, direction u8, seed u8, pointCount u32,
//                   then pointCount * (t f32, x f32, y f32)
// Round-trips exactly (bit-identical floats).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "traj/dataset.h"

namespace svq::traj {

/// Serializes the dataset to the binary format.
std::string toBinary(const TrajectoryDataset& dataset);

/// Parses the binary format; nullopt on wrong magic/version/truncation or
/// count fields larger than the payload could possibly hold (the parser
/// never allocates more than O(bytes.size())). The view overload lets the
/// shard store decode a slice of a larger file without copying.
std::optional<TrajectoryDataset> fromBinary(std::string_view bytes);
std::optional<TrajectoryDataset> fromBinary(const std::string& bytes);

/// File convenience wrappers.
bool saveBinary(const TrajectoryDataset& dataset, const std::string& path);
std::optional<TrajectoryDataset> loadBinary(const std::string& path);

}  // namespace svq::traj
