// features.h — fixed-length feature vectors for trajectory clustering.
//
// §VI.C scales the technique past ~500 instances by clustering
// trajectories "based on feature similarity by employing self-organizing
// maps". The feature vector here follows the Schreck et al. style the
// paper cites: the trajectory is resampled to a fixed number of points,
// translated so it starts at the origin, and scaled by a common arena
// scale (NOT per-trajectory, so spatial extent remains discriminative);
// a few shape scalars are appended with tunable weight.
#pragma once

#include <vector>

#include "traj/trajectory.h"

namespace svq::traj {

struct FeatureParams {
  std::size_t resampleCount = 32;  ///< spatial samples in the vector
  float arenaRadiusCm = 50.0f;     ///< common normalization scale
  float shapeWeight = 1.0f;        ///< weight of appended shape scalars
  bool includeShape = true;        ///< append sinuosity/speed/duration terms
};

/// Dimensionality of vectors produced with these params.
std::size_t featureDimension(const FeatureParams& p);

/// Extracts the feature vector of one trajectory. Layout:
///   [x0,y0, x1,y1, ..., x(k-1),y(k-1), (straightness, normSpeed, normDur)]
/// with positions relative to the first sample and divided by arenaRadius.
std::vector<float> extractFeatures(const Trajectory& t,
                                   const FeatureParams& p);

/// Squared Euclidean distance between equal-length feature vectors.
float featureDistance2(const std::vector<float>& a,
                       const std::vector<float>& b);

}  // namespace svq::traj
