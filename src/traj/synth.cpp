#include "traj/synth.h"

#include <algorithm>
#include <cmath>

namespace svq::traj {

float AntSimulator::homeHeading(CaptureSide side) {
  // Arena axes: +x = east, +y = north. The colony trail runs north-south,
  // so an ant displaced east of the trail homes west, and vice versa.
  switch (side) {
    case CaptureSide::kEast: return kPi;          // -> west
    case CaptureSide::kWest: return 0.0f;         // -> east
    case CaptureSide::kNorth: return -kPi * 0.5f; // -> south
    case CaptureSide::kSouth: return kPi * 0.5f;  // -> north
    case CaptureSide::kOnTrail: return 0.0f;      // unused (no goal)
  }
  return 0.0f;
}

Trajectory AntSimulator::simulate(TrajectoryMeta meta, const ArenaSpec& arena) {
  const AntBehaviorParams& p = params_;
  std::vector<TrajPoint> pts;

  const bool onTrail = meta.side == CaptureSide::kOnTrail;
  // H2: on-trail ants are windier. With windinessStrength=0 both groups use
  // the direct concentration.
  const float rho =
      onTrail ? lerp(p.directRho, p.windyRho, p.windinessStrength)
              : p.directRho;
  // H1: off-trail ants steer toward home; on-trail ants have no goal.
  const float homingWeight =
      onTrail ? 0.0f : p.homingBias * p.homingStrength;
  const float goal = homeHeading(meta.side);

  // H3: seed-droppers search the centre first.
  float searchUntilS = 0.0f;
  if (meta.seed == SeedState::kDroppedAtCapture && p.seedSearchStrength > 0.0f) {
    searchUntilS = static_cast<float>(
        rng_.exponential(1.0 / std::max(1.0f, p.seedSearchMeanS *
                                                  p.seedSearchStrength)));
    searchUntilS = clamp(searchUntilS, 5.0f * p.seedSearchStrength,
                         0.6f * p.maxDurationS);
  }

  // Duration budget: at least minDurationS even if the ant would exit
  // earlier we still keep what we have; boundary exit ends tracking.
  const float duration =
      rng_.uniform(p.minDurationS, p.maxDurationS);

  float heading = rng_.uniform(-kPi, kPi);
  // Returning ants start out slightly better aligned with home (they were
  // already navigating when captured).
  if (!onTrail && meta.direction == JourneyDirection::kReturning) {
    heading = rng_.wrappedNormal(goal, 1.2f);
  }

  Vec2 pos{0.0f, 0.0f};
  const float dt = p.timeStepS;
  pts.push_back({pos, 0.0f});

  float t = dt;
  // Per-ant loop phase/direction for the H4 periodic search component.
  const float loopSign = rng_.chance(0.5) ? 1.0f : -1.0f;
  for (; t <= duration; t += dt) {
    const bool searching = t < searchUntilS;

    // Correlated random walk step: heading accumulates a wrapped-Cauchy
    // turning angle; goal attraction blends the heading toward home.
    const float effRho = searching ? 0.3f : rho;
    float turn = rng_.wrappedCauchy(effRho);

    // H4: during search (and faintly afterwards for on-trail ants), a
    // constant angular rate produces looping/spiral structure.
    if (searching && p.loopStrength > 0.0f) {
      turn += loopSign * p.loopRateRadS * dt *
              (p.loopStrength * 2.0f);
    } else if (onTrail && p.loopStrength > 0.0f) {
      turn += loopSign * p.loopRateRadS * dt * (p.loopStrength * 0.5f);
    }

    heading = wrapAngle(heading + turn);
    if (!searching && homingWeight > 0.0f) {
      // Blend toward goal by rotating a fraction of the angular error.
      const float err = wrapAngle(goal - heading);
      heading = wrapAngle(heading + homingWeight * err);
    }

    float speed = p.meanSpeedCmS *
                  std::exp(static_cast<float>(
                      rng_.normal(0.0, p.speedJitter)));
    if (searching) {
      speed *= lerp(1.0f, p.searchSpeedFactor, p.seedSearchStrength);
    }

    pos += Vec2::fromAngle(heading) * (speed * dt);
    pts.push_back({pos, t});

    if (!arena.contains(pos)) break;  // exited the arena: tracking ends
  }

  // Guarantee >= 2 samples (degenerate parameter sets).
  if (pts.size() < 2) {
    pts.push_back({pos + Vec2{0.1f, 0.0f}, pts.back().t + dt});
  }
  return Trajectory(meta, std::move(pts));
}

TrajectoryDataset AntSimulator::generate(const DatasetSpec& spec) {
  TrajectoryDataset ds(spec.arena);
  ds.reserve(spec.count);

  const CaptureSide offTrail[] = {CaptureSide::kEast, CaptureSide::kWest,
                                  CaptureSide::kNorth, CaptureSide::kSouth};
  for (std::size_t i = 0; i < spec.count; ++i) {
    TrajectoryMeta meta;
    meta.id = static_cast<std::uint32_t>(i);
    if (rng_.chance(spec.onTrailFraction)) {
      meta.side = CaptureSide::kOnTrail;
    } else {
      meta.side = offTrail[rng_.below(4)];
    }
    meta.direction = rng_.chance(spec.returningFraction)
                         ? JourneyDirection::kReturning
                         : JourneyDirection::kOutbound;
    const double u = rng_.uniform();
    if (u < spec.carryingFraction) {
      meta.seed = SeedState::kCarrying;
    } else if (u < spec.carryingFraction + spec.droppedFraction) {
      meta.seed = SeedState::kDroppedAtCapture;
    } else {
      meta.seed = SeedState::kNotCarrying;
    }
    ds.add(simulate(meta, spec.arena));
  }
  return ds;
}

}  // namespace svq::traj
