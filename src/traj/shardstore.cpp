#include "traj/shardstore.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <fstream>
#include <list>
#include <mutex>
#include <unordered_map>

#include "traj/io_binary.h"
#include "traj/resample.h"
#include "util/logging.h"
#include "util/threadpool.h"

namespace svq::traj {

namespace {

constexpr std::uint32_t kShardMagic = 0x53515653u;   // "SVQS"
constexpr std::uint32_t kFooterMagic = 0x46515653u;  // "SVQF"
constexpr std::uint32_t kShardVersion = 1;
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 4;
// offset + byteSize + firstGlobalIndex + pointCount, trajCount,
// bounds (4 floats), maxDuration.
constexpr std::size_t kFooterEntryBytes = 8 * 4 + 4 + 4 * 4 + 4;
// shardCount, trajectoryCount, pointCount, footerBytes, magic.
constexpr std::size_t kTailBytes = 4 + 8 + 8 + 8 + 4;

void putU32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void putU64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void putF32(std::string& out, float v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

/// Bounded little-endian reader over a byte buffer.
class BufReader {
 public:
  explicit BufReader(std::string_view bytes) : bytes_(bytes) {}
  bool u32(std::uint32_t& v) { return raw(&v, sizeof v); }
  bool u64(std::uint64_t& v) { return raw(&v, sizeof v); }
  bool f32(float& v) { return raw(&v, sizeof v); }

 private:
  bool raw(void* p, std::size_t n) {
    if (n > bytes_.size() - cursor_) return false;
    std::memcpy(p, bytes_.data() + cursor_, n);
    cursor_ += n;
    return true;
  }
  std::string_view bytes_;
  std::size_t cursor_ = 0;
};

/// Decoded-shard memory estimate used for the cache budget.
std::uint64_t residentBytesEstimate(const ShardInfo& info) {
  return info.pointCount * sizeof(TrajPoint) +
         static_cast<std::uint64_t>(info.trajectoryCount) * sizeof(Trajectory);
}

}  // namespace

// --- writer ----------------------------------------------------------------

struct ShardStoreWriter::Impl {
  std::ofstream out;
  ArenaSpec arena;
  std::uint32_t shardCapacity = 0;
  TrajectoryDataset buffer;
  std::vector<ShardInfo> infos;
  std::uint64_t cursor = 0;
  std::uint64_t totalPoints = 0;
};

ShardStoreWriter::ShardStoreWriter(const std::string& path, ArenaSpec arena,
                                   std::uint32_t shardCapacity)
    : impl_(std::make_unique<Impl>()) {
  impl_->arena = arena;
  impl_->shardCapacity = std::max(1u, shardCapacity);
  impl_->buffer = TrajectoryDataset(arena);
  impl_->out.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->out) {
    SVQ_ERROR << "shardstore: cannot open " << path << " for writing";
    return;
  }
  std::string header;
  putU32(header, kShardMagic);
  putU32(header, kShardVersion);
  putF32(header, arena.radiusCm);
  putU32(header, impl_->shardCapacity);
  impl_->out.write(header.data(), static_cast<std::streamsize>(header.size()));
  impl_->cursor = kHeaderBytes;
  ok_ = static_cast<bool>(impl_->out);
}

ShardStoreWriter::~ShardStoreWriter() = default;

void ShardStoreWriter::add(Trajectory t) {
  if (!ok_ || finished_) return;
  impl_->buffer.add(std::move(t));
  ++totalTrajectories_;
  if (impl_->buffer.size() >= impl_->shardCapacity) flushShard();
}

void ShardStoreWriter::flushShard() {
  if (impl_->buffer.empty()) return;
  ShardInfo info;
  info.offset = impl_->cursor;
  info.trajectoryCount = static_cast<std::uint32_t>(impl_->buffer.size());
  info.firstGlobalIndex =
      totalTrajectories_ - static_cast<std::uint64_t>(impl_->buffer.size());
  for (const Trajectory& t : impl_->buffer.all()) {
    info.pointCount += t.size();
    info.bounds.expand(t.bounds());
    info.maxDuration = std::max(info.maxDuration, t.duration());
  }
  const std::string blob = toBinary(impl_->buffer);
  info.byteSize = blob.size();
  impl_->out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  impl_->cursor += blob.size();
  impl_->totalPoints += info.pointCount;
  impl_->infos.push_back(info);
  impl_->buffer = TrajectoryDataset(impl_->arena);
  ok_ = static_cast<bool>(impl_->out);
}

bool ShardStoreWriter::finish() {
  if (!ok_ || finished_) return ok_ && finished_;
  flushShard();
  std::string footer;
  for (const ShardInfo& info : impl_->infos) {
    putU64(footer, info.offset);
    putU64(footer, info.byteSize);
    putU64(footer, info.firstGlobalIndex);
    putU64(footer, info.pointCount);
    putU32(footer, info.trajectoryCount);
    const bool valid = info.bounds.valid();
    putF32(footer, valid ? info.bounds.min.x : 0.0f);
    putF32(footer, valid ? info.bounds.min.y : 0.0f);
    putF32(footer, valid ? info.bounds.max.x : 0.0f);
    putF32(footer, valid ? info.bounds.max.y : 0.0f);
    putF32(footer, info.maxDuration);
  }
  putU32(footer, static_cast<std::uint32_t>(impl_->infos.size()));
  putU64(footer, totalTrajectories_);
  putU64(footer, impl_->totalPoints);
  putU64(footer, static_cast<std::uint64_t>(impl_->infos.size()) *
                     kFooterEntryBytes);
  putU32(footer, kFooterMagic);
  impl_->out.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  impl_->out.flush();
  ok_ = static_cast<bool>(impl_->out);
  finished_ = true;
  impl_->out.close();
  return ok_;
}

// --- reader ----------------------------------------------------------------

struct ShardStore::Impl {
  std::string path;
  ShardStoreOptions options;
  ArenaSpec arena;
  std::uint32_t shardCapacity = 0;
  std::vector<ShardInfo> infos;
  std::uint64_t trajectoryCount = 0;
  std::uint64_t totalPoints = 0;

  // Cache state: all guarded by mutex (including the ifstream).
  mutable std::mutex mutex;
  mutable std::ifstream in;
  struct Entry {
    std::shared_ptr<const TrajectoryDataset> dataset;
    std::uint64_t bytes = 0;
    std::list<std::size_t>::iterator lruIt;
  };
  mutable std::unordered_map<std::size_t, Entry> cache;
  mutable std::list<std::size_t> lru;  // front = most recently used
  mutable std::uint64_t bytesResident = 0;

  Counter* hits = nullptr;
  Counter* misses = nullptr;
  Counter* evictions = nullptr;
  Gauge* residentGauge = nullptr;

  void evictDownToBudget() {
    while (bytesResident > options.cacheBudgetBytes && lru.size() > 1) {
      const std::size_t victim = lru.back();
      lru.pop_back();
      auto it = cache.find(victim);
      bytesResident -= it->second.bytes;
      residentGauge->sub(it->second.bytes);
      cache.erase(it);
      evictions->add();
    }
  }
};

ShardStore::ShardStore() : impl_(std::make_unique<Impl>()) {}
ShardStore::~ShardStore() = default;
ShardStore::ShardStore(ShardStore&&) noexcept = default;
ShardStore& ShardStore::operator=(ShardStore&&) noexcept = default;

std::optional<ShardStore> ShardStore::open(const std::string& path,
                                           ShardStoreOptions options) {
  ShardStore store;
  Impl& s = *store.impl_;
  s.path = path;
  s.options = options;
  s.in.open(path, std::ios::binary);
  if (!s.in) return std::nullopt;

  s.in.seekg(0, std::ios::end);
  const std::uint64_t fileSize = static_cast<std::uint64_t>(s.in.tellg());
  if (fileSize < kHeaderBytes + kTailBytes) return std::nullopt;

  // Header.
  std::string headerBytes(kHeaderBytes, '\0');
  s.in.seekg(0);
  s.in.read(headerBytes.data(), kHeaderBytes);
  BufReader header(headerBytes);
  std::uint32_t magic = 0, version = 0;
  float radius = 0.0f;
  if (!header.u32(magic) || magic != kShardMagic) return std::nullopt;
  if (!header.u32(version) || version != kShardVersion) return std::nullopt;
  if (!header.f32(radius) || radius <= 0.0f) return std::nullopt;
  if (!header.u32(s.shardCapacity) || s.shardCapacity == 0) return std::nullopt;
  s.arena = ArenaSpec{radius};

  // Tail, then footer.
  std::string tailBytes(kTailBytes, '\0');
  s.in.seekg(static_cast<std::streamoff>(fileSize - kTailBytes));
  s.in.read(tailBytes.data(), kTailBytes);
  BufReader tail(tailBytes);
  std::uint32_t shardCount = 0, tailMagic = 0;
  std::uint64_t footerBytes = 0;
  if (!tail.u32(shardCount) || !tail.u64(s.trajectoryCount) ||
      !tail.u64(s.totalPoints) || !tail.u64(footerBytes) ||
      !tail.u32(tailMagic) || tailMagic != kFooterMagic) {
    return std::nullopt;
  }
  if (footerBytes != static_cast<std::uint64_t>(shardCount) * kFooterEntryBytes ||
      kHeaderBytes + footerBytes + kTailBytes > fileSize) {
    return std::nullopt;
  }

  std::string footerBuf(footerBytes, '\0');
  s.in.seekg(static_cast<std::streamoff>(fileSize - kTailBytes - footerBytes));
  s.in.read(footerBuf.data(), static_cast<std::streamsize>(footerBytes));
  if (!s.in) return std::nullopt;
  BufReader footer(footerBuf);
  s.infos.resize(shardCount);
  std::uint64_t expectedFirst = 0;
  for (ShardInfo& info : s.infos) {
    float minX = 0, minY = 0, maxX = 0, maxY = 0;
    if (!footer.u64(info.offset) || !footer.u64(info.byteSize) ||
        !footer.u64(info.firstGlobalIndex) || !footer.u64(info.pointCount) ||
        !footer.u32(info.trajectoryCount) || !footer.f32(minX) ||
        !footer.f32(minY) || !footer.f32(maxX) || !footer.f32(maxY) ||
        !footer.f32(info.maxDuration)) {
      return std::nullopt;
    }
    info.bounds = AABB2::of({minX, minY}, {maxX, maxY});
    // Payloads must lie between header and footer and tile the global
    // index space in order.
    if (info.offset < kHeaderBytes ||
        info.offset + info.byteSize > fileSize - kTailBytes - footerBytes ||
        info.firstGlobalIndex != expectedFirst || info.trajectoryCount == 0) {
      return std::nullopt;
    }
    expectedFirst += info.trajectoryCount;
  }
  if (expectedFirst != s.trajectoryCount) return std::nullopt;

  const std::string prefix = options.metricsPrefix;
  auto& registry = MetricsRegistry::global();
  s.hits = &registry.counter(prefix + ".hits");
  s.misses = &registry.counter(prefix + ".misses");
  s.evictions = &registry.counter(prefix + ".evictions");
  s.residentGauge = &registry.gauge(prefix + ".bytes_resident");
  return store;
}

const ArenaSpec& ShardStore::arena() const { return impl_->arena; }
std::size_t ShardStore::shardCount() const { return impl_->infos.size(); }
std::uint64_t ShardStore::trajectoryCount() const {
  return impl_->trajectoryCount;
}
std::uint64_t ShardStore::totalPoints() const { return impl_->totalPoints; }
std::uint32_t ShardStore::shardCapacity() const { return impl_->shardCapacity; }

const ShardInfo& ShardStore::shardInfo(std::size_t shard) const {
  return impl_->infos[shard];
}

std::shared_ptr<const TrajectoryDataset> ShardStore::shard(
    std::size_t shard) const {
  Impl& s = *impl_;
  assert(shard < s.infos.size());
  std::lock_guard<std::mutex> lock(s.mutex);
  if (auto it = s.cache.find(shard); it != s.cache.end()) {
    s.hits->add();
    s.lru.splice(s.lru.begin(), s.lru, it->second.lruIt);
    return it->second.dataset;
  }
  s.misses->add();
  const ShardInfo& info = s.infos[shard];
  std::string blob(info.byteSize, '\0');
  s.in.clear();
  s.in.seekg(static_cast<std::streamoff>(info.offset));
  s.in.read(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!s.in) {
    SVQ_ERROR << "shardstore: short read for shard " << shard;
    return nullptr;
  }
  auto decoded = fromBinary(std::string_view(blob));
  if (!decoded) {
    SVQ_ERROR << "shardstore: corrupt payload for shard " << shard;
    return nullptr;
  }
  auto dataset =
      std::make_shared<const TrajectoryDataset>(std::move(*decoded));
  Impl::Entry entry;
  entry.dataset = dataset;
  entry.bytes = residentBytesEstimate(info);
  s.lru.push_front(shard);
  entry.lruIt = s.lru.begin();
  s.bytesResident += entry.bytes;
  s.residentGauge->add(entry.bytes);
  s.cache.emplace(shard, std::move(entry));
  s.evictDownToBudget();
  return dataset;
}

std::pair<std::size_t, std::uint32_t> ShardStore::locate(
    std::uint64_t globalIndex) const {
  const auto& infos = impl_->infos;
  assert(globalIndex < impl_->trajectoryCount);
  auto it = std::upper_bound(
      infos.begin(), infos.end(), globalIndex,
      [](std::uint64_t g, const ShardInfo& info) {
        return g < info.firstGlobalIndex;
      });
  const std::size_t shard = static_cast<std::size_t>(it - infos.begin()) - 1;
  return {shard, static_cast<std::uint32_t>(
                     globalIndex - infos[shard].firstGlobalIndex)};
}

Trajectory ShardStore::trajectory(std::uint64_t globalIndex) const {
  const auto [shardIdx, local] = locate(globalIndex);
  const auto dataset = shard(shardIdx);
  if (!dataset) return {};
  return (*dataset)[local];
}

ShardCacheStats ShardStore::cacheStats() const {
  const Impl& s = *impl_;
  ShardCacheStats stats;
  stats.hits = s.hits->value();
  stats.misses = s.misses->value();
  stats.evictions = s.evictions->value();
  stats.bytesResident = s.residentGauge->value();
  stats.peakBytesResident = s.residentGauge->peak();
  return stats;
}

void ShardStore::clearCache() const {
  Impl& s = *impl_;
  std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& [shard, entry] : s.cache) s.residentGauge->sub(entry.bytes);
  s.cache.clear();
  s.lru.clear();
  s.bytesResident = 0;
}

// --- clustering ------------------------------------------------------------

std::vector<std::vector<float>> ShardFeatureSource::loadBlock(
    std::size_t b) const {
  const auto dataset = store_->shard(b);
  if (!dataset) return {};
  const std::size_t dim = featureDimension(params_);
  std::vector<std::vector<float>> features(dataset->size());
  for (std::size_t i = 0; i < dataset->size(); ++i) {
    features[i] = extractFeatures((*dataset)[i], params_);
    // Degenerate (empty) trajectories yield short vectors; pad so every
    // sample matches the SOM's feature dimension.
    features[i].resize(dim, 0.0f);
  }
  return features;
}

std::size_t ShardClustering::nonEmptyClusters() const {
  std::size_t n = 0;
  for (const auto& m : members) {
    if (!m.empty()) ++n;
  }
  return n;
}

std::size_t ShardClustering::maxClusterSize() const {
  std::size_t n = 0;
  for (const auto& m : members) n = std::max(n, m.size());
  return n;
}

ShardClustering clusterShardStore(const ShardStore& store,
                                  const SomParams& somParams,
                                  const FeatureParams& featureParams,
                                  ThreadPool* pool) {
  ShardClustering out;
  out.somParams = somParams;
  out.featureParams = featureParams;

  const std::size_t dim = featureDimension(featureParams);
  Som som(somParams, dim);
  ShardFeatureSource source(store, featureParams);
  BatchTrainOptions trainOptions;
  trainOptions.pool = pool;
  som.trainBatch(source, trainOptions);

  const std::size_t nodes = som.nodeCount();
  out.somWeights.reserve(nodes);
  for (std::size_t r = 0; r < som.rows(); ++r) {
    for (std::size_t c = 0; c < som.cols(); ++c) {
      out.somWeights.push_back(som.weights(r, c));
    }
  }

  // Assignment + cluster-average pass: shards stream through the pool,
  // each accumulating resampled member positions into its own per-node
  // sums; reduction runs in shard order (deterministic).
  const std::size_t shardCount = store.shardCount();
  const std::size_t resample = featureParams.resampleCount;
  out.assignment.resize(store.trajectoryCount());
  struct ShardAcc {
    std::vector<double> sums;           // nodes * resample * 3 (x, y, t)
    std::vector<std::uint64_t> counts;  // nodes
  };
  std::vector<ShardAcc> acc(shardCount);

  const auto processShard = [&](std::size_t shardIdx) {
    const auto dataset = store.shard(shardIdx);
    ShardAcc& a = acc[shardIdx];
    a.sums.assign(nodes * resample * 3, 0.0);
    a.counts.assign(nodes, 0);
    if (!dataset) return;
    const std::uint64_t first = store.shardInfo(shardIdx).firstGlobalIndex;
    for (std::size_t i = 0; i < dataset->size(); ++i) {
      const Trajectory& t = (*dataset)[i];
      std::vector<float> f = extractFeatures(t, featureParams);
      f.resize(dim, 0.0f);
      const std::size_t bmu = som.bestMatchingUnit(f);
      out.assignment[first + i] = static_cast<std::uint32_t>(bmu);
      if (t.empty()) continue;  // nothing to average
      const Trajectory r = resampleUniform(t, resample);
      double* sums = a.sums.data() + bmu * resample * 3;
      for (std::size_t p = 0; p < resample && p < r.size(); ++p) {
        sums[p * 3 + 0] += static_cast<double>(r[p].pos.x);
        sums[p * 3 + 1] += static_cast<double>(r[p].pos.y);
        sums[p * 3 + 2] += static_cast<double>(r[p].t);
      }
      ++a.counts[bmu];
    }
  };

  if (pool != nullptr) {
    pool->parallelFor(0, shardCount, processShard, 1);
  } else {
    for (std::size_t i = 0; i < shardCount; ++i) processShard(i);
  }

  std::vector<double> sums(nodes * resample * 3, 0.0);
  std::vector<std::uint64_t> counts(nodes, 0);
  for (std::size_t shardIdx = 0; shardIdx < shardCount; ++shardIdx) {
    for (std::size_t i = 0; i < sums.size(); ++i) sums[i] += acc[shardIdx].sums[i];
    for (std::size_t n = 0; n < nodes; ++n) counts[n] += acc[shardIdx].counts[n];
  }

  out.members.assign(nodes, {});
  for (std::size_t g = 0; g < out.assignment.size(); ++g) {
    out.members[out.assignment[g]].push_back(static_cast<std::uint32_t>(g));
  }

  out.averages.resize(nodes);
  for (std::size_t node = 0; node < nodes; ++node) {
    if (counts[node] == 0) continue;
    const double inv = 1.0 / static_cast<double>(counts[node]);
    std::vector<TrajPoint> pts(resample);
    const double* nodeSums = sums.data() + node * resample * 3;
    for (std::size_t p = 0; p < resample; ++p) {
      pts[p].pos.x = static_cast<float>(nodeSums[p * 3 + 0] * inv);
      pts[p].pos.y = static_cast<float>(nodeSums[p * 3 + 1] * inv);
      pts[p].t = static_cast<float>(nodeSums[p * 3 + 2] * inv);
    }
    TrajectoryMeta meta;
    meta.id = static_cast<std::uint32_t>(node);
    out.averages[node] = Trajectory(meta, std::move(pts));
  }
  return out;
}

bool writeShardStore(const TrajectoryDataset& dataset, const std::string& path,
                     std::uint32_t shardCapacity) {
  ShardStoreWriter writer(path, dataset.arena(), shardCapacity);
  if (!writer.ok()) return false;
  for (const Trajectory& t : dataset.all()) writer.add(t);
  return writer.finish();
}

}  // namespace svq::traj
