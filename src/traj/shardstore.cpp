#include "traj/shardstore.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <list>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "traj/io_binary.h"
#include "traj/resample.h"
#include "util/logging.h"
#include "util/threadpool.h"

namespace svq::traj {

namespace {

constexpr std::uint32_t kShardMagic = 0x53515653u;   // "SVQS"
constexpr std::uint32_t kBlockMagic = 0x42515653u;   // "SVQB"
constexpr std::uint32_t kFooterMagic = 0x46515653u;  // "SVQF"
// magic, version, arenaRadius, shardCapacity + headerCrc over them.
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 4 + 4;
// Per-shard block header: magic, byteSize, payloadCrc + headerCrc over them.
constexpr std::size_t kBlockHeaderBytes = 4 + 8 + 4 + 4;
// offset + byteSize + firstGlobalIndex + pointCount, trajCount, payloadCrc,
// bounds (4 floats), maxDuration.
constexpr std::size_t kFooterEntryBytesV2 = 8 * 4 + 4 + 4 + 4 * 4 + 4;

bool supportedVersion(std::uint32_t version) {
  return version == kShardFormatV2 || version == kShardFormatCurrent;
}

/// Footer entry size is version-dependent: v3 appends the fixed-size
/// spatial summary to every entry.
std::size_t footerEntryBytes(std::uint32_t version) {
  return version >= kShardFormatCurrent
             ? kFooterEntryBytesV2 + ShardSummary::kSerializedBytes
             : kFooterEntryBytesV2;
}
// shardCount, trajectoryCount, pointCount, footerBytes, footerCrc,
// tailCrc (over the preceding 32 bytes), magic.
constexpr std::size_t kTailBytes = 4 + 8 + 8 + 8 + 4 + 4 + 4;

void putU32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void putU64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void putF32(std::string& out, float v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

/// Bounded little-endian reader over a byte buffer.
class BufReader {
 public:
  explicit BufReader(std::string_view bytes) : bytes_(bytes) {}
  bool u32(std::uint32_t& v) { return raw(&v, sizeof v); }
  bool u64(std::uint64_t& v) { return raw(&v, sizeof v); }
  bool f32(float& v) { return raw(&v, sizeof v); }

 private:
  bool raw(void* p, std::size_t n) {
    if (n > bytes_.size() - cursor_) return false;
    std::memcpy(p, bytes_.data() + cursor_, n);
    cursor_ += n;
    return true;
  }
  std::string_view bytes_;
  std::size_t cursor_ = 0;
};

/// Decoded-shard memory estimate used for the cache budget.
std::uint64_t residentBytesEstimate(const ShardInfo& info) {
  return info.pointCount * sizeof(TrajPoint) +
         static_cast<std::uint64_t>(info.trajectoryCount) * sizeof(Trajectory);
}

std::string encodeFileHeader(float radiusCm, std::uint32_t shardCapacity,
                             std::uint32_t version) {
  std::string header;
  putU32(header, kShardMagic);
  putU32(header, version);
  putF32(header, radiusCm);
  putU32(header, shardCapacity);
  putU32(header, io::crc32c(header.data(), header.size()));
  return header;
}

std::string encodeBlockHeader(std::uint64_t byteSize, std::uint32_t payloadCrc) {
  std::string block;
  putU32(block, kBlockMagic);
  putU64(block, byteSize);
  putU32(block, payloadCrc);
  putU32(block, io::crc32c(block.data(), block.size()));
  return block;
}

/// Validated block-header fields; false on bad magic or CRC.
bool decodeBlockHeader(std::string_view bytes, std::uint64_t& byteSize,
                       std::uint32_t& payloadCrc) {
  if (bytes.size() < kBlockHeaderBytes) return false;
  BufReader r(bytes);
  std::uint32_t magic = 0, headerCrc = 0;
  if (!r.u32(magic) || magic != kBlockMagic) return false;
  if (!r.u64(byteSize) || !r.u32(payloadCrc) || !r.u32(headerCrc)) return false;
  return headerCrc == io::crc32c(bytes.data(), kBlockHeaderBytes - 4);
}

/// Footer + tail for a finished sequence of shards. For v3, `summaries`
/// must parallel `infos`; for v2 it is ignored.
std::string encodeFooterAndTail(const std::vector<ShardInfo>& infos,
                                const std::vector<ShardSummary>& summaries,
                                std::uint32_t version,
                                std::uint64_t trajectoryCount,
                                std::uint64_t totalPoints) {
  std::string footer;
  for (std::size_t i = 0; i < infos.size(); ++i) {
    const ShardInfo& info = infos[i];
    putU64(footer, info.offset);
    putU64(footer, info.byteSize);
    putU64(footer, info.firstGlobalIndex);
    putU64(footer, info.pointCount);
    putU32(footer, info.trajectoryCount);
    putU32(footer, info.payloadCrc);
    const bool valid = info.bounds.valid();
    putF32(footer, valid ? info.bounds.min.x : 0.0f);
    putF32(footer, valid ? info.bounds.min.y : 0.0f);
    putF32(footer, valid ? info.bounds.max.x : 0.0f);
    putF32(footer, valid ? info.bounds.max.y : 0.0f);
    putF32(footer, info.maxDuration);
    if (version >= kShardFormatCurrent) {
      const ShardSummary& summary = summaries[i];
      for (const std::uint64_t word : summary.occupancy) putU64(footer, word);
      const bool envValid = summary.envelope.valid();
      putF32(footer, envValid ? summary.envelope.min.x : 0.0f);
      putF32(footer, envValid ? summary.envelope.min.y : 0.0f);
      putF32(footer, envValid ? summary.envelope.max.x : -1.0f);
      putF32(footer, envValid ? summary.envelope.max.y : -1.0f);
      putF32(footer, summary.tMin);
      putF32(footer, summary.tMax);
    }
  }
  const std::uint32_t footerCrc = io::crc32c(footer.data(), footer.size());

  std::string tail;
  putU32(tail, static_cast<std::uint32_t>(infos.size()));
  putU64(tail, trajectoryCount);
  putU64(tail, totalPoints);
  putU64(tail,
         static_cast<std::uint64_t>(infos.size()) * footerEntryBytes(version));
  putU32(tail, footerCrc);
  putU32(tail, io::crc32c(tail.data(), tail.size()));
  putU32(tail, kFooterMagic);
  return footer + tail;
}

/// Summarizes a decoded shard payload into its ShardInfo (offset,
/// byteSize, payloadCrc and firstGlobalIndex are the caller's).
void summarizePayload(const TrajectoryDataset& shard, ShardInfo& info) {
  info.trajectoryCount = static_cast<std::uint32_t>(shard.size());
  info.pointCount = 0;
  info.bounds = AABB2{};
  info.maxDuration = 0.0f;
  for (const Trajectory& t : shard.all()) {
    info.pointCount += t.size();
    info.bounds.expand(t.bounds());
    info.maxDuration = std::max(info.maxDuration, t.duration());
  }
}

}  // namespace

// --- writer ----------------------------------------------------------------

struct ShardStoreWriter::Impl {
  std::ofstream out;
  std::string finalPath;
  std::string tempPath;
  ArenaSpec arena;
  std::uint32_t shardCapacity = 0;
  std::uint32_t formatVersion = kShardFormatCurrent;
  io::FaultInjector* faultInjector = nullptr;
  TrajectoryDataset buffer;
  std::vector<ShardInfo> infos;
  std::vector<ShardSummary> summaries;
  std::uint64_t cursor = 0;
  std::uint64_t totalPoints = 0;
};

ShardStoreWriter::ShardStoreWriter(const std::string& path, ArenaSpec arena,
                                   std::uint32_t shardCapacity,
                                   io::FaultInjector* faultInjector,
                                   std::uint32_t formatVersion)
    : impl_(std::make_unique<Impl>()) {
  impl_->arena = arena;
  impl_->shardCapacity = std::max(1u, shardCapacity);
  impl_->formatVersion =
      supportedVersion(formatVersion) ? formatVersion : kShardFormatCurrent;
  impl_->faultInjector = faultInjector;
  impl_->buffer = TrajectoryDataset(arena);
  impl_->finalPath = path;
  impl_->tempPath = path + ".tmp";
  impl_->out.open(impl_->tempPath, std::ios::binary | std::ios::trunc);
  if (!impl_->out) {
    SVQ_ERROR << "shardstore: cannot open " << impl_->tempPath
              << " for writing";
    return;
  }
  const std::string header = encodeFileHeader(
      arena.radiusCm, impl_->shardCapacity, impl_->formatVersion);
  impl_->out.write(header.data(), static_cast<std::streamsize>(header.size()));
  impl_->cursor = kHeaderBytes;
  ok_ = static_cast<bool>(impl_->out);
}

ShardStoreWriter::~ShardStoreWriter() = default;

const std::string& ShardStoreWriter::tempPath() const {
  return impl_->tempPath;
}

void ShardStoreWriter::add(Trajectory t) {
  if (!ok_ || finished_) return;
  impl_->buffer.add(std::move(t));
  ++totalTrajectories_;
  if (impl_->buffer.size() >= impl_->shardCapacity) flushShard();
}

void ShardStoreWriter::flushShard() {
  if (impl_->buffer.empty()) return;
  ShardInfo info;
  info.firstGlobalIndex =
      totalTrajectories_ - static_cast<std::uint64_t>(impl_->buffer.size());
  summarizePayload(impl_->buffer, info);
  impl_->summaries.push_back(computeShardSummary(impl_->buffer));
  const std::string blob = toBinary(impl_->buffer);
  info.byteSize = blob.size();
  info.payloadCrc = io::crc32c(blob.data(), blob.size());
  info.offset = impl_->cursor + kBlockHeaderBytes;
  const std::string block = encodeBlockHeader(info.byteSize, info.payloadCrc);
  impl_->out.write(block.data(), static_cast<std::streamsize>(block.size()));
  impl_->out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  impl_->cursor += block.size() + blob.size();
  impl_->totalPoints += info.pointCount;
  impl_->infos.push_back(info);
  impl_->buffer = TrajectoryDataset(impl_->arena);
  ok_ = static_cast<bool>(impl_->out);
}

bool ShardStoreWriter::finish() {
  if (!ok_ || finished_) return ok_ && finished_;
  flushShard();
  const std::string footerAndTail =
      encodeFooterAndTail(impl_->infos, impl_->summaries,
                          impl_->formatVersion, totalTrajectories_,
                          impl_->totalPoints);
  impl_->out.write(footerAndTail.data(),
                   static_cast<std::streamsize>(footerAndTail.size()));
  impl_->cursor += footerAndTail.size();
  impl_->out.flush();
  ok_ = static_cast<bool>(impl_->out);
  finished_ = true;
  impl_->out.close();
  if (!ok_) return false;

  // Injected torn write: cut the byte stream mid-file and "crash" before
  // publication — the truncated temp file stays behind for repair, the
  // target path is untouched.
  if (impl_->faultInjector != nullptr &&
      impl_->faultInjector->tornWriteAtByte() != io::FaultInjector::kNoTornWrite &&
      impl_->faultInjector->tornWriteAtByte() < impl_->cursor) {
    std::error_code ec;
    std::filesystem::resize_file(impl_->tempPath,
                                 impl_->faultInjector->tornWriteAtByte(), ec);
    impl_->faultInjector->noteTornWrite();
    SVQ_WARN << "shardstore: injected torn write at byte "
             << impl_->faultInjector->tornWriteAtByte() << " in "
             << impl_->tempPath;
    ok_ = false;
    return false;
  }

  // Footer-last commit protocol: only a file whose tail made it to disk
  // is published, via fsync + atomic rename.
  ok_ = io::atomicPublish(impl_->tempPath, impl_->finalPath);
  return ok_;
}

// --- reader ----------------------------------------------------------------

struct ShardStore::Impl {
  std::string path;
  ShardStoreOptions options;
  ArenaSpec arena;
  std::uint32_t shardCapacity = 0;
  std::uint32_t formatVersion = kShardFormatCurrent;
  std::vector<ShardInfo> infos;
  std::uint64_t trajectoryCount = 0;
  std::uint64_t totalPoints = 0;
  /// Per-shard spatial summary: parsed from a v3 footer at open (entries
  /// that fail validateShardSummary stay nullopt), rebuilt lazily for v2
  /// stores. Lazy fills are guarded by `mutex`.
  mutable std::vector<std::optional<ShardSummary>> summaries;

  // Cache + quarantine state: all guarded by mutex (including the
  // ifstream).
  mutable std::mutex mutex;
  mutable std::ifstream in;
  struct Entry {
    std::shared_ptr<const TrajectoryDataset> dataset;
    std::uint64_t bytes = 0;
    std::list<std::size_t>::iterator lruIt;
  };
  mutable std::unordered_map<std::size_t, Entry> cache;
  mutable std::list<std::size_t> lru;  // front = most recently used
  mutable std::uint64_t bytesResident = 0;
  /// Per-shard status; non-ok entries are quarantined (sticky).
  mutable std::vector<io::Status> shardStatus;
  mutable std::uint64_t quarantinedTrajectories = 0;

  Counter* hits = nullptr;
  Counter* misses = nullptr;
  Counter* evictions = nullptr;
  Counter* quarantinedShardsCounter = nullptr;
  Counter* quarantinedTrajectoriesCounter = nullptr;
  Counter* crcFailures = nullptr;
  Counter* readRetries = nullptr;
  Counter* ioErrors = nullptr;
  Gauge* residentGauge = nullptr;

  void evictDownToBudget() {
    while (bytesResident > options.cacheBudgetBytes && lru.size() > 1) {
      const std::size_t victim = lru.back();
      lru.pop_back();
      auto it = cache.find(victim);
      bytesResident -= it->second.bytes;
      residentGauge->sub(it->second.bytes);
      cache.erase(it);
      evictions->add();
    }
  }

  /// Reads + CRC-verifies one shard payload with bounded retry for
  /// transient faults. Mutex must be held (the ifstream is shared).
  io::Status readPayloadLocked(std::size_t shard, std::string& blob) const {
    const ShardInfo& info = infos[shard];
    for (int attempt = 0;; ++attempt) {
      blob.assign(info.byteSize, '\0');
      io::Status status = io::Status::ok();
      in.clear();
      // Cross-check the on-disk block header against the footer entry:
      // a store stitched from mismatched pieces must not parse as valid.
      std::string block(kBlockHeaderBytes, '\0');
      in.seekg(static_cast<std::streamoff>(info.offset - kBlockHeaderBytes));
      in.read(block.data(), static_cast<std::streamsize>(block.size()));
      if (!in) {
        status = in.eof() ? io::Status::truncated(
                                static_cast<std::int64_t>(shard))
                          : io::Status::ioError(
                                static_cast<std::int64_t>(shard));
      } else {
        std::uint64_t blockByteSize = 0;
        std::uint32_t blockCrc = 0;
        if (!decodeBlockHeader(block, blockByteSize, blockCrc) ||
            blockByteSize != info.byteSize || blockCrc != info.payloadCrc) {
          status = io::Status::corrupt(static_cast<std::int64_t>(shard));
        }
      }
      if (status.isOk()) {
        in.clear();
        in.seekg(static_cast<std::streamoff>(info.offset));
        in.read(blob.data(), static_cast<std::streamsize>(blob.size()));
        if (!in) {
          status = in.eof()
                       ? io::Status::truncated(static_cast<std::int64_t>(shard))
                       : io::Status::ioError(static_cast<std::int64_t>(shard));
        }
      }
      if (status.isOk() && options.faultInjector != nullptr) {
        status = options.faultInjector->onRead(shard, attempt, blob);
      }
      if (status.isOk() && blob.size() != info.byteSize) {
        status = io::Status::truncated(static_cast<std::int64_t>(shard));
      }
      if (status.isOk() &&
          io::crc32c(blob.data(), blob.size()) != info.payloadCrc) {
        crcFailures->add();
        status = io::Status::corrupt(static_cast<std::int64_t>(shard));
      }
      if (status.isOk()) return status;
      if (status.isIoError()) ioErrors->add();
      if (!status.isTransient() ||
          attempt + 1 >= options.retry.maxAttempts) {
        return status;
      }
      readRetries->add();
      const double ms = options.retry.backoffMsForRetry(attempt);
      if (ms > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
      }
    }
  }

  /// Records a shard's terminal failure. Mutex must be held.
  void quarantineLocked(std::size_t shard, io::Status cause) const {
    if (!shardStatus[shard].isOk()) return;  // already quarantined
    shardStatus[shard] = cause;
    quarantinedTrajectories += infos[shard].trajectoryCount;
    quarantinedShardsCounter->add();
    quarantinedTrajectoriesCounter->add(infos[shard].trajectoryCount);
    SVQ_WARN << "shardstore: quarantined shard " << shard << " ("
             << cause.name() << ", " << infos[shard].trajectoryCount
             << " trajectories) in " << path;
  }
};

ShardStore::ShardStore() : impl_(std::make_unique<Impl>()) {}
ShardStore::~ShardStore() = default;
ShardStore::ShardStore(ShardStore&&) noexcept = default;
ShardStore& ShardStore::operator=(ShardStore&&) noexcept = default;

std::optional<ShardStore> ShardStore::open(const std::string& path,
                                           ShardStoreOptions options,
                                           io::Status* openStatus) {
  io::Status localStatus = io::Status::ok();
  io::Status& status = openStatus != nullptr ? *openStatus : localStatus;
  status = io::Status::corrupt();

  ShardStore store;
  Impl& s = *store.impl_;
  s.path = path;
  s.options = options;
  s.in.open(path, std::ios::binary);
  if (!s.in) {
    status = io::Status::ioError();
    return std::nullopt;
  }

  s.in.seekg(0, std::ios::end);
  const std::uint64_t fileSize = static_cast<std::uint64_t>(s.in.tellg());
  if (fileSize < kHeaderBytes + kTailBytes) {
    status = io::Status::truncated();
    return std::nullopt;
  }

  // Header (CRC-sealed: a bit flip in e.g. the arena radius must not
  // yield a store that opens with silently wrong geometry).
  std::string headerBytes(kHeaderBytes, '\0');
  s.in.seekg(0);
  s.in.read(headerBytes.data(), kHeaderBytes);
  BufReader header(headerBytes);
  std::uint32_t magic = 0, version = 0, headerCrc = 0;
  float radius = 0.0f;
  if (!header.u32(magic) || magic != kShardMagic) return std::nullopt;
  if (!header.u32(version) || !supportedVersion(version)) return std::nullopt;
  if (!header.f32(radius) || radius <= 0.0f) return std::nullopt;
  if (!header.u32(s.shardCapacity) || s.shardCapacity == 0) return std::nullopt;
  if (!header.u32(headerCrc) ||
      headerCrc != io::crc32c(headerBytes.data(), kHeaderBytes - 4)) {
    return std::nullopt;
  }
  s.arena = ArenaSpec{radius};
  s.formatVersion = version;

  // Tail (CRC-sealed), then footer (CRC checked against the tail).
  std::string tailBytes(kTailBytes, '\0');
  s.in.seekg(static_cast<std::streamoff>(fileSize - kTailBytes));
  s.in.read(tailBytes.data(), kTailBytes);
  BufReader tail(tailBytes);
  std::uint32_t shardCount = 0, footerCrc = 0, tailCrc = 0, tailMagic = 0;
  std::uint64_t footerBytes = 0;
  if (!tail.u32(shardCount) || !tail.u64(s.trajectoryCount) ||
      !tail.u64(s.totalPoints) || !tail.u64(footerBytes) ||
      !tail.u32(footerCrc) || !tail.u32(tailCrc) || !tail.u32(tailMagic) ||
      tailMagic != kFooterMagic ||
      tailCrc != io::crc32c(tailBytes.data(), kTailBytes - 8)) {
    return std::nullopt;
  }
  if (footerBytes != static_cast<std::uint64_t>(shardCount) *
                         footerEntryBytes(version) ||
      kHeaderBytes + footerBytes + kTailBytes > fileSize) {
    return std::nullopt;
  }

  std::string footerBuf(footerBytes, '\0');
  s.in.seekg(static_cast<std::streamoff>(fileSize - kTailBytes - footerBytes));
  s.in.read(footerBuf.data(), static_cast<std::streamsize>(footerBytes));
  if (!s.in) {
    status = io::Status::ioError();
    return std::nullopt;
  }
  if (io::crc32c(footerBuf.data(), footerBuf.size()) != footerCrc) {
    return std::nullopt;
  }
  BufReader footer(footerBuf);
  s.infos.resize(shardCount);
  s.summaries.assign(shardCount, std::nullopt);
  std::uint64_t expectedFirst = 0;
  for (std::size_t shardIdx = 0; shardIdx < shardCount; ++shardIdx) {
    ShardInfo& info = s.infos[shardIdx];
    float minX = 0, minY = 0, maxX = 0, maxY = 0;
    if (!footer.u64(info.offset) || !footer.u64(info.byteSize) ||
        !footer.u64(info.firstGlobalIndex) || !footer.u64(info.pointCount) ||
        !footer.u32(info.trajectoryCount) || !footer.u32(info.payloadCrc) ||
        !footer.f32(minX) || !footer.f32(minY) || !footer.f32(maxX) ||
        !footer.f32(maxY) || !footer.f32(info.maxDuration)) {
      return std::nullopt;
    }
    info.bounds = AABB2::of({minX, minY}, {maxX, maxY});
    if (version >= kShardFormatCurrent) {
      ShardSummary summary;
      float envMinX = 0, envMinY = 0, envMaxX = 0, envMaxY = 0;
      bool parsed = true;
      for (std::uint64_t& word : summary.occupancy) {
        parsed = parsed && footer.u64(word);
      }
      if (!parsed || !footer.f32(envMinX) || !footer.f32(envMinY) ||
          !footer.f32(envMaxX) || !footer.f32(envMaxY) ||
          !footer.f32(summary.tMin) || !footer.f32(summary.tMax)) {
        return std::nullopt;
      }
      summary.envelope = AABB2::of({envMinX, envMinY}, {envMaxX, envMaxY});
      // An implausible summary (CRC-valid but semantically impossible,
      // e.g. from a stitched file) is dropped, not trusted: the shard
      // stays summary-less and the query path must treat it as
      // uncertain — falling back to exact evaluation, never to a wrong
      // definitely-out prune.
      if (validateShardSummary(summary, info.pointCount)) {
        s.summaries[shardIdx] = summary;
      }
    }
    // Payloads must lie between header and footer (leaving room for their
    // block headers) and tile the global index space in order.
    if (info.offset < kHeaderBytes + kBlockHeaderBytes ||
        info.offset + info.byteSize > fileSize - kTailBytes - footerBytes ||
        info.firstGlobalIndex != expectedFirst || info.trajectoryCount == 0) {
      return std::nullopt;
    }
    expectedFirst += info.trajectoryCount;
  }
  if (expectedFirst != s.trajectoryCount) return std::nullopt;

  s.shardStatus.assign(shardCount, io::Status::ok());

  const std::string prefix = options.metricsPrefix;
  auto& registry = MetricsRegistry::global();
  s.hits = &registry.counter(prefix + ".hits");
  s.misses = &registry.counter(prefix + ".misses");
  s.evictions = &registry.counter(prefix + ".evictions");
  s.quarantinedShardsCounter = &registry.counter(prefix + ".quarantined_shards");
  s.quarantinedTrajectoriesCounter =
      &registry.counter(prefix + ".quarantined_trajectories");
  s.crcFailures = &registry.counter(prefix + ".crc_failures");
  s.readRetries = &registry.counter(prefix + ".read_retries");
  s.ioErrors = &registry.counter(prefix + ".io_errors");
  s.residentGauge = &registry.gauge(prefix + ".bytes_resident");
  status = io::Status::ok();
  return store;
}

const ArenaSpec& ShardStore::arena() const { return impl_->arena; }
std::size_t ShardStore::shardCount() const { return impl_->infos.size(); }
std::uint64_t ShardStore::trajectoryCount() const {
  return impl_->trajectoryCount;
}
std::uint64_t ShardStore::totalPoints() const { return impl_->totalPoints; }
std::uint32_t ShardStore::shardCapacity() const { return impl_->shardCapacity; }
std::uint32_t ShardStore::formatVersion() const { return impl_->formatVersion; }

const ShardInfo& ShardStore::shardInfo(std::size_t shard) const {
  return impl_->infos[shard];
}

std::optional<ShardSummary> ShardStore::summary(std::size_t shardIdx) const {
  Impl& s = *impl_;
  assert(shardIdx < s.infos.size());
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.summaries[shardIdx].has_value()) return s.summaries[shardIdx];
    if (!s.shardStatus[shardIdx].isOk()) return std::nullopt;
  }
  // Lazy rebuild (v2 store, or a v3 entry whose persisted summary failed
  // validation): decode the shard through the cache and memoize. shard()
  // takes the mutex itself; a racing rebuild computes the same value.
  const auto dataset = shard(shardIdx);
  if (dataset == nullptr) return std::nullopt;
  const ShardSummary summary = computeShardSummary(*dataset);
  std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.summaries[shardIdx].has_value()) s.summaries[shardIdx] = summary;
  return s.summaries[shardIdx];
}

std::shared_ptr<const TrajectoryDataset> ShardStore::shard(
    std::size_t shard) const {
  Impl& s = *impl_;
  assert(shard < s.infos.size());
  std::lock_guard<std::mutex> lock(s.mutex);
  if (auto it = s.cache.find(shard); it != s.cache.end()) {
    s.hits->add();
    s.lru.splice(s.lru.begin(), s.lru, it->second.lruIt);
    return it->second.dataset;
  }
  if (!s.shardStatus[shard].isOk()) return nullptr;  // quarantined
  s.misses->add();
  const ShardInfo& info = s.infos[shard];
  std::string blob;
  const io::Status readStatus = s.readPayloadLocked(shard, blob);
  if (!readStatus.isOk()) {
    SVQ_ERROR << "shardstore: " << readStatus.message() << " reading shard "
              << shard;
    s.quarantineLocked(shard, readStatus);
    return nullptr;
  }
  auto decoded = fromBinary(std::string_view(blob));
  if (!decoded) {
    SVQ_ERROR << "shardstore: corrupt payload for shard " << shard;
    s.quarantineLocked(
        shard, io::Status::corrupt(static_cast<std::int64_t>(shard)));
    return nullptr;
  }
  auto dataset =
      std::make_shared<const TrajectoryDataset>(std::move(*decoded));
  Impl::Entry entry;
  entry.dataset = dataset;
  entry.bytes = residentBytesEstimate(info);
  s.lru.push_front(shard);
  entry.lruIt = s.lru.begin();
  s.bytesResident += entry.bytes;
  s.residentGauge->add(entry.bytes);
  s.cache.emplace(shard, std::move(entry));
  s.evictDownToBudget();
  return dataset;
}

io::Status ShardStore::shardStatus(std::size_t shard) const {
  Impl& s = *impl_;
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.shardStatus[shard];
}

std::size_t ShardStore::quarantinedShardCount() const {
  Impl& s = *impl_;
  std::lock_guard<std::mutex> lock(s.mutex);
  std::size_t n = 0;
  for (const io::Status& st : s.shardStatus) {
    if (!st.isOk()) ++n;
  }
  return n;
}

std::uint64_t ShardStore::quarantinedTrajectoryCount() const {
  Impl& s = *impl_;
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.quarantinedTrajectories;
}

double ShardStore::coverage() const {
  Impl& s = *impl_;
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.trajectoryCount == 0) return 1.0;
  return static_cast<double>(s.trajectoryCount - s.quarantinedTrajectories) /
         static_cast<double>(s.trajectoryCount);
}

ShardVerifyReport ShardStore::verify() const {
  Impl& s = *impl_;
  ShardVerifyReport report;
  std::lock_guard<std::mutex> lock(s.mutex);
  for (std::size_t shard = 0; shard < s.infos.size(); ++shard) {
    ++report.shardsChecked;
    io::Status status = s.shardStatus[shard];
    if (status.isOk()) {
      std::string blob;
      status = s.readPayloadLocked(shard, blob);
      if (!status.isOk()) s.quarantineLocked(shard, status);
    }
    if (!status.isOk()) {
      report.badShards.emplace_back(shard, status);
      report.worst = io::worse(report.worst, status);
    }
  }
  return report;
}

std::pair<std::size_t, std::uint32_t> ShardStore::locate(
    std::uint64_t globalIndex) const {
  const auto& infos = impl_->infos;
  assert(globalIndex < impl_->trajectoryCount);
  auto it = std::upper_bound(
      infos.begin(), infos.end(), globalIndex,
      [](std::uint64_t g, const ShardInfo& info) {
        return g < info.firstGlobalIndex;
      });
  const std::size_t shard = static_cast<std::size_t>(it - infos.begin()) - 1;
  return {shard, static_cast<std::uint32_t>(
                     globalIndex - infos[shard].firstGlobalIndex)};
}

Trajectory ShardStore::trajectory(std::uint64_t globalIndex) const {
  const auto [shardIdx, local] = locate(globalIndex);
  const auto dataset = shard(shardIdx);
  if (!dataset) return {};
  return (*dataset)[local];
}

ShardCacheStats ShardStore::cacheStats() const {
  const Impl& s = *impl_;
  ShardCacheStats stats;
  stats.hits = s.hits->value();
  stats.misses = s.misses->value();
  stats.evictions = s.evictions->value();
  stats.bytesResident = s.residentGauge->value();
  stats.peakBytesResident = s.residentGauge->peak();
  return stats;
}

void ShardStore::clearCache() const {
  Impl& s = *impl_;
  std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& [shard, entry] : s.cache) s.residentGauge->sub(entry.bytes);
  s.cache.clear();
  s.lru.clear();
  s.bytesResident = 0;
}

// --- repair ----------------------------------------------------------------

bool repairShardStore(const std::string& path, RepairReport* report) {
  RepairReport local;
  RepairReport& out = report != nullptr ? *report : local;
  out = RepairReport{};

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.status = io::Status::ioError();
    return false;
  }
  in.seekg(0, std::ios::end);
  const std::uint64_t fileSize = static_cast<std::uint64_t>(in.tellg());

  // The file header must survive — without it even the arena radius is
  // unknowable and there is nothing to repair *to*.
  if (fileSize < kHeaderBytes) {
    out.status = io::Status::truncated();
    return false;
  }
  std::string headerBytes(kHeaderBytes, '\0');
  in.seekg(0);
  in.read(headerBytes.data(), kHeaderBytes);
  BufReader header(headerBytes);
  std::uint32_t magic = 0, version = 0, shardCapacity = 0, headerCrc = 0;
  float radius = 0.0f;
  if (!in || !header.u32(magic) || magic != kShardMagic ||
      !header.u32(version) || !supportedVersion(version) ||
      !header.f32(radius) || radius <= 0.0f || !header.u32(shardCapacity) ||
      shardCapacity == 0 || !header.u32(headerCrc) ||
      headerCrc != io::crc32c(headerBytes.data(), kHeaderBytes - 4)) {
    out.status = io::Status::corrupt();
    return false;
  }

  // Scan the self-delimiting shard blocks from the front; the longest
  // prefix of shards whose headers, CRCs and payload decodes all verify
  // is the committed prefix. Everything after it (a torn shard, a stale
  // footer) is discarded.
  std::vector<ShardInfo> infos;
  std::vector<ShardSummary> summaries;
  std::vector<std::pair<std::string, std::string>> blocks;  // header, payload
  std::uint64_t cursor = kHeaderBytes;
  std::uint64_t expectedFirst = 0;
  std::uint64_t totalPoints = 0;
  while (cursor + kBlockHeaderBytes <= fileSize) {
    std::string block(kBlockHeaderBytes, '\0');
    in.clear();
    in.seekg(static_cast<std::streamoff>(cursor));
    in.read(block.data(), static_cast<std::streamsize>(block.size()));
    if (!in) break;
    std::uint64_t byteSize = 0;
    std::uint32_t payloadCrc = 0;
    if (!decodeBlockHeader(block, byteSize, payloadCrc)) break;
    if (cursor + kBlockHeaderBytes + byteSize > fileSize) break;  // torn
    std::string blob(byteSize, '\0');
    in.read(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!in) break;
    if (io::crc32c(blob.data(), blob.size()) != payloadCrc) break;
    const auto decoded = fromBinary(std::string_view(blob));
    if (!decoded || decoded->empty()) break;
    ShardInfo info;
    info.firstGlobalIndex = expectedFirst;
    info.byteSize = byteSize;
    info.payloadCrc = payloadCrc;
    summarizePayload(*decoded, info);
    summaries.push_back(computeShardSummary(*decoded));
    expectedFirst += info.trajectoryCount;
    totalPoints += info.pointCount;
    infos.push_back(info);
    blocks.emplace_back(std::move(block), std::move(blob));
    cursor += kBlockHeaderBytes + byteSize;
  }
  in.close();
  out.shardsRecovered = infos.size();
  out.trajectoriesRecovered = expectedFirst;
  out.bytesDiscarded = fileSize - cursor;

  // Rewrite the store from the committed prefix (recomputed footer/tail)
  // with the same write-temp + atomic-rename discipline as the writer,
  // so a crash mid-repair cannot make things worse. Always rewritten as
  // the current format: repair decoded every surviving payload anyway,
  // so a v2 input picks up its spatial summaries here.
  std::string repaired =
      encodeFileHeader(radius, shardCapacity, kShardFormatCurrent);
  std::uint64_t offset = kHeaderBytes;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    infos[i].offset = offset + kBlockHeaderBytes;
    repaired += blocks[i].first;
    repaired += blocks[i].second;
    offset += blocks[i].first.size() + blocks[i].second.size();
  }
  repaired += encodeFooterAndTail(infos, summaries, kShardFormatCurrent,
                                  expectedFirst, totalPoints);
  out.status = io::atomicWriteFile(path, repaired);
  if (!out.status.isOk()) return false;
  SVQ_INFO << "shardstore: repaired " << path << " to " << infos.size()
           << " shards / " << expectedFirst << " trajectories ("
           << out.bytesDiscarded << " bytes discarded)";
  return true;
}

// --- clustering ------------------------------------------------------------

std::vector<std::vector<float>> ShardFeatureSource::loadBlock(
    std::size_t b) const {
  const auto dataset = store_->shard(b);
  if (!dataset) return {};  // quarantined: streams as an empty block
  const std::size_t dim = featureDimension(params_);
  std::vector<std::vector<float>> features(dataset->size());
  for (std::size_t i = 0; i < dataset->size(); ++i) {
    features[i] = extractFeatures((*dataset)[i], params_);
    // Degenerate (empty) trajectories yield short vectors; pad so every
    // sample matches the SOM's feature dimension.
    features[i].resize(dim, 0.0f);
  }
  return features;
}

std::size_t ShardClustering::nonEmptyClusters() const {
  std::size_t n = 0;
  for (const auto& m : members) {
    if (!m.empty()) ++n;
  }
  return n;
}

std::size_t ShardClustering::maxClusterSize() const {
  std::size_t n = 0;
  for (const auto& m : members) n = std::max(n, m.size());
  return n;
}

ShardClustering clusterShardStore(const ShardStore& store,
                                  const SomParams& somParams,
                                  const FeatureParams& featureParams,
                                  ThreadPool* pool) {
  ShardClustering out;
  out.somParams = somParams;
  out.featureParams = featureParams;
  out.totalTrajectories = store.trajectoryCount();

  const std::size_t dim = featureDimension(featureParams);
  Som som(somParams, dim);
  ShardFeatureSource source(store, featureParams);
  BatchTrainOptions trainOptions;
  trainOptions.pool = pool;
  som.trainBatch(source, trainOptions);

  const std::size_t nodes = som.nodeCount();
  out.somWeights.reserve(nodes);
  for (std::size_t r = 0; r < som.rows(); ++r) {
    for (std::size_t c = 0; c < som.cols(); ++c) {
      out.somWeights.push_back(som.weights(r, c));
    }
  }

  // Assignment + cluster-average pass: shards stream through the pool,
  // each accumulating resampled member positions into its own per-node
  // sums; reduction runs in shard order (deterministic). Quarantined
  // shards contribute nothing — their trajectories stay kUnassigned.
  const std::size_t shardCount = store.shardCount();
  const std::size_t resample = featureParams.resampleCount;
  out.assignment.assign(store.trajectoryCount(), ShardClustering::kUnassigned);
  struct ShardAcc {
    std::vector<double> sums;           // nodes * resample * 3 (x, y, t)
    std::vector<std::uint64_t> counts;  // nodes
  };
  std::vector<ShardAcc> acc(shardCount);

  const auto processShard = [&](std::size_t shardIdx) {
    const auto dataset = store.shard(shardIdx);
    ShardAcc& a = acc[shardIdx];
    a.sums.assign(nodes * resample * 3, 0.0);
    a.counts.assign(nodes, 0);
    if (!dataset) return;
    const std::uint64_t first = store.shardInfo(shardIdx).firstGlobalIndex;
    for (std::size_t i = 0; i < dataset->size(); ++i) {
      const Trajectory& t = (*dataset)[i];
      std::vector<float> f = extractFeatures(t, featureParams);
      f.resize(dim, 0.0f);
      const std::size_t bmu = som.bestMatchingUnit(f);
      out.assignment[first + i] = static_cast<std::uint32_t>(bmu);
      if (t.empty()) continue;  // nothing to average
      const Trajectory r = resampleUniform(t, resample);
      double* sums = a.sums.data() + bmu * resample * 3;
      for (std::size_t p = 0; p < resample && p < r.size(); ++p) {
        sums[p * 3 + 0] += static_cast<double>(r[p].pos.x);
        sums[p * 3 + 1] += static_cast<double>(r[p].pos.y);
        sums[p * 3 + 2] += static_cast<double>(r[p].t);
      }
      ++a.counts[bmu];
    }
  };

  if (pool != nullptr) {
    pool->parallelFor(0, shardCount, processShard, 1);
  } else {
    for (std::size_t i = 0; i < shardCount; ++i) processShard(i);
  }

  std::vector<double> sums(nodes * resample * 3, 0.0);
  std::vector<std::uint64_t> counts(nodes, 0);
  for (std::size_t shardIdx = 0; shardIdx < shardCount; ++shardIdx) {
    for (std::size_t i = 0; i < sums.size(); ++i) sums[i] += acc[shardIdx].sums[i];
    for (std::size_t n = 0; n < nodes; ++n) counts[n] += acc[shardIdx].counts[n];
  }

  // Coverage accounting: quarantine is sticky, so after the passes above
  // the store's per-shard status is the authoritative survivor set.
  for (std::size_t shardIdx = 0; shardIdx < shardCount; ++shardIdx) {
    if (store.isQuarantined(shardIdx)) {
      out.quarantinedShards.push_back(static_cast<std::uint32_t>(shardIdx));
    } else {
      out.coveredTrajectories += store.shardInfo(shardIdx).trajectoryCount;
    }
  }

  out.members.assign(nodes, {});
  for (std::size_t g = 0; g < out.assignment.size(); ++g) {
    if (out.assignment[g] == ShardClustering::kUnassigned) continue;
    out.members[out.assignment[g]].push_back(static_cast<std::uint32_t>(g));
  }

  out.averages.resize(nodes);
  for (std::size_t node = 0; node < nodes; ++node) {
    if (counts[node] == 0) continue;
    const double inv = 1.0 / static_cast<double>(counts[node]);
    std::vector<TrajPoint> pts(resample);
    const double* nodeSums = sums.data() + node * resample * 3;
    for (std::size_t p = 0; p < resample; ++p) {
      pts[p].pos.x = static_cast<float>(nodeSums[p * 3 + 0] * inv);
      pts[p].pos.y = static_cast<float>(nodeSums[p * 3 + 1] * inv);
      pts[p].t = static_cast<float>(nodeSums[p * 3 + 2] * inv);
    }
    TrajectoryMeta meta;
    meta.id = static_cast<std::uint32_t>(node);
    out.averages[node] = Trajectory(meta, std::move(pts));
  }
  return out;
}

bool writeShardStore(const TrajectoryDataset& dataset, const std::string& path,
                     std::uint32_t shardCapacity,
                     std::uint32_t formatVersion) {
  ShardStoreWriter writer(path, dataset.arena(), shardCapacity, nullptr,
                          formatVersion);
  if (!writer.ok()) return false;
  for (const Trajectory& t : dataset.all()) writer.add(t);
  return writer.finish();
}

}  // namespace svq::traj
