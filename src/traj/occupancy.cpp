#include "traj/occupancy.h"

#include <algorithm>
#include <cmath>

namespace svq::traj {

OccupancyGrid::OccupancyGrid(float arenaRadiusCm, int resolution)
    : arenaRadiusCm_(arenaRadiusCm),
      resolution_(std::max(8, resolution)),
      texelSizeCm_(2.0f * arenaRadiusCm / static_cast<float>(resolution_)) {
  cells_.assign(static_cast<std::size_t>(resolution_) *
                    static_cast<std::size_t>(resolution_),
                0.0f);
}

int OccupancyGrid::toTexel(float cm) const {
  return static_cast<int>(std::floor((cm + arenaRadiusCm_) / texelSizeCm_));
}

void OccupancyGrid::accumulate(const Trajectory& t, float t0, float t1) {
  const PointsView pts = t.view();
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const float segT0 = std::max(pts.time(i - 1), t0);
    const float segT1 = std::min(pts.time(i), t1);
    if (segT1 <= segT0) continue;
    const Vec2 mid = (pts.pos(i - 1) + pts.pos(i)) * 0.5f;
    const int tx = toTexel(mid.x);
    const int ty = toTexel(mid.y);
    if (tx < 0 || ty < 0 || tx >= resolution_ || ty >= resolution_) continue;
    cells_[static_cast<std::size_t>(ty) *
               static_cast<std::size_t>(resolution_) +
           static_cast<std::size_t>(tx)] += segT1 - segT0;
  }
}

void OccupancyGrid::accumulate(const TrajectoryDataset& dataset,
                               std::span<const std::uint32_t> indices,
                               float t0, float t1) {
  for (std::uint32_t idx : indices) accumulate(dataset[idx], t0, t1);
}

void OccupancyGrid::clear() {
  std::fill(cells_.begin(), cells_.end(), 0.0f);
}

float OccupancyGrid::at(Vec2 arenaCm) const {
  const int tx = toTexel(arenaCm.x);
  const int ty = toTexel(arenaCm.y);
  if (tx < 0 || ty < 0 || tx >= resolution_ || ty >= resolution_) {
    return 0.0f;
  }
  return cells_[static_cast<std::size_t>(ty) *
                    static_cast<std::size_t>(resolution_) +
                static_cast<std::size_t>(tx)];
}

float OccupancyGrid::totalSeconds() const {
  float sum = 0.0f;
  for (float c : cells_) sum += c;
  return sum;
}

float OccupancyGrid::maxSeconds() const {
  float m = 0.0f;
  for (float c : cells_) m = std::max(m, c);
  return m;
}

float OccupancyGrid::centerFraction(float radiusCm) const {
  const float total = totalSeconds();
  if (total <= 0.0f) return 0.0f;
  float inside = 0.0f;
  const float r2 = radiusCm * radiusCm;
  for (int ty = 0; ty < resolution_; ++ty) {
    for (int tx = 0; tx < resolution_; ++tx) {
      const float cx =
          (static_cast<float>(tx) + 0.5f) * texelSizeCm_ - arenaRadiusCm_;
      const float cy =
          (static_cast<float>(ty) + 0.5f) * texelSizeCm_ - arenaRadiusCm_;
      if (cx * cx + cy * cy <= r2) {
        inside += cells_[static_cast<std::size_t>(ty) *
                             static_cast<std::size_t>(resolution_) +
                         static_cast<std::size_t>(tx)];
      }
    }
  }
  return inside / total;
}

float OccupancyGrid::entropyBits() const {
  const float total = totalSeconds();
  if (total <= 0.0f) return 0.0f;
  float h = 0.0f;
  for (float c : cells_) {
    if (c <= 0.0f) continue;
    const float p = c / total;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace svq::traj
