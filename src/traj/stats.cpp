#include "traj/stats.h"

#include <algorithm>
#include <cmath>

namespace svq::traj {

const char* toString(ArenaSide s) {
  switch (s) {
    case ArenaSide::kEast: return "east";
    case ArenaSide::kWest: return "west";
    case ArenaSide::kNorth: return "north";
    case ArenaSide::kSouth: return "south";
  }
  return "?";
}

float sinuosity(const Trajectory& t, float cap) {
  const float net = t.netDisplacement();
  const float len = t.pathLength();
  if (len <= 0.0f) return 1.0f;
  if (net <= len / cap) return cap;
  return len / net;
}

std::optional<float> netHeading(const Trajectory& t, float minDispCm) {
  if (t.size() < 2) return std::nullopt;
  const Vec2 d = t.back().pos - t.front().pos;
  if (d.norm() < minDispCm) return std::nullopt;
  return d.angle();
}

std::optional<ArenaSide> exitSide(const Trajectory& t, float minRadiusCm) {
  if (t.empty()) return std::nullopt;
  const Vec2 p = t.back().pos;
  if (p.norm() < minRadiusCm) return std::nullopt;
  const float a = p.angle();
  const float quarter = kPi * 0.25f;
  if (std::abs(a) <= quarter) return ArenaSide::kEast;
  if (std::abs(a) >= 3.0f * quarter) return ArenaSide::kWest;
  return a > 0.0f ? ArenaSide::kNorth : ArenaSide::kSouth;
}

bool exitedArena(const Trajectory& t, float arenaRadiusCm) {
  return !t.empty() && t.back().pos.norm() > arenaRadiusCm;
}

float dwellTimeInCenter(const Trajectory& t, float radiusCm, float t0,
                        float t1) {
  if (t.size() < 2 || t1 <= t0) return 0.0f;
  const float r2 = radiusCm * radiusCm;
  float dwell = 0.0f;
  const PointsView pts = t.view();
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const float segT0 = std::max(pts[i - 1].t, t0);
    const float segT1 = std::min(pts[i].t, t1);
    if (segT1 <= segT0) continue;
    // Approximate: a segment counts as "in centre" in proportion to how
    // many of its endpoints are inside (0, 1/2 or all of its clipped span).
    const bool in0 = pts[i - 1].pos.norm2() <= r2;
    const bool in1 = pts[i].pos.norm2() <= r2;
    const float span = segT1 - segT0;
    if (in0 && in1) dwell += span;
    else if (in0 || in1) dwell += 0.5f * span;
  }
  return dwell;
}

float meanSpeed(const Trajectory& t) {
  const float d = t.duration();
  return d > 0.0f ? t.pathLength() / d : 0.0f;
}

std::vector<float> turningAngles(const Trajectory& t) {
  std::vector<float> out;
  const PointsView pts = t.view();
  if (pts.size() < 3) return out;
  out.reserve(pts.size() - 2);
  for (std::size_t i = 2; i < pts.size(); ++i) {
    const Vec2 a = pts[i - 1].pos - pts[i - 2].pos;
    const Vec2 b = pts[i].pos - pts[i - 1].pos;
    if (a.norm2() <= 0.0f || b.norm2() <= 0.0f) {
      out.push_back(0.0f);
      continue;
    }
    out.push_back(wrapAngle(b.angle() - a.angle()));
  }
  return out;
}

float meanAbsTurning(const Trajectory& t) {
  const auto angles = turningAngles(t);
  if (angles.empty()) return 0.0f;
  float sum = 0.0f;
  for (float a : angles) sum += std::abs(a);
  return sum / static_cast<float>(angles.size());
}

float longestStationaryRunS(const Trajectory& t, float speedThresholdCmS) {
  const PointsView pts = t.view();
  if (pts.size() < 2) return 0.0f;
  float best = 0.0f;
  float current = 0.0f;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const float dt = pts[i].t - pts[i - 1].t;
    if (dt <= 0.0f) continue;
    const float speed = (pts[i].pos - pts[i - 1].pos).norm() / dt;
    if (speed < speedThresholdCmS) {
      current += dt;
      best = std::max(best, current);
    } else {
      current = 0.0f;
    }
  }
  return best;
}

float straightness(const Trajectory& t) {
  const float len = t.pathLength();
  if (len <= 0.0f) return 1.0f;
  return clamp(t.netDisplacement() / len, 0.0f, 1.0f);
}

std::optional<float> centerDepartureTime(const Trajectory& t,
                                         float radiusCm) {
  const PointsView pts = t.view();
  const float r2 = radiusCm * radiusCm;
  // Walk backwards: find the last sample inside the disc; departure is the
  // following sample's time. If the last sample is inside, never departed.
  if (pts.empty() || pts.back().pos.norm2() <= r2) return std::nullopt;
  for (std::size_t i = pts.size(); i-- > 0;) {
    if (pts[i].pos.norm2() <= r2) {
      return pts[std::min(i + 1, pts.size() - 1)].t;
    }
  }
  return pts.front().t;  // started outside already
}

float meanAngularVelocity(const Trajectory& t) {
  const PointsView pts = t.view();
  if (pts.size() < 3) return 0.0f;
  float signedRotation = 0.0f;
  float prevHeading = 0.0f;
  bool havePrev = false;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const Vec2 d = pts[i].pos - pts[i - 1].pos;
    if (d.norm2() <= 0.0f) continue;
    const float h = d.angle();
    if (havePrev) signedRotation += wrapAngle(h - prevHeading);
    prevHeading = h;
    havePrev = true;
  }
  const float dur = t.duration();
  return dur > 0.0f ? signedRotation / dur : 0.0f;
}

Summary summarize(std::vector<double> values) {
  Summary s;
  s.n = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.median = values[values.size() / 2];
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(var / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

}  // namespace svq::traj
