// resample.h — resampling, smoothing and simplification.
//
// Used in three places: (1) feature extraction normalizes every trajectory
// to a fixed sample count before SOM clustering; (2) the compact visual
// encoding of §VI.C drops high-frequency detail via Douglas–Peucker to
// raise small-multiple density; (3) smoothing supports cluster-average
// rendering.
#pragma once

#include <vector>

#include "traj/trajectory.h"

namespace svq::traj {

/// Resamples to exactly `samples` points uniformly spaced in time across
/// the original duration (linear interpolation). Metadata is preserved.
/// Precondition: samples >= 2 and t.size() >= 1.
Trajectory resampleUniform(const Trajectory& t, std::size_t samples);

/// Centred moving-average smoothing over a window of `window` samples
/// (odd; even values are rounded up). Endpoints use shrunken windows.
Trajectory smoothMovingAverage(const Trajectory& t, std::size_t window);

/// Ramer–Douglas–Peucker polyline simplification in XY with tolerance
/// `epsilonCm`. Keeps first and last points; time values of surviving
/// points are preserved, so the result is still a valid trajectory.
Trajectory simplifyDouglasPeucker(const Trajectory& t, float epsilonCm);

/// Point count after RDP without building the trajectory (used by the
/// compact-encoding density bench).
std::size_t douglasPeuckerCount(const Trajectory& t, float epsilonCm);

/// Element-wise average of trajectories that have all been resampled to
/// the same sample count; this is the "cluster average" representation of
/// §VI.C. Returns an empty trajectory if the input list is empty or the
/// sample counts differ. The result's metadata is taken from the first
/// member, with id replaced by `id`.
Trajectory averageTrajectory(const std::vector<const Trajectory*>& members,
                             std::uint32_t id);

}  // namespace svq::traj
