// circular.h — circular (directional) statistics.
//
// Movement-ecology analyses of exit directions and headings need circular
// statistics, not linear ones. This module provides the standard tools:
// circular mean / resultant length, the Rayleigh test for uniformity
// ("do the ants leave in random directions?") and the V-test for a
// concentration toward an expected direction ("do east-captured ants
// leave toward the west?") — the formal counterparts of the verdicts the
// paper's analyst reads off the wall.
#pragma once

#include <optional>
#include <span>

#include "traj/trajectory.h"

namespace svq::traj {

/// Summary of a sample of angles (radians).
struct CircularSummary {
  std::size_t n = 0;
  /// Mean direction (radians, atan2 convention); meaningless when r ~ 0.
  float meanDirection = 0.0f;
  /// Mean resultant length in [0, 1]; 0 = uniform, 1 = all identical.
  float resultantLength = 0.0f;
  /// Circular variance = 1 - r.
  float circularVariance() const { return 1.0f - resultantLength; }
};

CircularSummary circularSummary(std::span<const float> anglesRad);

/// Rayleigh test of uniformity. Returns the test statistic z = n*r^2 and
/// an approximate p-value (Wilkie 1983 approximation; accurate for
/// n >= 10). Small p rejects uniformity (directions are concentrated).
struct RayleighResult {
  double z = 0.0;
  double pValue = 1.0;
};

RayleighResult rayleighTest(std::span<const float> anglesRad);

/// V-test (modified Rayleigh): tests concentration toward a *specified*
/// direction mu. Larger u (and smaller p) = stronger support that the
/// sample points toward mu. One-sided; normal approximation.
struct VTestResult {
  double v = 0.0;       ///< mean resultant projected onto mu, in [-1, 1]
  double u = 0.0;       ///< test statistic v * sqrt(2n)
  double pValue = 1.0;
};

VTestResult vTest(std::span<const float> anglesRad, float muRad);

/// Exit headings (angle of final position from the arena centre) of all
/// trajectories in the set that moved at least `minDispCm`.
std::vector<float> exitHeadings(std::span<const Trajectory> trajectories,
                                float minDispCm = 1.0f);

}  // namespace svq::traj
