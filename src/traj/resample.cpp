#include "traj/resample.h"

#include <algorithm>
#include <cmath>

namespace svq::traj {

Trajectory resampleUniform(const Trajectory& t, std::size_t samples) {
  std::vector<TrajPoint> pts;
  pts.reserve(samples);
  if (t.empty()) return Trajectory(t.meta(), {});
  const float t0 = t.front().t;
  const float dur = t.duration();
  for (std::size_t i = 0; i < samples; ++i) {
    const float u =
        samples > 1 ? static_cast<float>(i) / static_cast<float>(samples - 1)
                    : 0.0f;
    const float ti = t0 + u * dur;
    pts.push_back({t.positionAt(ti), ti - t0});
  }
  // Enforce strictly increasing time for degenerate (zero-duration) inputs.
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (pts[i].t <= pts[i - 1].t) pts[i].t = pts[i - 1].t + 1e-4f;
  }
  return Trajectory(t.meta(), std::move(pts));
}

Trajectory smoothMovingAverage(const Trajectory& t, std::size_t window) {
  if (t.size() < 3 || window < 2) return t;
  if (window % 2 == 0) ++window;
  const std::size_t half = window / 2;
  const PointsView pts = t.view();
  std::vector<TrajPoint> out;
  out.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) out.push_back(pts[i]);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(pts.size() - 1, i + half);
    Vec2 sum{};
    for (std::size_t j = lo; j <= hi; ++j) sum += pts[j].pos;
    out[i].pos = sum / static_cast<float>(hi - lo + 1);
  }
  return Trajectory(t.meta(), std::move(out));
}

namespace {

float pointSegmentDistance(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const float len2 = ab.norm2();
  if (len2 <= 0.0f) return (p - a).norm();
  const float u = clamp((p - a).dot(ab) / len2, 0.0f, 1.0f);
  return (p - (a + ab * u)).norm();
}

void rdpMark(PointsView pts, std::size_t lo, std::size_t hi, float epsilon,
             std::vector<char>& keep) {
  if (hi <= lo + 1) return;
  float maxDist = -1.0f;
  std::size_t maxIdx = lo;
  for (std::size_t i = lo + 1; i < hi; ++i) {
    const float d = pointSegmentDistance(pts.pos(i), pts.pos(lo), pts.pos(hi));
    if (d > maxDist) {
      maxDist = d;
      maxIdx = i;
    }
  }
  if (maxDist > epsilon) {
    keep[maxIdx] = 1;
    rdpMark(pts, lo, maxIdx, epsilon, keep);
    rdpMark(pts, maxIdx, hi, epsilon, keep);
  }
}

std::vector<char> rdpKeepMask(const Trajectory& t, float epsilonCm) {
  std::vector<char> keep(t.size(), 0);
  if (t.size() == 0) return keep;
  keep.front() = 1;
  keep.back() = 1;
  if (t.size() > 2) rdpMark(t.view(), 0, t.size() - 1, epsilonCm, keep);
  return keep;
}

}  // namespace

Trajectory simplifyDouglasPeucker(const Trajectory& t, float epsilonCm) {
  const auto keep = rdpKeepMask(t, epsilonCm);
  std::vector<TrajPoint> pts;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (keep[i]) pts.push_back(t[i]);
  }
  return Trajectory(t.meta(), std::move(pts));
}

std::size_t douglasPeuckerCount(const Trajectory& t, float epsilonCm) {
  const auto keep = rdpKeepMask(t, epsilonCm);
  return static_cast<std::size_t>(std::count(keep.begin(), keep.end(), 1));
}

Trajectory averageTrajectory(const std::vector<const Trajectory*>& members,
                             std::uint32_t id) {
  if (members.empty()) return {};
  const std::size_t n = members.front()->size();
  for (const Trajectory* m : members) {
    if (m->size() != n) return {};
  }
  std::vector<TrajPoint> pts(n);
  const float inv = 1.0f / static_cast<float>(members.size());
  for (std::size_t i = 0; i < n; ++i) {
    Vec2 sum{};
    float tsum = 0.0f;
    for (const Trajectory* m : members) {
      sum += (*m)[i].pos;
      tsum += (*m)[i].t;
    }
    pts[i] = {sum * inv, tsum * inv};
  }
  TrajectoryMeta meta = members.front()->meta();
  meta.id = id;
  return Trajectory(meta, std::move(pts));
}

}  // namespace svq::traj
