// dataset.h — collection of trajectories plus the arena geometry they live
// in, with CSV persistence matching the field-study schema described in the
// paper (per-ant capture condition metadata + tracked positions).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "traj/trajectory.h"
#include "util/geometry.h"

namespace svq::traj {

/// Circular experimental arena. Ants are released at the centre (origin);
/// a trajectory "exits" when it crosses the boundary circle.
struct ArenaSpec {
  float radiusCm = 50.0f;

  constexpr bool contains(Vec2 p) const { return p.norm2() <= radiusCm * radiusCm; }
  constexpr AABB2 bounds() const {
    return AABB2::of({-radiusCm, -radiusCm}, {radiusCm, radiusCm});
  }
};

/// Owning container for a set of trajectories sharing one arena.
class TrajectoryDataset {
 public:
  TrajectoryDataset() = default;
  explicit TrajectoryDataset(ArenaSpec arena) : arena_(arena) {}

  const ArenaSpec& arena() const { return arena_; }
  void setArena(ArenaSpec a) { arena_ = a; }

  std::size_t size() const { return trajectories_.size(); }
  bool empty() const { return trajectories_.empty(); }
  const Trajectory& operator[](std::size_t i) const { return trajectories_[i]; }
  Trajectory& operator[](std::size_t i) { return trajectories_[i]; }
  const std::vector<Trajectory>& all() const { return trajectories_; }

  void add(Trajectory t) { trajectories_.push_back(std::move(t)); }
  void clear() { trajectories_.clear(); }
  void reserve(std::size_t n) { trajectories_.reserve(n); }

  /// Total number of samples across all trajectories.
  std::size_t totalPoints() const;

  /// Longest tracked duration across all trajectories (s).
  float maxDuration() const;

  /// Indices of trajectories matching a predicate, in dataset order.
  std::vector<std::uint32_t> select(
      const std::function<bool(const Trajectory&)>& pred) const;

  /// Index of trajectory with the given meta id, if present.
  std::optional<std::size_t> findById(std::uint32_t id) const;

  /// True iff every trajectory is wellFormed() and inside the arena
  /// (allowing `slackCm` beyond the boundary for exit samples).
  bool validate(float slackCm = 5.0f) const;

  // --- Persistence -------------------------------------------------------
  // CSV schema, one sample per row:
  //   traj_id,side,direction,seed,t,x,y
  // with a header row and an initial comment line carrying the arena radius:
  //   # arena_radius_cm=<r>

  /// Serializes the full dataset to CSV text.
  std::string toCsv() const;

  /// Parses CSV text produced by toCsv(). Returns std::nullopt on malformed
  /// input (unknown enum token, non-numeric field, wrong column count).
  static std::optional<TrajectoryDataset> fromCsv(const std::string& text);

  /// Convenience file IO; returns false on filesystem errors.
  bool saveCsv(const std::string& path) const;
  static std::optional<TrajectoryDataset> loadCsv(const std::string& path);

 private:
  ArenaSpec arena_;
  std::vector<Trajectory> trajectories_;
};

}  // namespace svq::traj
