// spatialindex.h — coarse per-trajectory spatial footprints.
//
// The incremental query engine (core/queryengine) re-classifies a
// trajectory only when a brush edit touches arena space the trajectory
// actually visits. Two precomputed summaries make that test O(1):
//
//   * a tight 2D AABB over all samples, and
//   * an 8x8 occupancy bitmask over a fixed reference frame (one bit per
//     coarse arena cell the polyline passes through).
//
// The bitmask refines the AABB for the common case of an L-shaped or
// circling path whose box covers half the arena while the path itself
// leaves most of it empty. Both tests are conservative: they may report
// a possible intersection where there is none, but never miss a real one.
#pragma once

#include <cstdint>

#include "traj/trajectory.h"
#include "util/geometry.h"

namespace svq::traj {

/// Coarse spatial summary of one trajectory relative to a reference frame
/// (normally the arena bounds). Value type; cheap to copy.
struct SpatialFootprint {
  /// Tight bounds over all samples. Invalid for empty trajectories.
  AABB2 bounds;
  /// 8x8 occupancy bitmask over the frame, bit (y*8+x) set iff some
  /// segment of the trajectory overlaps coarse cell (x, y). Samples
  /// outside the frame are clamped to the border cells (conservative).
  std::uint64_t occupancy = 0;
};

/// Side length of the occupancy lattice (occupancy is kGridSide^2 bits).
inline constexpr int kFootprintGridSide = 8;

/// Computes the footprint of `t` over `frame`. Every segment marks the
/// whole cell-range spanned by its two endpoints, so a segment crossing a
/// cell it has no sample in still sets that cell's bit.
SpatialFootprint computeFootprint(const Trajectory& t, const AABB2& frame);

/// Bitmask of every coarse cell overlapping `rect` (clamped to the frame).
/// Invalid/empty rects yield 0.
std::uint64_t rectOccupancyMask(const AABB2& rect, const AABB2& frame);

/// Conservative intersection test: false only when the trajectory provably
/// avoids `rect`. `rectMask` must be rectOccupancyMask(rect, frame) for
/// the same frame the footprint was computed with.
inline bool footprintMayIntersect(const SpatialFootprint& fp,
                                  const AABB2& rect,
                                  std::uint64_t rectMask) {
  return fp.bounds.intersects(rect) && (fp.occupancy & rectMask) != 0;
}

}  // namespace svq::traj
