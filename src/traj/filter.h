// filter.h — metadata filter predicates.
//
// Trajectory Grouping (§IV.C.2) associates "a set of filters" with each
// group so a group shows only trajectories satisfying them — e.g. the five
// Fig. 3 bins filter on capture side. A MetaFilter is a conjunction of
// optional per-field constraints.
#pragma once

#include <optional>
#include <string>

#include "traj/trajectory.h"

namespace svq::traj {

/// Conjunction of optional metadata constraints; an unset field matches
/// anything. Duration bounds let groups filter on tracked length too.
struct MetaFilter {
  std::optional<CaptureSide> side;
  std::optional<JourneyDirection> direction;
  std::optional<SeedState> seed;
  std::optional<float> minDurationS;
  std::optional<float> maxDurationS;

  bool operator==(const MetaFilter&) const = default;

  bool matches(const Trajectory& t) const {
    const TrajectoryMeta& m = t.meta();
    if (side && m.side != *side) return false;
    if (direction && m.direction != *direction) return false;
    if (seed && m.seed != *seed) return false;
    if (minDurationS && t.duration() < *minDurationS) return false;
    if (maxDurationS && t.duration() > *maxDurationS) return false;
    return true;
  }

  bool isUnconstrained() const {
    return !side && !direction && !seed && !minDurationS && !maxDurationS;
  }

  /// Human-readable description, e.g. "side=east dur=[10,60]".
  std::string describe() const;

  /// Convenience constructors for the common single-field filters.
  static MetaFilter bySide(CaptureSide s) {
    MetaFilter f;
    f.side = s;
    return f;
  }
  static MetaFilter bySeed(SeedState s) {
    MetaFilter f;
    f.seed = s;
    return f;
  }
  static MetaFilter byDirection(JourneyDirection d) {
    MetaFilter f;
    f.direction = d;
    return f;
  }
};

}  // namespace svq::traj
