#include "traj/io_binary.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace svq::traj {

namespace {

constexpr std::uint32_t kMagic = 0x53565154u;  // "SVQT"
constexpr std::uint32_t kVersion = 1;

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void f32(float v) { raw(&v, sizeof v); }
  std::string take() { return std::move(out_); }

 private:
  void raw(const void* p, std::size_t n) {
    out_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t& v) { return raw(&v, sizeof v); }
  bool u32(std::uint32_t& v) { return raw(&v, sizeof v); }
  bool f32(float& v) { return raw(&v, sizeof v); }
  bool atEnd() const { return cursor_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - cursor_; }

 private:
  bool raw(void* p, std::size_t n) {
    if (n > bytes_.size() - cursor_) return false;
    std::memcpy(p, bytes_.data() + cursor_, n);
    cursor_ += n;
    return true;
  }
  std::string_view bytes_;
  std::size_t cursor_ = 0;
};

// Smallest possible encodings, used to bound count fields against the
// remaining payload before allocating anything.
constexpr std::size_t kTrajectoryRecordMinBytes = 4 + 1 + 1 + 1 + 4;
constexpr std::size_t kPointBytes = 3 * sizeof(float);

}  // namespace

std::string toBinary(const TrajectoryDataset& dataset) {
  Writer w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.f32(dataset.arena().radiusCm);
  w.u32(static_cast<std::uint32_t>(dataset.size()));
  for (const Trajectory& t : dataset.all()) {
    const TrajectoryMeta& m = t.meta();
    w.u32(m.id);
    w.u8(static_cast<std::uint8_t>(m.side));
    w.u8(static_cast<std::uint8_t>(m.direction));
    w.u8(static_cast<std::uint8_t>(m.seed));
    w.u32(static_cast<std::uint32_t>(t.size()));
    const PointsView v = t.view();
    for (std::size_t p = 0; p < v.count; ++p) {
      w.f32(v.t[p]);
      w.f32(v.x[p]);
      w.f32(v.y[p]);
    }
  }
  return w.take();
}

std::optional<TrajectoryDataset> fromBinary(std::string_view bytes) {
  Reader r(bytes);
  std::uint32_t magic = 0, version = 0, count = 0;
  float radius = 0.0f;
  if (!r.u32(magic) || magic != kMagic) return std::nullopt;
  if (!r.u32(version) || version != kVersion) return std::nullopt;
  if (!r.f32(radius) || radius <= 0.0f) return std::nullopt;
  if (!r.u32(count)) return std::nullopt;
  // A hostile count field must not drive allocation: every trajectory
  // occupies at least kTrajectoryRecordMinBytes, so a count the payload
  // cannot hold is rejected before reserve().
  if (count > r.remaining() / kTrajectoryRecordMinBytes) return std::nullopt;

  TrajectoryDataset ds(ArenaSpec{radius});
  ds.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TrajectoryMeta meta;
    std::uint8_t side = 0, dir = 0, seed = 0;
    std::uint32_t points = 0;
    if (!r.u32(meta.id) || !r.u8(side) || !r.u8(dir) || !r.u8(seed) ||
        !r.u32(points)) {
      return std::nullopt;
    }
    if (points > r.remaining() / kPointBytes) return std::nullopt;
    if (side > static_cast<std::uint8_t>(CaptureSide::kSouth) ||
        dir > static_cast<std::uint8_t>(JourneyDirection::kReturning) ||
        seed > static_cast<std::uint8_t>(SeedState::kDroppedAtCapture)) {
      return std::nullopt;
    }
    meta.side = static_cast<CaptureSide>(side);
    meta.direction = static_cast<JourneyDirection>(dir);
    meta.seed = static_cast<SeedState>(seed);
    std::vector<TrajPoint> pts(points);
    for (TrajPoint& p : pts) {
      if (!r.f32(p.t) || !r.f32(p.pos.x) || !r.f32(p.pos.y)) {
        return std::nullopt;
      }
    }
    ds.add(Trajectory(meta, std::move(pts)));
  }
  if (!r.atEnd()) return std::nullopt;  // trailing garbage
  return ds;
}

std::optional<TrajectoryDataset> fromBinary(const std::string& bytes) {
  return fromBinary(std::string_view(bytes));
}

bool saveBinary(const TrajectoryDataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    SVQ_ERROR << "cannot open " << path << " for writing";
    return false;
  }
  const std::string bytes = toBinary(dataset);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::optional<TrajectoryDataset> loadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return fromBinary(ss.str());
}

}  // namespace svq::traj
