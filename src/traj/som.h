// som.h — self-organizing map clustering of trajectories.
//
// Implements the §VI.C scalability path: cluster 10k–1M trajectories on a
// 2D SOM lattice, then let the small-multiple layout show cluster-average
// trajectories instead of individuals, with drill-down ("zoom in") to the
// members of a chosen cluster. Classic online Kohonen training with a
// Gaussian neighbourhood and exponentially decaying radius/learning rate;
// deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <vector>

#include <functional>

#include "traj/dataset.h"
#include "traj/features.h"
#include "traj/trajectory.h"
#include "util/rng.h"

namespace svq {
class ThreadPool;
}

namespace svq::traj {

/// Source of feature-vector blocks for out-of-core batch training. A block
/// is typically one shard of a ShardStore; loadBlock() may be called from
/// any thread (and concurrently for distinct blocks), and may recompute
/// features on every call — the trainer never holds more than the blocks
/// currently in flight.
class FeatureBlockSource {
 public:
  virtual ~FeatureBlockSource() = default;
  virtual std::size_t blockCount() const = 0;
  /// Feature vectors of block `b`; all must share the SOM's featureDim.
  virtual std::vector<std::vector<float>> loadBlock(std::size_t b) const = 0;
};

/// Adapter: chops an in-memory feature matrix into fixed-size blocks.
class InMemoryBlockSource final : public FeatureBlockSource {
 public:
  InMemoryBlockSource(const std::vector<std::vector<float>>& samples,
                      std::size_t blockSize)
      : samples_(&samples), blockSize_(blockSize == 0 ? 1 : blockSize) {}

  std::size_t blockCount() const override {
    return (samples_->size() + blockSize_ - 1) / blockSize_;
  }
  std::vector<std::vector<float>> loadBlock(std::size_t b) const override {
    const std::size_t lo = b * blockSize_;
    const std::size_t hi = std::min(samples_->size(), lo + blockSize_);
    return {samples_->begin() + static_cast<std::ptrdiff_t>(lo),
            samples_->begin() + static_cast<std::ptrdiff_t>(hi)};
  }

 private:
  const std::vector<std::vector<float>>* samples_;
  std::size_t blockSize_;
};

/// Knobs for Som::trainBatch.
struct BatchTrainOptions {
  /// Pool to stream blocks through; nullptr trains serially on the caller
  /// thread. Results are bit-identical either way (see trainBatch).
  ThreadPool* pool = nullptr;
  /// Block *processing* order (a permutation of [0, blockCount)); empty
  /// means natural order. Exists so tests can prove order-invariance:
  /// accumulators are indexed by block id and reduced in id order, so the
  /// streaming order never changes the result.
  std::vector<std::size_t> order;
};

struct BatchTrainStats {
  std::size_t epochs = 0;
  std::uint64_t samplesPerEpoch = 0;
  /// Blocks that yielded zero samples in the last epoch — e.g. quarantined
  /// shards streaming through a degraded ShardFeatureSource. Empty blocks
  /// contribute nothing to the (block-id-ordered) reduction, so training
  /// stays bit-identical for a fixed set of surviving blocks.
  std::size_t emptyBlocks = 0;
};

struct SomParams {
  std::size_t rows = 6;
  std::size_t cols = 6;
  std::size_t epochs = 10;
  float initialLearningRate = 0.5f;
  float finalLearningRate = 0.02f;
  /// Initial neighbourhood radius in lattice units; defaults to half the
  /// larger lattice dimension when <= 0.
  float initialRadius = -1.0f;
  float finalRadius = 0.5f;
  std::uint64_t seed = 0x50eedULL;
};

/// A trained SOM over trajectory feature vectors.
class Som {
 public:
  Som(SomParams params, std::size_t featureDim);

  std::size_t rows() const { return params_.rows; }
  std::size_t cols() const { return params_.cols; }
  std::size_t nodeCount() const { return params_.rows * params_.cols; }
  std::size_t featureDim() const { return featureDim_; }
  const SomParams& params() const { return params_; }

  /// Weight vector of lattice node (r, c).
  const std::vector<float>& weights(std::size_t r, std::size_t c) const {
    return nodes_[r * params_.cols + c];
  }

  /// Trains on the given feature vectors (all must have featureDim size).
  /// Sample presentation order is shuffled per epoch from the seed.
  void train(const std::vector<std::vector<float>>& samples);

  /// Batch-Kohonen training over an out-of-core block source. Each epoch
  /// computes, per lattice node, the neighbourhood-weighted mean of all
  /// samples (numerator/denominator sums in double precision) and replaces
  /// the node weights with it; the radius decays per epoch from
  /// initialRadius to finalRadius. Unlike online train(), the update is a
  /// sum over samples, so it parallelizes: blocks stream through the pool
  /// into per-block accumulators which are reduced in block-index order.
  /// That fixed reduction order makes the result BIT-IDENTICAL for a given
  /// seed regardless of thread count or block processing order.
  BatchTrainStats trainBatch(const FeatureBlockSource& source,
                             const BatchTrainOptions& options = {});

  /// Index (row * cols + col) of the best-matching unit for a vector.
  std::size_t bestMatchingUnit(const std::vector<float>& v) const;

  /// Quantization error: mean distance from samples to their BMU.
  float quantizationError(
      const std::vector<std::vector<float>>& samples) const;

  /// Topographic error: fraction of samples whose first and second BMUs
  /// are not lattice neighbours (8-connectivity).
  float topographicError(
      const std::vector<std::vector<float>>& samples) const;

 private:
  void updateNode(std::size_t node, const std::vector<float>& sample,
                  float eta);

  SomParams params_;
  std::size_t featureDim_;
  std::vector<std::vector<float>> nodes_;
  Rng rng_;
};

/// End-to-end clustering result mapping dataset indices to SOM cells.
struct ClusteredDataset {
  SomParams somParams;
  FeatureParams featureParams;
  /// assignment[i] = BMU node index of dataset trajectory i.
  std::vector<std::uint32_t> assignment;
  /// members[node] = dataset indices assigned to that node.
  std::vector<std::vector<std::uint32_t>> members;
  /// Cluster-average trajectory per node (empty trajectory for empty nodes).
  std::vector<Trajectory> averages;

  std::size_t nodeCount() const { return members.size(); }
  std::size_t nonEmptyClusters() const;
  /// Largest cluster size.
  std::size_t maxClusterSize() const;
};

/// Trains a SOM on the dataset's feature vectors and assigns every
/// trajectory to its BMU, producing cluster averages (members resampled to
/// featureParams.resampleCount before averaging).
ClusteredDataset clusterDataset(const TrajectoryDataset& ds,
                                const SomParams& somParams,
                                const FeatureParams& featureParams);

}  // namespace svq::traj
