#include "traj/msd.h"

#include <cmath>

namespace svq::traj {

std::vector<MsdPoint> msdCurve(const Trajectory& t,
                               std::span<const float> lagsS) {
  std::vector<MsdPoint> curve;
  const PointsView pts = t.view();
  for (float lag : lagsS) {
    double sum = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const float target = pts.time(i) + lag;
      if (target > pts.back().t) break;
      const Vec2 d = t.positionAt(target) - pts.pos(i);
      sum += static_cast<double>(d.norm2());
      ++pairs;
    }
    if (pairs > 0) {
      curve.push_back({lag, static_cast<float>(sum / pairs), pairs});
    }
  }
  return curve;
}

std::vector<MsdPoint> msdCurveEnsemble(std::span<const Trajectory> trajs,
                                       std::span<const float> lagsS) {
  std::vector<MsdPoint> curve;
  for (float lag : lagsS) {
    double sum = 0.0;
    std::size_t pairs = 0;
    for (const Trajectory& t : trajs) {
      const PointsView pts = t.view();
      for (std::size_t i = 0; i < pts.size(); ++i) {
        const float target = pts.time(i) + lag;
        if (t.empty() || target > t.back().t) break;
        const Vec2 d = t.positionAt(target) - pts.pos(i);
        sum += static_cast<double>(d.norm2());
        ++pairs;
      }
    }
    if (pairs > 0) {
      curve.push_back({lag, static_cast<float>(sum / pairs), pairs});
    }
  }
  return curve;
}

float diffusionExponent(std::span<const MsdPoint> curve) {
  // Least-squares fit of log(msd) = alpha * log(lag) + c.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  std::size_t n = 0;
  for (const MsdPoint& p : curve) {
    if (p.msdCm2 <= 0.0f || p.lagS <= 0.0f) continue;
    const double x = std::log(static_cast<double>(p.lagS));
    const double y = std::log(static_cast<double>(p.msdCm2));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0f;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return 0.0f;
  return static_cast<float>((static_cast<double>(n) * sxy - sx * sy) /
                            denom);
}

std::vector<float> geometricLags(float baseS, std::size_t count) {
  std::vector<float> lags;
  lags.reserve(count);
  float lag = baseS;
  for (std::size_t i = 0; i < count; ++i) {
    lags.push_back(lag);
    lag *= 2.0f;
  }
  return lags;
}

}  // namespace svq::traj
