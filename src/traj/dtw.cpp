#include "traj/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace svq::traj {

namespace {
constexpr float kInf = std::numeric_limits<float>::max() * 0.5f;
}

float dtwDistance(std::span<const Vec2> a, std::span<const Vec2> b,
                  int band) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) return kInf;

  // Rolling two-row DP.
  std::vector<float> prev(m + 1, kInf);
  std::vector<float> curr(m + 1, kInf);
  prev[0] = 0.0f;

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    std::size_t jLo = 1;
    std::size_t jHi = m;
    if (band >= 0) {
      const long lo = static_cast<long>(i) - band;
      const long hi = static_cast<long>(i) + band;
      jLo = static_cast<std::size_t>(std::max(1L, lo));
      jHi = static_cast<std::size_t>(
          std::min(static_cast<long>(m), hi));
      if (jLo > jHi) return kInf;
    }
    for (std::size_t j = jLo; j <= jHi; ++j) {
      const float cost = (a[i - 1] - b[j - 1]).norm();
      const float best =
          std::min({prev[j], curr[j - 1], prev[j - 1]});
      if (best >= kInf) continue;
      curr[j] = cost + best;
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

float dtwDistanceNormalized(std::span<const Vec2> a, std::span<const Vec2> b,
                            int band) {
  const float d = dtwDistance(a, b, band);
  if (d >= kInf) return d;
  // The warping path length is bounded by n+m; normalizing by max(n,m)
  // is the common convention and keeps straight-line self-distance 0.
  return d / static_cast<float>(std::max(a.size(), b.size()));
}

std::vector<Vec2> translateToOrigin(std::span<const Vec2> path) {
  std::vector<Vec2> out(path.begin(), path.end());
  if (out.empty()) return out;
  const Vec2 origin = out.front();
  for (Vec2& p : out) p -= origin;
  return out;
}

}  // namespace svq::traj
