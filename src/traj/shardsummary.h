// shardsummary.h — per-shard spatial summary for aggregate-first queries.
//
// The anytime evaluation path (core/progressive.h) needs to answer "can
// this shard possibly contain a brush hit?" without loading the shard.
// The summary is a coarse occupancy grid plus a bounding envelope and a
// time range, persisted per shard in the SVQS v3 footer (and rebuilt
// lazily for v2 stores that predate it).
//
// Conservatism invariant (the contract everything above relies on): a
// segment is spatially hit iff one of its *probe points* — an endpoint
// or the segment midpoint, exactly what core::classifySegments tests —
// lands on painted brush texels. Every probe point of every member
// trajectory marks its occupancy cell here (midpoints rasterized
// explicitly; out-of-frame probes clamp into the border cells, which
// over-approximates but never under-approximates). Therefore: if the
// paint touches no occupied cell, the shard holds no spatial hit and
// "definitely-out" is exact, not heuristic. The reverse is never
// claimed — an occupied cell under paint only makes the shard
// *uncertain*, to be refined by exact evaluation.
#pragma once

#include <array>
#include <cstdint>

#include "traj/dataset.h"
#include "util/geometry.h"

namespace svq::traj {

/// Coarse spatial/temporal summary of one shard's trajectories.
struct ShardSummary {
  /// Occupancy grid dimension: kGridDim x kGridDim cells over the arena
  /// square [-R, +R]^2. 16x16 = 256 bits = 4 u64 words; one brush-mask
  /// intersection test is four ANDs.
  static constexpr int kGridDim = 16;
  static constexpr std::size_t kWords =
      static_cast<std::size_t>(kGridDim) * kGridDim / 64;
  /// On-disk size in the SVQS v3 footer: occupancy words + envelope
  /// (4 f32) + time range (2 f32).
  static constexpr std::size_t kSerializedBytes = kWords * 8 + 4 * 4 + 2 * 4;

  /// Bit (cy * kGridDim + cx) set iff any probe point of any member
  /// trajectory lands in cell (cx, cy).
  std::array<std::uint64_t, kWords> occupancy{};
  /// AABB over member sample points (midpoints are convex combinations of
  /// their endpoints, so the sample envelope covers them too). Invalid
  /// when the shard has no points.
  AABB2 envelope;
  /// Sample-time range over all members; [0, 0] when there are no points.
  float tMin = 0.0f;
  float tMax = 0.0f;

  bool occupancyEmpty() const {
    for (const std::uint64_t w : occupancy) {
      if (w != 0) return false;
    }
    return true;
  }
  void markCell(int cx, int cy) {
    const int bit = cy * kGridDim + cx;
    occupancy[static_cast<std::size_t>(bit) / 64] |= 1ull << (bit % 64);
  }
  bool cellSet(int cx, int cy) const {
    const int bit = cy * kGridDim + cx;
    return (occupancy[static_cast<std::size_t>(bit) / 64] >>
            (bit % 64)) & 1ull;
  }
  /// True iff any occupied cell is also set in `mask` (a paint-touch mask
  /// in the same bit layout).
  bool intersects(const std::array<std::uint64_t, kWords>& mask) const {
    for (std::size_t w = 0; w < kWords; ++w) {
      if ((occupancy[w] & mask[w]) != 0) return true;
    }
    return false;
  }
};

/// Occupancy cell index for one coordinate, clamped into [0, kGridDim):
/// out-of-arena probes land in the border cells (conservative — they can
/// never be painted, so the spurious occupancy only costs refinement).
int summaryCellOf(float coordCm, float arenaRadiusCm);

/// Computes the summary of a decoded shard: every sample point and every
/// segment midpoint of every trajectory marks its cell; the envelope and
/// time range cover the samples. The arena square comes from the
/// dataset's ArenaSpec.
ShardSummary computeShardSummary(const TrajectoryDataset& shard);

/// Plausibility check for a summary read from disk. The footer CRC
/// already rules out bit rot; this rejects *semantically* impossible
/// summaries (e.g. a stitched-together file whose entry claims points
/// but an empty occupancy grid, or a non-finite envelope). An
/// implausible summary is treated as absent — the shard stays uncertain
/// and falls back to exact evaluation, never to a wrong prune.
bool validateShardSummary(const ShardSummary& summary,
                          std::uint64_t pointCount);

}  // namespace svq::traj
