#include "traj/filter.h"

#include <sstream>

namespace svq::traj {

std::string MetaFilter::describe() const {
  if (isUnconstrained()) return "all";
  std::ostringstream out;
  bool first = true;
  auto sep = [&] {
    if (!first) out << ' ';
    first = false;
  };
  if (side) {
    sep();
    out << "side=" << toString(*side);
  }
  if (direction) {
    sep();
    out << "dir=" << toString(*direction);
  }
  if (seed) {
    sep();
    out << "seed=" << toString(*seed);
  }
  if (minDurationS || maxDurationS) {
    sep();
    out << "dur=[" << (minDurationS ? std::to_string(*minDurationS) : "0")
        << ',' << (maxDurationS ? std::to_string(*maxDurationS) : "inf")
        << ']';
  }
  return out.str();
}

}  // namespace svq::traj
