// dtw.h — dynamic time warping distance between 2D paths.
//
// Used by the similarity-highlighting feature: comparing a brushed
// sub-path against candidate windows of other trajectories requires a
// distance that tolerates speed variation, which plain lockstep Euclidean
// does not. Classic O(n*m) DTW with an optional Sakoe–Chiba band.
#pragma once

#include <span>
#include <vector>

#include "util/geometry.h"

namespace svq::traj {

/// DTW distance between two point sequences (sum of matched point
/// distances along the optimal warping path). `band` constrains |i - j|
/// (Sakoe–Chiba); band < 0 means unconstrained. Returns +inf-like large
/// value when either input is empty or the band makes alignment
/// infeasible.
float dtwDistance(std::span<const Vec2> a, std::span<const Vec2> b,
                  int band = -1);

/// DTW normalized by warping-path length (per-step mean distance),
/// comparable across different sequence lengths.
float dtwDistanceNormalized(std::span<const Vec2> a, std::span<const Vec2> b,
                            int band = -1);

/// Removes translation: shifts a copy of `path` so its first point is at
/// the origin (shape comparison, position-independent).
std::vector<Vec2> translateToOrigin(std::span<const Vec2> path);

}  // namespace svq::traj
