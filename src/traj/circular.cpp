#include "traj/circular.h"

#include <cmath>

namespace svq::traj {

CircularSummary circularSummary(std::span<const float> anglesRad) {
  CircularSummary s;
  s.n = anglesRad.size();
  if (anglesRad.empty()) return s;
  double sumCos = 0.0;
  double sumSin = 0.0;
  for (float a : anglesRad) {
    sumCos += std::cos(static_cast<double>(a));
    sumSin += std::sin(static_cast<double>(a));
  }
  const double n = static_cast<double>(anglesRad.size());
  const double cbar = sumCos / n;
  const double sbar = sumSin / n;
  s.resultantLength =
      static_cast<float>(std::sqrt(cbar * cbar + sbar * sbar));
  s.meanDirection = static_cast<float>(std::atan2(sbar, cbar));
  return s;
}

RayleighResult rayleighTest(std::span<const float> anglesRad) {
  RayleighResult out;
  const CircularSummary s = circularSummary(anglesRad);
  if (s.n == 0) return out;
  const double n = static_cast<double>(s.n);
  const double r = static_cast<double>(s.resultantLength);
  out.z = n * r * r;
  // Wilkie (1983) approximation to the Rayleigh p-value.
  const double z = out.z;
  double p = std::exp(-z) *
             (1.0 + (2.0 * z - z * z) / (4.0 * n) -
              (24.0 * z - 132.0 * z * z + 76.0 * z * z * z -
               9.0 * z * z * z * z) /
                  (288.0 * n * n));
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  out.pValue = p;
  return out;
}

VTestResult vTest(std::span<const float> anglesRad, float muRad) {
  VTestResult out;
  const CircularSummary s = circularSummary(anglesRad);
  if (s.n == 0) return out;
  const double n = static_cast<double>(s.n);
  const double r = static_cast<double>(s.resultantLength);
  out.v = r * std::cos(static_cast<double>(s.meanDirection) -
                       static_cast<double>(muRad));
  out.u = out.v * std::sqrt(2.0 * n);
  // One-sided normal approximation: p = P(Z > u).
  out.pValue = 0.5 * std::erfc(out.u / std::sqrt(2.0));
  return out;
}

std::vector<float> exitHeadings(std::span<const Trajectory> trajectories,
                                float minDispCm) {
  std::vector<float> headings;
  headings.reserve(trajectories.size());
  for (const Trajectory& t : trajectories) {
    if (t.empty()) continue;
    const Vec2 p = t.back().pos;
    if (p.norm() < minDispCm) continue;
    headings.push_back(p.angle());
  }
  return headings;
}

}  // namespace svq::traj
