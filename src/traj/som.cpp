#include "traj/som.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "traj/resample.h"
#include "util/threadpool.h"

namespace svq::traj {

Som::Som(SomParams params, std::size_t featureDim)
    : params_(params), featureDim_(featureDim), rng_(params.seed) {
  if (params_.initialRadius <= 0.0f) {
    params_.initialRadius =
        0.5f * static_cast<float>(std::max(params_.rows, params_.cols));
  }
  nodes_.resize(params_.rows * params_.cols);
  for (auto& node : nodes_) {
    node.resize(featureDim_);
    for (auto& w : node) w = rng_.uniform(-0.1f, 0.1f);
  }
}

void Som::train(const std::vector<std::vector<float>>& samples) {
  if (samples.empty()) return;
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);

  const std::size_t totalSteps = params_.epochs * samples.size();
  std::size_t step = 0;
  for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    // Fisher–Yates shuffle from our deterministic stream.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng_.below(i)]);
    }
    for (std::size_t idx : order) {
      const float progress =
          static_cast<float>(step) / static_cast<float>(totalSteps);
      // Exponential decay between initial and final values.
      const float eta = params_.initialLearningRate *
                        std::pow(params_.finalLearningRate /
                                     params_.initialLearningRate,
                                 progress);
      const float radius =
          params_.initialRadius *
          std::pow(params_.finalRadius / params_.initialRadius, progress);
      const float twoSigma2 = 2.0f * radius * radius;

      const auto& sample = samples[idx];
      const std::size_t bmu = bestMatchingUnit(sample);
      const auto bmuR = static_cast<long>(bmu / params_.cols);
      const auto bmuC = static_cast<long>(bmu % params_.cols);

      // Only nodes within ~3 radii receive meaningful updates.
      const long reach = std::max(1L, static_cast<long>(std::ceil(radius * 3.0f)));
      const long rLo = std::max(0L, bmuR - reach);
      const long rHi = std::min(static_cast<long>(params_.rows) - 1, bmuR + reach);
      const long cLo = std::max(0L, bmuC - reach);
      const long cHi = std::min(static_cast<long>(params_.cols) - 1, bmuC + reach);
      for (long r = rLo; r <= rHi; ++r) {
        for (long c = cLo; c <= cHi; ++c) {
          const float dr = static_cast<float>(r - bmuR);
          const float dc = static_cast<float>(c - bmuC);
          const float d2 = dr * dr + dc * dc;
          const float h = std::exp(-d2 / std::max(1e-6f, twoSigma2));
          if (h < 1e-4f) continue;
          updateNode(static_cast<std::size_t>(r) * params_.cols +
                         static_cast<std::size_t>(c),
                     sample, eta * h);
        }
      }
      ++step;
    }
  }
}

BatchTrainStats Som::trainBatch(const FeatureBlockSource& source,
                                const BatchTrainOptions& options) {
  BatchTrainStats stats;
  stats.epochs = params_.epochs;
  const std::size_t blocks = source.blockCount();
  if (blocks == 0 || params_.epochs == 0) return stats;

  std::vector<std::size_t> order = options.order;
  if (order.empty()) {
    order.resize(blocks);
    std::iota(order.begin(), order.end(), 0);
  }
  assert(order.size() == blocks);

  const std::size_t nodes = nodeCount();
  const std::size_t dim = featureDim_;
  // Per-block accumulators: neighbourhood-weighted sample sums. Indexed by
  // block id (not processing slot) and reduced in id order below — the
  // keystone of the determinism guarantee.
  struct Accum {
    std::vector<double> num;      // nodes * dim, h-weighted sample sums
    std::vector<double> den;      // nodes, h sums
    std::uint64_t samples = 0;
  };

  const float denomEpochs =
      params_.epochs > 1 ? static_cast<float>(params_.epochs - 1) : 1.0f;
  for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    const float progress = static_cast<float>(epoch) / denomEpochs;
    const float radius =
        params_.initialRadius *
        std::pow(params_.finalRadius / params_.initialRadius, progress);
    const float twoSigma2 = 2.0f * radius * radius;
    const long reach =
        std::max(1L, static_cast<long>(std::ceil(radius * 3.0f)));

    std::vector<Accum> acc(blocks);
    const auto processBlock = [&](std::size_t b) {
      const auto samples = source.loadBlock(b);
      Accum& a = acc[b];
      a.num.assign(nodes * dim, 0.0);
      a.den.assign(nodes, 0.0);
      a.samples = samples.size();
      for (const auto& sample : samples) {
        const std::size_t bmu = bestMatchingUnit(sample);
        const auto bmuR = static_cast<long>(bmu / params_.cols);
        const auto bmuC = static_cast<long>(bmu % params_.cols);
        const long rLo = std::max(0L, bmuR - reach);
        const long rHi =
            std::min(static_cast<long>(params_.rows) - 1, bmuR + reach);
        const long cLo = std::max(0L, bmuC - reach);
        const long cHi =
            std::min(static_cast<long>(params_.cols) - 1, bmuC + reach);
        for (long r = rLo; r <= rHi; ++r) {
          for (long c = cLo; c <= cHi; ++c) {
            const float dr = static_cast<float>(r - bmuR);
            const float dc = static_cast<float>(c - bmuC);
            const float h =
                std::exp(-(dr * dr + dc * dc) / std::max(1e-6f, twoSigma2));
            if (h < 1e-4f) continue;
            const std::size_t node = static_cast<std::size_t>(r) * params_.cols +
                                     static_cast<std::size_t>(c);
            a.den[node] += static_cast<double>(h);
            double* num = a.num.data() + node * dim;
            for (std::size_t i = 0; i < dim; ++i) {
              num[i] += static_cast<double>(h) * static_cast<double>(sample[i]);
            }
          }
        }
      }
    };

    if (options.pool != nullptr) {
      options.pool->parallelFor(
          0, blocks, [&](std::size_t slot) { processBlock(order[slot]); }, 1);
    } else {
      for (std::size_t slot = 0; slot < blocks; ++slot) processBlock(order[slot]);
    }

    // Deterministic reduction in block-id order.
    std::vector<double> num(nodes * dim, 0.0);
    std::vector<double> den(nodes, 0.0);
    std::uint64_t totalSamples = 0;
    std::size_t emptyBlocks = 0;
    for (std::size_t b = 0; b < blocks; ++b) {
      for (std::size_t i = 0; i < nodes * dim; ++i) num[i] += acc[b].num[i];
      for (std::size_t n = 0; n < nodes; ++n) den[n] += acc[b].den[n];
      totalSamples += acc[b].samples;
      if (acc[b].samples == 0) ++emptyBlocks;
    }
    stats.samplesPerEpoch = totalSamples;
    stats.emptyBlocks = emptyBlocks;

    for (std::size_t node = 0; node < nodes; ++node) {
      if (den[node] <= 0.0) continue;  // no support this epoch: keep weights
      auto& w = nodes_[node];
      for (std::size_t i = 0; i < dim; ++i) {
        w[i] = static_cast<float>(num[node * dim + i] / den[node]);
      }
    }
  }
  return stats;
}

void Som::updateNode(std::size_t node, const std::vector<float>& sample,
                     float eta) {
  auto& w = nodes_[node];
  assert(sample.size() == w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] += eta * (sample[i] - w[i]);
  }
}

std::size_t Som::bestMatchingUnit(const std::vector<float>& v) const {
  std::size_t best = 0;
  float bestD = std::numeric_limits<float>::max();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const float d = featureDistance2(nodes_[i], v);
    if (d < bestD) {
      bestD = d;
      best = i;
    }
  }
  return best;
}

float Som::quantizationError(
    const std::vector<std::vector<float>>& samples) const {
  if (samples.empty()) return 0.0f;
  double sum = 0.0;
  for (const auto& s : samples) {
    sum += std::sqrt(featureDistance2(nodes_[bestMatchingUnit(s)], s));
  }
  return static_cast<float>(sum / static_cast<double>(samples.size()));
}

float Som::topographicError(
    const std::vector<std::vector<float>>& samples) const {
  if (samples.empty()) return 0.0f;
  std::size_t errors = 0;
  for (const auto& s : samples) {
    std::size_t best = 0, second = 0;
    float bestD = std::numeric_limits<float>::max();
    float secondD = bestD;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const float d = featureDistance2(nodes_[i], s);
      if (d < bestD) {
        second = best;
        secondD = bestD;
        best = i;
        bestD = d;
      } else if (d < secondD) {
        second = i;
        secondD = d;
      }
    }
    const long dr = static_cast<long>(best / params_.cols) -
                    static_cast<long>(second / params_.cols);
    const long dc = static_cast<long>(best % params_.cols) -
                    static_cast<long>(second % params_.cols);
    if (std::labs(dr) > 1 || std::labs(dc) > 1) ++errors;
  }
  return static_cast<float>(errors) / static_cast<float>(samples.size());
}

std::size_t ClusteredDataset::nonEmptyClusters() const {
  std::size_t n = 0;
  for (const auto& m : members) {
    if (!m.empty()) ++n;
  }
  return n;
}

std::size_t ClusteredDataset::maxClusterSize() const {
  std::size_t n = 0;
  for (const auto& m : members) n = std::max(n, m.size());
  return n;
}

ClusteredDataset clusterDataset(const TrajectoryDataset& ds,
                                const SomParams& somParams,
                                const FeatureParams& featureParams) {
  ClusteredDataset out;
  out.somParams = somParams;
  out.featureParams = featureParams;

  // Feature extraction is the dominant cost at scale; parallelize it.
  std::vector<std::vector<float>> features(ds.size());
  parallelFor(0, ds.size(), [&](std::size_t i) {
    features[i] = extractFeatures(ds[i], featureParams);
  }, 64);

  Som som(somParams, featureDimension(featureParams));
  som.train(features);

  out.assignment.resize(ds.size());
  parallelFor(0, ds.size(), [&](std::size_t i) {
    out.assignment[i] =
        static_cast<std::uint32_t>(som.bestMatchingUnit(features[i]));
  }, 64);

  out.members.assign(som.nodeCount(), {});
  for (std::size_t i = 0; i < ds.size(); ++i) {
    out.members[out.assignment[i]].push_back(static_cast<std::uint32_t>(i));
  }

  // Cluster averages: members resampled to the feature sample count so the
  // element-wise average is meaningful.
  out.averages.resize(som.nodeCount());
  for (std::size_t node = 0; node < som.nodeCount(); ++node) {
    if (out.members[node].empty()) continue;
    std::vector<Trajectory> resampled;
    resampled.reserve(out.members[node].size());
    for (std::uint32_t idx : out.members[node]) {
      resampled.push_back(
          resampleUniform(ds[idx], featureParams.resampleCount));
    }
    std::vector<const Trajectory*> ptrs;
    ptrs.reserve(resampled.size());
    for (const auto& r : resampled) ptrs.push_back(&r);
    out.averages[node] =
        averageTrajectory(ptrs, static_cast<std::uint32_t>(node));
  }
  return out;
}

}  // namespace svq::traj
