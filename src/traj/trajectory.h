// trajectory.h — core trajectory data model.
//
// A trajectory is a time-ordered polyline of 2D arena positions, plus the
// experimental metadata the paper's dataset carried: where the ant was
// captured relative to the colony's main foraging trail, which way it was
// heading, and its seed-carrying state. Positions are centimetres in arena
// space with the arena centre at the origin (ants are released at the
// centre); time is seconds since release.
//
// Storage is structure-of-arrays: one flat float buffer holding the x[],
// y[], and t[] channels as three contiguous spans, each padded to a
// multiple of kPointBlock points. Kernels (query point-in-brush, raster
// span ops) consume the channels through PointsView — the one sanctioned
// way to see points — so SIMD lanes read dense same-channel floats instead
// of striding over interleaved {x,y,t} records. The legacy AoS accessor
// pointsAoS() materializes a copy and is deprecated (DESIGN.md §12).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/geometry.h"

namespace svq::traj {

/// SoA channel padding granularity, in points. 64 points = 256 bytes per
/// channel = 4 cache lines = 8 AVX2 lanes' worth of floats, and divides
/// the SVQS shard block payload (whole SVQT points, 12 bytes each) so a
/// decoded shard block always fills whole SoA blocks with no straggler
/// remainder crossing a channel boundary.
inline constexpr std::size_t kPointBlock = 64;

/// One tracked sample: 2D arena position (cm) at time t (s since release).
/// With SoA storage this is the *exchange* type (I/O, synthesis, tests) —
/// trajectories do not store TrajPoint records internally.
struct TrajPoint {
  Vec2 pos;
  float t = 0.0f;

  constexpr bool operator==(const TrajPoint&) const = default;
  /// Space-time-cube embedding: XY = arena, Z = time.
  constexpr Vec3 spaceTime() const { return {pos.x, pos.y, t}; }
};

/// Non-owning SoA view over a trajectory's samples: three parallel float
/// spans of `count` live values each (the owning buffer pads every channel
/// to kPointBlock, so x/y/t each sit in contiguous, non-overlapping
/// storage). This is the kernel-facing point API: vector code loads lanes
/// straight from x/y/t; scalar code uses the indexed helpers.
struct PointsView {
  const float* x = nullptr;
  const float* y = nullptr;
  const float* t = nullptr;
  std::size_t count = 0;

  std::size_t size() const { return count; }
  bool empty() const { return count == 0; }

  Vec2 pos(std::size_t i) const { return {x[i], y[i]}; }
  float time(std::size_t i) const { return t[i]; }
  Vec3 spaceTime(std::size_t i) const { return {x[i], y[i], t[i]}; }

  /// Materialized sample (by value — there is no AoS record to point at).
  TrajPoint operator[](std::size_t i) const { return {{x[i], y[i]}, t[i]}; }
  TrajPoint front() const { return (*this)[0]; }
  TrajPoint back() const { return (*this)[count - 1]; }
};

/// Position of the capture site relative to the colony's main foraging
/// trail (the trail runs north-south through the colony in our model).
enum class CaptureSide : std::uint8_t {
  kOnTrail = 0,
  kEast,
  kWest,
  kNorth,
  kSouth,
};

/// Direction of travel at the moment of capture.
enum class JourneyDirection : std::uint8_t {
  kOutbound = 0,  ///< heading away from the colony
  kReturning,     ///< heading back to the colony
};

/// Seed-carrying state at capture (drives the "search for dropped seed"
/// behaviour the pilot-study hypotheses probe).
enum class SeedState : std::uint8_t {
  kNotCarrying = 0,
  kCarrying,
  kDroppedAtCapture,  ///< was carrying, dropped the seed when captured
};

const char* toString(CaptureSide s);
const char* toString(JourneyDirection d);
const char* toString(SeedState s);

/// Parse helpers; return false on unknown token.
bool parseCaptureSide(const std::string& s, CaptureSide& out);
bool parseJourneyDirection(const std::string& s, JourneyDirection& out);
bool parseSeedState(const std::string& s, SeedState& out);

/// Experimental metadata attached to every trajectory.
struct TrajectoryMeta {
  std::uint32_t id = 0;
  CaptureSide side = CaptureSide::kOnTrail;
  JourneyDirection direction = JourneyDirection::kOutbound;
  SeedState seed = SeedState::kNotCarrying;

  constexpr bool operator==(const TrajectoryMeta&) const = default;
};

/// A single ant trajectory: metadata + time-ordered samples in SoA blocks.
///
/// Invariants maintained by the producers in this library (synthesizer,
/// dataset loader, resampler): points are sorted by strictly increasing t,
/// and the first sample is at t = 0.
class Trajectory {
 public:
  Trajectory() = default;
  Trajectory(TrajectoryMeta meta, const std::vector<TrajPoint>& points)
      : meta_(meta) {
    assignPoints(points);
  }

  const TrajectoryMeta& meta() const { return meta_; }
  TrajectoryMeta& meta() { return meta_; }

  /// SoA view of the samples — the one way kernels and iteration see
  /// points. Valid until the next mutation of this trajectory.
  PointsView view() const { return {xs(), ys(), ts(), size_}; }

  /// Appends one sample (amortized O(1); grows in whole kPointBlock units).
  void appendPoint(const TrajPoint& p) { appendPoint(p.pos, p.t); }
  void appendPoint(Vec2 pos, float t);

  /// Replaces all samples.
  void assignPoints(const std::vector<TrajPoint>& points);
  void clearPoints() { size_ = 0; }

  /// DEPRECATED AoS escape hatch: materializes a copy of the samples as
  /// interleaved records. O(n) per call — migrate to view().
  [[deprecated("AoS accessor; use view() — see DESIGN.md §12")]]
  std::vector<TrajPoint> pointsAoS() const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  TrajPoint front() const { return view()[0]; }
  TrajPoint back() const { return view()[size_ - 1]; }
  TrajPoint operator[](std::size_t i) const { return view()[i]; }

  /// Total tracked duration in seconds (0 for < 2 points).
  float duration() const {
    return size_ >= 2 ? ts()[size_ - 1] - ts()[0] : 0.0f;
  }

  /// Sum of inter-sample segment lengths (cm).
  float pathLength() const;

  /// Straight-line distance from first to last sample (cm).
  float netDisplacement() const;

  /// 2D bounding box over all samples.
  AABB2 bounds() const;

  /// 3D space-time bounding box (Z = time).
  AABB3 spaceTimeBounds() const;

  /// Position linearly interpolated at time t (clamped to the tracked range).
  /// Precondition: !empty().
  Vec2 positionAt(float t) const;

  /// Index of the first sample with sample.t >= t (== size() if past end).
  std::size_t lowerBoundIndex(float t) const;

  /// True iff points are strictly increasing in t and start at t==0
  /// (within eps). Used by validation and property tests.
  bool wellFormed(float eps = 1e-4f) const;

 private:
  // Channel bases inside the flat buffer: [x: cap_][y: cap_][t: cap_].
  const float* xs() const { return soa_.data(); }
  const float* ys() const { return soa_.data() + cap_; }
  const float* ts() const { return soa_.data() + 2 * cap_; }
  float* xs() { return soa_.data(); }
  float* ys() { return soa_.data() + cap_; }
  float* ts() { return soa_.data() + 2 * cap_; }

  /// Grows capacity to at least `minPoints`, preserving live samples.
  void reservePoints(std::size_t minPoints);

  TrajectoryMeta meta_;
  std::vector<float> soa_;   ///< 3 * cap_ floats: x block, y block, t block.
  std::size_t cap_ = 0;      ///< per-channel capacity, multiple of kPointBlock
  std::size_t size_ = 0;     ///< live samples per channel
};

}  // namespace svq::traj
