// trajectory.h — core trajectory data model.
//
// A trajectory is a time-ordered polyline of 2D arena positions, plus the
// experimental metadata the paper's dataset carried: where the ant was
// captured relative to the colony's main foraging trail, which way it was
// heading, and its seed-carrying state. Positions are centimetres in arena
// space with the arena centre at the origin (ants are released at the
// centre); time is seconds since release.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/geometry.h"

namespace svq::traj {

/// One tracked sample: 2D arena position (cm) at time t (s since release).
struct TrajPoint {
  Vec2 pos;
  float t = 0.0f;

  constexpr bool operator==(const TrajPoint&) const = default;
  /// Space-time-cube embedding: XY = arena, Z = time.
  constexpr Vec3 spaceTime() const { return {pos.x, pos.y, t}; }
};

/// Position of the capture site relative to the colony's main foraging
/// trail (the trail runs north-south through the colony in our model).
enum class CaptureSide : std::uint8_t {
  kOnTrail = 0,
  kEast,
  kWest,
  kNorth,
  kSouth,
};

/// Direction of travel at the moment of capture.
enum class JourneyDirection : std::uint8_t {
  kOutbound = 0,  ///< heading away from the colony
  kReturning,     ///< heading back to the colony
};

/// Seed-carrying state at capture (drives the "search for dropped seed"
/// behaviour the pilot-study hypotheses probe).
enum class SeedState : std::uint8_t {
  kNotCarrying = 0,
  kCarrying,
  kDroppedAtCapture,  ///< was carrying, dropped the seed when captured
};

const char* toString(CaptureSide s);
const char* toString(JourneyDirection d);
const char* toString(SeedState s);

/// Parse helpers; return false on unknown token.
bool parseCaptureSide(const std::string& s, CaptureSide& out);
bool parseJourneyDirection(const std::string& s, JourneyDirection& out);
bool parseSeedState(const std::string& s, SeedState& out);

/// Experimental metadata attached to every trajectory.
struct TrajectoryMeta {
  std::uint32_t id = 0;
  CaptureSide side = CaptureSide::kOnTrail;
  JourneyDirection direction = JourneyDirection::kOutbound;
  SeedState seed = SeedState::kNotCarrying;

  constexpr bool operator==(const TrajectoryMeta&) const = default;
};

/// A single ant trajectory: metadata + time-ordered samples.
///
/// Invariants maintained by the producers in this library (synthesizer,
/// dataset loader, resampler): points are sorted by strictly increasing t,
/// and the first sample is at t = 0.
class Trajectory {
 public:
  Trajectory() = default;
  Trajectory(TrajectoryMeta meta, std::vector<TrajPoint> points)
      : meta_(meta), points_(std::move(points)) {}

  const TrajectoryMeta& meta() const { return meta_; }
  TrajectoryMeta& meta() { return meta_; }

  std::span<const TrajPoint> points() const { return points_; }
  std::vector<TrajPoint>& mutablePoints() { return points_; }

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const TrajPoint& front() const { return points_.front(); }
  const TrajPoint& back() const { return points_.back(); }
  const TrajPoint& operator[](std::size_t i) const { return points_[i]; }

  /// Total tracked duration in seconds (0 for < 2 points).
  float duration() const {
    return points_.size() >= 2 ? points_.back().t - points_.front().t : 0.0f;
  }

  /// Sum of inter-sample segment lengths (cm).
  float pathLength() const;

  /// Straight-line distance from first to last sample (cm).
  float netDisplacement() const;

  /// 2D bounding box over all samples.
  AABB2 bounds() const;

  /// 3D space-time bounding box (Z = time).
  AABB3 spaceTimeBounds() const;

  /// Position linearly interpolated at time t (clamped to the tracked range).
  /// Precondition: !empty().
  Vec2 positionAt(float t) const;

  /// Index of the first sample with sample.t >= t (== size() if past end).
  std::size_t lowerBoundIndex(float t) const;

  /// True iff points are strictly increasing in t and start at t==0
  /// (within eps). Used by validation and property tests.
  bool wellFormed(float eps = 1e-4f) const;

 private:
  TrajectoryMeta meta_;
  std::vector<TrajPoint> points_;
};

}  // namespace svq::traj
