#include "traj/trajectory.h"

#include <algorithm>
#include <cmath>

namespace svq::traj {

const char* toString(CaptureSide s) {
  switch (s) {
    case CaptureSide::kOnTrail: return "on_trail";
    case CaptureSide::kEast: return "east";
    case CaptureSide::kWest: return "west";
    case CaptureSide::kNorth: return "north";
    case CaptureSide::kSouth: return "south";
  }
  return "?";
}

const char* toString(JourneyDirection d) {
  switch (d) {
    case JourneyDirection::kOutbound: return "outbound";
    case JourneyDirection::kReturning: return "returning";
  }
  return "?";
}

const char* toString(SeedState s) {
  switch (s) {
    case SeedState::kNotCarrying: return "no_seed";
    case SeedState::kCarrying: return "carrying";
    case SeedState::kDroppedAtCapture: return "dropped";
  }
  return "?";
}

bool parseCaptureSide(const std::string& s, CaptureSide& out) {
  if (s == "on_trail") out = CaptureSide::kOnTrail;
  else if (s == "east") out = CaptureSide::kEast;
  else if (s == "west") out = CaptureSide::kWest;
  else if (s == "north") out = CaptureSide::kNorth;
  else if (s == "south") out = CaptureSide::kSouth;
  else return false;
  return true;
}

bool parseJourneyDirection(const std::string& s, JourneyDirection& out) {
  if (s == "outbound") out = JourneyDirection::kOutbound;
  else if (s == "returning") out = JourneyDirection::kReturning;
  else return false;
  return true;
}

bool parseSeedState(const std::string& s, SeedState& out) {
  if (s == "no_seed") out = SeedState::kNotCarrying;
  else if (s == "carrying") out = SeedState::kCarrying;
  else if (s == "dropped") out = SeedState::kDroppedAtCapture;
  else return false;
  return true;
}

float Trajectory::pathLength() const {
  float len = 0.0f;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    len += (points_[i].pos - points_[i - 1].pos).norm();
  }
  return len;
}

float Trajectory::netDisplacement() const {
  if (points_.size() < 2) return 0.0f;
  return (points_.back().pos - points_.front().pos).norm();
}

AABB2 Trajectory::bounds() const {
  AABB2 box;
  for (const auto& p : points_) box.expand(p.pos);
  return box;
}

AABB3 Trajectory::spaceTimeBounds() const {
  AABB3 box;
  for (const auto& p : points_) box.expand(p.spaceTime());
  return box;
}

std::size_t Trajectory::lowerBoundIndex(float t) const {
  auto it = std::lower_bound(
      points_.begin(), points_.end(), t,
      [](const TrajPoint& p, float value) { return p.t < value; });
  return static_cast<std::size_t>(it - points_.begin());
}

Vec2 Trajectory::positionAt(float t) const {
  if (points_.size() == 1) return points_.front().pos;
  if (t <= points_.front().t) return points_.front().pos;
  if (t >= points_.back().t) return points_.back().pos;
  const std::size_t hi = lowerBoundIndex(t);
  const std::size_t lo = hi - 1;
  const float span = points_[hi].t - points_[lo].t;
  const float u = span > 0.0f ? (t - points_[lo].t) / span : 0.0f;
  return lerp(points_[lo].pos, points_[hi].pos, u);
}

bool Trajectory::wellFormed(float eps) const {
  if (points_.empty()) return true;
  if (std::abs(points_.front().t) > eps) return false;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].t <= points_[i - 1].t) return false;
  }
  return true;
}

}  // namespace svq::traj
