#include "traj/trajectory.h"

#include <algorithm>
#include <cmath>

namespace svq::traj {

const char* toString(CaptureSide s) {
  switch (s) {
    case CaptureSide::kOnTrail: return "on_trail";
    case CaptureSide::kEast: return "east";
    case CaptureSide::kWest: return "west";
    case CaptureSide::kNorth: return "north";
    case CaptureSide::kSouth: return "south";
  }
  return "?";
}

const char* toString(JourneyDirection d) {
  switch (d) {
    case JourneyDirection::kOutbound: return "outbound";
    case JourneyDirection::kReturning: return "returning";
  }
  return "?";
}

const char* toString(SeedState s) {
  switch (s) {
    case SeedState::kNotCarrying: return "no_seed";
    case SeedState::kCarrying: return "carrying";
    case SeedState::kDroppedAtCapture: return "dropped";
  }
  return "?";
}

bool parseCaptureSide(const std::string& s, CaptureSide& out) {
  if (s == "on_trail") out = CaptureSide::kOnTrail;
  else if (s == "east") out = CaptureSide::kEast;
  else if (s == "west") out = CaptureSide::kWest;
  else if (s == "north") out = CaptureSide::kNorth;
  else if (s == "south") out = CaptureSide::kSouth;
  else return false;
  return true;
}

bool parseJourneyDirection(const std::string& s, JourneyDirection& out) {
  if (s == "outbound") out = JourneyDirection::kOutbound;
  else if (s == "returning") out = JourneyDirection::kReturning;
  else return false;
  return true;
}

bool parseSeedState(const std::string& s, SeedState& out) {
  if (s == "no_seed") out = SeedState::kNotCarrying;
  else if (s == "carrying") out = SeedState::kCarrying;
  else if (s == "dropped") out = SeedState::kDroppedAtCapture;
  else return false;
  return true;
}

void Trajectory::reservePoints(std::size_t minPoints) {
  if (minPoints <= cap_) return;
  std::size_t cap = cap_ == 0 ? kPointBlock : cap_;
  while (cap < minPoints) cap *= 2;
  // cap is kPointBlock << k, so channel bases stay block-aligned.
  std::vector<float> grown(3 * cap, 0.0f);
  if (size_ > 0) {
    std::copy_n(xs(), size_, grown.data());
    std::copy_n(ys(), size_, grown.data() + cap);
    std::copy_n(ts(), size_, grown.data() + 2 * cap);
  }
  soa_ = std::move(grown);
  cap_ = cap;
}

void Trajectory::appendPoint(Vec2 pos, float t) {
  reservePoints(size_ + 1);
  xs()[size_] = pos.x;
  ys()[size_] = pos.y;
  ts()[size_] = t;
  ++size_;
}

void Trajectory::assignPoints(const std::vector<TrajPoint>& points) {
  size_ = 0;
  reservePoints(points.size());
  float* px = xs();
  float* py = ys();
  float* pt = ts();
  for (const TrajPoint& p : points) {
    *px++ = p.pos.x;
    *py++ = p.pos.y;
    *pt++ = p.t;
  }
  size_ = points.size();
}

std::vector<TrajPoint> Trajectory::pointsAoS() const {
  std::vector<TrajPoint> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back({{xs()[i], ys()[i]}, ts()[i]});
  }
  return out;
}

float Trajectory::pathLength() const {
  const PointsView v = view();
  float len = 0.0f;
  for (std::size_t i = 1; i < v.count; ++i) {
    len += (v.pos(i) - v.pos(i - 1)).norm();
  }
  return len;
}

float Trajectory::netDisplacement() const {
  if (size_ < 2) return 0.0f;
  const PointsView v = view();
  return (v.pos(v.count - 1) - v.pos(0)).norm();
}

AABB2 Trajectory::bounds() const {
  const PointsView v = view();
  AABB2 box;
  for (std::size_t i = 0; i < v.count; ++i) box.expand(v.pos(i));
  return box;
}

AABB3 Trajectory::spaceTimeBounds() const {
  const PointsView v = view();
  AABB3 box;
  for (std::size_t i = 0; i < v.count; ++i) box.expand(v.spaceTime(i));
  return box;
}

std::size_t Trajectory::lowerBoundIndex(float t) const {
  const float* begin = ts();
  const float* end = begin + size_;
  return static_cast<std::size_t>(std::lower_bound(begin, end, t) - begin);
}

Vec2 Trajectory::positionAt(float t) const {
  const PointsView v = view();
  if (v.count == 1) return v.pos(0);
  if (t <= v.time(0)) return v.pos(0);
  if (t >= v.time(v.count - 1)) return v.pos(v.count - 1);
  const std::size_t hi = lowerBoundIndex(t);
  const std::size_t lo = hi - 1;
  const float span = v.time(hi) - v.time(lo);
  const float u = span > 0.0f ? (t - v.time(lo)) / span : 0.0f;
  return lerp(v.pos(lo), v.pos(hi), u);
}

bool Trajectory::wellFormed(float eps) const {
  if (size_ == 0) return true;
  const float* t = ts();
  if (std::abs(t[0]) > eps) return false;
  for (std::size_t i = 1; i < size_; ++i) {
    if (t[i] <= t[i - 1]) return false;
  }
  return true;
}

}  // namespace svq::traj
