#include "traj/shardsummary.h"

#include <algorithm>
#include <cmath>

namespace svq::traj {

int summaryCellOf(float coordCm, float arenaRadiusCm) {
  const float cellSize =
      (2.0f * arenaRadiusCm) / static_cast<float>(ShardSummary::kGridDim);
  const int cell =
      static_cast<int>(std::floor((coordCm + arenaRadiusCm) / cellSize));
  return std::clamp(cell, 0, ShardSummary::kGridDim - 1);
}

ShardSummary computeShardSummary(const TrajectoryDataset& shard) {
  ShardSummary summary;
  const float radius = shard.arena().radiusCm;
  bool anyPoint = false;
  for (const Trajectory& traj : shard.all()) {
    const PointsView pts = traj.view();
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const float x = pts.x[i];
      const float y = pts.y[i];
      summary.markCell(summaryCellOf(x, radius), summaryCellOf(y, radius));
      summary.envelope.expand(Vec2{x, y});
      if (!anyPoint) {
        summary.tMin = summary.tMax = pts.t[i];
        anyPoint = true;
      } else {
        summary.tMin = std::min(summary.tMin, pts.t[i]);
        summary.tMax = std::max(summary.tMax, pts.t[i]);
      }
      // Segment midpoints are probe points too (core::classifySegments
      // tests them), and a midpoint can land in a cell neither endpoint
      // occupies — rasterize it explicitly. The envelope needs no update:
      // a midpoint is a convex combination of its endpoints.
      if (i + 1 < pts.size()) {
        summary.markCell(summaryCellOf(0.5f * (x + pts.x[i + 1]), radius),
                         summaryCellOf(0.5f * (y + pts.y[i + 1]), radius));
      }
    }
  }
  return summary;
}

bool validateShardSummary(const ShardSummary& summary,
                          std::uint64_t pointCount) {
  if (!std::isfinite(summary.tMin) || !std::isfinite(summary.tMax) ||
      summary.tMin > summary.tMax) {
    return false;
  }
  if (pointCount == 0) {
    // An empty shard must claim nothing.
    return summary.occupancyEmpty() && !summary.envelope.valid();
  }
  // Every probe point marks a cell, so points imply occupancy and a
  // finite, ordered envelope.
  if (summary.occupancyEmpty()) return false;
  if (!summary.envelope.valid() || !std::isfinite(summary.envelope.min.x) ||
      !std::isfinite(summary.envelope.min.y) ||
      !std::isfinite(summary.envelope.max.x) ||
      !std::isfinite(summary.envelope.max.y)) {
    return false;
  }
  return true;
}

}  // namespace svq::traj
