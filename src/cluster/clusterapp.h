// clusterapp.h — sort-first cluster rendering of the wall.
//
// Reproduces the parallel rendering architecture that drove the paper's
// display: one render node per tile, a master that distributes the frame
// state, a swap barrier that locks all panels to the same frame, and an
// optional gather that reassembles the full wall image.
//
// Protocol per frame (all ranks, lockstep):
//   1. master (rank 0) serializes the SceneModel; broadcast to all ranks;
//   2. every rank renders the *whole* scene through a Canvas clipped to
//      each tile it owns (sort-first: geometry outside the tile is
//      culled); stereo renders one framebuffer per eye;
//   3. swap barrier (SwapGroup) — no tile shows frame N+1 before all
//      finished frame N;
//   4. if gathering, ranks send tile framebuffers to the master, which
//      composites the wall image.
//
// Fault tolerance (options.faultTolerance.enabled): the swap barrier is
// the heartbeat. A rank that misses it through the retry/backoff ladder
// is declared dead by the master; the release payload propagates the
// dead-set to the survivors, which deterministically reassign the dead
// rank's tile round-robin over the surviving ranks (sort-first makes this
// a pure frustum reassignment — no data movement). Until the reassigned
// tile is rendered, the master composites the dead tile from its
// last-good framebuffer ("degraded" frames). A session with one dead
// render rank therefore completes with a pixel-complete wall instead of
// wedging.
//
// Ranks are threads over InProcessTransport; the protocol code is
// identical to what TCP-connected processes would run.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "net/comm.h"
#include "net/status.h"
#include "render/framebuffer.h"
#include "render/scene.h"
#include "traj/dataset.h"
#include "util/stopwatch.h"
#include "wall/wall.h"

namespace svq::cluster {

/// Failure-detection and degraded-mode policy.
struct FaultToleranceOptions {
  bool enabled = false;
  /// Swap-barrier (heartbeat) deadline before the first retry.
  double heartbeatTimeoutSeconds = 0.25;
  /// Extra deadline windows before a silent rank is declared dead.
  int retries = 2;
  double backoffMultiplier = 2.0;

  net::CollectiveConfig collectiveConfig() const {
    net::CollectiveConfig c;
    if (enabled) {
      c.timeoutSeconds = heartbeatTimeoutSeconds;
      c.retries = retries;
      c.backoffMultiplier = backoffMultiplier;
    }
    return c;
  }
};

/// Scripted rank crash for tests and benches: the rank's thread exits at
/// the top of frame `atFrame`, before receiving that frame's state.
/// Rank 0 (the master) is a single point of failure and must not be
/// killed.
struct RankFailure {
  int rank = -1;
  std::uint64_t atFrame = 0;
};

/// Scripted scene-cache loss for tests: the rank forgets its cached scene
/// at the top of frame `atFrame`, so the next delta broadcast it receives
/// is rejected and the master must resync it with a full packet.
struct SceneCacheDrop {
  int rank = -1;
  std::uint64_t atFrame = 0;
};

/// Wall/bench presets for ClusterOptions::preset().
enum class ClusterPreset {
  kMinimal,   ///< mono, gather on — cheapest correct session
  kEVL6x3,    ///< the paper's wall: stereo, gather-to-master composite
  kHeadless,  ///< stereo, no gather — pure render/swap scaling runs
};

struct ClusterOptions {
  bool stereo = true;
  /// Gather tile images to the master each frame and composite.
  bool gatherToMaster = true;
  /// Keep only the final frame's composite (memory control for benches).
  bool keepAllComposites = false;
  /// Interconnect model (latency/bandwidth) for ablation studies;
  /// default = instantaneous in-process delivery.
  net::NetworkModel network;
  /// Deterministic interconnect fault injection (drop/delay); applied to
  /// the transport when any probability is non-zero.
  net::FaultInjector::Plan faults;
  FaultToleranceOptions faultTolerance;
  /// Broadcast only the cells whose content hash changed since the last
  /// acked epoch (full-scene packets on the first frame, layout changes
  /// and resyncs). Off = every frame ships the full scene.
  bool deltaBroadcast = true;
  /// Scripted rank crashes (tests/benches).
  std::vector<RankFailure> failures;
  /// Scripted scene-cache losses (tests): exercises the delta-broadcast
  /// resync path without killing the rank.
  std::vector<SceneCacheDrop> sceneCacheDrops;
  /// Session watchdog: > 0 aborts a wedged session (transport shutdown)
  /// after this many wall-clock seconds. This is how a *non*-fault-
  /// tolerant session with a dead rank is recovered for measurement.
  double watchdogSeconds = 0.0;

  // --- fluent builder ------------------------------------------------------
  // The option set grows PR over PR; the builder keeps call sites
  // source-compatible:
  //   ClusterOptions::preset(ClusterPreset::kEVL6x3)
  //       .withNetwork(net::NetworkModel::gigabitEthernet())
  //       .withFaultTolerance()
  //       .withFailure(7, 3);

  static ClusterOptions preset(ClusterPreset p) {
    ClusterOptions o;
    switch (p) {
      case ClusterPreset::kMinimal:
        o.stereo = false;
        break;
      case ClusterPreset::kEVL6x3:
        o.stereo = true;
        o.gatherToMaster = true;
        break;
      case ClusterPreset::kHeadless:
        o.gatherToMaster = false;
        break;
    }
    return o;
  }

  ClusterOptions& withStereo(bool on) {
    stereo = on;
    return *this;
  }
  ClusterOptions& withGather(bool on) {
    gatherToMaster = on;
    return *this;
  }
  ClusterOptions& withKeepAllComposites(bool on) {
    keepAllComposites = on;
    return *this;
  }
  ClusterOptions& withNetwork(net::NetworkModel model) {
    network = model;
    return *this;
  }
  ClusterOptions& withFaults(net::FaultInjector::Plan plan) {
    faults = plan;
    return *this;
  }
  ClusterOptions& withFaultTolerance(FaultToleranceOptions ft = {
                                         .enabled = true}) {
    faultTolerance = ft;
    return *this;
  }
  ClusterOptions& withFailure(int rank, std::uint64_t atFrame) {
    failures.push_back(RankFailure{rank, atFrame});
    return *this;
  }
  ClusterOptions& withDeltaBroadcast(bool on) {
    deltaBroadcast = on;
    return *this;
  }
  ClusterOptions& withSceneCacheDrop(int rank, std::uint64_t atFrame) {
    sceneCacheDrops.push_back(SceneCacheDrop{rank, atFrame});
    return *this;
  }
  ClusterOptions& withWatchdog(double seconds) {
    watchdogSeconds = seconds;
    return *this;
  }
};

/// Per-rank accounting for one session.
struct RankStats {
  int rank = 0;
  double renderSeconds = 0.0;    ///< total time in renderScene
  double barrierSeconds = 0.0;   ///< total time blocked in the swap barrier
  double gatherSeconds = 0.0;    ///< total time serializing/sending tiles
  /// Cells composited into this rank's tiles (rasterized + restored from
  /// cache + skipped-as-unchanged).
  std::size_t cellsDrawn = 0;
  std::size_t cellsCulled = 0;
  // Incremental-pipeline breakdown of cellsDrawn:
  std::size_t cellsRasterized = 0;  ///< content changed, redrawn
  std::size_t cellsBlitted = 0;     ///< restored from the per-cell cache
  std::size_t cellsSkipped = 0;     ///< unchanged, pixels already in place
  // Fault observability:
  std::uint64_t degradedSwaps = 0;  ///< barriers that completed minus a peer
  std::uint64_t timeouts = 0;       ///< deadline windows expired in collectives
  std::uint64_t retries = 0;        ///< extra windows granted before verdicts
  int tilesOwnedAtEnd = 1;          ///< > 1 after inheriting dead ranks' tiles
  std::int64_t diedAtFrame = -1;    ///< scripted crash frame (-1 = survived)
};

/// Result of a cluster session.
struct ClusterResult {
  /// Composited wall images of the last frame (per eye; right empty when
  /// stereo is off). Present only when gathering was enabled.
  std::optional<render::Framebuffer> leftWall;
  std::optional<render::Framebuffer> rightWall;
  /// Composites of every frame when keepAllComposites (left eye only).
  std::vector<render::Framebuffer> frameComposites;
  std::vector<RankStats> rankStats;
  std::uint64_t framesRendered = 0;
  std::uint64_t messagesSent = 0;
  std::uint64_t bytesSent = 0;
  double wallClockSeconds = 0.0;
  // Scene-broadcast accounting (master's view): payload bytes of the
  // frame-state broadcasts by packet kind. Control = the per-frame resync
  // verdicts (kNone) of the delta protocol; resync full packets count
  // into broadcastBytesFull and broadcastResyncs.
  std::uint64_t broadcastBytesFull = 0;
  std::uint64_t broadcastBytesDelta = 0;
  std::uint64_t broadcastBytesControl = 0;
  std::uint64_t broadcastFramesFull = 0;
  std::uint64_t broadcastFramesDelta = 0;
  std::uint64_t broadcastResyncs = 0;
  // Fault observability (master's view):
  std::uint64_t framesCompleted = 0;   ///< frames the master composited/swapped
  std::uint64_t degradedFrames = 0;    ///< composites that used stale tiles
  std::uint64_t framesToRecovery = 0;  ///< first failure -> all-fresh composite
  std::uint64_t ranksFailed = 0;       ///< ranks declared dead
  bool aborted = false;                ///< watchdog fired / transport shut down
};

/// Runs a complete session: renders `frames` scene models over a cluster
/// with one rank per wall tile. The dataset is shared read-only by all
/// ranks (each real cluster node would hold a replica; trajectories are
/// static assets distributed once at startup).
ClusterResult runClusterSession(const traj::TrajectoryDataset& dataset,
                                const wall::WallSpec& wallSpec,
                                const std::vector<render::SceneModel>& frames,
                                const ClusterOptions& options = {});

/// Single-rank reference: renders the frames sequentially into full wall
/// images (used to validate that cluster output is pixel-identical).
render::Framebuffer renderReferenceWall(
    const traj::TrajectoryDataset& dataset, const wall::WallSpec& wallSpec,
    const render::SceneModel& scene, render::Eye eye);

/// Deterministic degraded-mode tile ownership: every rank owns its own
/// tile; dead ranks' tiles are dealt round-robin over the surviving ranks
/// in ascending rank order. All survivors compute the same assignment
/// from the same dead mask, so no extra coordination round is needed.
std::vector<int> assignedTiles(int rank, int rankCount,
                               std::uint64_t deadMask);

}  // namespace svq::cluster
