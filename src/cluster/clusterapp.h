// clusterapp.h — sort-first cluster rendering of the wall.
//
// Reproduces the parallel rendering architecture that drove the paper's
// display: one render node per tile, a master that distributes the frame
// state, a swap barrier that locks all panels to the same frame, and an
// optional gather that reassembles the full wall image.
//
// Protocol per frame (all ranks, lockstep):
//   1. master (rank 0) serializes the SceneModel; broadcast to all ranks;
//   2. every rank renders the *whole* scene through a Canvas clipped to
//      its own tile (sort-first: geometry outside the tile is culled);
//      stereo renders one framebuffer per eye;
//   3. swap barrier (SwapGroup) — no tile shows frame N+1 before all
//      finished frame N;
//   4. if gathering, ranks send tile framebuffers to the master, which
//      composites the wall image.
//
// Ranks are threads over InProcessTransport; the protocol code is
// identical to what TCP-connected processes would run.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "net/comm.h"
#include "render/framebuffer.h"
#include "render/scene.h"
#include "traj/dataset.h"
#include "util/stopwatch.h"
#include "wall/wall.h"

namespace svq::cluster {

struct ClusterOptions {
  bool stereo = true;
  /// Gather tile images to the master each frame and composite.
  bool gatherToMaster = true;
  /// Keep only the final frame's composite (memory control for benches).
  bool keepAllComposites = false;
  /// Interconnect model (latency/bandwidth) for ablation studies;
  /// default = instantaneous in-process delivery.
  net::NetworkModel network;
};

/// Per-rank accounting for one session.
struct RankStats {
  int rank = 0;
  double renderSeconds = 0.0;    ///< total time in renderScene
  double barrierSeconds = 0.0;   ///< total time blocked in the swap barrier
  double gatherSeconds = 0.0;    ///< total time serializing/sending tiles
  std::size_t cellsDrawn = 0;
  std::size_t cellsCulled = 0;
};

/// Result of a cluster session.
struct ClusterResult {
  /// Composited wall images of the last frame (per eye; right empty when
  /// stereo is off). Present only when gathering was enabled.
  std::optional<render::Framebuffer> leftWall;
  std::optional<render::Framebuffer> rightWall;
  /// Composites of every frame when keepAllComposites (left eye only).
  std::vector<render::Framebuffer> frameComposites;
  std::vector<RankStats> rankStats;
  std::uint64_t framesRendered = 0;
  std::uint64_t messagesSent = 0;
  std::uint64_t bytesSent = 0;
  double wallClockSeconds = 0.0;
};

/// Runs a complete session: renders `frames` scene models over a cluster
/// with one rank per wall tile. The dataset is shared read-only by all
/// ranks (each real cluster node would hold a replica; trajectories are
/// static assets distributed once at startup).
ClusterResult runClusterSession(const traj::TrajectoryDataset& dataset,
                                const wall::WallSpec& wallSpec,
                                const std::vector<render::SceneModel>& frames,
                                const ClusterOptions& options = {});

/// Single-rank reference: renders the frames sequentially into full wall
/// images (used to validate that cluster output is pixel-identical).
render::Framebuffer renderReferenceWall(
    const traj::TrajectoryDataset& dataset, const wall::WallSpec& wallSpec,
    const render::SceneModel& scene, render::Eye eye);

}  // namespace svq::cluster
