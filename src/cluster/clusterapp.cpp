#include "cluster/clusterapp.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

#include "cluster/scene_serde.h"
#include "net/swapsync.h"
#include "net/transport.h"
#include "render/pipeline.h"
#include "render/rasterizer.h"
#include "util/metrics.h"
#include "wall/compositor.h"

namespace svq::cluster {

std::vector<int> assignedTiles(int rank, int rankCount,
                               std::uint64_t deadMask) {
  std::vector<int> alive;
  alive.reserve(static_cast<std::size_t>(rankCount));
  for (int r = 0; r < rankCount; ++r) {
    if (!((deadMask >> r) & 1u)) alive.push_back(r);
  }
  std::vector<int> mine;
  if (((deadMask >> rank) & 1u) || alive.empty()) return mine;
  mine.push_back(rank);
  int dealt = 0;
  for (int r = 0; r < rankCount; ++r) {
    if (!((deadMask >> r) & 1u)) continue;
    if (alive[static_cast<std::size_t>(dealt) % alive.size()] == rank) {
      mine.push_back(r);
    }
    ++dealt;
  }
  return mine;
}

namespace {

/// Master-side state for stitching the wall when some tiles arrive stale.
struct CompositeState {
  std::vector<render::Framebuffer> lastGoodLeft;
  std::vector<render::Framebuffer> lastGoodRight;
  std::vector<bool> freshThisFrame;
  bool failureSeen = false;
  std::uint64_t failureFrame = 0;
  bool recovered = false;
};

/// The per-rank protocol loop.
void rankMain(int rank, net::InProcessTransport& transport,
              net::FaultInjector& injector,
              const traj::TrajectoryDataset& dataset,
              const wall::WallSpec& wallSpec,
              const std::vector<render::SceneModel>& frames,
              const ClusterOptions& options, RankStats& stats,
              ClusterResult& sharedResult) {
  net::Communicator comm(transport, rank,
                         options.faultTolerance.collectiveConfig());
  net::SwapGroup swapGroup(comm);
  stats.rank = rank;
  const int ranks = wallSpec.tileCount();

  std::int64_t dieAtFrame = -1;
  for (const RankFailure& f : options.failures) {
    if (f.rank == rank) dieAtFrame = static_cast<std::int64_t>(f.atFrame);
  }

  // Tile framebuffers keyed by tile index; a rank holds one (its own) until
  // failover hands it more. Each (tile, eye) stream gets its own
  // incremental render pipeline: the tile buffer persists across frames,
  // so unchanged cells are simply left in place. Pipelines run serially —
  // ranks are already one thread each; nesting a pool here would
  // oversubscribe the host.
  std::map<int, render::Framebuffer> left, right;
  std::map<int, render::CellRenderPipeline> pipesLeft, pipesRight;
  auto tileBuffer = [&](std::map<int, render::Framebuffer>& eye,
                        int tile) -> render::Framebuffer& {
    const RectI r = wallSpec.tileRectPx(wallSpec.tileFromIndex(tile));
    auto it = eye.find(tile);
    if (it == eye.end()) {
      it = eye.emplace(tile, render::Framebuffer(r.w, r.h)).first;
    }
    return it->second;
  };

  CompositeState composite;
  if (rank == 0 && options.gatherToMaster) {
    composite.lastGoodLeft.reserve(static_cast<std::size_t>(ranks));
    for (int t = 0; t < ranks; ++t) {
      const RectI r = wallSpec.tileRectPx(wallSpec.tileFromIndex(t));
      composite.lastGoodLeft.emplace_back(r.w, r.h);
      if (options.stereo) composite.lastGoodRight.emplace_back(r.w, r.h);
    }
    composite.freshThisFrame.assign(static_cast<std::size_t>(ranks), false);
  }

  SceneDeltaEncoder encoder;  // master only
  SceneReceiver receiver;
  MetricsRegistry& metricsReg = MetricsRegistry::global();
  Counter& metricBytesFull = metricsReg.counter("cluster.broadcast.bytes_full");
  Counter& metricBytesDelta =
      metricsReg.counter("cluster.broadcast.bytes_delta");
  Counter& metricResyncs = metricsReg.counter("cluster.broadcast.resyncs");

  auto protocol = [&] {
    for (std::size_t f = 0; f < frames.size(); ++f) {
      if (dieAtFrame >= 0 && static_cast<std::int64_t>(f) == dieAtFrame) {
        // Simulated crash: the rank vanishes before this frame's state
        // distribution. The injector makes its in-flight mail disappear
        // the way a dead process's would.
        stats.diedAtFrame = dieAtFrame;
        injector.killRank(rank);
        return;
      }

      // Scripted scene-cache loss: the rank forgets its scene before this
      // frame's state distribution, so a delta packet will be rejected.
      for (const SceneCacheDrop& drop : options.sceneCacheDrops) {
        if (drop.rank == rank && drop.atFrame == f) receiver.dropCache();
      }

      // 1. State distribution. The master serializes — only the cells
      // whose content hash changed since the last epoch when delta
      // broadcast is on — and everyone (including the master, for
      // protocol uniformity) decodes the broadcast buffer.
      net::MessageBuffer sceneBuf;
      ScenePacketKind kind = ScenePacketKind::kFull;
      if (rank == 0) {
        if (options.deltaBroadcast) {
          kind = encoder.encode(sceneBuf, frames[f]);
        } else {
          serializeSceneFull(sceneBuf, frames[f],
                             static_cast<std::uint64_t>(f) + 1);
        }
        if (kind == ScenePacketKind::kDelta) {
          sharedResult.broadcastBytesDelta += sceneBuf.size();
          ++sharedResult.broadcastFramesDelta;
          metricBytesDelta.add(sceneBuf.size());
        } else {
          sharedResult.broadcastBytesFull += sceneBuf.size();
          ++sharedResult.broadcastFramesFull;
          metricBytesFull.add(sceneBuf.size());
        }
      }
      if (!comm.broadcast(0, sceneBuf).completed()) return;
      const bool applied = receiver.apply(sceneBuf);

      // Pin this frame's tile ownership to the dead-set as converged at
      // frame start (the previous barrier's release payload). A death
      // detected later this frame — e.g. by the ack round below — takes
      // effect at frame f+1: the master composites the dead tile from its
      // last-good image for one frame (degraded) rather than racing the
      // reassignment mid-frame. Sort-first means inheriting a dead rank's
      // tile is just an extra clip rect — no data moves.
      const std::vector<int> myTiles =
          assignedTiles(rank, ranks, comm.deadMask());
      stats.tilesOwnedAtEnd = static_cast<int>(myTiles.size());

      // 1b. Delta protocol resync round: every rank acks/nacks the packet
      // it received; the master answers with a full re-send of the frame
      // if anyone was left behind (dropped cache, fresh rank), or a tiny
      // control packet if not. One collective each way keeps the ranks in
      // lockstep without the master guessing receiver state.
      if (options.deltaBroadcast) {
        net::MessageBuffer ackBuf;
        ackBuf.putU8(applied ? 1 : 0);
        std::vector<net::MessageBuffer> acks;
        if (!comm.gather(0, std::move(ackBuf), acks).completed()) return;
        net::MessageBuffer resyncBuf;
        if (rank == 0) {
          bool anyNack = false;
          for (net::MessageBuffer& a : acks) {
            if (a.size() > 0 && a.getU8() == 0) anyNack = true;
          }
          if (anyNack) {
            encoder.encodeResync(resyncBuf, frames[f]);
            ++sharedResult.broadcastResyncs;
            sharedResult.broadcastBytesFull += resyncBuf.size();
            metricBytesFull.add(resyncBuf.size());
            metricResyncs.add(1);
          } else {
            serializeSceneNone(resyncBuf, encoder.epoch());
            sharedResult.broadcastBytesControl += resyncBuf.size();
          }
        }
        if (!comm.broadcast(0, resyncBuf).completed()) return;
        receiver.apply(resyncBuf);
      }
      const render::SceneModel& scene = receiver.scene();

      // 2. Sort-first render of every owned tile, incrementally: the tile
      // framebuffer persists across frames, so the pipeline rasterizes
      // only the cells whose content changed and leaves the rest in place.
      Stopwatch renderTimer;
      std::vector<TileImage> renderedLeft, renderedRight;
      auto accumulate = [&stats](const render::PipelineStats& ps) {
        stats.cellsDrawn +=
            ps.cellsRasterized + ps.cellsBlitted + ps.cellsSkipped;
        stats.cellsCulled += ps.cellsCulled;
        stats.cellsRasterized += ps.cellsRasterized;
        stats.cellsBlitted += ps.cellsBlitted;
        stats.cellsSkipped += ps.cellsSkipped;
      };
      for (int tile : myTiles) {
        const RectI tileRect = wallSpec.tileRectPx(wallSpec.tileFromIndex(tile));
        render::Framebuffer& fbL = tileBuffer(left, tile);
        const render::Canvas canvas{&fbL, tileRect, {}};
        accumulate(pipesLeft[tile].render(scene, dataset, canvas,
                                          render::Eye::kLeft));
        if (options.stereo) {
          render::Framebuffer& fbR = tileBuffer(right, tile);
          const render::Canvas canvasR{&fbR, tileRect, {}};
          accumulate(pipesRight[tile].render(scene, dataset, canvasR,
                                             render::Eye::kRight));
        }
        if (options.gatherToMaster) {
          renderedLeft.push_back(TileImage{tile, fbL});
          if (options.stereo) renderedRight.push_back(TileImage{tile, right.at(tile)});
        }
      }
      stats.renderSeconds += renderTimer.elapsedSeconds();

      // 3. Swap barrier: the wall flips as one. This doubles as the
      // heartbeat — a rank that misses it through the whole retry ladder
      // is declared dead here, and the release tells the survivors.
      Stopwatch barrierTimer;
      const net::Status swapStatus = swapGroup.ready(f);
      stats.barrierSeconds += barrierTimer.elapsedSeconds();
      if (!swapStatus.completed()) return;

      // 4. Optional gather for composition/verification. Runs over the
      // post-barrier membership, so a rank declared dead this frame is no
      // longer waited for.
      if (options.gatherToMaster) {
        Stopwatch gatherTimer;
        net::MessageBuffer packetL;
        serializeTilePacket(packetL, renderedLeft);
        std::vector<net::MessageBuffer> gatheredL;
        if (!comm.gather(0, std::move(packetL), gatheredL).completed()) return;
        std::vector<net::MessageBuffer> gatheredR;
        if (options.stereo) {
          net::MessageBuffer packetR;
          serializeTilePacket(packetR, renderedRight);
          if (!comm.gather(0, std::move(packetR), gatheredR).completed()) {
            return;
          }
        }
        stats.gatherSeconds += gatherTimer.elapsedSeconds();

        if (rank == 0) {
          std::fill(composite.freshThisFrame.begin(),
                    composite.freshThisFrame.end(), false);
          for (auto& buf : gatheredL) {
            if (buf.size() == 0) continue;  // dead rank's empty slot
            for (TileImage& t : deserializeTilePacket(buf)) {
              composite.lastGoodLeft[static_cast<std::size_t>(t.tileIndex)] =
                  std::move(t.image);
              composite.freshThisFrame[static_cast<std::size_t>(t.tileIndex)] =
                  true;
            }
          }
          if (options.stereo) {
            for (auto& buf : gatheredR) {
              if (buf.size() == 0) continue;
              for (TileImage& t : deserializeTilePacket(buf)) {
                composite.lastGoodRight[static_cast<std::size_t>(
                    t.tileIndex)] = std::move(t.image);
              }
            }
          }

          const bool allFresh =
              std::all_of(composite.freshThisFrame.begin(),
                          composite.freshThisFrame.end(),
                          [](bool fresh) { return fresh; });
          if (!allFresh) {
            ++sharedResult.degradedFrames;
            if (!composite.failureSeen) {
              composite.failureSeen = true;
              composite.failureFrame = f;
            }
          } else if (composite.failureSeen && !composite.recovered) {
            composite.recovered = true;
            sharedResult.framesToRecovery = f - composite.failureFrame;
          }

          sharedResult.leftWall =
              wall::composeActivePixels(wallSpec, composite.lastGoodLeft);
          if (options.keepAllComposites) {
            sharedResult.frameComposites.push_back(*sharedResult.leftWall);
          }
          if (options.stereo) {
            sharedResult.rightWall =
                wall::composeActivePixels(wallSpec, composite.lastGoodRight);
          }
        }
      }
      if (rank == 0) ++sharedResult.framesCompleted;
    }
  };
  protocol();

  stats.timeouts = comm.stats().timeouts;
  stats.retries = comm.stats().retries;
  stats.degradedSwaps = swapGroup.degradedSwaps();
  if (rank == 0) {
    sharedResult.ranksFailed =
        static_cast<std::uint64_t>(std::popcount(comm.deadMask()));
  }
}

}  // namespace

ClusterResult runClusterSession(const traj::TrajectoryDataset& dataset,
                                const wall::WallSpec& wallSpec,
                                const std::vector<render::SceneModel>& frames,
                                const ClusterOptions& options) {
  ClusterResult result;
  const int ranks = wallSpec.tileCount();
  net::InProcessTransport transport(ranks, options.network);
  net::FaultInjector injector(options.faults);
  transport.setFaultInjector(&injector);
  result.rankStats.resize(static_cast<std::size_t>(ranks));

  // Watchdog: lets a deliberately non-fault-tolerant session with a dead
  // rank be recovered (shutdown + aborted flag) instead of hanging the
  // caller — the measurable "old API wedges the wall" baseline.
  std::mutex watchdogMutex;
  std::condition_variable watchdogCv;
  bool sessionDone = false;
  bool watchdogFired = false;
  std::thread watchdog;
  if (options.watchdogSeconds > 0.0) {
    watchdog = std::thread([&] {
      std::unique_lock lock(watchdogMutex);
      const bool finished = watchdogCv.wait_for(
          lock, std::chrono::duration<double>(options.watchdogSeconds),
          [&] { return sessionDone; });
      if (!finished) {
        watchdogFired = true;
        transport.shutdown();
      }
    });
  }

  Stopwatch wallClock;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      rankMain(r, transport, injector, dataset, wallSpec, frames, options,
               result.rankStats[static_cast<std::size_t>(r)], result);
    });
  }
  for (auto& t : threads) t.join();
  {
    std::lock_guard lock(watchdogMutex);
    sessionDone = true;
    result.aborted = watchdogFired;
  }
  watchdogCv.notify_all();
  if (watchdog.joinable()) watchdog.join();
  transport.shutdown();

  result.wallClockSeconds = wallClock.elapsedSeconds();
  result.framesRendered = frames.size();
  result.messagesSent = transport.messagesSent();
  result.bytesSent = transport.bytesSent();
  return result;
}

render::Framebuffer renderReferenceWall(const traj::TrajectoryDataset& dataset,
                                        const wall::WallSpec& wallSpec,
                                        const render::SceneModel& scene,
                                        render::Eye eye) {
  render::Framebuffer fb(wallSpec.totalPxW(), wallSpec.totalPxH());
  const render::Canvas canvas = render::Canvas::whole(fb);
  // Render through the cell pipeline (cold, serial) so the reference has
  // the same cell-clipped semantics as the cluster ranks.
  render::CellRenderPipeline pipeline;
  pipeline.render(scene, dataset, canvas, eye);
  return fb;
}

}  // namespace svq::cluster
