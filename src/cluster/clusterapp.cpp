#include "cluster/clusterapp.h"

#include <thread>

#include "cluster/scene_serde.h"
#include "net/swapsync.h"
#include "net/transport.h"
#include "render/rasterizer.h"
#include "wall/compositor.h"

namespace svq::cluster {

namespace {

constexpr int kTagTileLeft = 100;
constexpr int kTagTileRight = 101;

/// The per-rank protocol loop.
void rankMain(int rank, net::InProcessTransport& transport,
              const traj::TrajectoryDataset& dataset,
              const wall::WallSpec& wallSpec,
              const std::vector<render::SceneModel>& frames,
              const ClusterOptions& options, RankStats& stats,
              ClusterResult& sharedResult) {
  net::Communicator comm(transport, rank);
  net::SwapGroup swapGroup(comm);
  stats.rank = rank;

  const RectI tileRect = wallSpec.tileRectPx(wallSpec.tileFromIndex(rank));
  render::Framebuffer left(tileRect.w, tileRect.h);
  render::Framebuffer right(tileRect.w, tileRect.h);

  for (std::size_t f = 0; f < frames.size(); ++f) {
    // 1. State distribution. The master serializes; everyone (including
    // the master, for protocol uniformity) decodes the broadcast buffer.
    net::MessageBuffer sceneBuf;
    if (rank == 0) serializeScene(sceneBuf, frames[f]);
    if (!comm.broadcast(0, sceneBuf)) return;
    const render::SceneModel scene = deserializeScene(sceneBuf);

    // 2. Sort-first render of this rank's tile.
    Stopwatch renderTimer;
    const render::Canvas canvas{&left, tileRect};
    const render::RenderStats rs =
        renderScene(scene, dataset, canvas, render::Eye::kLeft);
    stats.cellsDrawn += rs.cellsDrawn;
    stats.cellsCulled += rs.cellsCulled;
    if (options.stereo) {
      const render::Canvas canvasR{&right, tileRect};
      const render::RenderStats rsR =
          renderScene(scene, dataset, canvasR, render::Eye::kRight);
      stats.cellsDrawn += rsR.cellsDrawn;
      stats.cellsCulled += rsR.cellsCulled;
    }
    stats.renderSeconds += renderTimer.elapsedSeconds();

    // 3. Swap barrier: the wall flips as one.
    Stopwatch barrierTimer;
    if (!swapGroup.ready(f)) return;
    stats.barrierSeconds += barrierTimer.elapsedSeconds();

    // 4. Optional gather for composition/verification.
    if (options.gatherToMaster) {
      Stopwatch gatherTimer;
      net::MessageBuffer tileL;
      serializeFramebuffer(tileL, left);
      std::vector<net::MessageBuffer> gatheredL;
      if (!comm.gather(0, std::move(tileL), gatheredL)) return;
      std::vector<net::MessageBuffer> gatheredR;
      if (options.stereo) {
        net::MessageBuffer tileR;
        serializeFramebuffer(tileR, right);
        if (!comm.gather(0, std::move(tileR), gatheredR)) return;
      }
      stats.gatherSeconds += gatherTimer.elapsedSeconds();

      if (rank == 0) {
        std::vector<render::Framebuffer> tilesL;
        tilesL.reserve(gatheredL.size());
        for (auto& buf : gatheredL) {
          tilesL.push_back(deserializeFramebuffer(buf));
        }
        sharedResult.leftWall = wall::composeActivePixels(wallSpec, tilesL);
        if (options.keepAllComposites) {
          sharedResult.frameComposites.push_back(*sharedResult.leftWall);
        }
        if (options.stereo) {
          std::vector<render::Framebuffer> tilesR;
          tilesR.reserve(gatheredR.size());
          for (auto& buf : gatheredR) {
            tilesR.push_back(deserializeFramebuffer(buf));
          }
          sharedResult.rightWall =
              wall::composeActivePixels(wallSpec, tilesR);
        }
      }
    }
    (void)kTagTileLeft;
    (void)kTagTileRight;
  }
}

}  // namespace

ClusterResult runClusterSession(const traj::TrajectoryDataset& dataset,
                                const wall::WallSpec& wallSpec,
                                const std::vector<render::SceneModel>& frames,
                                const ClusterOptions& options) {
  ClusterResult result;
  const int ranks = wallSpec.tileCount();
  net::InProcessTransport transport(ranks, options.network);
  result.rankStats.resize(static_cast<std::size_t>(ranks));

  Stopwatch wallClock;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      rankMain(r, transport, dataset, wallSpec, frames, options,
               result.rankStats[static_cast<std::size_t>(r)], result);
    });
  }
  for (auto& t : threads) t.join();
  transport.shutdown();

  result.wallClockSeconds = wallClock.elapsedSeconds();
  result.framesRendered = frames.size();
  result.messagesSent = transport.messagesSent();
  result.bytesSent = transport.bytesSent();
  return result;
}

render::Framebuffer renderReferenceWall(const traj::TrajectoryDataset& dataset,
                                        const wall::WallSpec& wallSpec,
                                        const render::SceneModel& scene,
                                        render::Eye eye) {
  render::Framebuffer fb(wallSpec.totalPxW(), wallSpec.totalPxH());
  const render::Canvas canvas = render::Canvas::whole(fb);
  renderScene(scene, dataset, canvas, eye);
  return fb;
}

}  // namespace svq::cluster
