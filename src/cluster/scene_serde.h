// scene_serde.h — wire format for scene models and framebuffers.
//
// Sort-first distribution ships the full SceneModel to every render node
// each frame (state broadcast, the way distributed display environments
// like SAGE/CGLX drive walls), and gathers tile framebuffers back for
// composition/verification. Both directions round-trip through
// MessageBuffer here.
#pragma once

#include <vector>

#include "net/message.h"
#include "render/framebuffer.h"
#include "render/scene.h"

namespace svq::cluster {

void serializeScene(net::MessageBuffer& buf, const render::SceneModel& scene);
render::SceneModel deserializeScene(net::MessageBuffer& buf);

void serializeFramebuffer(net::MessageBuffer& buf,
                          const render::Framebuffer& fb);
render::Framebuffer deserializeFramebuffer(net::MessageBuffer& buf);

/// One rendered tile, tagged with its wall tile index. Under fault
/// tolerance a surviving rank renders (and ships) more than one tile per
/// frame — its own plus any reassigned from dead ranks — so the gather
/// payload carries explicit tile indices instead of relying on source
/// rank == tile index.
struct TileImage {
  int tileIndex = 0;
  render::Framebuffer image;
};

void serializeTilePacket(net::MessageBuffer& buf,
                         const std::vector<TileImage>& tiles);
std::vector<TileImage> deserializeTilePacket(net::MessageBuffer& buf);

}  // namespace svq::cluster
