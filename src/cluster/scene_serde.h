// scene_serde.h — wire format for scene models and framebuffers.
//
// Sort-first distribution ships the SceneModel to every render node each
// frame (state broadcast, the way distributed display environments like
// SAGE/CGLX drive walls), and gathers tile framebuffers back for
// composition/verification. Both directions round-trip through
// MessageBuffer here.
//
// Two broadcast encodings exist:
//   * full — the whole scene (serializeScene), sent on the first frame,
//     after a layout change, and for resync;
//   * delta — scene-wide fields plus only the cells whose content hash
//     (render::cellContentHash) changed since the base epoch. Interactive
//     edits dirty a handful of cells, so the per-frame payload drops from
//     O(scene) to O(dirty).
// Every packet carries an epoch; a delta also names the base epoch it
// patches. A receiver holding a different epoch (fresh rank, dropped
// cache, missed frame) rejects the delta and the master resyncs it with a
// full packet — correctness never depends on the delta path.
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.h"
#include "render/framebuffer.h"
#include "render/scene.h"

namespace svq::cluster {

void serializeScene(net::MessageBuffer& buf, const render::SceneModel& scene);
render::SceneModel deserializeScene(net::MessageBuffer& buf);

// --- delta scene broadcast ---------------------------------------------------

/// Broadcast packet discriminator (first byte on the wire).
enum class ScenePacketKind : std::uint8_t {
  kFull = 0,   ///< complete scene, replaces the receiver's cache
  kDelta = 1,  ///< changed cells patched onto the base epoch's scene
  kNone = 2,   ///< control packet: no scene change (resync round answer)
};

/// Complete scene stamped with `epoch`.
void serializeSceneFull(net::MessageBuffer& buf,
                        const render::SceneModel& scene, std::uint64_t epoch);

/// Scene-wide fields plus the cells listed in `changed` (indices into
/// scene.cells), patching the scene a receiver holds at `baseEpoch`.
void serializeSceneDelta(net::MessageBuffer& buf,
                         const render::SceneModel& scene,
                         const std::vector<std::uint32_t>& changed,
                         std::uint64_t epoch, std::uint64_t baseEpoch);

/// Control packet carrying no scene payload.
void serializeSceneNone(net::MessageBuffer& buf, std::uint64_t epoch);

/// Master-side encoder: tracks per-cell content hashes frame over frame
/// and emits the cheapest sound packet — a delta when a base epoch exists,
/// the cell count is unchanged and fewer than half the cells are dirty;
/// a full packet otherwise.
class SceneDeltaEncoder {
 public:
  /// Encodes the next frame's packet into `buf`; returns the kind chosen.
  ScenePacketKind encode(net::MessageBuffer& buf,
                         const render::SceneModel& scene);

  /// Re-encodes the current frame as a full packet (same epoch) for a
  /// receiver that rejected the delta.
  void encodeResync(net::MessageBuffer& buf, const render::SceneModel& scene);

  std::uint64_t epoch() const { return epoch_; }

 private:
  std::vector<std::uint64_t> hashes_;
  std::uint64_t epoch_ = 0;
  bool hasBase_ = false;
};

/// Receiver-side scene cache: applies full and delta packets in epoch
/// order. apply() returns false when a delta's base epoch does not match
/// the held scene — the caller must nack and wait for a full resync.
class SceneReceiver {
 public:
  /// Decodes one broadcast packet. kFull replaces the cache, kDelta
  /// patches it, kNone is a no-op. Returns false (cache unchanged) iff a
  /// delta could not be applied.
  bool apply(net::MessageBuffer& buf);

  /// Drops the cached scene (fault injection: a rank that lost its render
  /// state). The next delta will be rejected, forcing a full resync.
  void dropCache() {
    hasScene_ = false;
    scene_ = render::SceneModel{};
  }

  bool hasScene() const { return hasScene_; }
  std::uint64_t epoch() const { return epoch_; }
  const render::SceneModel& scene() const { return scene_; }

 private:
  render::SceneModel scene_;
  std::uint64_t epoch_ = 0;
  bool hasScene_ = false;
};

void serializeFramebuffer(net::MessageBuffer& buf,
                          const render::Framebuffer& fb);
render::Framebuffer deserializeFramebuffer(net::MessageBuffer& buf);

/// One rendered tile, tagged with its wall tile index. Under fault
/// tolerance a surviving rank renders (and ships) more than one tile per
/// frame — its own plus any reassigned from dead ranks — so the gather
/// payload carries explicit tile indices instead of relying on source
/// rank == tile index.
struct TileImage {
  int tileIndex = 0;
  render::Framebuffer image;
};

void serializeTilePacket(net::MessageBuffer& buf,
                         const std::vector<TileImage>& tiles);
std::vector<TileImage> deserializeTilePacket(net::MessageBuffer& buf);

}  // namespace svq::cluster
