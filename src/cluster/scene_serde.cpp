#include "cluster/scene_serde.h"

namespace svq::cluster {

using net::MessageBuffer;
using render::Color;

namespace {

void putColor(MessageBuffer& buf, Color c) {
  buf.putU8(c.r);
  buf.putU8(c.g);
  buf.putU8(c.b);
  buf.putU8(c.a);
}

Color getColor(MessageBuffer& buf) {
  Color c;
  c.r = buf.getU8();
  c.g = buf.getU8();
  c.b = buf.getU8();
  c.a = buf.getU8();
  return c;
}

void putCell(MessageBuffer& buf, const render::CellView& cell) {
  buf.putU32(cell.trajectoryIndex);
  buf.putRect(cell.rect);
  putColor(buf, cell.background);
  buf.putU32(static_cast<std::uint32_t>(cell.segmentHighlights.size()));
  for (std::int8_t h : cell.segmentHighlights) {
    buf.putU8(static_cast<std::uint8_t>(h));
  }
  buf.putString(cell.label);
  buf.putF32(cell.coverage);
}

render::CellView getCell(MessageBuffer& buf) {
  render::CellView cell;
  cell.trajectoryIndex = buf.getU32();
  cell.rect = buf.getRect();
  cell.background = getColor(buf);
  const std::uint32_t n = buf.getU32();
  cell.segmentHighlights.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    cell.segmentHighlights.push_back(static_cast<std::int8_t>(buf.getU8()));
  }
  cell.label = buf.getString();
  cell.coverage = buf.getF32();
  return cell;
}

/// Scene-wide (non-cell) fields; shared by the full and delta encodings.
void putSceneFields(MessageBuffer& buf, const render::SceneModel& scene) {
  buf.putF32(scene.stereo.timeScaleCmPerS);
  buf.putF32(scene.stereo.depthOffsetCm);
  buf.putF32(scene.stereo.parallaxPxPerCm);
  buf.putF32(scene.stereo.maxComfortParallaxPx);
  buf.putF32(scene.arenaRadiusCm);
  buf.putVec2(scene.timeWindow);
  putColor(buf, scene.style.baseColor);
  buf.putF32(scene.style.nearBrightness);
  buf.putF32(scene.style.halfWidthPx);
  buf.putF32(scene.style.startMarkerPx);
  buf.putU64(scene.queryGeneration);
  buf.putBool(scene.drawArenaOutline);
  buf.putBool(scene.drawCellBorder);
  putColor(buf, scene.wallBackground);
}

void getSceneFields(MessageBuffer& buf, render::SceneModel& scene) {
  scene.stereo.timeScaleCmPerS = buf.getF32();
  scene.stereo.depthOffsetCm = buf.getF32();
  scene.stereo.parallaxPxPerCm = buf.getF32();
  scene.stereo.maxComfortParallaxPx = buf.getF32();
  scene.arenaRadiusCm = buf.getF32();
  scene.timeWindow = buf.getVec2();
  scene.style.baseColor = getColor(buf);
  scene.style.nearBrightness = buf.getF32();
  scene.style.halfWidthPx = buf.getF32();
  scene.style.startMarkerPx = buf.getF32();
  scene.queryGeneration = buf.getU64();
  scene.drawArenaOutline = buf.getBool();
  scene.drawCellBorder = buf.getBool();
  scene.wallBackground = getColor(buf);
}

}  // namespace

void serializeScene(MessageBuffer& buf, const render::SceneModel& scene) {
  buf.putU32(static_cast<std::uint32_t>(scene.cells.size()));
  for (const render::CellView& cell : scene.cells) putCell(buf, cell);
  putSceneFields(buf, scene);
}

render::SceneModel deserializeScene(MessageBuffer& buf) {
  render::SceneModel scene;
  const std::uint32_t cellCount = buf.getU32();
  scene.cells.reserve(cellCount);
  for (std::uint32_t i = 0; i < cellCount; ++i) {
    scene.cells.push_back(getCell(buf));
  }
  getSceneFields(buf, scene);
  return scene;
}

void serializeSceneFull(MessageBuffer& buf, const render::SceneModel& scene,
                        std::uint64_t epoch) {
  buf.putU8(static_cast<std::uint8_t>(ScenePacketKind::kFull));
  buf.putU64(epoch);
  serializeScene(buf, scene);
}

void serializeSceneDelta(MessageBuffer& buf, const render::SceneModel& scene,
                         const std::vector<std::uint32_t>& changed,
                         std::uint64_t epoch, std::uint64_t baseEpoch) {
  buf.putU8(static_cast<std::uint8_t>(ScenePacketKind::kDelta));
  buf.putU64(epoch);
  buf.putU64(baseEpoch);
  putSceneFields(buf, scene);
  buf.putU32(static_cast<std::uint32_t>(scene.cells.size()));
  buf.putU32(static_cast<std::uint32_t>(changed.size()));
  for (std::uint32_t index : changed) {
    buf.putU32(index);
    putCell(buf, scene.cells[index]);
  }
}

void serializeSceneNone(MessageBuffer& buf, std::uint64_t epoch) {
  buf.putU8(static_cast<std::uint8_t>(ScenePacketKind::kNone));
  buf.putU64(epoch);
}

ScenePacketKind SceneDeltaEncoder::encode(MessageBuffer& buf,
                                          const render::SceneModel& scene) {
  std::vector<std::uint64_t> newHashes = render::sceneCellHashes(scene);
  std::vector<std::uint32_t> changed;
  bool deltaSound = hasBase_ && newHashes.size() == hashes_.size();
  if (deltaSound) {
    for (std::size_t i = 0; i < newHashes.size(); ++i) {
      if (newHashes[i] != hashes_[i]) {
        changed.push_back(static_cast<std::uint32_t>(i));
      }
    }
    // A delta touching most cells costs more than a full packet (it
    // repeats the index overhead); scene-wide changes dirty everything and
    // land here too.
    if (changed.size() * 2 >= newHashes.size() && !newHashes.empty()) {
      deltaSound = false;
    }
  }
  ++epoch_;
  if (deltaSound) {
    serializeSceneDelta(buf, scene, changed, epoch_, epoch_ - 1);
  } else {
    serializeSceneFull(buf, scene, epoch_);
  }
  hashes_ = std::move(newHashes);
  hasBase_ = true;
  return deltaSound ? ScenePacketKind::kDelta : ScenePacketKind::kFull;
}

void SceneDeltaEncoder::encodeResync(MessageBuffer& buf,
                                     const render::SceneModel& scene) {
  serializeSceneFull(buf, scene, epoch_);
}

bool SceneReceiver::apply(MessageBuffer& buf) {
  const auto kind = static_cast<ScenePacketKind>(buf.getU8());
  const std::uint64_t epoch = buf.getU64();
  switch (kind) {
    case ScenePacketKind::kNone:
      return true;
    case ScenePacketKind::kFull:
      scene_ = deserializeScene(buf);
      epoch_ = epoch;
      hasScene_ = true;
      return true;
    case ScenePacketKind::kDelta: {
      const std::uint64_t baseEpoch = buf.getU64();
      if (!hasScene_ || epoch_ != baseEpoch) return false;
      getSceneFields(buf, scene_);
      const std::uint32_t cellCount = buf.getU32();
      if (cellCount != scene_.cells.size()) {
        throw net::MessageError("scene delta cell-count mismatch");
      }
      const std::uint32_t changed = buf.getU32();
      for (std::uint32_t i = 0; i < changed; ++i) {
        const std::uint32_t index = buf.getU32();
        if (index >= scene_.cells.size()) {
          throw net::MessageError("scene delta cell index out of range");
        }
        scene_.cells[index] = getCell(buf);
      }
      epoch_ = epoch;
      return true;
    }
  }
  throw net::MessageError("unknown scene packet kind");
}

void serializeFramebuffer(MessageBuffer& buf, const render::Framebuffer& fb) {
  buf.putI32(fb.width());
  buf.putI32(fb.height());
  // Raw RGBA bytes.
  static_assert(sizeof(Color) == 4);
  buf.putBytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(fb.pixels().data()),
      fb.pixelCount() * 4));
}

render::Framebuffer deserializeFramebuffer(MessageBuffer& buf) {
  const int w = buf.getI32();
  const int h = buf.getI32();
  const auto bytes = buf.getBytes();
  render::Framebuffer fb(w, h);
  if (bytes.size() != fb.pixelCount() * 4) {
    throw net::MessageError("framebuffer payload size mismatch");
  }
  for (std::size_t i = 0; i < fb.pixelCount(); ++i) {
    const int x = static_cast<int>(i) % w;
    const int y = static_cast<int>(i) / w;
    fb.at(x, y) = Color{bytes[i * 4], bytes[i * 4 + 1], bytes[i * 4 + 2],
                        bytes[i * 4 + 3]};
  }
  return fb;
}

void serializeTilePacket(MessageBuffer& buf,
                         const std::vector<TileImage>& tiles) {
  buf.putU32(static_cast<std::uint32_t>(tiles.size()));
  for (const TileImage& t : tiles) {
    buf.putI32(t.tileIndex);
    serializeFramebuffer(buf, t.image);
  }
}

std::vector<TileImage> deserializeTilePacket(MessageBuffer& buf) {
  const std::uint32_t n = buf.getU32();
  std::vector<TileImage> tiles;
  tiles.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TileImage t;
    t.tileIndex = buf.getI32();
    t.image = deserializeFramebuffer(buf);
    tiles.push_back(std::move(t));
  }
  return tiles;
}

}  // namespace svq::cluster
