#include "cluster/scene_serde.h"

namespace svq::cluster {

using net::MessageBuffer;
using render::Color;

namespace {

void putColor(MessageBuffer& buf, Color c) {
  buf.putU8(c.r);
  buf.putU8(c.g);
  buf.putU8(c.b);
  buf.putU8(c.a);
}

Color getColor(MessageBuffer& buf) {
  Color c;
  c.r = buf.getU8();
  c.g = buf.getU8();
  c.b = buf.getU8();
  c.a = buf.getU8();
  return c;
}

}  // namespace

void serializeScene(MessageBuffer& buf, const render::SceneModel& scene) {
  buf.putU32(static_cast<std::uint32_t>(scene.cells.size()));
  for (const render::CellView& cell : scene.cells) {
    buf.putU32(cell.trajectoryIndex);
    buf.putRect(cell.rect);
    putColor(buf, cell.background);
    buf.putU32(static_cast<std::uint32_t>(cell.segmentHighlights.size()));
    for (std::int8_t h : cell.segmentHighlights) {
      buf.putU8(static_cast<std::uint8_t>(h));
    }
    buf.putString(cell.label);
  }
  buf.putF32(scene.stereo.timeScaleCmPerS);
  buf.putF32(scene.stereo.depthOffsetCm);
  buf.putF32(scene.stereo.parallaxPxPerCm);
  buf.putF32(scene.stereo.maxComfortParallaxPx);
  buf.putF32(scene.arenaRadiusCm);
  buf.putVec2(scene.timeWindow);
  putColor(buf, scene.style.baseColor);
  buf.putF32(scene.style.nearBrightness);
  buf.putF32(scene.style.halfWidthPx);
  buf.putF32(scene.style.startMarkerPx);
  buf.putU64(scene.queryGeneration);
  buf.putBool(scene.drawArenaOutline);
  buf.putBool(scene.drawCellBorder);
  putColor(buf, scene.wallBackground);
}

render::SceneModel deserializeScene(MessageBuffer& buf) {
  render::SceneModel scene;
  const std::uint32_t cellCount = buf.getU32();
  scene.cells.reserve(cellCount);
  for (std::uint32_t i = 0; i < cellCount; ++i) {
    render::CellView cell;
    cell.trajectoryIndex = buf.getU32();
    cell.rect = buf.getRect();
    cell.background = getColor(buf);
    const std::uint32_t n = buf.getU32();
    cell.segmentHighlights.reserve(n);
    for (std::uint32_t s = 0; s < n; ++s) {
      cell.segmentHighlights.push_back(static_cast<std::int8_t>(buf.getU8()));
    }
    cell.label = buf.getString();
    scene.cells.push_back(std::move(cell));
  }
  scene.stereo.timeScaleCmPerS = buf.getF32();
  scene.stereo.depthOffsetCm = buf.getF32();
  scene.stereo.parallaxPxPerCm = buf.getF32();
  scene.stereo.maxComfortParallaxPx = buf.getF32();
  scene.arenaRadiusCm = buf.getF32();
  scene.timeWindow = buf.getVec2();
  scene.style.baseColor = getColor(buf);
  scene.style.nearBrightness = buf.getF32();
  scene.style.halfWidthPx = buf.getF32();
  scene.style.startMarkerPx = buf.getF32();
  scene.queryGeneration = buf.getU64();
  scene.drawArenaOutline = buf.getBool();
  scene.drawCellBorder = buf.getBool();
  scene.wallBackground = getColor(buf);
  return scene;
}

void serializeFramebuffer(MessageBuffer& buf, const render::Framebuffer& fb) {
  buf.putI32(fb.width());
  buf.putI32(fb.height());
  // Raw RGBA bytes.
  static_assert(sizeof(Color) == 4);
  buf.putBytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(fb.pixels().data()),
      fb.pixelCount() * 4));
}

render::Framebuffer deserializeFramebuffer(MessageBuffer& buf) {
  const int w = buf.getI32();
  const int h = buf.getI32();
  const auto bytes = buf.getBytes();
  render::Framebuffer fb(w, h);
  if (bytes.size() != fb.pixelCount() * 4) {
    throw net::MessageError("framebuffer payload size mismatch");
  }
  for (std::size_t i = 0; i < fb.pixelCount(); ++i) {
    const int x = static_cast<int>(i) % w;
    const int y = static_cast<int>(i) / w;
    fb.at(x, y) = Color{bytes[i * 4], bytes[i * 4 + 1], bytes[i * 4 + 2],
                        bytes[i * 4 + 3]};
  }
  return fb;
}

void serializeTilePacket(MessageBuffer& buf,
                         const std::vector<TileImage>& tiles) {
  buf.putU32(static_cast<std::uint32_t>(tiles.size()));
  for (const TileImage& t : tiles) {
    buf.putI32(t.tileIndex);
    serializeFramebuffer(buf, t.image);
  }
}

std::vector<TileImage> deserializeTilePacket(MessageBuffer& buf) {
  const std::uint32_t n = buf.getU32();
  std::vector<TileImage> tiles;
  tiles.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TileImage t;
    t.tileIndex = buf.getI32();
    t.image = deserializeFramebuffer(buf);
    tiles.push_back(std::move(t));
  }
  return tiles;
}

}  // namespace svq::cluster
