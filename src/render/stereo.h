// stereo.h — stereo pair composition.
//
// The paper's wall interleaves left/right images for polarized glasses;
// offline we compose the per-eye framebuffers into inspectable artifacts:
// red-cyan anaglyph, side-by-side pairs, or row-interleaved (the actual
// micro-polarizer format of thin-bezel stereo LCD panels).
#pragma once

#include "render/framebuffer.h"

namespace svq::render {

/// Red-cyan anaglyph: red channel from the left eye, green/blue from the
/// right. Inputs must have identical dimensions.
Framebuffer composeAnaglyph(const Framebuffer& left, const Framebuffer& right);

/// Left and right images side by side (width doubles).
Framebuffer composeSideBySide(const Framebuffer& left,
                              const Framebuffer& right);

/// Row-interleaved stereo: even rows from the left eye, odd from the right
/// (micro-polarizer panel format).
Framebuffer composeRowInterleaved(const Framebuffer& left,
                                  const Framebuffer& right);

}  // namespace svq::render
