// rasterizer.h — software rasterization primitives.
//
// All drawing goes through a Canvas, which couples a Framebuffer with a
// *global-coordinate* viewport: primitives take global wall pixels and the
// canvas translates them into the framebuffer, clipping to its region.
// This is exactly what makes sort-first tiled rendering work — a cluster
// render-node draws the whole scene through a canvas whose viewport is its
// own tile, and only its pixels are ever touched.
#pragma once

#include <span>
#include <string_view>

#include "render/color.h"
#include "render/framebuffer.h"
#include "util/geometry.h"

namespace svq::render {

/// Drawing surface = framebuffer + the global-pixel rect it represents.
struct Canvas {
  Framebuffer* fb = nullptr;
  /// Global-pixel region this framebuffer covers; fb local (0,0) maps to
  /// (region.x, region.y).
  RectI region;
  /// Optional extra clip in global pixels. The default-constructed rect
  /// (all zero) means "clip to `region` only"; any other value — including
  /// other empty rects, which clip everything out — is honoured as-is.
  /// The cell-parallel pipeline hands each cell a sub-canvas clipped to
  /// the cell's own rect so concurrent cells never write the same pixel.
  RectI clip;

  /// Full-framebuffer canvas at global origin.
  static Canvas whole(Framebuffer& target) {
    return {&target, target.rect(), {}};
  }

  bool valid() const {
    return fb != nullptr && region.w == fb->width() && region.h == fb->height();
  }

  bool hasClip() const { return !(clip == RectI{}); }

  /// The rect primitives actually clip against: region ∩ clip. May be
  /// empty, in which case nothing draws.
  RectI clipRect() const {
    return hasClip() ? clip.clipped(region) : region;
  }

  /// Same framebuffer/viewport, additionally clipped to `clipGlobal`.
  Canvas subCanvas(const RectI& clipGlobal) const {
    RectI c = clipGlobal.clipped(clipRect());
    // An empty intersection must not collapse into the default rect (the
    // "no clip" sentinel): pin it to a canonical nothing-passes value.
    if (c.empty()) c = RectI{0, 0, -1, -1};
    return {fb, region, c};
  }

  // Mutating primitives are non-const: a Canvas is a cheap non-owning
  // view, so writers take it *by value* (see the free functions below)
  // instead of pretending pixel writes are const.

  /// Blend a global pixel (clips to region ∩ clip).
  void blend(int gx, int gy, Color c) {
    if (!clipRect().contains(gx, gy)) return;
    fb->blend(gx - region.x, gy - region.y, c);
  }
  void set(int gx, int gy, Color c) {
    if (!clipRect().contains(gx, gy)) return;
    fb->set(gx - region.x, gy - region.y, c);
  }

  /// Blend a horizontal run of `w` pixels starting at global (gx, gy),
  /// clipped — the hot-loop primitive that replaces per-pixel contains
  /// checks. Opaque colors take a vectorized fill fast path; translucent
  /// colors run the SIMD source-over span kernel (render/kernels.h).
  void fillSpan(int gx, int gy, int w, Color c);

  /// Row-wise copy (no blending) of `src` so that src (srcX, srcY) lands
  /// at global (dstGlobal.x, dstGlobal.y), covering dstGlobal, clipped to
  /// this canvas. Used to composite cached cell framebuffers.
  void blitRows(const Framebuffer& src, int srcX, int srcY,
                const RectI& dstGlobal);
};

// Drawing functions take the Canvas by value: it is a 3-pointer-sized view
// whose copy is free, and by-value parameters keep temporary sub-canvases
// (`renderCell(..., canvas.subCanvas(rect), ...)`) working while the
// mutating members above are honestly non-const.

/// Fills a global-space rect.
void fillRect(Canvas canvas, const RectI& r, Color c);

/// 1-pixel rectangle outline.
void strokeRect(Canvas canvas, const RectI& r, Color c);

/// Filled circle centred at (cx, cy) with radius r (global pixels).
void fillCircle(Canvas canvas, float cx, float cy, float r, Color c);

/// 1-pixel line (DDA), global coordinates.
void drawLine(Canvas canvas, Vec2 a, Vec2 b, Color c);

/// Thick anti-aliased line: capsule of half-width `halfWidth` around the
/// segment; coverage fades linearly over the last `feather` pixels.
void drawThickLine(Canvas canvas, Vec2 a, Vec2 b, float halfWidth,
                   Color c, float feather = 1.0f);

/// Polyline of thick segments with per-vertex colors (colors.size() must
/// equal points.size(); segment color is the average of its endpoints).
/// Vertices with alpha == 0 act as break sentinels: segments touching
/// them are skipped, which is how temporal-window gaps render.
void drawThickPolyline(Canvas canvas, std::span<const Vec2> points,
                       std::span<const Color> pointColors, float halfWidth);

/// 5x7 bitmap text (digits, upper-case letters, a few symbols), scaled by
/// integer `scale`. Unknown glyphs render as solid blocks.
void drawTextTiny(Canvas canvas, int x, int y, std::string_view text,
                  Color c, int scale = 1);

/// Pixel width of drawTextTiny output for the given text/scale.
int textTinyWidth(std::string_view text, int scale = 1);

/// Pixel height of drawTextTiny output (7 * scale).
int textTinyHeight(int scale = 1);

}  // namespace svq::render
