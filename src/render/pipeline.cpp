#include "render/pipeline.h"

#include <cassert>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "render/sharedcache.h"
#include "util/metrics.h"

namespace svq::render {

namespace {

struct PipelineMetrics {
  Counter& cellsRasterized;
  Counter& cellsBlitted;
  Counter& cellsSharedBlitted;
  Counter& cellsSkipped;
  Counter& cellsCulled;
  Counter& pixelsRasterized;
  Counter& pixelsBlitted;
  Counter& fullRecomposites;
  Counter& overlapFallbacks;

  static PipelineMetrics& get() {
    MetricsRegistry& reg = MetricsRegistry::global();
    static PipelineMetrics m{reg.counter("render.cells_rasterized"),
                             reg.counter("render.cells_blitted"),
                             reg.counter("render.cells_shared_blitted"),
                             reg.counter("render.cells_skipped"),
                             reg.counter("render.cells_culled"),
                             reg.counter("render.pixels_rasterized"),
                             reg.counter("render.pixels_blitted"),
                             reg.counter("render.full_recomposites"),
                             reg.counter("render.overlap_fallbacks")};
    return m;
  }
};

std::size_t envSize(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

}  // namespace

PipelineOptions PipelineOptions::fromEnv() {
  PipelineOptions o;
  const std::size_t threads = envSize("SVQ_RENDER_THREADS", 0);
  if (threads > 1) {
    // One pool per distinct thread count, reused across pipelines.
    static std::mutex mutex;
    static std::map<std::size_t, std::unique_ptr<ThreadPool>> pools;
    std::lock_guard<std::mutex> lock(mutex);
    auto& pool = pools[threads];
    if (!pool) pool = std::make_unique<ThreadPool>(static_cast<unsigned>(threads));
    o.pool = pool.get();
  }
  o.cacheBudgetBytes = envSize("SVQ_RENDER_CACHE_MB", 256) << 20;
  return o;
}

CellRenderPipeline::CellRenderPipeline(PipelineOptions options)
    : options_(options) {
  if (options_.sharedCache != nullptr) {
    sharedClientId_ = options_.sharedCache->registerClient();
  }
}

bool CellRenderPipeline::cellsDisjoint(const SceneModel& scene) const {
  // O(n^2) pairwise check over non-empty rects; layouts are a few hundred
  // cells and this runs only when the layout changes.
  const std::size_t n = scene.cells.size();
  for (std::size_t i = 0; i < n; ++i) {
    const RectI& a = scene.cells[i].rect;
    if (a.empty()) continue;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (a.intersects(scene.cells[j].rect)) return false;
    }
  }
  return true;
}

void CellRenderPipeline::resetLayout(const SceneModel& scene,
                                     Canvas canvas) {
  slots_.assign(scene.cells.size(), CellSlot{});
  const RectI bounds = canvas.clipRect();
  for (std::size_t i = 0; i < scene.cells.size(); ++i) {
    slots_[i].clip = scene.cells[i].rect.clipped(bounds);
  }
  cachedBytes_ = 0;
  layoutDisjoint_ = cellsDisjoint(scene);
}

PipelineStats CellRenderPipeline::render(const SceneModel& scene,
                                         const traj::TrajectoryDataset& dataset,
                                         Canvas canvas, Eye eye,
                                         const util::Cancellation* cancel) {
  PipelineStats stats;
  PipelineMetrics& metrics = PipelineMetrics::get();
  if (cancel != nullptr && cancel->shouldStop()) {
    // Abandoned before any pixel moved: nothing to roll back, nothing to
    // invalidate — the previous frame is still intact in the target.
    stats.aborted = true;
    return stats;
  }

  // Fold the eye into the key: a cached left-eye cell must never be
  // blitted into a right-eye render of the same scene.
  const std::uint64_t sceneHash =
      sceneStateHash(scene) ^
      (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(eye) + 1));
  std::vector<std::uint64_t> newKeys;
  newKeys.reserve(scene.cells.size());
  for (const CellView& cell : scene.cells) {
    newKeys.push_back(cellContentHash(cell, sceneHash));
  }

  // Layout change = any cell's clipped rect moved, or the cell count
  // changed. A moved cell leaves stale pixels at its old location that no
  // per-cell repaint covers, so the whole target recomposites.
  bool layoutChanged = slots_.size() != scene.cells.size();
  if (!layoutChanged) {
    const RectI bounds = canvas.clipRect();
    for (std::size_t i = 0; i < scene.cells.size(); ++i) {
      if (slots_[i].clip != scene.cells[i].rect.clipped(bounds)) {
        layoutChanged = true;
        break;
      }
    }
  }
  if (layoutChanged) resetLayout(scene, canvas);

  if (!layoutDisjoint_) {
    // Overlapping cells depend on painter's order; incremental skip and
    // parallel rasterization are both unsound, so defer to the serial
    // legacy renderer wholesale.
    stats.overlapFallback = true;
    metrics.overlapFallbacks.add(1);
    const RenderStats legacy = renderScene(scene, dataset, canvas, eye);
    stats.cellsRasterized = legacy.cellsDrawn;
    stats.cellsCulled = legacy.cellsCulled;
    stats.segmentsDrawn = legacy.segmentsDrawn;
    stats.fullRecomposite = true;
    metrics.cellsRasterized.add(legacy.cellsDrawn);
    metrics.cellsCulled.add(legacy.cellsCulled);
    keys_ = std::move(newKeys);
    targetValid_ = false;  // incremental state is meaningless here
    return stats;
  }

  const bool targetChanged = targetFb_ != canvas.fb ||
                             targetRegion_ != canvas.region || eye_ != eye ||
                             background_ != scene.wallBackground;
  const bool recomposite = targetChanged || layoutChanged || !targetValid_;
  stats.fullRecomposite = recomposite;
  if (recomposite) metrics.fullRecomposites.add(1);

  if (recomposite) {
    fillRect(canvas, canvas.clipRect(), scene.wallBackground);
  }

  // Classify every cell: culled / skip / blit-from-cache / rasterize.
  // Budget accounting happens here, serially, so the parallel phase only
  // touches per-cell disjoint state.
  struct Work {
    std::size_t cell;
    bool cachePixels;
  };
  std::vector<Work> toRasterize;
  std::vector<std::size_t> toBlit;
  for (std::size_t i = 0; i < scene.cells.size(); ++i) {
    CellSlot& slot = slots_[i];
    if (slot.clip.empty()) {
      ++stats.cellsCulled;
      slot.key = newKeys[i];
      slot.hasKey = true;
      continue;
    }
    const bool unchanged = slot.hasKey && slot.key == newKeys[i];
    if (unchanged && !recomposite) {
      ++stats.cellsSkipped;
      continue;
    }
    if (unchanged && slot.pixels) {
      toBlit.push_back(i);
      continue;
    }
    const std::size_t newBytes = static_cast<std::size_t>(slot.clip.areaPx()) *
                                 sizeof(Color);
    const std::size_t oldBytes =
        (slot.pixels ? slot.pixels->pixelCount() : 0) * sizeof(Color);
    // Reserves local cache budget for this cell's new pixels; on refusal
    // drops the stale copy but keeps the key slot.
    auto reserveLocal = [&]() {
      if (options_.cacheBudgetBytes > 0 &&
          cachedBytes_ - oldBytes + newBytes <= options_.cacheBudgetBytes) {
        cachedBytes_ = cachedBytes_ - oldBytes + newBytes;
        return true;
      }
      if (oldBytes > 0) {
        slot.pixels.reset();
        cachedBytes_ -= oldBytes;
      }
      return false;
    };
    // Dirty (or unchanged-but-uncached during a recomposite). Another
    // session's pipeline may already have rasterized this exact cell —
    // the key covers everything renderCell reads, so a dimension-matched
    // hit is pixel-identical by construction.
    if (options_.sharedCache != nullptr) {
      if (auto shared = options_.sharedCache->find(
              newKeys[i], slot.clip.w, slot.clip.h, sharedClientId_)) {
        canvas.blitRows(*shared, 0, 0, slot.clip);
        ++stats.cellsSharedBlitted;
        stats.pixelsBlitted += static_cast<std::uint64_t>(slot.clip.areaPx());
        // Adopt the shared allocation into the local slot (no copy) so
        // target-damage recomposites can restore without rasterizing.
        slot.pixels = reserveLocal() ? std::move(shared) : nullptr;
        slot.key = newKeys[i];
        slot.hasKey = true;
        continue;
      }
    }
    toRasterize.push_back({i, reserveLocal()});
  }

  // Restore unchanged-but-uncached-in-target cells with row blits.
  for (const std::size_t i : toBlit) {
    CellSlot& slot = slots_[i];
    canvas.blitRows(*slot.pixels, 0, 0, slot.clip);
    ++stats.cellsBlitted;
    stats.pixelsBlitted += static_cast<std::uint64_t>(slot.clip.areaPx());
  }

  // Rasterize dirty cells. Cells own disjoint rects (checked at layout
  // reset and asserted here), so concurrent sub-canvas writes never touch
  // the same pixel and output is bit-identical for any thread count.
  assert(layoutDisjoint_);
  std::vector<std::size_t> segments(toRasterize.size(), 0);
  // Chunk-granular cancellation: the unit of abandonment is one cell. A
  // cell either rasterizes completely (key + cached pixels updated) or
  // not at all (slot untouched, stays dirty) — never half a cell.
  std::vector<std::uint8_t> rasterized(toRasterize.size(), 0);
  auto rasterizeOne = [&](std::size_t w) {
    if (cancel != nullptr && cancel->shouldStop()) return;
    const Work& work = toRasterize[w];
    const CellView& cell = scene.cells[work.cell];
    CellSlot& slot = slots_[work.cell];
    RenderStats cellStats;
    renderCell(scene, cell, dataset, canvas.subCanvas(cell.rect), eye,
               cellStats);
    segments[w] = cellStats.segmentsDrawn;
    if (work.cachePixels || options_.sharedCache != nullptr) {
      // Snapshot the cell's pixels out of the target for later blit
      // restores. Slots are per-cell, so this is race-free; one
      // allocation backs both the local slot and the shared cache entry.
      auto snap = std::make_shared<Framebuffer>(slot.clip.w, slot.clip.h);
      snap->copyRect(*canvas.fb,
                     RectI{slot.clip.x - canvas.region.x,
                           slot.clip.y - canvas.region.y, slot.clip.w,
                           slot.clip.h},
                     0, 0);
      if (options_.sharedCache != nullptr) {
        options_.sharedCache->insert(newKeys[work.cell], snap,
                                     sharedClientId_);
      }
      if (work.cachePixels) slot.pixels = std::move(snap);
    }
    slot.key = newKeys[work.cell];
    slot.hasKey = true;
    rasterized[w] = 1;
  };
  if (options_.pool != nullptr && !options_.pool->onWorkerThread() &&
      toRasterize.size() > 1) {
    options_.pool->parallelFor(0, toRasterize.size(), rasterizeOne);
  } else {
    for (std::size_t w = 0; w < toRasterize.size(); ++w) rasterizeOne(w);
  }
  for (const std::size_t s : segments) stats.segmentsDrawn += s;
  for (std::size_t w = 0; w < toRasterize.size(); ++w) {
    if (!rasterized[w]) {
      stats.aborted = true;
      continue;
    }
    ++stats.cellsRasterized;
    stats.pixelsRasterized += static_cast<std::uint64_t>(
        slots_[toRasterize[w].cell].clip.areaPx());
  }

  metrics.cellsRasterized.add(stats.cellsRasterized);
  metrics.cellsBlitted.add(stats.cellsBlitted);
  metrics.cellsSharedBlitted.add(stats.cellsSharedBlitted);
  metrics.cellsSkipped.add(stats.cellsSkipped);
  metrics.cellsCulled.add(stats.cellsCulled);
  metrics.pixelsRasterized.add(stats.pixelsRasterized);
  metrics.pixelsBlitted.add(stats.pixelsBlitted);

  keys_ = std::move(newKeys);
  targetFb_ = canvas.fb;
  targetRegion_ = canvas.region;
  eye_ = eye;
  background_ = scene.wallBackground;
  // An aborted render leaves the target missing the abandoned cells:
  // self-invalidate so the next render recomposites instead of trusting
  // it (finished cells restore by blit, abandoned ones re-rasterize).
  targetValid_ = !stats.aborted;
  return stats;
}

}  // namespace svq::render
