#include "render/sharedcache.h"

#include "util/metrics.h"

namespace svq::render {

namespace {

struct SharedCacheMetrics {
  Counter& hits;
  Counter& crossHits;
  Counter& misses;
  Counter& inserts;
  Counter& evictions;
  Gauge& bytes;

  static SharedCacheMetrics& get() {
    MetricsRegistry& reg = MetricsRegistry::global();
    static SharedCacheMetrics m{reg.counter("render.shared.hits"),
                                reg.counter("render.shared.cross_hits"),
                                reg.counter("render.shared.misses"),
                                reg.counter("render.shared.inserts"),
                                reg.counter("render.shared.evictions"),
                                reg.gauge("render.shared.bytes")};
    return m;
  }
};

std::size_t framebufferBytes(const Framebuffer& fb) {
  return fb.pixelCount() * sizeof(Color);
}

}  // namespace

SharedCellCache::SharedCellCache(std::size_t budgetBytes)
    : budgetBytes_(budgetBytes) {}

std::uint64_t SharedCellCache::registerClient() {
  std::lock_guard<std::mutex> lock(mutex_);
  return nextClientId_++;
}

std::shared_ptr<const Framebuffer> SharedCellCache::find(
    std::uint64_t key, int width, int height, std::uint64_t clientId) {
  SharedCacheMetrics& metrics = SharedCacheMetrics::get();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.pixels->width() != width ||
      it->second.pixels->height() != height) {
    ++stats_.misses;
    metrics.misses.add(1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lruIt);
  ++stats_.hits;
  metrics.hits.add(1);
  if (it->second.owner != clientId) {
    ++stats_.crossHits;
    metrics.crossHits.add(1);
  }
  return it->second.pixels;
}

void SharedCellCache::insert(std::uint64_t key,
                             std::shared_ptr<const Framebuffer> pixels,
                             std::uint64_t clientId) {
  if (!pixels || pixels->empty()) return;
  const std::size_t incoming = framebufferBytes(*pixels);
  if (incoming > budgetBytes_) return;
  SharedCacheMetrics& metrics = SharedCacheMetrics::get();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // First writer wins; identical keys hold identical pixels.
    lru_.splice(lru_.begin(), lru_, it->second.lruIt);
    return;
  }
  evictToFitLocked(incoming);
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(pixels), clientId, lru_.begin()});
  bytes_ += incoming;
  ++stats_.inserts;
  metrics.inserts.add(1);
  metrics.bytes.add(incoming);
}

void SharedCellCache::evictToFitLocked(std::size_t incomingBytes) {
  SharedCacheMetrics& metrics = SharedCacheMetrics::get();
  while (bytes_ + incomingBytes > budgetBytes_ && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    const std::size_t freed = framebufferBytes(*it->second.pixels);
    bytes_ -= freed;
    entries_.erase(it);
    ++stats_.evictions;
    metrics.evictions.add(1);
    metrics.bytes.sub(freed);
  }
}

std::size_t SharedCellCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::size_t SharedCellCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void SharedCellCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  SharedCacheMetrics::get().bytes.sub(bytes_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

SharedCellCache::Stats SharedCellCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace svq::render
