#include "render/kernels.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SVQ_X86 1
#endif

namespace svq::render {

// ---- blendSpan -----------------------------------------------------------

void blendSpanScalar(Color* dst, std::size_t n, Color src) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = Color::over(dst[i], src);
}

#ifdef SVQ_X86

namespace {

/// Per-span constants of the source-over blend, computed with the exact
/// float ops Color::over performs so vector lanes reproduce its bits:
/// sa = a/255, then per channel s*sa is a constant of the span.
struct BlendConsts {
  float oneMinusSa;
  float rSa, gSa, bSa;

  explicit BlendConsts(Color src) {
    const float sa = static_cast<float>(src.a) / 255.0f;
    oneMinusSa = 1.0f - sa;
    rSa = static_cast<float>(src.r) * sa;
    gSa = static_cast<float>(src.g) * sa;
    bSa = static_cast<float>(src.b) * sa;
  }
};

}  // namespace

void blendSpanSse2(Color* dst, std::size_t n, Color src) {
  if (src.a == 255) { fillRowScalar(dst, n, src); return; }
  if (src.a == 0) return;
  const BlendConsts k(src);
  const __m128 oneMinusSa = _mm_set1_ps(k.oneMinusSa);
  const __m128 half = _mm_set1_ps(0.5f);
  const __m128 sSa[3] = {_mm_set1_ps(k.rSa), _mm_set1_ps(k.gSa),
                         _mm_set1_ps(k.bSa)};
  const __m128i byteMask = _mm_set1_epi32(0xFF);
  const __m128i alpha = _mm_set1_epi32(static_cast<int>(0xFF000000u));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    auto* p = reinterpret_cast<__m128i*>(dst + i);
    const __m128i px = _mm_loadu_si128(p);
    __m128i out = alpha;
    for (int c = 0; c < 3; ++c) {
      const __m128i ch =
          _mm_and_si128(_mm_srli_epi32(px, 8 * c), byteMask);
      // d*(1-sa) + s*sa + 0.5f, left-associated, discrete mul/add —
      // Color::over's expression tree, then truncating conversion.
      const __m128 blended = _mm_add_ps(
          _mm_add_ps(_mm_mul_ps(_mm_cvtepi32_ps(ch), oneMinusSa), sSa[c]),
          half);
      out = _mm_or_si128(
          out, _mm_slli_epi32(_mm_cvttps_epi32(blended), 8 * c));
    }
    _mm_storeu_si128(p, out);
  }
  if (i < n) blendSpanScalar(dst + i, n - i, src);
}

__attribute__((target("avx2")))
void blendSpanAvx2(Color* dst, std::size_t n, Color src) {
  if (src.a == 255) { fillRowScalar(dst, n, src); return; }
  if (src.a == 0) return;
  const BlendConsts k(src);
  const __m256 oneMinusSa = _mm256_set1_ps(k.oneMinusSa);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 sSa[3] = {_mm256_set1_ps(k.rSa), _mm256_set1_ps(k.gSa),
                         _mm256_set1_ps(k.bSa)};
  const __m256i byteMask = _mm256_set1_epi32(0xFF);
  const __m256i alpha = _mm256_set1_epi32(static_cast<int>(0xFF000000u));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    auto* p = reinterpret_cast<__m256i*>(dst + i);
    const __m256i px = _mm256_loadu_si256(p);
    __m256i out = alpha;
    for (int c = 0; c < 3; ++c) {
      const __m256i ch =
          _mm256_and_si256(_mm256_srli_epi32(px, 8 * c), byteMask);
      const __m256 blended = _mm256_add_ps(
          _mm256_add_ps(_mm256_mul_ps(_mm256_cvtepi32_ps(ch), oneMinusSa),
                        sSa[c]),
          half);
      out = _mm256_or_si256(
          out, _mm256_slli_epi32(_mm256_cvttps_epi32(blended), 8 * c));
    }
    _mm256_storeu_si256(p, out);
  }
  if (i < n) blendSpanScalar(dst + i, n - i, src);
}

#else  // !SVQ_X86

void blendSpanSse2(Color* dst, std::size_t n, Color src) {
  blendSpanScalar(dst, n, src);
}
void blendSpanAvx2(Color* dst, std::size_t n, Color src) {
  blendSpanScalar(dst, n, src);
}

#endif  // SVQ_X86

void blendSpanVariant(util::Isa isa, Color* dst, std::size_t n, Color src) {
  switch (isa) {
    case util::Isa::kAvx2: blendSpanAvx2(dst, n, src); return;
    case util::Isa::kSse2: blendSpanSse2(dst, n, src); return;
    case util::Isa::kScalar: break;
  }
  blendSpanScalar(dst, n, src);
}

void blendSpan(Color* dst, std::size_t n, Color src) {
  blendSpanVariant(util::activeIsa(), dst, n, src);
}

// ---- fillRow -------------------------------------------------------------

void fillRowScalar(Color* dst, std::size_t n, Color src) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src;
}

#ifdef SVQ_X86

namespace {

inline int packColor(Color c) {
  int bits;
  static_assert(sizeof(Color) == sizeof(int));
  std::memcpy(&bits, &c, sizeof bits);
  return bits;
}

}  // namespace

void fillRowSse2(Color* dst, std::size_t n, Color src) {
  const __m128i v = _mm_set1_epi32(packColor(src));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), v);
  }
  for (; i < n; ++i) dst[i] = src;
}

__attribute__((target("avx2")))
void fillRowAvx2(Color* dst, std::size_t n, Color src) {
  const __m256i v = _mm256_set1_epi32(packColor(src));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  for (; i < n; ++i) dst[i] = src;
}

#else  // !SVQ_X86

void fillRowSse2(Color* dst, std::size_t n, Color src) {
  fillRowScalar(dst, n, src);
}
void fillRowAvx2(Color* dst, std::size_t n, Color src) {
  fillRowScalar(dst, n, src);
}

#endif  // SVQ_X86

void fillRowVariant(util::Isa isa, Color* dst, std::size_t n, Color src) {
  switch (isa) {
    case util::Isa::kAvx2: fillRowAvx2(dst, n, src); return;
    case util::Isa::kSse2: fillRowSse2(dst, n, src); return;
    case util::Isa::kScalar: break;
  }
  fillRowScalar(dst, n, src);
}

void fillRow(Color* dst, std::size_t n, Color src) {
  fillRowVariant(util::activeIsa(), dst, n, src);
}

// ---- copyRow -------------------------------------------------------------

void copyRowScalar(Color* dst, const Color* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
}

#ifdef SVQ_X86

void copyRowSse2(Color* dst, const Color* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + i),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i)));
  }
  for (; i < n; ++i) dst[i] = src[i];
}

__attribute__((target("avx2")))
void copyRowAvx2(Color* dst, const Color* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
  }
  for (; i < n; ++i) dst[i] = src[i];
}

#else  // !SVQ_X86

void copyRowSse2(Color* dst, const Color* src, std::size_t n) {
  copyRowScalar(dst, src, n);
}
void copyRowAvx2(Color* dst, const Color* src, std::size_t n) {
  copyRowScalar(dst, src, n);
}

#endif  // SVQ_X86

void copyRowVariant(util::Isa isa, Color* dst, const Color* src,
                    std::size_t n) {
  switch (isa) {
    case util::Isa::kAvx2: copyRowAvx2(dst, src, n); return;
    case util::Isa::kSse2: copyRowSse2(dst, src, n); return;
    case util::Isa::kScalar: break;
  }
  copyRowScalar(dst, src, n);
}

void copyRow(Color* dst, const Color* src, std::size_t n) {
  copyRowVariant(util::activeIsa(), dst, src, n);
}

}  // namespace svq::render
