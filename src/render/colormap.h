// colormap.h — sequential colormaps and density-field rendering.
//
// Renders traj::OccupancyGrid fields as heat images: the aggregate
// "general shape without high-frequency detail" overview of §VI.C.
// The default ramp is a perceptually-ordered dark-to-bright sequence
// (inspired by magma): monotonically increasing luminance so density
// ordering survives in grayscale reproduction.
#pragma once

#include "render/framebuffer.h"
#include "render/rasterizer.h"
#include "traj/occupancy.h"

namespace svq::render {

/// Sequential colormap sample at u in [0, 1] (clamped).
Color sequentialColormap(float u);

/// Renders a density field into a rect on a canvas. Values are scaled by
/// `maxValue` (<= 0 means use the grid's own maximum); gamma < 1
/// brightens the low end, making sparse structure visible.
void drawDensityField(Canvas canvas, const RectI& rect,
                      const traj::OccupancyGrid& grid,
                      float maxValue = -1.0f, float gamma = 0.5f);

/// Convenience: standalone density image of the given size.
Framebuffer renderDensityImage(const traj::OccupancyGrid& grid, int sizePx,
                               float gamma = 0.5f);

}  // namespace svq::render
