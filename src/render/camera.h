// camera.h — orthographic stereoscopic projection.
//
// The paper renders each trajectory as a space-time cube: XY on the
// display surface, time extruded along Z *out of* the display, viewed in
// orthographic projection with one image per eye (polarized stereo).
// Under an orthographic stereo model, depth appears purely as horizontal
// screen parallax: a point floating z cm in front of the wall is drawn
// shifted left in the right-eye image and right in the left-eye image.
//
// The two ergonomic sliders of §IV.C.2 are first-class here:
//   * timeScaleCmPerS — (de)exaggerates the time axis (seconds -> cm);
//   * depthOffsetCm   — pushes the whole cube in front of / behind the
//                       display surface;
// and comfort checking bounds the maximum binocular parallax.
#pragma once

#include "util/geometry.h"

namespace svq::render {

enum class Eye { kLeft = 0, kRight = 1, kCenter = 2 };

/// Stereo projection parameters (the state the ergonomic sliders edit).
struct StereoSettings {
  /// Time exaggeration: how many cm of depth one second of tracking maps to.
  float timeScaleCmPerS = 0.25f;
  /// Depth-plane offset: added to every point's depth (cm). Negative pushes
  /// content behind the display surface.
  float depthOffsetCm = 0.0f;
  /// Display geometry factor: horizontal pixels of total binocular
  /// parallax produced by 1 cm of depth. Derived from viewer distance,
  /// interocular distance and pixel pitch; ~1.8 px/cm for the paper's
  /// wall viewed from 3 m.
  float parallaxPxPerCm = 1.8f;
  /// Comfort bound on |parallax| in pixels (Lambooij et al. guidance).
  float maxComfortParallaxPx = 60.0f;
};

/// Orthographic stereo camera over wall-space pixels.
class OrthoStereoCamera {
 public:
  explicit OrthoStereoCamera(StereoSettings settings = {})
      : settings_(settings) {}

  const StereoSettings& settings() const { return settings_; }
  StereoSettings& settings() { return settings_; }

  /// Depth in cm of a sample at time t (seconds since trajectory start).
  float depthCm(float tSeconds) const {
    return tSeconds * settings_.timeScaleCmPerS + settings_.depthOffsetCm;
  }

  /// Total binocular parallax (px) at time t; sign: positive = in front.
  float parallaxPx(float tSeconds) const {
    return depthCm(tSeconds) * settings_.parallaxPxPerCm;
  }

  /// Projects a wall-space base position with a given sample time for one
  /// eye. Center gives the mono (zero-parallax) image.
  Vec2 project(Vec2 basePx, float tSeconds, Eye eye) const {
    const float p = parallaxPx(tSeconds);
    switch (eye) {
      case Eye::kLeft: return {basePx.x + 0.5f * p, basePx.y};
      case Eye::kRight: return {basePx.x - 0.5f * p, basePx.y};
      case Eye::kCenter: return basePx;
    }
    return basePx;
  }

  /// Largest |parallax| over a trajectory spanning [0, maxDurationS].
  float maxAbsParallaxPx(float maxDurationS) const {
    const float p0 = parallaxPx(0.0f);
    const float p1 = parallaxPx(maxDurationS);
    return std::max(std::abs(p0), std::abs(p1));
  }

  /// True iff the whole duration stays within the comfort bound.
  bool comfortable(float maxDurationS) const {
    return maxAbsParallaxPx(maxDurationS) <= settings_.maxComfortParallaxPx;
  }

  /// Adjusts timeScaleCmPerS (keeping depthOffset) so that the maximum
  /// parallax over [0, maxDurationS] equals the comfort bound — what a
  /// user does with the exaggeration slider when content pops too far.
  /// No-op when already comfortable or maxDurationS <= 0.
  void clampToComfort(float maxDurationS);

 private:
  StereoSettings settings_;
};

}  // namespace svq::render
