// framebuffer.h — CPU framebuffer: the render target of the software
// rasterizer. One instance per eye per tile in the cluster renderer; the
// wall compositor stitches tile framebuffers into a full wall image.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "render/color.h"
#include "util/geometry.h"

namespace svq::render {

/// Dense row-major RGBA8 image with bounds-checked pixel helpers.
class Framebuffer {
 public:
  Framebuffer() = default;
  Framebuffer(int width, int height, Color fill = colors::kBlack);

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return width_ == 0 || height_ == 0; }
  RectI rect() const { return {0, 0, width_, height_}; }
  std::size_t pixelCount() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }

  void clear(Color c);

  /// Unchecked access; caller guarantees 0<=x<width, 0<=y<height.
  Color& at(int x, int y) { return pixels_[index(x, y)]; }
  const Color& at(int x, int y) const { return pixels_[index(x, y)]; }

  /// Checked set: silently ignores out-of-bounds writes (clipping net).
  void set(int x, int y, Color c) {
    if (x >= 0 && x < width_ && y >= 0 && y < height_) at(x, y) = c;
  }

  /// Checked alpha blend.
  void blend(int x, int y, Color c) {
    if (x >= 0 && x < width_ && y >= 0 && y < height_) {
      at(x, y) = Color::over(at(x, y), c);
    }
  }

  /// Checked read; returns `fallback` outside bounds.
  Color get(int x, int y, Color fallback = colors::kBlack) const {
    if (x >= 0 && x < width_ && y >= 0 && y < height_) return at(x, y);
    return fallback;
  }

  const std::vector<Color>& pixels() const { return pixels_; }

  /// Copies `src` so that its (0,0) lands at (dstX, dstY); clips.
  void blit(const Framebuffer& src, int dstX, int dstY);

  /// Row-wise copy of src's `srcRect` so its top-left lands at
  /// (dstX, dstY); clips against both framebuffers.
  void copyRect(const Framebuffer& src, const RectI& srcRect, int dstX,
                int dstY);

  /// FNV-1a hash over raw pixel bytes — used by determinism tests to
  /// compare cluster-rendered frames against single-rank references.
  std::uint64_t contentHash() const;

  /// Count of pixels exactly matching `c`.
  std::size_t countPixels(Color c) const;

  /// Binary PPM (P6) serialization; alpha is dropped.
  std::string toPpm() const;
  bool savePpm(const std::string& path) const;

 private:
  std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<Color> pixels_;
};

}  // namespace svq::render
