#include "render/camera.h"

#include <cmath>

namespace svq::render {

void OrthoStereoCamera::clampToComfort(float maxDurationS) {
  if (maxDurationS <= 0.0f || comfortable(maxDurationS)) return;
  const float budgetCm =
      settings_.maxComfortParallaxPx / settings_.parallaxPxPerCm;
  // Depth at the far end of the time axis must satisfy
  // |t*scale + offset| <= budget; the near end (t=0) is |offset|.
  const float offset = settings_.depthOffsetCm;
  if (std::abs(offset) >= budgetCm) {
    // Offset alone violates comfort: pull it inside the budget first.
    settings_.depthOffsetCm = offset > 0.0f ? budgetCm : -budgetCm;
  }
  const float room = budgetCm - settings_.depthOffsetCm;
  settings_.timeScaleCmPerS = std::max(0.0f, room / maxDurationS);
}

}  // namespace svq::render
