// color.h — 8-bit RGBA color and the palettes used by the application.
//
// Group background tints follow Figure 3 of the paper (blue = on-trail,
// red = west, yellow = east, gray = north, green = south); brush/highlight
// colors follow Figure 5 (red, green, blue paintbrushes).
#pragma once

#include <cstdint>

#include "util/geometry.h"

namespace svq::render {

struct Color {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;
  std::uint8_t a = 255;

  constexpr bool operator==(const Color&) const = default;

  /// Component-wise linear interpolation (t clamped to [0,1]).
  static Color lerp(Color x, Color y, float t);

  /// Source-over alpha blend of `src` onto `dst`.
  static Color over(Color dst, Color src);

  /// Uniformly darken/lighten: factor 1 = unchanged, < 1 darker.
  Color scaled(float factor) const;

  constexpr Color withAlpha(std::uint8_t alpha) const {
    return {r, g, b, alpha};
  }

  constexpr std::uint32_t packed() const {
    return (static_cast<std::uint32_t>(r) << 24) |
           (static_cast<std::uint32_t>(g) << 16) |
           (static_cast<std::uint32_t>(b) << 8) | a;
  }
};

namespace colors {
inline constexpr Color kBlack{0, 0, 0, 255};
inline constexpr Color kWhite{255, 255, 255, 255};
inline constexpr Color kRed{220, 50, 47, 255};
inline constexpr Color kGreen{70, 160, 70, 255};
inline constexpr Color kBlue{50, 110, 220, 255};
inline constexpr Color kYellow{200, 180, 60, 255};
inline constexpr Color kGray{110, 110, 110, 255};
inline constexpr Color kDarkBg{18, 18, 24, 255};
inline constexpr Color kTrajectory{230, 230, 235, 255};
inline constexpr Color kBezel{5, 5, 5, 255};
}  // namespace colors

/// Background tint for a trajectory group, matching Fig. 3's scheme.
/// Index is arbitrary but stable; tints are kept dark so strokes pop.
Color groupBackground(std::size_t groupIndex);

/// Brush highlight palette (Fig. 5): saturated, pre-attentive colors.
Color brushColor(std::size_t brushIndex);

}  // namespace svq::render
