#include "render/scene.h"

#include <algorithm>
#include <cmath>

namespace svq::render {

namespace {

/// Stereo shifts can move a polyline horizontally beyond its cell; inflate
/// the cull rect by the worst-case parallax so sort-first never drops a
/// cell whose shifted pixels land in this tile.
RectI inflatedForParallax(const RectI& r, const OrthoStereoCamera& camera,
                         float maxDuration) {
  const int pad = static_cast<int>(
      std::ceil(camera.maxAbsParallaxPx(maxDuration) * 0.5f)) + 2;
  return {r.x - pad, r.y, r.w + 2 * pad, r.h};
}

}  // namespace

void renderCell(const SceneModel& scene, const CellView& cell,
                const traj::TrajectoryDataset& dataset, const Canvas& canvas,
                Eye eye, RenderStats& stats) {
  fillRect(canvas, cell.rect, cell.background);
  if (scene.drawCellBorder) {
    strokeRect(canvas, cell.rect, cell.background.scaled(1.8f));
  }

  const CellTransform transform{cell.rect, scene.arenaRadiusCm, 3.0f};

  if (scene.drawArenaOutline) {
    // Arena boundary circle, drawn as a polyline ring at z = 0.
    const Vec2 c = transform.center();
    const float r = scene.arenaRadiusCm * transform.scale();
    const int segments = 48;
    const Color ring = cell.background.scaled(2.2f);
    Vec2 prev{c.x + r, c.y};
    for (int i = 1; i <= segments; ++i) {
      const float a = kTwoPi * static_cast<float>(i) / segments;
      const Vec2 p{c.x + r * std::cos(a), c.y + r * std::sin(a)};
      drawLine(canvas, prev, p, ring);
      prev = p;
    }
  }

  if (cell.trajectoryIndex < dataset.size()) {
    const traj::Trajectory& t = dataset[cell.trajectoryIndex];
    const OrthoStereoCamera camera(scene.stereo);
    const StyledPolyline line =
        tessellate(t, transform, camera, eye, cell.segmentHighlights,
                   scene.timeWindow, scene.style);
    drawThickPolyline(canvas, line.points, line.colors,
                      scene.style.halfWidthPx);
    stats.segmentsDrawn += line.points.empty() ? 0 : line.points.size() - 1;

    // Release-point marker at the arena centre (t = start of window).
    if (scene.style.startMarkerPx > 0.0f && !t.empty()) {
      const float t0 = std::max(scene.timeWindow.x, t.front().t);
      if (t0 <= std::min(scene.timeWindow.y, t.back().t)) {
        const Vec2 base = transform.toPixels(t.positionAt(t0));
        const Vec2 p = camera.project(base, t0, eye);
        fillCircle(canvas, p.x, p.y, scene.style.startMarkerPx,
                   scene.style.baseColor.scaled(scene.style.nearBrightness));
      }
    }
  }

  if (!cell.label.empty()) {
    drawTextTiny(canvas, cell.rect.x + 3, cell.rect.y + 3, cell.label,
                 cell.background.scaled(3.0f));
  }
  ++stats.cellsDrawn;
}

RenderStats renderScene(const SceneModel& scene,
                        const traj::TrajectoryDataset& dataset,
                        const Canvas& canvas, Eye eye) {
  RenderStats stats;
  fillRect(canvas, canvas.region, scene.wallBackground);

  const OrthoStereoCamera camera(scene.stereo);
  const float maxDuration = dataset.maxDuration();
  for (const CellView& cell : scene.cells) {
    if (!inflatedForParallax(cell.rect, camera, maxDuration)
             .intersects(canvas.region)) {
      ++stats.cellsCulled;
      continue;
    }
    renderCell(scene, cell, dataset, canvas, eye, stats);
  }
  return stats;
}

}  // namespace svq::render
