#include "render/scene.h"

#include <algorithm>
#include <cmath>
#include <type_traits>

namespace svq::render {

namespace {

/// Stereo shifts can move a polyline horizontally beyond its cell; inflate
/// the cull rect by the worst-case parallax so sort-first never drops a
/// cell whose shifted pixels land in this tile.
RectI inflatedForParallax(const RectI& r, const OrthoStereoCamera& camera,
                         float maxDuration) {
  const int pad = static_cast<int>(
      std::ceil(camera.maxAbsParallaxPx(maxDuration) * 0.5f)) + 2;
  return {r.x - pad, r.y, r.w + 2 * pad, r.h};
}

}  // namespace

void renderCell(const SceneModel& scene, const CellView& cell,
                const traj::TrajectoryDataset& dataset, Canvas canvas,
                Eye eye, RenderStats& stats) {
  fillRect(canvas, cell.rect, cell.background);
  if (scene.drawCellBorder) {
    strokeRect(canvas, cell.rect, cell.background.scaled(1.8f));
  }

  const CellTransform transform{cell.rect, scene.arenaRadiusCm, 3.0f};

  if (scene.drawArenaOutline) {
    // Arena boundary circle, drawn as a polyline ring at z = 0.
    const Vec2 c = transform.center();
    const float r = scene.arenaRadiusCm * transform.scale();
    const int segments = 48;
    const Color ring = cell.background.scaled(2.2f);
    Vec2 prev{c.x + r, c.y};
    for (int i = 1; i <= segments; ++i) {
      const float a = kTwoPi * static_cast<float>(i) / segments;
      const Vec2 p{c.x + r * std::cos(a), c.y + r * std::sin(a)};
      drawLine(canvas, prev, p, ring);
      prev = p;
    }
  }

  if (cell.trajectoryIndex < dataset.size()) {
    const traj::Trajectory& t = dataset[cell.trajectoryIndex];
    const OrthoStereoCamera camera(scene.stereo);
    const StyledPolyline line =
        tessellate(t, transform, camera, eye, cell.segmentHighlights,
                   scene.timeWindow, scene.style);
    drawThickPolyline(canvas, line.points, line.colors,
                      scene.style.halfWidthPx);
    stats.segmentsDrawn += line.points.empty() ? 0 : line.points.size() - 1;

    // Release-point marker at the arena centre (t = start of window).
    if (scene.style.startMarkerPx > 0.0f && !t.empty()) {
      const float t0 = std::max(scene.timeWindow.x, t.front().t);
      if (t0 <= std::min(scene.timeWindow.y, t.back().t)) {
        const Vec2 base = transform.toPixels(t.positionAt(t0));
        const Vec2 p = camera.project(base, t0, eye);
        fillCircle(canvas, p.x, p.y, scene.style.startMarkerPx,
                   scene.style.baseColor.scaled(scene.style.nearBrightness));
      }
    }
  }

  if (!cell.label.empty()) {
    drawTextTiny(canvas, cell.rect.x + 3, cell.rect.y + 3, cell.label,
                 cell.background.scaled(3.0f));
  }

  // Anytime-refinement coverage strip: a 2px progress bar along the
  // bottom edge, filled to the refined fraction. Absent at coverage 1.0,
  // so exact/converged frames render byte-identically to pre-anytime
  // frames.
  if (cell.coverage < 1.0f && cell.rect.w > 2 && cell.rect.h > 4) {
    const float clamped = std::max(cell.coverage, 0.0f);
    const int innerW = cell.rect.w - 2;
    const int fillW = static_cast<int>(clamped * static_cast<float>(innerW));
    const RectI track{cell.rect.x + 1, cell.rect.y + cell.rect.h - 3, innerW,
                      2};
    fillRect(canvas, track, cell.background.scaled(0.6f));
    if (fillW > 0) {
      fillRect(canvas, {track.x, track.y, fillW, track.h},
               cell.background.scaled(2.6f));
    }
  }
  ++stats.cellsDrawn;
}

namespace {

/// FNV-1a over raw bytes, chained from `h`.
std::uint64_t fnvMix(std::uint64_t h, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <typename T>
std::uint64_t fnvValue(std::uint64_t h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnvMix(h, &v, sizeof(T));
}

}  // namespace

std::uint64_t sceneStateHash(const SceneModel& scene) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnvValue(h, scene.stereo.timeScaleCmPerS);
  h = fnvValue(h, scene.stereo.depthOffsetCm);
  h = fnvValue(h, scene.stereo.parallaxPxPerCm);
  h = fnvValue(h, scene.stereo.maxComfortParallaxPx);
  h = fnvValue(h, scene.arenaRadiusCm);
  h = fnvValue(h, scene.timeWindow.x);
  h = fnvValue(h, scene.timeWindow.y);
  h = fnvValue(h, scene.style.baseColor);
  h = fnvValue(h, scene.style.nearBrightness);
  h = fnvValue(h, scene.style.halfWidthPx);
  h = fnvValue(h, scene.style.startMarkerPx);
  h = fnvValue(h, scene.drawArenaOutline);
  h = fnvValue(h, scene.drawCellBorder);
  h = fnvValue(h, scene.wallBackground);
  return h;
}

std::uint64_t cellContentHash(const CellView& cell, std::uint64_t sceneHash) {
  std::uint64_t h = sceneHash;
  h = fnvValue(h, cell.trajectoryIndex);
  h = fnvValue(h, cell.rect.x);
  h = fnvValue(h, cell.rect.y);
  h = fnvValue(h, cell.rect.w);
  h = fnvValue(h, cell.rect.h);
  h = fnvValue(h, cell.background);
  h = fnvMix(h, cell.segmentHighlights.data(), cell.segmentHighlights.size());
  h = fnvMix(h, cell.label.data(), cell.label.size());
  // Length separators so {highlights="A", label=""} != {"", "A"}.
  h = fnvValue(h, static_cast<std::uint64_t>(cell.segmentHighlights.size()));
  h = fnvValue(h, static_cast<std::uint64_t>(cell.label.size()));
  // Coverage folds only when it draws (< 1.0), so every pre-anytime hash
  // — including the golden replay frame hashes — is unchanged.
  if (cell.coverage < 1.0f) {
    h = fnvValue(h, cell.coverage);
  }
  return h;
}

std::vector<std::uint64_t> sceneCellHashes(const SceneModel& scene) {
  const std::uint64_t sceneHash = sceneStateHash(scene);
  std::vector<std::uint64_t> hashes;
  hashes.reserve(scene.cells.size());
  for (const CellView& cell : scene.cells) {
    hashes.push_back(cellContentHash(cell, sceneHash));
  }
  return hashes;
}

RenderStats renderScene(const SceneModel& scene,
                        const traj::TrajectoryDataset& dataset,
                        Canvas canvas, Eye eye) {
  RenderStats stats;
  fillRect(canvas, canvas.region, scene.wallBackground);

  const OrthoStereoCamera camera(scene.stereo);
  const float maxDuration = dataset.maxDuration();
  for (const CellView& cell : scene.cells) {
    if (!inflatedForParallax(cell.rect, camera, maxDuration)
             .intersects(canvas.region)) {
      ++stats.cellsCulled;
      continue;
    }
    renderCell(scene, cell, dataset, canvas, eye, stats);
  }
  return stats;
}

}  // namespace svq::render
