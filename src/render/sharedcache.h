// sharedcache.h — cross-session cell-framebuffer cache.
//
// The per-pipeline cell cache (pipeline.h) dedupes *frames within one
// session*: an unchanged cell is skipped or blitted instead of
// re-rasterized. A session service multiplexing hundreds of explorers
// over one dataset has a second, larger source of redundancy: *identical
// cells across sessions*. Most tenants start from the same default
// layout, brush the same popular regions and look at the same
// trajectories, so the (eye-salted) content-hash keys the pipeline
// already computes collide across sessions exactly when the pixels would
// be identical. SharedCellCache exploits that: one process-wide (per
// SharedContext) map from cell key to rasterized pixels, consulted by
// every pipeline before it rasterizes, populated by whichever session
// rasterized the cell first.
//
// Key discipline (what makes a cross-session hit safe): the key is the
// pipeline's eye-salted cellContentHash, which covers *every* input
// renderCell reads — trajectory index, cell rect (absolute wall pixels),
// background, per-segment highlights, label, and the scene-wide state
// (stereo, window, style, flags). Entries additionally record their
// pixel dimensions and are only returned when they match the requester's
// clip rect, so a (vanishingly unlikely) key collision or a partially
// clipped canvas can never blit another tenant's pixels. All sessions
// sharing a cache MUST render the same dataset on the same wall — the
// cache belongs to the SharedContext that guarantees exactly that.
//
// Concurrency: one mutex around the map + LRU list. Lookups and inserts
// are small (pointer moves; pixels live behind shared_ptr and are never
// copied by the cache), so the lock is held for microseconds; rasterized
// pixels are shared, not duplicated, between the inserting pipeline's
// local slot and the cache (and every pipeline that later hits).
//
// Metrics (util/metrics, prefix "render.shared."): hits, cross_hits (hit
// on an entry inserted by a *different* client — the multi-tenant win),
// misses, inserts, evictions, bytes (gauge).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "render/framebuffer.h"

namespace svq::render {

/// Thread-safe, LRU-bounded map from cell content key to rasterized cell
/// pixels, shared by many CellRenderPipelines.
class SharedCellCache {
 public:
  /// `budgetBytes` bounds the pixel bytes retained (0 disables caching:
  /// every find misses, inserts are dropped).
  explicit SharedCellCache(std::size_t budgetBytes = 512ull << 20);

  /// A new client (= pipeline) identity for cross-hit accounting.
  std::uint64_t registerClient();

  /// The pixels cached under `key`, or nullptr. Only returns an entry
  /// whose dimensions are exactly (width, height). Bumps the entry's LRU
  /// position; counts a hit (and a cross_hit when the entry was inserted
  /// by a different client than `clientId`).
  std::shared_ptr<const Framebuffer> find(std::uint64_t key, int width,
                                          int height, std::uint64_t clientId);

  /// Publishes `pixels` under `key` (no copy; the cache shares ownership).
  /// First writer wins: re-inserting an existing key only refreshes its
  /// LRU position — by the key discipline both writers hold identical
  /// pixels. Evicts least-recently-used entries to stay within budget;
  /// pixels larger than the whole budget are not cached.
  void insert(std::uint64_t key, std::shared_ptr<const Framebuffer> pixels,
              std::uint64_t clientId);

  std::size_t bytes() const;
  std::size_t entries() const;
  std::size_t budgetBytes() const { return budgetBytes_; }

  /// Drops every entry (tests / epoch changes).
  void clear();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t crossHits = 0;  ///< hits on another client's entry
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;

    /// Fraction of lookups served from another session's work — the
    /// headline multi-tenant dedupe number.
    double crossHitRate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(crossHits) /
                              static_cast<double>(total);
    }
  };
  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const Framebuffer> pixels;
    std::uint64_t owner = 0;  ///< clientId that inserted it
    std::list<std::uint64_t>::iterator lruIt;
  };

  void evictToFitLocked(std::size_t incomingBytes);

  const std::size_t budgetBytes_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  ///< front = most recently used
  std::size_t bytes_ = 0;
  std::uint64_t nextClientId_ = 1;
  Stats stats_;
};

}  // namespace svq::render
