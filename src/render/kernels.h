// kernels.h — vectorized span primitives behind render::Canvas.
//
// The rasterizer's hot loops reduce to three dense row operations:
//
//   * blendSpan — source-over blend of one translucent color onto a pixel
//     run (the alpha path of Canvas::fillSpan);
//   * fillRow — store one opaque color across a run (the fast path of
//     Canvas::fillSpan);
//   * copyRow — copy a run between framebuffers (Canvas::blitRows).
//
// Each ships scalar/SSE2/AVX2 variants selected once per process via
// util::activeIsa() (SVQ_FORCE_SCALAR pins scalar). Variants are
// BIT-IDENTICAL to the scalar path: blendSpan replicates Color::over's
// exact expression tree — d*(1-sa) + s*sa + 0.5f with truncating u8
// conversion — using discrete mul/add (never FMA) so the float results
// match lane for lane. Framebuffer content hashes, the pipeline's cache
// keys and the delta-broadcast determinism gates all depend on this;
// tests/simd_kernel_test.cpp fuzzes the equivalence.
#pragma once

#include <cstddef>

#include "render/color.h"
#include "util/simd.h"

namespace svq::render {

/// dst[i] = Color::over(dst[i], src) for i < n. Caller handles the
/// src.a == 255 (opaque) and src.a == 0 (no-op) fast paths; variants
/// assume 0 < src.a < 255 (they still produce Color::over's result for
/// the extremes, just not as fast).
void blendSpan(Color* dst, std::size_t n, Color src);
void blendSpanScalar(Color* dst, std::size_t n, Color src);
void blendSpanSse2(Color* dst, std::size_t n, Color src);
void blendSpanAvx2(Color* dst, std::size_t n, Color src);
void blendSpanVariant(util::Isa isa, Color* dst, std::size_t n, Color src);

/// dst[i] = src for i < n (opaque store, no blending).
void fillRow(Color* dst, std::size_t n, Color src);
void fillRowScalar(Color* dst, std::size_t n, Color src);
void fillRowSse2(Color* dst, std::size_t n, Color src);
void fillRowAvx2(Color* dst, std::size_t n, Color src);
void fillRowVariant(util::Isa isa, Color* dst, std::size_t n, Color src);

/// dst[i] = src[i] for i < n. Runs must not overlap.
void copyRow(Color* dst, const Color* src, std::size_t n);
void copyRowScalar(Color* dst, const Color* src, std::size_t n);
void copyRowSse2(Color* dst, const Color* src, std::size_t n);
void copyRowAvx2(Color* dst, const Color* src, std::size_t n);
void copyRowVariant(util::Isa isa, Color* dst, const Color* src,
                    std::size_t n);

}  // namespace svq::render
