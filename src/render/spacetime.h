// spacetime.h — space-time-cube tessellation of a trajectory.
//
// Converts a trajectory (arena cm + seconds) into wall-pixel polylines for
// one eye, applying: the cell's arena->pixel transform, the stereo
// camera's parallax shift, an optional temporal window (the range-slider
// filter of §IV.C.2), per-segment highlight colors from the query engine,
// and depth-cue shading (later samples are rendered brighter, a monocular
// cue that complements the stereo parallax).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "render/camera.h"
#include "render/color.h"
#include "traj/trajectory.h"
#include "util/geometry.h"

namespace svq::render {

/// Maps arena coordinates (cm, origin at arena centre) into a cell's
/// pixel rect, preserving aspect ratio, with `marginPx` padding.
struct CellTransform {
  RectI rect;
  float arenaRadiusCm = 50.0f;
  float marginPx = 3.0f;

  /// Pixels per arena cm.
  float scale() const {
    const float usable =
        static_cast<float>(std::min(rect.w, rect.h)) - 2.0f * marginPx;
    return std::max(0.0f, usable) / (2.0f * arenaRadiusCm);
  }
  /// Pixel centre of the cell.
  Vec2 center() const {
    return {static_cast<float>(rect.x) + static_cast<float>(rect.w) * 0.5f,
            static_cast<float>(rect.y) + static_cast<float>(rect.h) * 0.5f};
  }
  /// Arena cm -> global wall pixels (y flipped: arena north = up = -y).
  Vec2 toPixels(Vec2 arena) const {
    const float s = scale();
    const Vec2 c = center();
    return {c.x + arena.x * s, c.y - arena.y * s};
  }
};

/// No highlight on a segment.
inline constexpr std::int8_t kNoHighlight = -1;

/// A renderable polyline with per-vertex colors.
struct StyledPolyline {
  std::vector<Vec2> points;
  std::vector<Color> colors;
};

/// Styling knobs for trajectory tessellation.
struct TrajectoryStyle {
  Color baseColor = colors::kTrajectory;
  /// Brightness of the first sample relative to the last (depth cue).
  float nearBrightness = 0.45f;
  float halfWidthPx = 1.2f;
  /// Radius of the release-point marker; 0 disables it.
  float startMarkerPx = 2.5f;
};

/// Tessellates one trajectory for one eye.
///
/// `segmentHighlights` (may be empty = no highlights) holds, per segment
/// i (between samples i and i+1), kNoHighlight or a brush index whose
/// brushColor() overrides the base color. `window` restricts output to
/// samples with window.x <= t <= window.y (pass {0, +inf} for all).
StyledPolyline tessellate(const traj::Trajectory& t,
                          const CellTransform& transform,
                          const OrthoStereoCamera& camera, Eye eye,
                          std::span<const std::int8_t> segmentHighlights,
                          Vec2 window, const TrajectoryStyle& style = {});

}  // namespace svq::render
