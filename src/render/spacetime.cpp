#include "render/spacetime.h"

#include <algorithm>

namespace svq::render {

StyledPolyline tessellate(const traj::Trajectory& t,
                          const CellTransform& transform,
                          const OrthoStereoCamera& camera, Eye eye,
                          std::span<const std::int8_t> segmentHighlights,
                          Vec2 window, const TrajectoryStyle& style) {
  StyledPolyline out;
  const traj::PointsView pts = t.view();
  if (pts.empty()) return out;
  out.points.reserve(pts.size());
  out.colors.reserve(pts.size());

  const float duration = std::max(1e-6f, t.duration());
  bool inWindow = false;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const float ti = pts[i].t;
    if (ti < window.x || ti > window.y) {
      inWindow = false;
      continue;
    }
    // Break the polyline at window gaps by duplicating the point with a
    // fully transparent color (drawThickPolyline averages endpoint colors,
    // so a transparent sentinel halves alpha on the joining segment; we
    // avoid that entirely by starting a fresh run: callers draw runs
    // separated by transparent points as separate segments).
    const Vec2 base = transform.toPixels(pts[i].pos);
    const Vec2 projected = camera.project(base, ti, eye);

    // Depth cue: fade from nearBrightness at t=0 to full at the end.
    const float u = ti / duration;
    Color c = style.baseColor.scaled(
        lerp(style.nearBrightness, 1.0f, u));

    // Highlight override: segment i-1..i or i..i+1 touching a highlighted
    // region takes the brush color at both endpoints so the whole segment
    // reads in the brush hue.
    if (!segmentHighlights.empty()) {
      std::int8_t h = kNoHighlight;
      if (i < segmentHighlights.size() &&
          segmentHighlights[i] != kNoHighlight) {
        h = segmentHighlights[i];
      } else if (i > 0 && i - 1 < segmentHighlights.size() &&
                 segmentHighlights[i - 1] != kNoHighlight) {
        h = segmentHighlights[i - 1];
      }
      if (h != kNoHighlight) c = brushColor(static_cast<std::size_t>(h));
    }

    if (!inWindow && !out.points.empty()) {
      // Re-entering the window after a gap: insert a zero-alpha duplicate
      // of the new point so the bridging segment is invisible.
      out.points.push_back(projected);
      out.colors.push_back(c.withAlpha(0));
    }
    out.points.push_back(projected);
    out.colors.push_back(c);
    inWindow = true;
  }
  return out;
}

}  // namespace svq::render
