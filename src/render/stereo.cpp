#include "render/stereo.h"

#include <cassert>

namespace svq::render {

Framebuffer composeAnaglyph(const Framebuffer& left,
                            const Framebuffer& right) {
  assert(left.width() == right.width() && left.height() == right.height());
  Framebuffer out(left.width(), left.height());
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      const Color l = left.at(x, y);
      const Color r = right.at(x, y);
      out.at(x, y) = Color{l.r, r.g, r.b, 255};
    }
  }
  return out;
}

Framebuffer composeSideBySide(const Framebuffer& left,
                              const Framebuffer& right) {
  assert(left.height() == right.height());
  Framebuffer out(left.width() + right.width(), left.height());
  out.blit(left, 0, 0);
  out.blit(right, left.width(), 0);
  return out;
}

Framebuffer composeRowInterleaved(const Framebuffer& left,
                                  const Framebuffer& right) {
  assert(left.width() == right.width() && left.height() == right.height());
  Framebuffer out(left.width(), left.height());
  for (int y = 0; y < out.height(); ++y) {
    const Framebuffer& src = (y % 2 == 0) ? left : right;
    for (int x = 0; x < out.width(); ++x) {
      out.at(x, y) = src.at(x, y);
    }
  }
  return out;
}

}  // namespace svq::render
