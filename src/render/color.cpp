#include "render/color.h"

namespace svq::render {

Color Color::lerp(Color x, Color y, float t) {
  t = svq::clamp(t, 0.0f, 1.0f);
  auto mix = [t](std::uint8_t a, std::uint8_t b) {
    return static_cast<std::uint8_t>(
        static_cast<float>(a) + (static_cast<float>(b) - static_cast<float>(a)) * t + 0.5f);
  };
  return {mix(x.r, y.r), mix(x.g, y.g), mix(x.b, y.b), mix(x.a, y.a)};
}

Color Color::over(Color dst, Color src) {
  if (src.a == 255) return src;
  if (src.a == 0) return dst;
  const float sa = static_cast<float>(src.a) / 255.0f;
  auto mix = [sa](std::uint8_t d, std::uint8_t s) {
    return static_cast<std::uint8_t>(
        static_cast<float>(d) * (1.0f - sa) + static_cast<float>(s) * sa + 0.5f);
  };
  return {mix(dst.r, src.r), mix(dst.g, src.g), mix(dst.b, src.b), 255};
}

Color Color::scaled(float factor) const {
  auto s = [factor](std::uint8_t v) {
    const float x = static_cast<float>(v) * factor;
    return static_cast<std::uint8_t>(svq::clamp(x, 0.0f, 255.0f));
  };
  return {s(r), s(g), s(b), a};
}

Color groupBackground(std::size_t groupIndex) {
  // Dark tints of the Fig. 3 scheme: blue (on-trail), red (west),
  // yellow (east), gray (north), green (south), then wrap with variants.
  static constexpr Color kTints[] = {
      {28, 38, 64, 255},   // blue
      {64, 28, 28, 255},   // red
      {60, 56, 24, 255},   // yellow
      {44, 44, 48, 255},   // gray
      {26, 52, 30, 255},   // green
      {52, 30, 58, 255},   // purple
      {24, 52, 52, 255},   // teal
      {58, 42, 24, 255},   // orange
  };
  return kTints[groupIndex % (sizeof(kTints) / sizeof(kTints[0]))];
}

Color brushColor(std::size_t brushIndex) {
  static constexpr Color kBrushes[] = {
      colors::kRed, colors::kGreen, colors::kBlue,
      {230, 120, 30, 255},   // orange
      {180, 60, 200, 255},   // magenta
      {40, 200, 200, 255},   // cyan
  };
  return kBrushes[brushIndex % (sizeof(kBrushes) / sizeof(kBrushes[0]))];
}

}  // namespace svq::render
