// pipeline.h — dirty-cell-aware, cell-parallel scene rendering.
//
// renderScene (scene.h) redraws every cell of every eye on every frame.
// The interactive loop of the paper never needs that: the incremental
// query engine knows exactly which cells' highlights changed, and the
// wall's layout is static between edits. CellRenderPipeline closes the
// loop on the render side:
//
//   * per-cell framebuffer cache — each cell rasterizes into the target
//     through a sub-canvas clipped to its own rect, keyed by a content
//     hash (cellContentHash) over everything renderCell reads. A cell
//     whose key is unchanged since the last frame is skipped outright —
//     its pixels are already in the (persistent) target — or restored
//     with a row-wise blit from the cache after target damage;
//   * cell-parallel rasterization — dirty cells rasterize concurrently
//     over a ThreadPool. Cells own pairwise-disjoint rects (verified per
//     layout; scenes with overlapping cells fall back to the serial
//     legacy path), so concurrent cells never touch the same pixel and
//     the output is bit-identical for any thread count — the same
//     determinism contract the batch SOM trainer makes;
//   * clipping semantics — a cell's pixels are clipped to its rect.
//     Stereo parallax can shift a polyline horizontally past the cell
//     boundary; the legacy renderer let those pixels spill into the
//     wall background, the pipeline clips them at the cell edge (cells
//     own their pixels — the property that makes skip/blit compositing
//     and race-free parallelism possible). renderScene keeps the old
//     spill semantics for comparison.
//
// Metrics (util/metrics, prefix "render."): cells rasterized / blitted /
// skipped, pixels rasterized / blitted — dumped by bench_render.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "render/scene.h"
#include "util/cancel.h"
#include "util/threadpool.h"

namespace svq::render {

class SharedCellCache;

/// Knobs for CellRenderPipeline.
struct PipelineOptions {
  /// Worker pool for cell-parallel rasterization; nullptr = serial.
  /// Output is bit-identical either way.
  ThreadPool* pool = nullptr;
  /// Budget for cached cell framebuffers. Cells beyond the budget keep
  /// their keys (skip detection still works) but drop their pixels, so a
  /// target-damage recomposite re-rasterizes them instead of blitting.
  /// 0 disables pixel caching entirely.
  std::size_t cacheBudgetBytes = 256ull << 20;
  /// Cross-session cell cache (render/sharedcache.h), or nullptr. When
  /// set, dirty cells are first looked up by content key — a hit blits
  /// pixels another session (or an evicted slot of this one) already
  /// rasterized — and freshly rasterized cells are published back.
  /// Every pipeline sharing a cache must render the same dataset on the
  /// same wall (the SharedContext discipline); output is bit-identical
  /// with or without the cache.
  SharedCellCache* sharedCache = nullptr;

  /// Reads SVQ_RENDER_THREADS (0/unset = serial, N>1 = pool of N) and
  /// SVQ_RENDER_CACHE_MB from the environment.
  static PipelineOptions fromEnv();
};

/// What one render() call did (also mirrored into the global metrics
/// registry under "render.").
struct PipelineStats {
  std::size_t cellsRasterized = 0;  ///< content changed: full redraw
  std::size_t cellsBlitted = 0;     ///< unchanged, restored from local cache
  std::size_t cellsSharedBlitted = 0;  ///< dirty, served from shared cache
  std::size_t cellsSkipped = 0;     ///< unchanged, pixels already in target
  std::size_t cellsCulled = 0;      ///< outside the canvas region
  std::uint64_t pixelsRasterized = 0;
  std::uint64_t pixelsBlitted = 0;
  std::size_t segmentsDrawn = 0;
  bool fullRecomposite = false;  ///< background + every visible cell redone
  bool overlapFallback = false;  ///< overlapping cells: legacy serial path
  /// A cancellation stopped the render before every dirty cell was
  /// rasterized. The target is incomplete; the pipeline has already
  /// self-invalidated, so the next render() recomposites (blitting cells
  /// that did finish from the cache, re-rasterizing the abandoned ones).
  bool aborted = false;

  std::size_t cellsDrawn() const {
    return cellsRasterized + cellsBlitted + cellsSharedBlitted;
  }
};

/// Incremental renderer for one (target framebuffer, eye) stream.
///
/// The pipeline assumes it renders the *same logical surface* repeatedly:
/// the first render (or any change of target, region, eye, layout or wall
/// background) does a full recomposite; subsequent renders touch only the
/// cells whose content hash changed. Call invalidate() when the target's
/// pixels were damaged externally (e.g. buffer reuse) — the next render
/// recomposites from the cache via blits instead of trusting the target.
///
/// Not thread-safe per instance; one pipeline per render stream (the
/// cluster app keeps one per owned tile per eye).
class CellRenderPipeline {
 public:
  explicit CellRenderPipeline(PipelineOptions options = {});

  /// Renders `scene` into `canvas` for `eye`, incrementally. `cancel`
  /// (optional) is polled per cell in the rasterize phase: an abandoned
  /// render returns stats.aborted=true with the pipeline self-invalidated
  /// (cells that finished keep their cached pixels and keys; abandoned
  /// cells stay dirty and redo on the next render). The legacy overlap
  /// fallback path is all-or-nothing and ignores `cancel`.
  PipelineStats render(const SceneModel& scene,
                       const traj::TrajectoryDataset& dataset,
                       Canvas canvas, Eye eye,
                       const util::Cancellation* cancel = nullptr);

  /// Marks the target's pixels unreliable; the next render recomposites
  /// every visible cell (blitting unchanged ones from the cache).
  void invalidate() { targetValid_ = false; }

  /// Per-cell content keys of the last rendered scene (index-aligned with
  /// scene.cells). Exposed for the delta-broadcast master and tests.
  const std::vector<std::uint64_t>& cellKeys() const { return keys_; }

  const PipelineOptions& options() const { return options_; }
  std::size_t cachedBytes() const { return cachedBytes_; }

 private:
  struct CellSlot {
    std::uint64_t key = 0;
    bool hasKey = false;
    RectI clip;  ///< cell.rect ∩ canvas.region at last render
    /// Cached copy of the clip rect (may be null). Shared, not copied,
    /// with the cross-session cache: a slot populated by rasterization
    /// holds the same allocation the shared cache publishes, and a slot
    /// populated by a shared-cache hit adopts the found entry.
    std::shared_ptr<const Framebuffer> pixels;
  };

  void resetLayout(const SceneModel& scene, Canvas canvas);
  bool cellsDisjoint(const SceneModel& scene) const;

  PipelineOptions options_;
  std::vector<CellSlot> slots_;
  std::vector<std::uint64_t> keys_;
  // Target identity: recomposite when any of these change.
  Framebuffer* targetFb_ = nullptr;
  RectI targetRegion_;
  Eye eye_ = Eye::kCenter;
  Color background_{};
  bool targetValid_ = false;
  bool layoutDisjoint_ = true;
  std::size_t cachedBytes_ = 0;
  /// Identity in options_.sharedCache for cross-hit accounting (0 = none).
  std::uint64_t sharedClientId_ = 0;
};

}  // namespace svq::render
