#include "render/rasterizer.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>

#include "render/kernels.h"

namespace svq::render {

void Canvas::fillSpan(int gx, int gy, int w, Color c) {
  const RectI bounds = clipRect();
  if (gy < bounds.y || gy >= bounds.y + bounds.h) return;
  const int x0 = std::max(gx, bounds.x);
  const int x1 = std::min(gx + w, bounds.x + bounds.w);
  if (x0 >= x1) return;
  Color* row = &fb->at(x0 - region.x, gy - region.y);
  const auto run = static_cast<std::size_t>(x1 - x0);
  if (c.a == 255) {
    fillRow(row, run, c);
  } else if (c.a != 0) {
    blendSpan(row, run, c);
  }
}

void Canvas::blitRows(const Framebuffer& src, int srcX, int srcY,
                      const RectI& dstGlobal) {
  const RectI target = dstGlobal.clipped(clipRect());
  if (target.empty()) return;
  for (int y = 0; y < target.h; ++y) {
    const int sy = srcY + (target.y - dstGlobal.y) + y;
    const int sx = srcX + (target.x - dstGlobal.x);
    if (sy < 0 || sy >= src.height()) continue;
    const int runX = std::max(sx, 0);
    const int run = std::min(sx + target.w, src.width()) - runX;
    if (run <= 0) continue;
    const Color* srcRow = &src.at(runX, sy);
    Color* dstRow = &fb->at(target.x + (runX - sx) - region.x,
                            target.y + y - region.y);
    copyRow(dstRow, srcRow, static_cast<std::size_t>(run));
  }
}

void fillRect(Canvas canvas, const RectI& r, Color c) {
  const RectI clipped = r.clipped(canvas.clipRect());
  for (int y = clipped.y; y < clipped.y + clipped.h; ++y) {
    canvas.fillSpan(clipped.x, y, clipped.w, c);
  }
}

void strokeRect(Canvas canvas, const RectI& r, Color c) {
  if (r.empty()) return;
  fillRect(canvas, {r.x, r.y, r.w, 1}, c);
  fillRect(canvas, {r.x, r.y + r.h - 1, r.w, 1}, c);
  fillRect(canvas, {r.x, r.y + 1, 1, r.h - 2}, c);
  fillRect(canvas, {r.x + r.w - 1, r.y + 1, 1, r.h - 2}, c);
}

void fillCircle(Canvas canvas, float cx, float cy, float r, Color c) {
  if (r <= 0.0f) return;
  const int x0 = static_cast<int>(std::floor(cx - r));
  const int x1 = static_cast<int>(std::ceil(cx + r));
  const int y0 = static_cast<int>(std::floor(cy - r));
  const int y1 = static_cast<int>(std::ceil(cy + r));
  const RectI box =
      RectI{x0, y0, x1 - x0 + 1, y1 - y0 + 1}.clipped(canvas.clipRect());
  const float r2 = r * r;
  for (int y = box.y; y < box.y + box.h; ++y) {
    // Every (x, y) in the clipped box is inside the canvas; write through
    // the row pointer instead of re-checking containment per pixel.
    Color* row = &canvas.fb->at(box.x - canvas.region.x, y - canvas.region.y);
    const float dy = static_cast<float>(y) + 0.5f - cy;
    for (int x = box.x; x < box.x + box.w; ++x, ++row) {
      const float dx = static_cast<float>(x) + 0.5f - cx;
      if (dx * dx + dy * dy <= r2) *row = Color::over(*row, c);
    }
  }
}

namespace {

/// Intersects the parameter interval [t0, t1] of a(t) = o + d*t with the
/// slab lo <= o + d*t <= hi. Returns false when the intersection is empty.
bool clipAxis(float o, float d, float lo, float hi, float& t0, float& t1) {
  if (d == 0.0f) return o >= lo && o <= hi;
  float ta = (lo - o) / d;
  float tb = (hi - o) / d;
  if (ta > tb) std::swap(ta, tb);
  t0 = std::max(t0, ta);
  t1 = std::min(t1, tb);
  return t0 <= t1;
}

}  // namespace

void drawLine(Canvas canvas, Vec2 a, Vec2 b, Color c) {
  const float dx = b.x - a.x;
  const float dy = b.y - a.y;
  const int steps =
      static_cast<int>(std::max(std::abs(dx), std::abs(dy))) + 1;

  // Clip the *parameter range* against the canvas before the pixel walk
  // (Liang-Barsky over a 1px-inflated clip rect). The parametrization is
  // unchanged, so the pixels produced inside the canvas are bit-identical
  // to an unclipped walk — but a line crossing an off-tile cell no longer
  // costs O(length) rejected samples. The 1px inflation covers rounding:
  // a sample up to 0.5px outside the rect can still round to an inside
  // pixel.
  const RectI bounds = canvas.clipRect();
  if (bounds.empty()) return;
  float t0 = 0.0f, t1 = 1.0f;
  if (!clipAxis(a.x, dx, static_cast<float>(bounds.x) - 1.0f,
                static_cast<float>(bounds.x + bounds.w), t0, t1) ||
      !clipAxis(a.y, dy, static_cast<float>(bounds.y) - 1.0f,
                static_cast<float>(bounds.y + bounds.h), t0, t1)) {
    return;
  }
  const float fsteps = static_cast<float>(steps);
  const int i0 = std::max(0, static_cast<int>(std::floor(t0 * fsteps)));
  const int i1 = std::min(steps, static_cast<int>(std::ceil(t1 * fsteps)));
  for (int i = i0; i <= i1; ++i) {
    const float t = static_cast<float>(i) / fsteps;
    canvas.blend(static_cast<int>(std::round(a.x + dx * t)),
                 static_cast<int>(std::round(a.y + dy * t)), c);
  }
}

void drawThickLine(Canvas canvas, Vec2 a, Vec2 b, float halfWidth,
                   Color c, float feather) {
  halfWidth = std::max(0.5f, halfWidth);
  feather = std::max(0.25f, feather);
  const float reach = halfWidth + feather;
  const int x0 = static_cast<int>(std::floor(std::min(a.x, b.x) - reach));
  const int x1 = static_cast<int>(std::ceil(std::max(a.x, b.x) + reach));
  const int y0 = static_cast<int>(std::floor(std::min(a.y, b.y) - reach));
  const int y1 = static_cast<int>(std::ceil(std::max(a.y, b.y) + reach));
  const RectI box =
      RectI{x0, y0, x1 - x0 + 1, y1 - y0 + 1}.clipped(canvas.clipRect());
  if (box.empty()) return;

  const Vec2 ab = b - a;
  const float len2 = ab.norm2();
  for (int y = box.y; y < box.y + box.h; ++y) {
    Color* row = &canvas.fb->at(box.x - canvas.region.x, y - canvas.region.y);
    for (int x = box.x; x < box.x + box.w; ++x, ++row) {
      const Vec2 p{static_cast<float>(x) + 0.5f, static_cast<float>(y) + 0.5f};
      float dist;
      if (len2 <= 0.0f) {
        dist = (p - a).norm();
      } else {
        const float u = svq::clamp((p - a).dot(ab) / len2, 0.0f, 1.0f);
        dist = (p - (a + ab * u)).norm();
      }
      if (dist >= halfWidth + feather) continue;
      float coverage = 1.0f;
      if (dist > halfWidth) coverage = 1.0f - (dist - halfWidth) / feather;
      const auto alpha = static_cast<std::uint8_t>(
          svq::clamp(coverage * static_cast<float>(c.a), 0.0f, 255.0f));
      *row = Color::over(*row, c.withAlpha(alpha));
    }
  }
}

void drawThickPolyline(Canvas canvas, std::span<const Vec2> points,
                       std::span<const Color> pointColors, float halfWidth) {
  for (std::size_t i = 1; i < points.size(); ++i) {
    // A zero-alpha vertex is a break sentinel (temporal-window gaps):
    // segments touching it are not drawn.
    if (pointColors[i - 1].a == 0 || pointColors[i].a == 0) continue;
    const Color c = Color::lerp(pointColors[i - 1], pointColors[i], 0.5f);
    drawThickLine(canvas, points[i - 1], points[i], halfWidth, c);
  }
}

namespace {

// 5x7 font: each glyph is 7 rows of 5-bit masks (MSB = leftmost column).
struct Glyph {
  char ch;
  std::uint8_t rows[7];
};

constexpr Glyph kGlyphs[] = {
    {'0', {0x0E, 0x11, 0x13, 0x15, 0x19, 0x11, 0x0E}},
    {'1', {0x04, 0x0C, 0x04, 0x04, 0x04, 0x04, 0x0E}},
    {'2', {0x0E, 0x11, 0x01, 0x02, 0x04, 0x08, 0x1F}},
    {'3', {0x1F, 0x02, 0x04, 0x02, 0x01, 0x11, 0x0E}},
    {'4', {0x02, 0x06, 0x0A, 0x12, 0x1F, 0x02, 0x02}},
    {'5', {0x1F, 0x10, 0x1E, 0x01, 0x01, 0x11, 0x0E}},
    {'6', {0x06, 0x08, 0x10, 0x1E, 0x11, 0x11, 0x0E}},
    {'7', {0x1F, 0x01, 0x02, 0x04, 0x08, 0x08, 0x08}},
    {'8', {0x0E, 0x11, 0x11, 0x0E, 0x11, 0x11, 0x0E}},
    {'9', {0x0E, 0x11, 0x11, 0x0F, 0x01, 0x02, 0x0C}},
    {'A', {0x0E, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11}},
    {'B', {0x1E, 0x11, 0x11, 0x1E, 0x11, 0x11, 0x1E}},
    {'C', {0x0E, 0x11, 0x10, 0x10, 0x10, 0x11, 0x0E}},
    {'D', {0x1C, 0x12, 0x11, 0x11, 0x11, 0x12, 0x1C}},
    {'E', {0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x1F}},
    {'F', {0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x10}},
    {'G', {0x0E, 0x11, 0x10, 0x17, 0x11, 0x11, 0x0F}},
    {'H', {0x11, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11}},
    {'I', {0x0E, 0x04, 0x04, 0x04, 0x04, 0x04, 0x0E}},
    {'J', {0x07, 0x02, 0x02, 0x02, 0x02, 0x12, 0x0C}},
    {'K', {0x11, 0x12, 0x14, 0x18, 0x14, 0x12, 0x11}},
    {'L', {0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x1F}},
    {'M', {0x11, 0x1B, 0x15, 0x15, 0x11, 0x11, 0x11}},
    {'N', {0x11, 0x19, 0x15, 0x13, 0x11, 0x11, 0x11}},
    {'O', {0x0E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E}},
    {'P', {0x1E, 0x11, 0x11, 0x1E, 0x10, 0x10, 0x10}},
    {'Q', {0x0E, 0x11, 0x11, 0x11, 0x15, 0x12, 0x0D}},
    {'R', {0x1E, 0x11, 0x11, 0x1E, 0x14, 0x12, 0x11}},
    {'S', {0x0F, 0x10, 0x10, 0x0E, 0x01, 0x01, 0x1E}},
    {'T', {0x1F, 0x04, 0x04, 0x04, 0x04, 0x04, 0x04}},
    {'U', {0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E}},
    {'V', {0x11, 0x11, 0x11, 0x11, 0x11, 0x0A, 0x04}},
    {'W', {0x11, 0x11, 0x11, 0x15, 0x15, 0x1B, 0x11}},
    {'X', {0x11, 0x11, 0x0A, 0x04, 0x0A, 0x11, 0x11}},
    {'Y', {0x11, 0x11, 0x0A, 0x04, 0x04, 0x04, 0x04}},
    {'Z', {0x1F, 0x01, 0x02, 0x04, 0x08, 0x10, 0x1F}},
    {' ', {0, 0, 0, 0, 0, 0, 0}},
    {'-', {0, 0, 0, 0x0E, 0, 0, 0}},
    {'.', {0, 0, 0, 0, 0, 0x0C, 0x0C}},
    {':', {0, 0x0C, 0x0C, 0, 0x0C, 0x0C, 0}},
    {'/', {0x01, 0x01, 0x02, 0x04, 0x08, 0x10, 0x10}},
    {'%', {0x19, 0x19, 0x02, 0x04, 0x08, 0x13, 0x13}},
    {'=', {0, 0, 0x1F, 0, 0x1F, 0, 0}},
    {'(', {0x02, 0x04, 0x08, 0x08, 0x08, 0x04, 0x02}},
    {')', {0x08, 0x04, 0x02, 0x02, 0x02, 0x04, 0x08}},
    {'_', {0, 0, 0, 0, 0, 0, 0x1F}},
};

const Glyph* findGlyph(char c) {
  const char up = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  for (const auto& g : kGlyphs) {
    if (g.ch == up) return &g;
  }
  return nullptr;
}

constexpr std::uint8_t kUnknownRows[7] = {0x1F, 0x1F, 0x1F, 0x1F,
                                          0x1F, 0x1F, 0x1F};

}  // namespace

void drawTextTiny(Canvas canvas, int x, int y, std::string_view text,
                  Color c, int scale) {
  scale = std::max(1, scale);
  int cx = x;
  for (char ch : text) {
    const Glyph* g = findGlyph(ch);
    const std::uint8_t* rows = g ? g->rows : kUnknownRows;
    for (int row = 0; row < 7; ++row) {
      for (int col = 0; col < 5; ++col) {
        if (!(rows[row] & (0x10 >> col))) continue;
        fillRect(canvas,
                 {cx + col * scale, y + row * scale, scale, scale}, c);
      }
    }
    cx += 6 * scale;
  }
}

int textTinyWidth(std::string_view text, int scale) {
  return static_cast<int>(text.size()) * 6 * std::max(1, scale);
}

int textTinyHeight(int scale) { return 7 * std::max(1, scale); }

}  // namespace svq::render
