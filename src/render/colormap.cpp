#include "render/colormap.h"

#include <algorithm>
#include <cmath>

namespace svq::render {

Color sequentialColormap(float u) {
  u = svq::clamp(u, 0.0f, 1.0f);
  // Piecewise-linear ramp through magma-like control points.
  struct Stop {
    float u;
    Color c;
  };
  static constexpr Stop kStops[] = {
      {0.00f, {5, 4, 25, 255}},
      {0.25f, {80, 18, 100, 255}},
      {0.50f, {180, 45, 100, 255}},
      {0.75f, {250, 120, 60, 255}},
      {1.00f, {252, 250, 190, 255}},
  };
  for (std::size_t i = 1; i < std::size(kStops); ++i) {
    if (u <= kStops[i].u) {
      const float t =
          (u - kStops[i - 1].u) / (kStops[i].u - kStops[i - 1].u);
      return Color::lerp(kStops[i - 1].c, kStops[i].c, t);
    }
  }
  return kStops[std::size(kStops) - 1].c;
}

void drawDensityField(Canvas canvas, const RectI& rect,
                      const traj::OccupancyGrid& grid, float maxValue,
                      float gamma) {
  if (rect.empty()) return;
  const float peak = maxValue > 0.0f ? maxValue : grid.maxSeconds();
  if (peak <= 0.0f) {
    fillRect(canvas, rect, sequentialColormap(0.0f));
    return;
  }
  const RectI clipped = rect.clipped(canvas.region);
  const float R = grid.arenaRadiusCm();
  for (int y = clipped.y; y < clipped.y + clipped.h; ++y) {
    for (int x = clipped.x; x < clipped.x + clipped.w; ++x) {
      // Pixel centre -> arena cm (y flipped so north is up).
      const float u =
          (static_cast<float>(x - rect.x) + 0.5f) / static_cast<float>(rect.w);
      const float v =
          (static_cast<float>(y - rect.y) + 0.5f) / static_cast<float>(rect.h);
      const Vec2 arena{(u * 2.0f - 1.0f) * R, (1.0f - v * 2.0f) * R};
      const float density = grid.at(arena) / peak;
      canvas.set(x, y,
                 sequentialColormap(std::pow(density, gamma)));
    }
  }
}

Framebuffer renderDensityImage(const traj::OccupancyGrid& grid, int sizePx,
                               float gamma) {
  Framebuffer fb(sizePx, sizePx);
  drawDensityField(Canvas::whole(fb), {0, 0, sizePx, sizePx}, grid, -1.0f,
                   gamma);
  return fb;
}

}  // namespace svq::render
