#include "render/framebuffer.h"

#include <algorithm>
#include <fstream>

#include "util/logging.h"

namespace svq::render {

Framebuffer::Framebuffer(int width, int height, Color fill)
    : width_(std::max(0, width)), height_(std::max(0, height)) {
  pixels_.assign(pixelCount(), fill);
}

void Framebuffer::clear(Color c) {
  std::fill(pixels_.begin(), pixels_.end(), c);
}

void Framebuffer::blit(const Framebuffer& src, int dstX, int dstY) {
  copyRect(src, src.rect(), dstX, dstY);
}

void Framebuffer::copyRect(const Framebuffer& src, const RectI& srcRect,
                           int dstX, int dstY) {
  const RectI from = srcRect.clipped(src.rect());
  if (from.empty()) return;
  // Destination rect for the clipped source, then clip to this buffer.
  const int offX = dstX + (from.x - srcRect.x);
  const int offY = dstY + (from.y - srcRect.y);
  const RectI target = RectI{offX, offY, from.w, from.h}.clipped(rect());
  if (target.empty()) return;
  for (int y = 0; y < target.h; ++y) {
    const int sy = from.y + (target.y - offY) + y;
    const int sx = from.x + (target.x - offX);
    const Color* srcRow = &src.pixels_[src.index(sx, sy)];
    Color* dstRow = &pixels_[index(target.x, target.y + y)];
    std::copy(srcRow, srcRow + target.w, dstRow);
  }
}

std::uint64_t Framebuffer::contentHash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  for (const Color& c : pixels_) {
    mix(c.r);
    mix(c.g);
    mix(c.b);
    mix(c.a);
  }
  return h;
}

std::size_t Framebuffer::countPixels(Color c) const {
  return static_cast<std::size_t>(
      std::count(pixels_.begin(), pixels_.end(), c));
}

std::string Framebuffer::toPpm() const {
  std::string out = "P6\n" + std::to_string(width_) + " " +
                    std::to_string(height_) + "\n255\n";
  out.reserve(out.size() + pixelCount() * 3);
  for (const Color& c : pixels_) {
    out.push_back(static_cast<char>(c.r));
    out.push_back(static_cast<char>(c.g));
    out.push_back(static_cast<char>(c.b));
  }
  return out;
}

bool Framebuffer::savePpm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    SVQ_ERROR << "cannot open " << path << " for writing";
    return false;
  }
  const std::string data = toPpm();
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

}  // namespace svq::render
