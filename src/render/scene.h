// scene.h — the renderable scene model and the scene renderer.
//
// A SceneModel is the complete, serializable description of one frame of
// the application: which trajectory sits in which small-multiple cell,
// each cell's group background, per-segment highlight state from the
// query engine, the temporal window and the stereo settings. The cluster
// master broadcasts this model; each render node draws it through a
// Canvas restricted to its own tile (sort-first).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "render/camera.h"
#include "render/color.h"
#include "render/framebuffer.h"
#include "render/rasterizer.h"
#include "render/spacetime.h"
#include "traj/dataset.h"

namespace svq::render {

/// One small-multiple cell: a trajectory placed in a pixel rect.
struct CellView {
  std::uint32_t trajectoryIndex = 0;  ///< index into the dataset
  RectI rect;                         ///< global wall pixels
  Color background = colors::kDarkBg;
  /// Per-segment highlight (brush index or kNoHighlight); empty = none.
  std::vector<std::int8_t> segmentHighlights;
  /// Optional label drawn in the cell's top-left corner.
  std::string label;
  /// Fraction of this cell's backing data with an exact verdict (anytime
  /// query refinement, core/progressive.h). 1.0 = exact/converged — the
  /// common case, drawn (and hashed) exactly as before this field
  /// existed; < 1.0 draws a coverage strip along the cell's bottom edge.
  float coverage = 1.0f;
};

/// Full frame description.
struct SceneModel {
  std::vector<CellView> cells;
  StereoSettings stereo;
  float arenaRadiusCm = 50.0f;
  /// Temporal filter [t0, t1]; {0, +inf} means no filtering.
  Vec2 timeWindow{0.0f, 1e9f};
  TrajectoryStyle style;
  /// Generation of the query result the highlights came from (0 = none /
  /// one-shot). Lets render nodes detect highlight-only frame changes.
  std::uint64_t queryGeneration = 0;
  bool drawArenaOutline = true;
  bool drawCellBorder = true;
  Color wallBackground = colors::kBlack;
};

/// Per-frame render statistics (for the benchmark harness).
struct RenderStats {
  std::size_t cellsDrawn = 0;
  std::size_t cellsCulled = 0;
  std::size_t segmentsDrawn = 0;
};

/// Renders the scene for one eye through the given canvas. Only cells
/// intersecting canvas.region are drawn (sort-first culling); the canvas
/// background is cleared first with scene.wallBackground.
///
/// The dataset provides trajectory geometry; scene cells reference it by
/// index. Returns render statistics.
RenderStats renderScene(const SceneModel& scene,
                        const traj::TrajectoryDataset& dataset,
                        Canvas canvas, Eye eye);

/// Renders one cell (no background clear); exposed for unit tests.
void renderCell(const SceneModel& scene, const CellView& cell,
                const traj::TrajectoryDataset& dataset, Canvas canvas,
                Eye eye, RenderStats& stats);

// --- content hashing ---------------------------------------------------------
// The dirty-cell pipeline (render/pipeline.h) and the delta scene
// broadcast (cluster/scene_serde.h) both need to answer "did this cell's
// pixels change?" without rasterizing. These FNV-1a hashes cover every
// input that renderCell reads, so key equality implies pixel equality.

/// Hash of the scene-wide fields that affect every cell's pixels (stereo,
/// window, style, flags, arena radius, wall background). Deliberately
/// excludes `queryGeneration`: it identifies the highlight *source*, not
/// the pixels, and would dirty every cell every frame.
std::uint64_t sceneStateHash(const SceneModel& scene);

/// Content hash of one cell folded over `sceneHash`: trajectory index,
/// rect, background, per-segment highlights and label.
std::uint64_t cellContentHash(const CellView& cell, std::uint64_t sceneHash);

/// cellContentHash for every cell of the scene (shared sceneStateHash).
std::vector<std::uint64_t> sceneCellHashes(const SceneModel& scene);

}  // namespace svq::render
