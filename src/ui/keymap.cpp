#include "ui/keymap.h"

namespace svq::ui {

std::optional<Event> mapKey(char key, KeymapState& state) {
  if (key >= '1' && key <= '9') {
    return LayoutSwitchEvent{static_cast<std::uint8_t>(key - '1')};
  }
  switch (key) {
    case 'r':
      state.activeBrush = 0;
      return std::nullopt;  // mode change only
    case 'g':
      state.activeBrush = 1;
      return std::nullopt;
    case 'b':
      state.activeBrush = 2;
      return std::nullopt;
    case 'c':
      return BrushClearEvent{state.activeBrush};
    case 'C':
      return BrushClearEvent{255};
    case 'n':
      return PageEvent{+1};
    case 'p':
      return PageEvent{-1};
    case '[':
      state.depthOffsetCm -= state.depthStepCm;
      return DepthOffsetEvent{state.depthOffsetCm};
    case ']':
      state.depthOffsetCm += state.depthStepCm;
      return DepthOffsetEvent{state.depthOffsetCm};
    case '-':
      state.timeScaleCmPerS =
          std::max(0.0f, state.timeScaleCmPerS - state.timeScaleStep);
      return TimeScaleEvent{state.timeScaleCmPerS};
    case '=':
      state.timeScaleCmPerS += state.timeScaleStep;
      return TimeScaleEvent{state.timeScaleCmPerS};
    case '0':
      return TimeWindowEvent{0.0f, 1e9f};
    default:
      return std::nullopt;
  }
}

}  // namespace svq::ui
