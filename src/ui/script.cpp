#include <bit>
#include "ui/script.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace svq::ui {

namespace {
constexpr std::uint32_t kScriptMagic = 0x53565153u;  // "SVQS"

/// Smallest serialized TimedEvent: 8-byte stamp + 1-byte event tag +
/// 4-byte note length. Bounds the trusted event count on deserialize.
constexpr std::size_t kMinEventBytes = 8 + 1 + 4;
}  // namespace

void InputScript::record(double timeS, Event e, std::string note) {
  if (!std::isfinite(timeS)) timeS = durationS();
  TimedEvent timed{timeS, std::move(e), std::move(note)};
  if (events_.empty() || events_.back().timeS <= timeS) {
    events_.push_back(std::move(timed));
    return;
  }
  // Out-of-order stamp (merged recorders, clock hiccups): stable insert
  // after every event at or before this stamp, so replay order stays the
  // record order among equal stamps.
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), timeS,
      [](double t, const TimedEvent& ev) { return t < ev.timeS; });
  events_.insert(pos, std::move(timed));
}

void InputScript::replay(
    const std::function<void(const TimedEvent&)>& sink) const {
  for (const TimedEvent& e : events_) sink(e);
}

net::MessageBuffer InputScript::serialize() const {
  net::MessageBuffer buf;
  buf.putU32(kScriptMagic);
  buf.putU32(static_cast<std::uint32_t>(events_.size()));
  for (const TimedEvent& e : events_) {
    buf.putU64(std::bit_cast<std::uint64_t>(e.timeS));
    serializeEvent(buf, e.event);
    buf.putString(e.note);
  }
  return buf;
}

std::optional<InputScript> InputScript::deserialize(net::MessageBuffer buf) {
  try {
    buf.rewind();
    if (buf.getU32() != kScriptMagic) return std::nullopt;
    const std::uint32_t n = buf.getU32();
    // A corrupt count must never size an allocation or a loop beyond what
    // the payload can actually hold.
    if (n > buf.remaining() / kMinEventBytes) return std::nullopt;
    InputScript script;
    for (std::uint32_t i = 0; i < n; ++i) {
      TimedEvent e;
      e.timeS = std::bit_cast<double>(buf.getU64());
      // A NaN stamp is unorderable: it breaks the sort below (strict weak
      // ordering) and every downstream duration computation.
      if (!std::isfinite(e.timeS)) return std::nullopt;
      e.event = deserializeEvent(buf);
      e.note = buf.getString();
      script.events_.push_back(std::move(e));
    }
    std::stable_sort(script.events_.begin(), script.events_.end(),
                     [](const TimedEvent& a, const TimedEvent& b) {
                       return a.timeS < b.timeS;
                     });
    return script;
  } catch (const net::MessageError&) {
    return std::nullopt;
  }
}

bool InputScript::saveBinary(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    SVQ_ERROR << "cannot open " << path << " for writing";
    return false;
  }
  const auto buf = serialize();
  out.write(reinterpret_cast<const char*>(buf.bytes().data()),
            static_cast<std::streamsize>(buf.size()));
  return static_cast<bool>(out);
}

std::optional<InputScript> InputScript::loadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string data = ss.str();
  std::vector<std::uint8_t> bytes(data.begin(), data.end());
  return deserialize(net::MessageBuffer(std::move(bytes)));
}

}  // namespace svq::ui
