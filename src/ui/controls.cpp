#include "ui/controls.h"

#include <cmath>

namespace svq::ui {

void Slider::set(float v) {
  v = svq::clamp(v, min_, max_);
  if (step_ > 0.0f) {
    v = min_ + std::round((v - min_) / step_) * step_;
    v = svq::clamp(v, min_, max_);
  }
  value_ = v;
}

void RangeSlider::setLo(float v) {
  lo_ = svq::clamp(v, min_, hi_);
}

void RangeSlider::setHi(float v) {
  hi_ = svq::clamp(v, lo_, max_);
}

void RangeSlider::setRange(float lo, float hi) {
  if (lo > hi) std::swap(lo, hi);
  lo_ = svq::clamp(lo, min_, max_);
  hi_ = svq::clamp(hi, min_, max_);
}

}  // namespace svq::ui
