// keymap.h — keyboard-to-event mapping.
//
// §IV.C.2: "The user can switch between a number of configurations by
// pressing a number on the keypad: '1', '2', etc." This module models the
// application's keyboard interface: number keys select layout presets,
// letter keys select brushes / clear paint / page through groups, and
// bracket keys nudge the ergonomic sliders. Pure mapping, so the binding
// table is testable without any windowing toolkit.
#pragma once

#include <optional>

#include "ui/events.h"

namespace svq::ui {

/// Modeless keyboard state (the active brush radius and slider steps).
struct KeymapState {
  std::uint8_t activeBrush = 0;
  float brushRadiusCm = 5.0f;
  float depthOffsetCm = 0.0f;
  float timeScaleCmPerS = 0.25f;
  float depthStepCm = 2.0f;
  float timeScaleStep = 0.05f;
};

/// Maps one key press to an application event, updating sticky state
/// (active brush, slider values). Returns nullopt for unbound keys.
///
/// Bindings:
///   '1'..'9'  switch layout preset (index key-1)
///   'r','g','b' select red/green/blue brush (indices 0/1/2)
///   'c'       clear the active brush's paint
///   'C'       clear all paint
///   'n','p'   next/previous page in all groups
///   '['/']'   depth-plane offset down/up
///   '-'/'='   time-scale exaggeration down/up
///   '0'       reset the temporal filter to the full range
std::optional<Event> mapKey(char key, KeymapState& state);

}  // namespace svq::ui
