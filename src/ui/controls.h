// controls.h — slider models for the interactive controls.
//
// The application exposes a temporal range slider and the two ergonomic
// stereo sliders (§IV.C.2). These are pure value models (clamping,
// stepping, normalized positions) so the interaction logic is testable
// without any real widget toolkit.
#pragma once

#include "render/camera.h"
#include "util/geometry.h"

namespace svq::ui {

/// A scalar slider with bounds and an optional step quantum.
class Slider {
 public:
  Slider(float min, float max, float value, float step = 0.0f)
      : min_(min), max_(max), step_(step) {
    set(value);
  }

  float value() const { return value_; }
  float min() const { return min_; }
  float max() const { return max_; }

  /// Clamps (and snaps to step when configured).
  void set(float v);

  /// Position in [0,1] along the track.
  float normalized() const {
    return max_ > min_ ? (value_ - min_) / (max_ - min_) : 0.0f;
  }
  void setNormalized(float u) { set(min_ + (max_ - min_) * u); }

 private:
  float min_;
  float max_;
  float step_;
  float value_ = 0.0f;
};

/// Two-thumb range slider for the temporal filter. Maintains lo <= hi.
class RangeSlider {
 public:
  RangeSlider(float min, float max) : min_(min), max_(max), lo_(min), hi_(max) {}

  float lo() const { return lo_; }
  float hi() const { return hi_; }
  float min() const { return min_; }
  float max() const { return max_; }

  void setLo(float v);
  void setHi(float v);
  void setRange(float lo, float hi);
  /// Full range (no filtering).
  void reset() {
    lo_ = min_;
    hi_ = max_;
  }
  bool isFullRange() const { return lo_ <= min_ && hi_ >= max_; }

 private:
  float min_;
  float max_;
  float lo_;
  float hi_;
};

/// The ergonomic stereo control panel: depth-plane offset + time-scale
/// exaggeration, projected into StereoSettings. Slider ranges follow the
/// comfort envelope for the paper's wall-at-3m viewing geometry.
class StereoControls {
 public:
  StereoControls()
      : depthOffset_(-40.0f, 40.0f, 0.0f), timeScale_(0.0f, 1.0f, 0.25f) {}

  Slider& depthOffsetCm() { return depthOffset_; }
  Slider& timeScaleCmPerS() { return timeScale_; }
  const Slider& depthOffsetCm() const { return depthOffset_; }
  const Slider& timeScaleCmPerS() const { return timeScale_; }

  /// Applies the slider state onto stereo settings.
  void applyTo(render::StereoSettings& s) const {
    s.depthOffsetCm = depthOffset_.value();
    s.timeScaleCmPerS = timeScale_.value();
  }

  /// True iff the current settings keep the worst-case parallax of a
  /// trajectory lasting maxDurationS within the comfort bound.
  bool comfortable(const render::StereoSettings& base,
                   float maxDurationS) const {
    render::StereoSettings s = base;
    applyTo(s);
    return render::OrthoStereoCamera(s).comfortable(maxDurationS);
  }

 private:
  Slider depthOffset_;
  Slider timeScale_;
};

}  // namespace svq::ui
