#include "ui/events.h"

namespace svq::ui {

namespace {

enum class EventKind : std::uint8_t {
  kBrushStroke = 0,
  kBrushClear,
  kTimeWindow,
  kDepthOffset,
  kTimeScale,
  kLayoutSwitch,
  kGroupDefine,
  kGroupClear,
  kPage,
};

template <typename T>
void putOptional(net::MessageBuffer& buf, const std::optional<T>& v,
                 void (*put)(net::MessageBuffer&, T)) {
  buf.putBool(v.has_value());
  if (v) put(buf, *v);
}

template <typename T>
std::optional<T> getOptional(net::MessageBuffer& buf,
                             T (*get)(net::MessageBuffer&)) {
  if (!buf.getBool()) return std::nullopt;
  return get(buf);
}

}  // namespace

std::string eventTypeName(const Event& e) {
  struct Visitor {
    std::string operator()(const BrushStrokeEvent&) { return "brush_stroke"; }
    std::string operator()(const BrushClearEvent&) { return "brush_clear"; }
    std::string operator()(const TimeWindowEvent&) { return "time_window"; }
    std::string operator()(const DepthOffsetEvent&) { return "depth_offset"; }
    std::string operator()(const TimeScaleEvent&) { return "time_scale"; }
    std::string operator()(const LayoutSwitchEvent&) { return "layout_switch"; }
    std::string operator()(const GroupDefineEvent&) { return "group_define"; }
    std::string operator()(const GroupClearEvent&) { return "group_clear"; }
    std::string operator()(const PageEvent&) { return "page"; }
  };
  return std::visit(Visitor{}, e);
}

void serializeMetaFilter(net::MessageBuffer& buf, const traj::MetaFilter& f) {
  putOptional<traj::CaptureSide>(
      buf, f.side, +[](net::MessageBuffer& b, traj::CaptureSide s) {
        b.putU8(static_cast<std::uint8_t>(s));
      });
  putOptional<traj::JourneyDirection>(
      buf, f.direction, +[](net::MessageBuffer& b, traj::JourneyDirection d) {
        b.putU8(static_cast<std::uint8_t>(d));
      });
  putOptional<traj::SeedState>(
      buf, f.seed, +[](net::MessageBuffer& b, traj::SeedState s) {
        b.putU8(static_cast<std::uint8_t>(s));
      });
  putOptional<float>(
      buf, f.minDurationS,
      +[](net::MessageBuffer& b, float v) { b.putF32(v); });
  putOptional<float>(
      buf, f.maxDurationS,
      +[](net::MessageBuffer& b, float v) { b.putF32(v); });
}

traj::MetaFilter deserializeMetaFilter(net::MessageBuffer& buf) {
  traj::MetaFilter f;
  f.side = getOptional<traj::CaptureSide>(
      buf, +[](net::MessageBuffer& b) {
        return static_cast<traj::CaptureSide>(b.getU8());
      });
  f.direction = getOptional<traj::JourneyDirection>(
      buf, +[](net::MessageBuffer& b) {
        return static_cast<traj::JourneyDirection>(b.getU8());
      });
  f.seed = getOptional<traj::SeedState>(
      buf, +[](net::MessageBuffer& b) {
        return static_cast<traj::SeedState>(b.getU8());
      });
  f.minDurationS = getOptional<float>(
      buf, +[](net::MessageBuffer& b) { return b.getF32(); });
  f.maxDurationS = getOptional<float>(
      buf, +[](net::MessageBuffer& b) { return b.getF32(); });
  return f;
}

void serializeEvent(net::MessageBuffer& buf, const Event& e) {
  struct Visitor {
    net::MessageBuffer& buf;
    void operator()(const BrushStrokeEvent& ev) {
      buf.putU8(static_cast<std::uint8_t>(EventKind::kBrushStroke));
      buf.putU8(ev.brushIndex);
      buf.putVec2(ev.centerCm);
      buf.putF32(ev.radiusCm);
    }
    void operator()(const BrushClearEvent& ev) {
      buf.putU8(static_cast<std::uint8_t>(EventKind::kBrushClear));
      buf.putU8(ev.brushIndex);
    }
    void operator()(const TimeWindowEvent& ev) {
      buf.putU8(static_cast<std::uint8_t>(EventKind::kTimeWindow));
      buf.putF32(ev.t0);
      buf.putF32(ev.t1);
    }
    void operator()(const DepthOffsetEvent& ev) {
      buf.putU8(static_cast<std::uint8_t>(EventKind::kDepthOffset));
      buf.putF32(ev.offsetCm);
    }
    void operator()(const TimeScaleEvent& ev) {
      buf.putU8(static_cast<std::uint8_t>(EventKind::kTimeScale));
      buf.putF32(ev.cmPerSecond);
    }
    void operator()(const LayoutSwitchEvent& ev) {
      buf.putU8(static_cast<std::uint8_t>(EventKind::kLayoutSwitch));
      buf.putU8(ev.presetIndex);
    }
    void operator()(const GroupDefineEvent& ev) {
      buf.putU8(static_cast<std::uint8_t>(EventKind::kGroupDefine));
      buf.putU8(ev.groupId);
      buf.putRect(ev.cellRect);
      serializeMetaFilter(buf, ev.filter);
      buf.putU8(ev.colorIndex);
      buf.putString(ev.name);
    }
    void operator()(const GroupClearEvent& ev) {
      buf.putU8(static_cast<std::uint8_t>(EventKind::kGroupClear));
      buf.putU8(ev.groupId);
    }
    void operator()(const PageEvent& ev) {
      buf.putU8(static_cast<std::uint8_t>(EventKind::kPage));
      buf.putU8(static_cast<std::uint8_t>(ev.direction));
    }
  };
  std::visit(Visitor{buf}, e);
}

Event deserializeEvent(net::MessageBuffer& buf) {
  const auto kind = static_cast<EventKind>(buf.getU8());
  switch (kind) {
    case EventKind::kBrushStroke: {
      BrushStrokeEvent ev;
      ev.brushIndex = buf.getU8();
      ev.centerCm = buf.getVec2();
      ev.radiusCm = buf.getF32();
      return ev;
    }
    case EventKind::kBrushClear: {
      BrushClearEvent ev;
      ev.brushIndex = buf.getU8();
      return ev;
    }
    case EventKind::kTimeWindow: {
      TimeWindowEvent ev;
      ev.t0 = buf.getF32();
      ev.t1 = buf.getF32();
      return ev;
    }
    case EventKind::kDepthOffset: {
      DepthOffsetEvent ev;
      ev.offsetCm = buf.getF32();
      return ev;
    }
    case EventKind::kTimeScale: {
      TimeScaleEvent ev;
      ev.cmPerSecond = buf.getF32();
      return ev;
    }
    case EventKind::kLayoutSwitch: {
      LayoutSwitchEvent ev;
      ev.presetIndex = buf.getU8();
      return ev;
    }
    case EventKind::kGroupDefine: {
      GroupDefineEvent ev;
      ev.groupId = buf.getU8();
      ev.cellRect = buf.getRect();
      ev.filter = deserializeMetaFilter(buf);
      ev.colorIndex = buf.getU8();
      ev.name = buf.getString();
      return ev;
    }
    case EventKind::kGroupClear: {
      GroupClearEvent ev;
      ev.groupId = buf.getU8();
      return ev;
    }
    case EventKind::kPage: {
      PageEvent ev;
      ev.direction = static_cast<std::int8_t>(buf.getU8());
      return ev;
    }
  }
  throw net::MessageError("unknown event kind");
}

}  // namespace svq::ui
