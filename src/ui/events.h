// events.h — the application's interaction vocabulary.
//
// Every interactive feature of §IV.C.2 is an event: painting with the
// coordinated brush, dragging the temporal range slider, the two
// ergonomic stereo sliders, switching the small-multiple layout with the
// keypad, defining/clearing trajectory groups, and paging through data.
// Events are values (std::variant), serializable for session record/replay
// and for distribution to cluster ranks.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "net/message.h"
#include "traj/filter.h"
#include "util/geometry.h"

namespace svq::ui {

/// Paint one brush dab: a disc in *arena coordinates* (cm). The user
/// physically paints on one cell's background, but the brush canvas is
/// shared arena space, which is what makes the query coordinated across
/// all cells.
struct BrushStrokeEvent {
  std::uint8_t brushIndex = 0;  ///< which paintbrush color
  Vec2 centerCm;
  float radiusCm = 5.0f;
  bool operator==(const BrushStrokeEvent&) const = default;
};

/// Erase all strokes of one brush (or all brushes when brushIndex == 255).
struct BrushClearEvent {
  std::uint8_t brushIndex = 255;
  bool operator==(const BrushClearEvent&) const = default;
};

/// Temporal range-slider: show only movement within [t0, t1] seconds.
struct TimeWindowEvent {
  float t0 = 0.0f;
  float t1 = 1e9f;
  bool operator==(const TimeWindowEvent&) const = default;
};

/// Ergonomic slider 1: push content in front of / behind the display.
struct DepthOffsetEvent {
  float offsetCm = 0.0f;
  bool operator==(const DepthOffsetEvent&) const = default;
};

/// Ergonomic slider 2: (de)exaggerate the time axis.
struct TimeScaleEvent {
  float cmPerSecond = 0.25f;
  bool operator==(const TimeScaleEvent&) const = default;
};

/// Keypad layout switch ('1', '2', ... select preset grids).
struct LayoutSwitchEvent {
  std::uint8_t presetIndex = 0;
  bool operator==(const LayoutSwitchEvent&) const = default;
};

/// Define (or redefine) a trajectory group: a rectangular bin of cells in
/// grid coordinates with a metadata filter and a background color index.
struct GroupDefineEvent {
  std::uint8_t groupId = 0;
  /// Grid-cell rect (columns/rows of the small-multiple grid).
  RectI cellRect;
  traj::MetaFilter filter;
  std::uint8_t colorIndex = 0;
  std::string name;
  bool operator==(const GroupDefineEvent&) const = default;
};

/// Remove one group (cells return to the default pool).
struct GroupClearEvent {
  std::uint8_t groupId = 0;
  bool operator==(const GroupClearEvent&) const = default;
};

/// Page through the data when a group holds more matches than cells.
struct PageEvent {
  std::int8_t direction = 1;  ///< +1 next page, -1 previous
  bool operator==(const PageEvent&) const = default;
};

using Event =
    std::variant<BrushStrokeEvent, BrushClearEvent, TimeWindowEvent,
                 DepthOffsetEvent, TimeScaleEvent, LayoutSwitchEvent,
                 GroupDefineEvent, GroupClearEvent, PageEvent>;

/// An event stamped with session time (seconds since session start) and an
/// optional free-text analyst note (the study's think-aloud annotations).
struct TimedEvent {
  double timeS = 0.0;
  Event event;
  std::string note;
};

/// Short type name for logs/coding ("brush_stroke", "time_window", ...).
std::string eventTypeName(const Event& e);

/// Binary (de)serialization for replay files and cluster distribution.
void serializeEvent(net::MessageBuffer& buf, const Event& e);
Event deserializeEvent(net::MessageBuffer& buf);

void serializeMetaFilter(net::MessageBuffer& buf, const traj::MetaFilter& f);
traj::MetaFilter deserializeMetaFilter(net::MessageBuffer& buf);

}  // namespace svq::ui
