// script.h — recorded interaction sessions.
//
// The pilot study is reproduced by replaying scripted analyst sessions:
// a time-stamped sequence of events with think-aloud notes. Scripts can be
// recorded from a live session, saved to a binary file, and replayed into
// the application (optionally time-compressed).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ui/events.h"

namespace svq::ui {

/// An ordered, time-stamped event sequence.
class InputScript {
 public:
  InputScript() = default;

  /// Appends an event, keeping the script sorted by timestamp: a stamp at
  /// or after the current end appends (the live-recording fast path); an
  /// out-of-order stamp is stably inserted at its time position; a
  /// non-finite stamp is clamped to the script's current end.
  void record(double timeS, Event e, std::string note = {});

  const std::vector<TimedEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  double durationS() const {
    return events_.empty() ? 0.0 : events_.back().timeS;
  }

  /// Invokes sink for every event in time order (record() and
  /// deserialize() both keep the event list sorted).
  void replay(const std::function<void(const TimedEvent&)>& sink) const;

  /// Serialization (round-trips through MessageBuffer).
  net::MessageBuffer serialize() const;
  static std::optional<InputScript> deserialize(net::MessageBuffer buf);

  bool saveBinary(const std::string& path) const;
  static std::optional<InputScript> loadBinary(const std::string& path);

 private:
  std::vector<TimedEvent> events_;
};

}  // namespace svq::ui
