#include "util/metrics.h"

#include <sstream>

namespace svq {

namespace {
bool hasPrefix(const std::string& name, const std::string& prefix) {
  return name.rfind(prefix, 0) == 0;
}
}  // namespace

std::uint64_t Histogram::quantile(double q) const {
  std::array<std::uint64_t, kBuckets + 1> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank over the cumulative bucket counts.
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i <= kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      // Bucket i holds values of bit width i: upper bound 2^i - 1.
      return i == 0 ? 0 : (i >= 64 ? ~0ULL : (1ULL << i) - 1);
    }
  }
  return ~0ULL;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::map<std::string, std::uint64_t> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  for (const auto& [name, g] : gauges_) {
    out[name] = g->value();
    out[name + ".peak"] = g->peak();
  }
  for (const auto& [name, h] : histograms_) {
    out[name + ".count"] = h->count();
    out[name + ".p50"] = h->quantile(0.5);
    out[name + ".p99"] = h->quantile(0.99);
  }
  return out;
}

std::map<std::string, std::uint64_t> MetricsRegistry::snapshot(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) {
    if (hasPrefix(name, prefix)) out[name] = c->value();
  }
  for (const auto& [name, g] : gauges_) {
    if (!hasPrefix(name, prefix)) continue;
    out[name] = g->value();
    out[name + ".peak"] = g->peak();
  }
  for (const auto& [name, h] : histograms_) {
    if (!hasPrefix(name, prefix)) continue;
    out[name + ".count"] = h->count();
    out[name + ".p50"] = h->quantile(0.5);
    out[name + ".p99"] = h->quantile(0.99);
  }
  return out;
}

std::string MetricsRegistry::dump(const std::string& prefix) const {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot(prefix)) {
    out << name << " = " << value << "\n";
  }
  return out.str();
}

void MetricsRegistry::resetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::reset(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) {
    if (hasPrefix(name, prefix)) c->reset();
  }
  for (auto& [name, g] : gauges_) {
    if (hasPrefix(name, prefix)) g->reset();
  }
  for (auto& [name, h] : histograms_) {
    if (hasPrefix(name, prefix)) h->reset();
  }
}

}  // namespace svq
