#include "util/metrics.h"

namespace svq {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

std::map<std::string, std::uint64_t> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  for (const auto& [name, g] : gauges_) {
    out[name] = g->value();
    out[name + ".peak"] = g->peak();
  }
  return out;
}

void MetricsRegistry::resetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
}

}  // namespace svq
