#include "util/metrics.h"

#include <sstream>

namespace svq {

namespace {
bool hasPrefix(const std::string& name, const std::string& prefix) {
  return name.rfind(prefix, 0) == 0;
}
}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

std::map<std::string, std::uint64_t> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  for (const auto& [name, g] : gauges_) {
    out[name] = g->value();
    out[name + ".peak"] = g->peak();
  }
  return out;
}

std::map<std::string, std::uint64_t> MetricsRegistry::snapshot(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) {
    if (hasPrefix(name, prefix)) out[name] = c->value();
  }
  for (const auto& [name, g] : gauges_) {
    if (!hasPrefix(name, prefix)) continue;
    out[name] = g->value();
    out[name + ".peak"] = g->peak();
  }
  return out;
}

std::string MetricsRegistry::dump(const std::string& prefix) const {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot(prefix)) {
    out << name << " = " << value << "\n";
  }
  return out.str();
}

void MetricsRegistry::resetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
}

void MetricsRegistry::reset(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) {
    if (hasPrefix(name, prefix)) c->reset();
  }
  for (auto& [name, g] : gauges_) {
    if (hasPrefix(name, prefix)) g->reset();
  }
}

}  // namespace svq
