#include "util/stopwatch.h"

#include <algorithm>

namespace svq {

void TimingStats::add(double seconds) {
  if (count_ == 0) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  sum_ += seconds;
  ++count_;
}

void TimingStats::reset() { *this = TimingStats{}; }

}  // namespace svq
