// stopwatch.h — wall-clock timing for the benchmark harness and frame stats.
#pragma once

#include <chrono>

namespace svq {

/// Monotonic stopwatch. start() on construction; elapsed*() are cheap reads.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsedMillis() const { return elapsedSeconds() * 1e3; }
  double elapsedMicros() const { return elapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Running mean/min/max accumulator for per-frame statistics.
class TimingStats {
 public:
  void add(double seconds);
  void reset();

  int count() const { return count_; }
  double mean() const { return count_ ? sum_ / count_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double total() const { return sum_; }

 private:
  int count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace svq
