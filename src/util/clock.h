// clock.h — injectable monotonic time source.
//
// Deadline enforcement (util/cancel.h, core::SessionService) needs a
// monotonic "now", but reading the hardware clock inside the apply path
// would make replay non-deterministic: whether a deadline fires would
// depend on the runner's wall-clock speed. The fix is the same one the
// fault injectors use for randomness — put the source behind an
// interface and inject it:
//
//   * SteadyClock — std::chrono::steady_clock, the production source;
//     steadyClock() returns a shared process-wide instance.
//   * ManualClock — time advances only when the harness says so. The
//     replay runner advances it by a fixed amount per recorded step, so
//     whether any deadline has expired is a pure function of the step
//     index — identical at every thread count, on every machine.
//
// Clocks report microseconds from an arbitrary epoch; only differences
// are meaningful. Implementations must be thread-safe (nowUs() is read
// from concurrent apply paths).
#pragma once

#include <atomic>
#include <cstdint>

namespace svq::util {

/// Monotonic microsecond source. nowUs() must never decrease and must be
/// safe to call from any thread.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::int64_t nowUs() const = 0;
};

/// Production source: std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  std::int64_t nowUs() const override;
};

/// Harness-driven source: time moves only via advance()/set(). Monotonic
/// as long as the harness never sets it backwards (set() clamps).
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::int64_t startUs = 0) : nowUs_(startUs) {}

  std::int64_t nowUs() const override {
    return nowUs_.load(std::memory_order_acquire);
  }

  void advance(std::int64_t deltaUs) {
    if (deltaUs > 0) nowUs_.fetch_add(deltaUs, std::memory_order_acq_rel);
  }

  /// Jumps to `targetUs` if it is ahead of the current time (monotonic:
  /// a stale setter can never rewind the clock under concurrent readers).
  void set(std::int64_t targetUs) {
    std::int64_t cur = nowUs_.load(std::memory_order_acquire);
    while (targetUs > cur &&
           !nowUs_.compare_exchange_weak(cur, targetUs,
                                         std::memory_order_acq_rel)) {
    }
  }

 private:
  std::atomic<std::int64_t> nowUs_;
};

/// The process-wide SteadyClock (what callers get when they inject
/// nothing). Never null.
const Clock* steadyClock();

}  // namespace svq::util
