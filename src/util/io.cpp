#include "util/io.h"

#include <array>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "util/logging.h"
#include "util/rng.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define SVQ_HAVE_FSYNC 1
#endif

namespace svq::io {

namespace {

/// Byte-at-a-time CRC32C table for the reflected polynomial 0x82F63B78.
std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = makeCrcTable();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~crc;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

bool fsyncFile(const std::string& path) {
#ifdef SVQ_HAVE_FSYNC
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;
#endif
}

bool fsyncParentDir(const std::string& path) {
#ifdef SVQ_HAVE_FSYNC
  std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;
#endif
}

bool atomicPublish(const std::string& tmpPath, const std::string& finalPath) {
  if (!fsyncFile(tmpPath)) {
    SVQ_ERROR << "io: fsync failed for " << tmpPath;
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmpPath, finalPath, ec);
  if (ec) {
    SVQ_ERROR << "io: rename " << tmpPath << " -> " << finalPath
              << " failed: " << ec.message();
    return false;
  }
  // Directory fsync makes the rename itself durable; failure here is
  // logged but not fatal (the data is already intact at finalPath).
  if (!fsyncParentDir(finalPath)) {
    SVQ_WARN << "io: directory fsync failed for " << finalPath;
  }
  return true;
}

Status atomicWriteFile(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::ioError();
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return Status::ioError();
    }
  }
  if (!atomicPublish(tmp, path)) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return Status::ioError();
  }
  return Status::ok();
}

FaultInjector::Draw FaultInjector::drawFor(std::uint64_t shard) const {
  // Per-shard stream derived from (seed, shard) only: recomputed from
  // scratch on every call, so the answer cannot depend on call order.
  std::uint64_t state = plan_.seed ^ (shard * 0x9E3779B97F4A7C15ULL);
  Rng rng(splitmix64(state));
  const double uEio = rng.uniform();
  const double uFlip = rng.uniform();
  const double uShort = rng.uniform();
  Draw d;
  d.bitIndex = rng.next();
  d.prefixFraction = rng.uniform();
  if (uEio < plan_.eioProbability) {
    d.kind = ReadFault::kEio;
  } else if (uFlip < plan_.bitFlipProbability) {
    d.kind = ReadFault::kBitFlip;
  } else if (uShort < plan_.shortReadProbability) {
    d.kind = ReadFault::kShortRead;
  }
  return d;
}

FaultInjector::ReadFault FaultInjector::faultFor(std::uint64_t shard) const {
  return drawFor(shard).kind;
}

Status FaultInjector::onRead(std::uint64_t shard, int attempt,
                             std::string& payload) {
  const Draw d = drawFor(shard);
  const bool transientActive =
      plan_.transientFailCount < 0 || attempt < plan_.transientFailCount;
  switch (d.kind) {
    case ReadFault::kNone:
      return Status::ok();
    case ReadFault::kEio:
      if (!transientActive) return Status::ok();
      ioErrors_.fetch_add(1, std::memory_order_relaxed);
      return Status::ioError(static_cast<std::int64_t>(shard));
    case ReadFault::kBitFlip: {
      // Persistent media corruption: the same bit is flipped on every
      // attempt. Surfaces through the caller's CRC check, never here.
      if (payload.empty()) return Status::ok();
      const std::uint64_t bit = d.bitIndex % (payload.size() * 8u);
      payload[bit / 8] = static_cast<char>(
          static_cast<unsigned char>(payload[bit / 8]) ^ (1u << (bit % 8)));
      bitFlips_.fetch_add(1, std::memory_order_relaxed);
      return Status::ok();
    }
    case ReadFault::kShortRead: {
      if (!transientActive) return Status::ok();
      const auto keep = static_cast<std::size_t>(
          d.prefixFraction * static_cast<double>(payload.size()));
      payload.resize(keep < payload.size() ? keep : payload.size() / 2);
      shortReads_.fetch_add(1, std::memory_order_relaxed);
      return Status::truncated(static_cast<std::int64_t>(shard));
    }
  }
  return Status::ok();
}

}  // namespace svq::io
