#include "util/arena.h"

namespace svq::util {

Arena& frameArena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace svq::util
