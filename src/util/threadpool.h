// threadpool.h — shared-memory work execution for SVQ.
//
// The visual-query engine and the software rasterizer both have
// embarrassingly parallel inner loops (per-trajectory query evaluation,
// per-scanline-band rasterization). This pool provides a blocking
// parallelFor over index ranges with static chunking, mirroring the
// `#pragma omp parallel for schedule(static)` idiom while remaining a
// plain C++ component that cluster render-nodes can each own privately.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace svq {

/// Fixed-size worker pool with a blocking parallel-for primitive.
///
/// Thread-safe: submit()/parallelFor() may be called from any thread
/// EXCEPT this pool's own workers. A nested parallelFor from inside a
/// worker would deadlock (the caller blocks on chunks that can only run
/// on the thread doing the blocking), so it is detected and rejected with
/// std::logic_error — run nested loops sequentially instead.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threadCount() const { return static_cast<unsigned>(workers_.size()); }

  /// Fire-and-forget task submission.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait();

  /// Runs body(i) for i in [begin, end), split into contiguous chunks of
  /// roughly equal size across the workers plus the calling thread.
  /// Blocks until all iterations complete. `grain` bounds the minimum chunk.
  void parallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& body,
                   std::size_t grain = 1);

  /// Chunked variant: body receives [chunkBegin, chunkEnd) so callers can
  /// hoist per-chunk state (e.g. an Rng or scratch buffer).
  /// Throws std::logic_error when called from one of this pool's own
  /// workers (nested parallelFor would deadlock).
  void parallelForChunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t grain = 1);

  /// True iff the calling thread is one of this pool's workers — i.e. a
  /// parallelFor here would be a (rejected) nested call.
  bool onWorkerThread() const;

  /// Process-wide default pool (sized to hardware concurrency).
  static ThreadPool& global();

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable allDone_;
  std::size_t inFlight_ = 0;
  bool stopping_ = false;
};

/// Convenience wrapper over ThreadPool::global().parallelFor.
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body,
                 std::size_t grain = 1);

}  // namespace svq
