// metrics.h — lightweight process-wide metrics registry.
//
// Out-of-core components (the shard cache, the batch SOM trainer) need to
// prove their resource claims: "resident bytes stayed under the budget",
// "the cache hit rate was 97%". Counters and gauges registered here are
// cheap atomics with stable addresses, looked up once by name and then
// bumped lock-free on hot paths; snapshot() gives benches and tests a
// consistent name→value view to assert against or print.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace svq {

/// Monotonically increasing event count (hits, misses, evictions...).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Up/down level (bytes resident, entries cached) with a high-water mark.
/// add() maintains peak() atomically; sub() must not underflow.
class Gauge {
 public:
  void add(std::uint64_t n) {
    const std::uint64_t now = value_.fetch_add(n, std::memory_order_relaxed) + n;
    std::uint64_t prev = peak_.load(std::memory_order_relaxed);
    while (prev < now &&
           !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }
  void sub(std::uint64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
  std::atomic<std::uint64_t> peak_{0};
};

/// Lock-free latency/size distribution with power-of-two buckets.
///
/// The session service needs p50/p99 apply latency per tenant mix without
/// a lock on the hot path. record() bumps one atomic bucket (bucket i
/// holds values whose bit width is i, i.e. [2^(i-1), 2^i)); quantile()
/// walks the cumulative counts and reports the bucket's upper bound — an
/// estimate that is exact to within 2x, always monotone in q, and stable
/// under concurrent recording. Values are whatever unit the caller picks
/// (the service records microseconds).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t value) {
    buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  /// Upper bound of the bucket holding the q-quantile sample (q in [0,1]);
  /// 0 when empty. quantile(0.5) / quantile(0.99) are the p50/p99 the
  /// registry snapshot exposes.
  std::uint64_t quantile(double q) const;

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  /// buckets_[0] counts zeros; buckets_[i] counts bit-width-i values.
  std::array<std::atomic<std::uint64_t>, kBuckets + 1> buckets_{};
};

/// Name-keyed registry. counter()/gauge() create on first use and return a
/// reference that stays valid for the registry's lifetime, so components
/// resolve their instruments once and touch only atomics afterwards.
class MetricsRegistry {
 public:
  /// Process-wide default registry.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Point-in-time copy of every instrument. Gauges contribute two
  /// entries: "<name>" (current) and "<name>.peak"; histograms three:
  /// "<name>.count", "<name>.p50" and "<name>.p99".
  std::map<std::string, std::uint64_t> snapshot() const;

  /// snapshot() restricted to instruments whose name starts with `prefix`
  /// — how benches and fault tests assert on one component's counters
  /// (e.g. a store's quarantine tallies) without reaching into internals.
  std::map<std::string, std::uint64_t> snapshot(const std::string& prefix) const;

  /// Printable "name = value" lines (sorted), optionally restricted to a
  /// prefix. Empty string when nothing matches.
  std::string dump(const std::string& prefix = "") const;

  /// Zeroes every registered instrument (tests and bench sweeps).
  void resetAll();

  /// Zeroes only instruments whose name starts with `prefix`, so a bench
  /// scenario can reset its own counters without disturbing others.
  void reset(const std::string& prefix);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace svq
