#include "util/rng.h"

#include <cmath>

namespace svq {

double Rng::normal() {
  if (hasCachedNormal_) {
    hasCachedNormal_ = false;
    return cachedNormal_;
  }
  // Box–Muller: two uniforms -> two independent standard normals.
  double u1 = uniform();
  // Guard against log(0).
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cachedNormal_ = r * std::sin(theta);
  hasCachedNormal_ = true;
  return r * std::cos(theta);
}

float Rng::wrappedCauchy(float rho) {
  if (rho <= 0.0f) return uniform(-kPi, kPi);
  if (rho >= 1.0f) return 0.0f;
  // Inverse-CDF sampling of the wrapped Cauchy distribution.
  const double u = uniform();
  const double r = static_cast<double>(rho);
  const double v = std::cos(2.0 * 3.14159265358979323846 * u);
  const double c = 2.0 * r / (1.0 + r * r);
  double angle = std::acos(svq::clamp((v + c) / (1.0 + c * v), -1.0, 1.0));
  if (chance(0.5)) angle = -angle;
  return static_cast<float>(angle);
}

float Rng::wrappedNormal(float mu, float sigma) {
  return wrapAngle(mu + static_cast<float>(normal(0.0, sigma)));
}

double Rng::exponential(double lambda) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

Vec2 Rng::inDisc(float radius) {
  // Rejection-free: sqrt of uniform radius^2 gives uniform area density.
  const float r = radius * std::sqrt(uniformF());
  return Vec2::fromAngle(uniform(-kPi, kPi)) * r;
}

}  // namespace svq
