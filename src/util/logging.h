// logging.h — minimal leveled logger.
//
// SVQ is a library first; logging defaults to warnings-and-above on stderr
// and is globally adjustable by applications. No global construction order
// hazards: state lives in function-local statics.
#pragma once

#include <sstream>
#include <string>

namespace svq {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the minimum level that will be emitted. Thread-safe.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emits a single log line (used by the SVQ_LOG macro; callable directly).
void logMessage(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { logMessage(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace svq

#define SVQ_LOG(level) \
  if (static_cast<int>(level) < static_cast<int>(::svq::logLevel())) { \
  } else ::svq::detail::LogLine(level)

#define SVQ_DEBUG SVQ_LOG(::svq::LogLevel::kDebug)
#define SVQ_INFO SVQ_LOG(::svq::LogLevel::kInfo)
#define SVQ_WARN SVQ_LOG(::svq::LogLevel::kWarn)
#define SVQ_ERROR SVQ_LOG(::svq::LogLevel::kError)
