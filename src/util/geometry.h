// geometry.h — small value-type linear algebra used throughout SVQ.
//
// The visualization operates in three coordinate flavours:
//   * arena space:  2D centimetres on the experimental arena (trajectory XY)
//   * wall space:   millimetres on the physical display wall surface
//   * pixel space:  integer framebuffer coordinates
// All of them use these Vec2/Vec3/AABB types; the semantic distinction is
// carried by the owning API, not the type.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <ostream>

namespace svq {

/// 2D vector of floats. Plain aggregate; value semantics throughout.
struct Vec2 {
  float x = 0.0f;
  float y = 0.0f;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(float s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(float s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  constexpr Vec2& operator*=(float s) { x *= s; y *= s; return *this; }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr float dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// 2D cross product (z component of the 3D cross of the embedded vectors).
  constexpr float cross(Vec2 o) const { return x * o.y - y * o.x; }
  float norm() const { return std::sqrt(dot(*this)); }
  constexpr float norm2() const { return dot(*this); }
  /// Unit vector; returns {0,0} for the zero vector rather than NaN.
  Vec2 normalized() const {
    const float n = norm();
    return n > 0.0f ? Vec2{x / n, y / n} : Vec2{};
  }
  /// Counter-clockwise perpendicular.
  constexpr Vec2 perp() const { return {-y, x}; }
  /// Polar angle in radians, in (-pi, pi].
  float angle() const { return std::atan2(y, x); }

  static Vec2 fromAngle(float radians) {
    return {std::cos(radians), std::sin(radians)};
  }
};

constexpr Vec2 operator*(float s, Vec2 v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

/// 3D vector of floats. Z carries time in the space-time cube encoding.
struct Vec3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(Vec3 o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr bool operator==(const Vec3&) const = default;

  constexpr float dot(Vec3 o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(Vec3 o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  float norm() const { return std::sqrt(dot(*this)); }
  constexpr float norm2() const { return dot(*this); }
  Vec3 normalized() const {
    const float n = norm();
    return n > 0.0f ? Vec3{x / n, y / n, z / n} : Vec3{};
  }
  constexpr Vec2 xy() const { return {x, y}; }
};

constexpr Vec3 operator*(float s, Vec3 v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, Vec3 v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

/// Linear interpolation; t is not clamped.
constexpr float lerp(float a, float b, float t) { return a + (b - a) * t; }
constexpr Vec2 lerp(Vec2 a, Vec2 b, float t) { return a + (b - a) * t; }
constexpr Vec3 lerp(Vec3 a, Vec3 b, float t) { return a + (b - a) * t; }

/// Axis-aligned 2D box. Empty (invalid) until the first expand().
struct AABB2 {
  Vec2 min{std::numeric_limits<float>::max(),
           std::numeric_limits<float>::max()};
  Vec2 max{std::numeric_limits<float>::lowest(),
           std::numeric_limits<float>::lowest()};

  constexpr bool valid() const { return min.x <= max.x && min.y <= max.y; }
  constexpr Vec2 size() const { return max - min; }
  constexpr Vec2 center() const { return (min + max) * 0.5f; }
  constexpr float area() const {
    return valid() ? (max.x - min.x) * (max.y - min.y) : 0.0f;
  }

  void expand(Vec2 p) {
    min.x = std::min(min.x, p.x); min.y = std::min(min.y, p.y);
    max.x = std::max(max.x, p.x); max.y = std::max(max.y, p.y);
  }
  void expand(const AABB2& o) {
    if (!o.valid()) return;
    expand(o.min);
    expand(o.max);
  }
  constexpr bool contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  constexpr bool intersects(const AABB2& o) const {
    return valid() && o.valid() &&
           min.x <= o.max.x && max.x >= o.min.x &&
           min.y <= o.max.y && max.y >= o.min.y;
  }
  /// Grow symmetrically by `m` on each side.
  constexpr AABB2 inflated(float m) const {
    return {{min.x - m, min.y - m}, {max.x + m, max.y + m}};
  }

  static constexpr AABB2 of(Vec2 lo, Vec2 hi) { return {lo, hi}; }
};

/// Axis-aligned 3D box (space-time extent of a trajectory).
struct AABB3 {
  Vec3 min{std::numeric_limits<float>::max(),
           std::numeric_limits<float>::max(),
           std::numeric_limits<float>::max()};
  Vec3 max{std::numeric_limits<float>::lowest(),
           std::numeric_limits<float>::lowest(),
           std::numeric_limits<float>::lowest()};

  constexpr bool valid() const {
    return min.x <= max.x && min.y <= max.y && min.z <= max.z;
  }
  constexpr Vec3 size() const { return max - min; }
  constexpr Vec3 center() const { return (min + max) * 0.5f; }

  void expand(Vec3 p) {
    min.x = std::min(min.x, p.x); min.y = std::min(min.y, p.y);
    min.z = std::min(min.z, p.z);
    max.x = std::max(max.x, p.x); max.y = std::max(max.y, p.y);
    max.z = std::max(max.z, p.z);
  }
  constexpr bool contains(Vec3 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y &&
           p.z >= min.z && p.z <= max.z;
  }
  constexpr AABB2 xy() const { return {min.xy(), max.xy()}; }
};

/// Integer rectangle in pixel space: [x, x+w) x [y, y+h).
struct RectI {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;

  constexpr bool operator==(const RectI&) const = default;
  constexpr bool empty() const { return w <= 0 || h <= 0; }
  constexpr long long areaPx() const {
    return empty() ? 0 : static_cast<long long>(w) * h;
  }
  constexpr bool contains(int px, int py) const {
    return px >= x && px < x + w && py >= y && py < y + h;
  }
  constexpr bool intersects(const RectI& o) const {
    return !empty() && !o.empty() &&
           x < o.x + o.w && x + w > o.x && y < o.y + o.h && y + h > o.y;
  }
  /// Intersection; empty rect if disjoint.
  constexpr RectI clipped(const RectI& o) const {
    const int nx = std::max(x, o.x);
    const int ny = std::max(y, o.y);
    const int nx2 = std::min(x + w, o.x + o.w);
    const int ny2 = std::min(y + h, o.y + o.h);
    return {nx, ny, std::max(0, nx2 - nx), std::max(0, ny2 - ny)};
  }
};

inline std::ostream& operator<<(std::ostream& os, const RectI& r) {
  return os << '[' << r.x << ',' << r.y << ' ' << r.w << 'x' << r.h << ']';
}

constexpr float kPi = 3.14159265358979323846f;
constexpr float kTwoPi = 2.0f * kPi;

/// Wrap an angle into (-pi, pi].
inline float wrapAngle(float a) {
  a = std::fmod(a + kPi, kTwoPi);
  if (a < 0.0f) a += kTwoPi;
  return a - kPi;
}

/// Degrees -> radians.
constexpr float radians(float deg) { return deg * (kPi / 180.0f); }
/// Radians -> degrees.
constexpr float degrees(float rad) { return rad * (180.0f / kPi); }

template <typename T>
constexpr T clamp(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace svq
