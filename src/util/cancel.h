// cancel.h — cooperative cancellation and deadline budgets.
//
// The latency discipline the wall promises (one brush dab must never
// wedge a node) needs a way to abandon work that is already running.
// Nothing here is preemptive: long loops — query re-classification,
// per-cell rasterization — poll a Cancellation at chunk granularity and
// unwind cleanly, leaving their caches consistent (partial results
// discarded, dirty flags preserved, never a torn publish).
//
//   * CancelToken — a shared explicit kill switch. Copies observe the
//     same flag; requestCancel() from any thread is seen by every
//     holder. Latched: once cancelled, always cancelled.
//   * Deadline — a budget against an injectable util::Clock. Production
//     uses steadyClock(); replay injects a ManualClock so expiry is a
//     pure function of the recorded step index, not of runner speed.
//   * Cancellation — what worker loops actually take: an optional token
//     plus an optional deadline, folded into one shouldStop() poll and
//     a reason() for the typed status the caller reports
//     (core::Status kCancelled vs kDeadlineExceeded).
//
// Polling cost: shouldStop() is one relaxed atomic load when only a
// token is set; a deadline adds one clock read. Chunk loops that find
// even that too hot can poll every Nth chunk — expiry granularity is the
// chunk, by design.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/clock.h"

namespace svq::util {

/// Shared, latched cancellation flag. Copyable handle; all copies
/// observe the same underlying flag.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void requestCancel() { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// A time budget against an injected Clock. Default-constructed (or
/// unlimited()) deadlines never expire.
class Deadline {
 public:
  Deadline() = default;

  /// Never expires.
  static Deadline unlimited() { return Deadline(); }

  /// Expires `budgetUs` microseconds after `clock`'s current time. A
  /// null clock means steadyClock(); budgetUs <= 0 is already expired.
  static Deadline after(std::int64_t budgetUs,
                        const Clock* clock = nullptr) {
    Deadline d;
    d.clock_ = clock != nullptr ? clock : steadyClock();
    d.expiryUs_ = d.clock_->nowUs() + budgetUs;
    return d;
  }

  bool isUnlimited() const { return clock_ == nullptr; }
  bool expired() const {
    return clock_ != nullptr && clock_->nowUs() >= expiryUs_;
  }
  /// Remaining budget in microseconds; <= 0 when expired, and a large
  /// positive value for unlimited deadlines.
  std::int64_t remainingUs() const {
    if (clock_ == nullptr) return INT64_MAX;
    return expiryUs_ - clock_->nowUs();
  }

 private:
  const Clock* clock_ = nullptr;  ///< nullptr = unlimited
  std::int64_t expiryUs_ = 0;
};

/// Why a Cancellation fired — maps 1:1 onto the typed statuses the apply
/// path reports (core::Status kCancelled / kDeadlineExceeded).
enum class CancelReason : std::uint8_t {
  kNone = 0,
  kCancelled = 1,         ///< explicit CancelToken
  kDeadlineExceeded = 2,  ///< Deadline budget ran out
};

/// What cancellable loops take by const reference: token and/or deadline,
/// both optional. The default-constructed Cancellation never stops.
struct Cancellation {
  const CancelToken* token = nullptr;
  Deadline deadline;

  Cancellation() = default;
  explicit Cancellation(const CancelToken* t) : token(t) {}
  explicit Cancellation(Deadline d) : deadline(d) {}
  Cancellation(const CancelToken* t, Deadline d) : token(t), deadline(d) {}

  /// The never-stopping cancellation, for call sites that thread the
  /// parameter through but have no budget of their own.
  static const Cancellation& none() {
    static const Cancellation c;
    return c;
  }

  bool shouldStop() const {
    if (token != nullptr && token->cancelled()) return true;
    return deadline.expired();
  }

  /// The reason shouldStop() would report right now. The explicit token
  /// wins over the deadline when both fired (the caller asked first).
  CancelReason reason() const {
    if (token != nullptr && token->cancelled()) {
      return CancelReason::kCancelled;
    }
    if (deadline.expired()) return CancelReason::kDeadlineExceeded;
    return CancelReason::kNone;
  }
};

}  // namespace svq::util
