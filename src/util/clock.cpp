#include "util/clock.h"

#include <chrono>

namespace svq::util {

std::int64_t SteadyClock::nowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const Clock* steadyClock() {
  static const SteadyClock clock;
  return &clock;
}

}  // namespace svq::util
