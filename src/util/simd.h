// simd.h — runtime SIMD instruction-set dispatch.
//
// The two hot loops (brush-overlap query kernel, CPU rasterizer span
// fill/blit) ship three implementations each: scalar, SSE2, AVX2. This
// module picks one instruction set ONCE at startup so the kernels branch
// on a cached enum, never on cpuid, inside the loop.
//
// Contract: every SIMD variant is bit-identical to its scalar fallback.
// The determinism gates (1/4/8-thread, delta-on/off, TSan, content-hash
// golden tests) rely on this — a vectorized kernel is an optimization,
// never an observable behaviour change. The kernel fuzz tests
// (tests/simd_kernel_test.cpp) enforce it on random spans.
//
// Override: set SVQ_FORCE_SCALAR=1 in the environment to pin every kernel
// to the scalar path regardless of hardware (used by the forced-scalar CI
// leg and for A/B ratio benchmarks).
#pragma once

namespace svq::util {

/// Instruction sets the kernels are compiled for, in preference order.
enum class Isa {
  kScalar = 0,
  kSse2,
  kAvx2,
};

/// Best instruction set the running CPU supports (ignores the override).
Isa detectIsa();

/// Instruction set the kernels actually use: detectIsa() unless
/// SVQ_FORCE_SCALAR is set to anything but "" or "0". Detected once,
/// cached, thread-safe.
Isa activeIsa();

const char* toString(Isa isa);

}  // namespace svq::util
