// arena.h — bump allocator for per-frame kernel scratch.
//
// The per-frame evaluation path (QueryEngine::evaluate → classifySpatial →
// point-in-brush kernel) needs short-lived float/int scratch buffers sized
// by the trajectory under test. Allocating them from the heap per
// trajectory puts malloc on the hot loop; an arena turns every allocation
// into a pointer bump and every frame's cleanup into a single reset.
//
// Usage pattern (per worker thread, per frame/task):
//
//   Arena& a = frameArena();
//   ArenaScope scope(a);              // rewinds on destruction
//   float* mx = a.allocate<float>(n); // 64-byte aligned, uninitialized
//
// Arenas are NOT thread-safe; frameArena() hands each thread its own
// thread_local instance, which is how the cell-parallel / trajectory-
// parallel paths stay race-free. Memory is retained across resets (hot
// frames reuse the same chunks), released only on destruction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <vector>

namespace svq::util {

class Arena {
 public:
  /// Alignment of every allocation — one cache line, and enough for any
  /// SIMD vector width the kernels use.
  static constexpr std::size_t kAlign = 64;

  explicit Arena(std::size_t firstChunkBytes = 1 << 16)
      : nextChunkBytes_(firstChunkBytes < kAlign ? kAlign : firstChunkBytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    for (Chunk& c : chunks_) ::operator delete(c.base, std::align_val_t{kAlign});
  }

  /// Uninitialized storage for `count` Ts, 64-byte aligned. T must be
  /// trivially destructible — the arena never runs destructors.
  template <typename T>
  T* allocate(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(allocateBytes(count * sizeof(T)));
  }

  void* allocateBytes(std::size_t bytes) {
    bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
    if (current_ >= chunks_.size() || used_ + bytes > chunks_[current_].size) {
      advanceChunk(bytes);
    }
    void* p = chunks_[current_].base + used_;
    used_ += bytes;
    return p;
  }

  /// Opaque rewind point for ArenaScope.
  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };

  Mark mark() const { return {current_, used_}; }

  /// Rewinds to a mark; everything allocated after it is invalid. Chunks
  /// stay owned (and hot) for reuse.
  void rewind(Mark m) {
    current_ = m.chunk;
    used_ = m.used;
  }

  /// Frees everything (keeps the chunks).
  void reset() { rewind({0, 0}); }

  /// Bytes currently reserved from the OS across all chunks.
  std::size_t capacityBytes() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::byte* base = nullptr;
    std::size_t size = 0;
  };

  void advanceChunk(std::size_t needBytes) {
    // Reuse the next retained chunk if it fits, else append a new one
    // (geometric growth so pathological frames settle into one chunk).
    if (!chunks_.empty() && current_ + 1 < chunks_.size() &&
        chunks_[current_ + 1].size >= needBytes) {
      ++current_;
      used_ = 0;
      return;
    }
    while (nextChunkBytes_ < needBytes) nextChunkBytes_ *= 2;
    Chunk c;
    c.base = static_cast<std::byte*>(
        ::operator new(nextChunkBytes_, std::align_val_t{kAlign}));
    c.size = nextChunkBytes_;
    nextChunkBytes_ *= 2;
    chunks_.push_back(c);
    current_ = chunks_.size() - 1;
    used_ = 0;
  }

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;
  std::size_t used_ = 0;
  std::size_t nextChunkBytes_;
};

/// RAII rewind: allocations made inside the scope vanish when it ends.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// Per-thread arena for frame-scoped kernel scratch.
Arena& frameArena();

}  // namespace svq::util
