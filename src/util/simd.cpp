#include "util/simd.h"

#include <cstdlib>
#include <cstring>

namespace svq::util {

Isa detectIsa() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  if (__builtin_cpu_supports("sse2")) return Isa::kSse2;
#endif
  return Isa::kScalar;
}

namespace {

Isa resolveActive() {
  const char* force = std::getenv("SVQ_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' && std::strcmp(force, "0") != 0) {
    return Isa::kScalar;
  }
  return detectIsa();
}

}  // namespace

Isa activeIsa() {
  static const Isa cached = resolveActive();
  return cached;
}

const char* toString(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
  }
  return "?";
}

}  // namespace svq::util
