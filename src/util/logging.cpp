#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace svq {

namespace {
std::atomic<int>& levelRef() {
  static std::atomic<int> level{static_cast<int>(LogLevel::kWarn)};
  return level;
}
std::mutex& emitMutex() {
  static std::mutex m;
  return m;
}
const char* levelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) {
  levelRef().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel logLevel() {
  return static_cast<LogLevel>(levelRef().load(std::memory_order_relaxed));
}

void logMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(logLevel())) return;
  std::lock_guard lock(emitMutex());
  std::fprintf(stderr, "[svq:%s] %s\n", levelName(level), message.c_str());
}

}  // namespace svq
