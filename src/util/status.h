// status.h — the common surface shared by the repo's typed status types.
//
// Three layers return typed statuses instead of bare bools: the network
// collectives (net::Status, offending rank), the storage layer
// (io::Status, offending shard) and the session service (core::Status,
// offending session). Each keeps its own enum — the failure vocabularies
// are genuinely different — but the *surface* is one contract, expressed
// here so callers and tests never duplicate per-type switch boilerplate:
//
//   * StatusLike — the concept every status satisfies: isOk(), name(),
//     detail() (the offending rank/shard/session, -1 when not
//     applicable) and detailLabel() (what that number means);
//   * statusMessage() — one formatter for all of them, producing
//     "Timeout(rank=3)" / "Corrupt(shard=17)" / "Ok" without the caller
//     writing a switch per type;
//   * worseOf() — one severity fold for multi-part operations, taking
//     the type's own severity ranking (enum order is wire order, not
//     severity order — net ranks Timeout above PeerFailed).
#pragma once

#include <concepts>
#include <cstdint>
#include <string>

namespace svq::util {

/// The contract shared by net::Status, io::Status and core::Status.
template <typename S>
concept StatusLike = requires(const S s) {
  { s.isOk() } -> std::convertible_to<bool>;
  { s.name() } -> std::convertible_to<const char*>;
  { s.detail() } -> std::convertible_to<std::int64_t>;
  { s.detailLabel() } -> std::convertible_to<const char*>;
};

/// Uniform human-readable rendering: "Ok", "Timeout(rank=3)",
/// "Corrupt(shard=17)", "AtCapacity(session=42)". The detail is shown
/// only when it identifies something (>= 0).
template <StatusLike S>
std::string statusMessage(const S& s) {
  std::string out = s.name();
  if (s.detail() >= 0) {
    out += '(';
    out += s.detailLabel();
    out += '=';
    out += std::to_string(s.detail());
    out += ')';
  }
  return out;
}

/// The more severe of two statuses under the type's own severity ranking
/// (`severity` maps a status to an int; bigger is worse). Folds the
/// phases of a composite operation into one caller-visible verdict —
/// shared by net::worse(), io::worse() and core::worse().
template <typename S, typename Severity>
S worseOf(const S& a, const S& b, Severity severity) {
  return severity(b) > severity(a) ? b : a;
}

}  // namespace svq::util
