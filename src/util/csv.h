// csv.h — tiny CSV reader/writer used by the trajectory dataset IO.
//
// Supports the subset of RFC 4180 that the dataset format needs: comma
// separation, double-quote quoting with doubled-quote escapes, and both
// \n and \r\n line endings. No embedded newlines inside quoted fields.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace svq {

/// Splits one CSV line into fields, honouring double-quote quoting.
std::vector<std::string> csvSplit(std::string_view line);

/// Joins fields into one CSV line, quoting fields containing , " or space.
std::string csvJoin(const std::vector<std::string>& fields);

/// Parses a whole CSV document into rows of fields. Skips blank lines.
std::vector<std::vector<std::string>> csvParse(std::string_view text);

}  // namespace svq
