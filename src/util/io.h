// io.h — typed file-IO status, CRC32C, crash-safe publication, and
// deterministic file-layer fault injection.
//
// The storage layer's counterpart to net/status.h + net/fault.h: every
// shard read/write reports a typed io::Status instead of a bare bool, so
// callers can distinguish "this shard is corrupt on media" (quarantine it
// and degrade) from "the read hit a transient error" (retry with backoff)
// from "the file is truncated" (repair to the last committed shard).
//
// Three building blocks live here because every persistent format in the
// repo (shard stores, snapshots) needs all three:
//   * crc32c() — Castagnoli CRC over payloads and footers; a single bit
//     flip anywhere in a checksummed region is always detected.
//   * atomicWriteFile()/atomicPublish() — write-temp → fsync → rename
//     discipline, so a crash mid-write can never clobber the previous
//     good file or publish a half-written one.
//   * FaultInjector — a seeded, deterministic hook under the shard
//     reader/writer that rehearses media corruption (bit-flip), torn
//     writes, truncation, EIO and short reads. Faults are a pure function
//     of (seed, shard), never of thread interleaving or read order, so a
//     given seed reproduces the same quarantine set at any thread count.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace svq::io {

enum class StatusCode : std::uint8_t {
  kOk = 0,           ///< operation completed with verified data
  kTruncated = 1,    ///< fewer bytes than expected (short read / torn file)
  kCorrupt = 2,      ///< checksum or structural validation failed
  kIoError = 3,      ///< the underlying read/write failed (EIO-class)
  kQuarantined = 4,  ///< the target was previously quarantined
};

struct [[nodiscard]] Status {
  StatusCode code = StatusCode::kOk;
  /// The offending shard for shard-granular operations (-1 when not
  /// applicable: whole-file operations, kOk).
  std::int64_t shard = -1;

  static Status ok() { return {StatusCode::kOk, -1}; }
  static Status truncated(std::int64_t shard = -1) {
    return {StatusCode::kTruncated, shard};
  }
  static Status corrupt(std::int64_t shard = -1) {
    return {StatusCode::kCorrupt, shard};
  }
  static Status ioError(std::int64_t shard = -1) {
    return {StatusCode::kIoError, shard};
  }
  static Status quarantined(std::int64_t shard = -1) {
    return {StatusCode::kQuarantined, shard};
  }

  bool isOk() const { return code == StatusCode::kOk; }
  bool isTruncated() const { return code == StatusCode::kTruncated; }
  bool isCorrupt() const { return code == StatusCode::kCorrupt; }
  bool isIoError() const { return code == StatusCode::kIoError; }
  bool isQuarantined() const { return code == StatusCode::kQuarantined; }
  /// True for faults that may clear on retry (EIO, short read). Corruption
  /// is a property of the media, not the attempt — retrying cannot help.
  bool isTransient() const { return isIoError() || isTruncated(); }

  explicit operator bool() const { return isOk(); }
  bool operator==(const Status&) const = default;

  const char* name() const {
    switch (code) {
      case StatusCode::kOk: return "Ok";
      case StatusCode::kTruncated: return "Truncated";
      case StatusCode::kCorrupt: return "Corrupt";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kQuarantined: return "Quarantined";
    }
    return "?";
  }

  // --- common surface (util::StatusLike) ----------------------------------
  std::int64_t detail() const { return shard; }
  const char* detailLabel() const { return "shard"; }
  /// "Ok", "Corrupt(shard=17)", ... — shared formatting (util/status.h).
  std::string message() const { return util::statusMessage(*this); }
};

static_assert(util::StatusLike<Status>);

/// The more severe of two statuses (Quarantined > IoError > Corrupt >
/// Truncated > Ok) — folds multi-shard scans into one verdict, mirroring
/// net::worse(). For io, enum order *is* severity order.
inline Status worse(Status a, Status b) {
  return util::worseOf(
      a, b, [](const Status& s) { return static_cast<int>(s.code); });
}

/// CRC32C (Castagnoli, reflected polynomial 0x82F63B78). `crc` is the
/// running value for incremental use; 0 starts a fresh checksum. The check
/// value crc32c("123456789") == 0xE3069283.
std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t crc = 0);
inline std::uint32_t crc32c(std::string_view bytes, std::uint32_t crc = 0) {
  return crc32c(bytes.data(), bytes.size(), crc);
}

/// fsync the file at `path`; false on failure. No-op success on platforms
/// without fsync.
bool fsyncFile(const std::string& path);

/// fsync the directory containing `path`, making a prior rename durable.
bool fsyncParentDir(const std::string& path);

/// Durably publishes tmpPath at finalPath: fsync(tmp) → rename → fsync
/// parent directory. After this returns true, a crash leaves finalPath
/// either absent or complete — never half-written.
bool atomicPublish(const std::string& tmpPath, const std::string& finalPath);

/// Writes `bytes` to `path` with the write-temp → fsync → atomic-rename
/// protocol (temp file is `path` + ".tmp"). A crash mid-save cannot
/// clobber an existing file at `path`.
Status atomicWriteFile(const std::string& path, std::string_view bytes);

/// Bounded retry-with-backoff for transient read faults.
struct RetryPolicy {
  int maxAttempts = 3;            ///< total attempts (1 = no retry)
  double backoffBaseMs = 0.5;     ///< sleep before the first retry
  double backoffMultiplier = 2.0; ///< growth per subsequent retry

  double backoffMsForRetry(int retry) const {
    double ms = backoffBaseMs;
    for (int i = 0; i < retry; ++i) ms *= backoffMultiplier;
    return ms;
  }
};

/// Deterministic file-layer fault injection, consulted by the shard
/// reader/writer. Read faults are a pure function of (seed, shard): a
/// faulty shard fails the same way on every read, like real corruption on
/// media — which is what makes quarantine sets reproducible across cache
/// evictions and thread counts. Transient faults (EIO, short read) clear
/// after `transientFailCount` attempts, exercising the retry path.
class FaultInjector {
 public:
  static constexpr std::uint64_t kNoTornWrite = ~0ULL;

  struct Plan {
    double bitFlipProbability = 0.0;    ///< P(shard payload has a flipped bit)
    double shortReadProbability = 0.0;  ///< P(reads of a shard come up short)
    double eioProbability = 0.0;        ///< P(reads of a shard fail with EIO)
    /// Attempts that fail before a transient fault clears; < 0 means the
    /// fault never clears (persistent EIO / short read).
    int transientFailCount = 1;
    /// One-shot writer fault: the written byte stream is cut at this
    /// offset and never published (simulates a crash mid-write).
    std::uint64_t tornWriteAtByte = kNoTornWrite;
    std::uint64_t seed = 0x10FAULL;
  };

  enum class ReadFault : std::uint8_t {
    kNone = 0,
    kEio = 1,
    kBitFlip = 2,
    kShortRead = 3,
  };

  FaultInjector() = default;
  explicit FaultInjector(Plan plan) : plan_(plan) {}

  const Plan& plan() const { return plan_; }

  /// The fault planned for `shard`'s reads — pure function of (seed,
  /// shard), same answer on every call (the determinism golden tests
  /// assert exactly this).
  ReadFault faultFor(std::uint64_t shard) const;

  /// Reader hook, called once per read attempt with the freshly read
  /// payload. May corrupt `payload` in place (bit flip — surfaces through
  /// the caller's CRC check), shorten it (short read), or fail outright
  /// (EIO). `attempt` is 0-based; transient faults succeed once `attempt`
  /// reaches transientFailCount.
  Status onRead(std::uint64_t shard, int attempt, std::string& payload);

  /// Writer hook: byte offset at which to tear the written stream, or
  /// kNoTornWrite.
  std::uint64_t tornWriteAtByte() const { return plan_.tornWriteAtByte; }
  void noteTornWrite() { tornWrites_.fetch_add(1, std::memory_order_relaxed); }

  // --- accounting ----------------------------------------------------------
  std::uint64_t bitFlips() const {
    return bitFlips_.load(std::memory_order_relaxed);
  }
  std::uint64_t shortReads() const {
    return shortReads_.load(std::memory_order_relaxed);
  }
  std::uint64_t ioErrors() const {
    return ioErrors_.load(std::memory_order_relaxed);
  }
  std::uint64_t tornWrites() const {
    return tornWrites_.load(std::memory_order_relaxed);
  }

 private:
  struct Draw {
    ReadFault kind = ReadFault::kNone;
    std::uint64_t bitIndex = 0;     ///< for kBitFlip, modulo payload bits
    double prefixFraction = 1.0;    ///< for kShortRead, kept prefix in [0,1)
  };
  Draw drawFor(std::uint64_t shard) const;

  Plan plan_;
  std::atomic<std::uint64_t> bitFlips_{0};
  std::atomic<std::uint64_t> shortReads_{0};
  std::atomic<std::uint64_t> ioErrors_{0};
  std::atomic<std::uint64_t> tornWrites_{0};
};

}  // namespace svq::io
