#include "util/threadpool.h"

#include <algorithm>
#include <stdexcept>

namespace svq {

namespace {
/// Pool whose workerLoop owns the current thread (nullptr on non-workers).
thread_local const ThreadPool* currentWorkerPool = nullptr;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  taskReady_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++inFlight_;
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

bool ThreadPool::onWorkerThread() const { return currentWorkerPool == this; }

void ThreadPool::workerLoop() {
  currentWorkerPool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      taskReady_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--inFlight_ == 0) allDone_.notify_all();
    }
  }
}

void ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& body,
                             std::size_t grain) {
  parallelForChunks(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

void ThreadPool::parallelForChunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (onWorkerThread()) {
    // A worker blocking on chunks that may only ever be queued behind the
    // task it is currently running can never make progress. Fail fast
    // instead of deadlocking silently.
    throw std::logic_error(
        "ThreadPool: nested parallelFor from a worker thread would "
        "deadlock; run the inner loop sequentially");
  }
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t parts = std::max<std::size_t>(
      1, std::min<std::size_t>(workers_.size() + 1, n / std::max<std::size_t>(grain, 1)));
  if (parts <= 1) {
    body(begin, end);
    return;
  }
  const std::size_t chunk = (n + parts - 1) / parts;

  // Completion is tracked separately from the queue's inFlight_ so that a
  // caller running one chunk inline can block on just its own chunks. The
  // counter must be decremented *under* state.m: State lives on the caller's
  // stack, and the caller may destroy it the instant it observes zero — a
  // lock-free decrement would leave the finishing worker touching a dead
  // mutex between its decrement and its notify.
  struct State {
    std::size_t remaining;
    std::mutex m;
    std::condition_variable cv;
  } state{parts - 1, {}, {}};

  for (std::size_t p = 1; p < parts; ++p) {
    const std::size_t lo = begin + p * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) {
      std::lock_guard lock(state.m);
      --state.remaining;
      continue;
    }
    submit([&body, &state, lo, hi] {
      body(lo, hi);
      std::lock_guard lock(state.m);
      if (--state.remaining == 0) state.cv.notify_one();
    });
  }

  // First chunk runs on the calling thread — keeps it busy instead of idle.
  body(begin, std::min(end, begin + chunk));

  std::unique_lock lock(state.m);
  state.cv.wait(lock, [&state] { return state.remaining == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body,
                 std::size_t grain) {
  ThreadPool::global().parallelFor(begin, end, body, grain);
}

}  // namespace svq
