// rng.h — deterministic pseudo-random number generation.
//
// All stochastic components in SVQ (the ant-behaviour synthesizer, SOM
// initialization, fuzz tests) draw from this generator so that every
// experiment is reproducible from a single seed. The engine is
// xoshiro256++, seeded via splitmix64 per the reference recommendation;
// it is small, fast, and has no global state.
#pragma once

#include <cstdint>

#include "util/geometry.h"

namespace svq {

/// splitmix64 step — used to expand a single 64-bit seed into engine state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Deterministic xoshiro256++ generator with convenience distributions.
///
/// Not thread-safe; give each worker its own instance (see split()).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  /// Raw 64 uniform bits.
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float uniformF() { return static_cast<float>(uniform()); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + (hi - lo) * uniformF();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int rangeInt(int lo, int hi) {
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p of true.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (polar-free, two uniforms per call pair).
  double normal();

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Wrapped-Cauchy angle sample centred at 0 with concentration rho in [0,1).
  /// rho=0 is uniform on (-pi,pi], rho->1 concentrates at 0. This is the
  /// canonical turning-angle distribution for correlated random walks.
  float wrappedCauchy(float rho);

  /// von Mises-like heading sample approximated by wrapped normal; kappa >= 0.
  float wrappedNormal(float mu, float sigma);

  /// Exponential with given rate (lambda > 0).
  double exponential(double lambda);

  /// Random unit 2-vector.
  Vec2 unitVec2() { return Vec2::fromAngle(uniform(-kPi, kPi)); }

  /// Point uniform in a disc of given radius centred at origin.
  Vec2 inDisc(float radius);

  /// Derive an independent child generator (for per-worker streams).
  Rng split() { return Rng(next() ^ 0x9E3779B97F4A7C15ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  double cachedNormal_ = 0.0;
  bool hasCachedNormal_ = false;
};

}  // namespace svq
