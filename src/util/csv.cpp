#include "util/csv.h"

namespace svq {

std::vector<std::string> csvSplit(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string csvJoin(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out.push_back(',');
    const std::string& f = fields[i];
    const bool needsQuote =
        f.find_first_of(",\" ") != std::string::npos || f.empty();
    if (!needsQuote) {
      out += f;
    } else {
      out.push_back('"');
      for (char c : f) {
        if (c == '"') out += "\"\"";
        else out.push_back(c);
      }
      out.push_back('"');
    }
  }
  return out;
}

std::vector<std::vector<std::string>> csvParse(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) rows.push_back(csvSplit(line));
    if (end == text.size()) break;
    start = end + 1;
  }
  return rows;
}

}  // namespace svq
