// recording.h — the versioned container for recorded interaction sessions.
//
// ui::InputScript captures one explorer's event list; a scale test needs
// more: the *whole* input side of a multi-tenant run, plus everything
// required to rebuild the world it ran against bit-identically. A
// Recording is exactly that closure:
//
//   * WorldSpec — the synthetic-dataset seed and size, the wall geometry
//     and the fault-injector plans (net wire faults for the delta
//     broadcast, io faults for shard-backed worlds). Replaying the same
//     recording always regenerates the same dataset on the same wall
//     under the same injected faults.
//   * steps — the global arrival-order sequence of tenant lifecycle
//     operations (admit/close) and accepted events, each tagged with the
//     dense tenant track index, a session timestamp and an optional
//     analyst note. Per-tenant subsequences are exactly each tenant's
//     event stream as core::SessionService applied it.
//
// The container is a versioned binary format (magic "SVQR") over
// net::MessageBuffer; deserialize() is hardened the way the SVQT parser
// is: payload-bounded counts, finite-timestamp validation, typed
// rejection (nullopt) instead of crashes on truncated or bit-flipped
// input (tests/ui_script_fuzz_test.cpp fuzzes it).
//
// replay::Recorder (below) fills a Recording from a live
// core::SessionService via the service's observation hooks, assigning
// dense track indices in admission order and serializing the global
// arrival order under its own mutex.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/sessionservice.h"
#include "net/message.h"
#include "ui/events.h"
#include "ui/script.h"
#include "wall/wall.h"

namespace svq::replay {

/// Everything needed to rebuild a replayed run's world bit-identically.
struct WorldSpec {
  /// Synthetic dataset: traj::AntSimulator(seed) over DatasetSpec{count}
  /// with default behaviour parameters and condition mix.
  std::uint64_t datasetSeed = 808;
  std::uint32_t trajectoryCount = 96;

  /// Wall geometry (WallSpec{tile, cols, rows}).
  wall::TileSpec tile{160, 90, 575.0f, 323.0f, 4.0f};
  int tileCols = 2;
  int tileRows = 1;

  /// Net fault plan for the delta-broadcast wire: probability that a
  /// scene packet is dropped (forcing the epoch+ack resync path), and the
  /// seed of the injector's per-edge RNG streams.
  double wireDropProbability = 0.0;
  std::uint64_t wireFaultSeed = 0x5eedULL;

  /// Io fault plan for shard-backed worlds (traj::ShardStore replays):
  /// fraction of shard payloads the io injector rots, and its seed.
  /// Captured so fault seeds compose with the recording; inert for the
  /// in-memory worlds the shipped scenarios use (DESIGN.md §13).
  double ioFaultPct = 0.0;
  std::uint64_t ioFaultSeed = 0x5eedULL;

  wall::WallSpec wallSpec() const {
    return wall::WallSpec(tile, tileCols, tileRows);
  }
};

/// One recorded step, in global arrival order.
enum class StepKind : std::uint8_t {
  kAdmit = 0,  ///< tenant admitted (track index assigned here)
  kEvent = 1,  ///< one accepted ui::Event on the tenant's stream
  kClose = 2,  ///< tenant closed
};

struct RecordedStep {
  StepKind kind = StepKind::kEvent;
  std::uint32_t tenant = 0;  ///< dense track index (admission order)
  double timeS = 0.0;        ///< session time; informational
  ui::Event event;           ///< meaningful only for kEvent
  std::string note;          ///< think-aloud annotation (may be empty)
};

/// A recorded multi-tenant session: world + globally ordered steps.
class Recording {
 public:
  static constexpr std::uint32_t kMagic = 0x52515653u;  // "SVQR"
  static constexpr std::uint32_t kVersion = 1;

  WorldSpec world;

  // --- building ----------------------------------------------------------
  void admit(std::uint32_t tenant, double timeS) {
    steps_.push_back({StepKind::kAdmit, tenant, timeS, {}, {}});
  }
  void event(std::uint32_t tenant, double timeS, ui::Event e,
             std::string note = {}) {
    steps_.push_back(
        {StepKind::kEvent, tenant, timeS, std::move(e), std::move(note)});
  }
  void close(std::uint32_t tenant, double timeS) {
    steps_.push_back({StepKind::kClose, tenant, timeS, {}, {}});
  }

  /// Single-tenant recording from a classic InputScript (the
  /// pilot-study migration path): admit track 0, then every scripted
  /// event in order with its timestamp and note.
  static Recording fromScript(WorldSpec world, const ui::InputScript& script);

  // --- inspection --------------------------------------------------------
  const std::vector<RecordedStep>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }
  std::size_t size() const { return steps_.size(); }
  std::size_t eventCount() const;
  /// Highest tenant track index + 1 (0 for an empty recording).
  std::uint32_t tenantCount() const;

  /// Projection of one tenant's steps (relative order preserved, track
  /// index remapped to 0) — the serialized per-tenant split the
  /// SessionService ordering tests replay against the interleaved whole.
  Recording tenantSlice(std::uint32_t tenant) const;

  // --- serialization -----------------------------------------------------
  net::MessageBuffer serialize() const;
  /// Hardened parse: rejects bad magic/version, payload-driven counts,
  /// non-finite timestamps and truncation with nullopt — never a crash,
  /// never an allocation sized by a corrupt count field.
  static std::optional<Recording> deserialize(net::MessageBuffer buf);

  bool saveBinary(const std::string& path) const;
  static std::optional<Recording> loadBinary(const std::string& path);

 private:
  std::vector<RecordedStep> steps_;
};

/// Captures a live core::SessionService's input flow into a Recording.
///
/// attach() installs itself as the service's observation hooks; from then
/// on every admission, accepted event (submit() at enqueue time, apply()
/// at apply time — i.e. in exact per-tenant stream order) and close lands
/// in the recording in global arrival order, serialized by the
/// recorder's own mutex. SessionIds are mapped to dense track indices in
/// admission order, so a recording is stable across runs that hand out
/// different raw ids.
///
/// Timestamps default to a deterministic step counter (0.1 s per step);
/// interactive recorders install a wall-clock source via setTimeSource().
class Recorder {
 public:
  explicit Recorder(WorldSpec world) { recording_.world = world; }

  /// Installs this recorder's hooks on `service`. Call before traffic
  /// starts; the service keeps a reference until detach() (or different
  /// hooks) replace it.
  void attach(core::SessionService& service);

  /// Removes the hooks installed by attach().
  void detach();

  /// Replaces the timestamp source (seconds since session start).
  void setTimeSource(std::function<double()> source) {
    std::lock_guard lock(mutex_);
    timeSource_ = std::move(source);
  }

  /// Steps recorded so far.
  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return recording_.size();
  }

  /// Detaches and moves the finished recording out.
  Recording finish();

 private:
  double stamp();  // caller holds mutex_
  void onAdmit(core::SessionId id);
  void onEvent(core::SessionId id, const ui::Event& e);
  void onClose(core::SessionId id);

  mutable std::mutex mutex_;
  Recording recording_;
  std::function<double()> timeSource_;
  std::unordered_map<core::SessionId, std::uint32_t> tracks_;
  std::uint64_t sequence_ = 0;
  core::SessionService* attached_ = nullptr;
};

}  // namespace svq::replay
