// recording.h — the versioned container for recorded interaction sessions.
//
// ui::InputScript captures one explorer's event list; a scale test needs
// more: the *whole* input side of a multi-tenant run, plus everything
// required to rebuild the world it ran against bit-identically. A
// Recording is exactly that closure:
//
//   * WorldSpec — the synthetic-dataset seed and size, the wall geometry
//     and the fault-injector plans (net wire faults for the delta
//     broadcast, io faults for shard-backed worlds). Replaying the same
//     recording always regenerates the same dataset on the same wall
//     under the same injected faults.
//   * steps — the global arrival-order sequence of tenant lifecycle
//     operations (admit/close) and accepted events, each tagged with the
//     dense tenant track index, a session timestamp and an optional
//     analyst note. Per-tenant subsequences are exactly each tenant's
//     event stream as core::SessionService applied it.
//
// The container is a versioned binary format (magic "SVQR") over
// net::MessageBuffer; deserialize() is hardened the way the SVQT parser
// is: payload-bounded counts, finite-timestamp validation, typed
// rejection (nullopt) instead of crashes on truncated or bit-flipped
// input (tests/ui_script_fuzz_test.cpp fuzzes it).
//
// replay::Recorder (below) fills a Recording from a live
// core::SessionService via the service's observation hooks, assigning
// dense track indices in admission order and serializing the global
// arrival order under its own mutex.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/sessionservice.h"
#include "net/message.h"
#include "ui/events.h"
#include "ui/script.h"
#include "wall/wall.h"

namespace svq::replay {

/// Everything needed to rebuild a replayed run's world bit-identically.
struct WorldSpec {
  /// Synthetic dataset: traj::AntSimulator(seed) over DatasetSpec{count}
  /// with default behaviour parameters and condition mix.
  std::uint64_t datasetSeed = 808;
  std::uint32_t trajectoryCount = 96;

  /// Wall geometry (WallSpec{tile, cols, rows}).
  wall::TileSpec tile{160, 90, 575.0f, 323.0f, 4.0f};
  int tileCols = 2;
  int tileRows = 1;

  /// Net fault plan for the delta-broadcast wire: probability that a
  /// scene packet is dropped (forcing the epoch+ack resync path), and the
  /// seed of the injector's per-edge RNG streams.
  double wireDropProbability = 0.0;
  std::uint64_t wireFaultSeed = 0x5eedULL;

  /// Io fault plan for shard-backed worlds (traj::ShardStore replays):
  /// fraction of shard payloads the io injector rots, and its seed.
  /// Captured so fault seeds compose with the recording; inert for the
  /// in-memory worlds the shipped scenarios use (DESIGN.md §13).
  double ioFaultPct = 0.0;
  std::uint64_t ioFaultSeed = 0x5eedULL;

  /// Overload plan (format v2): the SessionService health-controller
  /// configuration a replay must run under, plus a deterministic clock
  /// advance. All-zero (the default, and what v1 recordings decode to)
  /// means no overload machinery — the runner leaves the service at its
  /// plain defaults, exactly the pre-v2 behaviour. When active, the
  /// runner drives the service off a util::ManualClock advanced by
  /// clockAdvanceUsPerStep *between* steps, so deadline expiry and
  /// latency accounting are pure functions of the step index — chaos
  /// composed from this plan plus the wire/io plans replays
  /// bit-identically at any thread count.
  struct OverloadPlan {
    std::uint32_t applyDeadlineUs = 0;       ///< 0 = unlimited
    std::uint32_t shedP99Us = 0;             ///< 0 = latency trigger off
    std::uint32_t shedQueueDepth = 0;        ///< 0 = depth trigger off
    std::uint32_t healthWindow = 0;          ///< 0 = service default
    std::uint32_t clockAdvanceUsPerStep = 0; ///< manual-clock step
    bool active() const {
      return applyDeadlineUs != 0 || shedP99Us != 0 || shedQueueDepth != 0 ||
             healthWindow != 0 || clockAdvanceUsPerStep != 0;
    }
  };
  OverloadPlan overload;

  /// Progressive plan (format v3): when active, the replayed world is
  /// backed by a shard store (capacity shardCapacity, written from the
  /// regenerated dataset under the io fault plan) clustered by a
  /// somRows x somCols SOM — sessions then run in progressive (anytime)
  /// mode and kRefine steps drive SessionService::refine(). All-zero
  /// (the default, and what v1/v2 recordings decode to) means the plain
  /// in-memory world. The store build and clustering are bit-
  /// deterministic for a given recording, so converged frames hash
  /// identically at any thread count.
  struct ProgressivePlan {
    std::uint32_t shardCapacity = 0;  ///< 0 = progressive mode off
    std::uint32_t somRows = 0;
    std::uint32_t somCols = 0;
    bool active() const { return shardCapacity != 0; }
  };
  ProgressivePlan progressive;

  wall::WallSpec wallSpec() const {
    return wall::WallSpec(tile, tileCols, tileRows);
  }
};

/// One recorded step, in global arrival order.
enum class StepKind : std::uint8_t {
  kAdmit = 0,   ///< tenant admitted (track index assigned here)
  kEvent = 1,   ///< one ui::Event on the tenant's synchronous apply path
  kClose = 2,   ///< tenant closed
  kSubmit = 3,  ///< one ui::Event enqueued via submit() (format v2) —
                ///< authored overload scenarios use this to build real
                ///< queue pressure the replayed service must shed/drain
  kRefine = 4,  ///< one SessionService::refine(tenant, refineBudget) call
                ///< (format v3) — drains the tenant's anytime query; the
                ///< recorded budget is the *requested* one, health
                ///< scaling re-derives on replay
};

struct RecordedStep {
  StepKind kind = StepKind::kEvent;
  std::uint32_t tenant = 0;  ///< dense track index (admission order)
  double timeS = 0.0;        ///< session time; informational
  ui::Event event;           ///< meaningful only for kEvent/kSubmit
  std::string note;          ///< think-aloud annotation (may be empty)
  /// core::StatusCode of the service's refusal, or 0 when the event was
  /// accepted (format v2; always 0 for lifecycle steps). A refused step
  /// is part of the stream — replay must re-see the refusal, never apply
  /// the event — which is how load-shedding decisions stay inside the
  /// determinism boundary.
  std::uint8_t refusal = 0;
  /// Requested shard budget of a kRefine step (format v3; 0 otherwise).
  /// The *requested* budget is recorded — replay re-issues the same
  /// refine() call and health scaling re-derives deterministically.
  std::uint32_t refineBudget = 0;
};

/// A recorded multi-tenant session: world + globally ordered steps.
class Recording {
 public:
  static constexpr std::uint32_t kMagic = 0x52515653u;  // "SVQR"
  /// v2 adds the WorldSpec overload plan, the kSubmit step kind and a
  /// per-step refusal byte. v3 adds the WorldSpec progressive plan and
  /// the kRefine step kind (with its u32 shard budget). deserialize()
  /// still accepts v1 and v2 payloads (decoded with inert plans, refusal
  /// 0 / budget 0 where the bytes predate the field); serialize() always
  /// writes the current version.
  static constexpr std::uint32_t kVersion = 3;

  WorldSpec world;

  // --- building ----------------------------------------------------------
  void admit(std::uint32_t tenant, double timeS) {
    steps_.push_back({StepKind::kAdmit, tenant, timeS, {}, {}, 0});
  }
  void event(std::uint32_t tenant, double timeS, ui::Event e,
             std::string note = {}) {
    steps_.push_back({StepKind::kEvent, tenant, timeS, std::move(e),
                      std::move(note), 0});
  }
  /// An event the service *refused* with StatusCode `refusalCode`
  /// (kBackpressure / kDeadlineExceeded / kOverloaded): replay re-sees
  /// the refusal instead of applying the event.
  void refused(std::uint32_t tenant, double timeS, ui::Event e,
               std::uint8_t refusalCode, std::string note = {}) {
    steps_.push_back({StepKind::kEvent, tenant, timeS, std::move(e),
                      std::move(note), refusalCode});
  }
  /// An event enqueued via SessionService::submit() instead of applied
  /// synchronously — the queue-pressure primitive overload scenarios are
  /// authored from.
  void submit(std::uint32_t tenant, double timeS, ui::Event e,
              std::string note = {}) {
    steps_.push_back({StepKind::kSubmit, tenant, timeS, std::move(e),
                      std::move(note), 0});
  }
  /// A refinement step: replay calls SessionService::refine(tenant,
  /// maxShards). The budget must be positive.
  void refine(std::uint32_t tenant, double timeS, std::uint32_t maxShards) {
    steps_.push_back(
        {StepKind::kRefine, tenant, timeS, {}, {}, 0, maxShards});
  }
  /// A refine() the service refused (kOverloaded while Shedding): replay
  /// re-sees the refusal instead of running the step.
  void refineRefused(std::uint32_t tenant, double timeS,
                     std::uint32_t maxShards, std::uint8_t refusalCode) {
    steps_.push_back(
        {StepKind::kRefine, tenant, timeS, {}, {}, refusalCode, maxShards});
  }
  void close(std::uint32_t tenant, double timeS) {
    steps_.push_back({StepKind::kClose, tenant, timeS, {}, {}, 0});
  }

  /// Single-tenant recording from a classic InputScript (the
  /// pilot-study migration path): admit track 0, then every scripted
  /// event in order with its timestamp and note.
  static Recording fromScript(WorldSpec world, const ui::InputScript& script);

  // --- inspection --------------------------------------------------------
  const std::vector<RecordedStep>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }
  std::size_t size() const { return steps_.size(); }
  std::size_t eventCount() const;
  /// Steps carrying a non-zero refusal code.
  std::size_t refusedCount() const;
  /// Highest tenant track index + 1 (0 for an empty recording).
  std::uint32_t tenantCount() const;

  /// Projection of one tenant's steps (relative order preserved, track
  /// index remapped to 0) — the serialized per-tenant split the
  /// SessionService ordering tests replay against the interleaved whole.
  Recording tenantSlice(std::uint32_t tenant) const;

  // --- serialization -----------------------------------------------------
  net::MessageBuffer serialize() const;
  /// Hardened parse: rejects bad magic/version, payload-driven counts,
  /// non-finite timestamps and truncation with nullopt — never a crash,
  /// never an allocation sized by a corrupt count field.
  static std::optional<Recording> deserialize(net::MessageBuffer buf);

  bool saveBinary(const std::string& path) const;
  static std::optional<Recording> loadBinary(const std::string& path);

 private:
  std::vector<RecordedStep> steps_;
};

/// Captures a live core::SessionService's input flow into a Recording.
///
/// attach() installs itself as the service's observation hooks; from then
/// on every admission, accepted event (submit() at enqueue time, apply()
/// at apply time — i.e. in exact per-tenant stream order), *load-shed
/// refusal* (kBackpressure / kDeadlineExceeded / kOverloaded — recorded
/// as refusal-tagged steps so a replay re-sees the refusal instead of
/// applying the event) and close lands in the recording in global
/// arrival order, serialized by the recorder's own mutex. SessionIds are
/// mapped to dense track indices in admission order, so a recording is
/// stable across runs that hand out different raw ids.
///
/// Timestamps default to a deterministic step counter (0.1 s per step);
/// interactive recorders install a wall-clock source via setTimeSource().
class Recorder {
 public:
  explicit Recorder(WorldSpec world) { recording_.world = world; }

  /// Installs this recorder's hooks on `service`. Call before traffic
  /// starts; the service keeps a reference until detach() (or different
  /// hooks) replace it.
  void attach(core::SessionService& service);

  /// Removes the hooks installed by attach().
  void detach();

  /// Replaces the timestamp source (seconds since session start).
  void setTimeSource(std::function<double()> source) {
    std::lock_guard lock(mutex_);
    timeSource_ = std::move(source);
  }

  /// Steps recorded so far.
  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return recording_.size();
  }

  /// Detaches and moves the finished recording out.
  Recording finish();

 private:
  double stamp();  // caller holds mutex_
  void onAdmit(core::SessionId id);
  void onEvent(core::SessionId id, const ui::Event& e,
               const core::Status& status);
  void onRefine(core::SessionId id, std::uint32_t maxShards,
                const core::Status& status);
  void onClose(core::SessionId id);

  mutable std::mutex mutex_;
  Recording recording_;
  std::function<double()> timeSource_;
  std::unordered_map<core::SessionId, std::uint32_t> tracks_;
  std::uint64_t sequence_ = 0;
  core::SessionService* attached_ = nullptr;
};

}  // namespace svq::replay
